// Plugging a custom spatio-temporal backbone into URCL. The framework is
// backbone-agnostic (Sec. V-B4): anything implementing core::StBackbone can
// serve as the shared STEncoder. This example defines a deliberately simple
// per-node MLP encoder (no graph structure at all), drops it into the
// baseline harness, and compares it against the stock backbones on the same
// drifted stream — showing both the plug-in API and why the graph matters.
//
//   ./custom_backbone [--nodes 12] [--days 10] [--epochs 4]
#include <cstdio>

#include "autograd/ops.h"
#include "baselines/deep_baseline.h"
#include "common/flags.h"
#include "runtime/runtime_flags.h"
#include "common/table_printer.h"
#include "core/strategies.h"
#include "core/urcl.h"
#include "data/presets.h"
#include "data/stream.h"

using namespace urcl;
namespace ag = urcl::autograd;
using urcl::autograd::Variable;

namespace {

// A minimal custom backbone: flattens each node's input window and applies a
// shared two-layer MLP. No spatial mixing, no temporal convolution — the
// simplest thing that satisfies the StBackbone contract.
class PerNodeMlpEncoder : public core::StBackbone {
 public:
  PerNodeMlpEncoder(const core::BackboneConfig& config, Rng& rng) : config_(config) {
    mlp_ = std::make_unique<nn::Mlp>(
        std::vector<int64_t>{config.input_steps * config.in_channels,
                             config.hidden_channels * 4, config.latent_channels},
        rng, nn::Activation::kRelu);
    RegisterChild("mlp", mlp_.get());
  }

  Variable Encode(const Variable& observations, const Tensor& adjacency) const override {
    (void)adjacency;  // deliberately graph-blind
    const int64_t batch = observations.shape().dim(0);
    const int64_t steps = observations.shape().dim(1);
    const int64_t nodes = observations.shape().dim(2);
    const int64_t channels = observations.shape().dim(3);
    // [B, M, N, C] -> [B, N, M*C] -> MLP -> [B, N, L] -> [B, L, N, 1]
    Variable h = ag::Transpose(observations, {0, 2, 1, 3});
    h = ag::Reshape(h, Shape{batch, nodes, steps * channels});
    h = mlp_->Forward(h);
    h = ag::Transpose(h, {0, 2, 1});
    return ag::Reshape(h, Shape{batch, config_.latent_channels, nodes, 1});
  }

  int64_t latent_channels() const override { return config_.latent_channels; }
  int64_t latent_time() const override { return 1; }
  std::string name() const override { return "PerNodeMLP"; }

 private:
  core::BackboneConfig config_;
  std::unique_ptr<nn::Mlp> mlp_;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  ApplyRuntimeFlags(flags);
  const int64_t nodes = flags.GetInt("nodes", 12);
  const int64_t days = flags.GetInt("days", 10);
  const int64_t epochs = flags.GetInt("epochs", 4);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  const data::DatasetPreset preset = data::MetrLaPreset();
  data::SyntheticTraffic generator(preset.MakeTrafficConfig(nodes, days, seed));
  const Tensor raw = generator.GenerateSeries();
  const data::MinMaxNormalizer normalizer = data::MinMaxNormalizer::Fit(raw);
  data::StDataset dataset(normalizer.Transform(raw), preset.MakeWindowConfig());
  data::StreamSplitter stream(dataset, data::StreamConfig{});

  core::BackboneConfig encoder_config;
  encoder_config.num_nodes = nodes;
  encoder_config.in_channels = preset.channels;
  encoder_config.input_steps = preset.input_steps;
  encoder_config.hidden_channels = 8;
  encoder_config.latent_channels = 16;
  encoder_config.num_layers = 5;
  encoder_config.adaptive_embedding_dim = 6;

  baselines::DeepBaselineOptions deep;
  deep.decoder_hidden = 64;
  deep.seed = seed;
  deep.max_batches_per_epoch = 30;

  core::ProtocolOptions options;
  options.epochs_per_stage = epochs;

  TablePrinter table({"Backbone", "B_set MAE", "I_set4 MAE", "Params"});
  // 1. The custom graph-blind backbone through the shared harness.
  {
    Rng rng(seed);
    baselines::DeepBaseline model("PerNodeMLP",
                                  std::make_unique<PerNodeMlpEncoder>(encoder_config, rng),
                                  deep, generator.network(), rng);
    const int64_t params = model.NumParameters();
    const auto results = core::RunContinualProtocol(model, stream, normalizer, 0, options);
    table.AddRow({"PerNodeMLP (custom)", TablePrinter::Num(results.front().metrics.mae),
                  TablePrinter::Num(results.back().metrics.mae), std::to_string(params)});
  }
  // 2. The stock backbones inside the full URCL framework.
  for (const core::BackboneType type :
       {core::BackboneType::kGraphWaveNet, core::BackboneType::kDcrnn,
        core::BackboneType::kGeoman}) {
    core::UrclConfig config;
    config.backbone = type;
    config.encoder = encoder_config;
    config.decoder_hidden = 64;
    config.ssl_weight = 0.05f;
    config.max_batches_per_epoch = 30;
    config.seed = seed;
    core::UrclTrainer model(config, generator.network());
    const auto results = core::RunContinualProtocol(model, stream, normalizer, 0, options);
    table.AddRow({"URCL + " + core::BackboneTypeName(type),
                  TablePrinter::Num(results.front().metrics.mae),
                  TablePrinter::Num(results.back().metrics.mae),
                  std::to_string(model.model().NumParameters())});
  }
  table.Print();
  std::printf("\nAny core::StBackbone subclass can be used as the shared STEncoder;\n"
              "see PerNodeMlpEncoder above for the minimal contract.\n");
  return 0;
}
