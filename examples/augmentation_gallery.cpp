// Tour of the five spatio-temporal augmentations (Sec. IV-C1): applies each
// one to the same sample and prints what changed — nodes masked, edges
// dropped/added, time distortion — plus the effect on the GraphCL views.
//
//   ./augmentation_gallery [--nodes 10] [--seed 7]
#include <cmath>
#include <cstdio>

#include "augment/augmentation.h"
#include "common/flags.h"
#include "runtime/runtime_flags.h"
#include "common/table_printer.h"
#include "data/synthetic.h"
#include "graph/generator.h"
#include "tensor/tensor_ops.h"

using namespace urcl;

namespace {

struct ViewDiff {
  int64_t nodes_masked = 0;
  int64_t edges_removed = 0;
  int64_t edges_added = 0;
  float observation_l2_change = 0.0f;
};

ViewDiff Diff(const Tensor& observations, const Tensor& adjacency,
              const augment::AugmentedView& view) {
  ViewDiff diff;
  const int64_t n = adjacency.dim(0);
  for (int64_t node = 0; node < n; ++node) {
    bool all_zero = true;
    for (int64_t b = 0; b < view.observations.dim(0) && all_zero; ++b) {
      for (int64_t t = 0; t < view.observations.dim(1) && all_zero; ++t) {
        for (int64_t c = 0; c < view.observations.dim(3) && all_zero; ++c) {
          all_zero = view.observations.At({b, t, node, c}) == 0.0f;
        }
      }
    }
    diff.nodes_masked += all_zero ? 1 : 0;
  }
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      const bool before = adjacency.At({i, j}) != 0.0f;
      const bool after = view.adjacency.At({i, j}) != 0.0f;
      diff.edges_removed += before && !after;
      diff.edges_added += !before && after;
    }
  }
  const Tensor delta = ops::Sub(view.observations, observations);
  diff.observation_l2_change =
      std::sqrt(ops::Sum(ops::Square(delta)).Item() /
                static_cast<float>(delta.NumElements()));
  return diff;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  ApplyRuntimeFlags(flags);
  const int64_t nodes = flags.GetInt("nodes", 10);
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 7)));

  data::TrafficConfig config;
  config.num_nodes = nodes;
  config.num_days = 2;
  config.steps_per_day = 96;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  data::SyntheticTraffic generator(config);
  const Tensor series = generator.GenerateSeries();
  // One batch of 4 windows of 12 steps.
  std::vector<Tensor> windows;
  for (int64_t b = 0; b < 4; ++b) {
    windows.push_back(ops::Slice(series, {b * 24, 0, 0}, {12, nodes, config.channels}));
  }
  const Tensor observations = ops::Stack(windows, 0);
  const Tensor adjacency = generator.network().AdjacencyMatrix();

  std::printf("Sample: [%lld windows x 12 steps x %lld sensors x %lld channels], "
              "%lld directed edges\n\n",
              4LL, static_cast<long long>(nodes), static_cast<long long>(config.channels),
              static_cast<long long>(generator.network().num_edges()));

  TablePrinter table(
      {"Augmentation", "Nodes masked", "Edges removed", "Edges added", "Obs RMS change"});
  for (const auto& augmentation : augment::MakeDefaultAugmentations()) {
    const augment::AugmentedView view =
        augmentation->Apply(observations, generator.network(), rng);
    const ViewDiff diff = Diff(observations, adjacency, view);
    table.AddRow({augmentation->name(), std::to_string(diff.nodes_masked),
                  std::to_string(diff.edges_removed), std::to_string(diff.edges_added),
                  TablePrinter::Num(diff.observation_l2_change, 4)});
  }
  table.Print();

  std::printf("\nDuring training, two distinct augmentations are drawn per step and the\n"
              "STSimSiam network maximizes mutual information between the two views:\n");
  auto augmentations = augment::MakeDefaultAugmentations();
  for (int trial = 0; trial < 5; ++trial) {
    const auto [a, b] = augment::PickTwoDistinct(augmentations, rng);
    std::printf("  step %d: views = (%s, %s)\n", trial, a->name().c_str(),
                b->name().c_str());
  }
  return 0;
}
