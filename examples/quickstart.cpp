// Quickstart: train URCL on a small synthetic traffic stream and watch it
// stay accurate across concept drift.
//
//   ./quickstart [--nodes 16] [--days 12] [--epochs 4] [--seed 7]
//               [--checkpoint-dir DIR] [--checkpoint-every N]
//               [--checkpoint-retention K] [--log-jsonl FILE]
//               [--metrics-out FILE] [--trace-out FILE] [--profile-out FILE]
//
// Observability: --metrics-out writes a Prometheus text snapshot,
// --trace-out a Chrome trace_event JSON (open in Perfetto / chrome://tracing)
// and --profile-out a per-op autograd profile; URCL_OBS=1 enables all three
// subsystems without file output. --log-jsonl appends one structured record
// per trained epoch (stage, loss, stage-end eval metrics, wall time).
//
// Walks through the full pipeline: generate a sensor network + streaming
// traffic data, normalize to [0, 1], split into a base set and four
// incremental sets, run the replay-based continual protocol, and report
// MAE / RMSE per stage in real units (mph).
//
// Crash safety: with --checkpoint-dir set, the full training state (model,
// Adam moments, replay buffer, RNG streams, progress cursor) is checkpointed
// every N steps (and at stage boundaries) into a rotated set of files; on
// startup the newest valid checkpoint is restored and training resumes
// exactly where it stopped. Fault injection (URCL_FAULT env var, see
// common/fault_injector.h) exercises both paths.
#include <cstdio>
#include <fstream>

#include "common/fault_injector.h"
#include "common/flags.h"
#include "runtime/runtime_flags.h"
#include "common/table_printer.h"
#include "core/strategies.h"
#include "core/urcl.h"
#include "data/presets.h"
#include "data/stream.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "serve/service.h"
#include "tensor/tensor_ops.h"

using namespace urcl;

namespace {

// Writes the observability outputs configured via --metrics-out/--trace-out/
// --profile-out (if any) and reports where they went.
void FlushObservability() {
  std::vector<std::string> errors;
  for (const std::string& path : obs::WriteConfiguredOutputs(&errors)) {
    std::printf("Wrote %s\n", path.c_str());
  }
  for (const std::string& error : errors) std::fprintf(stderr, "[obs] %s\n", error.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  ApplyRuntimeFlags(flags);
  const int64_t nodes = flags.GetInt("nodes", 16);
  const int64_t days = flags.GetInt("days", 12);
  const int64_t epochs = flags.GetInt("epochs", 4);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  const std::string checkpoint_dir = flags.GetString("checkpoint-dir", "");
  const int64_t checkpoint_every = flags.GetInt("checkpoint-every", 25);
  const int64_t checkpoint_retention = flags.GetInt("checkpoint-retention", 3);

  // 1. Synthetic METR-LA-like stream (speed prediction, 15-min interval).
  const data::DatasetPreset preset = data::MetrLaPreset();
  data::SyntheticTraffic generator(preset.MakeTrafficConfig(nodes, days, seed));
  const Tensor raw_series = generator.GenerateSeries();
  std::printf("Generated %s-like stream: %lld steps x %lld sensors x %lld channels\n",
              preset.name.c_str(), static_cast<long long>(raw_series.dim(0)),
              static_cast<long long>(raw_series.dim(1)),
              static_cast<long long>(raw_series.dim(2)));

  // 2. Normalize into [0, 1] (the paper's setting) and window into samples.
  const data::MinMaxNormalizer normalizer = data::MinMaxNormalizer::Fit(raw_series);
  data::StDataset dataset(normalizer.Transform(raw_series), preset.MakeWindowConfig());

  // 3. Base set + 4 incremental sets, each with train/val/test.
  data::StreamSplitter stream(dataset, data::StreamConfig{});

  // 4. Configure URCL (GraphWaveNet backbone, replay + RMIR + STMixup +
  //    STSimSiam with spatio-temporal augmentation). The flags route through
  //    serve::ServiceConfig so training and the serving demo below share one
  //    validated configuration (Validate() reports every bad field up front).
  serve::ServiceConfig service_config;
  core::UrclConfig& config = service_config.model;
  config.encoder.num_nodes = nodes;
  config.encoder.in_channels = preset.channels;
  config.encoder.input_steps = preset.input_steps;
  // Short-budget setting: keep the contrastive loss secondary (the paper's
  // weight of 1.0 assumes 100 epochs per set; see DESIGN.md).
  config.ssl_weight = 0.05f;
  config.seed = seed;
  service_config.max_batch = flags.GetInt("max-batch", 16);
  service_config.queue_depth = flags.GetInt("queue-depth", 64);
  const std::vector<std::string> config_errors = service_config.Validate();
  if (!config_errors.empty()) {
    for (const std::string& error : config_errors) {
      std::fprintf(stderr, "invalid flag combination: %s\n", error.c_str());
    }
    return 1;
  }
  core::UrclTrainer urcl(config, generator.network());

  // The serving layer rides along: every stage end publishes an immutable
  // weight snapshot into the service, which answers live forecasts below.
  serve::ForecastService service(service_config, generator.network(), normalizer);
  urcl.SetSnapshotSink(service.SnapshotSink());

  // 4b. Crash-safe checkpointing: restore the newest valid checkpoint (if
  //     any) and write a new one every N steps while training.
  if (!checkpoint_dir.empty()) {
    core::CheckpointConfig ckpt;
    ckpt.dir = checkpoint_dir;
    ckpt.every_steps = checkpoint_every;
    ckpt.retention = checkpoint_retention;
    urcl.EnableCheckpointing(ckpt);
    std::string diagnostics;
    const Status restored = urcl.RestoreFromCheckpointDir(&diagnostics);
    if (!diagnostics.empty()) std::fprintf(stderr, "%s", diagnostics.c_str());
    if (restored.ok()) {
      std::printf("Resumed from checkpoint in %s (next stage %lld)\n", checkpoint_dir.c_str(),
                  static_cast<long long>(urcl.ResumeStageIndex()));
    } else {
      std::printf("Starting fresh (%s)\n", restored.message().c_str());
    }
  }

  // 5. Run the continual protocol and print per-stage accuracy.
  core::ProtocolOptions protocol;
  protocol.epochs_per_stage = epochs;

  // Structured JSONL training log: one record per trained epoch with the
  // stage-end evaluation snapshot and wall-time breakdown.
  const std::string log_jsonl_path = flags.GetString("log-jsonl", "");
  std::ofstream log_jsonl;
  if (!log_jsonl_path.empty()) {
    log_jsonl.open(log_jsonl_path, std::ios::trunc);
    if (!log_jsonl) {
      std::fprintf(stderr, "cannot open --log-jsonl file %s\n", log_jsonl_path.c_str());
      return 1;
    }
    protocol.epoch_log = [&log_jsonl](int64_t stage_index, int64_t epoch, float loss,
                                      const core::StageResult& stage) {
      log_jsonl << "{\"stage\":" << obs::JsonString(stage.stage_name)
                << ",\"stage_index\":" << stage_index << ",\"epoch\":" << epoch
                << ",\"train_loss\":" << obs::JsonNumber(loss)
                << ",\"mae\":" << obs::JsonNumber(stage.metrics.mae)
                << ",\"rmse\":" << obs::JsonNumber(stage.metrics.rmse)
                << ",\"train_seconds\":" << obs::JsonNumber(stage.train_seconds)
                << ",\"seconds_per_epoch\":" << obs::JsonNumber(stage.train_seconds_per_epoch)
                << ",\"infer_seconds_per_observation\":"
                << obs::JsonNumber(stage.infer_seconds_per_observation) << "}\n";
    };
  }

  const std::vector<core::StageResult> results = core::RunContinualProtocol(
      urcl, stream, normalizer, preset.MakeWindowConfig().target_channel, protocol);
  if (log_jsonl.is_open()) {
    log_jsonl.flush();
    std::printf("Wrote %s\n", log_jsonl_path.c_str());
  }

  TablePrinter table({"Stage", "MAE (mph)", "RMSE (mph)", "train s", "infer ms/obs"});
  for (const core::StageResult& r : results) {
    table.AddRow({r.stage_name, TablePrinter::Num(r.metrics.mae),
                  TablePrinter::Num(r.metrics.rmse), TablePrinter::Num(r.train_seconds, 1),
                  TablePrinter::Num(1e3 * r.infer_seconds_per_observation, 2)});
  }
  table.Print();
  std::printf("\nReplay buffer: %lld items (%lld evictions)\n",
              static_cast<long long>(urcl.buffer().size()),
              static_cast<long long>(urcl.buffer().evictions()));

  // 6. Serving demo: the stage-end snapshots were hot-swapped into the
  //    service during training; feed it the last raw input window and ask
  //    for a one-step-ahead forecast (answered by the tape-free inference
  //    executor, stamped with the version/stage that served it).
  if (service.hub().Current() != nullptr) {
    for (int64_t t = raw_series.dim(0) - preset.input_steps; t < raw_series.dim(0); ++t) {
      service.IngestTick(ops::Slice(raw_series, {t, 0, 0}, {1, nodes, raw_series.dim(2)})
                             .Reshape(Shape{nodes, raw_series.dim(2)}));
    }
    core::PredictResponse forecast;
    const Status served = service.Forecast(/*horizon=*/1, &forecast);
    if (served.ok()) {
      const float mean_norm = ops::Mean(forecast.predictions).Item();
      const float mph = normalizer.min(0) + mean_norm * (normalizer.max(0) - normalizer.min(0));
      std::printf("Serving demo: model v%lld (stage %lld) forecasts a mean speed of "
                  "%.1f mph for the next step.\n",
                  static_cast<long long>(forecast.model_version),
                  static_cast<long long>(forecast.stage), mph);
    } else {
      std::fprintf(stderr, "serving demo failed: %s\n", served.message().c_str());
    }
  }

  const fault::FaultInjector& injector = fault::FaultInjector::Instance();
  if (injector.enabled() || urcl.quarantined_batches() > 0) {
    const fault::FaultCounters& counters = injector.counters();
    std::printf("Faults: %lld NaN cells, %lld Inf cells, %lld dropped sensors, "
                "%lld duplicated batches, %lld kills -> %lld batches quarantined\n",
                static_cast<long long>(counters.nan_cells),
                static_cast<long long>(counters.inf_cells),
                static_cast<long long>(counters.dropped_sensors),
                static_cast<long long>(counters.duplicated_batches),
                static_cast<long long>(counters.kills),
                static_cast<long long>(urcl.quarantined_batches()));
  }
  FlushObservability();
  if (urcl.TrainingInterrupted()) {
    std::printf("Training interrupted by fault injection; rerun with the same "
                "--checkpoint-dir to resume.\n");
    return 2;
  }
  return 0;
}
