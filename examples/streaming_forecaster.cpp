// Streaming deployment scenario, rebuilt on the urcl::serve layer.
//
// Before (PR-1..5): this example drove core::OnlineLearner synchronously —
// ingest one observation, maybe block the stream for a full retrain, then
// predict from the same thread that trains. Serving stalled for seconds
// whenever drift fired.
//
// After (this PR): ingestion and queries run against a serve::ForecastService
// while a background UrclTrainer trains through the stream's stages and
// publishes immutable weight snapshots. The service normalizes raw ticks into
// per-sensor rolling windows, answers forecasts through the tape-free
// inference executor (bitwise-equal to the training forward), and hot-swaps
// model versions mid-stream via an atomic shared_ptr exchange — the query
// loop never blocks on training and observes each swap through the
// version/stage stamps in its responses.
//
//   ./streaming_forecaster [--nodes 12] [--days 8] [--epochs 2]
//                          [--max-batch 16] [--queue-depth 64] [--poll-every 1]
//                          [--log-jsonl FILE] [--metrics-out FILE]
//                          [--trace-out FILE] [--profile-out FILE]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "common/flags.h"
#include "runtime/runtime_flags.h"
#include "common/table_printer.h"
#include "core/urcl.h"
#include "data/presets.h"
#include "data/synthetic.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "serve/service.h"
#include "tensor/tensor_ops.h"

using namespace urcl;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  ApplyRuntimeFlags(flags);
  const int64_t nodes = flags.GetInt("nodes", 12);
  const int64_t days = flags.GetInt("days", 8);
  const int64_t epochs = flags.GetInt("epochs", 2);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  // A stream with strong drift mid-way: the background trainer's later
  // stages adapt to the new regime and the swap is visible to the clients.
  const data::DatasetPreset preset = data::MetrLaPreset();
  data::TrafficConfig traffic = preset.MakeTrafficConfig(nodes, days, seed);
  traffic.abrupt_refresh_fraction = 0.9f;
  data::SyntheticTraffic generator(traffic);
  const Tensor raw = generator.GenerateSeries();
  const data::MinMaxNormalizer normalizer = data::MinMaxNormalizer::Fit(raw);
  const Tensor normalized = normalizer.Transform(raw);
  const data::WindowConfig window = preset.MakeWindowConfig();
  const int64_t steps = raw.dim(0);
  const int64_t channels = raw.dim(2);

  // Service + trainer share one ServiceConfig: the flags route through
  // serve::ServiceConfig::Validate() before anything is constructed.
  serve::ServiceConfig config;
  config.model.encoder.num_nodes = nodes;
  config.model.encoder.in_channels = preset.channels;
  config.model.encoder.input_steps = window.input_steps;
  config.model.encoder.hidden_channels = 8;
  config.model.encoder.latent_channels = 16;
  config.model.output_steps = window.output_steps;
  config.model.max_batches_per_epoch = 20;
  config.model.ssl_weight = 0.05f;
  config.model.seed = seed;
  config.max_batch = flags.GetInt("max-batch", 16);
  config.queue_depth = flags.GetInt("queue-depth", 64);
  config.snapshot_poll_every = flags.GetInt("poll-every", 1);
  const std::vector<std::string> errors = config.Validate();
  if (!errors.empty()) {
    for (const std::string& error : errors) {
      std::fprintf(stderr, "invalid flag combination: %s\n", error.c_str());
    }
    return 1;
  }
  serve::ForecastService service(config, generator.network(), normalizer);

  // Background training: first half of the stream is stage 0, second half
  // stage 1 (the drifted regime). Every stage end hot-swaps a snapshot.
  const Tensor first_half = ops::Slice(normalized, {0, 0, 0}, {steps / 2, nodes, channels});
  const Tensor second_half =
      ops::Slice(normalized, {steps / 2, 0, 0}, {steps - steps / 2, nodes, channels});
  data::StDataset stage0(first_half, window);
  data::StDataset stage1(second_half, window);
  core::UrclTrainer trainer(config.model, generator.network());
  trainer.SetSnapshotSink(service.SnapshotSink(), /*publish_every_steps=*/20);

  // Bootstrap: train the initial model on stage 0 in the foreground (a
  // deployment serves nothing until a first version exists), then train the
  // drifted stage 1 in the background while the stream is being served.
  std::printf("Training the initial model on the first half of the stream...\n");
  trainer.BeginStage(0);
  trainer.TrainStage(stage0, epochs);
  std::atomic<bool> trainer_done{false};
  std::thread trainer_thread([&] {
    trainer.BeginStage(1);
    trainer.TrainStage(stage1, epochs);
    trainer_done.store(true);
  });

  std::printf("Streaming %lld steps of %s-like data (%lld sensors) through "
              "serve::ForecastService while the background trainer hot-swaps "
              "model versions...\n\n",
              static_cast<long long>(steps), preset.name.c_str(),
              static_cast<long long>(nodes));

  // Structured JSONL log: one record per served forecast.
  const std::string log_jsonl_path = flags.GetString("log-jsonl", "");
  std::ofstream log_jsonl;
  if (!log_jsonl_path.empty()) {
    log_jsonl.open(log_jsonl_path, std::ios::trunc);
    if (!log_jsonl) {
      std::fprintf(stderr, "cannot open --log-jsonl file %s\n", log_jsonl_path.c_str());
      return 1;
    }
  }

  // Tick ingestion + query loop: feed each raw observation to the service,
  // then ask for a one-step-ahead forecast and score it against the next
  // tick. Version stamps reveal every hot-swap as it reaches the clients.
  TablePrinter log({"Step", "Event", "Model", "Stage", "Live MAE so far (mph)"});
  const float speed_span = normalizer.max(0) - normalizer.min(0);
  double abs_error_sum = 0.0;
  int64_t scored = 0;
  int64_t served = 0;
  int64_t last_version = 0;
  bool pending = false;
  Tensor pending_prediction;  // [1, 1, N, 1], normalized
  auto note_swap = [&](const core::PredictResponse& response, int64_t step) {
    if (response.model_version == last_version) return;
    const char* event = last_version == 0 ? "first model live" : "hot-swap observed";
    const double live_mae =
        scored > 0 ? abs_error_sum / static_cast<double>(scored) * speed_span : 0.0;
    log.AddRow({std::to_string(step), event, "v" + std::to_string(response.model_version),
                std::to_string(response.stage), TablePrinter::Num(live_mae)});
    if (log_jsonl.is_open()) {
      log_jsonl << "{\"step\":" << step << ",\"event\":" << obs::JsonString(event)
                << ",\"model_version\":" << response.model_version
                << ",\"stage\":" << response.stage
                << ",\"live_mae\":" << obs::JsonNumber(live_mae) << "}\n";
    }
    last_version = response.model_version;
  };
  for (int64_t t = 0; t < steps; ++t) {
    const Tensor row =
        ops::Slice(raw, {t, 0, 0}, {1, nodes, channels}).Reshape(Shape{nodes, channels});
    if (pending) {
      // Score yesterday's forecast against today's truth (target channel 0).
      const Tensor truth = ops::Slice(normalized, {t, 0, 0}, {1, nodes, 1})
                               .Reshape(pending_prediction.shape());
      abs_error_sum += ops::Mean(ops::Abs(ops::Sub(pending_prediction, truth))).Item();
      ++scored;
      pending = false;
    }
    service.IngestTick(row);
    if (t < steps / 2) continue;  // stage-0 data: the model trained on it
    core::PredictResponse response;
    if (service.Forecast(/*horizon=*/1, &response).ok()) {
      pending_prediction = response.predictions;
      pending = true;
      ++served;
      note_swap(response, t);
    }
  }
  // The stream has ended but the stage-1 trainer may still be running: keep
  // serving the latest window until it finishes, so the final hot-swap is
  // observed by a live query rather than discovered after the fact.
  while (!trainer_done.load()) {
    core::PredictResponse response;
    if (service.Forecast(/*horizon=*/1, &response).ok()) {
      ++served;
      note_swap(response, steps);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  trainer_thread.join();
  // One last query after the trainer finished: the stage-end snapshot is
  // published just before the done flag, so this always lands on the final
  // version and records the swap.
  core::PredictResponse final_response;
  if (service.Forecast(/*horizon=*/1, &final_response).ok()) {
    ++served;
    note_swap(final_response, steps);
  }
  if (log_jsonl.is_open()) {
    log_jsonl.flush();
    std::printf("Wrote %s\n", log_jsonl_path.c_str());
  }
  log.Print();
  const double live_mae =
      scored > 0 ? abs_error_sum / static_cast<double>(scored) * speed_span : 0.0;
  std::printf("\n%lld forecasts served across %lld model versions (%lld snapshots "
              "published); final live MAE %.2f mph over %lld scored steps.\n",
              static_cast<long long>(served), static_cast<long long>(last_version),
              static_cast<long long>(trainer.snapshots_published()), live_mae,
              static_cast<long long>(scored));
  std::printf("\nThe query loop never blocks on training: the background trainer\n"
              "publishes immutable weight snapshots, the service swaps them in via\n"
              "an atomic pointer exchange, and each response's version/stage stamp\n"
              "shows which weights answered it.\n");
  std::vector<std::string> obs_errors;
  for (const std::string& path : obs::WriteConfiguredOutputs(&obs_errors)) {
    std::printf("Wrote %s\n", path.c_str());
  }
  for (const std::string& error : obs_errors) std::fprintf(stderr, "[obs] %s\n", error.c_str());
  return 0;
}
