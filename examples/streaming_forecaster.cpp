// Streaming deployment scenario: core::OnlineLearner ingests observations
// one step at a time, serves live one-step-ahead predictions, and retrains
// itself continually — either when the Page-Hinkley detector flags concept
// drift in the live prediction-error stream, or on a periodic schedule.
// This is the setting the paper's introduction motivates.
//
//   ./streaming_forecaster [--nodes 12] [--days 8] [--periodic 0]
//                          [--log-jsonl FILE] [--metrics-out FILE]
//                          [--trace-out FILE] [--profile-out FILE]
#include <cstdio>
#include <fstream>

#include "common/flags.h"
#include "common/table_printer.h"
#include "core/drift.h"
#include "data/metrics.h"
#include "data/presets.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "tensor/tensor_ops.h"

using namespace urcl;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  ApplyRuntimeFlags(flags);
  const int64_t nodes = flags.GetInt("nodes", 12);
  const int64_t days = flags.GetInt("days", 8);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  // A stream with strong drift mid-way, so the detector has work to do.
  const data::DatasetPreset preset = data::MetrLaPreset();
  data::TrafficConfig traffic = preset.MakeTrafficConfig(nodes, days, seed);
  traffic.abrupt_refresh_fraction = 0.9f;
  data::SyntheticTraffic generator(traffic);
  const Tensor raw = generator.GenerateSeries();
  const data::MinMaxNormalizer normalizer = data::MinMaxNormalizer::Fit(raw);
  const Tensor series = normalizer.Transform(raw);
  const data::WindowConfig window = preset.MakeWindowConfig();

  core::OnlineLearnerConfig config;
  config.model.encoder.num_nodes = nodes;
  config.model.encoder.in_channels = preset.channels;
  config.model.encoder.input_steps = window.input_steps;
  config.model.encoder.hidden_channels = 8;
  config.model.encoder.latent_channels = 16;
  config.model.max_batches_per_epoch = 20;
  config.model.ssl_weight = 0.05f;
  config.model.seed = seed;
  config.window = window;
  config.retrain_window_steps = 192;
  config.retrain_epochs = 2;
  config.periodic_retrain_every = flags.GetInt("periodic", 0);
  config.drift.threshold = 0.08f;
  config.drift.warmup = 24;
  core::OnlineLearner learner(config, generator.network());

  std::printf("Streaming %lld steps of %s-like data (%lld sensors) through "
              "OnlineLearner (drift-triggered continual retraining)...\n\n",
              static_cast<long long>(series.dim(0)), preset.name.c_str(),
              static_cast<long long>(nodes));

  // Structured JSONL log: one record per retrain event.
  const std::string log_jsonl_path = flags.GetString("log-jsonl", "");
  std::ofstream log_jsonl;
  if (!log_jsonl_path.empty()) {
    log_jsonl.open(log_jsonl_path, std::ios::trunc);
    if (!log_jsonl) {
      std::fprintf(stderr, "cannot open --log-jsonl file %s\n", log_jsonl_path.c_str());
      return 1;
    }
  }

  TablePrinter log({"Step", "Event", "Live MAE so far (mph)", "Drift alarms",
                    "Replay buffer"});
  const float speed_span = normalizer.max(0) - normalizer.min(0);
  for (int64_t t = 0; t < series.dim(0); ++t) {
    if (learner.CanPredict()) learner.PredictNext();
    const Tensor row = ops::Slice(series, {t, 0, 0}, {1, nodes, series.dim(2)})
                           .Reshape(Shape{nodes, series.dim(2)});
    if (learner.Ingest(row)) {
      const char* event = learner.retrain_count() == 1 ? "initial train" : "retrained";
      log.AddRow({std::to_string(t), event,
                  TablePrinter::Num(learner.live_mae() * speed_span),
                  std::to_string(learner.drift_alarms()),
                  std::to_string(learner.trainer().buffer().size())});
      if (log_jsonl.is_open()) {
        log_jsonl << "{\"step\":" << t << ",\"event\":" << obs::JsonString(event)
                  << ",\"live_mae\":" << obs::JsonNumber(learner.live_mae() * speed_span)
                  << ",\"drift_alarms\":" << learner.drift_alarms()
                  << ",\"retrain_count\":" << learner.retrain_count()
                  << ",\"buffer_size\":" << learner.trainer().buffer().size() << "}\n";
      }
    }
  }
  if (log_jsonl.is_open()) {
    log_jsonl.flush();
    std::printf("Wrote %s\n", log_jsonl_path.c_str());
  }
  log.Print();
  std::printf("\n%lld retrains (%lld drift-triggered alarms); final live MAE "
              "%.2f mph over %lld served predictions.\n",
              static_cast<long long>(learner.retrain_count()),
              static_cast<long long>(learner.drift_alarms()),
              learner.live_mae() * speed_span,
              static_cast<long long>(learner.steps_seen()));
  std::printf("\nThe drift detector watches the live error stream; each regime change\n"
              "in the data raises the error, fires the Page-Hinkley alarm, and the\n"
              "learner retrains on its recent window while the replay buffer keeps\n"
              "knowledge of earlier regimes alive.\n");
  std::vector<std::string> errors;
  for (const std::string& path : obs::WriteConfiguredOutputs(&errors)) {
    std::printf("Wrote %s\n", path.c_str());
  }
  for (const std::string& error : errors) std::fprintf(stderr, "[obs] %s\n", error.c_str());
  return 0;
}
