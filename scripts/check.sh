#!/usr/bin/env sh
# Static + dynamic analysis gate (`urcl::check`, DESIGN.md §9, §14). Runs, in
# order:
#
#   1. the repo lint (tools/lint) over the source tree — banned constructs,
#      format hygiene, lock discipline and the include-graph layer DAG;
#   2. the Clang thread-safety build: with clang++ available, a
#      -DURCL_THREAD_SAFETY=ON library build where any -Wthread-safety
#      diagnostic is an error. Without clang++ the annotations compile to
#      nothing, so the step degrades to a GCC syntax-check of a probe TU that
#      exercises the common/thread_annotations.h wrappers — proving the header
#      stays usable — and says so; it hard-fails only if neither works;
#   3. clang-tidy (advisory): the curated .clang-tidy checks over src/, driven
#      by the exported compile_commands.json. Findings are printed, never
#      fatal — the enforced analysis gates are steps 1-2. Skipped with a
#      message when clang-tidy is not installed;
#   4. an ASan+UBSan build (poisoning + graph checks forced on) running the
#      `analysis`- and `exec`-labeled tests plus the pool/autograd suites
#      (exec under ASan proves the arena's lifetime-sharing of slots never
#      reads or writes out of a live slot's window);
#   5. a TSan build running the `analysis`-, `serving`-, `exec`- and
#      `observability`-labeled tests (serving is mandatory under TSan: the
#      hot-swap path is lock-free and its data-race freedom is part of the
#      serving contract; exec covers plan replay racing the pool from worker
#      threads; observability covers the lock-striped flight recorder and the
#      metrics registry, both written from every serving thread);
#   6. the `chaos`-labeled suite under both sanitizer builds with a serving
#      fault storm injected via URCL_FAULT (fault-point names documented in
#      src/common/fault_injector.h). The chaos tests assert the serving
#      invariants -- no crash, no non-finite output, every failure typed --
#      so running them under ASan and TSan extends that to "and no memory
#      error or data race on any fault path".
#
# Build trees are kept under build-check-{asan,tsan,tsafety} and reused across
# runs. Usage: scripts/check.sh [-j N]
set -eu

jobs=2
while [ $# -gt 0 ]; do
  case "$1" in
    -j) jobs="$2"; shift 2 ;;
    *) echo "usage: scripts/check.sh [-j N]" >&2; exit 2 ;;
  esac
done

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

echo "== [1/6] repo lint =="
cmake -B build-check-asan -S . \
  -DURCL_SANITIZE=address+undefined -DURCL_WERROR=ON \
  -DURCL_BUILD_BENCHMARKS=OFF -DURCL_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-check-asan -j"$jobs" --target urcl_lint
./build-check-asan/tools/lint/urcl_lint --root "$root"

echo "== [2/6] Clang -Wthread-safety =="
if command -v clang++ >/dev/null 2>&1; then
  # Library-only build: tests/benches link gtest/benchmark, which may not be
  # built for clang here; the annotations all live in src/.
  cmake -B build-check-tsafety -S . \
    -DCMAKE_CXX_COMPILER=clang++ -DURCL_THREAD_SAFETY=ON \
    -DURCL_BUILD_TESTS=OFF -DURCL_BUILD_BENCHMARKS=OFF \
    -DURCL_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build build-check-tsafety -j"$jobs"
  echo "thread-safety: clang -Werror=thread-safety-analysis build clean"
else
  # No clang in this environment: the attributes expand to nothing, so the
  # best available check is that the annotated wrappers still compile and the
  # macros still expand. A probe TU exercising Mutex/MutexLock/CondVar/
  # guarded members must pass a syntax-only compile; if it cannot, the header
  # rotted and the step fails hard.
  probe="$(mktemp /tmp/urcl_tsafety_probe_XXXXXX.cc)"
  cat > "$probe" <<'EOF'
#include "common/thread_annotations.h"
struct Probe {
  urcl::Mutex mu;
  urcl::CondVar cv;
  int value URCL_GUARDED_BY(mu) = 0;
  void Set(int v) URCL_EXCLUDES(mu) {
    urcl::MutexLock lock(mu);
    value = v;
    cv.NotifyAll();
  }
  void WaitNonZero() URCL_EXCLUDES(mu) {
    urcl::MutexLock lock(mu);
    while (value == 0) cv.Wait(mu);
  }
  bool TrySet(int v) URCL_EXCLUDES(mu) {
    if (!mu.TryLock()) return false;
    urcl::MutexLock lock(mu, urcl::kAdoptLock);
    value = v;
    return true;
  }
};
int main() { Probe p; p.Set(1); return 0; }
EOF
  if ! "${CXX:-c++}" -std=c++20 -fsyntax-only -I "$root/src" "$probe"; then
    rm -f "$probe"
    echo "thread-safety: clang++ not found AND the annotations header fails to" >&2
    echo "compile with ${CXX:-c++}; fix common/thread_annotations.h" >&2
    exit 1
  fi
  rm -f "$probe"
  echo "thread-safety: clang++ not found; verified common/thread_annotations.h"
  echo "  wrappers compile under ${CXX:-c++} (annotations are no-ops here --"
  echo "  run on a machine with clang for the full analysis)"
fi

echo "== [3/6] clang-tidy (advisory) =="
if command -v clang-tidy >/dev/null 2>&1; then
  # compile_commands.json is exported by the asan tree configured in step 1.
  # Advisory by design: findings inform, the deterministic gates enforce.
  find src -name '*.cc' | xargs clang-tidy -p build-check-asan --quiet || true
else
  echo "clang-tidy not installed; skipping (advisory step, .clang-tidy is the config)"
fi

echo "== [4/6] ASan+UBSan: analysis + exec tests with poisoning + graph checks on =="
cmake --build build-check-asan -j"$jobs" --target \
  check_test lint_test exec_test pool_test autograd_test urcl_header_selfcheck
# Force every gate on so the sanitizer sees the poisoned free lists and the
# gated verification paths, not the Release defaults.
URCL_CHECK=1 URCL_POOL_POISON=1 \
  ctest --test-dir build-check-asan -L "analysis|exec" --output-on-failure -j"$jobs"
URCL_CHECK=1 URCL_POOL_POISON=1 ./build-check-asan/tests/pool_test
URCL_CHECK=1 URCL_POOL_POISON=1 ./build-check-asan/tests/autograd_test

echo "== [5/6] TSan: analysis + serving + exec + observability tests =="
cmake -B build-check-tsan -S . -DURCL_SANITIZE=thread \
  -DURCL_BUILD_BENCHMARKS=OFF -DURCL_BUILD_EXAMPLES=OFF >/dev/null
# urcl_lint is built here too: the repo_lint ctest entry runs the binary.
cmake --build build-check-tsan -j"$jobs" --target \
  check_test lint_test serve_test exec_test obs_test blackbox_tool_test urcl_lint
# scripts/tsan.supp silences one libstdc++ atomic<shared_ptr> artifact
# (relaxed reader unlock in _Sp_atomic::load); see the comment there.
export TSAN_OPTIONS="suppressions=$root/scripts/tsan.supp${TSAN_OPTIONS:+ $TSAN_OPTIONS}"
URCL_CHECK=1 URCL_POOL_POISON=1 \
  ctest --test-dir build-check-tsan -L "analysis|serving|exec|observability" \
  --output-on-failure -j"$jobs"

echo "== [6/6] chaos: fault-injected serving under ASan and TSan =="
# The env spec layers on top of each test's own Configure() call (the storm
# test calls LoadFromEnv), so directed tests keep their deterministic rates
# while the storm test runs under the union of both fault sets.
chaos_spec="serve_bitflip=0.2;drop_publish=0.1;tick_drop=0.1;tick_dup=0.1;slow=0.05;slow_ms=1;seed=11"
cmake --build build-check-asan -j"$jobs" --target chaos_test
cmake --build build-check-tsan -j"$jobs" --target chaos_test
URCL_FAULT="$chaos_spec" URCL_CHECK=1 \
  ctest --test-dir build-check-asan -L chaos --output-on-failure -j"$jobs"
URCL_FAULT="$chaos_spec" URCL_CHECK=1 \
  ctest --test-dir build-check-tsan -L chaos --output-on-failure -j"$jobs"

echo "scripts/check.sh: all analysis gates passed"
