#!/usr/bin/env sh
# Static + dynamic analysis gate (`urcl::check`, DESIGN.md §9). Runs, in order:
#
#   1. the repo lint (tools/lint) over the source tree;
#   2. an ASan+UBSan build (poisoning + graph checks forced on) running the
#      `analysis`- and `exec`-labeled tests plus the pool/autograd suites
#      (exec under ASan proves the arena's lifetime-sharing of slots never
#      reads or writes out of a live slot's window);
#   3. a TSan build running the `analysis`-, `serving`-, `exec`- and
#      `observability`-labeled tests (serving is mandatory under TSan: the
#      hot-swap path is lock-free and its data-race freedom is part of the
#      serving contract; exec covers plan replay racing the pool from worker
#      threads; observability covers the lock-striped flight recorder and the
#      metrics registry, both written from every serving thread);
#   4. the `chaos`-labeled suite under both sanitizer builds with a serving
#      fault storm injected via URCL_FAULT (fault-point names documented in
#      src/common/fault_injector.h). The chaos tests assert the serving
#      invariants -- no crash, no non-finite output, every failure typed --
#      so running them under ASan and TSan extends that to "and no memory
#      error or data race on any fault path".
#
# Build trees are kept under build-check-{asan,tsan} and reused across runs.
# Usage: scripts/check.sh [-j N]
set -eu

jobs=2
while [ $# -gt 0 ]; do
  case "$1" in
    -j) jobs="$2"; shift 2 ;;
    *) echo "usage: scripts/check.sh [-j N]" >&2; exit 2 ;;
  esac
done

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

echo "== [1/4] repo lint =="
cmake -B build-check-asan -S . \
  -DURCL_SANITIZE=address+undefined -DURCL_WERROR=ON \
  -DURCL_BUILD_BENCHMARKS=OFF -DURCL_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-check-asan -j"$jobs" --target urcl_lint
./build-check-asan/tools/lint/urcl_lint --root "$root"

echo "== [2/4] ASan+UBSan: analysis + exec tests with poisoning + graph checks on =="
cmake --build build-check-asan -j"$jobs" --target \
  check_test lint_test exec_test pool_test autograd_test urcl_header_selfcheck
# Force every gate on so the sanitizer sees the poisoned free lists and the
# gated verification paths, not the Release defaults.
URCL_CHECK=1 URCL_POOL_POISON=1 \
  ctest --test-dir build-check-asan -L "analysis|exec" --output-on-failure -j"$jobs"
URCL_CHECK=1 URCL_POOL_POISON=1 ./build-check-asan/tests/pool_test
URCL_CHECK=1 URCL_POOL_POISON=1 ./build-check-asan/tests/autograd_test

echo "== [3/4] TSan: analysis + serving + exec + observability tests =="
cmake -B build-check-tsan -S . -DURCL_SANITIZE=thread \
  -DURCL_BUILD_BENCHMARKS=OFF -DURCL_BUILD_EXAMPLES=OFF >/dev/null
# urcl_lint is built here too: the repo_lint ctest entry runs the binary.
cmake --build build-check-tsan -j"$jobs" --target \
  check_test lint_test serve_test exec_test obs_test blackbox_tool_test urcl_lint
# scripts/tsan.supp silences one libstdc++ atomic<shared_ptr> artifact
# (relaxed reader unlock in _Sp_atomic::load); see the comment there.
export TSAN_OPTIONS="suppressions=$root/scripts/tsan.supp${TSAN_OPTIONS:+ $TSAN_OPTIONS}"
URCL_CHECK=1 URCL_POOL_POISON=1 \
  ctest --test-dir build-check-tsan -L "analysis|serving|exec|observability" \
  --output-on-failure -j"$jobs"

echo "== [4/4] chaos: fault-injected serving under ASan and TSan =="
# The env spec layers on top of each test's own Configure() call (the storm
# test calls LoadFromEnv), so directed tests keep their deterministic rates
# while the storm test runs under the union of both fault sets.
chaos_spec="serve_bitflip=0.2;drop_publish=0.1;tick_drop=0.1;tick_dup=0.1;slow=0.05;slow_ms=1;seed=11"
cmake --build build-check-asan -j"$jobs" --target chaos_test
cmake --build build-check-tsan -j"$jobs" --target chaos_test
URCL_FAULT="$chaos_spec" URCL_CHECK=1 \
  ctest --test-dir build-check-asan -L chaos --output-on-failure -j"$jobs"
URCL_FAULT="$chaos_spec" URCL_CHECK=1 \
  ctest --test-dir build-check-tsan -L chaos --output-on-failure -j"$jobs"

echo "scripts/check.sh: all analysis gates passed"
