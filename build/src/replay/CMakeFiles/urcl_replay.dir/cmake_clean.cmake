file(REMOVE_RECURSE
  "CMakeFiles/urcl_replay.dir/replay_buffer.cc.o"
  "CMakeFiles/urcl_replay.dir/replay_buffer.cc.o.d"
  "CMakeFiles/urcl_replay.dir/samplers.cc.o"
  "CMakeFiles/urcl_replay.dir/samplers.cc.o.d"
  "liburcl_replay.a"
  "liburcl_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urcl_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
