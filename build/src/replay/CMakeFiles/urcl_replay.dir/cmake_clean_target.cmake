file(REMOVE_RECURSE
  "liburcl_replay.a"
)
