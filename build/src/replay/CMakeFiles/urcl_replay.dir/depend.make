# Empty dependencies file for urcl_replay.
# This may be replaced when dependencies are built.
