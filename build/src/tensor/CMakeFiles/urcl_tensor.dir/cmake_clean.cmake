file(REMOVE_RECURSE
  "CMakeFiles/urcl_tensor.dir/serialize.cc.o"
  "CMakeFiles/urcl_tensor.dir/serialize.cc.o.d"
  "CMakeFiles/urcl_tensor.dir/shape.cc.o"
  "CMakeFiles/urcl_tensor.dir/shape.cc.o.d"
  "CMakeFiles/urcl_tensor.dir/tensor.cc.o"
  "CMakeFiles/urcl_tensor.dir/tensor.cc.o.d"
  "CMakeFiles/urcl_tensor.dir/tensor_ops.cc.o"
  "CMakeFiles/urcl_tensor.dir/tensor_ops.cc.o.d"
  "liburcl_tensor.a"
  "liburcl_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urcl_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
