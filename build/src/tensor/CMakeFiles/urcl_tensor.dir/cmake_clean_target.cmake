file(REMOVE_RECURSE
  "liburcl_tensor.a"
)
