# Empty dependencies file for urcl_tensor.
# This may be replaced when dependencies are built.
