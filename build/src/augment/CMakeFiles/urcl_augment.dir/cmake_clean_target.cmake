file(REMOVE_RECURSE
  "liburcl_augment.a"
)
