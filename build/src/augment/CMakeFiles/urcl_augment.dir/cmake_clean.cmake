file(REMOVE_RECURSE
  "CMakeFiles/urcl_augment.dir/augmentation.cc.o"
  "CMakeFiles/urcl_augment.dir/augmentation.cc.o.d"
  "liburcl_augment.a"
  "liburcl_augment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urcl_augment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
