# Empty dependencies file for urcl_augment.
# This may be replaced when dependencies are built.
