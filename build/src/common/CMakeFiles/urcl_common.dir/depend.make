# Empty dependencies file for urcl_common.
# This may be replaced when dependencies are built.
