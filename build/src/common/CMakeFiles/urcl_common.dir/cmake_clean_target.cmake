file(REMOVE_RECURSE
  "liburcl_common.a"
)
