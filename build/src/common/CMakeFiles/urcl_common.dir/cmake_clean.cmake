file(REMOVE_RECURSE
  "CMakeFiles/urcl_common.dir/check.cc.o"
  "CMakeFiles/urcl_common.dir/check.cc.o.d"
  "CMakeFiles/urcl_common.dir/csv_writer.cc.o"
  "CMakeFiles/urcl_common.dir/csv_writer.cc.o.d"
  "CMakeFiles/urcl_common.dir/flags.cc.o"
  "CMakeFiles/urcl_common.dir/flags.cc.o.d"
  "CMakeFiles/urcl_common.dir/rng.cc.o"
  "CMakeFiles/urcl_common.dir/rng.cc.o.d"
  "CMakeFiles/urcl_common.dir/table_printer.cc.o"
  "CMakeFiles/urcl_common.dir/table_printer.cc.o.d"
  "liburcl_common.a"
  "liburcl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urcl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
