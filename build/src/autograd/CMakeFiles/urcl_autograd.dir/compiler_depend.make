# Empty compiler generated dependencies file for urcl_autograd.
# This may be replaced when dependencies are built.
