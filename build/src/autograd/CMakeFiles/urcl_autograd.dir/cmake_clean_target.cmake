file(REMOVE_RECURSE
  "liburcl_autograd.a"
)
