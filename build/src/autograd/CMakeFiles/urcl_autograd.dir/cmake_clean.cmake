file(REMOVE_RECURSE
  "CMakeFiles/urcl_autograd.dir/grad_check.cc.o"
  "CMakeFiles/urcl_autograd.dir/grad_check.cc.o.d"
  "CMakeFiles/urcl_autograd.dir/ops.cc.o"
  "CMakeFiles/urcl_autograd.dir/ops.cc.o.d"
  "CMakeFiles/urcl_autograd.dir/variable.cc.o"
  "CMakeFiles/urcl_autograd.dir/variable.cc.o.d"
  "liburcl_autograd.a"
  "liburcl_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urcl_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
