file(REMOVE_RECURSE
  "liburcl_nn.a"
)
