
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/gcn.cc" "src/nn/CMakeFiles/urcl_nn.dir/gcn.cc.o" "gcc" "src/nn/CMakeFiles/urcl_nn.dir/gcn.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/nn/CMakeFiles/urcl_nn.dir/init.cc.o" "gcc" "src/nn/CMakeFiles/urcl_nn.dir/init.cc.o.d"
  "/root/repo/src/nn/layer_norm.cc" "src/nn/CMakeFiles/urcl_nn.dir/layer_norm.cc.o" "gcc" "src/nn/CMakeFiles/urcl_nn.dir/layer_norm.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/urcl_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/urcl_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/urcl_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/urcl_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/nn/CMakeFiles/urcl_nn.dir/module.cc.o" "gcc" "src/nn/CMakeFiles/urcl_nn.dir/module.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/urcl_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/urcl_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/tcn.cc" "src/nn/CMakeFiles/urcl_nn.dir/tcn.cc.o" "gcc" "src/nn/CMakeFiles/urcl_nn.dir/tcn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/autograd/CMakeFiles/urcl_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/urcl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/urcl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
