# Empty dependencies file for urcl_nn.
# This may be replaced when dependencies are built.
