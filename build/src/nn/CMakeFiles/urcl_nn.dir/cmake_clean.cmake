file(REMOVE_RECURSE
  "CMakeFiles/urcl_nn.dir/gcn.cc.o"
  "CMakeFiles/urcl_nn.dir/gcn.cc.o.d"
  "CMakeFiles/urcl_nn.dir/init.cc.o"
  "CMakeFiles/urcl_nn.dir/init.cc.o.d"
  "CMakeFiles/urcl_nn.dir/layer_norm.cc.o"
  "CMakeFiles/urcl_nn.dir/layer_norm.cc.o.d"
  "CMakeFiles/urcl_nn.dir/linear.cc.o"
  "CMakeFiles/urcl_nn.dir/linear.cc.o.d"
  "CMakeFiles/urcl_nn.dir/loss.cc.o"
  "CMakeFiles/urcl_nn.dir/loss.cc.o.d"
  "CMakeFiles/urcl_nn.dir/module.cc.o"
  "CMakeFiles/urcl_nn.dir/module.cc.o.d"
  "CMakeFiles/urcl_nn.dir/optimizer.cc.o"
  "CMakeFiles/urcl_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/urcl_nn.dir/tcn.cc.o"
  "CMakeFiles/urcl_nn.dir/tcn.cc.o.d"
  "liburcl_nn.a"
  "liburcl_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urcl_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
