file(REMOVE_RECURSE
  "liburcl_data.a"
)
