# Empty compiler generated dependencies file for urcl_data.
# This may be replaced when dependencies are built.
