file(REMOVE_RECURSE
  "CMakeFiles/urcl_data.dir/csv_io.cc.o"
  "CMakeFiles/urcl_data.dir/csv_io.cc.o.d"
  "CMakeFiles/urcl_data.dir/dataset.cc.o"
  "CMakeFiles/urcl_data.dir/dataset.cc.o.d"
  "CMakeFiles/urcl_data.dir/metrics.cc.o"
  "CMakeFiles/urcl_data.dir/metrics.cc.o.d"
  "CMakeFiles/urcl_data.dir/normalizer.cc.o"
  "CMakeFiles/urcl_data.dir/normalizer.cc.o.d"
  "CMakeFiles/urcl_data.dir/presets.cc.o"
  "CMakeFiles/urcl_data.dir/presets.cc.o.d"
  "CMakeFiles/urcl_data.dir/stream.cc.o"
  "CMakeFiles/urcl_data.dir/stream.cc.o.d"
  "CMakeFiles/urcl_data.dir/synthetic.cc.o"
  "CMakeFiles/urcl_data.dir/synthetic.cc.o.d"
  "liburcl_data.a"
  "liburcl_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urcl_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
