# Empty dependencies file for urcl_baselines.
# This may be replaced when dependencies are built.
