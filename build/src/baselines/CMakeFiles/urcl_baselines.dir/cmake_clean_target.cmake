file(REMOVE_RECURSE
  "liburcl_baselines.a"
)
