file(REMOVE_RECURSE
  "CMakeFiles/urcl_baselines.dir/agcrn.cc.o"
  "CMakeFiles/urcl_baselines.dir/agcrn.cc.o.d"
  "CMakeFiles/urcl_baselines.dir/arima.cc.o"
  "CMakeFiles/urcl_baselines.dir/arima.cc.o.d"
  "CMakeFiles/urcl_baselines.dir/deep_baseline.cc.o"
  "CMakeFiles/urcl_baselines.dir/deep_baseline.cc.o.d"
  "CMakeFiles/urcl_baselines.dir/fclstm.cc.o"
  "CMakeFiles/urcl_baselines.dir/fclstm.cc.o.d"
  "CMakeFiles/urcl_baselines.dir/historical_average.cc.o"
  "CMakeFiles/urcl_baselines.dir/historical_average.cc.o.d"
  "CMakeFiles/urcl_baselines.dir/stgcn.cc.o"
  "CMakeFiles/urcl_baselines.dir/stgcn.cc.o.d"
  "CMakeFiles/urcl_baselines.dir/stgode.cc.o"
  "CMakeFiles/urcl_baselines.dir/stgode.cc.o.d"
  "CMakeFiles/urcl_baselines.dir/zoo.cc.o"
  "CMakeFiles/urcl_baselines.dir/zoo.cc.o.d"
  "liburcl_baselines.a"
  "liburcl_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urcl_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
