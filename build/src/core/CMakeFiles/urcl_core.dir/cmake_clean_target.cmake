file(REMOVE_RECURSE
  "liburcl_core.a"
)
