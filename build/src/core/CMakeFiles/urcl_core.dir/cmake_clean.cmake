file(REMOVE_RECURSE
  "CMakeFiles/urcl_core.dir/backbone.cc.o"
  "CMakeFiles/urcl_core.dir/backbone.cc.o.d"
  "CMakeFiles/urcl_core.dir/dcrnn_backbone.cc.o"
  "CMakeFiles/urcl_core.dir/dcrnn_backbone.cc.o.d"
  "CMakeFiles/urcl_core.dir/drift.cc.o"
  "CMakeFiles/urcl_core.dir/drift.cc.o.d"
  "CMakeFiles/urcl_core.dir/ewc.cc.o"
  "CMakeFiles/urcl_core.dir/ewc.cc.o.d"
  "CMakeFiles/urcl_core.dir/geoman_backbone.cc.o"
  "CMakeFiles/urcl_core.dir/geoman_backbone.cc.o.d"
  "CMakeFiles/urcl_core.dir/predictor.cc.o"
  "CMakeFiles/urcl_core.dir/predictor.cc.o.d"
  "CMakeFiles/urcl_core.dir/stdecoder.cc.o"
  "CMakeFiles/urcl_core.dir/stdecoder.cc.o.d"
  "CMakeFiles/urcl_core.dir/stencoder.cc.o"
  "CMakeFiles/urcl_core.dir/stencoder.cc.o.d"
  "CMakeFiles/urcl_core.dir/stmixup.cc.o"
  "CMakeFiles/urcl_core.dir/stmixup.cc.o.d"
  "CMakeFiles/urcl_core.dir/strategies.cc.o"
  "CMakeFiles/urcl_core.dir/strategies.cc.o.d"
  "CMakeFiles/urcl_core.dir/stsimsiam.cc.o"
  "CMakeFiles/urcl_core.dir/stsimsiam.cc.o.d"
  "CMakeFiles/urcl_core.dir/urcl.cc.o"
  "CMakeFiles/urcl_core.dir/urcl.cc.o.d"
  "liburcl_core.a"
  "liburcl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urcl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
