# Empty dependencies file for urcl_core.
# This may be replaced when dependencies are built.
