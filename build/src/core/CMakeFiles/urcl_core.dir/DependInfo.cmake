
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/backbone.cc" "src/core/CMakeFiles/urcl_core.dir/backbone.cc.o" "gcc" "src/core/CMakeFiles/urcl_core.dir/backbone.cc.o.d"
  "/root/repo/src/core/dcrnn_backbone.cc" "src/core/CMakeFiles/urcl_core.dir/dcrnn_backbone.cc.o" "gcc" "src/core/CMakeFiles/urcl_core.dir/dcrnn_backbone.cc.o.d"
  "/root/repo/src/core/drift.cc" "src/core/CMakeFiles/urcl_core.dir/drift.cc.o" "gcc" "src/core/CMakeFiles/urcl_core.dir/drift.cc.o.d"
  "/root/repo/src/core/ewc.cc" "src/core/CMakeFiles/urcl_core.dir/ewc.cc.o" "gcc" "src/core/CMakeFiles/urcl_core.dir/ewc.cc.o.d"
  "/root/repo/src/core/geoman_backbone.cc" "src/core/CMakeFiles/urcl_core.dir/geoman_backbone.cc.o" "gcc" "src/core/CMakeFiles/urcl_core.dir/geoman_backbone.cc.o.d"
  "/root/repo/src/core/predictor.cc" "src/core/CMakeFiles/urcl_core.dir/predictor.cc.o" "gcc" "src/core/CMakeFiles/urcl_core.dir/predictor.cc.o.d"
  "/root/repo/src/core/stdecoder.cc" "src/core/CMakeFiles/urcl_core.dir/stdecoder.cc.o" "gcc" "src/core/CMakeFiles/urcl_core.dir/stdecoder.cc.o.d"
  "/root/repo/src/core/stencoder.cc" "src/core/CMakeFiles/urcl_core.dir/stencoder.cc.o" "gcc" "src/core/CMakeFiles/urcl_core.dir/stencoder.cc.o.d"
  "/root/repo/src/core/stmixup.cc" "src/core/CMakeFiles/urcl_core.dir/stmixup.cc.o" "gcc" "src/core/CMakeFiles/urcl_core.dir/stmixup.cc.o.d"
  "/root/repo/src/core/strategies.cc" "src/core/CMakeFiles/urcl_core.dir/strategies.cc.o" "gcc" "src/core/CMakeFiles/urcl_core.dir/strategies.cc.o.d"
  "/root/repo/src/core/stsimsiam.cc" "src/core/CMakeFiles/urcl_core.dir/stsimsiam.cc.o" "gcc" "src/core/CMakeFiles/urcl_core.dir/stsimsiam.cc.o.d"
  "/root/repo/src/core/urcl.cc" "src/core/CMakeFiles/urcl_core.dir/urcl.cc.o" "gcc" "src/core/CMakeFiles/urcl_core.dir/urcl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/augment/CMakeFiles/urcl_augment.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/urcl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/urcl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/urcl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/replay/CMakeFiles/urcl_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/urcl_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/urcl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/urcl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
