file(REMOVE_RECURSE
  "liburcl_graph.a"
)
