file(REMOVE_RECURSE
  "CMakeFiles/urcl_graph.dir/algorithms.cc.o"
  "CMakeFiles/urcl_graph.dir/algorithms.cc.o.d"
  "CMakeFiles/urcl_graph.dir/generator.cc.o"
  "CMakeFiles/urcl_graph.dir/generator.cc.o.d"
  "CMakeFiles/urcl_graph.dir/sensor_network.cc.o"
  "CMakeFiles/urcl_graph.dir/sensor_network.cc.o.d"
  "CMakeFiles/urcl_graph.dir/transition.cc.o"
  "CMakeFiles/urcl_graph.dir/transition.cc.o.d"
  "liburcl_graph.a"
  "liburcl_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urcl_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
