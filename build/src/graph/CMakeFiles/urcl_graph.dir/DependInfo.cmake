
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/algorithms.cc" "src/graph/CMakeFiles/urcl_graph.dir/algorithms.cc.o" "gcc" "src/graph/CMakeFiles/urcl_graph.dir/algorithms.cc.o.d"
  "/root/repo/src/graph/generator.cc" "src/graph/CMakeFiles/urcl_graph.dir/generator.cc.o" "gcc" "src/graph/CMakeFiles/urcl_graph.dir/generator.cc.o.d"
  "/root/repo/src/graph/sensor_network.cc" "src/graph/CMakeFiles/urcl_graph.dir/sensor_network.cc.o" "gcc" "src/graph/CMakeFiles/urcl_graph.dir/sensor_network.cc.o.d"
  "/root/repo/src/graph/transition.cc" "src/graph/CMakeFiles/urcl_graph.dir/transition.cc.o" "gcc" "src/graph/CMakeFiles/urcl_graph.dir/transition.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/urcl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/urcl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
