# Empty compiler generated dependencies file for urcl_graph.
# This may be replaced when dependencies are built.
