# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/shape_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_ops_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/autograd_test[1]_include.cmake")
include("/root/repo/build/tests/grad_check_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/replay_test[1]_include.cmake")
include("/root/repo/build/tests/augment_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/strategies_test[1]_include.cmake")
include("/root/repo/build/tests/csv_io_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
include("/root/repo/build/tests/drift_test[1]_include.cmake")
include("/root/repo/build/tests/equivariance_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
