# Empty compiler generated dependencies file for equivariance_test.
# This may be replaced when dependencies are built.
