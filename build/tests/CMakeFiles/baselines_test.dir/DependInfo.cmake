
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/baselines_test.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/urcl_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/urcl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/urcl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/replay/CMakeFiles/urcl_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/augment/CMakeFiles/urcl_augment.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/urcl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/urcl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/urcl_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/urcl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/urcl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
