# Empty compiler generated dependencies file for grad_check_test.
# This may be replaced when dependencies are built.
