# Empty dependencies file for custom_backbone.
# This may be replaced when dependencies are built.
