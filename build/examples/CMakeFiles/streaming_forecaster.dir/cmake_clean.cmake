file(REMOVE_RECURSE
  "CMakeFiles/streaming_forecaster.dir/streaming_forecaster.cpp.o"
  "CMakeFiles/streaming_forecaster.dir/streaming_forecaster.cpp.o.d"
  "streaming_forecaster"
  "streaming_forecaster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_forecaster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
