# Empty dependencies file for streaming_forecaster.
# This may be replaced when dependencies are built.
