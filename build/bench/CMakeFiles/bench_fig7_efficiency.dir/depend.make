# Empty dependencies file for bench_fig7_efficiency.
# This may be replaced when dependencies are built.
