file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_backbones.dir/bench_table4_backbones.cc.o"
  "CMakeFiles/bench_table4_backbones.dir/bench_table4_backbones.cc.o.d"
  "bench_table4_backbones"
  "bench_table4_backbones.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_backbones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
