file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_streaming.dir/bench_table2_streaming.cc.o"
  "CMakeFiles/bench_table2_streaming.dir/bench_table2_streaming.cc.o.d"
  "bench_table2_streaming"
  "bench_table2_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
