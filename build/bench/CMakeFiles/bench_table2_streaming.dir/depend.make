# Empty dependencies file for bench_table2_streaming.
# This may be replaced when dependencies are built.
