file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_sweeps.dir/bench_ext_sweeps.cc.o"
  "CMakeFiles/bench_ext_sweeps.dir/bench_ext_sweeps.cc.o.d"
  "bench_ext_sweeps"
  "bench_ext_sweeps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
