# Empty compiler generated dependencies file for bench_ext_sweeps.
# This may be replaced when dependencies are built.
