// Micro-benchmarks (google-benchmark) for the substrate operations that
// dominate URCL's runtime: tensor kernels, the GCN/TCN layers, a full
// encoder forward/backward, augmentations, and RMIR components, plus
// thread-count sweeps over the parallel kernels (the *Threads benchmarks,
// Arg = thread count). Writes BENCH_micro_ops.json unless --benchmark_out
// is given.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "augment/augmentation.h"
#include "runtime/parallel.h"
#include "autograd/ops.h"
#include "core/stencoder.h"
#include "core/stmixup.h"
#include "core/urcl.h"
#include "data/synthetic.h"
#include "exec/plan.h"
#include "graph/generator.h"
#include "graph/transition.h"
#include "nn/gcn.h"
#include "nn/optimizer.h"
#include "nn/tcn.h"
#include "obs/obs.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "replay/replay_buffer.h"
#include "replay/samplers.h"
#include "tensor/pool.h"
#include "tensor/simd.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace {

namespace ag = ::urcl::autograd;

void BM_TensorAddBroadcast(benchmark::State& state) {
  Rng rng(1);
  const int64_t n = state.range(0);
  Tensor a = Tensor::RandomNormal(Shape{n, n}, rng);
  Tensor b = Tensor::RandomNormal(Shape{n}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(ops::Add(a, b));
}
BENCHMARK(BM_TensorAddBroadcast)->Arg(32)->Arg(128);

void BM_MatMul(benchmark::State& state) {
  Rng rng(2);
  const int64_t n = state.range(0);
  Tensor a = Tensor::RandomNormal(Shape{n, n}, rng);
  Tensor b = Tensor::RandomNormal(Shape{n, n}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(ops::MatMul(a, b));
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(64)->Arg(128);

void BM_BatchedMatMul(benchmark::State& state) {
  Rng rng(3);
  Tensor a = Tensor::RandomNormal(Shape{8, 16, 12, 24}, rng);
  Tensor b = Tensor::RandomNormal(Shape{24, 24}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(ops::MatMul(a, b));
}
BENCHMARK(BM_BatchedMatMul);

void BM_Softmax(benchmark::State& state) {
  Rng rng(4);
  Tensor a = Tensor::RandomNormal(Shape{64, 64}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(ops::Softmax(a, -1));
}
BENCHMARK(BM_Softmax);

void BM_GatedTcnForward(benchmark::State& state) {
  Rng rng(5);
  nn::GatedTcn tcn(16, 16, 2, 2, rng);
  ag::Variable x(Tensor::RandomNormal(Shape{8, 16, 24, 12}, rng), false);
  for (auto _ : state) benchmark::DoNotOptimize(tcn.Forward(x));
}
BENCHMARK(BM_GatedTcnForward);

void BM_DiffusionGcnForward(benchmark::State& state) {
  Rng rng(6);
  const int64_t nodes = state.range(0);
  Rng graph_rng(7);
  graph::SensorNetwork g = graph::RandomGeometricGraph(nodes, 0.3f, graph_rng);
  const std::vector<Tensor> supports = graph::BuildSupports(g);
  nn::DiffusionGcn gcn(16, 16, static_cast<int64_t>(supports.size()), false, 2, rng);
  ag::Variable x(Tensor::RandomNormal(Shape{8, 16, nodes, 12}, rng), false);
  for (auto _ : state) benchmark::DoNotOptimize(gcn.Forward(x, supports, ag::Variable()));
}
BENCHMARK(BM_DiffusionGcnForward)->Arg(12)->Arg(32);

void BM_EncoderForwardBackward(benchmark::State& state) {
  Rng rng(8);
  Rng graph_rng(9);
  graph::SensorNetwork g = graph::RandomGeometricGraph(12, 0.35f, graph_rng);
  core::BackboneConfig config;
  config.num_nodes = 12;
  config.in_channels = 2;
  config.input_steps = 12;
  config.hidden_channels = 8;
  config.latent_channels = 16;
  config.num_layers = 5;
  config.adaptive_embedding_dim = 6;
  core::GraphWaveNetEncoder encoder(config, rng);
  const Tensor adjacency = g.AdjacencyMatrix();
  ag::Variable x(Tensor::RandomNormal(Shape{8, 12, 12, 2}, rng), false);
  for (auto _ : state) {
    ag::Variable loss = ag::Mean(ag::Square(encoder.Encode(x, adjacency)));
    for (const auto& p : encoder.Parameters()) p.ZeroGrad();
    loss.Backward();
    benchmark::DoNotOptimize(loss.value().Item());
  }
}
BENCHMARK(BM_EncoderForwardBackward);

void BM_Augmentation(benchmark::State& state) {
  Rng rng(10);
  Rng graph_rng(11);
  graph::SensorNetwork g = graph::RandomGeometricGraph(24, 0.3f, graph_rng);
  Tensor obs = Tensor::RandomUniform(Shape{8, 12, 24, 2}, rng);
  const auto augmentations = augment::MakeDefaultAugmentations();
  const auto& augmentation = augmentations[static_cast<size_t>(state.range(0))];
  state.SetLabel(augmentation->name());
  for (auto _ : state) benchmark::DoNotOptimize(augmentation->Apply(obs, g, rng));
}
BENCHMARK(BM_Augmentation)->DenseRange(0, 4);

void BM_StMixup(benchmark::State& state) {
  Rng rng(12);
  Tensor cx = Tensor::RandomUniform(Shape{8, 12, 24, 2}, rng);
  Tensor cy = Tensor::RandomUniform(Shape{8, 1, 24, 1}, rng);
  Tensor rx = Tensor::RandomUniform(Shape{4, 12, 24, 2}, rng);
  Tensor ry = Tensor::RandomUniform(Shape{4, 1, 24, 1}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(core::StMixup(cx, cy, rx, ry, 0.5f, rng));
}
BENCHMARK(BM_StMixup);

void BM_ReplayBufferAdd(benchmark::State& state) {
  Rng rng(13);
  replay::ReplayBuffer buffer(256);
  replay::ReplayItem item;
  item.inputs = Tensor::RandomNormal(Shape{12, 24, 2}, rng);
  item.targets = Tensor::RandomNormal(Shape{1, 24, 1}, rng);
  for (auto _ : state) {
    replay::ReplayItem copy = item;
    buffer.Add(std::move(copy));
  }
}
BENCHMARK(BM_ReplayBufferAdd);

void BM_PearsonCorrelation(benchmark::State& state) {
  Rng rng(14);
  Tensor a = Tensor::RandomNormal(Shape{12, 24, 2}, rng);
  Tensor b = Tensor::RandomNormal(Shape{12, 24, 2}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(replay::RmirSampler::PearsonCorrelation(a, b));
  }
}
BENCHMARK(BM_PearsonCorrelation);

void BM_RmirSelect(benchmark::State& state) {
  Rng rng(15);
  replay::ReplayBuffer buffer(256);
  for (int i = 0; i < 256; ++i) {
    replay::ReplayItem item;
    item.inputs = Tensor::RandomNormal(Shape{12, 24, 2}, rng);
    item.targets = Tensor::RandomNormal(Shape{1, 24, 1}, rng);
    buffer.Add(std::move(item));
  }
  replay::RmirSampler sampler(replay::RmirConfig{32, 0.05f});
  std::vector<float> interference(256);
  for (auto& v : interference) v = rng.Uniform();
  Tensor current = Tensor::RandomNormal(Shape{8, 12, 24, 2}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Select(buffer, current, interference, 4));
  }
}
BENCHMARK(BM_RmirSelect);

// --- Thread-count sweeps over the parallel kernels --------------------------
// Arg = thread count. UseRealTime so wall-clock (not per-thread CPU) speedup
// is what the JSON series reports. Results are bitwise identical across the
// sweep; only the timing changes.

// Sets the thread count for the benchmark's duration, then restores it.
class ThreadSweep {
 public:
  explicit ThreadSweep(int threads) : saved_(runtime::GetNumThreads()) {
    runtime::SetNumThreads(threads);
  }
  ~ThreadSweep() { runtime::SetNumThreads(saved_); }

 private:
  int saved_;
};

void BM_BatchedMatMulThreads(benchmark::State& state) {
  ThreadSweep sweep(static_cast<int>(state.range(0)));
  Rng rng(20);
  Tensor a = Tensor::RandomNormal(Shape{8, 96, 96}, rng);
  Tensor b = Tensor::RandomNormal(Shape{8, 96, 96}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(ops::MatMul(a, b));
  state.SetItemsProcessed(state.iterations() * 8 * 96 * 96 * 96);
}
BENCHMARK(BM_BatchedMatMulThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_TemporalConvThreads(benchmark::State& state) {
  ThreadSweep sweep(static_cast<int>(state.range(0)));
  Rng rng(21);
  ag::Variable in(Tensor::RandomNormal(Shape{8, 16, 64, 24}, rng), false);
  ag::Variable w(Tensor::RandomNormal(Shape{16, 16, 1, 2}, rng), false);
  for (auto _ : state) benchmark::DoNotOptimize(ag::TemporalConv2d(in, w, 2));
}
BENCHMARK(BM_TemporalConvThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_GraphMatMulThreads(benchmark::State& state) {
  ThreadSweep sweep(static_cast<int>(state.range(0)));
  Rng rng(22);
  Rng graph_rng(23);
  graph::SensorNetwork g = graph::RandomGeometricGraph(64, 0.3f, graph_rng);
  const Tensor adjacency = g.AdjacencyMatrix();
  ag::Variable x(Tensor::RandomNormal(Shape{8, 16, 64, 12}, rng), false);
  for (auto _ : state) benchmark::DoNotOptimize(nn::GraphMatMul(adjacency, x));
}
BENCHMARK(BM_GraphMatMulThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_SumAxisThreads(benchmark::State& state) {
  ThreadSweep sweep(static_cast<int>(state.range(0)));
  Rng rng(24);
  Tensor a = Tensor::RandomNormal(Shape{64, 128, 96}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(ops::Sum(a, {1}));
}
BENCHMARK(BM_SumAxisThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_AddBroadcastThreads(benchmark::State& state) {
  ThreadSweep sweep(static_cast<int>(state.range(0)));
  Rng rng(25);
  Tensor a = Tensor::RandomNormal(Shape{64, 1, 96, 24}, rng);
  Tensor b = Tensor::RandomNormal(Shape{1, 16, 96, 24}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(ops::Add(a, b));
}
BENCHMARK(BM_AddBroadcastThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_AdamStep(benchmark::State& state) {
  // Adam over a realistic mix of parameter sizes (odd lengths exercise the
  // SIMD tail path). Gradients are re-filled each iteration so Step() always
  // has work; the moments evolve but shapes never change.
  Rng rng(30);
  const std::vector<Shape> shapes = {Shape{16, 257}, Shape{64, 64}, Shape{129},
                                     Shape{8, 8, 33}, Shape{1000}, Shape{7}};
  std::vector<ag::Variable> params;
  std::vector<Tensor> grads;
  int64_t total = 0;
  for (const Shape& s : shapes) {
    params.emplace_back(Tensor::RandomNormal(s, rng), true);
    grads.push_back(Tensor::RandomNormal(s, rng));
    total += s.NumElements();
  }
  nn::AdamConfig config;
  config.weight_decay = 0.02f;
  nn::Adam adam(params, config);
  for (auto _ : state) {
    adam.ZeroGrad();
    for (size_t i = 0; i < params.size(); ++i) params[i].AccumulateGrad(grads[i]);
    adam.Step();
    benchmark::DoNotOptimize(params[0].value().data());
  }
  state.SetItemsProcessed(state.iterations() * total);
}
BENCHMARK(BM_AdamStep);

void RunTrainStepBenchmark(benchmark::State& state, bool observed,
                           exec::ExecutorMode executor = exec::ExecutorMode::kTape) {
  // One URCL training epoch (1 batch) on a tiny synthetic pipeline. Reports
  // pool hit/miss counters per step: at steady state (after the warmup epoch)
  // misses should be ~0, i.e. the training loop makes no allocator calls.
  // The `observed` variant runs the identical loop with metrics, tracing and
  // the autograd profiler all enabled; comparing the two rows in
  // BENCH_micro_ops.json measures the full-observability overhead (budget:
  // <2% on real_time).
  data::TrafficConfig traffic;
  traffic.num_nodes = 6;
  traffic.num_days = 2;
  traffic.steps_per_day = 60;
  traffic.channels = 2;
  data::SyntheticTraffic generator(traffic);
  Tensor series = generator.GenerateSeries();
  data::MinMaxNormalizer normalizer = data::MinMaxNormalizer::Fit(series);
  data::StDataset dataset(normalizer.Transform(series), data::WindowConfig{12, 1, 0});

  core::UrclConfig config;
  config.encoder.num_nodes = traffic.num_nodes;
  config.encoder.in_channels = 2;
  config.encoder.input_steps = 12;
  config.encoder.hidden_channels = 4;
  config.encoder.latent_channels = 8;
  config.encoder.num_layers = 3;
  config.encoder.adaptive_embedding_dim = 3;
  config.batch_size = 4;
  config.max_batches_per_epoch = 1;
  config.replay_sample_count = 2;
  config.rmir_scan_size = 6;
  config.rmir_candidate_pool = 4;
  config.buffer_capacity = 32;
  config.proj_hidden = 8;
  config.decoder_hidden = 16;
  config.enable_augmentation = false;  // fixed shapes batch to batch
  config.executor = executor;          // pinned: BM_TrainStep is the tape baseline

  core::UrclTrainer trainer(config, generator.network());
  const obs::ObsConfig saved_obs = obs::Current();
  if (observed) {
    obs::ObsConfig all;
    all.metrics = all.trace = all.profiler = true;
    obs::Configure(all);
  }
  trainer.TrainStage(dataset, 2);  // warmup fills the pool's free lists
  pool::BufferPool& pool = pool::BufferPool::Get();
  pool.ResetCounters();
  for (auto _ : state) trainer.TrainStage(dataset, 1);
  const pool::PoolStats stats = pool.Stats();
  const double steps = static_cast<double>(std::max<int64_t>(1, state.iterations()));
  state.counters["pool_hits_per_step"] =
      benchmark::Counter(static_cast<double>(stats.hits) / steps);
  state.counters["pool_misses_per_step"] =
      benchmark::Counter(static_cast<double>(stats.misses) / steps);
  if (observed) {
    state.counters["trace_events_buffered"] =
        benchmark::Counter(static_cast<double>(obs::TraceEventCount()));
    obs::Configure(saved_obs);
    obs::ClearTrace();
    obs::ResetProfiler();
  }
}

// Both variants run 7 repetitions and report aggregates so the recorded
// overhead ratio (Observed median / baseline median) is robust to scheduler
// noise; record with --benchmark_enable_random_interleaving=true so slow
// drift cannot bias one variant's block (see bench/README.md).
void BM_TrainStep(benchmark::State& state) { RunTrainStepBenchmark(state, false); }
BENCHMARK(BM_TrainStep)
    ->Unit(benchmark::kMillisecond)
    ->Repetitions(7)
    ->ReportAggregatesOnly(true);

void BM_TrainStepObserved(benchmark::State& state) { RunTrainStepBenchmark(state, true); }
BENCHMARK(BM_TrainStepObserved)
    ->Unit(benchmark::kMillisecond)
    ->Repetitions(7)
    ->ReportAggregatesOnly(true);

// Identical loop on the compiled executor (DESIGN.md §12): the train, RMIR
// virtual-step and per-item graphs replay as arena programs. Compare the
// median against BM_TrainStep for the tape-vs-plan speedup; the pool
// counters should report ~0 acquisitions per step (arena-only steady state).
void BM_PlanStep(benchmark::State& state) {
  RunTrainStepBenchmark(state, false, exec::ExecutorMode::kPlan);
}
BENCHMARK(BM_PlanStep)
    ->Unit(benchmark::kMillisecond)
    ->Repetitions(7)
    ->ReportAggregatesOnly(true);

void BM_BuildSupportsDense(benchmark::State& state) {
  Rng graph_rng(16);
  graph::SensorNetwork g = graph::RandomGeometricGraph(32, 0.3f, graph_rng);
  const Tensor adjacency = g.AdjacencyMatrix();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::BuildSupportsDense(adjacency, false));
  }
}
BENCHMARK(BM_BuildSupportsDense);

}  // namespace
}  // namespace urcl

// Custom main: same as BENCHMARK_MAIN() but defaults the JSON series output
// to BENCH_micro_ops.json so the threads sweep is recorded without extra
// flags. Any explicit --benchmark_out takes precedence. Stamps the build
// configuration into the JSON context (the library's own `library_build_type`
// key describes the distro's libbenchmark, not this code — see bench/README.md).
int main(int argc, char** argv) {
#ifndef NDEBUG
  std::fprintf(stderr,
               "********************************************************************\n"
               "* WARNING: bench_micro_ops built WITHOUT NDEBUG (URCL_CHECK live). *\n"
               "* Timings are NOT comparable to the recorded Release baselines.    *\n"
               "********************************************************************\n");
#endif
#ifdef NDEBUG
  benchmark::AddCustomContext("urcl_build_type", "optimized");
#else
  benchmark::AddCustomContext("urcl_build_type", "debug");
#endif
  benchmark::AddCustomContext("urcl_simd_backend", urcl::simd::kBackendName);
  benchmark::AddCustomContext(
      "urcl_executor", urcl::exec::ExecutorModeName(urcl::exec::DefaultExecutorMode()));
  benchmark::AddCustomContext(
      "urcl_pool", urcl::pool::BufferPool::Get().enabled() ? "on" : "off");
  benchmark::AddCustomContext(
      "urcl_obs_overhead",
      "compare BM_TrainStep (observability off) with BM_TrainStepObserved "
      "(metrics+trace+profiler on); budget <2% on real_time");
  benchmark::AddCustomContext(
      "urcl_check_overhead",
      "version counters + gate branches stay live when URCL_CHECK is off; "
      "budget <2% on BM_TrainStep real_time vs pre-check main (interleaved "
      "medians; counters ride the pool's owner block, bump is relaxed "
      "load+store)");
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_micro_ops.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
