// Reproduces Figure 6: ablation study of URCL's components on METR-LA-like
// and PEMS08-like streams. Variants (Sec. V-B3):
//   URCL      — the full framework
//   w/o_STU   — replay samples concatenated instead of STMixup
//   w/o_RMIR  — uniform random replay sampling instead of RMIR
//   w/o_STA   — no spatio-temporal augmentation (identity views)
//   w/o_GCL   — no GraphCL loss (task loss only)
// Expected shape (paper): removing any component hurts; w/o_STA worst.
#include "bench/bench_common.h"
#include "common/table_printer.h"

using namespace urcl;

namespace {

core::UrclConfig MakeVariant(const std::string& variant, core::UrclConfig config) {
  if (variant == "w/o_STU") config.enable_mixup = false;
  if (variant == "w/o_RMIR") config.enable_rmir = false;
  if (variant == "w/o_STA") config.enable_augmentation = false;
  if (variant == "w/o_GCL") config.enable_ssl = false;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bench::BenchScale scale = bench::ResolveScale(flags);
  const int64_t seeds = flags.GetInt("seeds", 2);
  bench::PrintHeader("Figure 6: RMSE and MAE of URCL and Its Variants", scale);

  const std::vector<data::DatasetPreset> presets = {data::MetrLaPreset(),
                                                    data::Pems08Preset()};
  const std::vector<std::string> variants = {"URCL", "w/o_STU", "w/o_RMIR", "w/o_STA",
                                             "w/o_GCL"};

  for (const data::DatasetPreset& preset : presets) {
    std::printf("Dataset: %s-like\n", preset.name.c_str());
    TablePrinter mae({"Variant", "B_set", "I_set1", "I_set2", "I_set3", "I_set4"});
    TablePrinter rmse({"Variant", "B_set", "I_set1", "I_set2", "I_set3", "I_set4"});
    for (const std::string& variant : variants) {
      const auto results = bench::AverageOverSeeds(seeds, scale.seed, [&](uint64_t seed) {
        bench::BenchScale run_scale = scale;
        run_scale.seed = seed;
        const bench::BenchPipeline p = bench::BuildPipeline(preset, run_scale);
        core::UrclConfig config =
            MakeVariant(variant, bench::MakeUrclConfig(p, run_scale));
        core::UrclTrainer model(config, p.generator->network());
        core::ProtocolOptions options;
        options.epochs_per_stage = run_scale.epochs;
        return core::RunContinualProtocol(model, *p.stream, p.normalizer,
                                          p.target_channel, options);
      });
      std::vector<std::string> mae_row = {variant};
      std::vector<std::string> rmse_row = {variant};
      for (const core::StageResult& r : results) {
        mae_row.push_back(TablePrinter::Num(r.metrics.mae));
        rmse_row.push_back(TablePrinter::Num(r.metrics.rmse));
      }
      mae.AddRow(mae_row);
      rmse.AddRow(rmse_row);
    }
    std::printf("MAE:\n");
    mae.Print();
    std::printf("RMSE:\n");
    rmse.Print();
    std::printf("\n");
  }
  return 0;
}
