// Reproduces Table III: overall accuracy on all four datasets. Every
// baseline (ARIMA, DCRNN, STGCN, MTGNN, AGCRN, STGODE) is retrained on each
// base/incremental set (the replay-based continual protocol of Fig. 5) and
// compared with URCL. Expected shape (paper): URCL best in most cells;
// ARIMA trails the deep models (worst on flow datasets); the deep baselines
// cluster together.
//
// Extra flags: --seeds K (average over K seeds), --models a,b,c (subset),
// --datasets metr-la,pems-bay,pems04,pems08 (subset).
#include <sstream>

#include "bench/bench_common.h"
#include "common/table_printer.h"

using namespace urcl;

namespace {

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bench::BenchScale scale = bench::ResolveScale(flags);
  const int64_t seeds = flags.GetInt("seeds", 2);
  bench::PrintHeader("Table III: Overall Accuracy on Four Datasets", scale);

  const std::vector<std::string> models = SplitCsv(
      flags.GetString("models", "ARIMA,DCRNN,STGCN,MTGNN,AGCRN,STGODE,URCL"));
  const std::vector<std::string> wanted = SplitCsv(
      flags.GetString("datasets", "metr-la,pems-bay,pems04,pems08"));

  std::vector<data::DatasetPreset> presets;
  for (const data::DatasetPreset& preset : data::AllPresets()) {
    std::string key = preset.name;
    for (auto& c : key) c = c == '-' ? '-' : static_cast<char>(std::tolower(c));
    for (const std::string& w : wanted) {
      if (key == w) presets.push_back(preset);
    }
  }

  for (const data::DatasetPreset& preset : presets) {
    std::printf("Dataset: %s-like\n", preset.name.c_str());
    TablePrinter mae({"Method", "B_set", "I_set1", "I_set2", "I_set3", "I_set4"});
    TablePrinter rmse({"Method", "B_set", "I_set1", "I_set2", "I_set3", "I_set4"});
    for (const std::string& model_name : models) {
      const auto results = bench::AverageOverSeeds(
          seeds, scale.seed, [&](uint64_t seed) {
            bench::BenchScale run_scale = scale;
            run_scale.seed = seed;
            const bench::BenchPipeline p = bench::BuildPipeline(preset, run_scale);
            core::ProtocolOptions options;
            options.epochs_per_stage = run_scale.epochs;
            if (model_name == "URCL") {
              core::UrclTrainer model(bench::MakeUrclConfig(p, run_scale),
                                      p.generator->network());
              return core::RunContinualProtocol(model, *p.stream, p.normalizer,
                                                p.target_channel, options);
            }
            auto model = baselines::MakeBaseline(
                model_name, bench::MakeZooOptions(p, run_scale), p.generator->network());
            return core::RunContinualProtocol(*model, *p.stream, p.normalizer,
                                              p.target_channel, options);
          });
      std::vector<std::string> mae_row = {model_name};
      std::vector<std::string> rmse_row = {model_name};
      for (const core::StageResult& r : results) {
        mae_row.push_back(TablePrinter::Num(r.metrics.mae));
        rmse_row.push_back(TablePrinter::Num(r.metrics.rmse));
      }
      mae.AddRow(mae_row);
      rmse.AddRow(rmse_row);
    }
    std::printf("MAE:\n");
    mae.Print();
    std::printf("RMSE:\n");
    rmse.Print();
    std::printf("\n");
  }
  return 0;
}
