// Reproduces Table IV: effect of different backbones on METR-LA-like and
// PEMS04-like streams. The URCL framework is run with its default CNN-based
// GraphWaveNet encoder and with the RNN-based DCRNN / attention-based GeoMAN
// encoders swapped in (Sec. V-B4). Expected shape (paper): URCL/GraphWaveNet
// best in most cells, the other backbones close behind — the framework is
// backbone-agnostic.
#include "bench/bench_common.h"
#include "common/table_printer.h"

using namespace urcl;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bench::BenchScale scale = bench::ResolveScale(flags);
  const int64_t seeds = flags.GetInt("seeds", 2);
  bench::PrintHeader("Table IV: Effect of Various Backbones", scale);

  struct BackboneChoice {
    std::string label;
    core::BackboneType type;
  };
  const std::vector<BackboneChoice> backbones = {
      {"DCRNN", core::BackboneType::kDcrnn},
      {"GeoMAN", core::BackboneType::kGeoman},
      {"URCL (GraphWaveNet)", core::BackboneType::kGraphWaveNet},
  };

  for (const data::DatasetPreset& preset :
       {data::MetrLaPreset(), data::Pems04Preset()}) {
    std::printf("Dataset: %s-like\n", preset.name.c_str());
    TablePrinter mae({"Backbone", "B_set", "I_set1", "I_set2", "I_set3", "I_set4"});
    TablePrinter rmse({"Backbone", "B_set", "I_set1", "I_set2", "I_set3", "I_set4"});
    for (const BackboneChoice& backbone : backbones) {
      const auto results = bench::AverageOverSeeds(
          seeds, scale.seed, [&](uint64_t seed) {
            bench::BenchScale run_scale = scale;
            run_scale.seed = seed;
            const bench::BenchPipeline p = bench::BuildPipeline(preset, run_scale);
            core::UrclConfig config = bench::MakeUrclConfig(p, run_scale);
            config.backbone = backbone.type;
            core::UrclTrainer model(config, p.generator->network());
            core::ProtocolOptions options;
            options.epochs_per_stage = run_scale.epochs;
            return core::RunContinualProtocol(model, *p.stream, p.normalizer,
                                              p.target_channel, options);
          });
      std::vector<std::string> mae_row = {backbone.label};
      std::vector<std::string> rmse_row = {backbone.label};
      for (const core::StageResult& r : results) {
        mae_row.push_back(TablePrinter::Num(r.metrics.mae));
        rmse_row.push_back(TablePrinter::Num(r.metrics.rmse));
      }
      mae.AddRow(mae_row);
      rmse.AddRow(rmse_row);
    }
    std::printf("MAE:\n");
    mae.Print();
    std::printf("RMSE:\n");
    rmse.Print();
    std::printf("\n");
  }
  return 0;
}
