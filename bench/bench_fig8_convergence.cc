// Reproduces Figure 8: training convergence of URCL on METR-LA-like and
// PEMS08-like streams. Prints the per-epoch training loss for each stage
// (the paper trains 100 epochs per set; scale with --epochs).
// Expected shape: the base set needs the most epochs; incremental sets
// converge faster (knowledge transfer), with minor mixup-induced wiggles.
#include <memory>

#include "bench/bench_common.h"
#include "common/csv_writer.h"
#include "common/table_printer.h"

using namespace urcl;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  bench::BenchScale scale = bench::ResolveScale(flags);
  // Convergence needs more epochs than the accuracy tables.
  if (!flags.Has("epochs")) scale.epochs = scale.name == "full" ? 30 : 10;
  bench::PrintHeader("Figure 8: Training Convergence of URCL", scale);

  // Optional plottable export: --csv <path> writes dataset,stage,epoch,loss.
  std::unique_ptr<CsvWriter> csv;
  if (flags.Has("csv")) {
    csv = std::make_unique<CsvWriter>(
        flags.GetString("csv", "fig8_convergence.csv"),
        std::vector<std::string>{"dataset", "stage", "epoch", "loss"});
  }

  for (const data::DatasetPreset& preset :
       {data::MetrLaPreset(), data::Pems08Preset()}) {
    const bench::BenchPipeline p = bench::BuildPipeline(preset, scale);
    core::UrclConfig config = bench::MakeUrclConfig(p, scale);
    core::UrclTrainer model(config, p.generator->network());

    std::printf("Dataset: %s-like (loss = L_task + L_ssl per epoch)\n",
                preset.name.c_str());
    for (int64_t i = 0; i < p.stream->NumStages(); ++i) {
      const data::StreamStage& stage = p.stream->Stage(i);
      const std::vector<float> losses = model.TrainStage(stage.train, scale.epochs);
      std::printf("  %-7s:", stage.name.c_str());
      for (size_t e = 0; e < losses.size(); ++e) {
        std::printf(" %.4f", losses[e]);
        if (csv != nullptr) {
          csv->WriteRow({preset.name, stage.name, std::to_string(e),
                         std::to_string(losses[e])});
        }
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  if (csv != nullptr) std::printf("Wrote CSV series to %s\n", csv->path().c_str());
  return 0;
}
