// Closed-loop serving load generator: N client threads fire batched forecast
// queries at a ForecastService while a background UrclTrainer trains through
// two stream stages and hot-swaps weight snapshots into the hub mid-flight.
// Records QPS and latency percentiles (p50/p90/p99 from the
// urcl.serve.latency_ns obs histogram) into BENCH_serving.json, together with
// the serving failure-model counters (deadline sheds, degraded answers,
// rollbacks, quarantined snapshots) so resilience regressions show up in the
// bench record.
//
//   ./bench_serving [--clients 4] [--nodes 12] [--epochs N] [--batches N]
//                   [--publish-every 4] [--deadline-us 0]
//                   [--executor plan|tape] [--out BENCH_serving.json]
//
// --executor selects the inference executor (default: URCL_EXEC, else plan).
// Clients time every query themselves and split latencies into steady-state
// vs hot-swap-window samples (a query lands in the swap window when it is the
// client's first on a new model version — in plan mode that query pays the
// recompile — or when the hub swapped mid-flight), so the recorded p99 can be
// attributed to swap/recompile stalls vs the steady serving path.
//
// The run is closed-loop (each client issues its next query as soon as the
// previous one returns) and ends once the trainer finishes both stages; the
// harness then asserts that at least one hot-swap happened while queries
// were in flight and that clients observed more than one model version.
// --deadline-us attaches a latency budget to every query; shed queries put
// the client into jittered exponential backoff (50us doubling to 5ms, +-50%
// jitter, reset on success), so the reported QPS is goodput under overload
// rather than a retry storm.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "data/normalizer.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "serve/service.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace {

// Quantile estimate from a histogram snapshot: finds the bucket holding the
// q-th observation and interpolates linearly inside its bounds (the +Inf
// bucket reports its lower edge; good enough for latency reporting).
double HistogramQuantile(const obs::Histogram::Snapshot& snap, double q) {
  if (snap.count == 0) return 0.0;
  const double target = q * static_cast<double>(snap.count);
  double cumulative = 0.0;
  for (size_t i = 0; i < snap.bucket_counts.size(); ++i) {
    const double in_bucket = static_cast<double>(snap.bucket_counts[i]);
    if (cumulative + in_bucket < target || in_bucket == 0.0) {
      cumulative += in_bucket;
      continue;
    }
    const double lower = i == 0 ? 0.0 : snap.bounds[i - 1];
    if (i >= snap.bounds.size()) return lower;  // +Inf bucket
    const double upper = snap.bounds[i];
    const double fraction = (target - cumulative) / in_bucket;
    return lower + fraction * (upper - lower);
  }
  return snap.bounds.empty() ? 0.0 : snap.bounds.back();
}

// Exact quantile over raw per-query samples (destructive: partially sorts).
double SampleQuantile(std::vector<double>& samples, double q) {
  if (samples.empty()) return 0.0;
  const size_t index = static_cast<size_t>(q * static_cast<double>(samples.size() - 1));
  std::nth_element(samples.begin(), samples.begin() + static_cast<std::ptrdiff_t>(index),
                   samples.end());
  return samples[index];
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const bench::BenchScale scale = bench::ResolveScale(flags);
  const int64_t clients = flags.GetInt("clients", 4);
  const int64_t publish_every = flags.GetInt("publish-every", 4);
  const int64_t deadline_us = flags.GetInt("deadline-us", 0);
  const std::string out_path = flags.GetString("out", "BENCH_serving.json");
  URCL_CHECK_GE(clients, 1);
  std::string executor_name = flags.GetString("executor", "");
  if (executor_name.empty()) {
    executor_name = exec::ExecutorModeName(exec::DefaultExecutorMode());
  }
  URCL_CHECK(executor_name == "plan" || executor_name == "tape")
      << "--executor must be plan or tape, got " << executor_name;
  const exec::ExecutorMode executor =
      executor_name == "plan" ? exec::ExecutorMode::kPlan : exec::ExecutorMode::kTape;

  // The latency histogram lives in the obs registry; make sure it counts.
  obs::ObsConfig obs_config = obs::Current();
  obs_config.metrics = true;
  obs::Configure(obs_config);

  // Two-stage synthetic stream sharing one training-time normalizer.
  data::TrafficConfig traffic;
  traffic.num_nodes = scale.nodes;
  traffic.num_days = 4;
  traffic.steps_per_day = 72;
  traffic.channels = 2;
  traffic.seed = scale.seed;
  data::SyntheticTraffic generator(traffic);
  const Tensor series = generator.GenerateSeries();
  const data::MinMaxNormalizer normalizer = data::MinMaxNormalizer::Fit(series);
  const Tensor normalized = normalizer.Transform(series);
  const int64_t steps = normalized.dim(0);
  const data::WindowConfig window{12, 1, 0};
  const Tensor first_half = ops::Slice(normalized, {0, 0, 0},
                                       {steps / 2, traffic.num_nodes, traffic.channels});
  const Tensor second_half = ops::Slice(normalized, {steps / 2, 0, 0},
                                        {steps - steps / 2, traffic.num_nodes, traffic.channels});
  data::StDataset stage0(first_half, window);
  data::StDataset stage1(second_half, window);

  serve::ServiceConfig config;
  config.model.encoder.num_nodes = scale.nodes;
  config.model.encoder.in_channels = traffic.channels;
  config.model.encoder.input_steps = window.input_steps;
  config.model.encoder.hidden_channels = scale.hidden;
  config.model.encoder.latent_channels = scale.latent;
  config.model.encoder.num_layers = 3;
  config.model.output_steps = window.output_steps;
  config.model.max_batches_per_epoch = scale.max_batches_per_epoch;
  config.model.seed = scale.seed;
  config.executor = executor;
  serve::ForecastService service(config, generator.network(), normalizer);

  core::UrclTrainer trainer(config.model, generator.network());
  trainer.SetSnapshotSink(service.SnapshotSink(), publish_every);

  // Pre-assemble a pool of query windows the clients cycle through (the
  // closed loop measures serving, not request construction).
  std::vector<Tensor> query_pool;
  for (int64_t i = 0; i < 16 && i < stage0.NumSamples(); ++i) {
    query_pool.push_back(stage0.MakeBatch({i}).first);
  }
  URCL_CHECK(!query_pool.empty());

  std::atomic<bool> stop{false};
  std::atomic<int64_t> total_queries{0};
  std::atomic<int64_t> total_errors{0};
  std::atomic<int64_t> degraded_responses{0};
  std::atomic<int64_t> backoff_waits{0};
  std::atomic<int64_t> min_version_seen{1 << 30};
  std::atomic<int64_t> max_version_seen{0};
  // Per-query latencies split by swap-window attribution, merged at the end.
  std::mutex samples_mu;
  std::vector<double> steady_latency_ns;
  std::vector<double> swap_window_latency_ns;

  std::thread trainer_thread([&] {
    trainer.BeginStage(0);
    trainer.TrainStage(stage0, scale.epochs);
    trainer.BeginStage(1);
    trainer.TrainStage(stage1, scale.epochs);
    stop.store(true);
  });

  // Hold the clients until the first snapshot is live so the measured window
  // contains served queries only. The deadline keeps a wedged trainer from
  // hanging the bench (exempt from banned-call/clock: load-generator pacing).
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (service.hub().Current() == nullptr && !stop.load()) {
    URCL_CHECK(std::chrono::steady_clock::now() < deadline) << "no snapshot within 120s";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const Stopwatch measured;
  std::vector<std::thread> client_threads;
  for (int64_t c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      constexpr int64_t kBackoffBaseUs = 50;
      constexpr int64_t kBackoffCapUs = 5000;
      Rng backoff_rng(static_cast<uint64_t>(1000 + c));
      int64_t backoff_us = 0;  // 0 = not backing off
      int64_t i = static_cast<int64_t>(c);
      int64_t last_version = -1;  // model version of this client's last answer
      std::vector<double> local_steady_ns;
      std::vector<double> local_swap_ns;
      bool first = true;  // always issue >= 1 query, even if the trainer wins
      while (first || !stop.load(std::memory_order_relaxed)) {
        first = false;
        core::PredictRequest request;
        request.inputs = query_pool[static_cast<size_t>(i++ % query_pool.size())];
        request.deadline_ns = deadline_us * 1000;
        core::PredictResponse response;
        const int64_t swaps_before = service.hub().swap_count();
        const int64_t query_start_ns = MonotonicNowNs();
        const Status status = service.Predict(request, &response);
        const double query_ns = static_cast<double>(MonotonicNowNs() - query_start_ns);
        if (status.ok()) {
          // Swap window: this client's first answer from a new model version
          // (in plan mode that query pays the recompile), or the hub swapped
          // while the query was in flight.
          const bool swap_window = response.model_version != last_version ||
                                   service.hub().swap_count() != swaps_before;
          last_version = response.model_version;
          (swap_window ? local_swap_ns : local_steady_ns).push_back(query_ns);
          backoff_us = 0;
          total_queries.fetch_add(1, std::memory_order_relaxed);
          if (response.degraded) degraded_responses.fetch_add(1, std::memory_order_relaxed);
          int64_t seen = min_version_seen.load();
          while (response.model_version < seen &&
                 !min_version_seen.compare_exchange_weak(seen, response.model_version)) {
          }
          seen = max_version_seen.load();
          while (response.model_version > seen &&
                 !max_version_seen.compare_exchange_weak(seen, response.model_version)) {
          }
        } else {
          total_errors.fetch_add(1, std::memory_order_relaxed);
          // Retry pressure (shed or drained queries) backs off with jittered
          // exponential delay so the measured QPS is goodput, not a retry
          // storm; request errors (bad input) would only repeat identically.
          const StatusCode code = status.code();
          if (code == StatusCode::kOverloaded || code == StatusCode::kDeadlineExceeded ||
              code == StatusCode::kUnavailable) {
            backoff_us = backoff_us == 0
                             ? kBackoffBaseUs
                             : std::min<int64_t>(backoff_us * 2, kBackoffCapUs);
            const int64_t jittered =
                backoff_rng.UniformInt(backoff_us / 2, backoff_us + backoff_us / 2);
            backoff_waits.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(std::chrono::microseconds(jittered));
          }
        }
      }
      std::lock_guard<std::mutex> lock(samples_mu);
      steady_latency_ns.insert(steady_latency_ns.end(), local_steady_ns.begin(),
                               local_steady_ns.end());
      swap_window_latency_ns.insert(swap_window_latency_ns.end(), local_swap_ns.begin(),
                                    local_swap_ns.end());
    });
  }

  trainer_thread.join();
  for (std::thread& t : client_threads) t.join();
  const double seconds = static_cast<double>(measured.ElapsedNs()) / 1e9;

  const obs::MetricsSnapshot metrics = obs::MetricsRegistry::Get().Snapshot();
  obs::Histogram::Snapshot latency;
  const auto it = metrics.histograms.find("urcl.serve.latency_ns");
  if (it != metrics.histograms.end()) latency = it->second;
  const double qps = seconds > 0.0 ? static_cast<double>(total_queries.load()) / seconds : 0.0;
  const double p50 = HistogramQuantile(latency, 0.50);
  const double p90 = HistogramQuantile(latency, 0.90);
  const double p99 = HistogramQuantile(latency, 0.99);
  const double mean = latency.count > 0 ? latency.sum / static_cast<double>(latency.count) : 0.0;
  const int64_t swaps = service.hub().swap_count();
  const double steady_p50 = SampleQuantile(steady_latency_ns, 0.50);
  const double steady_p99 = SampleQuantile(steady_latency_ns, 0.99);
  const double swap_p50 = SampleQuantile(swap_window_latency_ns, 0.50);
  const double swap_p99 = SampleQuantile(swap_window_latency_ns, 0.99);

  std::printf("serving bench: %lld clients, %.1fs measured, executor=%s\n",
              static_cast<long long>(clients), seconds, executor_name.c_str());
  std::printf("  queries   %lld ok, %lld rejected/errored (%.0f QPS)\n",
              static_cast<long long>(total_queries.load()),
              static_cast<long long>(total_errors.load()), qps);
  std::printf("  latency   p50 %.0f us  p90 %.0f us  p99 %.0f us  mean %.0f us\n", p50 / 1e3,
              p90 / 1e3, p99 / 1e3, mean / 1e3);
  std::printf("  steady    p50 %.0f us  p99 %.0f us  (%lld queries outside swap windows)\n",
              steady_p50 / 1e3, steady_p99 / 1e3,
              static_cast<long long>(steady_latency_ns.size()));
  std::printf("  swap-win  p50 %.0f us  p99 %.0f us  (%lld first-on-version/swap-in-flight; "
              "%lld plan compiles)\n",
              swap_p50 / 1e3, swap_p99 / 1e3,
              static_cast<long long>(swap_window_latency_ns.size()),
              static_cast<long long>(service.plan_compiles()));
  std::printf("  versions  %lld snapshots published, %lld swaps, clients saw v%lld..v%lld\n",
              static_cast<long long>(trainer.snapshots_published()),
              static_cast<long long>(swaps),
              static_cast<long long>(min_version_seen.load()),
              static_cast<long long>(max_version_seen.load()));

  std::printf("  failures  %lld deadline-shed, %lld degraded, %lld rollbacks, "
              "%lld quarantined, %lld backoff waits\n",
              static_cast<long long>(service.deadline_shed()),
              static_cast<long long>(degraded_responses.load()),
              static_cast<long long>(service.rollback_count()),
              static_cast<long long>(service.quarantined_snapshots()),
              static_cast<long long>(backoff_waits.load()));

  // At least one hot-swap must have been observable while clients queried.
  URCL_CHECK_GE(swaps, 2) << "trainer published fewer than two snapshots";
  URCL_CHECK_GT(total_queries.load(), 0) << "no queries served";
  if (executor == exec::ExecutorMode::kPlan) {
    // Hot-swap recompile must actually run: the initial compile plus at
    // least one recompile triggered by a version swap.
    URCL_CHECK_GE(service.plan_compiles(), 2)
        << "plan executor never recompiled across hot-swaps";
  }

  std::ofstream out(out_path);
  URCL_CHECK(out.good()) << "cannot write " << out_path;
  out << "{\n"
      << "  \"bench\": \"serving\",\n"
      << "  \"scale\": " << obs::JsonString(scale.name) << ",\n"
      << "  \"executor\": " << obs::JsonString(executor_name) << ",\n"
      << "  \"plan_compiles\": " << service.plan_compiles() << ",\n"
      << "  \"clients\": " << clients << ",\n"
      << "  \"measured_seconds\": " << obs::JsonNumber(seconds) << ",\n"
      << "  \"queries_ok\": " << total_queries.load() << ",\n"
      << "  \"queries_rejected_or_errored\": " << total_errors.load() << ",\n"
      << "  \"qps\": " << obs::JsonNumber(qps) << ",\n"
      << "  \"latency_ns\": {\n"
      << "    \"p50\": " << obs::JsonNumber(p50) << ",\n"
      << "    \"p90\": " << obs::JsonNumber(p90) << ",\n"
      << "    \"p99\": " << obs::JsonNumber(p99) << ",\n"
      << "    \"mean\": " << obs::JsonNumber(mean) << ",\n"
      << "    \"count\": " << latency.count << "\n"
      << "  },\n"
      << "  \"latency_ns_steady\": {\n"
      << "    \"p50\": " << obs::JsonNumber(steady_p50) << ",\n"
      << "    \"p99\": " << obs::JsonNumber(steady_p99) << ",\n"
      << "    \"count\": " << steady_latency_ns.size() << "\n"
      << "  },\n"
      << "  \"latency_ns_swap_window\": {\n"
      << "    \"p50\": " << obs::JsonNumber(swap_p50) << ",\n"
      << "    \"p99\": " << obs::JsonNumber(swap_p99) << ",\n"
      << "    \"count\": " << swap_window_latency_ns.size() << "\n"
      << "  },\n"
      << "  \"snapshots_published\": " << trainer.snapshots_published() << ",\n"
      << "  \"hot_swaps\": " << swaps << ",\n"
      << "  \"min_version_seen\": " << min_version_seen.load() << ",\n"
      << "  \"max_version_seen\": " << max_version_seen.load() << ",\n"
      << "  \"served_queries\": " << service.served_queries() << ",\n"
      << "  \"rejected_queries\": " << service.rejected_queries() << ",\n"
      << "  \"deadline_us\": " << deadline_us << ",\n"
      << "  \"deadline_shed\": " << service.deadline_shed() << ",\n"
      << "  \"degraded_responses\": " << degraded_responses.load() << ",\n"
      << "  \"rollbacks\": " << service.rollback_count() << ",\n"
      << "  \"snapshots_quarantined\": " << service.quarantined_snapshots() << ",\n"
      << "  \"backoff_waits\": " << backoff_waits.load() << ",\n"
      << "  \"context\": {\n";
  // Failure-model context from the obs registry (the `urcl.serve.*` counters
  // the service exports through the obs facade), so the bench record and the
  // Prometheus scrape agree on the incident tally for the run.
  const char* const kContextCounters[] = {
      "urcl.serve.rollbacks", "urcl.serve.snapshots_quarantined",
      "urcl.serve.deadline_shed", "urcl.serve.plan_compiles"};
  for (size_t i = 0; i < 4; ++i) {
    const auto counter_it = metrics.counters.find(kContextCounters[i]);
    const uint64_t value = counter_it != metrics.counters.end() ? counter_it->second : 0;
    out << "    " << obs::JsonString(kContextCounters[i]) << ": " << value
        << (i + 1 < 4 ? ",\n" : "\n");
  }
  out << "  }\n"
      << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace urcl

int main(int argc, char** argv) { return urcl::Run(argc, argv); }
