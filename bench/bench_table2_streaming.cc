// Reproduces Table II: performance of training on streaming data.
// Three strategies on PEMS-BAY-like and PEMS08-like streams:
//   OneFitAll  — GraphWaveNet trained on the base set only
//   FinetuneST — GraphWaveNet finetuned on each incremental set
//   URCL       — the full replay-based framework
// Metrics: MAE and RMSE on the pooled test sets of all stages seen so far.
// Expected shape (paper): OneFitAll/FinetuneST match URCL on B_set and
// degrade on the incremental sets; URCL stays flat.
#include "bench/bench_common.h"
#include "common/table_printer.h"

using namespace urcl;

namespace {

std::vector<core::StageResult> RunStrategy(const std::string& strategy,
                                           const data::DatasetPreset& preset,
                                           const bench::BenchScale& scale, int64_t seeds) {
  return bench::AverageOverSeeds(seeds, scale.seed, [&](uint64_t seed) {
    bench::BenchScale run_scale = scale;
    run_scale.seed = seed;
    const bench::BenchPipeline p = bench::BuildPipeline(preset, run_scale);
    core::UrclConfig config = bench::MakeUrclConfig(p, run_scale);
    core::ProtocolOptions options;
    options.epochs_per_stage = run_scale.epochs;
    if (strategy == "OneFitAll") {
      config.enable_replay = false;
      config.enable_ssl = false;
      options.strategy = core::TrainingStrategy::kOneFitAll;
    } else if (strategy == "FinetuneST") {
      config.enable_replay = false;
      config.enable_ssl = false;
    }
    core::UrclTrainer model(config, p.generator->network());
    return core::RunContinualProtocol(model, *p.stream, p.normalizer, p.target_channel,
                                      options);
  });
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bench::BenchScale scale = bench::ResolveScale(flags);
  const int64_t seeds = flags.GetInt("seeds", 2);
  bench::PrintHeader("Table II: Performance of Training on Streaming Data", scale);

  const std::vector<data::DatasetPreset> presets = {data::PemsBayPreset(),
                                                    data::Pems08Preset()};
  const std::vector<std::string> strategies = {"OneFitAll", "FinetuneST", "URCL"};

  for (const data::DatasetPreset& preset : presets) {
    std::printf("Dataset: %s-like (%s prediction)\n", preset.name.c_str(),
                preset.speed_target ? "speed" : "flow");
    TablePrinter mae({"Method", "B_set", "I_set1", "I_set2", "I_set3", "I_set4"});
    TablePrinter rmse({"Method", "B_set", "I_set1", "I_set2", "I_set3", "I_set4"});
    for (const std::string& strategy : strategies) {
      const auto results = RunStrategy(strategy, preset, scale, seeds);
      std::vector<std::string> mae_row = {strategy};
      std::vector<std::string> rmse_row = {strategy};
      for (const core::StageResult& r : results) {
        mae_row.push_back(TablePrinter::Num(r.metrics.mae));
        rmse_row.push_back(TablePrinter::Num(r.metrics.rmse));
      }
      mae.AddRow(mae_row);
      rmse.AddRow(rmse_row);
    }
    std::printf("MAE:\n");
    mae.Print();
    std::printf("RMSE:\n");
    rmse.Print();
    std::printf("\n");
  }
  return 0;
}
