// Extension: continual-learning transfer analysis beyond the paper's tables.
// Prints the full stage-accuracy matrix A[k][j] = MAE on stage j's test after
// training through stage k, plus the standard CL summary metrics (average
// accuracy and backward transfer / forgetting), for three strategies:
//   FinetuneST (no mitigation), EWC (regularization-based, Sec. II-B family),
//   URCL (replay-based, the paper's method).
// Expected shape: FinetuneST forgets (upper-right of the matrix degrades as
// you go down a column), EWC forgets less but adapts less, URCL balances.
#include "bench/bench_common.h"
#include "common/table_printer.h"
#include "core/ewc.h"

using namespace urcl;

namespace {

// Runs one strategy and returns the accuracy matrix [stage_trained][stage_tested].
std::vector<std::vector<double>> AccuracyMatrix(core::StPredictor& model,
                                                const bench::BenchPipeline& p,
                                                int64_t epochs) {
  std::vector<std::vector<double>> matrix;
  for (int64_t k = 0; k < p.stream->NumStages(); ++k) {
    model.TrainStage(p.stream->Stage(k).train, epochs);
    std::vector<double> row;
    for (int64_t j = 0; j <= k; ++j) {
      row.push_back(core::EvaluatePredictor(model, p.stream->Stage(j).test, p.normalizer,
                                            p.target_channel)
                        .mae);
    }
    matrix.push_back(std::move(row));
  }
  return matrix;
}

void PrintMatrix(const std::string& name, const std::vector<std::vector<double>>& matrix,
                 const bench::BenchPipeline& p) {
  std::printf("%s — MAE on stage j's test after training stage k:\n", name.c_str());
  std::vector<std::string> header = {"after \\ on"};
  for (int64_t j = 0; j < p.stream->NumStages(); ++j) header.push_back(p.stream->Stage(j).name);
  TablePrinter table(header);
  for (size_t k = 0; k < matrix.size(); ++k) {
    std::vector<std::string> row = {p.stream->Stage(static_cast<int64_t>(k)).name};
    for (const double mae : matrix[k]) row.push_back(TablePrinter::Num(mae));
    table.AddRow(row);
  }
  table.Print();

  // Average accuracy (final row mean) and backward transfer:
  // BWT = mean over j < K of (A[K][j] - A[j][j]); positive = forgetting (MAE rose).
  const std::vector<double>& final_row = matrix.back();
  double avg = 0.0;
  for (const double mae : final_row) avg += mae;
  avg /= static_cast<double>(final_row.size());
  double forgetting = 0.0;
  for (size_t j = 0; j + 1 < final_row.size(); ++j) {
    forgetting += final_row[j] - matrix[j][j];
  }
  forgetting /= static_cast<double>(final_row.size() - 1);
  std::printf("  final average MAE = %.2f, forgetting (MAE increase on old stages) = %+.2f\n\n",
              avg, forgetting);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bench::BenchScale scale = bench::ResolveScale(flags);
  bench::PrintHeader("Extension: stage-transfer matrix (FinetuneST vs EWC vs URCL)", scale);

  const bench::BenchPipeline p = bench::BuildPipeline(data::MetrLaPreset(), scale);

  {
    core::UrclConfig config = bench::MakeUrclConfig(p, scale);
    config.enable_replay = false;
    config.enable_ssl = false;
    core::UrclTrainer model(config, p.generator->network());
    PrintMatrix("FinetuneST", AccuracyMatrix(model, p, scale.epochs), p);
  }
  {
    core::EwcConfig config;
    const core::UrclConfig base = bench::MakeUrclConfig(p, scale);
    config.encoder = base.encoder;
    config.decoder_hidden = base.decoder_hidden;
    config.output_steps = base.output_steps;
    config.max_batches_per_epoch = base.max_batches_per_epoch;
    config.seed = base.seed;
    core::EwcTrainer model(config, p.generator->network());
    PrintMatrix("EWC", AccuracyMatrix(model, p, scale.epochs), p);
  }
  {
    core::UrclConfig config = bench::MakeUrclConfig(p, scale);
    core::UrclTrainer model(config, p.generator->network());
    PrintMatrix("URCL", AccuracyMatrix(model, p, scale.epochs), p);
  }
  return 0;
}
