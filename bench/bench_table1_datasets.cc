// Reproduces Table I: statistics of the four datasets, both the paper's
// real-archive numbers and the synthetic instances this repo substitutes.
#include "bench/bench_common.h"
#include "common/table_printer.h"

using namespace urcl;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bench::BenchScale scale = bench::ResolveScale(flags);
  bench::PrintHeader("Table I: Statistics of Datasets", scale);

  TablePrinter paper({"Dataset", "Area", "Paper nodes", "Interval", "Channels",
                      "Input steps", "Output steps", "Target"});
  TablePrinter synthetic({"Dataset", "Synthetic nodes", "Days", "Steps", "Graph edges"});
  for (const data::DatasetPreset& preset : data::AllPresets()) {
    paper.AddRow({preset.name, preset.area, std::to_string(preset.paper_num_nodes),
                  std::to_string(preset.sampling_interval_min) + " mins",
                  std::to_string(preset.channels), std::to_string(preset.input_steps),
                  std::to_string(preset.output_steps),
                  preset.speed_target ? "speed" : "flow"});
    bench::BenchPipeline p = bench::BuildPipeline(preset, scale);
    synthetic.AddRow({preset.name, std::to_string(p.generator->network().num_nodes()),
                      std::to_string(bench::DaysFor(preset, scale)),
                      std::to_string(p.dataset->num_steps()),
                      std::to_string(p.generator->network().num_edges() / 2)});
  }
  std::printf("Paper dataset statistics (Table I):\n");
  paper.Print();
  std::printf("\nSynthetic substitutes generated at this scale:\n");
  synthetic.Print();
  return 0;
}
