// Reproduces Figure 7: training time per epoch and inference time per
// observation on a PEMS04-like stream, for all deep models and URCL.
// Expected shape (paper): DCRNN slowest to train and infer (RNN unrolling);
// URCL trains faster than DCRNN and infers comparably to the CNN models.
#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"

using namespace urcl;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bench::BenchScale scale = bench::ResolveScale(flags);
  bench::PrintHeader("Figure 7: Training and Inference Time on PEMS04", scale);

  const bench::BenchPipeline p = bench::BuildPipeline(data::Pems04Preset(), scale);
  const std::vector<std::string> models = {"DCRNN", "STGCN", "MTGNN",
                                           "AGCRN", "STGODE", "GeoMAN", "URCL"};

  TablePrinter table({"Model", "train s/epoch (base)", "train s/epoch (incr avg)",
                      "infer ms/obs (base)", "infer ms/obs (incr avg)"});
  for (const std::string& name : models) {
    std::unique_ptr<core::StPredictor> owned;
    core::StPredictor* model = nullptr;
    std::unique_ptr<core::UrclTrainer> urcl;
    if (name == "URCL") {
      urcl = std::make_unique<core::UrclTrainer>(bench::MakeUrclConfig(p, scale),
                                                 p.generator->network());
      model = urcl.get();
    } else {
      owned = baselines::MakeBaseline(name, bench::MakeZooOptions(p, scale),
                                      p.generator->network());
      model = owned.get();
    }
    core::ProtocolOptions options;
    options.epochs_per_stage = scale.epochs;
    const auto results = core::RunContinualProtocol(*model, *p.stream, p.normalizer,
                                                    p.target_channel, options);
    double incr_train = 0.0, incr_infer = 0.0;
    for (size_t i = 1; i < results.size(); ++i) {
      incr_train += results[i].train_seconds_per_epoch;
      incr_infer += results[i].infer_seconds_per_observation;
    }
    const double denom = static_cast<double>(results.size() - 1);
    table.AddRow({name, TablePrinter::Num(results[0].train_seconds_per_epoch, 3),
                  TablePrinter::Num(incr_train / denom, 3),
                  TablePrinter::Num(1e3 * results[0].infer_seconds_per_observation, 3),
                  TablePrinter::Num(1e3 * incr_infer / denom, 3)});
  }
  table.Print();
  std::printf("\nNote: inference timing covers the pooled seen-so-far evaluation\n"
              "protocol; per-observation cost is amortized over all test sets.\n");
  return 0;
}
