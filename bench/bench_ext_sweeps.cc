// Extension ablations beyond the paper's figures (design-choice sweeps
// called out in DESIGN.md): replay-buffer capacity, STMixup alpha, the
// buffer eviction policy (FIFO vs reservoir), and the number of replay
// samples |S|, all on a METR-LA-like stream. Reported value: MAE averaged
// over the incremental stages (pooled seen-so-far protocol), where the
// continual-learning machinery matters.
#include "bench/bench_common.h"
#include "common/table_printer.h"

using namespace urcl;

namespace {

double IncrementalAverageMae(const std::vector<core::StageResult>& results) {
  double total = 0.0;
  for (size_t i = 1; i < results.size(); ++i) total += results[i].metrics.mae;
  return total / static_cast<double>(results.size() - 1);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bench::BenchScale scale = bench::ResolveScale(flags);
  bench::PrintHeader("Extension: buffer / mixup / policy / |S| sweeps", scale);

  const bench::BenchPipeline p = bench::BuildPipeline(data::MetrLaPreset(), scale);
  auto run = [&](const core::UrclConfig& config) {
    core::UrclTrainer model(config, p.generator->network());
    core::ProtocolOptions options;
    options.epochs_per_stage = scale.epochs;
    return IncrementalAverageMae(core::RunContinualProtocol(
        model, *p.stream, p.normalizer, p.target_channel, options));
  };

  {
    TablePrinter table({"Buffer capacity", "Incremental MAE"});
    for (const int64_t capacity : {32, 64, 128, 256, 512}) {
      core::UrclConfig config = bench::MakeUrclConfig(p, scale);
      config.buffer_capacity = capacity;
      table.AddRow({std::to_string(capacity), TablePrinter::Num(run(config))});
    }
    std::printf("Replay buffer capacity sweep (paper uses 256):\n");
    table.Print();
    std::printf("\n");
  }

  {
    TablePrinter table({"Mixup alpha", "Incremental MAE"});
    for (const float alpha : {0.1f, 0.2f, 0.5f, 1.0f, 2.0f}) {
      core::UrclConfig config = bench::MakeUrclConfig(p, scale);
      config.mixup_alpha = alpha;
      table.AddRow({TablePrinter::Num(alpha, 1), TablePrinter::Num(run(config))});
    }
    std::printf("STMixup Beta(alpha, alpha) sweep:\n");
    table.Print();
    std::printf("\n");
  }

  {
    TablePrinter table({"Buffer policy", "Incremental MAE"});
    for (const auto& [label, policy] :
         std::vector<std::pair<std::string, replay::BufferPolicy>>{
             {"FIFO (paper's queue)", replay::BufferPolicy::kFifo},
             {"Reservoir (default)", replay::BufferPolicy::kReservoir}}) {
      core::UrclConfig config = bench::MakeUrclConfig(p, scale);
      config.buffer_policy = policy;
      table.AddRow({label, TablePrinter::Num(run(config))});
    }
    std::printf("Buffer eviction policy (see DESIGN.md on why reservoir):\n");
    table.Print();
    std::printf("\n");
  }

  {
    TablePrinter table({"Replay samples |S|", "Incremental MAE"});
    for (const int64_t count : {1, 2, 4, 8}) {
      core::UrclConfig config = bench::MakeUrclConfig(p, scale);
      config.replay_sample_count = count;
      table.AddRow({std::to_string(count), TablePrinter::Num(run(config))});
    }
    std::printf("Replay sample count |S| sweep:\n");
    table.Print();
  }
  return 0;
}
