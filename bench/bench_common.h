// Shared scaffolding for the table/figure reproduction binaries: scale
// handling, pipeline construction per dataset preset, and model factories.
//
// Every bench accepts:
//   --scale quick|full     preset sizes (default quick; env URCL_BENCH_SCALE)
//   --nodes / --days / --epochs / --batches / --seed   fine-grained overrides
//   --threads N            compute thread count (results are thread-invariant)
#ifndef URCL_BENCH_BENCH_COMMON_H_
#define URCL_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <functional>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "baselines/zoo.h"
#include "common/flags.h"
#include "runtime/runtime_flags.h"
#include "core/strategies.h"
#include "core/urcl.h"
#include "data/presets.h"
#include "data/stream.h"
#include "data/synthetic.h"

namespace urcl {
namespace bench {

struct BenchScale {
  std::string name = "quick";
  int64_t nodes = 12;
  int64_t days_15min = 10;  // days for 15-minute presets (96 steps/day)
  int64_t days_5min = 8;    // days for 5-minute presets (288 steps/day)
  int64_t epochs = 6;
  int64_t max_batches_per_epoch = 30;
  int64_t hidden = 8;
  int64_t latent = 16;
  int64_t num_layers = 5;  // paper geometry
  uint64_t seed = 7;
};

// Recorded numbers are only meaningful from an optimized build (the checked-in
// baselines are Release). Shout, don't abort: debug runs are still useful for
// checking that the harness itself works.
inline void WarnIfUnoptimizedBuild() {
#ifndef NDEBUG
  std::fprintf(stderr,
               "********************************************************************\n"
               "* WARNING: this benchmark binary was built WITHOUT NDEBUG          *\n"
               "* (assertions / URCL_CHECK are live). Timings are NOT comparable   *\n"
               "* to the recorded baselines. Rebuild with                          *\n"
               "*   cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release         *\n"
               "* before recording numbers.                                        *\n"
               "********************************************************************\n");
#endif
}

inline BenchScale ResolveScale(const Flags& flags) {
  WarnIfUnoptimizedBuild();
  ApplyRuntimeFlags(flags);
  BenchScale scale;
  std::string mode = flags.GetString("scale", "");
  if (mode.empty()) {
    const char* env = std::getenv("URCL_BENCH_SCALE");
    mode = env != nullptr ? env : "quick";
  }
  if (mode == "full") {
    scale.name = "full";
    scale.nodes = 32;
    scale.days_15min = 28;
    scale.days_5min = 14;
    scale.epochs = 12;
    scale.max_batches_per_epoch = 60;
    scale.hidden = 16;
    scale.latent = 48;
  }
  scale.nodes = flags.GetInt("nodes", scale.nodes);
  scale.days_15min = flags.GetInt("days", scale.days_15min);
  scale.days_5min = flags.GetInt("days", scale.days_5min);
  scale.epochs = flags.GetInt("epochs", scale.epochs);
  scale.max_batches_per_epoch = flags.GetInt("batches", scale.max_batches_per_epoch);
  scale.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  return scale;
}

inline int64_t DaysFor(const data::DatasetPreset& preset, const BenchScale& scale) {
  return preset.sampling_interval_min >= 15 ? scale.days_15min : scale.days_5min;
}

// A fully prepared dataset pipeline for one preset.
struct BenchPipeline {
  data::DatasetPreset preset;
  std::unique_ptr<data::SyntheticTraffic> generator;
  data::MinMaxNormalizer normalizer;
  std::unique_ptr<data::StDataset> dataset;
  std::unique_ptr<data::StreamSplitter> stream;
  int64_t target_channel = 0;
};

inline BenchPipeline BuildPipeline(const data::DatasetPreset& preset,
                                   const BenchScale& scale) {
  BenchPipeline p;
  p.preset = preset;
  data::TrafficConfig config =
      preset.MakeTrafficConfig(scale.nodes, DaysFor(preset, scale), scale.seed);
  // Stronger drift at the set boundaries makes the continual-learning effect
  // measurable at reduced scale (the real archives span months).
  config.abrupt_refresh_fraction = 0.7f;
  config.abrupt_phase_jump_steps = 8.0f;
  config.regime_drift_scale = 1.6f;
  p.generator = std::make_unique<data::SyntheticTraffic>(config);
  Tensor series = p.generator->GenerateSeries();
  p.normalizer = data::MinMaxNormalizer::Fit(series);
  p.dataset = std::make_unique<data::StDataset>(p.normalizer.Transform(series),
                                                preset.MakeWindowConfig());
  p.stream = std::make_unique<data::StreamSplitter>(*p.dataset, data::StreamConfig{});
  p.target_channel = preset.MakeWindowConfig().target_channel;
  return p;
}

inline core::UrclConfig MakeUrclConfig(const BenchPipeline& p, const BenchScale& scale) {
  core::UrclConfig config;
  config.encoder.num_nodes = scale.nodes;
  config.encoder.in_channels = p.preset.channels;
  config.encoder.input_steps = p.preset.input_steps;
  config.encoder.hidden_channels = scale.hidden;
  config.encoder.latent_channels = scale.latent;
  config.encoder.num_layers = scale.num_layers;
  config.encoder.adaptive_embedding_dim = 6;
  config.decoder_hidden = 4 * scale.latent;
  config.output_steps = p.preset.output_steps;
  config.proj_hidden = scale.latent;
  config.max_batches_per_epoch = scale.max_batches_per_epoch;
  // Short training budgets: keep the contrastive signal secondary (the paper
  // trains 100 epochs per set with weight 1.0).
  config.ssl_weight = 0.05f;
  config.seed = scale.seed;
  return config;
}

inline baselines::ZooOptions MakeZooOptions(const BenchPipeline& p, const BenchScale& scale) {
  baselines::ZooOptions options;
  options.encoder.num_nodes = scale.nodes;
  options.encoder.in_channels = p.preset.channels;
  options.encoder.input_steps = p.preset.input_steps;
  options.encoder.hidden_channels = scale.hidden;
  options.encoder.latent_channels = scale.latent;
  options.encoder.num_layers = scale.num_layers;
  options.encoder.adaptive_embedding_dim = 6;
  options.deep.decoder_hidden = 4 * scale.latent;
  options.deep.output_steps = p.preset.output_steps;
  options.deep.max_batches_per_epoch = scale.max_batches_per_epoch;
  options.deep.seed = scale.seed;
  options.target_channel = p.target_channel;
  return options;
}

// Averages per-stage MAE/RMSE over `seeds` runs of `run` (which receives the
// seed and returns one StageResult per stage).
inline std::vector<core::StageResult> AverageOverSeeds(
    int64_t seeds, uint64_t base_seed,
    const std::function<std::vector<core::StageResult>(uint64_t)>& run) {
  std::vector<core::StageResult> accumulated;
  for (int64_t s = 0; s < seeds; ++s) {
    const std::vector<core::StageResult> results = run(base_seed + 100 * s);
    if (accumulated.empty()) {
      accumulated = results;
    } else {
      for (size_t i = 0; i < results.size(); ++i) {
        accumulated[i].metrics.mae += results[i].metrics.mae;
        accumulated[i].metrics.rmse += results[i].metrics.rmse;
        accumulated[i].metrics.mape += results[i].metrics.mape;
        accumulated[i].train_seconds += results[i].train_seconds;
        accumulated[i].train_seconds_per_epoch += results[i].train_seconds_per_epoch;
        accumulated[i].infer_seconds_per_observation +=
            results[i].infer_seconds_per_observation;
      }
    }
  }
  for (auto& r : accumulated) {
    r.metrics.mae /= seeds;
    r.metrics.rmse /= seeds;
    r.metrics.mape /= seeds;
    r.train_seconds /= seeds;
    r.train_seconds_per_epoch /= seeds;
    r.infer_seconds_per_observation /= seeds;
  }
  return accumulated;
}

inline void PrintHeader(const std::string& title, const BenchScale& scale) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("(scale=%s: %lld nodes, %lld epochs/stage, %lld batches/epoch; "
              "synthetic data — see DESIGN.md; shapes, not absolute values, are "
              "comparable to the paper)\n\n",
              scale.name.c_str(), static_cast<long long>(scale.nodes),
              static_cast<long long>(scale.epochs),
              static_cast<long long>(scale.max_batches_per_epoch));
}

}  // namespace bench
}  // namespace urcl

#endif  // URCL_BENCH_BENCH_COMMON_H_
