// End-to-end integration tests: the full pipeline (synthetic stream ->
// normalize -> split -> continual protocol -> metrics) and the paper's
// headline qualitative claims at miniature scale.
#include <gtest/gtest.h>

#include "baselines/zoo.h"
#include "core/strategies.h"
#include "core/urcl.h"
#include "data/presets.h"
#include "data/stream.h"
#include "data/synthetic.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace {

struct Pipeline {
  std::unique_ptr<data::SyntheticTraffic> generator;
  data::MinMaxNormalizer normalizer;
  std::unique_ptr<data::StDataset> dataset;
  std::unique_ptr<data::StreamSplitter> stream;
  int64_t target_channel = 0;
};

Pipeline MakePipeline(int64_t nodes, int64_t days, uint64_t seed) {
  Pipeline p;
  const data::DatasetPreset preset = data::MetrLaPreset();
  data::TrafficConfig config = preset.MakeTrafficConfig(nodes, days, seed);
  config.steps_per_day = 48;  // half resolution to keep the test fast
  p.generator = std::make_unique<data::SyntheticTraffic>(config);
  Tensor series = p.generator->GenerateSeries();
  p.normalizer = data::MinMaxNormalizer::Fit(series);
  p.dataset = std::make_unique<data::StDataset>(p.normalizer.Transform(series),
                                                preset.MakeWindowConfig());
  p.stream = std::make_unique<data::StreamSplitter>(*p.dataset, data::StreamConfig{});
  return p;
}

core::UrclConfig TinyUrclConfig(int64_t nodes) {
  core::UrclConfig config;
  config.encoder.num_nodes = nodes;
  config.encoder.in_channels = 2;
  config.encoder.input_steps = 12;
  config.encoder.hidden_channels = 6;
  config.encoder.latent_channels = 12;
  config.encoder.num_layers = 3;
  config.encoder.adaptive_embedding_dim = 4;
  config.decoder_hidden = 24;
  config.proj_hidden = 8;
  config.batch_size = 6;
  config.max_batches_per_epoch = 10;
  config.replay_sample_count = 3;
  config.rmir_scan_size = 8;
  config.rmir_candidate_pool = 5;
  config.buffer_capacity = 64;
  return config;
}

TEST(IntegrationTest, FullContinualProtocolRunsAllStages) {
  Pipeline p = MakePipeline(8, 10, 3);
  core::UrclTrainer urcl(TinyUrclConfig(8), p.generator->network());
  core::ProtocolOptions options;
  options.epochs_per_stage = 2;
  const auto results = core::RunContinualProtocol(urcl, *p.stream, p.normalizer,
                                                  p.target_channel, options);
  ASSERT_EQ(results.size(), 5u);
  for (const auto& r : results) {
    EXPECT_GT(r.metrics.mae, 0.0);
    EXPECT_TRUE(std::isfinite(r.metrics.rmse));
    EXPECT_GE(r.metrics.rmse, r.metrics.mae);
  }
  EXPECT_EQ(results[0].stage_name, "B_set");
  EXPECT_GT(results[0].train_seconds, 0.0);
  EXPECT_GT(results[1].infer_seconds_per_observation, 0.0);
}

TEST(IntegrationTest, OneFitAllOnlyTrainsOnBase) {
  Pipeline p = MakePipeline(8, 10, 4);
  core::UrclConfig config = TinyUrclConfig(8);
  config.enable_replay = false;
  config.enable_ssl = false;
  core::UrclTrainer model(config, p.generator->network());
  core::ProtocolOptions options;
  options.strategy = core::TrainingStrategy::kOneFitAll;
  options.epochs_per_stage = 2;
  const auto results =
      core::RunContinualProtocol(model, *p.stream, p.normalizer, p.target_channel, options);
  ASSERT_EQ(results.size(), 5u);
  EXPECT_GT(results[0].train_seconds, 0.0);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].train_seconds, 0.0) << "stage " << i << " must not train";
  }
}

TEST(IntegrationTest, TrainedUrclBeatsUntrainedModel) {
  Pipeline p = MakePipeline(8, 8, 5);
  const data::StreamStage& base = p.stream->Stage(0);

  core::UrclTrainer trained(TinyUrclConfig(8), p.generator->network());
  trained.TrainStage(base.train, 8);
  const data::EvalMetrics trained_metrics =
      core::EvaluatePredictor(trained, base.test, p.normalizer, p.target_channel);

  core::UrclConfig untouched_config = TinyUrclConfig(8);
  untouched_config.seed = 99;
  core::UrclTrainer untouched(untouched_config, p.generator->network());
  const data::EvalMetrics untouched_metrics =
      core::EvaluatePredictor(untouched, base.test, p.normalizer, p.target_channel);

  EXPECT_LT(trained_metrics.mae, untouched_metrics.mae);
}

TEST(IntegrationTest, UrclModelIsSerializableAcrossInstances) {
  Pipeline p = MakePipeline(8, 8, 6);
  core::UrclTrainer a(TinyUrclConfig(8), p.generator->network());
  a.TrainStage(p.stream->Stage(0).train, 1);
  core::UrclConfig other = TinyUrclConfig(8);
  other.seed = 123;
  core::UrclTrainer b(other, p.generator->network());
  b.model().LoadStateDict(a.model().StateDict());
  const auto [x, y] = p.stream->Stage(0).test.MakeBatch({0, 1});
  EXPECT_TRUE(ops::AllClose(a.Predict(x), b.Predict(x), 1e-5f));
}

TEST(IntegrationTest, FlowDatasetPipelineWorks) {
  // PEMS08-like (3 channels, flow target).
  const data::DatasetPreset preset = data::Pems08Preset();
  data::TrafficConfig config = preset.MakeTrafficConfig(8, 6, 7);
  config.steps_per_day = 48;
  data::SyntheticTraffic generator(config);
  Tensor series = generator.GenerateSeries();
  const data::MinMaxNormalizer normalizer = data::MinMaxNormalizer::Fit(series);
  data::StDataset dataset(normalizer.Transform(series), preset.MakeWindowConfig());
  EXPECT_EQ(dataset.config().target_channel, 1);

  core::UrclConfig urcl_config = TinyUrclConfig(8);
  urcl_config.encoder.in_channels = 3;
  core::UrclTrainer trainer(urcl_config, generator.network());
  trainer.TrainStage(dataset, 1);
  const auto [x, y] = dataset.MakeBatch({0, 1});
  EXPECT_EQ(trainer.Predict(x).shape(), y.shape());
}

TEST(IntegrationTest, ReplayReducesForgettingOfBaseSet) {
  // The paper's core claim, measured as forgetting: train through the whole
  // drifted stream, then test on the base set. The replay-based model must
  // retain base-set knowledge better than plain finetuning.
  const int64_t nodes = 8;
  auto run = [&](bool replay, uint64_t seed) {
    data::TrafficConfig config = data::MetrLaPreset().MakeTrafficConfig(nodes, 10, seed);
    config.steps_per_day = 48;
    config.abrupt_refresh_fraction = 0.9f;
    config.abrupt_phase_jump_steps = 8.0f;
    data::SyntheticTraffic generator(config);
    Tensor series = generator.GenerateSeries();
    const data::MinMaxNormalizer normalizer = data::MinMaxNormalizer::Fit(series);
    data::StDataset dataset(normalizer.Transform(series), data::WindowConfig{12, 1, 0});
    data::StreamSplitter stream(dataset, data::StreamConfig{});

    core::UrclConfig config2 = TinyUrclConfig(nodes);
    config2.enable_replay = replay;
    // Isolate the replay mechanism itself: no SSL branch, and concatenation
    // instead of mixup (mixup-vs-concat is a bench-level question, Fig. 6;
    // at this micro scale blending across strongly drifted regimes is noisy).
    config2.enable_ssl = false;
    config2.enable_mixup = false;
    core::UrclTrainer model(config2, generator.network());
    for (int64_t i = 0; i < stream.NumStages(); ++i) {
      model.TrainStage(stream.Stage(i).train, 3);
    }
    // Forgetting probe: accuracy on the base set after the full stream.
    return core::EvaluatePredictor(model, stream.Stage(0).test, normalizer, 0).mae;
  };

  // Average over a few seeds: single micro-scale runs are noisy.
  double with_replay = 0.0, without_replay = 0.0;
  for (const uint64_t seed : {11u, 31u, 51u}) {
    with_replay += run(true, seed);
    without_replay += run(false, seed);
  }
  EXPECT_LT(with_replay, without_replay)
      << "replay=" << with_replay << " finetune=" << without_replay;
}

}  // namespace
}  // namespace urcl
