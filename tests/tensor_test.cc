#include "tensor/tensor.h"

#include <gtest/gtest.h>

namespace urcl {
namespace {

TEST(TensorTest, DefaultIsScalarZero) {
  Tensor t;
  EXPECT_EQ(t.rank(), 0);
  EXPECT_EQ(t.NumElements(), 1);
  EXPECT_FLOAT_EQ(t.Item(), 0.0f);
}

TEST(TensorTest, ZerosAndOnes) {
  Tensor z = Tensor::Zeros(Shape{2, 2});
  Tensor o = Tensor::Ones(Shape{2, 2});
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(z.FlatAt(i), 0.0f);
    EXPECT_FLOAT_EQ(o.FlatAt(i), 1.0f);
  }
}

TEST(TensorTest, FullAndScalar) {
  EXPECT_FLOAT_EQ(Tensor::Full(Shape{3}, 2.5f).FlatAt(1), 2.5f);
  EXPECT_FLOAT_EQ(Tensor::Scalar(-7.0f).Item(), -7.0f);
}

TEST(TensorTest, FromVectorAndAt) {
  Tensor t = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(t.At({0, 0}), 1.0f);
  EXPECT_FLOAT_EQ(t.At({0, 2}), 3.0f);
  EXPECT_FLOAT_EQ(t.At({1, 1}), 5.0f);
}

TEST(TensorTest, FromVectorWrongCountDies) {
  EXPECT_DEATH(Tensor::FromVector(Shape{2, 2}, {1, 2, 3}), "FromVector");
}

TEST(TensorTest, Arange) {
  Tensor t = Tensor::Arange(4);
  EXPECT_EQ(t.shape(), Shape({4}));
  EXPECT_FLOAT_EQ(t.FlatAt(3), 3.0f);
}

TEST(TensorTest, Eye) {
  Tensor t = Tensor::Eye(3);
  EXPECT_FLOAT_EQ(t.At({1, 1}), 1.0f);
  EXPECT_FLOAT_EQ(t.At({1, 2}), 0.0f);
}

TEST(TensorTest, RandomUniformRange) {
  Rng rng(7);
  Tensor t = Tensor::RandomUniform(Shape{100}, rng, -2.0f, 3.0f);
  for (int64_t i = 0; i < t.NumElements(); ++i) {
    EXPECT_GE(t.FlatAt(i), -2.0f);
    EXPECT_LT(t.FlatAt(i), 3.0f);
  }
}

TEST(TensorTest, RandomNormalIsDeterministicPerSeed) {
  Rng rng1(42), rng2(42);
  Tensor a = Tensor::RandomNormal(Shape{16}, rng1);
  Tensor b = Tensor::RandomNormal(Shape{16}, rng2);
  for (int64_t i = 0; i < 16; ++i) EXPECT_FLOAT_EQ(a.FlatAt(i), b.FlatAt(i));
}

TEST(TensorTest, CopySharesStorage) {
  Tensor a = Tensor::Zeros(Shape{2});
  Tensor b = a;
  b.FlatSet(0, 9.0f);
  EXPECT_FLOAT_EQ(a.FlatAt(0), 9.0f);
}

TEST(TensorTest, CloneDetachesStorage) {
  Tensor a = Tensor::Zeros(Shape{2});
  Tensor b = a.Clone();
  b.FlatSet(0, 9.0f);
  EXPECT_FLOAT_EQ(a.FlatAt(0), 0.0f);
}

TEST(TensorTest, ReshapeSharesStorageAndChecksCount) {
  Tensor a = Tensor::Arange(6);
  Tensor b = a.Reshape(Shape{2, 3});
  EXPECT_FLOAT_EQ(b.At({1, 0}), 3.0f);
  b.FlatSet(0, 42.0f);
  EXPECT_FLOAT_EQ(a.FlatAt(0), 42.0f);
  EXPECT_DEATH(a.Reshape(Shape{4}), "Reshape");
}

TEST(TensorTest, InPlaceOps) {
  Tensor a = Tensor::Ones(Shape{3});
  Tensor b = Tensor::Full(Shape{3}, 2.0f);
  a.AddInPlace(b);
  EXPECT_FLOAT_EQ(a.FlatAt(2), 3.0f);
  a.MulInPlace(0.5f);
  EXPECT_FLOAT_EQ(a.FlatAt(0), 1.5f);
  a.Fill(-1.0f);
  EXPECT_FLOAT_EQ(a.FlatAt(1), -1.0f);
  a.CopyFrom(b);
  EXPECT_FLOAT_EQ(a.FlatAt(1), 2.0f);
}

TEST(TensorTest, AddInPlaceShapeMismatchDies) {
  Tensor a = Tensor::Ones(Shape{3});
  Tensor b = Tensor::Ones(Shape{4});
  EXPECT_DEATH(a.AddInPlace(b), "shape mismatch");
}

TEST(TensorTest, ItemRequiresSingleElement) {
  EXPECT_DEATH(Tensor::Zeros(Shape{2}).Item(), "single-element");
}

TEST(TensorTest, BoundsChecking) {
  Tensor t = Tensor::Zeros(Shape{2, 2});
  EXPECT_DEATH(t.At({2, 0}), "out of bounds");
  EXPECT_DEATH(t.FlatAt(4), "Check failed");
}

}  // namespace
}  // namespace urcl
