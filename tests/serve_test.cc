// Serving-layer tests (ctest label `serving`): bitwise equality between the
// tape forward and the inference-only executor, snapshot parse/publish
// round-trips, lock-free hot-swap under concurrent readers, rolling-window
// ingestion, version stamping and ServiceConfig validation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "autograd/variable.h"
#include "core/backbone.h"
#include "core/urcl.h"
#include "data/synthetic.h"
#include "graph/generator.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace serve {
namespace {

core::UrclConfig TinyConfig(int64_t nodes, int64_t input_steps = 12,
                            core::BackboneType backbone = core::BackboneType::kGraphWaveNet) {
  core::UrclConfig config;
  config.backbone = backbone;
  config.encoder.num_nodes = nodes;
  config.encoder.in_channels = 2;
  config.encoder.input_steps = input_steps;
  config.encoder.hidden_channels = 4;
  config.encoder.latent_channels = 8;
  config.encoder.num_layers = 2;
  config.encoder.adaptive_embedding_dim = 3;
  config.decoder_hidden = 16;
  config.proj_hidden = 8;
  config.batch_size = 2;
  config.max_batches_per_epoch = 4;
  config.replay_sample_count = 2;
  config.rmir_scan_size = 4;
  config.rmir_candidate_pool = 4;
  config.buffer_capacity = 16;
  return config;
}

// True when the two tensors are byte-for-byte identical (stronger than any
// epsilon comparison; the inference executor must replay the exact kernel
// sequence of the tape forward).
bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  if (!(a.shape() == b.shape())) return false;
  return std::memcmp(a.data(), b.data(), sizeof(float) * static_cast<size_t>(a.NumElements())) == 0;
}

TEST(InferenceExecutorTest, BitwiseEqualToTapeForwardAcrossBackbones) {
  const core::BackboneType backbones[] = {core::BackboneType::kGraphWaveNet,
                                          core::BackboneType::kDcrnn,
                                          core::BackboneType::kGeoman};
  Rng data_rng(7);
  for (const core::BackboneType backbone : backbones) {
    // Random-ish shapes per backbone: vary nodes / window / batch.
    for (int round = 0; round < 2; ++round) {
      const int64_t nodes = data_rng.UniformInt(3, 7);
      const int64_t steps = data_rng.UniformInt(8, 14);
      const int64_t batch = data_rng.UniformInt(1, 3);
      const core::UrclConfig config = TinyConfig(nodes, steps, backbone);
      Rng model_rng(41 + round);
      core::UrclModel model(config, model_rng);
      const graph::SensorNetwork network = graph::RingGraph(nodes);
      const Tensor adjacency = network.AdjacencyMatrix();
      const Tensor x =
          Tensor::RandomUniform(Shape{batch, steps, nodes, 2}, data_rng, 0.0f, 1.0f);
      const Tensor tape =
          model.Forward(autograd::Variable(x, /*requires_grad=*/false), adjacency).value();
      const Tensor inference = model.ForwardInference(x, adjacency);
      EXPECT_TRUE(BitwiseEqual(tape, inference))
          << "backbone " << static_cast<int>(backbone) << " round " << round
          << " max abs diff " << ops::MaxAbsDiff(tape, inference);
    }
  }
}

class ServeTrainerTest : public ::testing::Test {
 protected:
  static constexpr int64_t kNodes = 5;

  data::StDataset MakeDataset() {
    data::TrafficConfig traffic;
    traffic.num_nodes = kNodes;
    traffic.num_days = 2;
    traffic.steps_per_day = 60;
    traffic.channels = 2;
    generator_ = std::make_unique<data::SyntheticTraffic>(traffic);
    Tensor series = generator_->GenerateSeries();
    normalizer_ = data::MinMaxNormalizer::Fit(series);
    return data::StDataset(normalizer_.Transform(series), data::WindowConfig{12, 1, 0});
  }

  std::unique_ptr<data::SyntheticTraffic> generator_;
  data::MinMaxNormalizer normalizer_;
};

TEST_F(ServeTrainerTest, SnapshotRoundTripMatchesTrainerBitwise) {
  data::StDataset dataset = MakeDataset();
  const core::UrclConfig config = TinyConfig(kNodes);
  core::UrclTrainer trainer(config, generator_->network());
  std::vector<checkpoint::Container> published;
  trainer.SetSnapshotSink([&](const checkpoint::Container& c) { published.push_back(c); });
  trainer.TrainStage(dataset, 1);
  // At least the stage-end publication must have fired.
  ASSERT_GE(published.size(), 1u);
  EXPECT_EQ(trainer.snapshots_published(), static_cast<int64_t>(published.size()));

  std::shared_ptr<const ModelSnapshot> snapshot;
  const Status status = ParseModelSnapshot(published.back(), config, &snapshot);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(snapshot->version, static_cast<int64_t>(published.size()));
  EXPECT_EQ(snapshot->stage, 0);
  EXPECT_GT(snapshot->step_count, 0);

  // The last snapshot holds the trainer's final weights: identical forwards.
  const Tensor adjacency = generator_->network().AdjacencyMatrix();
  Rng rng(3);
  const Tensor x = Tensor::RandomUniform(Shape{2, 12, kNodes, 2}, rng, 0.0f, 1.0f);
  EXPECT_TRUE(BitwiseEqual(trainer.model().ForwardInference(x, adjacency),
                           snapshot->model->ForwardInference(x, adjacency)));
}

TEST_F(ServeTrainerTest, ParseRejectsMalformedContainers) {
  const core::UrclConfig config = TinyConfig(kNodes);
  std::shared_ptr<const ModelSnapshot> snapshot;

  checkpoint::Container empty;
  EXPECT_FALSE(ParseModelSnapshot(empty, config, &snapshot).ok());

  checkpoint::Container bad_meta;
  bad_meta.Add("serve_meta", "short");
  EXPECT_FALSE(ParseModelSnapshot(bad_meta, config, &snapshot).ok());

  // A real container parsed against a mismatched architecture is rejected
  // (different layer count => different tensor count).
  data::StDataset dataset = MakeDataset();
  core::UrclTrainer trainer(config, generator_->network());
  std::vector<checkpoint::Container> published;
  trainer.SetSnapshotSink([&](const checkpoint::Container& c) { published.push_back(c); });
  trainer.TrainStage(dataset, 1);
  ASSERT_GE(published.size(), 1u);
  core::UrclConfig other = config;
  other.encoder.num_layers = 3;
  const Status mismatch = ParseModelSnapshot(published.back(), other, &snapshot);
  EXPECT_FALSE(mismatch.ok());
}

TEST_F(ServeTrainerTest, RollingWindowIncrementalMatchesRebuild) {
  data::StDataset dataset = MakeDataset();
  ServiceConfig config;
  config.model = TinyConfig(kNodes);
  ForecastService service(config, generator_->network(), normalizer_);

  const int64_t window = config.EffectiveWindowSteps();
  Rng rng(11);
  std::deque<Tensor> raw_history;
  EXPECT_FALSE(service.WindowReady());
  for (int64_t t = 0; t < window + 7; ++t) {
    const Tensor tick = Tensor::RandomUniform(Shape{kNodes, 2}, rng, 0.0f, 50.0f);
    raw_history.push_back(tick);
    if (static_cast<int64_t>(raw_history.size()) > window) raw_history.pop_front();
    service.IngestTick(tick);
    if (t + 1 < window) {
      EXPECT_FALSE(service.WindowReady());
      continue;
    }
    // Rebuild the window from scratch: stack the raw ticks and run the
    // training-time normalizer over the whole block.
    std::vector<Tensor> rows(raw_history.begin(), raw_history.end());
    const Tensor rebuilt = normalizer_.Transform(ops::Stack(rows, 0))
                               .Reshape(Shape{1, window, kNodes, 2});
    EXPECT_TRUE(BitwiseEqual(service.CurrentWindow(), rebuilt)) << "tick " << t;
  }
  EXPECT_EQ(service.ticks_ingested(), window + 7);
}

TEST_F(ServeTrainerTest, ServiceServesQueriesAndStampsVersions) {
  data::StDataset dataset = MakeDataset();
  ServiceConfig config;
  config.model = TinyConfig(kNodes);
  ForecastService service(config, generator_->network(), normalizer_);

  // No snapshot published yet: queries fail recoverably.
  core::PredictRequest request;
  Rng rng(5);
  request.inputs = Tensor::RandomUniform(Shape{1, 12, kNodes, 2}, rng, 0.0f, 1.0f);
  core::PredictResponse response;
  EXPECT_FALSE(service.Predict(request, &response).ok());

  core::UrclTrainer trainer(config.model, generator_->network());
  trainer.SetSnapshotSink(service.SnapshotSink());
  trainer.BeginStage(3);
  trainer.TrainStage(dataset, 1);  // publishes at stage end
  ASSERT_NE(service.hub().Current(), nullptr);

  ASSERT_TRUE(service.Predict(request, &response).ok());
  EXPECT_EQ(response.model_version, 1);
  EXPECT_EQ(response.stage, 3);
  EXPECT_EQ(response.predictions.shape(), (Shape{1, 1, kNodes, 1}));
  // Observability stamps: the serving health state the query was admitted
  // under, the executor that answered, and a minted causal trace ID.
  EXPECT_EQ(response.health_state, static_cast<int32_t>(HealthState::kHealthy));
  EXPECT_TRUE(response.executor == core::AnswerExecutor::kPlan ||
              response.executor == core::AnswerExecutor::kTape)
      << core::AnswerExecutorName(response.executor);
  EXPECT_NE(response.trace_id, 0u);

  // A caller-supplied trace ID is honored and echoed back.
  core::PredictRequest traced = request;
  traced.trace_id = 0xfeedbeefu;
  core::PredictResponse traced_response;
  ASSERT_TRUE(service.Predict(traced, &traced_response).ok());
  EXPECT_EQ(traced_response.trace_id, 0xfeedbeefu);

  // Oversized batches and horizons are shed with an error, not a crash.
  core::PredictRequest big = request;
  big.inputs = Tensor::Zeros(Shape{config.max_batch + 1, 12, kNodes, 2});
  EXPECT_FALSE(service.Predict(big, &response).ok());
  core::PredictRequest far = request;
  far.horizon = 99;
  EXPECT_FALSE(service.Predict(far, &response).ok());
  EXPECT_GT(service.served_queries(), 0);

  // Rolling-window forecasting: feed raw ticks, then query from the window.
  for (int64_t t = 0; t < 12; ++t) {
    service.IngestTick(Tensor::RandomUniform(Shape{kNodes, 2}, rng, 0.0f, 50.0f));
  }
  core::PredictResponse window_response;
  ASSERT_TRUE(service.Forecast(/*horizon=*/0, &window_response).ok());
  EXPECT_EQ(window_response.predictions.shape(), (Shape{1, 1, kNodes, 1}));
  EXPECT_EQ(window_response.model_version, 1);
}

TEST_F(ServeTrainerTest, StaleVersionStampingAcrossSwap) {
  data::StDataset dataset = MakeDataset();
  ServiceConfig config;
  config.model = TinyConfig(kNodes);
  // Poll the hub only every 8th query: queries between polls keep serving
  // (and stamping) the cached, possibly-retired version.
  config.snapshot_poll_every = 8;
  ForecastService service(config, generator_->network(), normalizer_);

  core::UrclTrainer trainer(config.model, generator_->network());
  std::vector<checkpoint::Container> published;
  trainer.SetSnapshotSink([&](const checkpoint::Container& c) { published.push_back(c); });
  trainer.TrainStage(dataset, 1);
  ASSERT_GE(published.size(), 1u);

  auto sink = service.SnapshotSink();
  sink(published.back());  // version N becomes current
  const int64_t v1 = service.hub().Current()->version;

  core::PredictRequest request;
  Rng rng(9);
  request.inputs = Tensor::RandomUniform(Shape{1, 12, kNodes, 2}, rng, 0.0f, 1.0f);
  core::PredictResponse response;
  ASSERT_TRUE(service.Predict(request, &response).ok());  // seq 0: polls, caches v1
  EXPECT_EQ(response.model_version, v1);

  trainer.TrainStage(dataset, 1);  // publish a newer version
  sink(published.back());
  const int64_t v2 = service.hub().Current()->version;
  ASSERT_GT(v2, v1);
  // Previous() retains the retired version for diagnostics.
  ASSERT_NE(service.hub().Previous(), nullptr);
  EXPECT_EQ(service.hub().Previous()->version, v1);
  EXPECT_EQ(service.hub().swap_count(), 2);

  // Next queries sit between polls: they stamp the stale cached version.
  ASSERT_TRUE(service.Predict(request, &response).ok());
  EXPECT_EQ(response.model_version, v1);
  // Drive past the poll boundary; the new version must be picked up.
  int64_t last_version = response.model_version;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(service.Predict(request, &response).ok());
    EXPECT_GE(response.model_version, last_version);  // monotone pickup
    last_version = response.model_version;
  }
  EXPECT_EQ(last_version, v2);
}

TEST_F(ServeTrainerTest, HotSwapUnderConcurrentReaders) {
  data::StDataset dataset = MakeDataset();
  ServiceConfig config;
  config.model = TinyConfig(kNodes);
  ForecastService service(config, generator_->network(), normalizer_);

  // Capture a stream of real snapshots up front (publish every step), then
  // replay them from a publisher thread while reader threads query.
  core::UrclTrainer trainer(config.model, generator_->network());
  std::vector<checkpoint::Container> published;
  trainer.SetSnapshotSink([&](const checkpoint::Container& c) { published.push_back(c); },
                          /*publish_every_steps=*/1);
  trainer.TrainStage(dataset, 1);
  ASSERT_GE(published.size(), 3u);

  auto sink = service.SnapshotSink();
  sink(published.front());  // make the first version live before readers start

  constexpr int kReaders = 8;
  constexpr int kQueriesPerReader = 20;
  std::atomic<int> failures{0};
  std::atomic<bool> non_monotone{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(100 + r);
      core::PredictRequest request;
      request.inputs = Tensor::RandomUniform(Shape{1, 12, kNodes, 2}, rng, 0.0f, 1.0f);
      int64_t last_version = 0;
      for (int q = 0; q < kQueriesPerReader; ++q) {
        core::PredictResponse response;
        if (!service.Predict(request, &response).ok()) {
          failures.fetch_add(1);
          continue;
        }
        // Each reader must observe monotonically non-decreasing versions.
        if (response.model_version < last_version) non_monotone.store(true);
        last_version = response.model_version;
      }
    });
  }
  // Publish the remaining snapshots concurrently with the readers.
  for (size_t i = 1; i < published.size(); ++i) sink(published[i]);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_FALSE(non_monotone.load());
  EXPECT_EQ(service.hub().swap_count(), static_cast<int64_t>(published.size()));
  EXPECT_EQ(service.hub().Current()->version, static_cast<int64_t>(published.size()));
  EXPECT_GE(service.served_queries(), kReaders * kQueriesPerReader - failures.load());
}

TEST_F(ServeTrainerTest, HotSwapRecompilesPlanAndStaysBitwise) {
  data::StDataset dataset = MakeDataset();
  ServiceConfig config;
  config.model = TinyConfig(kNodes);
  config.executor = exec::ExecutorMode::kPlan;
  ForecastService plan_service(config, generator_->network(), normalizer_);
  config.executor = exec::ExecutorMode::kTape;
  ForecastService tape_service(config, generator_->network(), normalizer_);

  core::UrclTrainer trainer(config.model, generator_->network());
  std::vector<checkpoint::Container> published;
  trainer.SetSnapshotSink([&](const checkpoint::Container& c) { published.push_back(c); },
                          /*publish_every_steps=*/2);
  trainer.TrainStage(dataset, 1);
  ASSERT_GE(published.size(), 3u);

  auto plan_sink = plan_service.SnapshotSink();
  auto tape_sink = tape_service.SnapshotSink();
  core::PredictRequest request;
  Rng rng(17);
  request.inputs = Tensor::RandomUniform(Shape{2, 12, kNodes, 2}, rng, 0.0f, 1.0f);

  // Every hot-swap must invalidate the plan cache: the next plan-mode query
  // recompiles against the new weights (and only that one — repeat queries
  // reuse the cached plan), stamping monotonically advancing versions.
  int64_t expected_compiles = 0;
  for (size_t i = 0; i < published.size(); ++i) {
    plan_sink(published[i]);
    tape_sink(published[i]);
    core::PredictResponse plan_response;
    core::PredictResponse tape_response;
    ASSERT_TRUE(plan_service.Predict(request, &plan_response).ok());
    ASSERT_TRUE(tape_service.Predict(request, &tape_response).ok());
    ++expected_compiles;
    EXPECT_EQ(plan_service.plan_compiles(), expected_compiles) << "swap " << i;
    EXPECT_EQ(plan_response.model_version, static_cast<int64_t>(i) + 1);
    EXPECT_EQ(plan_response.model_version, tape_response.model_version);
    // The compiled plan and the tape-free inference executor answer the same
    // query with byte-identical forecasts on every version.
    EXPECT_TRUE(BitwiseEqual(plan_response.predictions, tape_response.predictions))
        << "swap " << i;

    // A second query on the same (version, shape) replays the cached plan.
    ASSERT_TRUE(plan_service.Predict(request, &plan_response).ok());
    EXPECT_EQ(plan_service.plan_compiles(), expected_compiles) << "swap " << i;
    EXPECT_TRUE(BitwiseEqual(plan_response.predictions, tape_response.predictions));
  }
  EXPECT_EQ(tape_service.plan_compiles(), 0);
}

TEST(ServiceConfigTest, ValidateFlagsBadFields) {
  ServiceConfig config;
  config.model = TinyConfig(4);
  EXPECT_TRUE(config.Validate().empty());

  config.window_steps = 7;  // != model input window (12)
  EXPECT_FALSE(config.Validate().empty());
  config.window_steps = 0;

  config.max_batch = 0;
  config.queue_depth = 0;
  config.snapshot_poll_every = 0;
  const std::vector<std::string> errors = config.Validate();
  EXPECT_EQ(errors.size(), 3u);

  ServiceConfig bad_model;
  bad_model.model = TinyConfig(4);
  bad_model.model.encoder.num_nodes = 0;
  EXPECT_FALSE(bad_model.Validate().empty());
}

}  // namespace
}  // namespace serve
}  // namespace urcl
