// Tests for the extension features: LayerNorm, validation-based early
// stopping, checkpointing, the EWC trainer, and the CSV writer.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "baselines/zoo.h"
#include "common/csv_writer.h"
#include "core/ewc.h"
#include "core/stencoder.h"
#include "core/urcl.h"
#include "data/synthetic.h"
#include "graph/generator.h"
#include "nn/layer_norm.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace {

namespace ag = ::urcl::autograd;
namespace top = ::urcl::ops;

TEST(LayerNormTest, NormalizesChannelAxis) {
  Rng rng(1);
  nn::LayerNorm norm(8, rng);
  ag::Variable x(Tensor::RandomNormal(Shape{2, 8, 3, 4}, rng, 5.0f, 3.0f), false);
  const Tensor y = norm.Forward(x).value();
  // With default affine (gamma=1, beta=0): per-position channel mean ~0, var ~1.
  const Tensor mean = top::Mean(y, {1});
  EXPECT_TRUE(top::AllClose(mean, Tensor::Zeros(mean.shape()), 1e-4f));
  const Tensor var = top::Mean(top::Square(y), {1});
  EXPECT_TRUE(top::AllClose(var, Tensor::Ones(var.shape()), 2e-2f));
}

TEST(LayerNormTest, AffineParametersApply) {
  Rng rng(2);
  nn::LayerNorm norm(4, rng);
  ASSERT_EQ(norm.Parameters().size(), 2u);
  // Set gamma = 2, beta = 1 and check the output moments shift accordingly.
  norm.Parameters()[0].SetValue(Tensor::Full(Shape{1, 4, 1, 1}, 2.0f));
  norm.Parameters()[1].SetValue(Tensor::Full(Shape{1, 4, 1, 1}, 1.0f));
  ag::Variable x(Tensor::RandomNormal(Shape{1, 4, 2, 2}, rng), false);
  const Tensor y = norm.Forward(x).value();
  const Tensor mean = top::Mean(y, {1});
  EXPECT_TRUE(top::AllClose(mean, Tensor::Ones(mean.shape()), 1e-4f));
}

TEST(LayerNormTest, GradCheck) {
  Rng rng(3);
  nn::LayerNorm norm(3, rng);
  std::vector<ag::Variable> inputs = {
      ag::Variable(Tensor::RandomUniform(Shape{1, 3, 2, 2}, rng, -1.0f, 1.0f), true)};
  const auto result = ag::CheckGradients(
      [&norm](const std::vector<ag::Variable>& in) {
        return ag::Sum(ag::Square(norm.Forward(in[0])));
      },
      inputs, 1e-2f, 3e-2f);
  EXPECT_TRUE(result.passed) << result.max_rel_error;
}

TEST(LayerNormTest, EncoderWithNormTrains) {
  Rng rng(4);
  core::BackboneConfig config;
  config.num_nodes = 6;
  config.in_channels = 2;
  config.input_steps = 12;
  config.hidden_channels = 4;
  config.latent_channels = 8;
  config.num_layers = 3;
  config.adaptive_embedding_dim = 3;
  config.use_layer_norm = true;
  core::GraphWaveNetEncoder encoder(config, rng);
  Rng graph_rng(5);
  graph::SensorNetwork g = graph::RandomGeometricGraph(6, 0.5f, graph_rng);
  ag::Variable x(Tensor::RandomUniform(Shape{2, 12, 6, 2}, rng), false);
  ag::Variable latent = encoder.Encode(x, g.AdjacencyMatrix());
  EXPECT_TRUE(top::AllFinite(latent.value()));
  ag::Mean(ag::Square(latent)).Backward();  // gradients flow through the norm
}

class TrainerFixture : public ::testing::Test {
 protected:
  TrainerFixture() {
    data::TrafficConfig traffic;
    traffic.num_nodes = 6;
    traffic.num_days = 3;
    traffic.steps_per_day = 72;
    generator_ = std::make_unique<data::SyntheticTraffic>(traffic);
    Tensor series = generator_->GenerateSeries();
    normalizer_ = data::MinMaxNormalizer::Fit(series);
    dataset_ = std::make_unique<data::StDataset>(normalizer_.Transform(series),
                                                 data::WindowConfig{12, 1, 0});
    train_ = std::make_unique<data::StDataset>(dataset_->Slice(0, 150));
    val_ = std::make_unique<data::StDataset>(dataset_->Slice(150, 33));
  }

  core::UrclConfig SmallConfig() const {
    core::UrclConfig config;
    config.encoder.num_nodes = 6;
    config.encoder.in_channels = 2;
    config.encoder.input_steps = 12;
    config.encoder.hidden_channels = 4;
    config.encoder.latent_channels = 8;
    config.encoder.num_layers = 3;
    config.encoder.adaptive_embedding_dim = 3;
    config.decoder_hidden = 16;
    config.proj_hidden = 8;
    config.batch_size = 4;
    config.max_batches_per_epoch = 5;
    config.replay_sample_count = 2;
    config.rmir_scan_size = 4;
    config.rmir_candidate_pool = 3;
    return config;
  }

  std::unique_ptr<data::SyntheticTraffic> generator_;
  data::MinMaxNormalizer normalizer_;
  std::unique_ptr<data::StDataset> dataset_;
  std::unique_ptr<data::StDataset> train_;
  std::unique_ptr<data::StDataset> val_;
};

TEST_F(TrainerFixture, EarlyStoppingStopsAndRestoresBest) {
  core::UrclTrainer trainer(SmallConfig(), generator_->network());
  const std::vector<float> losses =
      trainer.TrainStageWithValidation(*train_, *val_, /*max_epochs=*/30, /*patience=*/2);
  // Must stop well before the 30-epoch cap on this tiny problem.
  EXPECT_LT(losses.size(), 30u);
  EXPECT_GE(losses.size(), 3u);
  // The restored model must be usable.
  const auto [x, y] = val_->MakeBatch({0, 1});
  EXPECT_TRUE(top::AllFinite(trainer.Predict(x)));
}

TEST_F(TrainerFixture, ValidationMaeComputes) {
  core::UrclTrainer trainer(SmallConfig(), generator_->network());
  trainer.TrainStage(*train_, 1);
  const double mae = core::ValidationMae(trainer, *val_);
  EXPECT_GT(mae, 0.0);
  EXPECT_LT(mae, 1.0);  // normalized space
}

TEST_F(TrainerFixture, CheckpointRoundTrip) {
  core::UrclTrainer a(SmallConfig(), generator_->network());
  a.TrainStage(*train_, 1);
  const std::string path = ::testing::TempDir() + "/urcl_ckpt_test.bin";
  a.SaveCheckpoint(path);

  core::UrclConfig other = SmallConfig();
  other.seed = 99;
  core::UrclTrainer b(other, generator_->network());
  const auto [x, y] = val_->MakeBatch({0, 1, 2});
  EXPECT_FALSE(top::AllClose(a.Predict(x), b.Predict(x)));
  b.LoadCheckpoint(path);
  EXPECT_TRUE(top::AllClose(a.Predict(x), b.Predict(x), 1e-6f));
  std::remove(path.c_str());
}

TEST_F(TrainerFixture, EwcTrainsAndConsolidates) {
  core::EwcConfig config;
  const core::UrclConfig base = SmallConfig();
  config.encoder = base.encoder;
  config.decoder_hidden = base.decoder_hidden;
  config.batch_size = 4;
  config.max_batches_per_epoch = 5;
  config.fisher_batches = 2;
  core::EwcTrainer trainer(config, generator_->network());
  EXPECT_FALSE(trainer.consolidated());
  EXPECT_FLOAT_EQ(trainer.PenaltyValue(), 0.0f);

  const std::vector<float> losses = trainer.TrainStage(*train_, 2);
  EXPECT_EQ(losses.size(), 2u);
  EXPECT_TRUE(trainer.consolidated());
  // Right after consolidation theta == theta*, penalty is zero.
  EXPECT_NEAR(trainer.PenaltyValue(), 0.0f, 1e-6f);

  // Training a second stage moves parameters; the penalty becomes positive
  // during training but is re-anchored at the end. Probe mid-state by
  // training once more and checking predictions still work.
  trainer.TrainStage(*val_, 1);
  const auto [x, y] = val_->MakeBatch({0});
  EXPECT_TRUE(top::AllFinite(trainer.Predict(x)));
}

TEST_F(TrainerFixture, EwcPenaltyResistsParameterDrift) {
  core::EwcConfig config;
  const core::UrclConfig base = SmallConfig();
  config.encoder = base.encoder;
  config.decoder_hidden = base.decoder_hidden;
  config.batch_size = 4;
  config.max_batches_per_epoch = 5;
  config.fisher_batches = 2;
  config.ewc_lambda = 1000.0f;
  core::EwcTrainer with_ewc(config, generator_->network());
  with_ewc.TrainStage(*train_, 3);
  const auto [x, y] = train_->MakeBatch({0, 1, 2, 3});
  const Tensor before = with_ewc.Predict(x);
  // Train on a very different slice; EWC should keep predictions on the
  // original data closer than a lambda=~0 run would.
  core::EwcConfig weak = config;
  weak.ewc_lambda = 1e-6f;
  core::EwcTrainer without_ewc(weak, generator_->network());
  without_ewc.TrainStage(*train_, 3);
  const Tensor before_weak = without_ewc.Predict(x);

  with_ewc.TrainStage(*val_, 3);
  without_ewc.TrainStage(*val_, 3);
  const float drift_ewc = top::MaxAbsDiff(with_ewc.Predict(x), before);
  const float drift_weak = top::MaxAbsDiff(without_ewc.Predict(x), before_weak);
  EXPECT_LE(drift_ewc, drift_weak * 1.5f)
      << "EWC drift " << drift_ewc << " vs unregularized " << drift_weak;
}

TEST(CsvWriterTest, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/urcl_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.WriteRow({"1", "hello"});
    csv.WriteRow({"2", "with,comma"});
    csv.WriteRow({"3", "with\"quote"});
  }
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  EXPECT_NE(content.find("a,b\n"), std::string::npos);
  EXPECT_NE(content.find("1,hello\n"), std::string::npos);
  EXPECT_NE(content.find("2,\"with,comma\"\n"), std::string::npos);
  EXPECT_NE(content.find("3,\"with\"\"quote\"\n"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvWriterTest, RowWidthMismatchDies) {
  const std::string path = ::testing::TempDir() + "/urcl_csv_test2.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_DEATH(csv.WriteRow({"only-one"}), "row width");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, UnwritablePathDies) {
  EXPECT_DEATH(CsvWriter("/nonexistent/dir/file.csv", {"a"}), "cannot open");
}

}  // namespace
}  // namespace urcl
