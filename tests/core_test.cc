#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "core/backbone.h"
#include "core/stdecoder.h"
#include "core/stencoder.h"
#include "core/stmixup.h"
#include "core/stsimsiam.h"
#include "core/urcl.h"
#include "data/synthetic.h"
#include "graph/generator.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace core {
namespace {

namespace ag = ::urcl::autograd;
namespace top = ::urcl::ops;

BackboneConfig SmallConfig(int64_t nodes = 6) {
  BackboneConfig config;
  config.num_nodes = nodes;
  config.in_channels = 2;
  config.input_steps = 12;
  config.hidden_channels = 4;
  config.latent_channels = 8;
  config.num_layers = 3;
  config.adaptive_embedding_dim = 3;
  return config;
}

TEST(StMixupTest, InterpolatesWithLambda) {
  Rng rng(1);
  Tensor cx = Tensor::Full(Shape{2, 3, 2, 1}, 1.0f);
  Tensor cy = Tensor::Full(Shape{2, 1, 2, 1}, 1.0f);
  Tensor rx = Tensor::Full(Shape{2, 3, 2, 1}, 0.0f);
  Tensor ry = Tensor::Full(Shape{2, 1, 2, 1}, 0.0f);
  const MixupResult result = StMixup(cx, cy, rx, ry, 0.5f, rng);
  EXPECT_GE(result.lambda, 0.0f);
  EXPECT_LE(result.lambda, 1.0f);
  // Per pair: each batch row holds a constant value lambda_b in [0, 1]
  // (current=1, replay=0), and targets use the same lambda_b.
  for (int64_t b = 0; b < 2; ++b) {
    const float lambda_b = result.inputs.At({b, 0, 0, 0});
    EXPECT_GE(lambda_b, 0.0f);
    EXPECT_LE(lambda_b, 1.0f);
    for (int64_t m = 0; m < 3; ++m) {
      for (int64_t n = 0; n < 2; ++n) {
        EXPECT_NEAR(result.inputs.At({b, m, n, 0}), lambda_b, 1e-6);
      }
    }
    EXPECT_NEAR(result.targets.At({b, 0, 0, 0}), lambda_b, 1e-6);
  }
}

TEST(StMixupTest, CyclesSmallerReplayBatch) {
  Rng rng(2);
  Tensor cx = Tensor::Zeros(Shape{4, 2, 2, 1});
  Tensor cy = Tensor::Zeros(Shape{4, 1, 2, 1});
  // Replay batch of 2 with distinct rows.
  Tensor rx(Shape{2, 2, 2, 1});
  rx.Fill(1.0f);
  for (int64_t i = 0; i < 4; ++i) rx.FlatSet(4 + i, 2.0f);  // row 1 = 2.0
  Tensor ry = Tensor::Ones(Shape{2, 1, 2, 1});
  const MixupResult result = StMixup(cx, cy, rx, ry, 0.5f, rng);
  // Current inputs/targets are zero, replay targets are one, so the mixed
  // target of row b reveals (1 - lambda_b); the mixed input must then be
  // (1 - lambda_b) * replay_value with replay rows cycled (b % 2).
  for (int64_t b = 0; b < 4; ++b) {
    const float one_minus_lambda = result.targets.At({b, 0, 0, 0});
    const float replay_value = (b % 2 == 0) ? 1.0f : 2.0f;
    EXPECT_NEAR(result.inputs.At({b, 0, 0, 0}), one_minus_lambda * replay_value, 1e-5);
  }
}

TEST(StMixupTest, EmptyReplayDies) {
  Rng rng(3);
  Tensor cx = Tensor::Zeros(Shape{2, 2, 2, 1});
  Tensor cy = Tensor::Zeros(Shape{2, 1, 2, 1});
  Tensor rx(Shape{0, 2, 2, 1});
  Tensor ry(Shape{0, 1, 2, 1});
  EXPECT_DEATH(StMixup(cx, cy, rx, ry, 0.5f, rng), "non-empty replay");
}

TEST(StMixupTest, ConcatBatchesAblation) {
  Tensor cx = Tensor::Zeros(Shape{2, 2, 2, 1});
  Tensor cy = Tensor::Zeros(Shape{2, 1, 2, 1});
  Tensor rx = Tensor::Ones(Shape{3, 2, 2, 1});
  Tensor ry = Tensor::Ones(Shape{3, 1, 2, 1});
  const MixupResult result = ConcatBatches(cx, cy, rx, ry);
  EXPECT_EQ(result.inputs.dim(0), 5);
  EXPECT_EQ(result.targets.dim(0), 5);
  EXPECT_FLOAT_EQ(result.lambda, 1.0f);
}

class EncoderTest : public ::testing::Test {
 protected:
  EncoderTest() : graph_(graph::GridGraph(2, 3)), rng_(5) {
    adjacency_ = graph_.AdjacencyMatrix();
    Rng data_rng(9);
    x_ = Tensor::RandomUniform(Shape{2, 12, 6, 2}, data_rng);
  }
  graph::SensorNetwork graph_;
  Tensor adjacency_;
  Tensor x_;
  Rng rng_;
};

TEST_F(EncoderTest, GraphWaveNetShapes) {
  GraphWaveNetEncoder encoder(SmallConfig(), rng_);
  Variable latent = encoder.Encode(Variable(x_, false), adjacency_);
  EXPECT_EQ(latent.shape().dim(0), 2);
  EXPECT_EQ(latent.shape().dim(1), 8);
  EXPECT_EQ(latent.shape().dim(2), 6);
  EXPECT_EQ(latent.shape().dim(3), encoder.latent_time());
  EXPECT_GT(encoder.latent_time(), 0);
  // Receptive field consumed: sum of dilations.
  int64_t consumed = 0;
  for (const int64_t d : encoder.dilations()) consumed += d;
  EXPECT_EQ(encoder.latent_time(), 12 - consumed);
}

TEST_F(EncoderTest, GraphWaveNetFiveLayersMatchPaperGeometry) {
  BackboneConfig config = SmallConfig();
  config.num_layers = 5;
  GraphWaveNetEncoder encoder(config, rng_);
  EXPECT_EQ(encoder.dilations().size(), 5u);
  Variable latent = encoder.Encode(Variable(x_, false), adjacency_);
  EXPECT_EQ(latent.shape().dim(3), encoder.latent_time());
}

TEST_F(EncoderTest, GradientsReachAllParameters) {
  GraphWaveNetEncoder encoder(SmallConfig(), rng_);
  Variable latent = encoder.Encode(Variable(x_, false), adjacency_);
  ag::Mean(ag::Square(latent)).Backward();
  int64_t nonzero_grads = 0;
  for (const Variable& p : encoder.Parameters()) {
    if (top::Max(top::Abs(p.grad())).Item() > 0.0f) ++nonzero_grads;
  }
  // Nearly all parameters get gradient (biases of dead relu units may not).
  EXPECT_GT(nonzero_grads, static_cast<int64_t>(encoder.Parameters().size() * 3 / 4));
}

TEST_F(EncoderTest, DcrnnShapes) {
  auto encoder = MakeBackbone(BackboneType::kDcrnn, SmallConfig(), rng_);
  Variable latent = encoder->Encode(Variable(x_, false), adjacency_);
  EXPECT_EQ(latent.shape(), Shape({2, 8, 6, 1}));
  EXPECT_EQ(encoder->latent_time(), 1);
  EXPECT_EQ(encoder->name(), "DCRNN");
}

TEST_F(EncoderTest, GeomanShapes) {
  auto encoder = MakeBackbone(BackboneType::kGeoman, SmallConfig(), rng_);
  Variable latent = encoder->Encode(Variable(x_, false), adjacency_);
  EXPECT_EQ(latent.shape(), Shape({2, 8, 6, 1}));
  EXPECT_EQ(encoder->name(), "GeoMAN");
}

TEST_F(EncoderTest, PoolLatentShape) {
  GraphWaveNetEncoder encoder(SmallConfig(), rng_);
  Variable latent = encoder.Encode(Variable(x_, false), adjacency_);
  EXPECT_EQ(StBackbone::PoolLatent(latent).shape(), Shape({2, 8}));
}

TEST_F(EncoderTest, MtgnnStyleIgnoresAdjacency) {
  BackboneConfig config = SmallConfig();
  config.use_static_supports = false;
  GraphWaveNetEncoder encoder(config, rng_);
  Variable a = encoder.Encode(Variable(x_, false), adjacency_);
  Variable b = encoder.Encode(Variable(x_, false), Tensor::Zeros(Shape{6, 6}));
  EXPECT_TRUE(top::AllClose(a.value(), b.value()));
}

TEST_F(EncoderTest, WrongNodeCountDies) {
  GraphWaveNetEncoder encoder(SmallConfig(), rng_);
  Tensor bad = Tensor::Zeros(Shape{2, 12, 7, 2});
  EXPECT_DEATH(encoder.Encode(Variable(bad, false), adjacency_), "Check failed");
}

TEST(StDecoderTest, ShapesAndValues) {
  Rng rng(6);
  StDecoder decoder(/*latent_channels=*/8, /*latent_time=*/2, /*decoder_hidden=*/16,
                    /*output_steps=*/3, rng);
  Variable latent(Tensor::Ones(Shape{4, 8, 5, 2}), false);
  Variable out = decoder.Forward(latent);
  EXPECT_EQ(out.shape(), Shape({4, 3, 5, 1}));
}

TEST(StDecoderTest, WrongLatentDies) {
  Rng rng(7);
  StDecoder decoder(8, 2, 16, 1, rng);
  Variable latent(Tensor::Ones(Shape{4, 8, 5, 3}), false);  // wrong T'
  EXPECT_DEATH(decoder.Forward(latent), "Check failed");
}

class SimSiamTest : public ::testing::Test {
 protected:
  SimSiamTest() : graph_(graph::GridGraph(2, 3)), rng_(8) {
    encoder_ = std::make_unique<GraphWaveNetEncoder>(SmallConfig(), rng_);
    simsiam_ = std::make_unique<StSimSiam>(encoder_.get(), 8, 8, 0.5f, rng_);
    Rng data_rng(9);
    obs_ = Tensor::RandomUniform(Shape{4, 12, 6, 2}, data_rng);
    adjacency_ = graph_.AdjacencyMatrix();
  }
  graph::SensorNetwork graph_;
  Rng rng_;
  std::unique_ptr<GraphWaveNetEncoder> encoder_;
  std::unique_ptr<StSimSiam> simsiam_;
  Tensor obs_;
  Tensor adjacency_;
};

TEST_F(SimSiamTest, LossIsFiniteAndBackpropagates) {
  augment::AugmentedView v1{obs_, adjacency_};
  augment::AugmentedView v2{obs_, adjacency_};
  Variable loss = simsiam_->Loss(v1, v2);
  EXPECT_EQ(loss.value().NumElements(), 1);
  EXPECT_TRUE(std::isfinite(loss.value().Item()));
  loss.Backward();
  // Projector gets gradients.
  for (const Variable& p : simsiam_->Parameters()) {
    EXPECT_EQ(p.grad().shape(), p.value().shape());
  }
}

TEST_F(SimSiamTest, EncoderReceivesGradientThroughProjection) {
  augment::AugmentedView v1{obs_, adjacency_};
  augment::AugmentedView v2{obs_, adjacency_};
  for (const Variable& p : encoder_->Parameters()) p.ZeroGrad();
  simsiam_->Loss(v1, v2).Backward();
  float total = 0.0f;
  for (const Variable& p : encoder_->Parameters()) {
    total += top::Max(top::Abs(p.grad())).Item();
  }
  EXPECT_GT(total, 0.0f);  // gradient flows via p = h(f(x)), not via sg(z)
}

TEST_F(SimSiamTest, ProjectorSharesEncoderNotParams) {
  // StSimSiam::Parameters() must contain only the projector (encoder is
  // registered once by UrclModel, avoiding double counting).
  const auto named = simsiam_->NamedParameters();
  for (const auto& [name, p] : named) {
    EXPECT_EQ(name.rfind("projector", 0), 0u) << name;
  }
}

class UrclTrainerTest : public ::testing::Test {
 protected:
  UrclConfig SmallUrcl(int64_t nodes) {
    UrclConfig config;
    config.encoder = SmallConfig(nodes);
    config.batch_size = 4;
    config.max_batches_per_epoch = 6;
    config.replay_sample_count = 2;
    config.rmir_scan_size = 6;
    config.rmir_candidate_pool = 4;
    config.buffer_capacity = 32;
    config.proj_hidden = 8;
    config.decoder_hidden = 16;
    return config;
  }

  data::StDataset SmallDataset(int64_t nodes, int64_t steps = 120) {
    data::TrafficConfig traffic;
    traffic.num_nodes = nodes;
    traffic.num_days = 2;
    traffic.steps_per_day = steps / 2;
    traffic.channels = 2;
    generator_ = std::make_unique<data::SyntheticTraffic>(traffic);
    Tensor series = generator_->GenerateSeries();
    normalizer_ = data::MinMaxNormalizer::Fit(series);
    return data::StDataset(normalizer_.Transform(series), data::WindowConfig{12, 1, 0});
  }

  std::unique_ptr<data::SyntheticTraffic> generator_;
  data::MinMaxNormalizer normalizer_;
};

TEST_F(UrclTrainerTest, TrainingReducesLoss) {
  const int64_t nodes = 6;
  data::StDataset dataset = SmallDataset(nodes);
  UrclTrainer trainer(SmallUrcl(nodes), generator_->network());
  const std::vector<float> losses = trainer.TrainStage(dataset, 6);
  ASSERT_EQ(losses.size(), 6u);
  EXPECT_LT(losses.back(), losses.front());
  EXPECT_GT(trainer.buffer().size(), 0);
}

TEST_F(UrclTrainerTest, PredictShape) {
  const int64_t nodes = 6;
  data::StDataset dataset = SmallDataset(nodes);
  UrclTrainer trainer(SmallUrcl(nodes), generator_->network());
  trainer.TrainStage(dataset, 1);
  const auto [x, y] = dataset.MakeBatch({0, 1, 2});
  EXPECT_EQ(trainer.Predict(x).shape(), y.shape());
}

TEST_F(UrclTrainerTest, AblationTogglesAllRun) {
  const int64_t nodes = 6;
  data::StDataset dataset = SmallDataset(nodes);
  for (int ablation = 0; ablation < 5; ++ablation) {
    UrclConfig config = SmallUrcl(nodes);
    config.max_batches_per_epoch = 3;
    switch (ablation) {
      case 0: config.enable_mixup = false; break;        // w/o_STU
      case 1: config.enable_rmir = false; break;         // w/o_RMIR
      case 2: config.enable_augmentation = false; break; // w/o_STA
      case 3: config.enable_ssl = false; break;          // w/o_GCL
      case 4: config.enable_replay = false; break;       // plain finetune
    }
    UrclTrainer trainer(config, generator_->network());
    const std::vector<float> losses = trainer.TrainStage(dataset, 1);
    EXPECT_TRUE(std::isfinite(losses[0])) << "ablation " << ablation;
  }
}

TEST_F(UrclTrainerTest, ReplayDisabledKeepsBufferEmpty) {
  const int64_t nodes = 6;
  data::StDataset dataset = SmallDataset(nodes);
  UrclConfig config = SmallUrcl(nodes);
  config.enable_replay = false;
  UrclTrainer trainer(config, generator_->network());
  trainer.TrainStage(dataset, 1);
  EXPECT_EQ(trainer.buffer().size(), 0);
}

TEST_F(UrclTrainerTest, LossHistoryGrows) {
  const int64_t nodes = 6;
  data::StDataset dataset = SmallDataset(nodes);
  UrclConfig config = SmallUrcl(nodes);
  UrclTrainer trainer(config, generator_->network());
  trainer.TrainStage(dataset, 2);
  // 6 batches per epoch, 2 epochs (last partial batches may be skipped).
  EXPECT_GE(trainer.loss_history().size(), 10u);
}

TEST_F(UrclTrainerTest, BackbonesInterchangeable) {
  const int64_t nodes = 6;
  data::StDataset dataset = SmallDataset(nodes);
  for (const BackboneType type :
       {BackboneType::kGraphWaveNet, BackboneType::kDcrnn, BackboneType::kGeoman}) {
    UrclConfig config = SmallUrcl(nodes);
    config.backbone = type;
    config.max_batches_per_epoch = 2;
    UrclTrainer trainer(config, generator_->network());
    const std::vector<float> losses = trainer.TrainStage(dataset, 1);
    EXPECT_TRUE(std::isfinite(losses[0])) << BackboneTypeName(type);
    const auto [x, y] = dataset.MakeBatch({0});
    EXPECT_EQ(trainer.Predict(x).shape(), y.shape()) << BackboneTypeName(type);
  }
}

TEST(ConfigValidationTest, ValidConfigsProduceNoErrors) {
  EXPECT_TRUE(SmallConfig().Validate().empty());
  UrclConfig config;
  config.encoder = SmallConfig();
  EXPECT_TRUE(config.Validate().empty());
}

TEST(ConfigValidationTest, BackboneConfigReportsEveryBadField) {
  BackboneConfig config = SmallConfig();
  config.num_nodes = 0;
  config.hidden_channels = -1;
  config.diffusion_steps = 0;
  const std::vector<std::string> errors = config.Validate();
  ASSERT_EQ(errors.size(), 3u) << FormatConfigErrors(errors);
  EXPECT_NE(errors[0].find("num_nodes"), std::string::npos);
  EXPECT_NE(errors[1].find("hidden_channels"), std::string::npos);
  EXPECT_NE(errors[2].find("diffusion_steps"), std::string::npos);
}

TEST(ConfigValidationTest, RequiresSomeAdjacencySource) {
  BackboneConfig config = SmallConfig();
  config.use_adaptive_adjacency = false;
  config.use_static_supports = false;
  const std::vector<std::string> errors = config.Validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("adjacency source"), std::string::npos);
}

TEST(ConfigValidationTest, UrclConfigPrefixesEncoderErrorsAndChecksOwnFields) {
  UrclConfig config;
  config.encoder = SmallConfig();
  config.encoder.num_layers = 0;
  config.replay_sample_count = 64;
  config.buffer_capacity = 32;
  config.ssl_temperature = 0.0f;
  const std::vector<std::string> errors = config.Validate();
  ASSERT_EQ(errors.size(), 3u) << FormatConfigErrors(errors);
  EXPECT_EQ(errors[0].rfind("encoder: ", 0), 0u);
  EXPECT_NE(errors[1].find("ssl_temperature"), std::string::npos);
  EXPECT_NE(errors[2].find("replay_sample_count"), std::string::npos);
}

TEST(ConfigValidationTest, EntryPointsRejectInvalidConfigs) {
  Rng rng(3);
  BackboneConfig bad = SmallConfig();
  bad.num_nodes = 0;
  EXPECT_DEATH(MakeBackbone(BackboneType::kGraphWaveNet, bad, rng),
               "invalid BackboneConfig: num_nodes");
  UrclConfig config;
  config.encoder = SmallConfig();
  config.batch_size = 0;
  EXPECT_DEATH(UrclModel(config, rng), "invalid UrclConfig: batch_size");
}

}  // namespace
}  // namespace core
}  // namespace urcl
