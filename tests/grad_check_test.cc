// Finite-difference validation of every differentiable op. These tests are
// the ground truth for the autograd engine: if they pass, training dynamics
// downstream are trustworthy.
#include "autograd/grad_check.h"

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace autograd {
namespace {

using Fn = std::function<Variable(const std::vector<Variable>&)>;

void ExpectGradOk(const Fn& fn, std::vector<Variable> inputs, float tolerance = 2e-2f) {
  const GradCheckResult result = CheckGradients(fn, inputs, 1e-2f, tolerance);
  EXPECT_TRUE(result.passed) << "max_abs=" << result.max_abs_error
                             << " max_rel=" << result.max_rel_error;
}

std::vector<Variable> RandomInputs(const std::vector<Shape>& shapes, uint64_t seed,
                                   float lo = -1.5f, float hi = 1.5f) {
  Rng rng(seed);
  std::vector<Variable> inputs;
  for (const Shape& s : shapes) {
    inputs.emplace_back(Tensor::RandomUniform(s, rng, lo, hi), /*requires_grad=*/true);
  }
  return inputs;
}

TEST(GradCheckTest, AddBroadcast) {
  ExpectGradOk([](const std::vector<Variable>& in) { return Sum(Add(in[0], in[1])); },
               RandomInputs({Shape{2, 3}, Shape{3}}, 1));
}

TEST(GradCheckTest, SubBroadcast) {
  ExpectGradOk([](const std::vector<Variable>& in) { return Sum(Sub(in[0], in[1])); },
               RandomInputs({Shape{2, 3}, Shape{2, 1}}, 2));
}

TEST(GradCheckTest, MulBroadcast) {
  ExpectGradOk([](const std::vector<Variable>& in) { return Sum(Mul(in[0], in[1])); },
               RandomInputs({Shape{2, 3}, Shape{1, 3}}, 3));
}

TEST(GradCheckTest, DivPositiveDenominator) {
  ExpectGradOk([](const std::vector<Variable>& in) { return Sum(Div(in[0], in[1])); },
               RandomInputs({Shape{2, 2}, Shape{2, 2}}, 4, 0.5f, 2.0f));
}

TEST(GradCheckTest, ExpLogSqrtChain) {
  ExpectGradOk(
      [](const std::vector<Variable>& in) { return Sum(Log(Sqrt(Exp(in[0])))); },
      RandomInputs({Shape{3, 2}}, 5, -1.0f, 1.0f));
}

TEST(GradCheckTest, TanhSigmoid) {
  ExpectGradOk(
      [](const std::vector<Variable>& in) { return Sum(Tanh(Sigmoid(in[0]))); },
      RandomInputs({Shape{4}}, 6));
}

TEST(GradCheckTest, SquareMean) {
  ExpectGradOk([](const std::vector<Variable>& in) { return Mean(Square(in[0])); },
               RandomInputs({Shape{3, 3}}, 7));
}

TEST(GradCheckTest, LeakyRelu) {
  // Offsets keep values away from the kink at 0.
  ExpectGradOk(
      [](const std::vector<Variable>& in) { return Sum(LeakyRelu(in[0], 0.1f)); },
      RandomInputs({Shape{6}}, 8, 0.5f, 1.5f));
  ExpectGradOk(
      [](const std::vector<Variable>& in) { return Sum(LeakyRelu(in[0], 0.1f)); },
      RandomInputs({Shape{6}}, 9, -1.5f, -0.5f));
}

TEST(GradCheckTest, MatMul2d) {
  ExpectGradOk([](const std::vector<Variable>& in) { return Sum(MatMul(in[0], in[1])); },
               RandomInputs({Shape{3, 4}, Shape{4, 2}}, 10));
}

TEST(GradCheckTest, MatMulBatchedBroadcast) {
  ExpectGradOk(
      [](const std::vector<Variable>& in) {
        return Sum(Square(MatMul(in[0], in[1])));
      },
      RandomInputs({Shape{2, 3, 4}, Shape{4, 2}}, 11));
}

TEST(GradCheckTest, SumAxisKeepdims) {
  ExpectGradOk(
      [](const std::vector<Variable>& in) {
        return Sum(Square(Sum(in[0], {1}, /*keepdims=*/true)));
      },
      RandomInputs({Shape{3, 4}}, 12));
}

TEST(GradCheckTest, MeanAxis) {
  ExpectGradOk(
      [](const std::vector<Variable>& in) { return Sum(Square(Mean(in[0], {0}))); },
      RandomInputs({Shape{3, 4}}, 13));
}

TEST(GradCheckTest, TransposeReshapeSlice) {
  ExpectGradOk(
      [](const std::vector<Variable>& in) {
        Variable t = Transpose(Reshape(in[0], Shape{2, 6}), {1, 0});
        return Sum(Square(Slice(t, {1, 0}, {4, 2})));
      },
      RandomInputs({Shape{3, 4}}, 14));
}

TEST(GradCheckTest, ConcatPad) {
  ExpectGradOk(
      [](const std::vector<Variable>& in) {
        Variable c = Concat({in[0], in[1]}, 1);
        return Sum(Square(Pad(c, 0, 1, 1)));
      },
      RandomInputs({Shape{2, 2}, Shape{2, 3}}, 15));
}

TEST(GradCheckTest, BroadcastToExplicit) {
  ExpectGradOk(
      [](const std::vector<Variable>& in) {
        return Sum(Square(BroadcastTo(in[0], Shape{4, 3})));
      },
      RandomInputs({Shape{1, 3}}, 16));
}

TEST(GradCheckTest, SoftmaxWeightedSum) {
  ExpectGradOk(
      [](const std::vector<Variable>& in) {
        Variable s = Softmax(in[0], -1);
        return Sum(Mul(s, s));  // nonlinear functional of the softmax
      },
      RandomInputs({Shape{2, 4}}, 17));
}

TEST(GradCheckTest, TemporalConv) {
  ExpectGradOk(
      [](const std::vector<Variable>& in) {
        return Sum(Square(TemporalConv2d(in[0], in[1], /*dilation=*/2)));
      },
      RandomInputs({Shape{1, 2, 2, 6}, Shape{2, 2, 1, 2}}, 18));
}

TEST(GradCheckTest, GatedTcnComposite) {
  // The exact composite used by the model: tanh(conv) * sigmoid(conv).
  ExpectGradOk(
      [](const std::vector<Variable>& in) {
        Variable a = TemporalConv2d(in[0], in[1], 1);
        Variable b = TemporalConv2d(in[0], in[2], 1);
        return Sum(Square(Mul(Tanh(a), Sigmoid(b))));
      },
      RandomInputs({Shape{1, 2, 2, 5}, Shape{3, 2, 1, 2}, Shape{3, 2, 1, 2}}, 19));
}

TEST(GradCheckTest, StopGradientExcludesBranch) {
  // d/dx [ sg(x^2) * x ] = x^2 exactly (not 3x^2).
  Variable x(Tensor::Scalar(1.7f), true);
  std::vector<Variable> inputs = {x};
  Variable y = Mul(StopGradient(Mul(x, x)), x);
  x.ZeroGrad();
  y.Backward();
  EXPECT_NEAR(x.grad().Item(), 1.7f * 1.7f, 1e-5);
}

TEST(GradCheckTest, DeepComposite) {
  // A small MLP-like stack: checks interaction of many ops at once.
  ExpectGradOk(
      [](const std::vector<Variable>& in) {
        Variable h = Tanh(Add(MatMul(in[0], in[1]), in[2]));
        Variable o = Sigmoid(MatMul(h, in[3]));
        return Mean(Square(o));
      },
      RandomInputs({Shape{2, 3}, Shape{3, 4}, Shape{4}, Shape{4, 1}}, 20));
}

}  // namespace
}  // namespace autograd
}  // namespace urcl
