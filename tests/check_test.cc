// `urcl::check` integrity analysis (DESIGN.md §9): tensor write-version
// counters, the gated Backward() stale-capture verification, the autograd
// graph linter, and BufferPool poisoning. Each check family is exercised
// against a seeded defect that must be caught, plus a clean-path test proving
// no false positives (including a full trainer stage with checks forced on).
//
// The tier-1 build is Release, where the URCL_CHECK / URCL_POOL_POISON gates
// default to off — every test toggles the gates explicitly and restores them.
#include <cmath>

#include <gtest/gtest.h>

#include "autograd/lint.h"
#include "autograd/ops.h"
#include "common/check.h"
#include "common/rng.h"
#include "core/urcl.h"
#include "data/synthetic.h"
#include "tensor/pool.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace {

namespace ag = ::urcl::autograd;

bool HasRule(const std::vector<ag::LintIssue>& issues, const std::string& rule) {
  for (const ag::LintIssue& issue : issues) {
    if (issue.rule == rule) return true;
  }
  return false;
}

class GraphChecksTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = check::GraphChecksEnabled();
    check::SetGraphChecksEnabled(true);
  }
  void TearDown() override { check::SetGraphChecksEnabled(saved_); }
  bool saved_ = false;
};

// --- Tensor write-version counters -----------------------------------------

TEST(TensorVersionTest, MutationsBumpTheCounter) {
  Tensor t = Tensor::Zeros(Shape{2, 3});
  const uint64_t v0 = t.version();
  t.Fill(1.0f);
  EXPECT_GT(t.version(), v0);
  const uint64_t v1 = t.version();
  t.Set({0, 0}, 2.0f);
  EXPECT_GT(t.version(), v1);
  const uint64_t v2 = t.version();
  (void)t.mutable_data();
  EXPECT_GT(t.version(), v2);
}

TEST(TensorVersionTest, ReadsDoNotBumpTheCounter) {
  Tensor t = Tensor::Ones(Shape{4});
  const uint64_t v0 = t.version();
  (void)t.data();
  (void)t.At({2});
  EXPECT_EQ(t.version(), v0);
}

TEST(TensorVersionTest, CloneGetsItsOwnCounter) {
  Tensor t = Tensor::Ones(Shape{4});
  Tensor copy = t.Clone();
  EXPECT_NE(t.version_counter().get(), copy.version_counter().get());
  const uint64_t v0 = t.version();
  copy.Fill(3.0f);
  EXPECT_EQ(t.version(), v0);
}

// --- Gated stale-capture verification in Backward --------------------------

TEST(GraphChecksDeathTest, BackwardDiesOnInPlaceMutationOfCapturedParent) {
  EXPECT_DEATH(
      {
        check::SetGraphChecksEnabled(true);
        ag::Variable x(Tensor::Ones(Shape{2, 2}), /*requires_grad=*/true);
        ag::Variable loss = ag::Sum(ag::Square(x));
        x.internal_node()->value.Fill(7.0f);  // seeded defect
        loss.Backward();
      },
      "urcl.check/version.*mutated in place after record");
}

TEST(GraphChecksDeathTest, BackwardDiesOnSetValueOfCapturedParent) {
  EXPECT_DEATH(
      {
        check::SetGraphChecksEnabled(true);
        ag::Variable x(Tensor::Ones(Shape{2, 2}), /*requires_grad=*/true);
        ag::Variable loss = ag::Sum(ag::Square(x));
        x.SetValue(Tensor::Full(Shape{2, 2}, 7.0f));  // seeded defect
        loss.Backward();
      },
      "urcl.check/version.*storage was replaced");
}

TEST(GraphChecksDeathTest, TrainerGateDiesOnStaleGraph) {
  EXPECT_DEATH(
      {
        check::SetGraphChecksEnabled(true);
        ag::Variable x(Tensor::Ones(Shape{3}), /*requires_grad=*/true);
        ag::Variable loss = ag::Mean(ag::Mul(x, x));
        x.internal_node()->value.Set({1}, -2.0f);
        ag::CheckGraph(loss);
      },
      "urcl.check/version");
}

TEST_F(GraphChecksTest, DisabledGateSkipsVerification) {
  check::SetGraphChecksEnabled(false);
  ag::Variable x(Tensor::Ones(Shape{2, 2}), /*requires_grad=*/true);
  ag::Variable loss = ag::Sum(ag::Square(x));
  x.internal_node()->value.Fill(7.0f);
  loss.Backward();  // stale capture tolerated when the gate is off
  EXPECT_EQ(x.grad().NumElements(), 4);
}

TEST_F(GraphChecksTest, CleanBackwardPassesWithChecksOn) {
  ag::Variable x(Tensor::Ones(Shape{2, 2}), /*requires_grad=*/true);
  ag::Variable loss = ag::Sum(ag::Square(x));
  loss.Backward();
  EXPECT_FLOAT_EQ(loss.value().At({}), 4.0f);
  EXPECT_FLOAT_EQ(x.grad().At({0, 0}), 2.0f);
}

// --- Graph linter -----------------------------------------------------------

TEST_F(GraphChecksTest, LintCleanGraphIsEmpty) {
  ag::Variable x(Tensor::Ones(Shape{2, 3}), /*requires_grad=*/true);
  ag::Variable w(Tensor::Ones(Shape{3, 4}), /*requires_grad=*/true);
  ag::Variable loss = ag::Mean(ag::Relu(ag::MatMul(x, w)));
  const std::vector<ag::LintIssue> issues = ag::LintGraph(loss);
  EXPECT_TRUE(issues.empty()) << ag::FormatLintIssues(issues);
}

TEST_F(GraphChecksTest, LintReportsStaleCaptureNonFatally) {
  ag::Variable x(Tensor::Ones(Shape{2}), /*requires_grad=*/true);
  ag::Variable loss = ag::Sum(ag::Square(x));
  x.internal_node()->value.Fill(5.0f);
  const std::vector<ag::LintIssue> issues = ag::LintGraph(loss);
  EXPECT_TRUE(HasRule(issues, "version")) << ag::FormatLintIssues(issues);
}

TEST_F(GraphChecksTest, LintFlagsArityMismatch) {
  // Seeded defect: a binary 'mul' recorded with a single parent.
  ag::Variable x(Tensor::Ones(Shape{2}), /*requires_grad=*/true);
  ag::Variable bad = ag::Variable::MakeOp(Tensor::Ones(Shape{2}), "mul", {x},
                                          [](const Tensor&) {});
  const std::vector<ag::LintIssue> issues = ag::LintGraph(bad);
  EXPECT_TRUE(HasRule(issues, "arity")) << ag::FormatLintIssues(issues);
}

TEST_F(GraphChecksTest, LintFlagsShapeMismatch) {
  // Seeded defect: an 'add' whose output shape is not the broadcast of its
  // parents — backward would feed AccumulateGrad a mismatched gradient.
  ag::Variable a(Tensor::Ones(Shape{2, 3}), /*requires_grad=*/true);
  ag::Variable b(Tensor::Ones(Shape{2, 3}), /*requires_grad=*/true);
  ag::Variable bad = ag::Variable::MakeOp(Tensor::Ones(Shape{4}), "add", {a, b},
                                          [](const Tensor&) {});
  const std::vector<ag::LintIssue> issues = ag::LintGraph(bad);
  EXPECT_TRUE(HasRule(issues, "shape")) << ag::FormatLintIssues(issues);
}

TEST_F(GraphChecksTest, LintFlagsGradShapeMismatch) {
  ag::Variable x(Tensor::Ones(Shape{2, 2}), /*requires_grad=*/true);
  ag::Variable y = ag::Square(x);
  y.internal_node()->grad = Tensor::Zeros(Shape{5});  // seeded defect
  y.internal_node()->has_grad = true;
  const std::vector<ag::LintIssue> issues = ag::LintGraph(y);
  EXPECT_TRUE(HasRule(issues, "grad-shape")) << ag::FormatLintIssues(issues);
}

TEST_F(GraphChecksTest, LintFlagsBackwardClosureWithoutTrainableLeaves) {
  ag::Variable x(Tensor::Ones(Shape{3}), /*requires_grad=*/true);
  ag::Variable y = ag::Square(x);
  // Seeded defect: the only leaf loses requires_grad after recording, so the
  // closure above it can never receive a gradient consumer.
  x.internal_node()->requires_grad = false;
  const std::vector<ag::LintIssue> issues = ag::LintGraph(y);
  EXPECT_TRUE(HasRule(issues, "requires-grad")) << ag::FormatLintIssues(issues);
}

TEST_F(GraphChecksTest, LintFlagsCycle) {
  ag::Variable x(Tensor::Ones(Shape{2}), /*requires_grad=*/true);
  ag::Variable y = ag::Square(x);
  // Seeded defect: an edge from the leaf back to the output.
  x.internal_node()->parents.push_back(ag::internal::ParentEdge{
      y.internal_node(), y.value().version_counter(), y.value().version()});
  const std::vector<ag::LintIssue> issues = ag::LintGraph(y);
  EXPECT_TRUE(HasRule(issues, "cycle")) << ag::FormatLintIssues(issues);
  x.internal_node()->parents.clear();  // break the ownership cycle
}

TEST_F(GraphChecksTest, LintTerminatesOnCyclicGraph) {
  ag::Variable x(Tensor::Ones(Shape{2}), /*requires_grad=*/true);
  // Self-loop: the DFS must not spin on the back edge.
  x.internal_node()->parents.push_back(ag::internal::ParentEdge{
      x.internal_node(), x.value().version_counter(), x.value().version()});
  const std::vector<ag::LintIssue> issues = ag::LintGraph(x);
  EXPECT_TRUE(HasRule(issues, "cycle")) << ag::FormatLintIssues(issues);
  x.internal_node()->parents.clear();  // break the ownership cycle
}

// --- BufferPool poisoning ---------------------------------------------------

class PoolPoisonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pool::BufferPool& pool = pool::BufferPool::Get();
    saved_ = pool.poison_enabled();
    pool.set_poison_enabled(true);
    // Drop buffers cached while poisoning may have been off: pooled buffers
    // are assumed to be poisoned at Release time.
    pool.Trim();
  }
  void TearDown() override {
    pool::BufferPool& pool = pool::BufferPool::Get();
    pool.set_poison_enabled(saved_);
    pool.Trim();
  }
  bool saved_ = false;
};

TEST_F(PoolPoisonTest, UninitializedTensorIsFullyPoisoned) {
  Tensor t = Tensor::Uninitialized(Shape{2, 17});
  EXPECT_EQ(pool::CountPoisonWords(t.data(), t.NumElements()), t.NumElements());
}

TEST_F(PoolPoisonTest, RecycledBufferIsPoisonedNotStale) {
  const float* stale_ptr = nullptr;
  {
    Tensor t = Tensor::Full(Shape{64}, 3.25f);
    stale_ptr = t.data();
  }
  Tensor again = Tensor::Uninitialized(Shape{64});
  // Same size class, so the pool hands back the recycled buffer — the old
  // values must have been overwritten with the poison pattern.
  if (again.data() == stale_ptr) {
    EXPECT_EQ(pool::CountPoisonWords(again.data(), 64), 64);
  }
}

TEST_F(PoolPoisonTest, ZeroFillOverridesPoison) {
  Tensor t = Tensor::Zeros(Shape{33});
  EXPECT_EQ(pool::CountPoisonWords(t.data(), t.NumElements()), 0);
  for (int64_t i = 0; i < t.NumElements(); ++i) EXPECT_EQ(t.data()[i], 0.0f);
}

TEST_F(PoolPoisonTest, SeededUnderFilledKernelLeavesDetectablePoison) {
  // Seeded defect: a kernel that allocates Uninitialized output but writes
  // only the first half.
  const int64_t n = 64;
  Tensor out = Tensor::Uninitialized(Shape{n});
  float* dst = out.mutable_data();
  for (int64_t i = 0; i < n / 2; ++i) dst[i] = static_cast<float>(i);
  EXPECT_EQ(pool::CountPoisonWords(out.data(), n / 2), 0);
  EXPECT_EQ(pool::CountPoisonWords(out.data() + n / 2, n / 2), n / 2);
}

TEST_F(PoolPoisonTest, RealKernelsFullyWriteTheirOutputs) {
  // Audit regression for every Tensor::Uninitialized call site: with the pool
  // poisoning acquisitions, any element a kernel forgot to write would still
  // hold the signaling-NaN pattern.
  Rng rng(42);
  Tensor a = Tensor::RandomUniform(Shape{5, 7}, rng, -1.0f, 1.0f);
  Tensor b = Tensor::RandomUniform(Shape{7, 3}, rng, -1.0f, 1.0f);
  Tensor c = Tensor::RandomUniform(Shape{5, 7}, rng, 0.5f, 1.5f);

  const auto expect_clean = [](const Tensor& t, const char* what) {
    EXPECT_EQ(pool::CountPoisonWords(t.data(), t.NumElements()), 0) << what;
  };
  expect_clean(ops::MatMul(a, b), "matmul");
  expect_clean(ops::Add(a, c), "add");
  expect_clean(ops::Mul(a, c), "mul");
  expect_clean(ops::BroadcastTo(Tensor::Ones(Shape{1, 7}), Shape{5, 7}), "broadcast_to");
  expect_clean(ops::Transpose(a, {1, 0}), "transpose");
  expect_clean(ops::Slice(a, {1, 2}, {3, 4}), "slice");
  expect_clean(ops::Concat({a, c}, 0), "concat");
  expect_clean(ops::Softmax(a, -1), "softmax");
  expect_clean(ops::Exp(a), "exp");
  expect_clean(a.Clone(), "clone");
}

// --- No false positives through the full trainer ---------------------------

TEST_F(GraphChecksTest, TrainerStageRunsCleanWithChecksAndPoisonOn) {
  pool::BufferPool& pool = pool::BufferPool::Get();
  const bool saved_poison = pool.poison_enabled();
  pool.set_poison_enabled(true);
  pool.Trim();

  const int64_t nodes = 6;
  data::TrafficConfig traffic;
  traffic.num_nodes = nodes;
  traffic.num_days = 2;
  traffic.steps_per_day = 60;
  traffic.channels = 2;
  data::SyntheticTraffic generator(traffic);
  Tensor series = generator.GenerateSeries();
  data::MinMaxNormalizer normalizer = data::MinMaxNormalizer::Fit(series);
  data::StDataset dataset(normalizer.Transform(series), data::WindowConfig{12, 1, 0});

  core::UrclConfig config;
  config.encoder.num_nodes = nodes;
  config.encoder.in_channels = 2;
  config.encoder.input_steps = 12;
  config.encoder.hidden_channels = 4;
  config.encoder.latent_channels = 8;
  config.encoder.num_layers = 3;
  config.encoder.adaptive_embedding_dim = 3;
  config.batch_size = 4;
  config.max_batches_per_epoch = 4;
  config.replay_sample_count = 2;
  config.rmir_scan_size = 6;
  config.rmir_candidate_pool = 4;
  config.buffer_capacity = 32;
  config.proj_hidden = 8;
  config.decoder_hidden = 16;
  core::UrclTrainer trainer(config, generator.network());

  // The trainer gate lints every recorded loss graph before Backward; the
  // whole RMIR/replay/mixup path must produce no findings.
  const std::vector<float> losses = trainer.TrainStage(dataset, 2);
  ASSERT_EQ(losses.size(), 2u);
  for (const float loss : losses) EXPECT_TRUE(std::isfinite(loss));

  pool.set_poison_enabled(saved_poison);
  pool.Trim();
}

}  // namespace
}  // namespace urcl
