#include <gtest/gtest.h>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "nn/gcn.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/module.h"
#include "nn/tcn.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace nn {
namespace {

namespace ag = ::urcl::autograd;
namespace top = ::urcl::ops;

TEST(InitTest, GlorotRange) {
  Rng rng(1);
  Tensor w = GlorotUniform(Shape{64, 64}, rng, 64, 64);
  const float limit = std::sqrt(6.0f / 128.0f);
  for (int64_t i = 0; i < w.NumElements(); ++i) {
    EXPECT_LE(std::fabs(w.FlatAt(i)), limit);
  }
}

TEST(LinearTest, ShapesAndBias) {
  Rng rng(2);
  Linear layer(3, 5, rng);
  Variable x(Tensor::Ones(Shape{4, 3}), false);
  Variable y = layer.Forward(x);
  EXPECT_EQ(y.shape(), Shape({4, 5}));
  EXPECT_EQ(layer.Parameters().size(), 2u);  // weight + bias
  Linear no_bias(3, 5, rng, /*bias=*/false);
  EXPECT_EQ(no_bias.Parameters().size(), 1u);
}

TEST(LinearTest, BatchedLeadingDims) {
  Rng rng(3);
  Linear layer(3, 2, rng);
  Variable x(Tensor::Ones(Shape{2, 7, 3}), false);
  EXPECT_EQ(layer.Forward(x).shape(), Shape({2, 7, 2}));
}

TEST(LinearTest, WrongInputDies) {
  Rng rng(4);
  Linear layer(3, 2, rng);
  Variable x(Tensor::Ones(Shape{4, 5}), false);
  EXPECT_DEATH(layer.Forward(x), "does not end in 3");
}

TEST(LinearTest, IsTrainable) {
  Rng rng(5);
  Linear layer(2, 1, rng);
  Variable x(Tensor::Ones(Shape{3, 2}), false);
  Variable loss = ag::Mean(ag::Square(layer.Forward(x)));
  loss.Backward();
  for (const Variable& p : layer.Parameters()) {
    EXPECT_EQ(p.grad().shape(), p.value().shape());
  }
}

TEST(ChannelLinearTest, MapsChannels) {
  Rng rng(6);
  ChannelLinear layer(3, 8, rng);
  Variable x(Tensor::Ones(Shape{2, 3, 5, 7}), false);
  EXPECT_EQ(layer.Forward(x).shape(), Shape({2, 8, 5, 7}));
}

TEST(MlpTest, StackAndActivation) {
  Rng rng(7);
  Mlp mlp({4, 8, 8, 2}, rng);
  Variable x(Tensor::Ones(Shape{5, 4}), false);
  EXPECT_EQ(mlp.Forward(x).shape(), Shape({5, 2}));
  EXPECT_EQ(mlp.Parameters().size(), 6u);  // 3 layers x (w, b)
}

TEST(ModuleTest, NamedParametersArePrefixed) {
  Rng rng(8);
  Mlp mlp({2, 3, 1}, rng);
  const auto named = mlp.NamedParameters();
  ASSERT_EQ(named.size(), 4u);
  EXPECT_EQ(named[0].first, "layer0.weight");
  EXPECT_EQ(named[3].first, "layer1.bias");
}

TEST(ModuleTest, NumParametersCounts) {
  Rng rng(9);
  Linear layer(3, 5, rng);
  EXPECT_EQ(layer.NumParameters(), 3 * 5 + 5);
}

TEST(ModuleTest, StateDictRoundTrip) {
  Rng rng(10);
  Mlp a({2, 4, 1}, rng);
  Mlp b({2, 4, 1}, rng);
  b.LoadStateDict(a.StateDict());
  Variable x(Tensor::Ones(Shape{3, 2}), false);
  EXPECT_TRUE(top::AllClose(a.Forward(x).value(), b.Forward(x).value()));
}

TEST(ModuleTest, CopyParametersFrom) {
  Rng rng(11);
  Linear a(2, 2, rng), b(2, 2, rng);
  b.CopyParametersFrom(a);
  Variable x(Tensor::Ones(Shape{1, 2}), false);
  EXPECT_TRUE(top::AllClose(a.Forward(x).value(), b.Forward(x).value()));
}

TEST(ModuleTest, TrainingModePropagates) {
  Rng rng(12);
  Mlp mlp({2, 2}, rng);
  EXPECT_TRUE(mlp.training());
  mlp.SetTraining(false);
  EXPECT_FALSE(mlp.training());
}

TEST(AdaptiveAdjacencyTest, RowStochastic) {
  Rng rng(13);
  AdaptiveAdjacency adaptive(6, 4, rng);
  Variable a = adaptive.Forward();
  EXPECT_EQ(a.shape(), Shape({6, 6}));
  Tensor row_sums = top::Sum(a.value(), {1});
  EXPECT_TRUE(top::AllClose(row_sums, Tensor::Ones(Shape{6}), 1e-5f));
  for (int64_t i = 0; i < a.value().NumElements(); ++i) {
    EXPECT_GE(a.value().FlatAt(i), 0.0f);
  }
}

TEST(DiffusionGcnTest, OutputShapeAndGrad) {
  Rng rng(14);
  DiffusionGcn gcn(3, 5, /*num_static_supports=*/1, /*use_adaptive=*/false,
                   /*max_diffusion_step=*/2, rng);
  Tensor support = Tensor::Eye(4);
  Variable x(Tensor::Ones(Shape{2, 3, 4, 6}), false);
  Variable y = gcn.Forward(x, {support}, Variable());
  EXPECT_EQ(y.shape(), Shape({2, 5, 4, 6}));
  ag::Mean(ag::Square(y)).Backward();
  for (const Variable& p : gcn.Parameters()) {
    EXPECT_GT(top::Abs(p.grad()).NumElements(), 0);
  }
}

TEST(DiffusionGcnTest, IdentitySupportMatchesSelfOnly) {
  // With identity support, P x == x; the layer is a pure channel mix.
  Rng rng(15);
  DiffusionGcn gcn(2, 2, 1, false, 1, rng);
  Variable x(Tensor::RandomNormal(Shape{1, 2, 3, 4}, rng), false);
  Variable y1 = gcn.Forward(x, {Tensor::Eye(3)}, Variable());
  EXPECT_EQ(y1.shape(), Shape({1, 2, 3, 4}));
}

TEST(DiffusionGcnTest, WrongSupportCountDies) {
  Rng rng(16);
  DiffusionGcn gcn(2, 2, 2, false, 1, rng);
  Variable x(Tensor::Ones(Shape{1, 2, 3, 4}), false);
  EXPECT_DEATH(gcn.Forward(x, {Tensor::Eye(3)}, Variable()), "configured for 2 supports");
}

TEST(GraphMatMulTest, MixesNodeAxis) {
  // Adjacency that swaps two nodes.
  Tensor swap = Tensor::FromVector(Shape{2, 2}, {0, 1, 1, 0});
  Tensor x = Tensor::FromVector(Shape{1, 1, 2, 2}, {1, 2, 3, 4});
  Variable result = GraphMatMul(swap, Variable(x, false));
  EXPECT_TRUE(top::AllClose(result.value(),
                            Tensor::FromVector(Shape{1, 1, 2, 2}, {3, 4, 1, 2})));
}

TEST(GatedTcnTest, ShrinksTime) {
  Rng rng(17);
  GatedTcn tcn(3, 6, /*kernel_size=*/2, /*dilation=*/2, rng);
  EXPECT_EQ(tcn.TimeShrink(), 2);
  Variable x(Tensor::Ones(Shape{2, 3, 4, 10}), false);
  EXPECT_EQ(tcn.Forward(x).shape(), Shape({2, 6, 4, 8}));
}

TEST(GatedTcnTest, OutputBounded) {
  // tanh * sigmoid is in (-1, 1).
  Rng rng(18);
  GatedTcn tcn(1, 1, 2, 1, rng);
  Variable x(Tensor::RandomNormal(Shape{1, 1, 2, 8}, rng, 0.0f, 10.0f), false);
  const Tensor y = tcn.Forward(x).value();
  for (int64_t i = 0; i < y.NumElements(); ++i) {
    EXPECT_LT(std::fabs(y.FlatAt(i)), 1.0f);
  }
}

TEST(LossTest, MaeMseValues) {
  Variable pred(Tensor::FromVector(Shape{2}, {1, 3}), false);
  Variable target(Tensor::FromVector(Shape{2}, {0, 1}), false);
  EXPECT_FLOAT_EQ(MaeLoss(pred, target).value().Item(), 1.5f);
  EXPECT_FLOAT_EQ(MseLoss(pred, target).value().Item(), 2.5f);
}

TEST(LossTest, MaeShapeMismatchDies) {
  Variable a(Tensor::Ones(Shape{2}), false);
  Variable b(Tensor::Ones(Shape{3}), false);
  EXPECT_DEATH(MaeLoss(a, b), "shape mismatch");
}

TEST(LossTest, CosineSimilarityIdenticalIsOne) {
  Rng rng(19);
  Tensor v = Tensor::RandomNormal(Shape{3, 8}, rng);
  Variable a(v, false);
  const Tensor sims = CosineSimilarityRows(a, a).value();
  for (int64_t i = 0; i < 3; ++i) EXPECT_NEAR(sims.FlatAt(i), 1.0f, 1e-5);
}

TEST(LossTest, CosineSimilarityOppositeIsMinusOne) {
  Rng rng(20);
  Tensor v = Tensor::RandomNormal(Shape{2, 4}, rng);
  Variable a(v, false);
  Variable b(top::Neg(v), false);
  const Tensor sims = CosineSimilarityRows(a, b).value();
  for (int64_t i = 0; i < 2; ++i) EXPECT_NEAR(sims.FlatAt(i), -1.0f, 1e-5);
}

TEST(LossTest, L2NormalizeUnitNorm) {
  Rng rng(21);
  Variable v(Tensor::RandomNormal(Shape{4, 6}, rng), false);
  const Tensor n = L2Normalize(v).value();
  const Tensor norms = top::Sqrt(top::Sum(top::Square(n), {1}));
  EXPECT_TRUE(top::AllClose(norms, Tensor::Ones(Shape{4}), 1e-4f));
}

TEST(GraphClLossTest, PositivePairsAlignedGivesLowerLoss) {
  Rng rng(22);
  // Aligned: views identical. Misaligned: independent random.
  Tensor base = Tensor::RandomNormal(Shape{6, 8}, rng);
  Variable p_aligned(base, true);
  Variable z_aligned(base, true);
  const float aligned =
      GraphClLoss(p_aligned, p_aligned, z_aligned, z_aligned, 0.5f).value().Item();
  Variable p_rand(Tensor::RandomNormal(Shape{6, 8}, rng), true);
  Variable z_rand(Tensor::RandomNormal(Shape{6, 8}, rng), true);
  const float misaligned = GraphClLoss(p_rand, p_rand, z_rand, z_rand, 0.5f).value().Item();
  // Wait: z_rand equals p_rand's pair? Use independent p/z for misaligned case.
  (void)misaligned;
  Variable p2(Tensor::RandomNormal(Shape{6, 8}, rng), true);
  Variable z2(Tensor::RandomNormal(Shape{6, 8}, rng), true);
  const float independent = GraphClLoss(p2, p2, z2, z2, 0.5f).value().Item();
  EXPECT_LT(aligned, independent);
}

TEST(GraphClLossTest, GradientFlowsToProjectionsOnly) {
  Rng rng(23);
  Variable p1(Tensor::RandomNormal(Shape{4, 6}, rng), true);
  Variable p2(Tensor::RandomNormal(Shape{4, 6}, rng), true);
  Variable z1(Tensor::RandomNormal(Shape{4, 6}, rng), true);
  Variable z2(Tensor::RandomNormal(Shape{4, 6}, rng), true);
  Variable loss = GraphClLoss(p1, p2, z1, z2, 0.5f);
  loss.Backward();
  // Stop-gradient: encoder outputs z receive no gradient through this loss.
  EXPECT_TRUE(top::AllClose(z1.grad(), Tensor::Zeros(Shape{4, 6})));
  EXPECT_TRUE(top::AllClose(z2.grad(), Tensor::Zeros(Shape{4, 6})));
  EXPECT_GT(top::Max(top::Abs(p1.grad())).Item(), 0.0f);
  EXPECT_GT(top::Max(top::Abs(p2.grad())).Item(), 0.0f);
}

TEST(GraphClLossTest, SingleSampleFallsBackToSimSiam) {
  Rng rng(24);
  Tensor v = Tensor::RandomNormal(Shape{1, 5}, rng);
  Variable p(v, true);
  Variable z(v, true);
  // Perfect alignment -> negative cosine similarity = -1.
  EXPECT_NEAR(GraphClLoss(p, p, z, z, 0.5f).value().Item(), -1.0f, 1e-4);
}

TEST(GraphClLossTest, FiniteGradCheck) {
  std::vector<autograd::Variable> inputs;
  Rng rng(25);
  for (int i = 0; i < 4; ++i) {
    // z inputs (2, 3) are stop-gradiented by the loss, so finite differences
    // must not perturb them as trainables.
    inputs.emplace_back(Tensor::RandomUniform(Shape{3, 4}, rng, -1.0f, 1.0f), i < 2);
  }
  const auto result = autograd::CheckGradients(
      [](const std::vector<autograd::Variable>& in) {
        return GraphClLoss(in[0], in[1], in[2], in[3], 0.7f);
      },
      inputs, 1e-2f, 3e-2f);
  EXPECT_TRUE(result.passed) << "max_rel=" << result.max_rel_error;
}

}  // namespace
}  // namespace nn
}  // namespace urcl
