#include "tensor/serialize.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"

namespace urcl {
namespace {

TEST(SerializeTest, RoundTripStream) {
  Rng rng(11);
  Tensor t = Tensor::RandomNormal(Shape{3, 4, 5}, rng);
  std::stringstream buffer;
  SaveTensor(t, buffer);
  Tensor back = LoadTensor(buffer);
  EXPECT_EQ(back.shape(), t.shape());
  EXPECT_TRUE(ops::AllClose(back, t, 0.0f, 0.0f));
}

TEST(SerializeTest, RoundTripScalar) {
  std::stringstream buffer;
  SaveTensor(Tensor::Scalar(3.5f), buffer);
  EXPECT_FLOAT_EQ(LoadTensor(buffer).Item(), 3.5f);
}

TEST(SerializeTest, MultipleTensorsInOneStream) {
  std::stringstream buffer;
  SaveTensor(Tensor::Ones(Shape{2}), buffer);
  SaveTensor(Tensor::Full(Shape{3}, 2.0f), buffer);
  Tensor a = LoadTensor(buffer);
  Tensor b = LoadTensor(buffer);
  EXPECT_EQ(a.shape(), Shape({2}));
  EXPECT_EQ(b.shape(), Shape({3}));
  EXPECT_FLOAT_EQ(b.FlatAt(0), 2.0f);
}

TEST(SerializeTest, BadMagicDies) {
  std::stringstream buffer("this is not a tensor stream at all");
  EXPECT_DEATH(LoadTensor(buffer), "bad tensor magic");
}

TEST(SerializeTest, TruncatedStreamDies) {
  Rng rng(1);
  std::stringstream buffer;
  SaveTensor(Tensor::RandomNormal(Shape{8}, rng), buffer);
  const std::string bytes = buffer.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_DEATH(LoadTensor(truncated), "truncated");
}

TEST(SerializeTest, FileRoundTrip) {
  Rng rng(2);
  std::vector<Tensor> tensors = {Tensor::RandomNormal(Shape{4, 4}, rng),
                                 Tensor::Arange(10), Tensor::Scalar(1.0f)};
  const std::string path = ::testing::TempDir() + "/urcl_serialize_test.bin";
  SaveTensors(tensors, path);
  const std::vector<Tensor> back = LoadTensors(path);
  ASSERT_EQ(back.size(), tensors.size());
  for (size_t i = 0; i < back.size(); ++i) {
    EXPECT_TRUE(ops::AllClose(back[i], tensors[i], 0.0f, 0.0f));
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileDies) {
  EXPECT_DEATH(LoadTensors("/nonexistent/path/tensors.bin"), "cannot open");
}

// --- Corrupt-header hardening: every header field is validated against the
// bytes actually present BEFORE any allocation happens, so a flipped dim or
// count field fails loudly instead of triggering a terabyte allocation.

// Serialized bytes of a small valid tensor, for byte surgery.
std::string ValidTensorBytes() {
  std::stringstream buffer;
  SaveTensor(Tensor::Ones(Shape{2, 3}), buffer);
  return buffer.str();
}

TEST(SerializeTest, ImplausibleRankDies) {
  std::string bytes = ValidTensorBytes();
  const int64_t rank = 17;  // > the 16 allowed
  std::memcpy(bytes.data() + sizeof(uint32_t), &rank, sizeof(int64_t));
  std::stringstream corrupt(bytes);
  EXPECT_DEATH(LoadTensor(corrupt), "implausible tensor rank");
}

TEST(SerializeTest, RankBeyondStreamDies) {
  // Plausible rank (10) but the stream only holds two dim fields: the header
  // bound check must fire, not a short read inside the dim loop.
  std::string bytes = ValidTensorBytes();
  const int64_t rank = 10;
  std::memcpy(bytes.data() + sizeof(uint32_t), &rank, sizeof(int64_t));
  std::stringstream corrupt(bytes);
  EXPECT_DEATH(LoadTensor(corrupt), "needs 80 header bytes");
}

TEST(SerializeTest, OverflowingDimsDie) {
  // dims {2^36, 2^36}: each fits in int64 but the product overflows the
  // element-count guard; must die before allocating.
  std::string bytes = ValidTensorBytes();
  const int64_t huge = int64_t{1} << 36;
  std::memcpy(bytes.data() + sizeof(uint32_t) + sizeof(int64_t), &huge, sizeof(int64_t));
  std::memcpy(bytes.data() + sizeof(uint32_t) + 2 * sizeof(int64_t), &huge, sizeof(int64_t));
  std::stringstream corrupt(bytes);
  EXPECT_DEATH(LoadTensor(corrupt), "tensor header dims overflow");
}

TEST(SerializeTest, NegativeDimDies) {
  std::string bytes = ValidTensorBytes();
  const int64_t negative = -4;
  std::memcpy(bytes.data() + sizeof(uint32_t) + sizeof(int64_t), &negative, sizeof(int64_t));
  std::stringstream corrupt(bytes);
  EXPECT_DEATH(LoadTensor(corrupt), "");
}

TEST(SerializeTest, PayloadShorterThanHeaderClaimsDies) {
  // Inflate a dim so the header claims more payload than the stream holds.
  std::string bytes = ValidTensorBytes();
  const int64_t inflated = 1000;
  std::memcpy(bytes.data() + sizeof(uint32_t) + sizeof(int64_t), &inflated, sizeof(int64_t));
  std::stringstream corrupt(bytes);
  EXPECT_DEATH(LoadTensor(corrupt), "tensor data truncated: header claims");
}

TEST(SerializeTest, BadTensorCountDies) {
  const std::string path = ::testing::TempDir() + "/urcl_badcount.bin";
  SaveTensors({Tensor::Ones(Shape{2})}, path);
  {
    // Rewrite the leading count field to an absurd value.
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    const int64_t absurd = int64_t{1} << 50;
    file.write(reinterpret_cast<const char*>(&absurd), sizeof(int64_t));
  }
  EXPECT_DEATH(LoadTensors(path), "bad tensor count");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace urcl
