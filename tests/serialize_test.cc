#include "tensor/serialize.h"

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"

namespace urcl {
namespace {

TEST(SerializeTest, RoundTripStream) {
  Rng rng(11);
  Tensor t = Tensor::RandomNormal(Shape{3, 4, 5}, rng);
  std::stringstream buffer;
  SaveTensor(t, buffer);
  Tensor back = LoadTensor(buffer);
  EXPECT_EQ(back.shape(), t.shape());
  EXPECT_TRUE(ops::AllClose(back, t, 0.0f, 0.0f));
}

TEST(SerializeTest, RoundTripScalar) {
  std::stringstream buffer;
  SaveTensor(Tensor::Scalar(3.5f), buffer);
  EXPECT_FLOAT_EQ(LoadTensor(buffer).Item(), 3.5f);
}

TEST(SerializeTest, MultipleTensorsInOneStream) {
  std::stringstream buffer;
  SaveTensor(Tensor::Ones(Shape{2}), buffer);
  SaveTensor(Tensor::Full(Shape{3}, 2.0f), buffer);
  Tensor a = LoadTensor(buffer);
  Tensor b = LoadTensor(buffer);
  EXPECT_EQ(a.shape(), Shape({2}));
  EXPECT_EQ(b.shape(), Shape({3}));
  EXPECT_FLOAT_EQ(b.FlatAt(0), 2.0f);
}

TEST(SerializeTest, BadMagicDies) {
  std::stringstream buffer("this is not a tensor stream at all");
  EXPECT_DEATH(LoadTensor(buffer), "bad tensor magic");
}

TEST(SerializeTest, TruncatedStreamDies) {
  Rng rng(1);
  std::stringstream buffer;
  SaveTensor(Tensor::RandomNormal(Shape{8}, rng), buffer);
  const std::string bytes = buffer.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_DEATH(LoadTensor(truncated), "truncated");
}

TEST(SerializeTest, FileRoundTrip) {
  Rng rng(2);
  std::vector<Tensor> tensors = {Tensor::RandomNormal(Shape{4, 4}, rng),
                                 Tensor::Arange(10), Tensor::Scalar(1.0f)};
  const std::string path = ::testing::TempDir() + "/urcl_serialize_test.bin";
  SaveTensors(tensors, path);
  const std::vector<Tensor> back = LoadTensors(path);
  ASSERT_EQ(back.size(), tensors.size());
  for (size_t i = 0; i < back.size(); ++i) {
    EXPECT_TRUE(ops::AllClose(back[i], tensors[i], 0.0f, 0.0f));
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileDies) {
  EXPECT_DEATH(LoadTensors("/nonexistent/path/tensors.bin"), "cannot open");
}

}  // namespace
}  // namespace urcl
