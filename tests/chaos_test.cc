// Chaos harness (ctest label `chaos`, DESIGN.md §11): the trainer, the
// serving path and concurrent clients run under serving-fault injection —
// bit-flipped snapshot bytes, swallowed publishes, dropped/duplicated ticks
// and slow inference — and the suite asserts the serving failure model's
// invariants:
//
//   - the process never crashes;
//   - a non-finite value never leaves Predict (ok responses are all-finite);
//   - every failure surfaces as a typed Status (never kUnknown);
//   - after the storm the service recovers HEALTHY on a last-good version.
//
// The storm phase asserts only those universal invariants (an external
// URCL_FAULT spec may layer extra faults on top — scripts/check.sh does);
// the directed phases pin each fault point's counters deterministically.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "checkpoint/container.h"
#include "common/fault_injector.h"
#include "common/stopwatch.h"
#include "core/urcl.h"
#include "data/synthetic.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "serve/service.h"

namespace urcl {
namespace serve {
namespace {

core::UrclConfig TinyConfig(int64_t nodes) {
  core::UrclConfig config;
  config.encoder.num_nodes = nodes;
  config.encoder.in_channels = 2;
  config.encoder.input_steps = 12;
  config.encoder.hidden_channels = 4;
  config.encoder.latent_channels = 8;
  config.encoder.num_layers = 2;
  config.encoder.adaptive_embedding_dim = 3;
  config.decoder_hidden = 16;
  config.proj_hidden = 8;
  config.batch_size = 2;
  config.max_batches_per_epoch = 4;
  config.replay_sample_count = 2;
  config.rmir_scan_size = 4;
  config.rmir_candidate_pool = 4;
  config.buffer_capacity = 16;
  return config;
}

bool IsTypedCode(StatusCode code) {
  switch (code) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kUnavailable:
    case StatusCode::kOverloaded:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kDataLoss:
      return true;
    case StatusCode::kOk:
    case StatusCode::kUnknown:
      return false;
  }
  return false;
}

class ChaosTest : public ::testing::Test {
 protected:
  static constexpr int64_t kNodes = 5;

  void SetUp() override {
    fault::FaultInjector::Instance().Reset();
    data::TrafficConfig traffic;
    traffic.num_nodes = kNodes;
    traffic.num_days = 2;
    traffic.steps_per_day = 60;
    traffic.channels = 2;
    generator_ = std::make_unique<data::SyntheticTraffic>(traffic);
    Tensor series = generator_->GenerateSeries();
    normalizer_ = data::MinMaxNormalizer::Fit(series);
    dataset_ = std::make_unique<data::StDataset>(normalizer_.Transform(series),
                                                 data::WindowConfig{12, 1, 0});
  }

  void TearDown() override { fault::FaultInjector::Instance().Reset(); }

  // One clean (fault-free) trainer publication for directed phases.
  checkpoint::Container CleanContainer(const core::UrclConfig& config) {
    fault::FaultInjector::Instance().Reset();
    core::UrclTrainer trainer(config, generator_->network());
    std::vector<checkpoint::Container> published;
    trainer.SetSnapshotSink([&](const checkpoint::Container& c) { published.push_back(c); });
    trainer.TrainStage(*dataset_, 1);
    EXPECT_GE(published.size(), 1u);
    return published.back();
  }

  std::unique_ptr<data::SyntheticTraffic> generator_;
  data::MinMaxNormalizer normalizer_;
  std::unique_ptr<data::StDataset> dataset_;
};

TEST_F(ChaosTest, ServingFaultStormUpholdsInvariantsAndRecoversHealthy) {
  // Metrics on, so the failure-model counters are exercised end to end.
  obs::ObsConfig obs_config;
  obs_config.metrics = true;
  obs::Configure(obs_config);

  ServiceConfig config;
  config.model = TinyConfig(kNodes);
  config.health.error_window = 32;
  config.health.rollback_errors = 3;
  ForecastService service(config, generator_->network(), normalizer_);

  auto& injector = fault::FaultInjector::Instance();
  std::vector<std::string> errors = injector.Configure(
      "serve_bitflip=0.3;drop_publish=0.2;tick_drop=0.2;tick_dup=0.2;slow=0.05;"
      "slow_ms=1;seed=7");
  ASSERT_TRUE(errors.empty()) << errors.front();
  // Layer the externally supplied spec (if any) on top: scripts/check.sh runs
  // this suite with URCL_FAULT set to a serving-fault storm.
  injector.LoadFromEnv();

  // The tee keeps every container the trainer managed to publish so the
  // recovery phase can re-offer a known-good snapshot after the storm.
  std::mutex published_mu;
  std::vector<checkpoint::Container> published;
  auto service_sink = service.SnapshotSink();
  auto tee = [&](const checkpoint::Container& container) {
    {
      std::lock_guard<std::mutex> lock(published_mu);
      published.push_back(container);
    }
    service_sink(container);
  };

  std::atomic<bool> done{false};
  std::atomic<int64_t> nonfinite_leaks{0};  // ok responses with non-finite data
  std::atomic<int64_t> untyped_failures{0};
  std::atomic<int64_t> ok_responses{0};

  std::thread trainer_thread([&] {
    core::UrclTrainer trainer(config.model, generator_->network());
    trainer.SetSnapshotSink(tee);
    for (int64_t stage = 0; stage < 3; ++stage) {
      trainer.BeginStage(stage);
      trainer.TrainStage(*dataset_, 1);
    }
  });

  std::thread ingest_thread([&] {
    Rng rng(21);
    while (!done.load(std::memory_order_relaxed)) {
      service.IngestTick(Tensor::RandomUniform(Shape{kNodes, 2}, rng, 0.0f, 50.0f));
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(100 + c);
      while (!done.load(std::memory_order_relaxed)) {
        core::PredictRequest request;
        request.inputs =
            Tensor::RandomUniform(Shape{1, 12, kNodes, 2}, rng, 0.0f, 1.0f);
        request.horizon = 0;
        // A slice of traffic carries a tight-but-plausible deadline.
        if (rng.UniformInt(0, 3) == 0) request.deadline_ns = 500 * 1000;
        core::PredictResponse response;
        const Status status = c % 2 == 0 ? service.Predict(request, &response)
                                         : service.Forecast(0, &response);
        if (status.ok()) {
          ok_responses.fetch_add(1, std::memory_order_relaxed);
          if (!response.predictions.AllFinite()) {
            nonfinite_leaks.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (!IsTypedCode(status.code())) {
          untyped_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  trainer_thread.join();
  // Let the clients chew on the final version for a moment, then stop.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  done.store(true, std::memory_order_relaxed);
  ingest_thread.join();
  for (std::thread& client : clients) client.join();

  // The universal invariants — these hold under ANY fault spec.
  EXPECT_EQ(nonfinite_leaks.load(), 0) << "a non-finite value left Predict";
  EXPECT_EQ(untyped_failures.load(), 0) << "an untyped (kUnknown) Status escaped";

  // Recovery: faults off, re-offer the newest good container. Admission must
  // accept it and the service must end HEALTHY on a live version.
  injector.Reset();
  {
    std::lock_guard<std::mutex> lock(published_mu);
    ASSERT_FALSE(published.empty()) << "trainer never published (all dropped?)";
    service_sink(published.back());
  }
  ASSERT_NE(service.hub().Current(), nullptr);
  EXPECT_EQ(service.health_state(), HealthState::kHealthy);

  core::PredictRequest request;
  Rng rng(55);
  request.inputs = Tensor::RandomUniform(Shape{1, 12, kNodes, 2}, rng, 0.0f, 1.0f);
  core::PredictResponse response;
  const Status final_status = service.Predict(request, &response);
  ASSERT_TRUE(final_status.ok()) << final_status.ToString();
  EXPECT_TRUE(response.predictions.AllFinite());
  EXPECT_FALSE(response.degraded);
  EXPECT_GT(ok_responses.load() + service.served_queries(), 0);

  // The failure-model counters surfaced through the metrics registry.
  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Get().Snapshot();
  EXPECT_NE(snapshot.gauges.find("urcl.serve.health_state"), snapshot.gauges.end());
  EXPECT_NE(snapshot.counters.find("urcl.serve.queries"), snapshot.counters.end());
  obs::Configure(obs::ObsConfig{});  // metrics back off
}

TEST_F(ChaosTest, DirectedBitflipIsQuarantinedByTheCrcGate) {
  ServiceConfig config;
  config.model = TinyConfig(kNodes);
  ForecastService service(config, generator_->network(), normalizer_);
  const checkpoint::Container good = CleanContainer(config.model);
  auto sink = service.SnapshotSink();

  auto& injector = fault::FaultInjector::Instance();
  ASSERT_TRUE(injector.Configure("serve_bitflip=1.0;seed=3").empty());
  sink(good);
  EXPECT_EQ(injector.counters().bitflipped_snapshots, 1);
  EXPECT_EQ(service.quarantined_snapshots(), 1);
  EXPECT_EQ(service.hub().Current(), nullptr) << "a corrupt snapshot went live";

  // Faults off: the same container is admitted unchanged.
  injector.Reset();
  sink(good);
  EXPECT_EQ(service.quarantined_snapshots(), 1);
  ASSERT_NE(service.hub().Current(), nullptr);
  EXPECT_EQ(service.health_state(), HealthState::kHealthy);
}

TEST_F(ChaosTest, DirectedDropPublishSwallowsTheSnapshot) {
  auto& injector = fault::FaultInjector::Instance();
  ASSERT_TRUE(injector.Configure("drop_publish=1.0").empty());

  core::UrclConfig config = TinyConfig(kNodes);
  core::UrclTrainer trainer(config, generator_->network());
  std::vector<checkpoint::Container> published;
  trainer.SetSnapshotSink([&](const checkpoint::Container& c) { published.push_back(c); });
  trainer.TrainStage(*dataset_, 1);

  EXPECT_TRUE(published.empty()) << "drop_publish=1.0 must swallow every publish";
  EXPECT_GE(injector.counters().dropped_publishes, 1);
}

TEST_F(ChaosTest, DirectedTickFaultsDropAndDuplicate) {
  ServiceConfig config;
  config.model = TinyConfig(kNodes);
  ForecastService service(config, generator_->network(), normalizer_);
  Rng rng(17);
  auto& injector = fault::FaultInjector::Instance();

  ASSERT_TRUE(injector.Configure("tick_drop=1.0").empty());
  for (int t = 0; t < 5; ++t) {
    service.IngestTick(Tensor::RandomUniform(Shape{kNodes, 2}, rng, 0.0f, 50.0f));
  }
  EXPECT_EQ(service.ticks_ingested(), 0);
  EXPECT_EQ(injector.counters().dropped_ticks, 5);

  injector.Reset();
  ASSERT_TRUE(injector.Configure("tick_dup=1.0").empty());
  for (int t = 0; t < 3; ++t) {
    service.IngestTick(Tensor::RandomUniform(Shape{kNodes, 2}, rng, 0.0f, 50.0f));
  }
  EXPECT_EQ(service.ticks_ingested(), 6);
  EXPECT_EQ(injector.counters().duplicated_ticks, 3);
}

TEST_F(ChaosTest, DirectedSlowFaultStallsQueries) {
  ServiceConfig config;
  config.model = TinyConfig(kNodes);
  ForecastService service(config, generator_->network(), normalizer_);
  service.SnapshotSink()(CleanContainer(config.model));
  ASSERT_NE(service.hub().Current(), nullptr);

  auto& injector = fault::FaultInjector::Instance();
  ASSERT_TRUE(injector.Configure("slow=1.0;slow_ms=2").empty());
  core::PredictRequest request;
  Rng rng(9);
  request.inputs = Tensor::RandomUniform(Shape{1, 12, kNodes, 2}, rng, 0.0f, 1.0f);
  core::PredictResponse response;
  const Stopwatch stopwatch;
  ASSERT_TRUE(service.Predict(request, &response).ok());
  EXPECT_GE(stopwatch.ElapsedNs(), 2LL * 1000 * 1000);
  EXPECT_GE(injector.counters().slowed_queries, 1);
}

}  // namespace
}  // namespace serve
}  // namespace urcl
