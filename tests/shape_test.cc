#include "tensor/shape.h"

#include <gtest/gtest.h>

namespace urcl {
namespace {

TEST(ShapeTest, BasicProperties) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.NumElements(), 24);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(2), 4);
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.dim(-3), 2);
}

TEST(ShapeTest, ScalarShape) {
  Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.NumElements(), 1);
}

TEST(ShapeTest, Strides) {
  Shape s{2, 3, 4};
  const std::vector<int64_t> strides = s.Strides();
  ASSERT_EQ(strides.size(), 3u);
  EXPECT_EQ(strides[0], 12);
  EXPECT_EQ(strides[1], 4);
  EXPECT_EQ(strides[2], 1);
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(ShapeTest, ToString) { EXPECT_EQ(Shape({2, 3}).ToString(), "[2, 3]"); }

TEST(ShapeTest, BroadcastSameShape) {
  EXPECT_EQ(BroadcastShapes(Shape{2, 3}, Shape{2, 3}), Shape({2, 3}));
}

TEST(ShapeTest, BroadcastScalar) {
  EXPECT_EQ(BroadcastShapes(Shape{2, 3}, Shape{}), Shape({2, 3}));
  EXPECT_EQ(BroadcastShapes(Shape{}, Shape{2, 3}), Shape({2, 3}));
}

TEST(ShapeTest, BroadcastOnes) {
  EXPECT_EQ(BroadcastShapes(Shape{4, 1, 3}, Shape{1, 5, 3}), Shape({4, 5, 3}));
  EXPECT_EQ(BroadcastShapes(Shape{3}, Shape{2, 1}), Shape({2, 3}));
}

TEST(ShapeTest, BroadcastIncompatibleDies) {
  EXPECT_DEATH(BroadcastShapes(Shape{2, 3}, Shape{2, 4}), "cannot broadcast");
}

TEST(ShapeTest, IsBroadcastableTo) {
  EXPECT_TRUE(IsBroadcastableTo(Shape{1, 3}, Shape{5, 3}));
  EXPECT_TRUE(IsBroadcastableTo(Shape{}, Shape{5, 3}));
  EXPECT_TRUE(IsBroadcastableTo(Shape{3}, Shape{5, 3}));
  EXPECT_FALSE(IsBroadcastableTo(Shape{5, 3}, Shape{3}));
  EXPECT_FALSE(IsBroadcastableTo(Shape{2, 3}, Shape{5, 3}));
}

TEST(ShapeTest, CanonicalAxisOutOfRangeDies) {
  Shape s{2, 3};
  EXPECT_DEATH(s.CanonicalAxis(2), "axis out of range");
  EXPECT_DEATH(s.CanonicalAxis(-3), "axis out of range");
}

}  // namespace
}  // namespace urcl
