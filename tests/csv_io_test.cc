#include "data/csv_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace data {
namespace {

TEST(CsvIoTest, RoundTripSmall) {
  Rng rng(1);
  const Tensor series = Tensor::RandomUniform(Shape{5, 3, 2}, rng, 0.0f, 10.0f);
  const std::string path = ::testing::TempDir() + "/urcl_series.csv";
  ExportSeriesCsv(series, path);
  const Tensor back = ImportSeriesCsv(path);
  EXPECT_EQ(back.shape(), series.shape());
  EXPECT_TRUE(ops::AllClose(back, series, 1e-3f, 1e-4f));
  std::remove(path.c_str());
}

TEST(CsvIoTest, RoundTripSyntheticTraffic) {
  TrafficConfig config;
  config.num_nodes = 4;
  config.num_days = 1;
  config.steps_per_day = 24;
  config.channels = 3;
  SyntheticTraffic generator(config);
  const Tensor series = generator.GenerateSeries();
  const std::string path = ::testing::TempDir() + "/urcl_traffic.csv";
  ExportSeriesCsv(series, path);
  const Tensor back = ImportSeriesCsv(path);
  EXPECT_TRUE(ops::AllClose(back, series, 2e-2f, 1e-3f));
  std::remove(path.c_str());
}

TEST(CsvIoTest, HandCraftedCsvImports) {
  const std::string path = ::testing::TempDir() + "/urcl_hand.csv";
  {
    std::ofstream out(path);
    out << "t,node,channel0\n";
    out << "0,0,1.5\n0,1,2.5\n1,0,3.5\n1,1,4.5\n";
  }
  const Tensor series = ImportSeriesCsv(path);
  EXPECT_EQ(series.shape(), Shape({2, 2, 1}));
  EXPECT_FLOAT_EQ(series.At({0, 1, 0}), 2.5f);
  EXPECT_FLOAT_EQ(series.At({1, 0, 0}), 3.5f);
  std::remove(path.c_str());
}

TEST(CsvIoTest, BadHeaderDies) {
  const std::string path = ::testing::TempDir() + "/urcl_bad.csv";
  {
    std::ofstream out(path);
    out << "time,sensor,value\n0,0,1\n";
  }
  EXPECT_DEATH(ImportSeriesCsv(path), "unexpected CSV header");
  std::remove(path.c_str());
}

TEST(CsvIoTest, MissingRowsDie) {
  const std::string path = ::testing::TempDir() + "/urcl_missing.csv";
  {
    std::ofstream out(path);
    out << "t,node,channel0\n0,0,1\n0,1,2\n1,0,3\n";  // missing (1,1)
  }
  EXPECT_DEATH(ImportSeriesCsv(path), "missing rows");
  std::remove(path.c_str());
}

TEST(CsvIoTest, OutOfOrderRowsDie) {
  const std::string path = ::testing::TempDir() + "/urcl_order.csv";
  {
    std::ofstream out(path);
    out << "t,node,channel0\n0,1,2\n0,0,1\n";
  }
  EXPECT_DEATH(ImportSeriesCsv(path), "grouped by t");
  std::remove(path.c_str());
}

TEST(CsvIoTest, MissingFileDies) {
  EXPECT_DEATH(ImportSeriesCsv("/nonexistent/series.csv"), "cannot open");
}

// --- Status-returning import: errors must carry the 1-based line number so a
// bad row in a large file is actually findable.

std::string WriteCsv(const std::string& name, const std::string& body) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << body;
  return path;
}

TEST(CsvIoTryImportTest, TruncatedRowReportsLineNumber) {
  const std::string path =
      WriteCsv("urcl_trunc.csv", "t,node,channel0,channel1\n0,0,1.0,2.0\n0,1,3.0\n");
  Tensor out;
  const Status status = TryImportSeriesCsv(path, &out);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("truncated CSV row"), std::string::npos) << status.message();
  EXPECT_NE(status.message().find(path + ":3"), std::string::npos) << status.message();
  std::remove(path.c_str());
}

TEST(CsvIoTryImportTest, NonNumericCellReportsLineAndChannel) {
  const std::string path =
      WriteCsv("urcl_nonnum.csv", "t,node,channel0\n0,0,1.0\n0,1,oops\n");
  Tensor out;
  const Status status = TryImportSeriesCsv(path, &out);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("non-numeric"), std::string::npos) << status.message();
  EXPECT_NE(status.message().find("'oops'"), std::string::npos) << status.message();
  EXPECT_NE(status.message().find(path + ":3"), std::string::npos) << status.message();
  std::remove(path.c_str());
}

TEST(CsvIoTryImportTest, NonNumericIndexCellIsRejected) {
  const std::string path =
      WriteCsv("urcl_badidx.csv", "t,node,channel0\nzero,0,1.0\n");
  Tensor out;
  const Status status = TryImportSeriesCsv(path, &out);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find(path + ":2"), std::string::npos) << status.message();
  std::remove(path.c_str());
}

TEST(CsvIoTryImportTest, EmptyFileIsRejectedNotCrashed) {
  const std::string path = WriteCsv("urcl_empty.csv", "");
  Tensor out;
  EXPECT_FALSE(TryImportSeriesCsv(path, &out).ok());
  std::remove(path.c_str());
}

TEST(CsvIoTryImportTest, HeaderOnlyIsRejected) {
  const std::string path = WriteCsv("urcl_headonly.csv", "t,node,channel0\n");
  Tensor out;
  const Status status = TryImportSeriesCsv(path, &out);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("no data rows"), std::string::npos) << status.message();
  std::remove(path.c_str());
}

TEST(CsvIoTryImportTest, OutputUntouchedOnError) {
  const std::string path = WriteCsv("urcl_untouched.csv", "t,node,channel0\n0,0,bad\n");
  Tensor out = Tensor::Ones(Shape{2, 2, 2});
  ASSERT_FALSE(TryImportSeriesCsv(path, &out).ok());
  EXPECT_EQ(out.shape(), Shape({2, 2, 2}));  // error path must not clobber out
  EXPECT_FLOAT_EQ(out.At({0, 0, 0}), 1.0f);
  std::remove(path.c_str());
}

TEST(CsvIoTryImportTest, ValidFileSucceeds) {
  const std::string path =
      WriteCsv("urcl_ok.csv", "t,node,channel0\n0,0,1.5\n0,1,2.5\n1,0,3.5\n1,1,4.5\n");
  Tensor out;
  const Status status = TryImportSeriesCsv(path, &out);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(out.shape(), Shape({2, 2, 1}));
  EXPECT_FLOAT_EQ(out.At({1, 1, 0}), 4.5f);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace data
}  // namespace urcl
