// urcl_blackbox forensics tool: the JSONL parser against real
// FlightRecorder dumps (round-trip) and hostile input, and the report
// renderer's filtering/summary behavior.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "tools/obs/blackbox_report.h"

namespace urcl {
namespace {

TEST(BlackboxTool, ParsesRealRecorderDumpRoundTrip) {
  auto& recorder = obs::FlightRecorder::Get();
  recorder.Clear();
  const uint64_t trace_id = obs::MintTraceId();
  {
    obs::TraceFlow flow(trace_id);
    obs::RecordFlightEvent(obs::FlightEventType::kNonFiniteQuarantine, 3, 0,
                           "nonfinite forecast");
  }
  obs::RecordFlightEvent(obs::FlightEventType::kRollback, 3, 2, "error spike");
  obs::RecordFlightEvent(obs::FlightEventType::kHotSwap, 2, 3,
                         "detail with \"quotes\" and\nnewline");

  int64_t malformed = -1;
  const std::vector<tools::BlackboxEvent> events =
      tools::ParseBlackboxJsonl(recorder.ToJsonl(), &malformed);
  recorder.Clear();
  EXPECT_EQ(malformed, 0);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, "nonfinite_quarantine");
  EXPECT_EQ(events[0].trace_id, trace_id);
  EXPECT_EQ(events[0].a, 3);
  EXPECT_EQ(events[1].type, "rollback");
  EXPECT_EQ(events[1].trace_id, 0u);
  EXPECT_EQ(events[1].detail, "error spike");
  // JsonEscape escapes survive the parse intact.
  EXPECT_EQ(events[2].detail, "detail with \"quotes\" and\nnewline");
}

TEST(BlackboxTool, SkipsMalformedLinesAndSortsBySeq) {
  const std::string text =
      "{\"seq\":5,\"ts_ns\":50,\"type\":\"rollback\",\"a\":1,\"b\":0}\n"
      "not json at all\n"
      "{\"seq\":2,\"ts_ns\":20,\"type\":\"hot_swap\",\"a\":1,\"b\":0}\n"
      "{\"truncated\n";
  int64_t malformed = 0;
  const std::vector<tools::BlackboxEvent> events =
      tools::ParseBlackboxJsonl(text, &malformed);
  EXPECT_EQ(malformed, 2);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 2u);  // sorted by seq, not file order
  EXPECT_EQ(events[1].seq, 5u);
}

TEST(BlackboxTool, ReportFiltersByTraceTypeAndTail) {
  std::vector<tools::BlackboxEvent> events;
  for (int i = 0; i < 6; ++i) {
    tools::BlackboxEvent event;
    event.seq = static_cast<uint64_t>(i);
    event.ts_ns = i * 10;
    event.type = i % 2 == 0 ? "plan_compile" : "deadline_shed";
    event.trace_id = i < 3 ? 0xabcu : 0xdefu;
    events.push_back(event);
  }

  tools::BlackboxReportOptions by_trace;
  by_trace.trace_id = 0xabc;
  std::string report = tools::RenderBlackboxReport(events, by_trace);
  EXPECT_EQ(std::count(report.begin(), report.end(), '\n'), 3);
  EXPECT_NE(report.find("trace=0xabc"), std::string::npos);
  EXPECT_EQ(report.find("trace=0xdef"), std::string::npos);

  tools::BlackboxReportOptions by_type;
  by_type.type = "deadline_shed";
  by_type.tail = 2;
  by_type.summary = true;
  report = tools::RenderBlackboxReport(events, by_type);
  EXPECT_NE(report.find("deadline_shed: 2"), std::string::npos) << report;
  EXPECT_NE(report.find("2 shown / 3 matched / 6 in dump"), std::string::npos) << report;
  EXPECT_EQ(report.find("plan_compile"), std::string::npos);
}

TEST(BlackboxTool, SummaryFlagsIncidents) {
  std::vector<tools::BlackboxEvent> events;
  tools::BlackboxEvent rollback;
  rollback.seq = 1;
  rollback.type = "rollback";
  events.push_back(rollback);
  tools::BlackboxEvent lame_duck;
  lame_duck.seq = 2;
  lame_duck.type = "lame_duck";
  events.push_back(lame_duck);

  tools::BlackboxReportOptions options;
  options.summary = true;
  const std::string report = tools::RenderBlackboxReport(events, options);
  EXPECT_NE(report.find("INCIDENT: rollback x1"), std::string::npos) << report;
  EXPECT_NE(report.find("INCIDENT: lame_duck x1"), std::string::npos) << report;
}

}  // namespace
}  // namespace urcl
