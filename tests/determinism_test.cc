// Determinism and multi-step prediction tests: same seed must give
// bit-identical training trajectories, and every component must support
// output horizons N_out > 1 (the SSTP problem statement allows N future
// observations, Eq. 1).
#include <gtest/gtest.h>

#include <cstring>

#include "baselines/zoo.h"
#include "core/strategies.h"
#include "core/urcl.h"
#include "data/presets.h"
#include "data/synthetic.h"
#include "runtime/parallel.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace {

core::UrclConfig TinyConfig(int64_t nodes, int64_t output_steps = 1) {
  core::UrclConfig config;
  config.encoder.num_nodes = nodes;
  config.encoder.in_channels = 2;
  config.encoder.input_steps = 12;
  config.encoder.hidden_channels = 4;
  config.encoder.latent_channels = 8;
  config.encoder.num_layers = 3;
  config.encoder.adaptive_embedding_dim = 3;
  config.decoder_hidden = 16;
  config.proj_hidden = 8;
  config.output_steps = output_steps;
  config.batch_size = 4;
  config.max_batches_per_epoch = 5;
  config.replay_sample_count = 2;
  config.rmir_scan_size = 4;
  config.rmir_candidate_pool = 3;
  return config;
}

struct Pipeline {
  std::unique_ptr<data::SyntheticTraffic> generator;
  data::MinMaxNormalizer normalizer;
  std::unique_ptr<data::StDataset> dataset;
};

Pipeline MakePipeline(int64_t nodes, int64_t output_steps, uint64_t seed) {
  Pipeline p;
  data::TrafficConfig config;
  config.num_nodes = nodes;
  config.num_days = 3;
  config.steps_per_day = 64;
  config.seed = seed;
  p.generator = std::make_unique<data::SyntheticTraffic>(config);
  Tensor series = p.generator->GenerateSeries();
  p.normalizer = data::MinMaxNormalizer::Fit(series);
  p.dataset = std::make_unique<data::StDataset>(
      p.normalizer.Transform(series), data::WindowConfig{12, output_steps, 0});
  return p;
}

TEST(DeterminismTest, SameSeedSameLossHistory) {
  Pipeline p = MakePipeline(6, 1, 3);
  core::UrclTrainer a(TinyConfig(6), p.generator->network());
  core::UrclTrainer b(TinyConfig(6), p.generator->network());
  a.TrainStage(*p.dataset, 2);
  b.TrainStage(*p.dataset, 2);
  ASSERT_EQ(a.loss_history().size(), b.loss_history().size());
  for (size_t i = 0; i < a.loss_history().size(); ++i) {
    EXPECT_FLOAT_EQ(a.loss_history()[i], b.loss_history()[i]) << "step " << i;
  }
  // And identical predictions.
  const auto [x, y] = p.dataset->MakeBatch({0, 1});
  EXPECT_TRUE(ops::AllClose(a.Predict(x), b.Predict(x), 0.0f, 0.0f));
}

TEST(DeterminismTest, ThreadCountInvariantTraining) {
  // A full training stage must be bitwise reproducible at any thread count:
  // identical loss history and identical predictions at 1 vs 4 threads.
  // Oversubscription keeps the 4-thread run genuinely multi-threaded even on
  // a single-core machine (the hardware cap would serialize it).
  const int saved_threads = runtime::GetNumThreads();
  const bool saved_oversubscribe = runtime::OversubscribeEnabled();
  runtime::SetOversubscribe(true);
  Pipeline p = MakePipeline(6, 1, 3);

  runtime::SetNumThreads(1);
  core::UrclTrainer serial(TinyConfig(6), p.generator->network());
  serial.TrainStage(*p.dataset, 2);

  runtime::SetNumThreads(4);
  core::UrclTrainer threaded(TinyConfig(6), p.generator->network());
  threaded.TrainStage(*p.dataset, 2);

  ASSERT_EQ(serial.loss_history().size(), threaded.loss_history().size());
  for (size_t i = 0; i < serial.loss_history().size(); ++i) {
    const float a = serial.loss_history()[i];
    const float b = threaded.loss_history()[i];
    EXPECT_EQ(std::memcmp(&a, &b, sizeof(float)), 0) << "step " << i;
  }
  const auto [x, y] = p.dataset->MakeBatch({0, 1});
  const Tensor pred_serial = serial.Predict(x);
  const Tensor pred_threaded = threaded.Predict(x);
  ASSERT_EQ(pred_serial.shape(), pred_threaded.shape());
  EXPECT_EQ(std::memcmp(pred_serial.data(), pred_threaded.data(),
                        static_cast<size_t>(pred_serial.NumElements()) * sizeof(float)),
            0);
  runtime::SetOversubscribe(saved_oversubscribe);
  runtime::SetNumThreads(saved_threads);
}

TEST(DeterminismTest, DifferentSeedDiverges) {
  Pipeline p = MakePipeline(6, 1, 3);
  core::UrclConfig other = TinyConfig(6);
  other.seed = 42;
  core::UrclTrainer a(TinyConfig(6), p.generator->network());
  core::UrclTrainer b(other, p.generator->network());
  a.TrainStage(*p.dataset, 1);
  b.TrainStage(*p.dataset, 1);
  const auto [x, y] = p.dataset->MakeBatch({0, 1});
  EXPECT_FALSE(ops::AllClose(a.Predict(x), b.Predict(x)));
}

TEST(MultiStepTest, UrclPredictsThreeStepHorizon) {
  Pipeline p = MakePipeline(6, 3, 4);
  core::UrclTrainer trainer(TinyConfig(6, 3), p.generator->network());
  const std::vector<float> losses = trainer.TrainStage(*p.dataset, 2);
  EXPECT_TRUE(std::isfinite(losses.back()));
  const auto [x, y] = p.dataset->MakeBatch({0, 5});
  const Tensor pred = trainer.Predict(x);
  EXPECT_EQ(pred.shape(), Shape({2, 3, 6, 1}));
  EXPECT_TRUE(ops::AllFinite(pred));
}

TEST(MultiStepTest, DeepBaselinesHandleMultiStep) {
  Pipeline p = MakePipeline(6, 2, 5);
  baselines::ZooOptions options;
  options.encoder.num_nodes = 6;
  options.encoder.in_channels = 2;
  options.encoder.input_steps = 12;
  options.encoder.hidden_channels = 4;
  options.encoder.latent_channels = 8;
  options.encoder.num_layers = 3;
  options.encoder.adaptive_embedding_dim = 3;
  options.deep.decoder_hidden = 16;
  options.deep.output_steps = 2;
  options.deep.max_batches_per_epoch = 2;
  for (const char* name : {"STGCN", "AGCRN", "ARIMA", "HistoricalAverage"}) {
    auto model = baselines::MakeBaseline(name, options, p.generator->network());
    model->TrainStage(*p.dataset, 1);
    const auto [x, y] = p.dataset->MakeBatch({0, 1});
    const Tensor pred = model->Predict(x);
    EXPECT_EQ(pred.shape(), y.shape()) << name;
    EXPECT_TRUE(ops::AllFinite(pred)) << name;
  }
}

TEST(MultiStepTest, LaterHorizonsHarder) {
  // MAE of the 3rd forecast step should be >= MAE of the 1st (error grows
  // with horizon) for a trained model.
  Pipeline p = MakePipeline(6, 3, 6);
  core::UrclConfig config = TinyConfig(6, 3);
  config.max_batches_per_epoch = 12;
  core::UrclTrainer trainer(config, p.generator->network());
  trainer.TrainStage(*p.dataset, 6);
  data::MetricsAccumulator step1, step3;
  for (int64_t i = 0; i + 16 < p.dataset->NumSamples(); i += 16) {
    const auto [x, y] = p.dataset->MakeBatch({i, i + 8});
    const Tensor pred = trainer.Predict(x);
    step1.Add(ops::Slice(pred, {0, 0, 0, 0}, {2, 1, 6, 1}),
              ops::Slice(y, {0, 0, 0, 0}, {2, 1, 6, 1}));
    step3.Add(ops::Slice(pred, {0, 2, 0, 0}, {2, 1, 6, 1}),
              ops::Slice(y, {0, 2, 0, 0}, {2, 1, 6, 1}));
  }
  EXPECT_GE(step3.Result().mae, step1.Result().mae * 0.9);
}

}  // namespace
}  // namespace urcl
