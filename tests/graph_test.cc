#include <gtest/gtest.h>

#include <set>

#include "graph/algorithms.h"
#include "graph/generator.h"
#include "graph/sensor_network.h"
#include "graph/transition.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace graph {
namespace {

SensorNetwork Path3() {
  SensorNetwork g(3);
  g.AddEdge(0, 1, 1.0f);
  g.AddEdge(1, 2, 2.0f);
  return g;
}

TEST(SensorNetworkTest, UndirectedEdgesAreSymmetric) {
  SensorNetwork g = Path3();
  EXPECT_EQ(g.num_edges(), 4);  // 2 logical edges stored both ways
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FLOAT_EQ(g.EdgeWeight(1, 2), 2.0f);
  EXPECT_FLOAT_EQ(g.EdgeWeight(2, 1), 2.0f);
  EXPECT_FLOAT_EQ(g.EdgeWeight(0, 2), 0.0f);
}

TEST(SensorNetworkTest, DirectedEdgesAreOneWay) {
  SensorNetwork g(2, /*directed=*/true);
  g.AddEdge(0, 1, 1.0f);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
}

TEST(SensorNetworkTest, AdjacencyMatrix) {
  SensorNetwork g = Path3();
  Tensor a = g.AdjacencyMatrix();
  EXPECT_FLOAT_EQ(a.At({0, 1}), 1.0f);
  EXPECT_FLOAT_EQ(a.At({1, 0}), 1.0f);
  EXPECT_FLOAT_EQ(a.At({1, 2}), 2.0f);
  EXPECT_FLOAT_EQ(a.At({0, 2}), 0.0f);
  EXPECT_FLOAT_EQ(a.At({0, 0}), 0.0f);
}

TEST(SensorNetworkTest, SelfLoopDies) {
  SensorNetwork g(2);
  EXPECT_DEATH(g.AddEdge(1, 1, 1.0f), "self loops");
}

TEST(SensorNetworkTest, PositionsAndDistance) {
  SensorNetwork g(2);
  g.SetPosition(0, 0.0f, 0.0f);
  g.SetPosition(1, 3.0f, 4.0f);
  EXPECT_FLOAT_EQ(g.Distance(0, 1), 5.0f);
}

TEST(TransitionTest, RowNormalizeRowsSumToOne) {
  SensorNetwork g = Path3();
  Tensor p = ForwardTransition(g);
  Tensor row_sums = ops::Sum(p, {1});
  EXPECT_TRUE(ops::AllClose(row_sums, Tensor::Ones(Shape{3}), 1e-5f));
}

TEST(TransitionTest, SelfLoopsIncluded) {
  SensorNetwork g = Path3();
  Tensor p = ForwardTransition(g);
  for (int64_t i = 0; i < 3; ++i) EXPECT_GT(p.At({i, i}), 0.0f);
}

TEST(TransitionTest, ZeroRowBecomesIdentityStep) {
  Tensor m = Tensor::Zeros(Shape{2, 2});
  Tensor p = RowNormalize(m);
  EXPECT_FLOAT_EQ(p.At({0, 0}), 1.0f);
  EXPECT_FLOAT_EQ(p.At({1, 1}), 1.0f);
}

TEST(TransitionTest, UndirectedHasOneSupport) {
  SensorNetwork g = Path3();
  EXPECT_EQ(BuildSupports(g).size(), 1u);
}

TEST(TransitionTest, DirectedHasTwoSupports) {
  SensorNetwork g(2, /*directed=*/true);
  g.AddEdge(0, 1, 1.0f);
  const auto supports = BuildSupports(g);
  ASSERT_EQ(supports.size(), 2u);
  EXPECT_FALSE(ops::AllClose(supports[0], supports[1]));
}

TEST(TransitionTest, DenseMatchesGraphPath) {
  SensorNetwork g = Path3();
  EXPECT_TRUE(ops::AllClose(ForwardTransitionDense(g.AdjacencyMatrix()),
                            ForwardTransition(g)));
}

TEST(TransitionTest, NormalizedLaplacianProperties) {
  SensorNetwork g = Path3();
  Tensor l = NormalizedLaplacian(g.AdjacencyMatrix());
  // Symmetric for undirected graphs; diagonal is 1 for connected nodes.
  EXPECT_TRUE(ops::AllClose(l, ops::TransposeLast2(l), 1e-5f));
  for (int64_t i = 0; i < 3; ++i) EXPECT_NEAR(l.At({i, i}), 1.0f, 1e-5);
}

TEST(TransitionTest, ChebyshevRecursion) {
  SensorNetwork g = Path3();
  const auto supports = ChebyshevSupports(g.AdjacencyMatrix(), 3);
  ASSERT_EQ(supports.size(), 3u);
  // T2 = 2 L~ T1 - I must hold.
  const Tensor scaled = ops::Sub(NormalizedLaplacian(g.AdjacencyMatrix()), Tensor::Eye(3));
  const Tensor t2 = ops::Sub(ops::MulScalar(ops::MatMul(scaled, supports[0]), 2.0f),
                             Tensor::Eye(3));
  EXPECT_TRUE(ops::AllClose(supports[1], t2, 1e-4f));
}

TEST(AlgorithmsTest, BfsHopDistance) {
  SensorNetwork g = Path3();
  const auto dist = BfsHopDistance(g, 0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], 2);
}

TEST(AlgorithmsTest, BfsUnreachable) {
  SensorNetwork g(3);
  g.AddEdge(0, 1, 1.0f);  // node 2 isolated
  const auto dist = BfsHopDistance(g, 0);
  EXPECT_EQ(dist[2], -1);
}

TEST(AlgorithmsTest, RandomWalkStaysConnected) {
  Rng rng(1);
  SensorNetwork g = RingGraph(10);
  const auto nodes = RandomWalkNodes(g, 0, 6, rng);
  EXPECT_GE(nodes.size(), 1u);
  EXPECT_LE(nodes.size(), 7u);
  // All visited nodes must be within 6 hops of the start on the ring.
  for (const int64_t node : nodes) EXPECT_LT(node, 10);
}

TEST(AlgorithmsTest, RandomWalkZeroLengthIsStartOnly) {
  Rng rng(2);
  SensorNetwork g = RingGraph(5);
  const auto nodes = RandomWalkNodes(g, 3, 0, rng);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0], 3);
}

TEST(AlgorithmsTest, DistantNodePairsOnPath) {
  // Path 0-1-2-3-4: pairs at >= 3 hops: (0,3), (0,4), (1,4).
  SensorNetwork g(5);
  for (int64_t i = 0; i + 1 < 5; ++i) g.AddEdge(i, i + 1, 1.0f);
  const auto pairs = DistantNodePairs(g, 3);
  EXPECT_EQ(pairs.size(), 3u);
}

TEST(AlgorithmsTest, ConnectedComponents) {
  SensorNetwork g(5);
  g.AddEdge(0, 1, 1.0f);
  g.AddEdge(2, 3, 1.0f);
  EXPECT_EQ(CountConnectedComponents(g), 3);  // {0,1}, {2,3}, {4}
}

TEST(GeneratorTest, RandomGeometricIsConnected) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    SensorNetwork g = RandomGeometricGraph(30, 0.2f, rng);
    EXPECT_EQ(CountConnectedComponents(g), 1) << "seed " << seed;
    EXPECT_TRUE(g.has_positions());
  }
}

TEST(GeneratorTest, GeometricWeightsAreInverseDistance) {
  Rng rng(3);
  SensorNetwork g = RandomGeometricGraph(20, 0.4f, rng);
  for (const Edge& e : g.edges()) {
    const float d = g.Distance(e.src, e.dst);
    EXPECT_NEAR(e.weight, 1.0f / std::max(d, 1e-3f), 1e-3f * e.weight);
  }
}

TEST(GeneratorTest, GridGraphStructure) {
  SensorNetwork g = GridGraph(3, 4);
  EXPECT_EQ(g.num_nodes(), 12);
  // Interior node 5 (row 1, col 1) has 4 neighbors.
  EXPECT_EQ(g.Neighbors(5).size(), 4u);
  // Corner node 0 has 2.
  EXPECT_EQ(g.Neighbors(0).size(), 2u);
  EXPECT_EQ(CountConnectedComponents(g), 1);
}

TEST(GeneratorTest, RingGraphDegreeTwo) {
  SensorNetwork g = RingGraph(8);
  for (int64_t i = 0; i < 8; ++i) EXPECT_EQ(g.Neighbors(i).size(), 2u);
  EXPECT_EQ(CountConnectedComponents(g), 1);
}

}  // namespace
}  // namespace graph
}  // namespace urcl
