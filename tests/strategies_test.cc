// Tests for the continual-learning protocol runner: training strategies,
// evaluation modes, early stopping integration, and timing bookkeeping.
#include "core/strategies.h"

#include <gtest/gtest.h>

#include "core/urcl.h"
#include "data/presets.h"
#include "data/synthetic.h"

namespace urcl {
namespace core {
namespace {

class StrategiesTest : public ::testing::Test {
 protected:
  StrategiesTest() {
    data::TrafficConfig config = data::MetrLaPreset().MakeTrafficConfig(6, 10, 3);
    config.steps_per_day = 48;
    generator_ = std::make_unique<data::SyntheticTraffic>(config);
    Tensor series = generator_->GenerateSeries();
    normalizer_ = data::MinMaxNormalizer::Fit(series);
    dataset_ = std::make_unique<data::StDataset>(normalizer_.Transform(series),
                                                 data::WindowConfig{12, 1, 0});
    stream_ = std::make_unique<data::StreamSplitter>(*dataset_, data::StreamConfig{});
  }

  UrclConfig TinyConfig() const {
    UrclConfig config;
    config.encoder.num_nodes = 6;
    config.encoder.in_channels = 2;
    config.encoder.input_steps = 12;
    config.encoder.hidden_channels = 4;
    config.encoder.latent_channels = 8;
    config.encoder.num_layers = 3;
    config.encoder.adaptive_embedding_dim = 3;
    config.decoder_hidden = 16;
    config.proj_hidden = 8;
    config.batch_size = 4;
    config.max_batches_per_epoch = 4;
    config.replay_sample_count = 2;
    config.rmir_scan_size = 4;
    config.rmir_candidate_pool = 3;
    config.ssl_weight = 0.05f;
    return config;
  }

  std::unique_ptr<data::SyntheticTraffic> generator_;
  data::MinMaxNormalizer normalizer_;
  std::unique_ptr<data::StDataset> dataset_;
  std::unique_ptr<data::StreamSplitter> stream_;
};

TEST_F(StrategiesTest, SeenSoFarPoolsMoreObservationsEachStage) {
  UrclTrainer model(TinyConfig(), generator_->network());
  ProtocolOptions options;
  options.epochs_per_stage = 1;
  const auto results =
      RunContinualProtocol(model, *stream_, normalizer_, 0, options);
  ASSERT_EQ(results.size(), 5u);
  // Pooled evaluation: metric count grows with each stage.
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GT(results[i].metrics.count, results[i - 1].metrics.count);
  }
}

TEST_F(StrategiesTest, CurrentStageModeEvaluatesOnlyThatStage) {
  UrclTrainer model(TinyConfig(), generator_->network());
  ProtocolOptions options;
  options.epochs_per_stage = 1;
  options.eval_mode = EvalMode::kCurrentStage;
  const auto results =
      RunContinualProtocol(model, *stream_, normalizer_, 0, options);
  // Current-stage evaluation: each count covers exactly that stage's test.
  for (int64_t i = 0; i < stream_->NumStages(); ++i) {
    const int64_t expected =
        stream_->Stage(i).test.NumSamples() * 6;  // 6 nodes x 1 step x 1 ch
    EXPECT_EQ(results[static_cast<size_t>(i)].metrics.count, expected);
  }
}

TEST_F(StrategiesTest, OneFitAllSkipsIncrementalTraining) {
  UrclConfig config = TinyConfig();
  config.enable_replay = false;
  config.enable_ssl = false;
  UrclTrainer model(config, generator_->network());
  ProtocolOptions options;
  options.strategy = TrainingStrategy::kOneFitAll;
  options.epochs_per_stage = 1;
  const auto results =
      RunContinualProtocol(model, *stream_, normalizer_, 0, options);
  EXPECT_FALSE(results[0].epoch_losses.empty());
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].epoch_losses.empty());
    EXPECT_EQ(results[i].train_seconds, 0.0);
  }
}

TEST_F(StrategiesTest, EarlyStoppingLimitsEpochs) {
  UrclTrainer model(TinyConfig(), generator_->network());
  ProtocolOptions options;
  options.epochs_per_stage = 25;
  options.early_stopping_patience = 1;
  const auto results =
      RunContinualProtocol(model, *stream_, normalizer_, 0, options);
  // With patience 1 on a tiny model, at least one stage must stop early.
  bool stopped_early = false;
  for (const auto& r : results) {
    EXPECT_GE(r.epoch_losses.size(), 2u);
    if (r.epoch_losses.size() < 25u) stopped_early = true;
  }
  EXPECT_TRUE(stopped_early);
}

TEST_F(StrategiesTest, TimingFieldsPopulated) {
  UrclTrainer model(TinyConfig(), generator_->network());
  ProtocolOptions options;
  options.epochs_per_stage = 2;
  const auto results =
      RunContinualProtocol(model, *stream_, normalizer_, 0, options);
  for (const auto& r : results) {
    EXPECT_GT(r.train_seconds, 0.0);
    EXPECT_GT(r.train_seconds_per_epoch, 0.0);
    EXPECT_GT(r.infer_seconds_per_observation, 0.0);
    EXPECT_LE(r.train_seconds_per_epoch, r.train_seconds);
  }
}

TEST_F(StrategiesTest, StageNamesPropagate) {
  UrclTrainer model(TinyConfig(), generator_->network());
  ProtocolOptions options;
  options.epochs_per_stage = 1;
  const auto results =
      RunContinualProtocol(model, *stream_, normalizer_, 0, options);
  EXPECT_EQ(results[0].stage_name, "B_set");
  EXPECT_EQ(results[1].stage_name, "I_set1");
  EXPECT_EQ(results[4].stage_name, "I_set4");
}

}  // namespace
}  // namespace core
}  // namespace urcl
