#include "tensor/tensor_ops.h"

#include <cmath>

#include <gtest/gtest.h>

namespace urcl {
namespace ops {
namespace {

Tensor T(const Shape& shape, const std::vector<float>& v) {
  return Tensor::FromVector(shape, v);
}

TEST(ElementwiseTest, AddSameShape) {
  Tensor r = Add(T(Shape{3}, {1, 2, 3}), T(Shape{3}, {10, 20, 30}));
  EXPECT_TRUE(AllClose(r, T(Shape{3}, {11, 22, 33})));
}

TEST(ElementwiseTest, AddBroadcastRow) {
  Tensor a = T(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor row = T(Shape{3}, {10, 20, 30});
  Tensor r = Add(a, row);
  EXPECT_TRUE(AllClose(r, T(Shape{2, 3}, {11, 22, 33, 14, 25, 36})));
}

TEST(ElementwiseTest, AddBroadcastColumn) {
  Tensor a = T(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor col = T(Shape{2, 1}, {100, 200});
  Tensor r = Add(a, col);
  EXPECT_TRUE(AllClose(r, T(Shape{2, 3}, {101, 102, 103, 204, 205, 206})));
}

TEST(ElementwiseTest, TwoSidedBroadcast) {
  Tensor a = T(Shape{2, 1}, {1, 2});
  Tensor b = T(Shape{1, 3}, {10, 20, 30});
  Tensor r = Mul(a, b);
  EXPECT_EQ(r.shape(), Shape({2, 3}));
  EXPECT_FLOAT_EQ(r.At({1, 2}), 60.0f);
}

TEST(ElementwiseTest, SubDivMaxMin) {
  Tensor a = T(Shape{2}, {6, -4});
  Tensor b = T(Shape{2}, {2, 8});
  EXPECT_TRUE(AllClose(Sub(a, b), T(Shape{2}, {4, -12})));
  EXPECT_TRUE(AllClose(Div(a, b), T(Shape{2}, {3, -0.5})));
  EXPECT_TRUE(AllClose(Maximum(a, b), T(Shape{2}, {6, 8})));
  EXPECT_TRUE(AllClose(Minimum(a, b), T(Shape{2}, {2, -4})));
}

TEST(ElementwiseTest, ScalarOps) {
  Tensor a = T(Shape{2}, {1, 2});
  EXPECT_TRUE(AllClose(AddScalar(a, 1.0f), T(Shape{2}, {2, 3})));
  EXPECT_TRUE(AllClose(MulScalar(a, -2.0f), T(Shape{2}, {-2, -4})));
  EXPECT_TRUE(AllClose(PowScalar(a, 2.0f), T(Shape{2}, {1, 4})));
}

TEST(UnaryTest, Basics) {
  Tensor a = T(Shape{3}, {-1, 0, 4});
  EXPECT_TRUE(AllClose(Neg(a), T(Shape{3}, {1, 0, -4})));
  EXPECT_TRUE(AllClose(Abs(a), T(Shape{3}, {1, 0, 4})));
  EXPECT_TRUE(AllClose(Sign(a), T(Shape{3}, {-1, 0, 1})));
  EXPECT_TRUE(AllClose(Relu(a), T(Shape{3}, {0, 0, 4})));
  EXPECT_TRUE(AllClose(Square(a), T(Shape{3}, {1, 0, 16})));
  EXPECT_TRUE(AllClose(Clamp(a, -0.5f, 2.0f), T(Shape{3}, {-0.5, 0, 2})));
}

TEST(UnaryTest, Transcendental) {
  Tensor a = T(Shape{2}, {0, 1});
  EXPECT_NEAR(Exp(a).FlatAt(1), std::exp(1.0f), 1e-5);
  EXPECT_NEAR(Log(Exp(a)).FlatAt(1), 1.0f, 1e-5);
  EXPECT_NEAR(Sigmoid(a).FlatAt(0), 0.5f, 1e-6);
  EXPECT_NEAR(Tanh(a).FlatAt(1), std::tanh(1.0f), 1e-6);
  EXPECT_NEAR(Sqrt(T(Shape{1}, {9})).Item(), 3.0f, 1e-6);
}

TEST(ReduceTest, SumAll) {
  Tensor a = T(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(Sum(a).Item(), 21.0f);
  EXPECT_EQ(Sum(a).rank(), 0);
}

TEST(ReduceTest, SumAxis0) {
  Tensor a = T(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = Sum(a, {0});
  EXPECT_TRUE(AllClose(r, T(Shape{3}, {5, 7, 9})));
}

TEST(ReduceTest, SumAxis1Keepdims) {
  Tensor a = T(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = Sum(a, {1}, /*keepdims=*/true);
  EXPECT_EQ(r.shape(), Shape({2, 1}));
  EXPECT_TRUE(AllClose(r, T(Shape{2, 1}, {6, 15})));
}

TEST(ReduceTest, NegativeAxis) {
  Tensor a = T(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(AllClose(Sum(a, {-1}), T(Shape{2}, {6, 15})));
}

TEST(ReduceTest, MeanMaxMin) {
  Tensor a = T(Shape{2, 2}, {1, 5, 3, -1});
  EXPECT_FLOAT_EQ(Mean(a).Item(), 2.0f);
  EXPECT_FLOAT_EQ(Max(a).Item(), 5.0f);
  EXPECT_FLOAT_EQ(Min(a).Item(), -1.0f);
  EXPECT_TRUE(AllClose(Max(a, {0}), T(Shape{2}, {3, 5})));
  EXPECT_TRUE(AllClose(Min(a, {1}), T(Shape{2}, {1, -1})));
}

TEST(ReduceTest, ReduceToInvertsBroadcast) {
  Tensor col = T(Shape{2, 1}, {1, 2});
  Tensor big = BroadcastTo(col, Shape{2, 4});
  Tensor back = ReduceTo(big, Shape{2, 1});
  EXPECT_TRUE(AllClose(back, T(Shape{2, 1}, {4, 8})));
  // Also reduces away leading axes entirely.
  Tensor row = ReduceTo(Tensor::Ones(Shape{5, 3}), Shape{3});
  EXPECT_TRUE(AllClose(row, T(Shape{3}, {5, 5, 5})));
}

TEST(MatMulTest, Simple2d) {
  Tensor a = T(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = T(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor r = MatMul(a, b);
  EXPECT_TRUE(AllClose(r, T(Shape{2, 2}, {58, 64, 139, 154})));
}

TEST(MatMulTest, IdentityPreserves) {
  Rng rng(3);
  Tensor a = Tensor::RandomNormal(Shape{4, 4}, rng);
  EXPECT_TRUE(AllClose(MatMul(a, Tensor::Eye(4)), a, 1e-5f));
}

TEST(MatMulTest, BatchedAndBroadcast) {
  // a: [2, 2, 3], b: [3, 2] -> broadcast to both batches.
  Tensor a = T(Shape{2, 2, 3}, {1, 2, 3, 4, 5, 6, 1, 0, 0, 0, 1, 0});
  Tensor b = T(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor r = MatMul(a, b);
  EXPECT_EQ(r.shape(), Shape({2, 2, 2}));
  EXPECT_FLOAT_EQ(r.At({0, 0, 0}), 58.0f);
  EXPECT_FLOAT_EQ(r.At({1, 0, 0}), 7.0f);
  EXPECT_FLOAT_EQ(r.At({1, 1, 1}), 10.0f);
}

TEST(MatMulTest, InnerDimMismatchDies) {
  EXPECT_DEATH(MatMul(Tensor::Zeros(Shape{2, 3}), Tensor::Zeros(Shape{4, 2})),
               "inner-dim mismatch");
}

TEST(ShapeOpsTest, TransposeSwapsAxes) {
  Tensor a = T(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = Transpose(a, {1, 0});
  EXPECT_EQ(r.shape(), Shape({3, 2}));
  EXPECT_FLOAT_EQ(r.At({2, 1}), 6.0f);
  EXPECT_TRUE(AllClose(TransposeLast2(a), r));
}

TEST(ShapeOpsTest, Transpose3d) {
  Rng rng(1);
  Tensor a = Tensor::RandomNormal(Shape{2, 3, 4}, rng);
  Tensor r = Transpose(a, {2, 0, 1});
  EXPECT_EQ(r.shape(), Shape({4, 2, 3}));
  EXPECT_FLOAT_EQ(r.At({3, 1, 2}), a.At({1, 2, 3}));
}

TEST(ShapeOpsTest, SliceAndUnSlice) {
  Tensor a = T(Shape{3, 4}, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  Tensor s = Slice(a, {1, 1}, {2, 2});
  EXPECT_TRUE(AllClose(s, T(Shape{2, 2}, {5, 6, 9, 10})));
  Tensor u = UnSlice(s, Shape{3, 4}, {1, 1});
  EXPECT_FLOAT_EQ(u.At({0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(u.At({1, 1}), 5.0f);
  EXPECT_FLOAT_EQ(u.At({2, 2}), 10.0f);
}

TEST(ShapeOpsTest, SliceOutOfBoundsDies) {
  EXPECT_DEATH(Slice(Tensor::Zeros(Shape{2, 2}), {0, 1}, {2, 2}), "out of bounds");
}

TEST(ShapeOpsTest, ConcatAxis0And1) {
  Tensor a = T(Shape{1, 2}, {1, 2});
  Tensor b = T(Shape{1, 2}, {3, 4});
  EXPECT_TRUE(AllClose(Concat({a, b}, 0), T(Shape{2, 2}, {1, 2, 3, 4})));
  EXPECT_TRUE(AllClose(Concat({a, b}, 1), T(Shape{1, 4}, {1, 2, 3, 4})));
}

TEST(ShapeOpsTest, StackCreatesNewAxis) {
  Tensor a = T(Shape{2}, {1, 2});
  Tensor b = T(Shape{2}, {3, 4});
  Tensor r = Stack({a, b}, 0);
  EXPECT_EQ(r.shape(), Shape({2, 2}));
  EXPECT_FLOAT_EQ(r.At({1, 0}), 3.0f);
}

TEST(ShapeOpsTest, PadAddsZeros) {
  Tensor a = T(Shape{1, 2}, {1, 2});
  Tensor r = Pad(a, 1, 2, 1);
  EXPECT_EQ(r.shape(), Shape({1, 5}));
  EXPECT_TRUE(AllClose(r, T(Shape{1, 5}, {0, 0, 1, 2, 0})));
}

TEST(ShapeOpsTest, FlipReversesAxis) {
  Tensor a = T(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(AllClose(Flip(a, 1), T(Shape{2, 3}, {3, 2, 1, 6, 5, 4})));
  EXPECT_TRUE(AllClose(Flip(a, 0), T(Shape{2, 3}, {4, 5, 6, 1, 2, 3})));
  EXPECT_TRUE(AllClose(Flip(Flip(a, 0), 0), a));
}

TEST(SoftmaxTest, RowsSumToOne) {
  Rng rng(5);
  Tensor a = Tensor::RandomNormal(Shape{4, 7}, rng, 0.0f, 3.0f);
  Tensor s = Softmax(a, -1);
  Tensor sums = Sum(s, {-1});
  EXPECT_TRUE(AllClose(sums, Tensor::Ones(Shape{4}), 1e-5f));
  for (int64_t i = 0; i < s.NumElements(); ++i) EXPECT_GT(s.FlatAt(i), 0.0f);
}

TEST(SoftmaxTest, LargeLogitsAreStable) {
  Tensor a = T(Shape{1, 3}, {1000, 1000, 1000});
  Tensor s = Softmax(a, 1);
  EXPECT_TRUE(AllFinite(s));
  EXPECT_NEAR(s.FlatAt(0), 1.0f / 3.0f, 1e-5);
}

TEST(DiagnosticsTest, AllCloseAndMaxAbsDiff) {
  Tensor a = T(Shape{2}, {1.0f, 2.0f});
  Tensor b = T(Shape{2}, {1.0f, 2.001f});
  EXPECT_FALSE(AllClose(a, b, 1e-5f, 1e-6f));
  EXPECT_TRUE(AllClose(a, b, 1e-2f));
  EXPECT_NEAR(MaxAbsDiff(a, b), 0.001f, 1e-5);
}

TEST(DiagnosticsTest, AllFinite) {
  Tensor a = T(Shape{2}, {1.0f, 2.0f});
  EXPECT_TRUE(AllFinite(a));
  a.FlatSet(0, std::numeric_limits<float>::infinity());
  EXPECT_FALSE(AllFinite(a));
  a.FlatSet(0, std::nanf(""));
  EXPECT_FALSE(AllFinite(a));
}

}  // namespace
}  // namespace ops
}  // namespace urcl
