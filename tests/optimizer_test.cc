#include "nn/optimizer.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace nn {
namespace {

namespace ag = ::urcl::autograd;
namespace top = ::urcl::ops;

// Minimizes f(w) = (w - 3)^2 and checks convergence.
float MinimizeQuadratic(Optimizer& opt, Variable& w, int steps) {
  for (int i = 0; i < steps; ++i) {
    opt.ZeroGrad();
    Variable loss = ag::Square(ag::AddScalar(w, -3.0f));
    loss.Backward();
    opt.Step();
  }
  return w.value().Item();
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Variable w(Tensor::Scalar(0.0f), true);
  Sgd sgd({w}, /*lr=*/0.1f);
  EXPECT_NEAR(MinimizeQuadratic(sgd, w, 100), 3.0f, 1e-3);
}

TEST(SgdTest, MomentumAccelerates) {
  Variable w1(Tensor::Scalar(0.0f), true);
  Variable w2(Tensor::Scalar(0.0f), true);
  Sgd plain({w1}, 0.02f);
  Sgd momentum({w2}, 0.02f, 0.9f);
  MinimizeQuadratic(plain, w1, 20);
  MinimizeQuadratic(momentum, w2, 20);
  EXPECT_GT(std::fabs(w2.value().Item() - 0.0f), std::fabs(w1.value().Item() - 0.0f));
}

TEST(SgdTest, SingleStepValue) {
  Variable w(Tensor::Scalar(1.0f), true);
  Sgd sgd({w}, 0.5f);
  sgd.ZeroGrad();
  Variable loss = ag::Square(w);  // grad = 2w = 2
  loss.Backward();
  sgd.Step();
  EXPECT_NEAR(w.value().Item(), 0.0f, 1e-6);  // 1 - 0.5*2
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Variable w(Tensor::Scalar(10.0f), true);
  Adam adam({w}, 0.2f);
  EXPECT_NEAR(MinimizeQuadratic(adam, w, 300), 3.0f, 1e-2);
}

TEST(AdamTest, FirstStepIsLrSized) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  Variable w(Tensor::Scalar(5.0f), true);
  Adam adam({w}, 0.1f);
  adam.ZeroGrad();
  ag::Square(w).Backward();
  adam.Step();
  EXPECT_NEAR(w.value().Item(), 4.9f, 1e-3);
}

TEST(AdamTest, WeightDecayShrinksWeights) {
  Variable w(Tensor::Scalar(1.0f), true);
  Adam adam({w}, 0.01f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/1.0f);
  for (int i = 0; i < 50; ++i) {
    adam.ZeroGrad();
    // Zero-gradient objective; only decay acts.
    Variable loss = ag::MulScalar(w, 0.0f);
    loss.Backward();
    adam.Step();
  }
  EXPECT_LT(w.value().Item(), 0.9f);
}

TEST(AdamTest, TrainsLinearRegression) {
  Rng rng(1);
  // y = 2x + 1 with noise-free data.
  Tensor xs = Tensor::RandomUniform(Shape{32, 1}, rng, -1.0f, 1.0f);
  Tensor ys = top::AddScalar(top::MulScalar(xs, 2.0f), 1.0f);
  Linear model(1, 1, rng);
  Adam adam(model.Parameters(), 0.05f);
  float last_loss = 1e9f;
  for (int epoch = 0; epoch < 200; ++epoch) {
    adam.ZeroGrad();
    Variable loss = MseLoss(model.Forward(Variable(xs, false)), Variable(ys, false));
    loss.Backward();
    adam.Step();
    last_loss = loss.value().Item();
  }
  EXPECT_LT(last_loss, 1e-3f);
}

TEST(ClipGradNormTest, ScalesDownLargeGradients) {
  Variable w(Tensor::FromVector(Shape{2}, {3.0f, 4.0f}), true);
  Sgd sgd({w}, 1.0f);
  sgd.ZeroGrad();
  // grad = w (norm 5) for loss = 0.5*||w||^2
  Variable loss = ag::MulScalar(ag::Sum(ag::Square(w)), 0.5f);
  loss.Backward();
  const float pre_norm = sgd.ClipGradNorm(1.0f);
  EXPECT_NEAR(pre_norm, 5.0f, 1e-4);
  const Tensor g = w.grad();
  const float post_norm = std::sqrt(g.FlatAt(0) * g.FlatAt(0) + g.FlatAt(1) * g.FlatAt(1));
  EXPECT_NEAR(post_norm, 1.0f, 1e-4);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  Variable w(Tensor::FromVector(Shape{2}, {0.3f, 0.4f}), true);
  Sgd sgd({w}, 1.0f);
  sgd.ZeroGrad();
  ag::MulScalar(ag::Sum(ag::Square(w)), 0.5f).Backward();
  sgd.ClipGradNorm(10.0f);
  EXPECT_NEAR(w.grad().FlatAt(0), 0.3f, 1e-5);
}

TEST(OptimizerTest, RejectsNonTrainableParams) {
  Variable w(Tensor::Scalar(1.0f), /*requires_grad=*/false);
  EXPECT_DEATH(Sgd({w}, 0.1f), "non-trainable");
}

// --- Opt-in robustness guards (AdamConfig::clip_norm / check_finite).

TEST(AdamGuardTest, ClipNormBoundsTheUpdate) {
  // grad = (3, 4), norm 5, clipped to 1 inside Step(): after clipping the
  // gradients visible on the params have norm 1.
  Variable w(Tensor::FromVector(Shape{2}, {3.0f, 4.0f}), true);
  AdamConfig config;
  config.lr = 0.1f;
  config.clip_norm = 1.0f;
  Adam adam({w}, config);
  adam.ZeroGrad();
  ag::MulScalar(ag::Sum(ag::Square(w)), 0.5f).Backward();  // grad = w
  adam.Step();
  const Tensor g = w.grad();
  const float post_norm = std::sqrt(g.FlatAt(0) * g.FlatAt(0) + g.FlatAt(1) * g.FlatAt(1));
  EXPECT_NEAR(post_norm, 1.0f, 1e-4);
}

TEST(AdamGuardTest, NonFiniteGradientSkipsTheWholeUpdate) {
  Variable w(Tensor::Scalar(1.0f), true);
  AdamConfig config;
  config.lr = 0.1f;
  config.check_finite = true;
  Adam adam({w}, config);

  adam.ZeroGrad();
  w.AccumulateGrad(Tensor::Scalar(std::numeric_limits<float>::quiet_NaN()));
  adam.Step();

  ASSERT_TRUE(adam.last_step_report().has_value());
  EXPECT_EQ(adam.last_step_report()->kind, NonFiniteReport::Kind::kGradient);
  EXPECT_EQ(adam.last_step_report()->param_index, 0);
  EXPECT_EQ(adam.step_count(), 0);                // update skipped entirely
  EXPECT_FLOAT_EQ(w.value().Item(), 1.0f);        // parameter untouched

  // A clean step afterwards clears the report and applies normally.
  adam.ZeroGrad();
  ag::Square(w).Backward();
  adam.Step();
  EXPECT_FALSE(adam.last_step_report().has_value());
  EXPECT_EQ(adam.step_count(), 1);
  EXPECT_LT(w.value().Item(), 1.0f);
}

TEST(AdamGuardTest, CheckFiniteOffTrainsOnNan) {
  // Without the guard, a NaN gradient silently poisons the parameter — the
  // guard (and the trainer quarantine built on it) is what prevents this.
  Variable w(Tensor::Scalar(1.0f), true);
  Adam adam({w}, 0.1f);
  adam.ZeroGrad();
  w.AccumulateGrad(Tensor::Scalar(std::numeric_limits<float>::quiet_NaN()));
  adam.Step();
  EXPECT_TRUE(std::isnan(w.value().Item()));
}

TEST(SgdStateTest, MomentumRoundTripContinuesBitwise) {
  Variable w1(Tensor::Scalar(0.0f), true);
  Sgd a({w1}, 0.05f, 0.9f);
  MinimizeQuadratic(a, w1, 10);

  std::ostringstream saved;
  a.SaveState(saved);
  Variable w2(w1.value().Clone(), true);
  Sgd b({w2}, 0.05f, 0.9f);
  std::istringstream in(saved.str());
  ASSERT_TRUE(b.LoadState(in).ok());

  MinimizeQuadratic(a, w1, 5);
  MinimizeQuadratic(b, w2, 5);
  const float va = w1.value().Item();
  const float vb = w2.value().Item();
  EXPECT_EQ(std::memcmp(&va, &vb, sizeof(float)), 0);
}

}  // namespace
}  // namespace nn
}  // namespace urcl
