// Compiled-executor tests (ctest label `exec`, DESIGN.md §12): bitwise
// plan-vs-tape equality of forward, backward and Adam state across thread
// counts, zero steady-state BufferPool traffic, arena layout validation,
// the sNaN poison audit over arena slots, elementwise-gate fusion, and the
// capture error paths (dropout RNG, graphs built outside the listener).
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "core/urcl.h"
#include "data/synthetic.h"
#include "exec/arena.h"
#include "exec/plan.h"
#include "graph/generator.h"
#include "runtime/parallel.h"
#include "tensor/pool.h"
#include "tensor/tensor.h"

namespace urcl {
namespace exec {
namespace {

namespace ag = ::urcl::autograd;
using ag::Variable;

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  if (!(a.shape() == b.shape())) return false;
  return std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.NumElements())) == 0;
}

// Serialized Adam state (step counter + first/second moments, params order):
// byte equality here means the two optimizers are indistinguishable.
std::string AdamStateBytes(const nn::Adam& adam) {
  std::ostringstream out;
  adam.SaveState(out);
  return out.str();
}

class ExecTrainerTest : public ::testing::Test {
 protected:
  core::UrclConfig SmallUrcl(int64_t nodes) {
    core::UrclConfig config;
    config.encoder.num_nodes = nodes;
    config.encoder.in_channels = 2;
    config.encoder.input_steps = 12;
    config.encoder.hidden_channels = 4;
    config.encoder.latent_channels = 8;
    config.encoder.num_layers = 3;
    config.encoder.adaptive_embedding_dim = 3;
    config.batch_size = 4;
    config.max_batches_per_epoch = 6;
    config.replay_sample_count = 2;
    config.rmir_scan_size = 6;
    config.rmir_candidate_pool = 4;
    config.buffer_capacity = 32;
    config.proj_hidden = 8;
    config.decoder_hidden = 16;
    return config;
  }

  data::StDataset SmallDataset(int64_t nodes, int64_t steps = 120) {
    data::TrafficConfig traffic;
    traffic.num_nodes = nodes;
    traffic.num_days = 2;
    traffic.steps_per_day = steps / 2;
    traffic.channels = 2;
    generator_ = std::make_unique<data::SyntheticTraffic>(traffic);
    Tensor series = generator_->GenerateSeries();
    normalizer_ = data::MinMaxNormalizer::Fit(series);
    return data::StDataset(normalizer_.Transform(series), data::WindowConfig{12, 1, 0});
  }

  // Trains two identically-seeded trainers — one per executor mode — on the
  // same stream and asserts the entire observable training state is byte
  // identical: every per-step loss, every parameter tensor, and the Adam
  // step counter + moments.
  void ExpectPlanMatchesTape(core::UrclConfig config, int num_threads, int epochs) {
    const int saved_threads = runtime::GetNumThreads();
    // A pool wider than the machine is capped to the core count unless
    // oversubscription is on; force it so 4/8-thread runs on small CI boxes
    // still execute real cross-thread kernels.
    runtime::SetOversubscribe(true);
    runtime::SetNumThreads(num_threads);

    data::StDataset dataset = SmallDataset(6);
    config.executor = ExecutorMode::kTape;
    core::UrclTrainer tape(config, generator_->network());
    config.executor = ExecutorMode::kPlan;
    core::UrclTrainer plan(config, generator_->network());

    tape.TrainStage(dataset, epochs);
    plan.TrainStage(dataset, epochs);

    runtime::SetOversubscribe(false);
    runtime::SetNumThreads(saved_threads);

    // The equality below is only evidence if the plan executor actually
    // engaged: all-failed captures would fall back to the tape and pass
    // trivially (exactly how a shape-inference regression once hid).
    EXPECT_EQ(tape.compiled_plan_count(), 0u);
    EXPECT_GT(plan.compiled_plan_count(), 0u);

    ASSERT_GT(tape.loss_history().size(), 0u);
    ASSERT_EQ(tape.loss_history().size(), plan.loss_history().size());
    for (size_t i = 0; i < tape.loss_history().size(); ++i) {
      const float a = tape.loss_history()[i];
      const float b = plan.loss_history()[i];
      EXPECT_EQ(std::memcmp(&a, &b, sizeof(float)), 0)
          << "step " << i << ": tape " << a << " plan " << b;
    }

    const auto tape_params = tape.model().NamedParameters();
    const auto plan_params = plan.model().NamedParameters();
    ASSERT_EQ(tape_params.size(), plan_params.size());
    for (size_t i = 0; i < tape_params.size(); ++i) {
      EXPECT_EQ(tape_params[i].first, plan_params[i].first);
      EXPECT_TRUE(BitwiseEqual(tape_params[i].second.value(), plan_params[i].second.value()))
          << "parameter " << tape_params[i].first;
    }

    EXPECT_EQ(AdamStateBytes(tape.optimizer()), AdamStateBytes(plan.optimizer()));
    EXPECT_EQ(tape.quarantined_batches(), plan.quarantined_batches());
  }

  std::unique_ptr<data::SyntheticTraffic> generator_;
  data::MinMaxNormalizer normalizer_;
};

// Fully-planned training step (augmentation off makes the graph
// step-invariant, so the train family compiles alongside the RMIR virtual
// and per-item families).
TEST_F(ExecTrainerTest, PlanMatchesTapeBitwiseSingleThread) {
  core::UrclConfig config = SmallUrcl(6);
  config.enable_augmentation = false;
  ExpectPlanMatchesTape(config, /*num_threads=*/1, /*epochs=*/3);
}

TEST_F(ExecTrainerTest, PlanMatchesTapeBitwiseFourThreads) {
  core::UrclConfig config = SmallUrcl(6);
  config.enable_augmentation = false;
  ExpectPlanMatchesTape(config, /*num_threads=*/4, /*epochs=*/2);
}

TEST_F(ExecTrainerTest, PlanMatchesTapeBitwiseEightThreads) {
  core::UrclConfig config = SmallUrcl(6);
  config.enable_augmentation = false;
  ExpectPlanMatchesTape(config, /*num_threads=*/8, /*epochs=*/2);
}

// With SSL *and* augmentation on, the training graph draws fresh RNG views
// every step: the train family must fall back to the tape while the virtual
// and per-item families stay planned — and the mix must still be bitwise
// equal to a pure tape run.
TEST_F(ExecTrainerTest, AugmentedStepFallsBackToTapeBitwise) {
  core::UrclConfig config = SmallUrcl(6);
  ASSERT_TRUE(config.enable_ssl);
  ASSERT_TRUE(config.enable_augmentation);
  ExpectPlanMatchesTape(config, /*num_threads=*/1, /*epochs=*/2);
}

class PlanUnitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& pool = pool::BufferPool::Get();
    saved_poison_ = pool.poison_enabled();
    pool.Trim();
  }
  void TearDown() override { pool::BufferPool::Get().set_poison_enabled(saved_poison_); }

  // x: [B, C, N, T] ramp; distinct values across the block.
  static Tensor Ramp(const Shape& shape, float start, float step) {
    Tensor t = Tensor::Uninitialized(shape);
    float* p = t.mutable_data();
    for (int64_t i = 0; i < t.NumElements(); ++i) p[i] = start + step * static_cast<float>(i);
    return t;
  }

  bool saved_poison_ = false;
};

// Steady-state plan execution must never touch the BufferPool: the arena
// serves every kernel allocation. The window starts after ZeroGrad (which
// legitimately allocates the empty-grad sentinel from the pool).
TEST_F(PlanUnitTest, SteadyStateStepPerformsZeroPoolAcquisitions) {
  const Shape shape{8, 16};
  Tensor x = Ramp(shape, -0.9f, 0.013f);
  Variable w(Ramp(shape, 0.2f, 0.004f), /*requires_grad=*/true);

  const std::vector<Tensor> inputs{x};
  CompiledPlan::CaptureResult captured = CompiledPlan::Capture(
      inputs,
      [&] {
        Variable vx(x, /*requires_grad=*/false);
        return ag::Sum(ag::Mul(ag::Tanh(vx), w));
      },
      /*with_backward=*/true);
  ASSERT_NE(captured.plan, nullptr) << captured.error;
  CompiledPlan& plan = *captured.plan;

  // The measure run accumulated a real gradient on w; a fresh step starts
  // clean, exactly like the trainer's ZeroGrad-before-forward.
  w.ZeroGrad();
  plan.BindInputs({x});
  plan.RunForward();
  plan.RunBackward();  // warm-up replay
  w.ZeroGrad();

  auto& pool = pool::BufferPool::Get();
  pool.ResetCounters();
  plan.BindInputs({x});
  const Tensor& out = plan.RunForward();
  plan.RunBackward();
  const pool::PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.hits, 0) << "steady-state plan step hit the BufferPool";
  EXPECT_EQ(stats.misses, 0) << "steady-state plan step missed into the BufferPool";

  EXPECT_EQ(out.NumElements(), 1);
  // d(sum(tanh(x) * w))/dw = tanh(x), nonzero for the ramp input.
  EXPECT_NE(w.grad().data()[0], 0.0f);
}

// Replays must match the tape bit for bit — forward value and accumulated
// parameter gradient — across repeated executions of the same plan.
TEST_F(PlanUnitTest, ReplayMatchesTapeForwardAndGradBitwise) {
  const Shape shape{4, 3, 5, 7};
  Tensor x = Ramp(shape, -1.0f, 0.002f);
  Variable w(Ramp(shape, 0.5f, 0.001f), /*requires_grad=*/true);

  const std::vector<Tensor> inputs{x};
  CompiledPlan::CaptureResult captured = CompiledPlan::Capture(
      inputs,
      [&] {
        Variable vx(x, /*requires_grad=*/false);
        return ag::Sum(ag::Mul(ag::Sigmoid(vx), w));
      },
      /*with_backward=*/true);
  ASSERT_NE(captured.plan, nullptr) << captured.error;
  CompiledPlan& plan = *captured.plan;

  // Tape reference on a twin parameter (same bytes, independent grad).
  Variable w_ref(w.value().Clone(), /*requires_grad=*/true);
  Variable loss_ref = ag::Sum(ag::Mul(ag::Sigmoid(Variable(x, false)), w_ref));
  loss_ref.Backward();

  for (int step = 0; step < 3; ++step) {
    w.ZeroGrad();
    plan.BindInputs({x});
    const Tensor& out = plan.RunForward();
    EXPECT_TRUE(BitwiseEqual(out, loss_ref.value())) << "step " << step;
    plan.RunBackward();
    EXPECT_TRUE(BitwiseEqual(w.grad(), w_ref.grad())) << "step " << step;
  }
}

// The gated-TCN elementwise chain Mul(Tanh(x + b1), Sigmoid(y + b2)) fuses
// into one pass; fusion must be detected and stay bitwise-identical to the
// unfused tape ops.
TEST_F(PlanUnitTest, GateFusionDetectedAndBitwiseEqual) {
  const Shape shape{2, 3, 4, 5};
  Tensor x = Ramp(shape, -0.8f, 0.011f);
  Tensor y = Ramp(shape, 0.7f, -0.009f);
  Tensor b1 = Ramp(Shape{1, 3, 1, 1}, 0.1f, 0.05f);
  Tensor b2 = Ramp(Shape{1, 3, 1, 1}, -0.2f, 0.07f);

  auto build = [&] {
    Variable t = ag::Tanh(ag::Add(Variable(x, false), Variable(b1, false)));
    Variable s = ag::Sigmoid(ag::Add(Variable(y, false), Variable(b2, false)));
    return ag::Mul(t, s);
  };

  const std::vector<Tensor> inputs{x, y};
  CompiledPlan::CaptureResult captured =
      CompiledPlan::Capture(inputs, build, /*with_backward=*/false);
  ASSERT_NE(captured.plan, nullptr) << captured.error;
  CompiledPlan& plan = *captured.plan;
  EXPECT_EQ(plan.num_fused(), 1);

  const Tensor reference = build().value();
  for (int run = 0; run < 2; ++run) {
    plan.BindInputs({x, y});
    EXPECT_TRUE(BitwiseEqual(plan.RunForward(), reference)) << "run " << run;
  }
}

// Poison audit (PR-5 machinery over arena slots): with pool poisoning on,
// every non-zero-filled arena handout is sNaN-filled, so any slot read
// before being fully written would poison the output. A clean, bitwise-equal
// output across repeated replays proves every slot is written first.
TEST_F(PlanUnitTest, PoisonedArenaSlotsAreFullyWrittenBeforeRead) {
  pool::BufferPool::Get().set_poison_enabled(true);

  const Shape shape{2, 3, 4, 5};
  Tensor x = Ramp(shape, -0.6f, 0.007f);
  Tensor y = Ramp(shape, 0.4f, -0.005f);
  Tensor b1 = Ramp(Shape{1, 3, 1, 1}, 0.3f, 0.02f);
  Tensor b2 = Ramp(Shape{1, 3, 1, 1}, -0.1f, 0.04f);

  auto build = [&] {
    Variable t = ag::Tanh(ag::Add(Variable(x, false), Variable(b1, false)));
    Variable s = ag::Sigmoid(ag::Add(Variable(y, false), Variable(b2, false)));
    return ag::Mul(t, s);
  };
  const Tensor reference = build().value();

  const std::vector<Tensor> inputs{x, y};
  CompiledPlan::CaptureResult captured =
      CompiledPlan::Capture(inputs, build, /*with_backward=*/false);
  ASSERT_NE(captured.plan, nullptr) << captured.error;

  for (int run = 0; run < 3; ++run) {
    captured.plan->BindInputs({x, y});
    const Tensor& out = captured.plan->RunForward();
    EXPECT_EQ(pool::CountPoisonWords(out.data(), out.NumElements()), 0) << "run " << run;
    EXPECT_TRUE(BitwiseEqual(out, reference)) << "run " << run;
  }
}

// Dropout draws a fresh RNG mask per step — the graph is not replayable and
// capture must refuse it (the trainer then stays on the tape).
TEST_F(PlanUnitTest, DropoutGraphRefusesCapture) {
  Tensor x = Ramp(Shape{4, 4}, 0.0f, 0.1f);
  Rng rng(3);
  const std::vector<Tensor> inputs{x};
  CompiledPlan::CaptureResult captured = CompiledPlan::Capture(
      inputs,
      [&] { return ag::Dropout(Variable(x, false), 0.5f, rng, /*training=*/true); },
      /*with_backward=*/false);
  EXPECT_EQ(captured.plan, nullptr);
  EXPECT_NE(captured.error.find("not replayable"), std::string::npos) << captured.error;
}

// A Variable with a backward function that predates the capture means part
// of the graph was built outside the listener — the plan would silently
// miss those ops, so capture must reject it.
TEST_F(PlanUnitTest, GraphBuiltOutsideListenerRefusesCapture) {
  Variable w(Ramp(Shape{2, 2}, 1.0f, 0.5f), /*requires_grad=*/true);
  Variable pre = ag::MulScalar(w, 2.0f);  // built before Capture
  const std::vector<Tensor> inputs;
  CompiledPlan::CaptureResult captured = CompiledPlan::Capture(
      inputs, [&] { return ag::Sum(pre); }, /*with_backward=*/false);
  EXPECT_EQ(captured.plan, nullptr);
  EXPECT_NE(captured.error.find("outside the capture"), std::string::npos) << captured.error;
}

TEST(ExecutorModeTest, DefaultsFollowUrclExecEnv) {
  ::setenv("URCL_EXEC", "tape", 1);
  EXPECT_EQ(DefaultExecutorMode(), ExecutorMode::kTape);
  ::setenv("URCL_EXEC", "plan", 1);
  EXPECT_EQ(DefaultExecutorMode(), ExecutorMode::kPlan);
  ::unsetenv("URCL_EXEC");
  EXPECT_EQ(DefaultExecutorMode(), ExecutorMode::kPlan);
  EXPECT_STREQ(ExecutorModeName(ExecutorMode::kPlan), "plan");
  EXPECT_STREQ(ExecutorModeName(ExecutorMode::kTape), "tape");
}

// The arena's whole correctness argument: no two events with overlapping
// lifetimes may overlap in memory. Seed a deliberately bad assignment and
// assert the validator rejects it (and accepts the disjoint fix).
TEST(ArenaLayoutTest, RejectsOverlappingLifetimesSharingMemory) {
  std::vector<ArenaEvent> events(2);
  events[0].count = 32;
  events[0].alloc_tick = 0;
  events[0].free_tick = 4;
  events[0].offset = 0;
  events[0].size = 32;
  events[1].count = 32;
  events[1].alloc_tick = 1;  // alive while event 0 is alive
  events[1].free_tick = 3;
  events[1].offset = 16;  // overlaps [0, 32)
  events[1].size = 32;

  std::string error;
  EXPECT_FALSE(ValidateLayout(events, /*total_floats=*/64, &error));
  EXPECT_FALSE(error.empty());

  // Same memory, disjoint lifetimes: sound.
  events[1].alloc_tick = 4;
  events[1].free_tick = 6;
  events[1].offset = 0;
  EXPECT_TRUE(ValidateLayout(events, /*total_floats=*/64, &error)) << error;

  // Overlapping memory with an infinite-lifetime slot: always rejected.
  events[0].free_tick = kInfiniteTick;
  events[1].offset = 16;
  EXPECT_FALSE(ValidateLayout(events, /*total_floats=*/64, &error));

  // A slot past the end of the arena never validates.
  events[1].alloc_tick = 100;
  events[1].free_tick = 101;
  events[1].offset = 48;  // 48 + 32 > 64
  EXPECT_FALSE(ValidateLayout(events, /*total_floats=*/64, &error));
}

}  // namespace
}  // namespace exec
}  // namespace urcl
