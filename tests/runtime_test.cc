// Tests for the parallel runtime (runtime/parallel.h): pool lifecycle,
// deterministic chunking, exception propagation, nested-call safety, and the
// determinism contract — kernels must produce bitwise-identical results at
// any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/rng.h"
#include "runtime/parallel.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace {

namespace ag = ::urcl::autograd;
namespace top = ::urcl::ops;
using ag::Variable;

// Restores the global thread count on scope exit so tests do not leak state.
// Also forces oversubscription for its scope: these tests exist to exercise
// real cross-thread pool execution, which the hardware-concurrency cap would
// silently serialize on single-core CI machines.
class ThreadCountGuard {
 public:
  ThreadCountGuard()
      : saved_(runtime::GetNumThreads()),
        saved_oversubscribe_(runtime::OversubscribeEnabled()) {
    runtime::SetOversubscribe(true);
  }
  ~ThreadCountGuard() {
    runtime::SetOversubscribe(saved_oversubscribe_);
    runtime::SetNumThreads(saved_);
  }

 private:
  int saved_;
  bool saved_oversubscribe_;
};

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  return std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.NumElements()) * sizeof(float)) == 0;
}

TEST(RuntimeTest, SetAndGetNumThreads) {
  ThreadCountGuard guard;
  runtime::SetNumThreads(3);
  EXPECT_EQ(runtime::GetNumThreads(), 3);
  runtime::SetNumThreads(1);
  EXPECT_EQ(runtime::GetNumThreads(), 1);
  // Clamped to at least one thread.
  runtime::SetNumThreads(0);
  EXPECT_EQ(runtime::GetNumThreads(), 1);
  runtime::SetNumThreads(-5);
  EXPECT_EQ(runtime::GetNumThreads(), 1);
}

TEST(RuntimeTest, ParallelForCoversRangeExactlyOnce) {
  ThreadCountGuard guard;
  for (const int threads : {1, 2, 4}) {
    runtime::SetNumThreads(threads);
    std::vector<std::atomic<int>> hits(103);
    runtime::ParallelFor(0, 103, 7, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) hits[static_cast<size_t>(i)].fetch_add(1);
    });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " at " << threads << " threads";
    }
  }
}

TEST(RuntimeTest, ChunkBoundariesIndependentOfThreadCount) {
  ThreadCountGuard guard;
  // The set of [begin, end) chunks must depend only on (begin, end, grain).
  auto collect = [](int threads) {
    runtime::SetNumThreads(threads);
    std::mutex mu;
    std::set<std::pair<int64_t, int64_t>> chunks;
    runtime::ParallelFor(5, 100, 13, [&](int64_t begin, int64_t end) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace(begin, end);
    });
    return chunks;
  };
  const auto serial = collect(1);
  EXPECT_EQ(serial.size(), 8u);  // ceil(95 / 13)
  EXPECT_EQ(serial.begin()->first, 5);
  EXPECT_EQ(serial.rbegin()->second, 100);
  EXPECT_EQ(collect(2), serial);
  EXPECT_EQ(collect(4), serial);
}

TEST(RuntimeTest, EmptyAndTinyRanges) {
  ThreadCountGuard guard;
  runtime::SetNumThreads(4);
  int calls = 0;
  runtime::ParallelFor(3, 3, 8, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> covered{0};
  runtime::ParallelFor(0, 1, 1024, [&](int64_t begin, int64_t end) {
    covered.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(covered.load(), 1);
}

TEST(RuntimeTest, ExceptionPropagatesAndPoolSurvives) {
  ThreadCountGuard guard;
  for (const int threads : {1, 4}) {
    runtime::SetNumThreads(threads);
    EXPECT_THROW(runtime::ParallelFor(0, 64, 1,
                                      [&](int64_t begin, int64_t) {
                                        if (begin == 17) throw std::runtime_error("boom");
                                      }),
                 std::runtime_error);
    // The pool must be reusable after an exception.
    std::atomic<int64_t> total{0};
    runtime::ParallelFor(0, 64, 4, [&](int64_t begin, int64_t end) {
      total.fetch_add(end - begin);
    });
    EXPECT_EQ(total.load(), 64) << "after exception at " << threads << " threads";
  }
}

TEST(RuntimeTest, NestedParallelForRunsSerially) {
  ThreadCountGuard guard;
  runtime::SetNumThreads(4);
  EXPECT_FALSE(runtime::InParallelRegion());
  std::atomic<int64_t> inner_total{0};
  std::atomic<bool> saw_region{false};
  runtime::ParallelFor(0, 8, 1, [&](int64_t, int64_t) {
    if (runtime::InParallelRegion()) saw_region.store(true);
    // Nested call must not deadlock; it runs serially on the calling thread.
    runtime::ParallelFor(0, 10, 3, [&](int64_t begin, int64_t end) {
      inner_total.fetch_add(end - begin);
    });
  });
  EXPECT_TRUE(saw_region.load());
  EXPECT_FALSE(runtime::InParallelRegion());
  EXPECT_EQ(inner_total.load(), 8 * 10);
}

TEST(RuntimeTest, HardwareCapSkipsWorkersWithoutLosingChunks) {
  ThreadCountGuard guard;  // the guard forces oversubscription; turn it off
  runtime::SetNumThreads(8);
  runtime::SetOversubscribe(false);
  // With the cap active, a pool wider than the machine wakes at most
  // cores - 1 workers per region; the excess workers skip via the claim
  // budget. Coverage and pool reuse across many regions must be unaffected.
  for (int region = 0; region < 50; ++region) {
    std::vector<std::atomic<int>> hits(37);
    runtime::ParallelFor(0, 37, 3, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) hits[static_cast<size_t>(i)].fetch_add(1);
    });
    for (size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "region " << region << " index " << i;
    }
  }
  // Flipping oversubscription back on mid-stream re-engages every worker.
  runtime::SetOversubscribe(true);
  std::atomic<int64_t> total{0};
  runtime::ParallelFor(0, 64, 1,
                       [&](int64_t begin, int64_t end) { total.fetch_add(end - begin); });
  EXPECT_EQ(total.load(), 64);
}

// --- Determinism contract: bitwise-identical results at any thread count ----

TEST(RuntimeDeterminismTest, MatMulBitwiseIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  Rng rng(11);
  const Tensor a = Tensor::RandomNormal(Shape{3, 37, 19}, rng);
  const Tensor b = Tensor::RandomNormal(Shape{3, 19, 23}, rng);
  runtime::SetNumThreads(1);
  const Tensor serial = top::MatMul(a, b);
  for (const int threads : {2, 4}) {
    runtime::SetNumThreads(threads);
    EXPECT_TRUE(BitwiseEqual(top::MatMul(a, b), serial)) << threads << " threads";
  }
}

TEST(RuntimeDeterminismTest, ReductionsBitwiseIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  Rng rng(12);
  const Tensor a = Tensor::RandomNormal(Shape{5, 33, 17}, rng);
  runtime::SetNumThreads(1);
  const Tensor sum = top::Sum(a, {1});
  const Tensor mean = top::Mean(a, {0, 2});
  for (const int threads : {2, 4}) {
    runtime::SetNumThreads(threads);
    EXPECT_TRUE(BitwiseEqual(top::Sum(a, {1}), sum)) << threads << " threads";
    EXPECT_TRUE(BitwiseEqual(top::Mean(a, {0, 2}), mean)) << threads << " threads";
  }
}

TEST(RuntimeDeterminismTest, BroadcastElementwiseBitwiseIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  Rng rng(13);
  const Tensor a = Tensor::RandomNormal(Shape{7, 1, 31}, rng);
  const Tensor b = Tensor::RandomNormal(Shape{1, 29, 31}, rng);
  runtime::SetNumThreads(1);
  const Tensor add = top::Add(a, b);
  const Tensor div = top::Div(a, b);
  for (const int threads : {2, 4}) {
    runtime::SetNumThreads(threads);
    EXPECT_TRUE(BitwiseEqual(top::Add(a, b), add)) << threads << " threads";
    EXPECT_TRUE(BitwiseEqual(top::Div(a, b), div)) << threads << " threads";
  }
}

TEST(RuntimeDeterminismTest, TemporalConvForwardBackwardBitwiseIdentical) {
  ThreadCountGuard guard;
  Rng rng(14);
  const Tensor in_value = Tensor::RandomNormal(Shape{2, 3, 9, 16}, rng);
  const Tensor w_value = Tensor::RandomNormal(Shape{4, 3, 1, 2}, rng);
  auto run = [&]() {
    Variable in(in_value, true);
    Variable w(w_value, true);
    Variable loss = ag::Sum(ag::Square(ag::TemporalConv2d(in, w, 2)));
    loss.Backward();
    return std::make_tuple(loss.value(), in.grad(), w.grad());
  };
  runtime::SetNumThreads(1);
  const auto [value1, din1, dw1] = run();
  for (const int threads : {2, 4}) {
    runtime::SetNumThreads(threads);
    const auto [value, din, dw] = run();
    EXPECT_TRUE(BitwiseEqual(value, value1)) << threads << " threads";
    EXPECT_TRUE(BitwiseEqual(din, din1)) << threads << " threads";
    EXPECT_TRUE(BitwiseEqual(dw, dw1)) << threads << " threads";
  }
}

}  // namespace
}  // namespace urcl
