// Repo lint rules (tools/lint/repo_lint.h): each banned construct and format
// rule is proven to fire on a seeded fixture and to stay quiet on the
// idiomatic equivalent, plus suppression comments, comment/string stripping,
// and the include-guard path derivation.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/lint/layering.h"
#include "tools/lint/repo_lint.h"
#include "tools/lint/source.h"

namespace urcl {
namespace lint {
namespace {

std::vector<std::string> Rules(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  for (const Finding& finding : findings) rules.push_back(finding.rule);
  return rules;
}

bool Has(const std::vector<Finding>& findings, const std::string& rule) {
  for (const Finding& finding : findings) {
    if (finding.rule == rule) return true;
  }
  return false;
}

Options LibraryOptions() {
  Options options;
  options.library_rules = true;
  options.format_rules = true;
  return options;
}

TEST(RepoLintTest, FlagsRandAndSrand) {
  const auto f1 = LintFileContent("src/x.cc", "int v = rand();\n", LibraryOptions());
  EXPECT_TRUE(Has(f1, "banned-call/rand"));
  const auto f2 = LintFileContent("src/x.cc", "srand(42);\n", LibraryOptions());
  EXPECT_TRUE(Has(f2, "banned-call/rand"));
  const auto f3 = LintFileContent("src/x.cc", "std::rand ();\n", LibraryOptions());
  EXPECT_TRUE(Has(f3, "banned-call/rand"));
}

TEST(RepoLintTest, DoesNotFlagRandLookalikes) {
  const auto findings = LintFileContent(
      "src/x.cc",
      "std::mt19937 engine(seed);\n"
      "float r = brand(3);\n"
      "int operand(int x);\n"
      "// rand() only in a comment\n"
      "const char* s = \"rand()\";\n",
      LibraryOptions());
  EXPECT_FALSE(Has(findings, "banned-call/rand")) << FormatFindings(findings);
}

TEST(RepoLintTest, FlagsRawArrayNew) {
  const auto findings =
      LintFileContent("src/x.cc", "float* buf = new float[128];\n", LibraryOptions());
  EXPECT_TRUE(Has(findings, "banned-call/new-array"));
}

TEST(RepoLintTest, DoesNotFlagScalarNewOrMakeShared) {
  const auto findings = LintFileContent(
      "src/x.cc",
      "auto* pool = new BufferPool();\n"
      "auto p = std::make_shared<std::atomic<uint64_t>>(0);\n"
      "arr[new_index] = 1;\n",
      LibraryOptions());
  EXPECT_FALSE(Has(findings, "banned-call/new-array")) << FormatFindings(findings);
}

TEST(RepoLintTest, FlagsBarePrintfButNotStderrVariants) {
  const auto bad = LintFileContent("src/x.cc", "printf(\"%d\", v);\n", LibraryOptions());
  EXPECT_TRUE(Has(bad, "banned-call/printf"));
  const auto ok = LintFileContent(
      "src/x.cc",
      "std::fprintf(stderr, \"%d\", v);\n"
      "std::snprintf(buf, sizeof(buf), \"%d\", v);\n",
      LibraryOptions());
  EXPECT_FALSE(Has(ok, "banned-call/printf")) << FormatFindings(ok);
}

TEST(RepoLintTest, FlagsDirectClockReadsUnlessAllowed) {
  const std::string source = "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(Has(LintFileContent("src/x.cc", source, LibraryOptions()),
                  "banned-call/clock"));
  Options stopwatch = LibraryOptions();
  stopwatch.allow_clock_reads = true;
  EXPECT_FALSE(Has(LintFileContent("src/common/stopwatch.h", source, stopwatch),
                   "banned-call/clock"));
}

TEST(RepoLintTest, ClockRuleCoversNonLibraryTrees) {
  const std::string source = "auto t = std::chrono::steady_clock::now();\n";
  // tests/ and bench/ run without library rules but still ban clock reads.
  Options bench = LibraryOptions();
  bench.library_rules = false;
  EXPECT_TRUE(Has(LintFileContent("bench/bench_x.cc", source, bench), "banned-call/clock"));
  EXPECT_TRUE(Has(LintFileContent("tests/x_test.cc", source, bench), "banned-call/clock"));
  // The serving load generator is the named exemption (pacing deadline).
  Options load_generator = bench;
  load_generator.allow_clock_reads = true;
  EXPECT_FALSE(Has(LintFileContent("bench/bench_serving.cc", source, load_generator),
                   "banned-call/clock"));
  // examples/ disables the clock rule group entirely.
  Options example = bench;
  example.clock_rules = false;
  EXPECT_FALSE(Has(LintFileContent("examples/x.cpp", source, example), "banned-call/clock"));
}

TEST(RepoLintTest, FlagsStatementPositionStatusDiscards) {
  // Member call, free call and (void)-laundering, all in statement position.
  EXPECT_TRUE(Has(LintFileContent("src/x.cc", "  service.Predict(request, &response);\n",
                                  LibraryOptions()),
                  "status-discard"));
  EXPECT_TRUE(Has(LintFileContent("src/x.cc", "  ParseModelSnapshot(c, config, &out);\n",
                                  LibraryOptions()),
                  "status-discard"));
  EXPECT_TRUE(Has(LintFileContent("src/x.cc", "  (void)manager->Save(container);\n",
                                  LibraryOptions()),
                  "status-discard"));
  EXPECT_TRUE(Has(LintFileContent("src/x.cc", "  checkpoint::Container::Parse(bytes, &c);\n",
                                  LibraryOptions()),
                  "status-discard"));
}

TEST(RepoLintTest, DoesNotFlagConsumedOrDeclaredStatusCalls) {
  const std::vector<std::string> clean = {
      "  const Status status = service.Predict(request, &response);\n",
      "  if (!service.Predict(request, &response).ok()) return;\n",
      "  return manager.Save(container);\n",
      "  Status Save(const Container& container);\n",       // declaration
      "  virtual Status Predict(const R& r, P* p) const;\n",  // declaration
      "  EXPECT_TRUE(service.Predict(request, &response).ok());\n",
  };
  for (const std::string& source : clean) {
    EXPECT_FALSE(Has(LintFileContent("src/x.cc", source, LibraryOptions()), "status-discard"))
        << source;
  }
}

TEST(RepoLintTest, StatusDiscardSkipsContinuationLines) {
  // Line 2 starts with the call but continues the assignment on line 1.
  const auto findings = LintFileContent("src/x.cc",
                                        "  Status status =\n"
                                        "      FinishPrediction(request, out, &response);\n",
                                        LibraryOptions());
  EXPECT_FALSE(Has(findings, "status-discard"));
}

TEST(RepoLintTest, StatusDiscardRespectsGateAndSuppression) {
  Options tests_tree = LibraryOptions();
  tests_tree.status_rules = false;  // how LintTree configures tests/ and bench/
  EXPECT_FALSE(Has(LintFileContent("tests/x_test.cc", "  service.Predict(r, &p);\n",
                                   tests_tree),
                   "status-discard"));
  EXPECT_FALSE(Has(LintFileContent(
                       "src/x.cc",
                       "  service.Predict(r, &p);  // lint:allow(status-discard)\n",
                       LibraryOptions()),
                   "status-discard"));
}

TEST(RepoLintTest, ExecPoolAcquireFlagsDirectAcquisitions) {
  Options exec = LibraryOptions();
  exec.exec_arena_rules = true;  // how LintTree configures src/exec/
  EXPECT_TRUE(Has(LintFileContent("src/exec/x.cc",
                                  "  auto a = pool::BufferPool::Get().Acquire(n);\n", exec),
                  "exec-pool-acquire"));
  EXPECT_TRUE(Has(LintFileContent(
                      "src/exec/x.cc",
                      "  auto a = pool::BufferPool::Get().AcquireWithVersion(n, false);\n",
                      exec),
                  "exec-pool-acquire"));
  // The AcquireStorage funnel bypasses BufferPool::Get() syntactically but is
  // the same allocation path.
  EXPECT_TRUE(Has(LintFileContent("src/exec/x.cc", "  float* p = AcquireStorage(n);\n",
                                  exec),
                  "exec-pool-acquire"));
}

TEST(RepoLintTest, ExecPoolAcquireIgnoresLookalikesAndOtherTrees) {
  Options exec = LibraryOptions();
  exec.exec_arena_rules = true;
  const auto findings = LintFileContent(
      "src/exec/x.cc",
      "pool::BufferPool::Acquisition inner;\n"          // type mention
      "float* PlanArena::Acquire(int64_t count) {\n"    // the arena's own API
      "  bool p = pool::BufferPool::Get().poison_enabled();\n"
      "  return nullptr;\n"
      "}\n",
      exec);
  EXPECT_FALSE(Has(findings, "exec-pool-acquire")) << FormatFindings(findings);
  // Outside src/exec/ the rule is off: the pool is the allocator everywhere
  // else.
  EXPECT_FALSE(Has(LintFileContent("src/tensor/x.cc",
                                   "  auto a = pool::BufferPool::Get().Acquire(n);\n",
                                   LibraryOptions()),
                   "exec-pool-acquire"));
}

TEST(RepoLintTest, ExecPoolAcquireAllowsSameLineAndPrecedingLineSuppressions) {
  Options exec = LibraryOptions();
  exec.exec_arena_rules = true;
  const std::string same_line =
      "  base_ = pool::BufferPool::Get().AcquireWithVersion(  // lint:allow(exec-pool-acquire)\n"
      "      total, false);\n";
  EXPECT_FALSE(Has(LintFileContent("src/exec/arena.cc", same_line, exec), "exec-pool-acquire"));
  // arena.cc also places the marker alone on the line above the acquisition
  // (the call line itself has no room before the column limit).
  const std::string preceding_line =
      "  // lint:allow(exec-pool-acquire)\n"
      "  owner->inner = pool::BufferPool::Get().AcquireWithVersion(count, zero_fill);\n";
  EXPECT_FALSE(
      Has(LintFileContent("src/exec/arena.cc", preceding_line, exec), "exec-pool-acquire"));
  // The marker only reaches one line down: two lines above does not suppress.
  const std::string too_far =
      "  // lint:allow(exec-pool-acquire)\n"
      "  int unrelated = 0;\n"
      "  owner->inner = pool::BufferPool::Get().AcquireWithVersion(count, zero_fill);\n";
  EXPECT_TRUE(Has(LintFileContent("src/exec/arena.cc", too_far, exec), "exec-pool-acquire"));
}

TEST(RepoLintTest, ServeMetricsRegistryFlagsDirectUse) {
  Options serve = LibraryOptions();
  serve.serve_metrics_rules = true;  // how LintTree configures src/serve/
  EXPECT_TRUE(Has(LintFileContent(
                      "src/serve/x.cc",
                      "  obs::MetricsRegistry::Get().GetCounter(\"x\").Add(1);\n", serve),
                  "serve-metrics-registry"));
  // Any registry mention counts, not just .Get() — cached references and
  // aliases reintroduce the same hot-path lookup hazard.
  EXPECT_TRUE(Has(LintFileContent("src/serve/x.cc",
                                  "  auto& registry = obs::MetricsRegistry::Get();\n",
                                  serve),
                  "serve-metrics-registry"));
}

TEST(RepoLintTest, ServeMetricsRegistryIgnoresFacadeAndOtherTrees) {
  Options serve = LibraryOptions();
  serve.serve_metrics_rules = true;
  // The facade handles are the sanctioned route.
  const auto findings = LintFileContent(
      "src/serve/x.cc",
      "  obs::CounterHandle queries{\"urcl.serve.queries\"};\n"
      "  // MetricsRegistry is fine in a comment\n"
      "  Metrics().queries.Add();\n",
      serve);
  EXPECT_FALSE(Has(findings, "serve-metrics-registry")) << FormatFindings(findings);
  // Outside src/serve/ the registry is the normal init-time route.
  EXPECT_FALSE(Has(LintFileContent(
                       "src/core/x.cc",
                       "  obs::MetricsRegistry::Get().GetCounter(\"x\").Add(1);\n",
                       LibraryOptions()),
                   "serve-metrics-registry"));
}

TEST(RepoLintTest, ServeMetricsRegistryHonorsSuppressions) {
  Options serve = LibraryOptions();
  serve.serve_metrics_rules = true;
  const std::string same_line =
      "  auto& r = obs::MetricsRegistry::Get();  // lint:allow(serve-metrics-registry)\n";
  EXPECT_FALSE(
      Has(LintFileContent("src/serve/x.cc", same_line, serve), "serve-metrics-registry"));
  const std::string preceding_line =
      "  // lint:allow(serve-metrics-registry)\n"
      "  auto& r = obs::MetricsRegistry::Get();\n";
  EXPECT_FALSE(Has(LintFileContent("src/serve/x.cc", preceding_line, serve),
                   "serve-metrics-registry"));
}

TEST(RepoLintTest, SuppressionCommentSilencesOneRule) {
  const auto findings = LintFileContent(
      "src/x.cc", "int v = rand();  // lint:allow(banned-call/rand)\n", LibraryOptions());
  EXPECT_FALSE(Has(findings, "banned-call/rand")) << FormatFindings(findings);
}

TEST(RepoLintTest, StripsBlockCommentsAcrossLines) {
  const auto findings = LintFileContent("src/x.cc",
                                        "/* rand() is banned\n"
                                        "   printf(\"x\") too */\n"
                                        "int y = 0;\n",
                                        LibraryOptions());
  EXPECT_FALSE(Has(findings, "banned-call/rand")) << FormatFindings(findings);
  EXPECT_FALSE(Has(findings, "banned-call/printf")) << FormatFindings(findings);
}

TEST(RepoLintTest, FormatRulesFire) {
  const std::string long_line(120, 'x');
  const auto findings = LintFileContent("src/x.cc",
                                        "int a = 1; \n"
                                        "\tint b = 2;\n"
                                        "int c = 3;\r\n" +
                                            long_line + "\n" + "no final newline",
                                        LibraryOptions());
  EXPECT_TRUE(Has(findings, "format/trailing-whitespace"));
  EXPECT_TRUE(Has(findings, "format/tab"));
  EXPECT_TRUE(Has(findings, "format/crlf"));
  EXPECT_TRUE(Has(findings, "format/line-length"));
  EXPECT_TRUE(Has(findings, "format/final-newline"));
}

TEST(RepoLintTest, CleanFileHasNoFindings) {
  const auto findings = LintFileContent("src/x.cc",
                                        "#include \"tensor/tensor.h\"\n"
                                        "\n"
                                        "int Working() { return 1; }\n",
                                        LibraryOptions());
  EXPECT_TRUE(findings.empty()) << FormatFindings(findings);
}

TEST(RepoLintTest, IncludeGuardMustMatchPath) {
  Options options = LibraryOptions();
  options.expected_guard = ExpectedGuard("tensor/pool.h");
  EXPECT_EQ(options.expected_guard, "URCL_TENSOR_POOL_H_");
  const std::string good =
      "#ifndef URCL_TENSOR_POOL_H_\n#define URCL_TENSOR_POOL_H_\n#endif\n";
  EXPECT_FALSE(Has(LintFileContent("src/tensor/pool.h", good, options), "include-guard"));
  const std::string bad = "#ifndef POOL_H\n#define POOL_H\n#endif\n";
  EXPECT_TRUE(Has(LintFileContent("src/tensor/pool.h", bad, options), "include-guard"));
  const std::string missing = "int x;\n";
  EXPECT_TRUE(Has(LintFileContent("src/tensor/pool.h", missing, options), "include-guard"));
}

TEST(RepoLintTest, LockRuleFlagsRawStdSynchronization) {
  Options lock = LibraryOptions();
  lock.lock_rules = true;  // how LintTree configures src/ (minus the wrapper header)
  EXPECT_TRUE(Has(LintFileContent("src/x.h", "  std::mutex mu_;\n", lock),
                  "lock/unannotated-mutex"));
  EXPECT_TRUE(Has(LintFileContent("src/x.cc", "  std::lock_guard<std::mutex> g(mu_);\n",
                                  lock),
                  "lock/unannotated-mutex"));
  EXPECT_TRUE(Has(LintFileContent("src/x.h", "  std::condition_variable cv_;\n", lock),
                  "lock/unannotated-mutex"));
  EXPECT_TRUE(Has(LintFileContent("src/x.h", "  std::shared_mutex window_mu_;\n", lock),
                  "lock/unannotated-mutex"));
}

TEST(RepoLintTest, LockRuleAcceptsAnnotatedWrappers) {
  Options lock = LibraryOptions();
  lock.lock_rules = true;
  const auto findings = LintFileContent(
      "src/x.h",
      "  Mutex mu_;\n"
      "  CondVar cv_;\n"
      "  int64_t ticks_ URCL_GUARDED_BY(mu_) = 0;\n"
      "  void Tick() URCL_EXCLUDES(mu_) { MutexLock lock(mu_); ++ticks_; }\n",
      lock);
  EXPECT_FALSE(Has(findings, "lock/unannotated-mutex")) << FormatFindings(findings);
  EXPECT_FALSE(Has(findings, "lock/bare-lock")) << FormatFindings(findings);
}

TEST(RepoLintTest, LockRuleFlagsBareLockTransitions) {
  Options lock = LibraryOptions();
  lock.lock_rules = true;
  EXPECT_TRUE(Has(LintFileContent("src/x.cc", "  mu_.Unlock();\n", lock), "lock/bare-lock"));
  EXPECT_TRUE(Has(LintFileContent("src/x.cc", "  mu_.Lock();\n", lock), "lock/bare-lock"));
  EXPECT_TRUE(Has(LintFileContent("src/x.cc", "  guard->unlock();\n", lock),
                  "lock/bare-lock"));
  EXPECT_TRUE(Has(LintFileContent("src/x.cc", "  rw_.UnlockShared();\n", lock),
                  "lock/bare-lock"));
  EXPECT_TRUE(Has(LintFileContent("src/x.cc", "  cv_.wait(mu_.native());\n", lock),
                  "lock/bare-lock"));
}

TEST(RepoLintTest, LockRuleAcceptsTryLockAdoptAndWeakPtrLock) {
  Options lock = LibraryOptions();
  lock.lock_rules = true;
  const auto findings = LintFileContent(
      "src/x.cc",
      "  if (!plan_mu_.TryLock()) return std::nullopt;\n"
      "  MutexLock lock(plan_mu_, kAdoptLock);\n"
      "  auto snapshot = plan_snapshot_.lock();\n",  // std::weak_ptr::lock()
      lock);
  EXPECT_FALSE(Has(findings, "lock/bare-lock")) << FormatFindings(findings);
}

TEST(RepoLintTest, LockRulesAreGatedOff) {
  // tests/, bench/, examples/ and the wrapper header itself run without the
  // lock group (Options default).
  const auto findings =
      LintFileContent("tests/x_test.cc", "  std::mutex mu;\n  mu.unlock();\n",
                      Options{.library_rules = false});
  EXPECT_FALSE(Has(findings, "lock/unannotated-mutex")) << FormatFindings(findings);
  EXPECT_FALSE(Has(findings, "lock/bare-lock")) << FormatFindings(findings);
}

SourceFile Src(const std::string& path, const std::string& content) {
  return AnalyzeSource(path, content);
}

TEST(RepoLintTest, LayeringAcceptsStrictlyDownwardIncludes) {
  const auto findings = CheckLayering({
      Src("src/tensor/pool.h", "#include \"common/status.h\"\n#include \"obs/metrics.h\"\n"),
      Src("src/serve/service.cc",
          "#include \"serve/service.h\"\n#include \"obs/facade.h\"\n"),
      Src("src/serve/service.h", "#include \"tensor/pool.h\"\n"),
  });
  EXPECT_TRUE(findings.empty()) << FormatFindings(findings);
}

TEST(RepoLintTest, LayeringFlagsUpwardInclude) {
  // common is rank 0; reaching up into runtime is the seeded violation that
  // motivated moving ApplyRuntimeFlags into runtime/runtime_flags.h.
  const auto findings =
      CheckLayering({Src("src/common/flags.cc", "#include \"runtime/parallel.h\"\n")});
  ASSERT_EQ(Rules(findings), std::vector<std::string>{"layering/upward-include"});
  EXPECT_NE(findings[0].detail.find("strictly downward"), std::string::npos)
      << findings[0].detail;
  // Same-rank cross-module edges are upward too: graph and autograd are peers.
  const auto peers =
      CheckLayering({Src("src/graph/window.h", "#include \"autograd/tape.h\"\n")});
  EXPECT_TRUE(Has(peers, "layering/upward-include")) << FormatFindings(peers);
}

TEST(RepoLintTest, LayeringFlagsIncludeCycle) {
  const auto findings = CheckLayering({
      Src("src/tensor/a.h", "#include \"tensor/b.h\"\n"),
      Src("src/tensor/b.h", "#include \"tensor/c.h\"\n"),
      Src("src/tensor/c.h", "#include \"tensor/a.h\"\n"),
  });
  EXPECT_TRUE(Has(findings, "layering/include-cycle")) << FormatFindings(findings);
  bool described = false;
  for (const Finding& finding : findings) {
    if (finding.rule == "layering/include-cycle" &&
        finding.detail.find("src/tensor/a.h") != std::string::npos &&
        finding.detail.find("->") != std::string::npos) {
      described = true;
    }
  }
  EXPECT_TRUE(described) << FormatFindings(findings);
}

TEST(RepoLintTest, LayeringFlagsServeBypassingObsFacade) {
  const auto bypass = CheckLayering(
      {Src("src/serve/service.cc", "#include \"serve/service.h\"\n"
                                   "#include \"obs/metrics.h\"\n"),
       Src("src/serve/service.h", "#include \"common/status.h\"\n")});
  EXPECT_TRUE(Has(bypass, "layering/obs-facade")) << FormatFindings(bypass);
  const auto facade = CheckLayering(
      {Src("src/serve/service.cc", "#include \"serve/service.h\"\n"
                                   "#include \"obs/facade.h\"\n"),
       Src("src/serve/service.h", "#include \"common/status.h\"\n")});
  EXPECT_FALSE(Has(facade, "layering/obs-facade")) << FormatFindings(facade);
}

TEST(RepoLintTest, LayeringFlagsSelfIncludeNotFirst) {
  const auto findings = CheckLayering({
      Src("src/tensor/pool.cc", "#include \"common/status.h\"\n"
                                "#include \"tensor/pool.h\"\n"),
      Src("src/tensor/pool.h", "#include \"common/status.h\"\n"),
  });
  EXPECT_TRUE(Has(findings, "layering/self-include-first")) << FormatFindings(findings);
  // With the own header first the same pair is clean.
  const auto clean = CheckLayering({
      Src("src/tensor/pool.cc", "#include \"tensor/pool.h\"\n"
                                "#include \"common/status.h\"\n"),
      Src("src/tensor/pool.h", "#include \"common/status.h\"\n"),
  });
  EXPECT_FALSE(Has(clean, "layering/self-include-first")) << FormatFindings(clean);
}

TEST(RepoLintTest, LayeringFlagsUnknownModule) {
  const auto findings = CheckLayering({Src("src/widgets/w.h", "int x;\n")});
  EXPECT_TRUE(Has(findings, "layering/unknown-module")) << FormatFindings(findings);
}

TEST(RepoLintTest, LayeringIgnoresCommentedAndSystemIncludes) {
  const auto findings = CheckLayering({
      Src("src/common/status.h",
          "#include <string>\n"
          "// #include \"serve/service.h\"\n"
          "/* #include \"core/learner.h\" */\n"),
  });
  EXPECT_TRUE(findings.empty()) << FormatFindings(findings);
}

TEST(RepoLintTest, LayerRankTableOrdersTheDag) {
  EXPECT_EQ(LayerRank("common"), 0);
  EXPECT_LT(LayerRank("obs"), LayerRank("runtime"));
  EXPECT_LT(LayerRank("runtime"), LayerRank("tensor"));
  EXPECT_EQ(LayerRank("graph"), LayerRank("autograd"));  // peers, mutually invisible
  EXPECT_LT(LayerRank("core"), LayerRank("baselines"));
  EXPECT_LT(LayerRank("baselines"), LayerRank("serve"));
  EXPECT_EQ(LayerRank("widgets"), -1);
}

TEST(RepoLintTest, FormatFindingsIncludesFileLineAndRule) {
  const auto findings = LintFileContent("src/x.cc", "int v = rand();\n", LibraryOptions());
  ASSERT_FALSE(findings.empty());
  const std::string report = FormatFindings(findings);
  EXPECT_NE(report.find("src/x.cc:1:"), std::string::npos) << report;
  EXPECT_NE(report.find("[banned-call/rand]"), std::string::npos) << report;
  EXPECT_EQ(Rules(findings)[0], "banned-call/rand");
}

}  // namespace
}  // namespace lint
}  // namespace urcl
