#include "augment/augmentation.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/generator.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace augment {
namespace {

class AugmentTest : public ::testing::Test {
 protected:
  AugmentTest() : graph_(graph::GridGraph(3, 4)), rng_(7) {
    Rng data_rng(1);
    observations_ = Tensor::RandomUniform(Shape{2, 6, 12, 2}, data_rng, 0.1f, 1.0f);
  }
  graph::SensorNetwork graph_;
  Tensor observations_;
  Rng rng_;
};

TEST_F(AugmentTest, AllPreserveShapes) {
  const auto augmentations = MakeDefaultAugmentations();
  ASSERT_EQ(augmentations.size(), 5u);
  for (const auto& augmentation : augmentations) {
    const AugmentedView view = augmentation->Apply(observations_, graph_, rng_);
    EXPECT_EQ(view.observations.shape(), observations_.shape()) << augmentation->name();
    EXPECT_EQ(view.adjacency.shape(), Shape({12, 12})) << augmentation->name();
    EXPECT_TRUE(ops::AllFinite(view.observations)) << augmentation->name();
  }
}

TEST_F(AugmentTest, NamesMatchPaperOrder) {
  const auto augmentations = MakeDefaultAugmentations();
  EXPECT_EQ(augmentations[0]->name(), "DN");
  EXPECT_EQ(augmentations[1]->name(), "DE");
  EXPECT_EQ(augmentations[2]->name(), "SG");
  EXPECT_EQ(augmentations[3]->name(), "AE");
  EXPECT_EQ(augmentations[4]->name(), "TS");
}

TEST_F(AugmentTest, DropNodesMasksFeaturesAndAdjacency) {
  DropNodes dn(0.25f);  // 3 of 12 nodes
  const AugmentedView view = dn.Apply(observations_, graph_, rng_);
  // Count nodes whose features are all zero across batch/time/channels.
  int64_t zeroed = 0;
  for (int64_t n = 0; n < 12; ++n) {
    bool all_zero = true;
    for (int64_t b = 0; b < 2 && all_zero; ++b) {
      for (int64_t t = 0; t < 6 && all_zero; ++t) {
        for (int64_t c = 0; c < 2 && all_zero; ++c) {
          all_zero = view.observations.At({b, t, n, c}) == 0.0f;
        }
      }
    }
    if (all_zero) {
      ++zeroed;
      // Its adjacency row and column must be zero too (Eq. 6).
      for (int64_t j = 0; j < 12; ++j) {
        EXPECT_FLOAT_EQ(view.adjacency.At({n, j}), 0.0f);
        EXPECT_FLOAT_EQ(view.adjacency.At({j, n}), 0.0f);
      }
    }
  }
  EXPECT_EQ(zeroed, 3);
}

TEST_F(AugmentTest, DropNodesZeroRatioIsIdentity) {
  DropNodes dn(0.0f);
  const AugmentedView view = dn.Apply(observations_, graph_, rng_);
  EXPECT_TRUE(ops::AllClose(view.observations, observations_));
  EXPECT_TRUE(ops::AllClose(view.adjacency, graph_.AdjacencyMatrix()));
}

TEST_F(AugmentTest, DropEdgeOnlyRemovesWeakEdges) {
  DropEdge de(/*sample_ratio=*/1.0f, /*threshold_quantile=*/0.5f);
  const AugmentedView view = de.Apply(observations_, graph_, rng_);
  const Tensor original = graph_.AdjacencyMatrix();
  int64_t removed = 0;
  for (int64_t i = 0; i < 12; ++i) {
    for (int64_t j = 0; j < 12; ++j) {
      const float before = original.At({i, j});
      const float after = view.adjacency.At({i, j});
      EXPECT_TRUE(after == before || after == 0.0f);  // never adds or rescales
      removed += (before != 0.0f && after == 0.0f);
    }
  }
  // Grid has uniform weights 1.0; the median threshold equals the weight so
  // no edge is strictly below it -> nothing removed. Use a weighted graph.
  graph::SensorNetwork weighted(3);
  weighted.AddEdge(0, 1, 0.1f);
  weighted.AddEdge(1, 2, 5.0f);
  Rng rng2(3);
  Tensor obs = Tensor::Ones(Shape{1, 4, 3, 1});
  const AugmentedView view2 = de.Apply(obs, weighted, rng2);
  EXPECT_FLOAT_EQ(view2.adjacency.At({0, 1}), 0.0f);  // weak edge dropped
  EXPECT_FLOAT_EQ(view2.adjacency.At({1, 2}), 5.0f);  // strong edge kept
  (void)removed;
}

TEST_F(AugmentTest, SubGraphKeepsConnectedSubset) {
  SubGraph sg(/*walk_length_factor=*/0.5f);
  const AugmentedView view = sg.Apply(observations_, graph_, rng_);
  // At least one node kept, at least one masked (walk shorter than graph).
  std::set<int64_t> kept;
  for (int64_t n = 0; n < 12; ++n) {
    bool nonzero = false;
    for (int64_t t = 0; t < 6 && !nonzero; ++t) {
      nonzero = view.observations.At({0, t, n, 0}) != 0.0f;
    }
    if (nonzero) kept.insert(n);
  }
  EXPECT_GE(kept.size(), 1u);
  EXPECT_LT(kept.size(), 12u);
}

TEST_F(AugmentTest, AddEdgeConnectsDistantPairs) {
  AddEdge ae(/*add_ratio=*/1.0f, /*min_hops=*/3);
  const AugmentedView view = ae.Apply(observations_, graph_, rng_);
  const Tensor original = graph_.AdjacencyMatrix();
  int64_t added = 0;
  for (int64_t i = 0; i < 12; ++i) {
    for (int64_t j = 0; j < 12; ++j) {
      if (original.At({i, j}) == 0.0f && view.adjacency.At({i, j}) != 0.0f) {
        ++added;
        // Weight is the dot-product similarity of positive features -> > 0.
        EXPECT_GT(view.adjacency.At({i, j}), 0.0f);
        // Symmetric insertion.
        EXPECT_FLOAT_EQ(view.adjacency.At({i, j}), view.adjacency.At({j, i}));
      }
    }
  }
  EXPECT_GT(added, 0);
}

TEST_F(AugmentTest, AddEdgeNeverTouchesExistingEdges) {
  AddEdge ae(0.5f, 3);
  const AugmentedView view = ae.Apply(observations_, graph_, rng_);
  const Tensor original = graph_.AdjacencyMatrix();
  for (int64_t i = 0; i < 12; ++i) {
    for (int64_t j = 0; j < 12; ++j) {
      if (original.At({i, j}) != 0.0f) {
        EXPECT_FLOAT_EQ(view.adjacency.At({i, j}), original.At({i, j}));
      }
    }
  }
}

TEST_F(AugmentTest, TimeShiftingKeepsGraphUntouched) {
  TimeShifting ts;
  const AugmentedView view = ts.Apply(observations_, graph_, rng_);
  EXPECT_TRUE(ops::AllClose(view.adjacency, graph_.AdjacencyMatrix()));
  EXPECT_EQ(view.observations.shape(), observations_.shape());
}

TEST_F(AugmentTest, TimeShiftingChangesObservations) {
  TimeShifting ts;
  int64_t changed = 0;
  for (int trial = 0; trial < 5; ++trial) {
    const AugmentedView view = ts.Apply(observations_, graph_, rng_);
    if (!ops::AllClose(view.observations, observations_)) ++changed;
  }
  EXPECT_GT(changed, 0);
}

TEST(SliceAndWarpTest, FullSliceIsIdentity) {
  Rng rng(1);
  Tensor obs = Tensor::RandomNormal(Shape{1, 8, 2, 1}, rng);
  const Tensor warped = TimeShifting::SliceAndWarp(obs, 0, 8);
  EXPECT_TRUE(ops::AllClose(warped, obs, 1e-5f));
}

TEST(SliceAndWarpTest, InterpolatesBetweenEndpoints) {
  // Ramp 0..7, slice [2, 5] (values 2,3,4,5), warp to 8 steps: endpoints are
  // preserved and values are monotone within [2, 5].
  Tensor obs(Shape{1, 8, 1, 1});
  for (int64_t t = 0; t < 8; ++t) obs.Set({0, t, 0, 0}, static_cast<float>(t));
  const Tensor warped = TimeShifting::SliceAndWarp(obs, 2, 4);
  EXPECT_FLOAT_EQ(warped.At({0, 0, 0, 0}), 2.0f);
  EXPECT_FLOAT_EQ(warped.At({0, 7, 0, 0}), 5.0f);
  for (int64_t t = 1; t < 8; ++t) {
    EXPECT_GE(warped.At({0, t, 0, 0}), warped.At({0, t - 1, 0, 0}));
  }
}

TEST(PickTwoDistinctTest, AlwaysDifferent) {
  auto augmentations = MakeDefaultAugmentations();
  Rng rng(11);
  std::set<std::string> first_names;
  for (int i = 0; i < 50; ++i) {
    const auto [a, b] = PickTwoDistinct(augmentations, rng);
    EXPECT_NE(a, b);
    EXPECT_NE(a->name(), b->name());
    first_names.insert(a->name());
  }
  EXPECT_GE(first_names.size(), 3u);  // variety over trials
}

}  // namespace
}  // namespace augment
}  // namespace urcl
