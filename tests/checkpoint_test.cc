// Crash-safety tests: the checkpoint container/rotation formats, per-component
// state round-trips, fault injection, and the end-to-end guarantee that a run
// killed at any point and resumed from disk is bitwise identical to an
// uninterrupted run.
#include "checkpoint/container.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "checkpoint/crc32.h"
#include "checkpoint/manager.h"
#include "common/fault_injector.h"
#include "common/rng.h"
#include "core/strategies.h"
#include "core/urcl.h"
#include "data/normalizer.h"
#include "data/stream.h"
#include "data/synthetic.h"
#include "nn/optimizer.h"
#include "replay/replay_buffer.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace {

namespace fs = std::filesystem;

// Fresh scratch directory per test (gtest TempDir is shared across tests).
std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/urcl_ckpt_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

TEST(Crc32Test, KnownVectors) {
  // The standard CRC-32 check value.
  EXPECT_EQ(checkpoint::Crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(checkpoint::Crc32(std::string("")), 0x00000000u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t crc = 0;
  for (const char c : data) crc = checkpoint::Crc32Update(crc, &c, 1);
  EXPECT_EQ(crc, checkpoint::Crc32(data));
}

// ---------------------------------------------------------------------------
// Container format
// ---------------------------------------------------------------------------

checkpoint::Container MakeTestContainer() {
  checkpoint::Container container;
  container.Add("meta", std::string("\x01\x00\x00\x00", 4));
  container.Add("model", "some binary model payload");
  container.Add("empty", "");
  return container;
}

TEST(ContainerTest, RoundTrip) {
  const checkpoint::Container container = MakeTestContainer();
  checkpoint::Container back;
  ASSERT_TRUE(checkpoint::Container::Parse(container.SerializeToString(), &back).ok());
  ASSERT_EQ(back.sections().size(), 3u);
  EXPECT_EQ(*back.Find("meta"), std::string("\x01\x00\x00\x00", 4));
  EXPECT_EQ(*back.Find("model"), "some binary model payload");
  EXPECT_EQ(*back.Find("empty"), "");
  EXPECT_EQ(back.Find("absent"), nullptr);
}

TEST(ContainerTest, EveryFlippedByteIsRejected) {
  const std::string bytes = MakeTestContainer().SerializeToString();
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x40);
    checkpoint::Container out;
    const Status status = checkpoint::Container::Parse(corrupt, &out);
    EXPECT_FALSE(status.ok()) << "flipping byte " << i << " went undetected";
  }
}

TEST(ContainerTest, EveryTruncationIsRejected) {
  const std::string bytes = MakeTestContainer().SerializeToString();
  for (size_t len = 0; len < bytes.size(); ++len) {
    checkpoint::Container out;
    EXPECT_FALSE(checkpoint::Container::Parse(bytes.substr(0, len), &out).ok())
        << "truncation to " << len << " bytes went undetected";
  }
}

TEST(ContainerTest, VersionMismatchIsActionable) {
  // Hand-build a container with a future version and a *correct* body CRC, so
  // the version check (not the CRC) is what rejects it.
  std::string bytes = MakeTestContainer().SerializeToString();
  const uint32_t future = 999;
  std::memcpy(bytes.data() + sizeof(uint64_t), &future, sizeof(uint32_t));
  const uint32_t crc = checkpoint::Crc32(
      bytes.data() + sizeof(uint64_t), bytes.size() - sizeof(uint64_t) - sizeof(uint32_t));
  std::memcpy(bytes.data() + bytes.size() - sizeof(uint32_t), &crc, sizeof(uint32_t));
  checkpoint::Container out;
  const Status status = checkpoint::Container::Parse(bytes, &out);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("version 999"), std::string::npos) << status.message();
}

TEST(ContainerTest, NotACheckpointIsRejected) {
  checkpoint::Container out;
  const Status status = checkpoint::Container::Parse("definitely not a checkpoint", &out);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("magic"), std::string::npos) << status.message();
}

TEST(ContainerTest, AtomicWriteLeavesNoTempFile) {
  const std::string dir = ScratchDir("atomic");
  const std::string path = dir + "/state.urcl";
  ASSERT_TRUE(MakeTestContainer().WriteFile(path).ok());
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  checkpoint::Container back;
  EXPECT_TRUE(checkpoint::Container::ReadFile(path, &back).ok());
}

// ---------------------------------------------------------------------------
// Rotation manager
// ---------------------------------------------------------------------------

TEST(ManagerTest, RotationKeepsNewestN) {
  const std::string dir = ScratchDir("rotate");
  checkpoint::CheckpointManager manager({dir, /*retention=*/3, "ckpt"});
  for (int i = 0; i < 5; ++i) {
    checkpoint::Container c;
    c.Add("meta", "save " + std::to_string(i));
    ASSERT_TRUE(manager.Save(c).ok());
  }
  EXPECT_EQ(manager.last_sequence(), 5);
  EXPECT_EQ(manager.ListCheckpoints().size(), 3u);
  checkpoint::Container newest;
  ASSERT_TRUE(manager.LoadNewestValid(&newest, nullptr).ok());
  EXPECT_EQ(*newest.Find("meta"), "save 4");
}

TEST(ManagerTest, CorruptNewestFallsBackToPrevious) {
  const std::string dir = ScratchDir("fallback");
  checkpoint::CheckpointManager manager({dir, 3, "ckpt"});
  for (int i = 0; i < 2; ++i) {
    checkpoint::Container c;
    c.Add("meta", "save " + std::to_string(i));
    ASSERT_TRUE(manager.Save(c).ok());
  }
  // Flip one byte in the middle of the newest file.
  const std::vector<std::string> files = manager.ListCheckpoints();
  ASSERT_EQ(files.size(), 2u);
  {
    std::fstream f(files.back(), std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(20);
    char byte = 0;
    f.seekg(20);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0xFF);
    f.seekp(20);
    f.write(&byte, 1);
  }
  checkpoint::Container out;
  std::string diagnostics;
  ASSERT_TRUE(manager.LoadNewestValid(&out, &diagnostics).ok());
  EXPECT_EQ(*out.Find("meta"), "save 0");  // fell back past the corrupted one
  EXPECT_NE(diagnostics.find("rejected"), std::string::npos) << diagnostics;
}

TEST(ManagerTest, EmptyDirectoryIsAnError) {
  const std::string dir = ScratchDir("empty");
  checkpoint::CheckpointManager manager({dir, 3, "ckpt"});
  checkpoint::Container out;
  const Status status = manager.LoadNewestValid(&out, nullptr);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("no valid checkpoint"), std::string::npos);
}

TEST(ManagerTest, ContinuesSequenceAcrossRestart) {
  const std::string dir = ScratchDir("restart");
  {
    checkpoint::CheckpointManager manager({dir, 3, "ckpt"});
    checkpoint::Container c;
    c.Add("meta", "first process");
    ASSERT_TRUE(manager.Save(c).ok());
  }
  checkpoint::CheckpointManager manager({dir, 3, "ckpt"});
  checkpoint::Container c;
  c.Add("meta", "second process");
  ASSERT_TRUE(manager.Save(c).ok());
  EXPECT_EQ(manager.last_sequence(), 2);
  checkpoint::Container newest;
  ASSERT_TRUE(manager.LoadNewestValid(&newest, nullptr).ok());
  EXPECT_EQ(*newest.Find("meta"), "second process");
}

// ---------------------------------------------------------------------------
// Component state round-trips: a restored component must continue its stream
// exactly where the saved one left off.
// ---------------------------------------------------------------------------

TEST(StateRoundTripTest, RngContinuesBitwise) {
  Rng original(123);
  for (int i = 0; i < 57; ++i) original.Uniform();
  const std::string state = original.SaveState();

  Rng restored(999);  // different seed: state must fully override it
  ASSERT_TRUE(restored.LoadState(state));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(original.engine()(), restored.engine()());
  }
}

TEST(StateRoundTripTest, RngRejectsGarbageState) {
  Rng rng(7);
  const uint64_t next = Rng(7).engine()();
  EXPECT_FALSE(rng.LoadState("not an engine state"));
  EXPECT_EQ(rng.engine()(), next);  // untouched on failure
}

TEST(StateRoundTripTest, AdamContinuesBitwise) {
  Rng rng(5);
  auto make_params = [&rng]() {
    return std::vector<autograd::Variable>{
        autograd::Variable(Tensor::RandomNormal(Shape{3, 4}, rng), true),
        autograd::Variable(Tensor::RandomNormal(Shape{4}, rng), true)};
  };
  auto step = [](nn::Adam& adam, std::vector<autograd::Variable>& params, float scale) {
    adam.ZeroGrad();
    for (autograd::Variable& p : params) {
      p.AccumulateGrad(ops::MulScalar(p.value(), scale));
    }
    adam.Step();
  };

  std::vector<autograd::Variable> params_a = make_params();
  // Same initial values for the b copies.
  std::vector<autograd::Variable> params_b;
  for (const autograd::Variable& p : params_a) {
    params_b.emplace_back(p.value().Clone(), true);
  }

  nn::Adam a(params_a, 0.01f);
  for (int i = 0; i < 7; ++i) step(a, params_a, 0.1f + 0.01f * i);

  std::ostringstream saved;
  a.SaveState(saved);
  nn::Adam b(params_b, 0.01f);
  for (size_t i = 0; i < params_b.size(); ++i) params_b[i].SetValue(params_a[i].value().Clone());
  std::istringstream in(saved.str());
  ASSERT_TRUE(b.LoadState(in).ok());
  EXPECT_EQ(b.step_count(), a.step_count());

  for (int i = 0; i < 5; ++i) {
    step(a, params_a, 0.2f);
    step(b, params_b, 0.2f);
    for (size_t j = 0; j < params_a.size(); ++j) {
      const Tensor& ta = params_a[j].value();
      const Tensor& tb = params_b[j].value();
      ASSERT_EQ(std::memcmp(ta.data(), tb.data(),
                            static_cast<size_t>(ta.NumElements()) * sizeof(float)),
                0)
          << "param " << j << " diverged after restored step " << i;
    }
  }
}

TEST(StateRoundTripTest, AdamRejectsMismatchedState) {
  Rng rng(6);
  std::vector<autograd::Variable> params{
      autograd::Variable(Tensor::RandomNormal(Shape{2, 2}, rng), true)};
  nn::Adam a(params, 0.01f);
  std::ostringstream saved;
  a.SaveState(saved);

  std::vector<autograd::Variable> other{
      autograd::Variable(Tensor::RandomNormal(Shape{2, 2}, rng), true),
      autograd::Variable(Tensor::RandomNormal(Shape{3}, rng), true)};
  nn::Adam b(other, 0.01f);
  std::istringstream in(saved.str());
  const Status status = b.LoadState(in);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("parameters"), std::string::npos) << status.message();
}

replay::ReplayItem MakeItem(Rng& rng, int64_t slot) {
  replay::ReplayItem item;
  item.inputs = Tensor::RandomNormal(Shape{4, 3, 2}, rng);
  item.targets = Tensor::RandomNormal(Shape{1, 3, 1}, rng);
  item.time_slot = slot;
  return item;
}

TEST(StateRoundTripTest, ReplayBufferContinuesBitwise) {
  Rng data_rng(9);
  replay::ReplayBuffer a(8, replay::BufferPolicy::kReservoir, 77);
  // Overfill so the reservoir RNG has advanced.
  std::vector<replay::ReplayItem> inserts;
  for (int64_t i = 0; i < 30; ++i) inserts.push_back(MakeItem(data_rng, i));
  for (const replay::ReplayItem& item : inserts) a.Add(item);

  std::ostringstream saved;
  a.Serialize(saved);
  replay::ReplayBuffer b(8, replay::BufferPolicy::kReservoir, 1);  // different seed
  std::istringstream in(saved.str());
  ASSERT_TRUE(b.Deserialize(in).ok());

  EXPECT_EQ(b.size(), a.size());
  EXPECT_EQ(b.inserted(), a.inserted());
  EXPECT_EQ(b.evictions(), a.evictions());

  // Future evictions must follow the same reservoir stream.
  Rng more_rng(10);
  for (int64_t i = 0; i < 40; ++i) {
    const replay::ReplayItem item = MakeItem(more_rng, 100 + i);
    a.Add(item);
    b.Add(item);
  }
  ASSERT_EQ(b.size(), a.size());
  for (int64_t i = 0; i < a.size(); ++i) {
    const replay::ReplayItem& ia = a.Get(i);
    const replay::ReplayItem& ib = b.Get(i);
    EXPECT_EQ(ia.time_slot, ib.time_slot) << "slot " << i;
    EXPECT_EQ(std::memcmp(ia.inputs.data(), ib.inputs.data(),
                          static_cast<size_t>(ia.inputs.NumElements()) * sizeof(float)),
              0);
  }
}

TEST(StateRoundTripTest, ReplayBufferRejectsCapacityMismatch) {
  Rng rng(4);
  replay::ReplayBuffer a(8, replay::BufferPolicy::kReservoir, 1);
  a.Add(MakeItem(rng, 0));
  std::ostringstream saved;
  a.Serialize(saved);
  replay::ReplayBuffer b(16, replay::BufferPolicy::kReservoir, 1);
  std::istringstream in(saved.str());
  const Status status = b.Deserialize(in);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("capacity"), std::string::npos) << status.message();
}

// ---------------------------------------------------------------------------
// Fault injector
// ---------------------------------------------------------------------------

class FaultInjectorTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FaultInjector::Instance().Reset(); }
  void TearDown() override { fault::FaultInjector::Instance().Reset(); }
};

TEST_F(FaultInjectorTest, ParsesFullSpec) {
  fault::FaultInjector& injector = fault::FaultInjector::Instance();
  const std::vector<std::string> errors =
      injector.Configure("nan=0.01;inf=0.001;drop=0.05;dup=0.02;seed=9;kill=batch_done:40");
  EXPECT_TRUE(errors.empty());
  EXPECT_TRUE(injector.enabled());
  EXPECT_DOUBLE_EQ(injector.nan_rate(), 0.01);
  EXPECT_DOUBLE_EQ(injector.inf_rate(), 0.001);
  EXPECT_DOUBLE_EQ(injector.drop_rate(), 0.05);
  EXPECT_DOUBLE_EQ(injector.dup_rate(), 0.02);
}

TEST_F(FaultInjectorTest, ReportsMalformedClauses) {
  fault::FaultInjector& injector = fault::FaultInjector::Instance();
  const std::vector<std::string> errors =
      injector.Configure("nan=2.0;bogus=1;kill=oops;drop=0.5");
  EXPECT_EQ(errors.size(), 3u);
  EXPECT_DOUBLE_EQ(injector.nan_rate(), 0.0);   // rejected clause not applied
  EXPECT_DOUBLE_EQ(injector.drop_rate(), 0.5);  // valid clause still applied
}

TEST_F(FaultInjectorTest, KillPointTriggersOnNthHitThenDisarms) {
  fault::FaultInjector& injector = fault::FaultInjector::Instance();
  injector.ArmKill("p", 3, fault::KillMode::kStop);
  EXPECT_FALSE(injector.AtKillPoint("p"));
  EXPECT_FALSE(injector.AtKillPoint("p"));
  EXPECT_TRUE(injector.AtKillPoint("p"));
  EXPECT_FALSE(injector.AtKillPoint("p"));  // disarmed after firing
  EXPECT_EQ(injector.counters().kills, 1);
  EXPECT_FALSE(injector.AtKillPoint("other"));
}

TEST_F(FaultInjectorTest, ExitModeTerminatesWith137) {
  EXPECT_EXIT(
      {
        fault::FaultInjector::Instance().ArmKill("boom", 1, fault::KillMode::kExit);
        fault::FaultInjector::Instance().AtKillPoint("boom");
      },
      ::testing::ExitedWithCode(137), "simulated crash at kill point 'boom'");
}

TEST_F(FaultInjectorTest, InputFaultsCorruptSeries) {
  fault::FaultInjector& injector = fault::FaultInjector::Instance();
  ASSERT_TRUE(injector.Configure("nan=0.05;inf=0.02;drop=0.05;seed=11").empty());
  Tensor series = Tensor::Ones(Shape{40, 6, 2});
  data::ApplyInputFaults(&series);
  EXPECT_GT(injector.counters().nan_cells, 0);
  EXPECT_GT(injector.counters().inf_cells, 0);
  EXPECT_GT(injector.counters().dropped_sensors, 0);
  EXPECT_FALSE(series.AllFinite());
}

// ---------------------------------------------------------------------------
// End-to-end crash safety on the URCL training loop
// ---------------------------------------------------------------------------

core::UrclConfig TinyConfig(int64_t nodes) {
  core::UrclConfig config;
  config.encoder.num_nodes = nodes;
  config.encoder.in_channels = 2;
  config.encoder.input_steps = 12;
  config.encoder.hidden_channels = 4;
  config.encoder.latent_channels = 8;
  config.encoder.num_layers = 3;
  config.encoder.adaptive_embedding_dim = 3;
  config.decoder_hidden = 16;
  config.proj_hidden = 8;
  config.batch_size = 4;
  config.max_batches_per_epoch = 4;
  config.buffer_capacity = 32;
  config.replay_sample_count = 2;
  config.rmir_scan_size = 4;
  config.rmir_candidate_pool = 3;
  config.seed = 21;
  return config;
}

struct ProtocolFixture {
  std::unique_ptr<data::SyntheticTraffic> generator;
  data::MinMaxNormalizer normalizer;
  std::unique_ptr<data::StDataset> dataset;
  std::unique_ptr<data::StreamSplitter> stream;
};

ProtocolFixture MakeProtocolFixture(int64_t nodes, uint64_t seed) {
  ProtocolFixture f;
  data::TrafficConfig config;
  config.num_nodes = nodes;
  // Long enough that every stage's test split exceeds one window after the
  // base/incremental and train/val/test splits.
  config.num_days = 6;
  config.steps_per_day = 64;
  config.seed = seed;
  f.generator = std::make_unique<data::SyntheticTraffic>(config);
  Tensor series = f.generator->GenerateSeries();
  f.normalizer = data::MinMaxNormalizer::Fit(series);
  f.dataset = std::make_unique<data::StDataset>(f.normalizer.Transform(series),
                                                data::WindowConfig{12, 1, 0});
  data::StreamConfig stream_config;
  stream_config.num_incremental = 2;
  f.stream = std::make_unique<data::StreamSplitter>(*f.dataset, stream_config);
  return f;
}

core::ProtocolOptions FastProtocol() {
  core::ProtocolOptions options;
  options.epochs_per_stage = 2;
  options.eval_mode = core::EvalMode::kCurrentStage;
  return options;
}

struct RunOutcome {
  std::vector<float> loss_history;
  Tensor prediction;
};

// The uninterrupted reference: full protocol in one process, checkpointing
// enabled (writing checkpoints must not change the training math).
RunOutcome RunUninterrupted(const ProtocolFixture& f, const std::string& dir) {
  core::UrclTrainer trainer(TinyConfig(6), f.generator->network());
  if (!dir.empty()) {
    trainer.EnableCheckpointing({dir, /*every_steps=*/3, /*retention=*/3});
  }
  core::RunContinualProtocol(trainer, *f.stream, f.normalizer, 0, FastProtocol());
  const auto [x, y] = f.dataset->MakeBatch({0, 5});
  return RunOutcome{trainer.loss_history(), trainer.Predict(x)};
}

void ExpectBitwiseEqual(const RunOutcome& a, const RunOutcome& b, const std::string& what) {
  ASSERT_EQ(a.loss_history.size(), b.loss_history.size()) << what;
  for (size_t i = 0; i < a.loss_history.size(); ++i) {
    const float la = a.loss_history[i];
    const float lb = b.loss_history[i];
    ASSERT_EQ(std::memcmp(&la, &lb, sizeof(float)), 0)
        << what << ": loss diverged at step " << i << " (" << la << " vs " << lb << ")";
  }
  ASSERT_EQ(a.prediction.shape(), b.prediction.shape()) << what;
  EXPECT_EQ(std::memcmp(a.prediction.data(), b.prediction.data(),
                        static_cast<size_t>(a.prediction.NumElements()) * sizeof(float)),
            0)
      << what << ": predictions diverged";
}

class KillResumeTest : public ::testing::TestWithParam<std::pair<const char*, int64_t>> {
 protected:
  void SetUp() override { fault::FaultInjector::Instance().Reset(); }
  void TearDown() override { fault::FaultInjector::Instance().Reset(); }
};

TEST_P(KillResumeTest, ResumedRunIsBitwiseIdentical) {
  const auto [kill_point, hits] = GetParam();
  ProtocolFixture f = MakeProtocolFixture(6, 31);

  // Scratch names carry the hit count: under parallel ctest the batch_done_5
  // and batch_done_13 cases run as concurrent processes, and a shared dir
  // would let one case's remove_all delete the other's live checkpoints.
  const std::string tag = std::string(kill_point) + "_" + std::to_string(hits);
  const std::string ref_dir = ScratchDir("ref_" + tag);
  const RunOutcome reference = RunUninterrupted(f, ref_dir);
  ASSERT_FALSE(reference.loss_history.empty());

  // Interrupted run: cooperative kill (same crash semantics as _Exit for the
  // on-disk state — the trainer object is discarded, never reused — without
  // forking a child process under gtest).
  const std::string dir = ScratchDir("kill_" + tag);
  {
    fault::FaultInjector::Instance().ArmKill(kill_point, hits, fault::KillMode::kStop);
    core::UrclTrainer victim(TinyConfig(6), f.generator->network());
    victim.EnableCheckpointing({dir, 3, 3});
    core::RunContinualProtocol(victim, *f.stream, f.normalizer, 0, FastProtocol());
    ASSERT_TRUE(victim.TrainingInterrupted()) << "kill point '" << kill_point
                                              << "' never fired; hits=" << hits;
    ASSERT_LT(victim.loss_history().size(), reference.loss_history.size());
  }
  fault::FaultInjector::Instance().Reset();

  // Resume in a "new process": a fresh trainer restored purely from disk.
  core::UrclTrainer resumed(TinyConfig(6), f.generator->network());
  resumed.EnableCheckpointing({dir, 3, 3});
  std::string diagnostics;
  const Status restored = resumed.RestoreFromCheckpointDir(&diagnostics);
  ASSERT_TRUE(restored.ok()) << restored.message() << "\n" << diagnostics;
  core::RunContinualProtocol(resumed, *f.stream, f.normalizer, 0, FastProtocol());
  EXPECT_FALSE(resumed.TrainingInterrupted());

  const auto [x, y] = f.dataset->MakeBatch({0, 5});
  ExpectBitwiseEqual(reference, RunOutcome{resumed.loss_history(), resumed.Predict(x)},
                     "kill=" + tag);
}

INSTANTIATE_TEST_SUITE_P(
    KillPoints, KillResumeTest,
    ::testing::Values(std::make_pair("batch_done", int64_t{5}),
                      std::make_pair("batch_done", int64_t{13}),
                      std::make_pair("checkpoint_written", int64_t{2}),
                      std::make_pair("stage_begin", int64_t{2}),
                      std::make_pair("stage_end", int64_t{1})),
    [](const ::testing::TestParamInfo<std::pair<const char*, int64_t>>& info) {
      return std::string(info.param.first) + "_" + std::to_string(info.param.second);
    });

class TrainerCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FaultInjector::Instance().Reset(); }
  void TearDown() override { fault::FaultInjector::Instance().Reset(); }
};

TEST_F(TrainerCheckpointTest, CorruptNewestCheckpointFallsBack) {
  ProtocolFixture f = MakeProtocolFixture(6, 31);
  const std::string dir = ScratchDir("trainer_fallback");
  {
    core::UrclTrainer trainer(TinyConfig(6), f.generator->network());
    trainer.EnableCheckpointing({dir, 3, 3});
    core::RunContinualProtocol(trainer, *f.stream, f.normalizer, 0, FastProtocol());
  }
  checkpoint::CheckpointManager manager({dir, 3, "ckpt"});
  const std::vector<std::string> files = manager.ListCheckpoints();
  ASSERT_GE(files.size(), 2u);
  {
    // Flip one payload byte of the newest checkpoint.
    std::fstream file(files.back(), std::ios::in | std::ios::out | std::ios::binary);
    file.seekg(0, std::ios::end);
    const std::streampos size = file.tellg();
    file.seekg(static_cast<std::streamoff>(size) / 2);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    file.seekp(static_cast<std::streamoff>(size) / 2);
    file.write(&byte, 1);
  }
  core::UrclTrainer restored(TinyConfig(6), f.generator->network());
  restored.EnableCheckpointing({dir, 3, 3});
  std::string diagnostics;
  ASSERT_TRUE(restored.RestoreFromCheckpointDir(&diagnostics).ok()) << diagnostics;
  EXPECT_NE(diagnostics.find("CRC mismatch"), std::string::npos) << diagnostics;
}

TEST_F(TrainerCheckpointTest, SeedMismatchIsRejected) {
  ProtocolFixture f = MakeProtocolFixture(6, 31);
  const std::string dir = ScratchDir("seed_mismatch");
  {
    core::UrclTrainer trainer(TinyConfig(6), f.generator->network());
    trainer.EnableCheckpointing({dir, 0, 3});
    trainer.TrainStage(f.stream->Stage(0).train, 1);
  }
  core::UrclConfig other = TinyConfig(6);
  other.seed = 99;
  core::UrclTrainer restored(other, f.generator->network());
  restored.EnableCheckpointing({dir, 0, 3});
  const Status status = restored.RestoreFromCheckpointDir(nullptr);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("seed"), std::string::npos) << status.message();
}

TEST_F(TrainerCheckpointTest, NanInjectionQuarantinesAndKeepsLossFinite) {
  fault::FaultInjector& injector = fault::FaultInjector::Instance();
  ASSERT_TRUE(injector.Configure("drop=0.003;seed=42").empty());
  // GenerateSeries applies the input faults; Fit must shrug off the NaNs.
  ProtocolFixture f = MakeProtocolFixture(6, 31);
  ASSERT_GT(injector.counters().dropped_sensors, 0);

  core::UrclTrainer trainer(TinyConfig(6), f.generator->network());
  trainer.TrainStage(f.stream->Stage(0).train, 2);
  trainer.TrainStage(f.stream->Stage(1).train, 2);
  EXPECT_GT(trainer.quarantined_batches(), 0);
  ASSERT_FALSE(trainer.loss_history().empty())
      << "every batch was quarantined; training never progressed";
  for (const float loss : trainer.loss_history()) {
    ASSERT_TRUE(std::isfinite(loss));
  }
}

TEST_F(TrainerCheckpointTest, DuplicatedBatchesAreCountedAndTrained) {
  fault::FaultInjector& injector = fault::FaultInjector::Instance();
  ProtocolFixture f = MakeProtocolFixture(6, 31);
  core::UrclTrainer plain(TinyConfig(6), f.generator->network());
  plain.TrainStage(f.stream->Stage(0).train, 1);

  ASSERT_TRUE(injector.Configure("dup=1.0;seed=3").empty());
  core::UrclTrainer duplicated(TinyConfig(6), f.generator->network());
  duplicated.TrainStage(f.stream->Stage(0).train, 1);
  EXPECT_EQ(duplicated.loss_history().size(), 2 * plain.loss_history().size());
  EXPECT_GT(injector.counters().duplicated_batches, 0);
}

TEST_F(TrainerCheckpointTest, RestoreWithoutEnableIsAnError) {
  ProtocolFixture f = MakeProtocolFixture(6, 31);
  core::UrclTrainer trainer(TinyConfig(6), f.generator->network());
  EXPECT_FALSE(trainer.SaveFullCheckpoint().ok());
  EXPECT_FALSE(trainer.RestoreFromCheckpointDir(nullptr).ok());
}

}  // namespace
}  // namespace urcl
