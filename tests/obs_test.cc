// Observability layer tests: metrics registry concurrency, Chrome-trace span
// recording/nesting under multi-threaded hammering, the per-op autograd
// profiler against a hand-timed two-op graph, and the end-to-end export path
// a trained UrclTrainer produces.
//
// All obs state is process-global, so every test runs under a fixture that
// saves/restores the configuration and wipes trace rings, profiler shards
// and registry counters between tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "autograd/ops.h"
#include "common/stopwatch.h"
#include "core/strategies.h"
#include "core/urcl.h"
#include "data/presets.h"
#include "data/stream.h"
#include "data/synthetic.h"
#include "obs/facade.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/learning.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/profiler.h"
#include "obs/slo.h"
#include "obs/trace.h"

namespace urcl {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser — enough to validate the exporters' output without a
// third-party dependency. Accepts what ChromeTraceJson / ToJson / ProfilerJson
// emit: objects, arrays, strings (with escapes), numbers, booleans, null.
// ---------------------------------------------------------------------------

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  bool Has(const std::string& key) const { return object.count(key) > 0; }
  const Json& At(const std::string& key) const { return object.at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  // Parses the whole input; sets *ok to false on any syntax error or
  // trailing garbage.
  Json Parse(bool* ok) {
    *ok = true;
    ok_ = true;
    pos_ = 0;
    Json value = ParseValue();
    SkipWs();
    if (pos_ != text_.size()) ok_ = false;
    *ok = ok_;
    return value;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }
  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    ok_ = false;
    return false;
  }
  bool ConsumeLiteral(const char* literal) {
    const size_t n = std::string(literal).size();
    if (text_.compare(pos_, n, literal) == 0) {
      pos_ += n;
      return true;
    }
    ok_ = false;
    return false;
  }

  Json ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) {
      ok_ = false;
      return Json{};
    }
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't') {
      Json v;
      v.type = Json::Type::kBool;
      v.boolean = true;
      ConsumeLiteral("true");
      return v;
    }
    if (c == 'f') {
      Json v;
      v.type = Json::Type::kBool;
      ConsumeLiteral("false");
      return v;
    }
    if (c == 'n') {
      ConsumeLiteral("null");
      return Json{};
    }
    return ParseNumber();
  }

  Json ParseObject() {
    Json v;
    v.type = Json::Type::kObject;
    Consume('{');
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return v;
    }
    while (ok_) {
      Json key = ParseString();
      Consume(':');
      v.object[key.str] = ParseValue();
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      Consume('}');
      break;
    }
    return v;
  }

  Json ParseArray() {
    Json v;
    v.type = Json::Type::kArray;
    Consume('[');
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return v;
    }
    while (ok_) {
      v.array.push_back(ParseValue());
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      Consume(']');
      break;
    }
    return v;
  }

  Json ParseString() {
    Json v;
    v.type = Json::Type::kString;
    if (!Consume('"')) return v;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char e = text_[pos_++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': pos_ += 4; c = '?'; break;  // names here are ASCII
          default: c = e; break;
        }
      }
      v.str.push_back(c);
    }
    if (!Consume('"')) ok_ = false;
    return v;
  }

  Json ParseNumber() {
    Json v;
    v.type = Json::Type::kNumber;
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      ok_ = false;
      return v;
    }
    v.number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
  bool ok_ = true;
};

Json ParseJsonOrDie(const std::string& text) {
  bool ok = false;
  Json v = JsonParser(text).Parse(&ok);
  EXPECT_TRUE(ok) << "invalid JSON: " << text.substr(0, 200);
  return v;
}

// ---------------------------------------------------------------------------
// Fixture: isolate the process-global obs state per test.
// ---------------------------------------------------------------------------

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = obs::Current();
    obs::Configure(obs::ObsConfig{});  // everything off
    obs::ClearTrace();
    obs::ResetProfiler();
    obs::MetricsRegistry::Get().ResetCounters();
  }
  void TearDown() override {
    obs::Configure(saved_);
    obs::ClearTrace();
    obs::ResetProfiler();
    obs::MetricsRegistry::Get().ResetCounters();
  }

  obs::ObsConfig saved_;
};

// ---------------------------------------------------------------------------
// Switchboard
// ---------------------------------------------------------------------------

TEST_F(ObsTest, ConfigureSetsAndClearsEachFlagIndependently) {
  EXPECT_FALSE(obs::MetricsEnabled());
  EXPECT_FALSE(obs::TraceEnabled());
  EXPECT_FALSE(obs::ProfilerEnabled());

  obs::ObsConfig config;
  config.metrics = true;
  obs::Configure(config);
  EXPECT_TRUE(obs::MetricsEnabled());
  EXPECT_FALSE(obs::TraceEnabled());

  config.metrics = false;
  config.trace = true;
  config.profiler = true;
  obs::Configure(config);
  EXPECT_FALSE(obs::MetricsEnabled());
  EXPECT_TRUE(obs::TraceEnabled());
  EXPECT_TRUE(obs::ProfilerEnabled());

  const obs::ObsConfig current = obs::Current();
  EXPECT_FALSE(current.metrics);
  EXPECT_TRUE(current.trace);
  EXPECT_TRUE(current.profiler);
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST_F(ObsTest, CounterConcurrentAddsSumExactly) {
  obs::Counter& counter = obs::MetricsRegistry::Get().GetCounter("test.obs.hammered_counter");
  counter.Reset();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST_F(ObsTest, GaugeConcurrentAddsAreLossless) {
  obs::Gauge& gauge = obs::MetricsRegistry::Get().GetGauge("test.obs.hammered_gauge");
  gauge.Set(0.0);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kPerThread; ++i) gauge.Add(1.0);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_DOUBLE_EQ(gauge.Value(), static_cast<double>(kThreads * kPerThread));
}

TEST_F(ObsTest, HistogramBucketsObservationsExactlyUnderConcurrency) {
  obs::Histogram& histogram =
      obs::MetricsRegistry::Get().GetHistogram("test.obs.hammered_histogram", {1.0, 10.0, 100.0});
  histogram.Reset();
  // Each thread observes the same fixed set, so per-bucket totals are exact
  // multiples regardless of interleaving.
  const std::vector<double> values = {0.5, 1.0, 5.0, 10.0, 50.0, 1000.0};
  constexpr int kThreads = 8;
  constexpr int kRounds = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, &values] {
      for (int round = 0; round < kRounds; ++round) {
        for (const double v : values) histogram.Observe(v);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const obs::Histogram::Snapshot snap = histogram.Snap();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.bucket_counts.size(), 4u);
  constexpr uint64_t kMultiplier = kThreads * kRounds;
  EXPECT_EQ(snap.bucket_counts[0], 2 * kMultiplier);  // 0.5, 1.0 (inclusive edge)
  EXPECT_EQ(snap.bucket_counts[1], 2 * kMultiplier);  // 5.0, 10.0
  EXPECT_EQ(snap.bucket_counts[2], 1 * kMultiplier);  // 50.0
  EXPECT_EQ(snap.bucket_counts[3], 1 * kMultiplier);  // 1000.0 -> +Inf
  EXPECT_EQ(snap.count, 6 * kMultiplier);
  EXPECT_DOUBLE_EQ(snap.sum, 1066.5 * static_cast<double>(kMultiplier));
}

TEST_F(ObsTest, ExponentialBucketsGrowByFactor) {
  const std::vector<double> bounds = obs::ExponentialBuckets(1000.0, 4.0, 5);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_DOUBLE_EQ(bounds[0], 1000.0);
  EXPECT_DOUBLE_EQ(bounds[1], 4000.0);
  EXPECT_DOUBLE_EQ(bounds[4], 256000.0);
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
}

TEST_F(ObsTest, RegistryExportsJsonAndPrometheus) {
  auto& registry = obs::MetricsRegistry::Get();
  registry.GetCounter("test.obs.export_counter").Add(42);
  registry.GetGauge("test.obs.export_gauge").Set(2.5);
  registry.GetHistogram("test.obs.export_histogram", {1.0, 2.0}).Observe(1.5);

  const Json json = ParseJsonOrDie(registry.ToJson());
  ASSERT_TRUE(json.Has("counters"));
  EXPECT_DOUBLE_EQ(json.At("counters").At("test.obs.export_counter").number, 42.0);
  EXPECT_DOUBLE_EQ(json.At("gauges").At("test.obs.export_gauge").number, 2.5);
  const Json& histogram = json.At("histograms").At("test.obs.export_histogram");
  EXPECT_DOUBLE_EQ(histogram.At("count").number, 1.0);

  const std::string prom = registry.ToPrometheus();
  EXPECT_NE(prom.find("test_obs_export_counter 42"), std::string::npos);
  EXPECT_NE(prom.find("test_obs_export_gauge 2.5"), std::string::npos);
  EXPECT_NE(prom.find("test_obs_export_histogram"), std::string::npos);
  // Dots never leak into the Prometheus names.
  EXPECT_EQ(prom.find("test.obs"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------------

TEST_F(ObsTest, DisabledTraceRecordsNoEvents) {
  ASSERT_FALSE(obs::TraceEnabled());
  for (int i = 0; i < 100; ++i) {
    URCL_TRACE_SCOPE("should_not_appear");
    URCL_TRACE_SCOPE("nested", i);
  }
  EXPECT_EQ(obs::TraceEventCount(), 0u);
  const Json trace = ParseJsonOrDie(obs::ChromeTraceJson());
  for (const Json& event : trace.At("traceEvents").array) {
    EXPECT_NE(event.At("ph").str, "X");  // metadata rows only
  }
}

// Collected view of one "X" event for nesting checks.
struct SpanEvent {
  std::string name;
  double ts_us = 0.0;
  double end_us = 0.0;
};

TEST_F(ObsTest, EightThreadHammerProducesProperlyNestedSpansPerThread) {
  obs::ObsConfig config;
  config.trace = true;
  obs::Configure(config);

  constexpr int kThreads = 8;
  constexpr int kIterations = 200;  // 3 spans each; well under ring capacity
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      obs::SetThreadName("hammer-" + std::to_string(t));
      for (int i = 0; i < kIterations; ++i) {
        URCL_TRACE_SCOPE("outer");
        {
          URCL_TRACE_SCOPE("middle", i);
          URCL_TRACE_SCOPE("inner");
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(obs::TraceEventCount(), static_cast<size_t>(kThreads * kIterations * 3));

  const Json trace = ParseJsonOrDie(obs::ChromeTraceJson());
  EXPECT_EQ(trace.At("otherData").At("dropped_events").number, 0.0);

  std::map<int, std::vector<SpanEvent>> by_tid;
  std::map<int, std::string> thread_names;
  for (const Json& event : trace.At("traceEvents").array) {
    const int tid = static_cast<int>(event.At("tid").number);
    if (event.At("ph").str == "M") {
      thread_names[tid] = event.At("args").At("name").str;
    } else if (event.At("ph").str == "X") {
      SpanEvent span;
      span.name = event.At("name").str;
      span.ts_us = event.At("ts").number;
      span.end_us = span.ts_us + event.At("dur").number;
      by_tid[tid].push_back(span);
    }
  }

  int hammer_threads_seen = 0;
  for (auto& [tid, spans] : by_tid) {
    if (thread_names[tid].rfind("hammer-", 0) != 0) continue;  // e.g. pool workers
    ++hammer_threads_seen;
    ASSERT_EQ(spans.size(), static_cast<size_t>(kIterations * 3)) << thread_names[tid];

    // Sorted by start (outermost first on ties), every span must nest: it
    // either starts after the enclosing span ends, or ends within it.
    std::sort(spans.begin(), spans.end(), [](const SpanEvent& a, const SpanEvent& b) {
      if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
      return a.end_us > b.end_us;
    });
    constexpr double kEpsUs = 0.01;  // ns->us double rounding slack
    std::vector<SpanEvent> stack;
    for (const SpanEvent& span : spans) {
      while (!stack.empty() && span.ts_us >= stack.back().end_us - kEpsUs) stack.pop_back();
      if (!stack.empty()) {
        EXPECT_LE(span.end_us, stack.back().end_us + kEpsUs)
            << span.name << " straddles " << stack.back().name << " in " << thread_names[tid];
      }
      stack.push_back(span);
    }
    // Span names survived the ring (including the indexed form).
    EXPECT_EQ(spans.front().name, "outer");
    bool saw_indexed = false;
    for (const SpanEvent& span : spans) saw_indexed |= span.name == "middle_7";
    EXPECT_TRUE(saw_indexed);
  }
  EXPECT_EQ(hammer_threads_seen, kThreads);
}

TEST_F(ObsTest, RingOverflowDropsOldestAndCountsThem) {
  obs::ObsConfig config;
  config.trace = true;
  obs::Configure(config);

  // The shrunken capacity only applies to rings created afterwards, so the
  // spans must come from a brand-new thread.
  obs::SetTraceRingCapacity(8);
  std::thread recorder([] {
    obs::SetThreadName("tiny-ring");
    for (int i = 0; i < 20; ++i) {
      URCL_TRACE_SCOPE("overflow", i);
    }
  });
  recorder.join();
  obs::SetTraceRingCapacity(65536);  // restore the default for later rings

  const Json trace = ParseJsonOrDie(obs::ChromeTraceJson());
  EXPECT_EQ(trace.At("otherData").At("dropped_events").number, 12.0);
  // The ring keeps the newest 8 events: overflow_12 .. overflow_19.
  std::vector<std::string> kept;
  for (const Json& event : trace.At("traceEvents").array) {
    if (event.At("ph").str == "X" && event.At("name").str.rfind("overflow_", 0) == 0) {
      kept.push_back(event.At("name").str);
    }
  }
  ASSERT_EQ(kept.size(), 8u);
  EXPECT_EQ(kept.front(), "overflow_12");
  EXPECT_EQ(kept.back(), "overflow_19");
}

// ---------------------------------------------------------------------------
// Per-op autograd profiler
// ---------------------------------------------------------------------------

TEST_F(ObsTest, DisabledProfilerRecordsNothing) {
  ASSERT_FALSE(obs::ProfilerEnabled());
  autograd::Variable a(Tensor::Ones(Shape{4, 4}), true);
  autograd::Variable loss = autograd::Sum(autograd::MatMul(a, a));
  loss.Backward();
  EXPECT_TRUE(obs::ProfilerSnapshot().empty());
}

TEST_F(ObsTest, ProfilerAccountsTwoOpGraphAgainstWallClock) {
  obs::ObsConfig config;
  config.profiler = true;
  obs::Configure(config);

  autograd::Variable a(Tensor::Ones(Shape{64, 64}), true);
  autograd::Variable b(Tensor::Full(Shape{64, 64}, 0.5f), true);
  const Stopwatch wall;
  autograd::Variable product = autograd::MatMul(a, b);
  autograd::Variable loss = autograd::Sum(product);
  loss.Backward();
  const int64_t wall_ns = wall.ElapsedNs();

  const std::map<std::string, obs::OpProfile> snapshot = obs::ProfilerSnapshot();
  ASSERT_TRUE(snapshot.count("matmul"));
  ASSERT_TRUE(snapshot.count("sum"));
  const obs::OpProfile& matmul = snapshot.at("matmul");
  const obs::OpProfile& sum = snapshot.at("sum");

  EXPECT_EQ(matmul.forward_calls, 1u);
  EXPECT_EQ(matmul.backward_calls, 1u);
  EXPECT_EQ(matmul.forward_bytes, 64u * 64u * sizeof(float));   // output tensor
  EXPECT_EQ(matmul.backward_bytes, 64u * 64u * sizeof(float));  // upstream grad
  EXPECT_EQ(sum.forward_calls, 1u);
  EXPECT_EQ(sum.backward_calls, 1u);
  EXPECT_EQ(sum.forward_bytes, sizeof(float));  // scalar output

  // Profiled time is a sub-interval of the hand-timed window.
  int64_t profiled_ns = 0;
  for (const auto& [name, profile] : snapshot) {
    EXPECT_GE(profile.forward_ns, 0) << name;
    EXPECT_GE(profile.backward_ns, 0) << name;
    profiled_ns += profile.forward_ns + profile.backward_ns;
  }
  EXPECT_GT(profiled_ns, 0);
  EXPECT_LE(profiled_ns, wall_ns);

  // Reset empties the shards.
  obs::ResetProfiler();
  EXPECT_TRUE(obs::ProfilerSnapshot().empty());
}

TEST_F(ObsTest, ProfilerAttributesDelegatingOpsToTheInnerOp) {
  obs::ObsConfig config;
  config.profiler = true;
  obs::Configure(config);

  // Neg delegates to MulScalar: its time lands on mul_scalar and the stack
  // unwinds cleanly (no phantom "neg" row, no stuck starts).
  autograd::Variable x(Tensor::Ones(Shape{8}), true);
  autograd::Variable y = autograd::Neg(x);
  ASSERT_TRUE(y.IsValid());
  const std::map<std::string, obs::OpProfile> snapshot = obs::ProfilerSnapshot();
  EXPECT_EQ(snapshot.count("neg"), 0u);
  ASSERT_TRUE(snapshot.count("mul_scalar"));
  EXPECT_EQ(snapshot.at("mul_scalar").forward_calls, 1u);
  EXPECT_EQ(obs::internal::ForwardStackDepth(), 0u);
}

TEST_F(ObsTest, ProfilerJsonParsesAndMatchesSnapshot) {
  obs::ObsConfig config;
  config.profiler = true;
  obs::Configure(config);

  autograd::Variable a(Tensor::Ones(Shape{4, 4}), true);
  autograd::Variable loss = autograd::Sum(autograd::Relu(a));
  loss.Backward();

  const Json json = ParseJsonOrDie(obs::ProfilerJson());
  ASSERT_TRUE(json.Has("ops"));
  ASSERT_TRUE(json.At("ops").Has("relu"));
  const Json& relu = json.At("ops").At("relu");
  EXPECT_DOUBLE_EQ(relu.At("forward").At("calls").number, 1.0);
  EXPECT_DOUBLE_EQ(relu.At("forward").At("bytes").number, 4.0 * 4.0 * sizeof(float));
  EXPECT_DOUBLE_EQ(relu.At("backward").At("calls").number, 1.0);
}

// ---------------------------------------------------------------------------
// End to end: a real training run exports a nested trace and a Prometheus
// snapshot covering every instrumented subsystem.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, TrainedTrainerExportsNestedTraceAndSubsystemMetrics) {
  obs::ObsConfig config;
  config.metrics = true;
  config.trace = true;
  obs::Configure(config);

  const data::DatasetPreset preset = data::MetrLaPreset();
  data::TrafficConfig traffic = preset.MakeTrafficConfig(8, 10, 7);
  traffic.steps_per_day = 48;  // half resolution keeps the test fast
  data::SyntheticTraffic generator(traffic);
  const Tensor series = generator.GenerateSeries();
  const data::MinMaxNormalizer normalizer = data::MinMaxNormalizer::Fit(series);
  data::StDataset dataset(normalizer.Transform(series), preset.MakeWindowConfig());
  data::StreamSplitter stream(dataset, data::StreamConfig{});

  core::UrclConfig urcl_config;
  urcl_config.encoder.num_nodes = 8;
  urcl_config.encoder.in_channels = 2;
  urcl_config.encoder.input_steps = 12;
  urcl_config.encoder.hidden_channels = 6;
  urcl_config.encoder.latent_channels = 12;
  urcl_config.encoder.num_layers = 2;
  urcl_config.batch_size = 6;
  urcl_config.max_batches_per_epoch = 5;
  urcl_config.buffer_capacity = 32;
  core::UrclTrainer trainer(urcl_config, generator.network());
  trainer.BeginStage(0);
  trainer.TrainStage(stream.Stage(0).train, 1);

  // Trace: the trainer spans nest stage > epoch > step > phases.
  const std::string trace_json = obs::ChromeTraceJson();
  const Json trace = ParseJsonOrDie(trace_json);
  std::map<std::string, int> span_counts;
  for (const Json& event : trace.At("traceEvents").array) {
    if (event.At("ph").str == "X") ++span_counts[event.At("name").str];
  }
  EXPECT_EQ(span_counts["train_stage_0"], 1);
  EXPECT_EQ(span_counts["epoch_0"], 1);
  EXPECT_EQ(span_counts["train_step"], 5);
  EXPECT_EQ(span_counts["forward"], span_counts["train_step"]);
  EXPECT_EQ(span_counts["backward"], span_counts["train_step"]);
  EXPECT_EQ(span_counts["optimizer_step"], span_counts["train_step"]);

  // Metrics: every instrumented subsystem published under its prefix.
  const std::string prom = obs::MetricsRegistry::Get().ToPrometheus();
  for (const char* name : {"urcl_pool_hits", "urcl_runtime_parallel_regions",
                           "urcl_trainer_steps", "urcl_replay_added", "urcl_replay_size"}) {
    EXPECT_NE(prom.find(name), std::string::npos) << "missing " << name << " in:\n" << prom;
  }
  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Get().Snapshot();
  EXPECT_EQ(snapshot.counters.at("urcl.trainer.steps"), 5u);
  EXPECT_GT(snapshot.counters.at("urcl.replay.added"), 0u);
  EXPECT_EQ(snapshot.histograms.at("urcl.trainer.step_ns").count, 5u);

  // File export: --metrics-out/--trace-out plumbing writes both files.
  const std::string trace_path = ::testing::TempDir() + "obs_test_trace.json";
  const std::string metrics_path = ::testing::TempDir() + "obs_test_metrics.prom";
  obs::SetTraceOutPath(trace_path);
  obs::SetMetricsOutPath(metrics_path);
  std::vector<std::string> errors;
  const std::vector<std::string> written = obs::WriteConfiguredOutputs(&errors);
  obs::SetTraceOutPath("");
  obs::SetMetricsOutPath("");
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(written.size(), 2u);

  std::ifstream trace_file(trace_path);
  ASSERT_TRUE(trace_file.good());
  std::stringstream trace_contents;
  trace_contents << trace_file.rdbuf();
  ParseJsonOrDie(trace_contents.str());

  std::ifstream metrics_file(metrics_path);
  ASSERT_TRUE(metrics_file.good());
  std::stringstream metrics_contents;
  metrics_contents << metrics_file.rdbuf();
  EXPECT_NE(metrics_contents.str().find("urcl_trainer_steps"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Request-scoped trace IDs and flow linking
// ---------------------------------------------------------------------------

TEST_F(ObsTest, MintTraceIdIsNonZeroAndUnique) {
  std::vector<uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t id = obs::MintTraceId();
    EXPECT_NE(id, 0u);
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST_F(ObsTest, TraceFlowBindsAndRestoresCurrentTraceId) {
  EXPECT_EQ(obs::CurrentTraceId(), 0u);
  const uint64_t outer = obs::MintTraceId();
  {
    obs::TraceFlow flow(outer);
    EXPECT_EQ(obs::CurrentTraceId(), outer);
    const uint64_t inner = obs::MintTraceId();
    {
      obs::TraceFlow nested(inner);
      EXPECT_EQ(obs::CurrentTraceId(), inner);
    }
    EXPECT_EQ(obs::CurrentTraceId(), outer);  // nested scope restores
  }
  EXPECT_EQ(obs::CurrentTraceId(), 0u);
}

TEST_F(ObsTest, ChromeTraceLinksSpansToTheActiveFlow) {
  obs::ObsConfig config;
  config.trace = true;
  obs::Configure(config);

  const uint64_t trace_id = obs::MintTraceId();
  {
    obs::TraceFlow flow(trace_id);
    { URCL_TRACE_SCOPE("flow.first"); }
    { URCL_TRACE_SCOPE("flow.second"); }
  }
  { URCL_TRACE_SCOPE("no.flow"); }

  char hex[24];
  std::snprintf(hex, sizeof(hex), "0x%llx", static_cast<unsigned long long>(trace_id));
  const Json trace = ParseJsonOrDie(obs::ChromeTraceJson());
  int tagged_slices = 0;
  int flow_starts = 0;
  int flow_steps = 0;
  for (const Json& event : trace.At("traceEvents").array) {
    const std::string& ph = event.At("ph").str;
    if (ph == "X" && event.Has("args") && event.At("args").Has("trace_id")) {
      EXPECT_EQ(event.At("args").At("trace_id").str, hex);
      EXPECT_NE(event.At("name").str, "no.flow");
      ++tagged_slices;
    }
    if (ph == "s" || ph == "t") {
      EXPECT_EQ(event.At("id").str, hex);
      ph == "s" ? ++flow_starts : ++flow_steps;
    }
  }
  EXPECT_EQ(tagged_slices, 2);
  EXPECT_EQ(flow_starts, 1);  // first occurrence opens the flow
  EXPECT_EQ(flow_steps, 1);   // later spans continue it
}

// ---------------------------------------------------------------------------
// Flight recorder (black box)
// ---------------------------------------------------------------------------

TEST_F(ObsTest, FlightRecorderIsAlwaysOnAndOrdersEventsBySeq) {
  ASSERT_FALSE(obs::MetricsEnabled());  // recording must not depend on the gate
  auto& recorder = obs::FlightRecorder::Get();
  recorder.Clear();

  obs::RecordFlightEvent(obs::FlightEventType::kSnapshotAdmit, 7);
  obs::RecordFlightEvent(obs::FlightEventType::kHotSwap, 7, 6, "v6 -> v7");
  obs::RecordFlightEvent(obs::FlightEventType::kRollback, 7, 6, "error spike");

  const std::vector<obs::FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LT(events[1].seq, events[2].seq);
  EXPECT_EQ(events[0].type, obs::FlightEventType::kSnapshotAdmit);
  EXPECT_EQ(events[0].a, 7);
  EXPECT_EQ(events[2].type, obs::FlightEventType::kRollback);
  EXPECT_STREQ(events[2].detail, "error spike");
  EXPECT_EQ(events[2].b, 6);
}

TEST_F(ObsTest, FlightRecorderPicksUpTheActiveTraceId) {
  auto& recorder = obs::FlightRecorder::Get();
  recorder.Clear();
  const uint64_t trace_id = obs::MintTraceId();
  {
    obs::TraceFlow flow(trace_id);
    obs::RecordFlightEvent(obs::FlightEventType::kDeadlineShed, 1000, 500);
  }
  obs::RecordFlightEvent(obs::FlightEventType::kSnapshotPublish, 1);

  const std::vector<obs::FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].trace_id, trace_id);
  EXPECT_EQ(events[1].trace_id, 0u);
}

TEST_F(ObsTest, FlightRecorderJsonlAndAutoDumpRoundTrip) {
  auto& recorder = obs::FlightRecorder::Get();
  recorder.Clear();
  obs::RecordFlightEvent(obs::FlightEventType::kSnapshotQuarantine, -1, 0,
                         "bad \"weights\"\nline two");
  obs::RecordFlightEvent(obs::FlightEventType::kLameDuck);

  // Every JSONL line is valid JSON with the expected fields.
  std::istringstream lines(recorder.ToJsonl());
  std::string line;
  int parsed = 0;
  while (std::getline(lines, line)) {
    const Json event = ParseJsonOrDie(line);
    EXPECT_TRUE(event.Has("seq"));
    EXPECT_TRUE(event.Has("ts_ns"));
    EXPECT_TRUE(event.Has("type"));
    ++parsed;
  }
  EXPECT_EQ(parsed, 2);

  // AutoDump writes the deterministic per-reason file into the set dir.
  const std::string dir = ::testing::TempDir() + "obs_blackbox_test";
  std::filesystem::create_directories(dir);
  recorder.SetDumpDir(dir);
  const std::string path = recorder.AutoDump("unit");
  recorder.SetDumpDir("");
  EXPECT_EQ(path, dir + "/urcl_blackbox.unit.jsonl");
  EXPECT_EQ(recorder.last_dump_path(), path);
  std::ifstream dump(path);
  ASSERT_TRUE(dump.good());
  std::stringstream contents;
  contents << dump.rdbuf();
  EXPECT_NE(contents.str().find("\"type\":\"snapshot_quarantine\""), std::string::npos);
  EXPECT_NE(contents.str().find("\"type\":\"lame_duck\""), std::string::npos);
  // The escaped detail survives the dump verbatim.
  EXPECT_NE(contents.str().find("bad \\\"weights\\\"\\nline two"), std::string::npos);
}

TEST_F(ObsTest, FlightRecorderRingBoundsMemoryUnderOverflow) {
  auto& recorder = obs::FlightRecorder::Get();
  recorder.Clear();
  const uint64_t before = recorder.events_recorded();
  for (int i = 0; i < 10000; ++i) {
    obs::RecordFlightEvent(obs::FlightEventType::kPlanCompile, i);
  }
  EXPECT_EQ(recorder.events_recorded() - before, 10000u);
  const std::vector<obs::FlightEvent> events = recorder.Snapshot();
  // Bounded ring: everything recorded is counted, only the tail is retained.
  EXPECT_LE(events.size(), 4096u);
  EXPECT_GT(events.size(), 0u);
  recorder.Clear();
}

// ---------------------------------------------------------------------------
// Prometheus exposition conformance (names, label escaping, histogram edges)
// ---------------------------------------------------------------------------

TEST_F(ObsTest, PrometheusSanitizesHostileMetricNames) {
  auto& registry = obs::MetricsRegistry::Get();
  registry.GetCounter("9lives.of-a.metric!name").Add(3);
  const std::string prom = registry.ToPrometheus();
  EXPECT_NE(prom.find("_9lives_of_a_metric_name 3"), std::string::npos) << prom;
  EXPECT_EQ(prom.find("9lives.of"), std::string::npos);
}

TEST_F(ObsTest, PrometheusEscapesLabelValues) {
  const std::string name = obs::LabeledName(
      "urcl.test.escaped", {{"msg", "quote\" slash\\ newline\n end"}, {"bad-key!", "v"}});
  auto& registry = obs::MetricsRegistry::Get();
  registry.GetGauge(name).Set(1.0);
  const std::string prom = registry.ToPrometheus();
  // Escapes: \" for quotes, \\ for backslash, \n for newline — and the label
  // key is sanitized like a metric name.
  EXPECT_NE(prom.find("urcl_test_escaped{msg=\"quote\\\" slash\\\\ newline\\n end\","
                      "bad_key_=\"v\"} 1"),
            std::string::npos)
      << prom;
}

TEST_F(ObsTest, PrometheusHistogramEmitsCumulativeBucketsAndInfEdge) {
  auto& registry = obs::MetricsRegistry::Get();
  obs::Histogram& plain = registry.GetHistogram("urcl.test.edges", {1.0, 2.0});
  plain.Reset();
  plain.Observe(1.0);  // == edge: counts into le="1" (Prometheus semantics)
  plain.Observe(1.5);
  plain.Observe(99.0);  // above every bound: +Inf only
  const std::string prom = registry.ToPrometheus();
  EXPECT_NE(prom.find("urcl_test_edges_bucket{le=\"1\"} 1"), std::string::npos) << prom;
  EXPECT_NE(prom.find("urcl_test_edges_bucket{le=\"2\"} 2"), std::string::npos) << prom;
  EXPECT_NE(prom.find("urcl_test_edges_bucket{le=\"+Inf\"} 3"), std::string::npos) << prom;
  EXPECT_NE(prom.find("urcl_test_edges_count 3"), std::string::npos) << prom;
}

TEST_F(ObsTest, PrometheusLabeledHistogramFoldsLabelsBeforeLe) {
  auto& registry = obs::MetricsRegistry::Get();
  const std::string name =
      obs::LabeledName("urcl.test.labeled_hist", {{"stage", "2"}});
  obs::Histogram& labeled = registry.GetHistogram(name, {1.0});
  labeled.Reset();
  labeled.Observe(0.5);
  const std::string prom = registry.ToPrometheus();
  EXPECT_NE(prom.find("urcl_test_labeled_hist_bucket{stage=\"2\",le=\"1\"} 1"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("urcl_test_labeled_hist_bucket{stage=\"2\",le=\"+Inf\"} 1"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("urcl_test_labeled_hist_count{stage=\"2\"} 1"), std::string::npos)
      << prom;
  // One # TYPE line per family even with labels present.
  EXPECT_EQ(prom.find("# TYPE urcl_test_labeled_hist histogram"),
            prom.rfind("# TYPE urcl_test_labeled_hist histogram"));
}

// ---------------------------------------------------------------------------
// SLO burn rates
// ---------------------------------------------------------------------------

TEST_F(ObsTest, SloBurnComputesPerWindowFromCumulativeDeltas) {
  obs::SloConfig config;
  config.availability_target = 0.99;  // budget 1%
  config.latency_target = 0.9;        // budget 10%
  config.windows_ns = {100, 1000};
  obs::SloMonitor monitor(config);

  // t=0: baseline. t=500: 1000 queries, 5 errors. t=1000: 1000 more, 20
  // errors, plus 100 latency samples of which 30 were slow.
  monitor.Tick({0, 0, 0, 0, 0});
  monitor.Tick({500, 1000, 5, 0, 0});
  monitor.Tick({1000, 2000, 25, 100, 30});

  const std::vector<obs::SloMonitor::WindowBurn> burns = monitor.Burn();
  ASSERT_EQ(burns.size(), 2u);
  // 100ns window: only the newest sample is inside, so deltas are zero.
  EXPECT_EQ(burns[0].window_ns, 100);
  EXPECT_EQ(burns[0].total, 0u);
  EXPECT_DOUBLE_EQ(burns[0].availability_burn, 0.0);
  // 1000ns window: spans from t=0 — 25/2000 error ratio over a 1% budget.
  EXPECT_EQ(burns[1].window_ns, 1000);
  EXPECT_EQ(burns[1].total, 2000u);
  EXPECT_EQ(burns[1].errors, 25u);
  // NEAR, not exact: sanitizer builds round the ratio division differently.
  EXPECT_NEAR(burns[1].availability_burn, (25.0 / 2000.0) / 0.01, 1e-9);
  EXPECT_NEAR(burns[1].latency_burn, (30.0 / 100.0) / 0.1, 1e-9);
}

TEST_F(ObsTest, SloTickFromRegistryCountsSlowFromHistogram) {
  obs::ObsConfig obs_config;
  obs_config.metrics = true;
  obs::Configure(obs_config);

  obs::SloConfig config;
  config.windows_ns = {1000};
  config.latency_threshold_ns = 10.0;
  config.total_counter = "urcl.test.slo_total";
  config.error_counters = {"urcl.test.slo_errors"};
  config.latency_histogram = "urcl.test.slo_latency";
  config.latency_bounds = {10.0, 100.0};
  obs::SloMonitor monitor(config);

  auto& registry = obs::MetricsRegistry::Get();
  registry.GetHistogram("urcl.test.slo_latency", config.latency_bounds).Reset();
  monitor.TickFromRegistry(0);
  registry.GetCounter("urcl.test.slo_total").Add(10);
  registry.GetCounter("urcl.test.slo_errors").Add(1);
  obs::Histogram& latency =
      registry.GetHistogram("urcl.test.slo_latency", config.latency_bounds);
  latency.Observe(5.0);    // fast
  latency.Observe(10.0);   // == threshold: still fast (le semantics)
  latency.Observe(50.0);   // slow
  latency.Observe(500.0);  // slow (+Inf bucket)
  monitor.TickFromRegistry(500);

  const std::vector<obs::SloMonitor::WindowBurn> burns = monitor.Burn();
  ASSERT_EQ(burns.size(), 1u);
  EXPECT_EQ(burns[0].total, 10u);
  EXPECT_EQ(burns[0].errors, 1u);
  // 2 of 4 observations exceeded the threshold; default budget 1%. NEAR,
  // not exact: sanitizer builds round the ratio division differently.
  EXPECT_NEAR(burns[0].latency_burn, 0.5 / 0.01, 1e-9);

  monitor.ExportGauges();
  const std::string prom = registry.ToPrometheus();
  EXPECT_NE(prom.find("urcl_slo_availability_burn{window=\"0s\"}"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("urcl_slo_latency_burn{window=\"0s\"}"), std::string::npos) << prom;
}

// ---------------------------------------------------------------------------
// Learning-quality telemetry
// ---------------------------------------------------------------------------

TEST_F(ObsTest, LearningTelemetryComputesForgettingAndBackwardTransfer) {
  obs::LearningTelemetry telemetry;
  EXPECT_TRUE(telemetry.empty());
  // Stage 0 trains to MAE 2.0, then degrades to 3.0 after stage 1, 3.5 after
  // stage 2. Stage 1 trains to 1.5 and *improves* to 1.0 after stage 2.
  telemetry.Record(0, 0, 2.0);
  telemetry.Record(1, 0, 3.0);
  telemetry.Record(1, 1, 1.5);
  telemetry.Record(2, 0, 3.5);
  telemetry.Record(2, 1, 1.0);
  telemetry.Record(2, 2, 4.0);

  EXPECT_EQ(telemetry.latest_trained_stage(), 2);
  EXPECT_DOUBLE_EQ(telemetry.Diagonal(0), 2.0);
  EXPECT_DOUBLE_EQ(telemetry.Latest(0), 3.5);
  EXPECT_DOUBLE_EQ(telemetry.Forgetting(0), 1.5);    // 3.5 - 2.0
  EXPECT_DOUBLE_EQ(telemetry.Forgetting(1), -0.5);   // 1.0 - 1.5 (improved)
  EXPECT_DOUBLE_EQ(telemetry.MeanForgetting(), 0.5);  // (1.5 - 0.5) / 2
  EXPECT_DOUBLE_EQ(telemetry.BackwardTransfer(), -0.5);
  EXPECT_TRUE(std::isnan(telemetry.Forgetting(5)));

  const Json json = ParseJsonOrDie(telemetry.ToJson());
  EXPECT_DOUBLE_EQ(json.At("stages").number, 3.0);
  EXPECT_DOUBLE_EQ(json.At("matrix").At("2").At("0").number, 3.5);
  EXPECT_DOUBLE_EQ(json.At("forgetting").At("0").number, 1.5);
  EXPECT_DOUBLE_EQ(json.At("backward_transfer").number, -0.5);

  obs::ObsConfig config;
  config.metrics = true;
  obs::Configure(config);
  telemetry.ExportGauges();
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Get().Snapshot();
  EXPECT_DOUBLE_EQ(snap.gauges.at("urcl.learn.forgetting{stage=\"0\"}"), 1.5);
  EXPECT_DOUBLE_EQ(snap.gauges.at("urcl.learn.backward_transfer"), -0.5);
  EXPECT_DOUBLE_EQ(snap.gauges.at("urcl.learn.stages_trained"), 3.0);
}

TEST_F(ObsTest, ProtocolRunnerFillsLearningTelemetryUnderSeenSoFar) {
  const data::DatasetPreset preset = data::MetrLaPreset();
  data::TrafficConfig traffic = preset.MakeTrafficConfig(6, 10, 7);
  traffic.steps_per_day = 48;
  data::SyntheticTraffic generator(traffic);
  const Tensor series = generator.GenerateSeries();
  const data::MinMaxNormalizer normalizer = data::MinMaxNormalizer::Fit(series);
  data::StDataset dataset(normalizer.Transform(series), preset.MakeWindowConfig());
  data::StreamConfig stream_config;
  stream_config.num_incremental = 2;
  data::StreamSplitter stream(dataset, stream_config);

  core::UrclConfig urcl_config;
  urcl_config.encoder.num_nodes = 6;
  urcl_config.encoder.in_channels = 2;
  urcl_config.encoder.input_steps = 12;
  urcl_config.encoder.hidden_channels = 4;
  urcl_config.encoder.latent_channels = 8;
  urcl_config.batch_size = 4;
  urcl_config.max_batches_per_epoch = 2;
  urcl_config.buffer_capacity = 16;
  core::UrclTrainer trainer(urcl_config, generator.network());

  obs::LearningTelemetry telemetry;
  core::ProtocolOptions options;
  options.epochs_per_stage = 1;
  options.learning = &telemetry;
  options.learning_json_path = ::testing::TempDir() + "obs_test_learning.json";
  const std::vector<core::StageResult> results =
      core::RunContinualProtocol(trainer, stream, normalizer, 0, options);

  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(telemetry.latest_trained_stage(), 2);
  // The diagonal and the final row of the matrix are filled for every stage,
  // so forgetting is defined for each earlier stage.
  for (int64_t s = 0; s <= 2; ++s) {
    EXPECT_FALSE(std::isnan(telemetry.Diagonal(s))) << "R[" << s << "][" << s << "]";
    EXPECT_FALSE(std::isnan(telemetry.Latest(s))) << "R[2][" << s << "]";
  }
  EXPECT_FALSE(std::isnan(telemetry.Forgetting(0)));
  EXPECT_FALSE(std::isnan(telemetry.Forgetting(1)));
  std::ifstream json_file(options.learning_json_path);
  ASSERT_TRUE(json_file.good());
  std::stringstream json_contents;
  json_contents << json_file.rdbuf();
  const Json json = ParseJsonOrDie(json_contents.str());
  EXPECT_DOUBLE_EQ(json.At("stages").number, 3.0);
}

// ---------------------------------------------------------------------------
// Facade handles
// ---------------------------------------------------------------------------

TEST_F(ObsTest, FacadeHandlesGateOnMetricsEnabled) {
  obs::CounterHandle counter("urcl.test.facade_counter");
  obs::GaugeHandle gauge("urcl.test.facade_gauge");
  obs::MetricsRegistry::Get().GetCounter("urcl.test.facade_counter").Reset();

  ASSERT_FALSE(obs::MetricsEnabled());
  counter.Add();
  gauge.Set(5.0);
  EXPECT_EQ(counter.Value(), 0u);  // gated off: no mutation

  obs::ObsConfig config;
  config.metrics = true;
  obs::Configure(config);
  counter.Add(2);
  gauge.Set(5.0);
  EXPECT_EQ(counter.Value(), 2u);
  EXPECT_DOUBLE_EQ(gauge.Value(), 5.0);
}

}  // namespace
}  // namespace urcl
