// Observability layer tests: metrics registry concurrency, Chrome-trace span
// recording/nesting under multi-threaded hammering, the per-op autograd
// profiler against a hand-timed two-op graph, and the end-to-end export path
// a trained UrclTrainer produces.
//
// All obs state is process-global, so every test runs under a fixture that
// saves/restores the configuration and wipes trace rings, profiler shards
// and registry counters between tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "autograd/ops.h"
#include "common/stopwatch.h"
#include "core/strategies.h"
#include "core/urcl.h"
#include "data/presets.h"
#include "data/stream.h"
#include "data/synthetic.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace urcl {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser — enough to validate the exporters' output without a
// third-party dependency. Accepts what ChromeTraceJson / ToJson / ProfilerJson
// emit: objects, arrays, strings (with escapes), numbers, booleans, null.
// ---------------------------------------------------------------------------

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  bool Has(const std::string& key) const { return object.count(key) > 0; }
  const Json& At(const std::string& key) const { return object.at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  // Parses the whole input; sets *ok to false on any syntax error or
  // trailing garbage.
  Json Parse(bool* ok) {
    *ok = true;
    ok_ = true;
    pos_ = 0;
    Json value = ParseValue();
    SkipWs();
    if (pos_ != text_.size()) ok_ = false;
    *ok = ok_;
    return value;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }
  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    ok_ = false;
    return false;
  }
  bool ConsumeLiteral(const char* literal) {
    const size_t n = std::string(literal).size();
    if (text_.compare(pos_, n, literal) == 0) {
      pos_ += n;
      return true;
    }
    ok_ = false;
    return false;
  }

  Json ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) {
      ok_ = false;
      return Json{};
    }
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't') {
      Json v;
      v.type = Json::Type::kBool;
      v.boolean = true;
      ConsumeLiteral("true");
      return v;
    }
    if (c == 'f') {
      Json v;
      v.type = Json::Type::kBool;
      ConsumeLiteral("false");
      return v;
    }
    if (c == 'n') {
      ConsumeLiteral("null");
      return Json{};
    }
    return ParseNumber();
  }

  Json ParseObject() {
    Json v;
    v.type = Json::Type::kObject;
    Consume('{');
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return v;
    }
    while (ok_) {
      Json key = ParseString();
      Consume(':');
      v.object[key.str] = ParseValue();
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      Consume('}');
      break;
    }
    return v;
  }

  Json ParseArray() {
    Json v;
    v.type = Json::Type::kArray;
    Consume('[');
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return v;
    }
    while (ok_) {
      v.array.push_back(ParseValue());
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      Consume(']');
      break;
    }
    return v;
  }

  Json ParseString() {
    Json v;
    v.type = Json::Type::kString;
    if (!Consume('"')) return v;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char e = text_[pos_++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': pos_ += 4; c = '?'; break;  // names here are ASCII
          default: c = e; break;
        }
      }
      v.str.push_back(c);
    }
    if (!Consume('"')) ok_ = false;
    return v;
  }

  Json ParseNumber() {
    Json v;
    v.type = Json::Type::kNumber;
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      ok_ = false;
      return v;
    }
    v.number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
  bool ok_ = true;
};

Json ParseJsonOrDie(const std::string& text) {
  bool ok = false;
  Json v = JsonParser(text).Parse(&ok);
  EXPECT_TRUE(ok) << "invalid JSON: " << text.substr(0, 200);
  return v;
}

// ---------------------------------------------------------------------------
// Fixture: isolate the process-global obs state per test.
// ---------------------------------------------------------------------------

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = obs::Current();
    obs::Configure(obs::ObsConfig{});  // everything off
    obs::ClearTrace();
    obs::ResetProfiler();
    obs::MetricsRegistry::Get().ResetCounters();
  }
  void TearDown() override {
    obs::Configure(saved_);
    obs::ClearTrace();
    obs::ResetProfiler();
    obs::MetricsRegistry::Get().ResetCounters();
  }

  obs::ObsConfig saved_;
};

// ---------------------------------------------------------------------------
// Switchboard
// ---------------------------------------------------------------------------

TEST_F(ObsTest, ConfigureSetsAndClearsEachFlagIndependently) {
  EXPECT_FALSE(obs::MetricsEnabled());
  EXPECT_FALSE(obs::TraceEnabled());
  EXPECT_FALSE(obs::ProfilerEnabled());

  obs::ObsConfig config;
  config.metrics = true;
  obs::Configure(config);
  EXPECT_TRUE(obs::MetricsEnabled());
  EXPECT_FALSE(obs::TraceEnabled());

  config.metrics = false;
  config.trace = true;
  config.profiler = true;
  obs::Configure(config);
  EXPECT_FALSE(obs::MetricsEnabled());
  EXPECT_TRUE(obs::TraceEnabled());
  EXPECT_TRUE(obs::ProfilerEnabled());

  const obs::ObsConfig current = obs::Current();
  EXPECT_FALSE(current.metrics);
  EXPECT_TRUE(current.trace);
  EXPECT_TRUE(current.profiler);
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST_F(ObsTest, CounterConcurrentAddsSumExactly) {
  obs::Counter& counter = obs::MetricsRegistry::Get().GetCounter("test.obs.hammered_counter");
  counter.Reset();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST_F(ObsTest, GaugeConcurrentAddsAreLossless) {
  obs::Gauge& gauge = obs::MetricsRegistry::Get().GetGauge("test.obs.hammered_gauge");
  gauge.Set(0.0);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kPerThread; ++i) gauge.Add(1.0);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_DOUBLE_EQ(gauge.Value(), static_cast<double>(kThreads * kPerThread));
}

TEST_F(ObsTest, HistogramBucketsObservationsExactlyUnderConcurrency) {
  obs::Histogram& histogram =
      obs::MetricsRegistry::Get().GetHistogram("test.obs.hammered_histogram", {1.0, 10.0, 100.0});
  histogram.Reset();
  // Each thread observes the same fixed set, so per-bucket totals are exact
  // multiples regardless of interleaving.
  const std::vector<double> values = {0.5, 1.0, 5.0, 10.0, 50.0, 1000.0};
  constexpr int kThreads = 8;
  constexpr int kRounds = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, &values] {
      for (int round = 0; round < kRounds; ++round) {
        for (const double v : values) histogram.Observe(v);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const obs::Histogram::Snapshot snap = histogram.Snap();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.bucket_counts.size(), 4u);
  constexpr uint64_t kMultiplier = kThreads * kRounds;
  EXPECT_EQ(snap.bucket_counts[0], 2 * kMultiplier);  // 0.5, 1.0 (inclusive edge)
  EXPECT_EQ(snap.bucket_counts[1], 2 * kMultiplier);  // 5.0, 10.0
  EXPECT_EQ(snap.bucket_counts[2], 1 * kMultiplier);  // 50.0
  EXPECT_EQ(snap.bucket_counts[3], 1 * kMultiplier);  // 1000.0 -> +Inf
  EXPECT_EQ(snap.count, 6 * kMultiplier);
  EXPECT_DOUBLE_EQ(snap.sum, 1066.5 * static_cast<double>(kMultiplier));
}

TEST_F(ObsTest, ExponentialBucketsGrowByFactor) {
  const std::vector<double> bounds = obs::ExponentialBuckets(1000.0, 4.0, 5);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_DOUBLE_EQ(bounds[0], 1000.0);
  EXPECT_DOUBLE_EQ(bounds[1], 4000.0);
  EXPECT_DOUBLE_EQ(bounds[4], 256000.0);
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
}

TEST_F(ObsTest, RegistryExportsJsonAndPrometheus) {
  auto& registry = obs::MetricsRegistry::Get();
  registry.GetCounter("test.obs.export_counter").Add(42);
  registry.GetGauge("test.obs.export_gauge").Set(2.5);
  registry.GetHistogram("test.obs.export_histogram", {1.0, 2.0}).Observe(1.5);

  const Json json = ParseJsonOrDie(registry.ToJson());
  ASSERT_TRUE(json.Has("counters"));
  EXPECT_DOUBLE_EQ(json.At("counters").At("test.obs.export_counter").number, 42.0);
  EXPECT_DOUBLE_EQ(json.At("gauges").At("test.obs.export_gauge").number, 2.5);
  const Json& histogram = json.At("histograms").At("test.obs.export_histogram");
  EXPECT_DOUBLE_EQ(histogram.At("count").number, 1.0);

  const std::string prom = registry.ToPrometheus();
  EXPECT_NE(prom.find("test_obs_export_counter 42"), std::string::npos);
  EXPECT_NE(prom.find("test_obs_export_gauge 2.5"), std::string::npos);
  EXPECT_NE(prom.find("test_obs_export_histogram"), std::string::npos);
  // Dots never leak into the Prometheus names.
  EXPECT_EQ(prom.find("test.obs"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------------

TEST_F(ObsTest, DisabledTraceRecordsNoEvents) {
  ASSERT_FALSE(obs::TraceEnabled());
  for (int i = 0; i < 100; ++i) {
    URCL_TRACE_SCOPE("should_not_appear");
    URCL_TRACE_SCOPE("nested", i);
  }
  EXPECT_EQ(obs::TraceEventCount(), 0u);
  const Json trace = ParseJsonOrDie(obs::ChromeTraceJson());
  for (const Json& event : trace.At("traceEvents").array) {
    EXPECT_NE(event.At("ph").str, "X");  // metadata rows only
  }
}

// Collected view of one "X" event for nesting checks.
struct SpanEvent {
  std::string name;
  double ts_us = 0.0;
  double end_us = 0.0;
};

TEST_F(ObsTest, EightThreadHammerProducesProperlyNestedSpansPerThread) {
  obs::ObsConfig config;
  config.trace = true;
  obs::Configure(config);

  constexpr int kThreads = 8;
  constexpr int kIterations = 200;  // 3 spans each; well under ring capacity
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      obs::SetThreadName("hammer-" + std::to_string(t));
      for (int i = 0; i < kIterations; ++i) {
        URCL_TRACE_SCOPE("outer");
        {
          URCL_TRACE_SCOPE("middle", i);
          URCL_TRACE_SCOPE("inner");
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(obs::TraceEventCount(), static_cast<size_t>(kThreads * kIterations * 3));

  const Json trace = ParseJsonOrDie(obs::ChromeTraceJson());
  EXPECT_EQ(trace.At("otherData").At("dropped_events").number, 0.0);

  std::map<int, std::vector<SpanEvent>> by_tid;
  std::map<int, std::string> thread_names;
  for (const Json& event : trace.At("traceEvents").array) {
    const int tid = static_cast<int>(event.At("tid").number);
    if (event.At("ph").str == "M") {
      thread_names[tid] = event.At("args").At("name").str;
    } else if (event.At("ph").str == "X") {
      SpanEvent span;
      span.name = event.At("name").str;
      span.ts_us = event.At("ts").number;
      span.end_us = span.ts_us + event.At("dur").number;
      by_tid[tid].push_back(span);
    }
  }

  int hammer_threads_seen = 0;
  for (auto& [tid, spans] : by_tid) {
    if (thread_names[tid].rfind("hammer-", 0) != 0) continue;  // e.g. pool workers
    ++hammer_threads_seen;
    ASSERT_EQ(spans.size(), static_cast<size_t>(kIterations * 3)) << thread_names[tid];

    // Sorted by start (outermost first on ties), every span must nest: it
    // either starts after the enclosing span ends, or ends within it.
    std::sort(spans.begin(), spans.end(), [](const SpanEvent& a, const SpanEvent& b) {
      if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
      return a.end_us > b.end_us;
    });
    constexpr double kEpsUs = 0.01;  // ns->us double rounding slack
    std::vector<SpanEvent> stack;
    for (const SpanEvent& span : spans) {
      while (!stack.empty() && span.ts_us >= stack.back().end_us - kEpsUs) stack.pop_back();
      if (!stack.empty()) {
        EXPECT_LE(span.end_us, stack.back().end_us + kEpsUs)
            << span.name << " straddles " << stack.back().name << " in " << thread_names[tid];
      }
      stack.push_back(span);
    }
    // Span names survived the ring (including the indexed form).
    EXPECT_EQ(spans.front().name, "outer");
    bool saw_indexed = false;
    for (const SpanEvent& span : spans) saw_indexed |= span.name == "middle_7";
    EXPECT_TRUE(saw_indexed);
  }
  EXPECT_EQ(hammer_threads_seen, kThreads);
}

TEST_F(ObsTest, RingOverflowDropsOldestAndCountsThem) {
  obs::ObsConfig config;
  config.trace = true;
  obs::Configure(config);

  // The shrunken capacity only applies to rings created afterwards, so the
  // spans must come from a brand-new thread.
  obs::SetTraceRingCapacity(8);
  std::thread recorder([] {
    obs::SetThreadName("tiny-ring");
    for (int i = 0; i < 20; ++i) {
      URCL_TRACE_SCOPE("overflow", i);
    }
  });
  recorder.join();
  obs::SetTraceRingCapacity(65536);  // restore the default for later rings

  const Json trace = ParseJsonOrDie(obs::ChromeTraceJson());
  EXPECT_EQ(trace.At("otherData").At("dropped_events").number, 12.0);
  // The ring keeps the newest 8 events: overflow_12 .. overflow_19.
  std::vector<std::string> kept;
  for (const Json& event : trace.At("traceEvents").array) {
    if (event.At("ph").str == "X" && event.At("name").str.rfind("overflow_", 0) == 0) {
      kept.push_back(event.At("name").str);
    }
  }
  ASSERT_EQ(kept.size(), 8u);
  EXPECT_EQ(kept.front(), "overflow_12");
  EXPECT_EQ(kept.back(), "overflow_19");
}

// ---------------------------------------------------------------------------
// Per-op autograd profiler
// ---------------------------------------------------------------------------

TEST_F(ObsTest, DisabledProfilerRecordsNothing) {
  ASSERT_FALSE(obs::ProfilerEnabled());
  autograd::Variable a(Tensor::Ones(Shape{4, 4}), true);
  autograd::Variable loss = autograd::Sum(autograd::MatMul(a, a));
  loss.Backward();
  EXPECT_TRUE(obs::ProfilerSnapshot().empty());
}

TEST_F(ObsTest, ProfilerAccountsTwoOpGraphAgainstWallClock) {
  obs::ObsConfig config;
  config.profiler = true;
  obs::Configure(config);

  autograd::Variable a(Tensor::Ones(Shape{64, 64}), true);
  autograd::Variable b(Tensor::Full(Shape{64, 64}, 0.5f), true);
  const Stopwatch wall;
  autograd::Variable product = autograd::MatMul(a, b);
  autograd::Variable loss = autograd::Sum(product);
  loss.Backward();
  const int64_t wall_ns = wall.ElapsedNs();

  const std::map<std::string, obs::OpProfile> snapshot = obs::ProfilerSnapshot();
  ASSERT_TRUE(snapshot.count("matmul"));
  ASSERT_TRUE(snapshot.count("sum"));
  const obs::OpProfile& matmul = snapshot.at("matmul");
  const obs::OpProfile& sum = snapshot.at("sum");

  EXPECT_EQ(matmul.forward_calls, 1u);
  EXPECT_EQ(matmul.backward_calls, 1u);
  EXPECT_EQ(matmul.forward_bytes, 64u * 64u * sizeof(float));   // output tensor
  EXPECT_EQ(matmul.backward_bytes, 64u * 64u * sizeof(float));  // upstream grad
  EXPECT_EQ(sum.forward_calls, 1u);
  EXPECT_EQ(sum.backward_calls, 1u);
  EXPECT_EQ(sum.forward_bytes, sizeof(float));  // scalar output

  // Profiled time is a sub-interval of the hand-timed window.
  int64_t profiled_ns = 0;
  for (const auto& [name, profile] : snapshot) {
    EXPECT_GE(profile.forward_ns, 0) << name;
    EXPECT_GE(profile.backward_ns, 0) << name;
    profiled_ns += profile.forward_ns + profile.backward_ns;
  }
  EXPECT_GT(profiled_ns, 0);
  EXPECT_LE(profiled_ns, wall_ns);

  // Reset empties the shards.
  obs::ResetProfiler();
  EXPECT_TRUE(obs::ProfilerSnapshot().empty());
}

TEST_F(ObsTest, ProfilerAttributesDelegatingOpsToTheInnerOp) {
  obs::ObsConfig config;
  config.profiler = true;
  obs::Configure(config);

  // Neg delegates to MulScalar: its time lands on mul_scalar and the stack
  // unwinds cleanly (no phantom "neg" row, no stuck starts).
  autograd::Variable x(Tensor::Ones(Shape{8}), true);
  autograd::Variable y = autograd::Neg(x);
  ASSERT_TRUE(y.IsValid());
  const std::map<std::string, obs::OpProfile> snapshot = obs::ProfilerSnapshot();
  EXPECT_EQ(snapshot.count("neg"), 0u);
  ASSERT_TRUE(snapshot.count("mul_scalar"));
  EXPECT_EQ(snapshot.at("mul_scalar").forward_calls, 1u);
  EXPECT_EQ(obs::internal::ForwardStackDepth(), 0u);
}

TEST_F(ObsTest, ProfilerJsonParsesAndMatchesSnapshot) {
  obs::ObsConfig config;
  config.profiler = true;
  obs::Configure(config);

  autograd::Variable a(Tensor::Ones(Shape{4, 4}), true);
  autograd::Variable loss = autograd::Sum(autograd::Relu(a));
  loss.Backward();

  const Json json = ParseJsonOrDie(obs::ProfilerJson());
  ASSERT_TRUE(json.Has("ops"));
  ASSERT_TRUE(json.At("ops").Has("relu"));
  const Json& relu = json.At("ops").At("relu");
  EXPECT_DOUBLE_EQ(relu.At("forward").At("calls").number, 1.0);
  EXPECT_DOUBLE_EQ(relu.At("forward").At("bytes").number, 4.0 * 4.0 * sizeof(float));
  EXPECT_DOUBLE_EQ(relu.At("backward").At("calls").number, 1.0);
}

// ---------------------------------------------------------------------------
// End to end: a real training run exports a nested trace and a Prometheus
// snapshot covering every instrumented subsystem.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, TrainedTrainerExportsNestedTraceAndSubsystemMetrics) {
  obs::ObsConfig config;
  config.metrics = true;
  config.trace = true;
  obs::Configure(config);

  const data::DatasetPreset preset = data::MetrLaPreset();
  data::TrafficConfig traffic = preset.MakeTrafficConfig(8, 10, 7);
  traffic.steps_per_day = 48;  // half resolution keeps the test fast
  data::SyntheticTraffic generator(traffic);
  const Tensor series = generator.GenerateSeries();
  const data::MinMaxNormalizer normalizer = data::MinMaxNormalizer::Fit(series);
  data::StDataset dataset(normalizer.Transform(series), preset.MakeWindowConfig());
  data::StreamSplitter stream(dataset, data::StreamConfig{});

  core::UrclConfig urcl_config;
  urcl_config.encoder.num_nodes = 8;
  urcl_config.encoder.in_channels = 2;
  urcl_config.encoder.input_steps = 12;
  urcl_config.encoder.hidden_channels = 6;
  urcl_config.encoder.latent_channels = 12;
  urcl_config.encoder.num_layers = 2;
  urcl_config.batch_size = 6;
  urcl_config.max_batches_per_epoch = 5;
  urcl_config.buffer_capacity = 32;
  core::UrclTrainer trainer(urcl_config, generator.network());
  trainer.BeginStage(0);
  trainer.TrainStage(stream.Stage(0).train, 1);

  // Trace: the trainer spans nest stage > epoch > step > phases.
  const std::string trace_json = obs::ChromeTraceJson();
  const Json trace = ParseJsonOrDie(trace_json);
  std::map<std::string, int> span_counts;
  for (const Json& event : trace.At("traceEvents").array) {
    if (event.At("ph").str == "X") ++span_counts[event.At("name").str];
  }
  EXPECT_EQ(span_counts["train_stage_0"], 1);
  EXPECT_EQ(span_counts["epoch_0"], 1);
  EXPECT_EQ(span_counts["train_step"], 5);
  EXPECT_EQ(span_counts["forward"], span_counts["train_step"]);
  EXPECT_EQ(span_counts["backward"], span_counts["train_step"]);
  EXPECT_EQ(span_counts["optimizer_step"], span_counts["train_step"]);

  // Metrics: every instrumented subsystem published under its prefix.
  const std::string prom = obs::MetricsRegistry::Get().ToPrometheus();
  for (const char* name : {"urcl_pool_hits", "urcl_runtime_parallel_regions",
                           "urcl_trainer_steps", "urcl_replay_added", "urcl_replay_size"}) {
    EXPECT_NE(prom.find(name), std::string::npos) << "missing " << name << " in:\n" << prom;
  }
  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Get().Snapshot();
  EXPECT_EQ(snapshot.counters.at("urcl.trainer.steps"), 5u);
  EXPECT_GT(snapshot.counters.at("urcl.replay.added"), 0u);
  EXPECT_EQ(snapshot.histograms.at("urcl.trainer.step_ns").count, 5u);

  // File export: --metrics-out/--trace-out plumbing writes both files.
  const std::string trace_path = ::testing::TempDir() + "obs_test_trace.json";
  const std::string metrics_path = ::testing::TempDir() + "obs_test_metrics.prom";
  obs::SetTraceOutPath(trace_path);
  obs::SetMetricsOutPath(metrics_path);
  std::vector<std::string> errors;
  const std::vector<std::string> written = obs::WriteConfiguredOutputs(&errors);
  obs::SetTraceOutPath("");
  obs::SetMetricsOutPath("");
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(written.size(), 2u);

  std::ifstream trace_file(trace_path);
  ASSERT_TRUE(trace_file.good());
  std::stringstream trace_contents;
  trace_contents << trace_file.rdbuf();
  ParseJsonOrDie(trace_contents.str());

  std::ifstream metrics_file(metrics_path);
  ASSERT_TRUE(metrics_file.good());
  std::stringstream metrics_contents;
  metrics_contents << metrics_file.rdbuf();
  EXPECT_NE(metrics_contents.str().find("urcl_trainer_steps"), std::string::npos);
}

}  // namespace
}  // namespace urcl
