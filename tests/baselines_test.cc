#include <gtest/gtest.h>

#include <cmath>

#include "baselines/arima.h"
#include "baselines/historical_average.h"
#include "baselines/zoo.h"
#include "data/synthetic.h"
#include "graph/generator.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace baselines {
namespace {

TEST(SolveLinearSystemTest, SolvesKnownSystem) {
  // 2x + y = 5; x + 3y = 10  ->  x = 1, y = 3.
  const std::vector<float> x = SolveLinearSystem({{2, 1}, {1, 3}}, {5, 10});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.0f, 1e-5);
  EXPECT_NEAR(x[1], 3.0f, 1e-5);
}

TEST(SolveLinearSystemTest, HandlesSingularGracefully) {
  const std::vector<float> x = SolveLinearSystem({{1, 1}, {1, 1}}, {2, 2});
  for (const float v : x) EXPECT_TRUE(std::isfinite(v));
}

// Builds a dataset from a known AR(1) process: x_t = 0.8 x_{t-1} + noise.
data::StDataset Ar1Dataset(int64_t steps, int64_t nodes, float phi, float noise,
                           uint64_t seed) {
  Rng rng(seed);
  Tensor series(Shape{steps, nodes, 1});
  std::vector<float> state(static_cast<size_t>(nodes), 1.0f);
  for (int64_t t = 0; t < steps; ++t) {
    for (int64_t n = 0; n < nodes; ++n) {
      state[static_cast<size_t>(n)] =
          phi * state[static_cast<size_t>(n)] + rng.Normal(0.0f, noise);
      series.Set({t, n, 0}, state[static_cast<size_t>(n)]);
    }
  }
  return data::StDataset(series, data::WindowConfig{12, 1, 0});
}

TEST(ArimaTest, RecoversArCoefficient) {
  data::StDataset dataset = Ar1Dataset(600, 2, 0.8f, 0.1f, 1);
  ArimaPredictor arima(ArimaOptions{/*ar_order=*/2, /*difference=*/0}, 1, 0);
  arima.TrainStage(dataset, 1);
  // phi_1 should be close to 0.8, phi_2 close to 0.
  const std::vector<float>& w = arima.Coefficients(0);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_NEAR(w[1], 0.8f, 0.12f);
  EXPECT_NEAR(w[2], 0.0f, 0.15f);
}

TEST(ArimaTest, PredictsArProcessWell) {
  data::StDataset dataset = Ar1Dataset(600, 2, 0.9f, 0.05f, 2);
  ArimaPredictor arima(ArimaOptions{2, 0}, 1, 0);
  arima.TrainStage(dataset, 1);
  const auto [x, y] = dataset.MakeBatch({100, 200, 300});
  const Tensor pred = arima.Predict(x);
  EXPECT_EQ(pred.shape(), y.shape());
  const data::EvalMetrics m = data::ComputeMetrics(pred, y);
  EXPECT_LT(m.mae, 0.15);
}

TEST(ArimaTest, DifferencingHandlesTrend) {
  // Linear trend + AR noise: differencing should help.
  Tensor series(Shape{400, 1, 1});
  Rng rng(3);
  for (int64_t t = 0; t < 400; ++t) {
    series.Set({t, 0, 0}, 0.5f * static_cast<float>(t) + rng.Normal(0.0f, 0.2f));
  }
  data::StDataset dataset(series, data::WindowConfig{12, 1, 0});
  ArimaPredictor arima(ArimaOptions{2, 1}, 1, 0);
  arima.TrainStage(dataset, 1);
  const auto [x, y] = dataset.MakeBatch({300});
  const Tensor pred = arima.Predict(x);
  EXPECT_NEAR(pred.FlatAt(0), y.FlatAt(0), 1.5f);
}

TEST(ArimaTest, MultiStepForecast) {
  data::StDataset dataset = Ar1Dataset(300, 1, 0.9f, 0.05f, 4);
  ArimaPredictor arima(ArimaOptions{2, 0}, /*output_steps=*/3, 0);
  arima.TrainStage(dataset, 1);
  Tensor window = dataset.GetSample(50).inputs.Reshape(Shape{1, 12, 1, 1});
  const Tensor pred = arima.Predict(window);
  EXPECT_EQ(pred.shape(), Shape({1, 3, 1, 1}));
  EXPECT_TRUE(ops::AllFinite(pred));
}

TEST(ArimaTest, PredictBeforeTrainDies) {
  ArimaPredictor arima(ArimaOptions{}, 1, 0);
  Tensor x = Tensor::Ones(Shape{1, 12, 2, 1});
  EXPECT_DEATH(arima.Predict(x), "trained before prediction");
}

TEST(HistoricalAverageTest, PredictsWindowMean) {
  HistoricalAverage ha(2, 0);
  Tensor x(Shape{1, 4, 1, 2});
  for (int64_t t = 0; t < 4; ++t) {
    x.Set({0, t, 0, 0}, static_cast<float>(t + 1));  // mean = 2.5
    x.Set({0, t, 0, 1}, 100.0f);                     // other channel ignored
  }
  const Tensor pred = ha.Predict(x);
  EXPECT_EQ(pred.shape(), Shape({1, 2, 1, 1}));
  EXPECT_FLOAT_EQ(pred.FlatAt(0), 2.5f);
  EXPECT_FLOAT_EQ(pred.FlatAt(1), 2.5f);
}

class ZooTest : public ::testing::Test {
 protected:
  ZooTest() {
    data::TrafficConfig traffic;
    traffic.num_nodes = 6;
    traffic.num_days = 2;
    traffic.steps_per_day = 60;
    traffic.channels = 2;
    generator_ = std::make_unique<data::SyntheticTraffic>(traffic);
    Tensor series = generator_->GenerateSeries();
    normalizer_ = data::MinMaxNormalizer::Fit(series);
    dataset_ = std::make_unique<data::StDataset>(normalizer_.Transform(series),
                                                 data::WindowConfig{12, 1, 0});
    options_.encoder.num_nodes = 6;
    options_.encoder.in_channels = 2;
    options_.encoder.input_steps = 12;
    options_.encoder.hidden_channels = 4;
    options_.encoder.latent_channels = 8;
    options_.encoder.num_layers = 3;
    options_.encoder.adaptive_embedding_dim = 3;
    options_.deep.decoder_hidden = 16;
    options_.deep.max_batches_per_epoch = 3;
    options_.deep.batch_size = 4;
  }
  std::unique_ptr<data::SyntheticTraffic> generator_;
  data::MinMaxNormalizer normalizer_;
  std::unique_ptr<data::StDataset> dataset_;
  ZooOptions options_;
};

TEST_F(ZooTest, AllBaselinesTrainAndPredict) {
  for (const std::string& name : BaselineNames()) {
    auto model = MakeBaseline(name, options_, generator_->network());
    ASSERT_NE(model, nullptr) << name;
    EXPECT_EQ(model->name(), name);
    const std::vector<float> losses = model->TrainStage(*dataset_, 1);
    EXPECT_FALSE(losses.empty()) << name;
    EXPECT_TRUE(std::isfinite(losses[0])) << name;
    const auto [x, y] = dataset_->MakeBatch({0, 1});
    const Tensor pred = model->Predict(x);
    EXPECT_EQ(pred.shape(), y.shape()) << name;
    EXPECT_TRUE(ops::AllFinite(pred)) << name;
  }
}

TEST_F(ZooTest, UnknownBaselineDies) {
  EXPECT_DEATH(MakeBaseline("NotAModel", options_, generator_->network()),
               "unknown baseline");
}

TEST_F(ZooTest, DeepBaselineLossDecreases) {
  auto model = MakeBaseline("STGCN", options_, generator_->network());
  options_.deep.max_batches_per_epoch = 8;
  const std::vector<float> losses = model->TrainStage(*dataset_, 5);
  EXPECT_LT(losses.back(), losses.front());
}

TEST_F(ZooTest, EvaluatePredictorProducesDenormalizedMetrics) {
  auto model = MakeBaseline("HistoricalAverage", options_, generator_->network());
  model->TrainStage(*dataset_, 1);
  const data::EvalMetrics m =
      core::EvaluatePredictor(*model, *dataset_, normalizer_, 0);
  // Speeds are tens of mph; denormalized MAE must be in real units.
  EXPECT_GT(m.mae, 0.1);
  EXPECT_LT(m.mae, 60.0);
  EXPECT_GE(m.rmse, m.mae);
}

}  // namespace
}  // namespace baselines
}  // namespace urcl
