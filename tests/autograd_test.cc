#include "autograd/ops.h"

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"

namespace urcl {
namespace autograd {
namespace {

namespace top = ::urcl::ops;

Tensor T(const Shape& shape, const std::vector<float>& v) {
  return Tensor::FromVector(shape, v);
}

TEST(VariableTest, LeafBasics) {
  Variable v(Tensor::Scalar(2.0f), /*requires_grad=*/true);
  EXPECT_TRUE(v.IsValid());
  EXPECT_TRUE(v.requires_grad());
  EXPECT_FLOAT_EQ(v.value().Item(), 2.0f);
  EXPECT_FLOAT_EQ(v.grad().Item(), 0.0f);  // no backward yet
}

TEST(VariableTest, EmptyHandleIsInvalid) {
  Variable v;
  EXPECT_FALSE(v.IsValid());
}

TEST(VariableTest, BackwardOnNonScalarDies) {
  Variable v(Tensor::Ones(Shape{2}), true);
  EXPECT_DEATH(v.Backward(), "scalar");
}

TEST(VariableTest, SimpleChainRule) {
  // y = (x * x) + x  =>  dy/dx = 2x + 1 = 7 at x=3
  Variable x(Tensor::Scalar(3.0f), true);
  Variable y = Add(Mul(x, x), x);
  y.Backward();
  EXPECT_FLOAT_EQ(y.value().Item(), 12.0f);
  EXPECT_FLOAT_EQ(x.grad().Item(), 7.0f);
}

TEST(VariableTest, GradAccumulatesAcrossConsumers) {
  // y = x + x + x  =>  dy/dx = 3
  Variable x(Tensor::Scalar(1.0f), true);
  Variable y = Add(Add(x, x), x);
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad().Item(), 3.0f);
}

TEST(VariableTest, ZeroGradResets) {
  Variable x(Tensor::Scalar(2.0f), true);
  Variable y = Mul(x, x);
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad().Item(), 4.0f);
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad().Item(), 0.0f);
}

TEST(VariableTest, NoGradLeafStaysUntouched) {
  Variable x(Tensor::Scalar(2.0f), true);
  Variable c(Tensor::Scalar(10.0f), false);
  Variable y = Mul(x, c);
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad().Item(), 10.0f);
  EXPECT_FLOAT_EQ(c.grad().Item(), 0.0f);
}

TEST(VariableTest, DiamondGraph) {
  // a = x*x ; b = x+1 ; y = a*b  => dy/dx = 2x*b + a = 2*2*3 + 4 = 16
  Variable x(Tensor::Scalar(2.0f), true);
  Variable a = Mul(x, x);
  Variable b = AddScalar(x, 1.0f);
  Variable y = Mul(a, b);
  y.Backward();
  EXPECT_FLOAT_EQ(y.value().Item(), 12.0f);
  EXPECT_FLOAT_EQ(x.grad().Item(), 16.0f);
}

TEST(OpsTest, BroadcastAddReducesGrad) {
  Variable a(Tensor::Ones(Shape{2, 3}), true);
  Variable b(Tensor::Ones(Shape{3}), true);
  Variable y = Sum(Add(a, b));
  y.Backward();
  EXPECT_EQ(b.grad().shape(), Shape({3}));
  EXPECT_TRUE(top::AllClose(b.grad(), T(Shape{3}, {2, 2, 2})));
  EXPECT_TRUE(top::AllClose(a.grad(), Tensor::Ones(Shape{2, 3})));
}

TEST(OpsTest, MatMulGradShapes) {
  Rng rng(1);
  Variable a(Tensor::RandomNormal(Shape{2, 3}, rng), true);
  Variable b(Tensor::RandomNormal(Shape{3, 4}, rng), true);
  Variable y = Sum(MatMul(a, b));
  y.Backward();
  EXPECT_EQ(a.grad().shape(), Shape({2, 3}));
  EXPECT_EQ(b.grad().shape(), Shape({3, 4}));
}

TEST(OpsTest, MatMulGradValues) {
  // y = sum(a @ b); da = ones @ b^T, db = a^T @ ones
  Variable a(T(Shape{1, 2}, {1, 2}), true);
  Variable b(T(Shape{2, 1}, {3, 4}), true);
  Variable y = Sum(MatMul(a, b));
  y.Backward();
  EXPECT_TRUE(top::AllClose(a.grad(), T(Shape{1, 2}, {3, 4})));
  EXPECT_TRUE(top::AllClose(b.grad(), T(Shape{2, 1}, {1, 2})));
}

TEST(OpsTest, BatchedMatMulBroadcastGrad) {
  Rng rng(2);
  Variable a(Tensor::RandomNormal(Shape{4, 2, 3}, rng), true);
  Variable b(Tensor::RandomNormal(Shape{3, 5}, rng), true);  // shared across batch
  Variable y = Sum(MatMul(a, b));
  y.Backward();
  EXPECT_EQ(a.grad().shape(), Shape({4, 2, 3}));
  EXPECT_EQ(b.grad().shape(), Shape({3, 5}));
}

TEST(OpsTest, MeanGradIsUniform) {
  Variable a(Tensor::Zeros(Shape{4}), true);
  Mean(a).Backward();
  EXPECT_TRUE(top::AllClose(a.grad(), Tensor::Full(Shape{4}, 0.25f)));
}

TEST(OpsTest, SumAxisGrad) {
  Variable a(Tensor::Zeros(Shape{2, 3}), true);
  Variable y = Sum(Sum(a, {1}));  // same as Sum all
  y.Backward();
  EXPECT_TRUE(top::AllClose(a.grad(), Tensor::Ones(Shape{2, 3})));
}

TEST(OpsTest, ReluMasksGradient) {
  Variable a(T(Shape{3}, {-1, 0, 2}), true);
  Sum(Relu(a)).Backward();
  EXPECT_TRUE(top::AllClose(a.grad(), T(Shape{3}, {0, 0, 1})));
}

TEST(OpsTest, AbsSubgradient) {
  Variable a(T(Shape{3}, {-2, 0, 5}), true);
  Sum(Abs(a)).Backward();
  EXPECT_TRUE(top::AllClose(a.grad(), T(Shape{3}, {-1, 0, 1})));
}

TEST(OpsTest, ReshapeTransposeRoundTripGrad) {
  Variable a(Tensor::Arange(6), true);
  Variable y = Sum(Transpose(Reshape(a, Shape{2, 3}), {1, 0}));
  y.Backward();
  EXPECT_TRUE(top::AllClose(a.grad(), Tensor::Ones(Shape{6})));
}

TEST(OpsTest, SliceGradGoesToSlicedRegion) {
  Variable a(Tensor::Zeros(Shape{4}), true);
  Sum(Slice(a, {1}, {2})).Backward();
  EXPECT_TRUE(top::AllClose(a.grad(), T(Shape{4}, {0, 1, 1, 0})));
}

TEST(OpsTest, ConcatSplitsGradient) {
  Variable a(Tensor::Zeros(Shape{2}), true);
  Variable b(Tensor::Zeros(Shape{3}), true);
  Variable y = Concat({a, b}, 0);
  Variable weights(T(Shape{5}, {1, 2, 3, 4, 5}), false);
  Sum(Mul(y, weights)).Backward();
  EXPECT_TRUE(top::AllClose(a.grad(), T(Shape{2}, {1, 2})));
  EXPECT_TRUE(top::AllClose(b.grad(), T(Shape{3}, {3, 4, 5})));
}

TEST(OpsTest, PadGradDropsPadding) {
  Variable a(Tensor::Zeros(Shape{1, 2}), true);
  Sum(Pad(a, 1, 1, 1)).Backward();
  EXPECT_TRUE(top::AllClose(a.grad(), Tensor::Ones(Shape{1, 2})));
}

TEST(OpsTest, StopGradientBlocksFlow) {
  Variable x(Tensor::Scalar(3.0f), true);
  Variable y = Mul(StopGradient(Mul(x, x)), x);  // y = sg(x^2) * x
  y.Backward();
  // Only the direct x factor receives gradient: dy/dx = x^2 = 9.
  EXPECT_FLOAT_EQ(x.grad().Item(), 9.0f);
}

TEST(OpsTest, DropoutIdentityWhenEval) {
  Rng rng(3);
  Variable a(Tensor::Ones(Shape{8}), true);
  Variable out = Dropout(a, 0.5f, rng, /*training=*/false);
  EXPECT_TRUE(top::AllClose(out.value(), a.value()));
}

TEST(OpsTest, DropoutScalesSurvivors) {
  Rng rng(3);
  Variable a(Tensor::Ones(Shape{1000}), true);
  Variable out = Dropout(a, 0.5f, rng, /*training=*/true);
  int64_t zeros = 0;
  for (int64_t i = 0; i < out.value().NumElements(); ++i) {
    const float v = out.value().FlatAt(i);
    EXPECT_TRUE(v == 0.0f || v == 2.0f);
    zeros += v == 0.0f;
  }
  EXPECT_GT(zeros, 350);
  EXPECT_LT(zeros, 650);
  // Gradient flows only through survivors with the same scale.
  Sum(out).Backward();
  EXPECT_TRUE(top::AllClose(a.grad(), out.value()));
}

TEST(OpsTest, SoftmaxGradSumsToZero) {
  Rng rng(4);
  Variable a(Tensor::RandomNormal(Shape{2, 5}, rng), true);
  Variable s = Softmax(a, -1);
  // Weighted sum to create non-uniform upstream grads.
  Variable w(Tensor::Arange(10).Reshape(Shape{2, 5}), false);
  Sum(Mul(s, w)).Backward();
  // Each softmax row's input grads sum to ~0 (softmax is shift-invariant).
  Tensor row_sums = top::Sum(a.grad(), {1});
  EXPECT_TRUE(top::AllClose(row_sums, Tensor::Zeros(Shape{2}), 1e-5f));
}

TEST(OpsTest, TemporalConvShapes) {
  Rng rng(5);
  // [B=2, C_in=3, N=4, T=8], kernel K=2, dilation 2 -> T_out = 8 - 2 = 6.
  Variable in(Tensor::RandomNormal(Shape{2, 3, 4, 8}, rng), true);
  Variable w(Tensor::RandomNormal(Shape{5, 3, 1, 2}, rng), true);
  Variable out = TemporalConv2d(in, w, 2);
  EXPECT_EQ(out.shape(), Shape({2, 5, 4, 6}));
}

TEST(OpsTest, TemporalConvIdentityKernel) {
  // K=1 kernel with single 1.0 weight acts as channel-copy.
  Rng rng(6);
  Variable in(Tensor::RandomNormal(Shape{1, 1, 2, 4}, rng), false);
  Variable w(Tensor::Ones(Shape{1, 1, 1, 1}), false);
  Variable out = TemporalConv2d(in, w, 1);
  EXPECT_TRUE(top::AllClose(out.value(), in.value()));
}

TEST(OpsTest, TemporalConvCausalValues) {
  // Input 1D ramp, kernel [1, 1], dilation 1: out[t] = x[t] + x[t+1].
  Variable in(Tensor::Arange(5).Reshape(Shape{1, 1, 1, 5}), false);
  Variable w(Tensor::Ones(Shape{1, 1, 1, 2}), false);
  Variable out = TemporalConv2d(in, w, 1);
  EXPECT_TRUE(top::AllClose(out.value(), T(Shape{1, 1, 1, 4}, {1, 3, 5, 7})));
}

TEST(OpsTest, TemporalConvTooShortDies) {
  Variable in(Tensor::Zeros(Shape{1, 1, 1, 3}), false);
  Variable w(Tensor::Zeros(Shape{1, 1, 1, 2}), false);
  EXPECT_DEATH(TemporalConv2d(in, w, 4), "receptive field");
}

TEST(OpsTest, OperatorSugar) {
  Variable x(Tensor::Scalar(4.0f), true);
  Variable y(Tensor::Scalar(2.0f), true);
  EXPECT_FLOAT_EQ((x + y).value().Item(), 6.0f);
  EXPECT_FLOAT_EQ((x - y).value().Item(), 2.0f);
  EXPECT_FLOAT_EQ((x * y).value().Item(), 8.0f);
  EXPECT_FLOAT_EQ((x / y).value().Item(), 2.0f);
  EXPECT_FLOAT_EQ((-x).value().Item(), -4.0f);
}

TEST(OpsTest, SecondBackwardAccumulates) {
  // Running backward twice without ZeroGrad doubles leaf grads (documented
  // accumulate semantics, same as PyTorch).
  Variable x(Tensor::Scalar(3.0f), true);
  Variable y = Mul(x, x);
  y.Backward();
  const float g1 = x.grad().Item();
  Variable y2 = Mul(x, x);
  y2.Backward();
  EXPECT_FLOAT_EQ(x.grad().Item(), 2.0f * g1);
}

}  // namespace
}  // namespace autograd
}  // namespace urcl
