// Property-based tests: parameterized sweeps asserting invariants over many
// randomized configurations (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include <tuple>

#include "augment/augmentation.h"
#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "core/stmixup.h"
#include "data/normalizer.h"
#include "graph/generator.h"
#include "graph/transition.h"
#include "nn/loss.h"
#include "replay/samplers.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace {

namespace ag = ::urcl::autograd;
namespace top = ::urcl::ops;

// ---------------------------------------------------------------------------
// Broadcasting invariants across shape pairs.
class BroadcastProperty
    : public ::testing::TestWithParam<std::tuple<std::vector<int64_t>, std::vector<int64_t>>> {};

TEST_P(BroadcastProperty, AddCommutes) {
  const auto [da, db] = GetParam();
  Rng rng(1);
  Tensor a = Tensor::RandomNormal(Shape(da), rng);
  Tensor b = Tensor::RandomNormal(Shape(db), rng);
  EXPECT_TRUE(top::AllClose(top::Add(a, b), top::Add(b, a)));
}

TEST_P(BroadcastProperty, MulMatchesExplicitBroadcast) {
  const auto [da, db] = GetParam();
  Rng rng(2);
  Tensor a = Tensor::RandomNormal(Shape(da), rng);
  Tensor b = Tensor::RandomNormal(Shape(db), rng);
  const Shape out = BroadcastShapes(a.shape(), b.shape());
  const Tensor expected = top::Mul(top::BroadcastTo(a, out), top::BroadcastTo(b, out));
  EXPECT_TRUE(top::AllClose(top::Mul(a, b), expected));
}

TEST_P(BroadcastProperty, GradientOfSumAddIsCountOfUses) {
  const auto [da, db] = GetParam();
  Rng rng(3);
  ag::Variable a(Tensor::RandomNormal(Shape(da), rng), true);
  ag::Variable b(Tensor::RandomNormal(Shape(db), rng), true);
  ag::Sum(ag::Add(a, b)).Backward();
  // Each element of a is used (numel(out)/numel(a)) times.
  const Shape out = BroadcastShapes(Shape(da), Shape(db));
  const float uses_a =
      static_cast<float>(out.NumElements()) / static_cast<float>(Shape(da).NumElements());
  EXPECT_TRUE(top::AllClose(a.grad(), Tensor::Full(Shape(da), uses_a)));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BroadcastProperty,
    ::testing::Values(
        std::make_tuple(std::vector<int64_t>{3, 4}, std::vector<int64_t>{3, 4}),
        std::make_tuple(std::vector<int64_t>{3, 4}, std::vector<int64_t>{4}),
        std::make_tuple(std::vector<int64_t>{3, 1}, std::vector<int64_t>{1, 4}),
        std::make_tuple(std::vector<int64_t>{2, 3, 4}, std::vector<int64_t>{3, 4}),
        std::make_tuple(std::vector<int64_t>{2, 1, 4}, std::vector<int64_t>{3, 1}),
        std::make_tuple(std::vector<int64_t>{5}, std::vector<int64_t>{})));

// ---------------------------------------------------------------------------
// MatMul associativity/identity across sizes.
class MatMulProperty : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulProperty, MatchesNaiveTripleLoop) {
  const auto [m, k, n] = GetParam();
  Rng rng(4);
  Tensor a = Tensor::RandomNormal(Shape{m, k}, rng);
  Tensor b = Tensor::RandomNormal(Shape{k, n}, rng);
  const Tensor fast = top::MatMul(a, b);
  Tensor slow(Shape{m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += a.At({i, kk}) * b.At({kk, j});
      slow.Set({i, j}, acc);
    }
  }
  EXPECT_TRUE(top::AllClose(fast, slow, 1e-4f, 1e-4f));
}

TEST_P(MatMulProperty, TransposeIdentity) {
  // (A B)^T == B^T A^T
  const auto [m, k, n] = GetParam();
  Rng rng(5);
  Tensor a = Tensor::RandomNormal(Shape{m, k}, rng);
  Tensor b = Tensor::RandomNormal(Shape{k, n}, rng);
  const Tensor lhs = top::TransposeLast2(top::MatMul(a, b));
  const Tensor rhs = top::MatMul(top::TransposeLast2(b), top::TransposeLast2(a));
  EXPECT_TRUE(top::AllClose(lhs, rhs, 1e-4f, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatMulProperty,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(2, 3, 4),
                                           std::make_tuple(5, 1, 3),
                                           std::make_tuple(7, 8, 2),
                                           std::make_tuple(4, 16, 4)));

// ---------------------------------------------------------------------------
// Transition matrices stay row-stochastic for random graphs.
class TransitionProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TransitionProperty, SupportsAreRowStochastic) {
  Rng rng(GetParam());
  graph::SensorNetwork g = graph::RandomGeometricGraph(12, 0.3f, rng);
  for (const Tensor& p : graph::BuildSupports(g)) {
    const Tensor row_sums = top::Sum(p, {1});
    EXPECT_TRUE(top::AllClose(row_sums, Tensor::Ones(Shape{12}), 1e-4f));
    EXPECT_GE(top::Min(p).Item(), 0.0f);
  }
}

TEST_P(TransitionProperty, LaplacianEigenvalueBounds) {
  // x^T L x >= 0 for random x (positive semidefinite check by sampling).
  Rng rng(GetParam() + 100);
  graph::SensorNetwork g = graph::RandomGeometricGraph(10, 0.3f, rng);
  const Tensor l = graph::NormalizedLaplacian(g.AdjacencyMatrix());
  for (int trial = 0; trial < 5; ++trial) {
    Tensor x = Tensor::RandomNormal(Shape{10, 1}, rng);
    const float quad = top::MatMul(top::TransposeLast2(x), top::MatMul(l, x)).Item();
    EXPECT_GE(quad, -1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransitionProperty, ::testing::Range<uint64_t>(0, 6));

// ---------------------------------------------------------------------------
// Augmentations keep shapes and never produce non-finite values, across all
// five methods and several seeds.
class AugmentationProperty
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(AugmentationProperty, ShapePreservingAndFinite) {
  const auto [index, seed] = GetParam();
  Rng rng(seed);
  graph::SensorNetwork g = graph::RandomGeometricGraph(10, 0.35f, rng);
  Tensor obs = Tensor::RandomUniform(Shape{3, 8, 10, 2}, rng, 0.0f, 1.0f);
  const auto augmentations = augment::MakeDefaultAugmentations();
  const augment::AugmentedView view =
      augmentations[static_cast<size_t>(index)]->Apply(obs, g, rng);
  EXPECT_EQ(view.observations.shape(), obs.shape());
  EXPECT_EQ(view.adjacency.shape(), Shape({10, 10}));
  EXPECT_TRUE(top::AllFinite(view.observations));
  EXPECT_TRUE(top::AllFinite(view.adjacency));
}

TEST_P(AugmentationProperty, AugmentedAdjacencyStillNormalizes) {
  // Whatever the augmentation does, BuildSupportsDense must produce valid
  // row-stochastic transitions (the encoder depends on this).
  const auto [index, seed] = GetParam();
  Rng rng(seed + 31);
  graph::SensorNetwork g = graph::RandomGeometricGraph(10, 0.35f, rng);
  Tensor obs = Tensor::RandomUniform(Shape{2, 8, 10, 2}, rng, 0.0f, 1.0f);
  const auto augmentations = augment::MakeDefaultAugmentations();
  const augment::AugmentedView view =
      augmentations[static_cast<size_t>(index)]->Apply(obs, g, rng);
  for (const Tensor& p : graph::BuildSupportsDense(view.adjacency, false)) {
    EXPECT_TRUE(top::AllClose(top::Sum(p, {1}), Tensor::Ones(Shape{10}), 1e-4f));
  }
}

INSTANTIATE_TEST_SUITE_P(MethodsAndSeeds, AugmentationProperty,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Values<uint64_t>(1, 2, 3)));

// ---------------------------------------------------------------------------
// STMixup invariants over alpha.
class MixupProperty : public ::testing::TestWithParam<float> {};

TEST_P(MixupProperty, OutputIsConvexCombination) {
  const float alpha = GetParam();
  Rng rng(9);
  Tensor cx = Tensor::RandomUniform(Shape{4, 6, 5, 2}, rng, 0.0f, 1.0f);
  Tensor cy = Tensor::RandomUniform(Shape{4, 1, 5, 1}, rng, 0.0f, 1.0f);
  Tensor rx = Tensor::RandomUniform(Shape{2, 6, 5, 2}, rng, 0.0f, 1.0f);
  Tensor ry = Tensor::RandomUniform(Shape{2, 1, 5, 1}, rng, 0.0f, 1.0f);
  for (int trial = 0; trial < 5; ++trial) {
    const core::MixupResult mix = core::StMixup(cx, cy, rx, ry, alpha, rng);
    EXPECT_GE(mix.lambda, 0.0f);
    EXPECT_LE(mix.lambda, 1.0f);
    // Convexity: outputs stay within [0, 1] since inputs do.
    EXPECT_GE(top::Min(mix.inputs).Item(), 0.0f);
    EXPECT_LE(top::Max(mix.inputs).Item(), 1.0f);
    EXPECT_GE(top::Min(mix.targets).Item(), 0.0f);
    EXPECT_LE(top::Max(mix.targets).Item(), 1.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, MixupProperty, ::testing::Values(0.1f, 0.5f, 1.0f, 2.0f));

// ---------------------------------------------------------------------------
// Normalizer round trips across random value ranges.
class NormalizerProperty : public ::testing::TestWithParam<std::tuple<float, float>> {};

TEST_P(NormalizerProperty, RoundTripAndRange) {
  const auto [lo, span] = GetParam();
  Rng rng(10);
  Tensor series = Tensor::RandomUniform(Shape{30, 4, 2}, rng, lo, lo + span);
  const data::MinMaxNormalizer norm = data::MinMaxNormalizer::Fit(series);
  const Tensor t = norm.Transform(series);
  EXPECT_GE(top::Min(t).Item(), -1e-5f);
  EXPECT_LE(top::Max(t).Item(), 1.0f + 1e-5f);
  EXPECT_TRUE(top::AllClose(norm.InverseTransform(t), series, 2e-3f * (std::fabs(lo) + span)));
}

INSTANTIATE_TEST_SUITE_P(Ranges, NormalizerProperty,
                         ::testing::Values(std::make_tuple(0.0f, 1.0f),
                                           std::make_tuple(-50.0f, 100.0f),
                                           std::make_tuple(1000.0f, 5.0f),
                                           std::make_tuple(-0.01f, 0.02f)));

// ---------------------------------------------------------------------------
// GraphCL loss: gradcheck across batch sizes and temperatures.
class GraphClProperty : public ::testing::TestWithParam<std::tuple<int, float>> {};

TEST_P(GraphClProperty, GradCheckPasses) {
  const auto [batch, temperature] = GetParam();
  Rng rng(11);
  std::vector<ag::Variable> inputs;
  for (int i = 0; i < 4; ++i) {
    // The loss stop-gradients z1/z2 (inputs 2 and 3): only p1/p2 are
    // differentiable from the checker's perspective.
    inputs.emplace_back(Tensor::RandomUniform(Shape{batch, 5}, rng, -1.0f, 1.0f), i < 2);
  }
  const float t = temperature;
  const auto result = ag::CheckGradients(
      [t](const std::vector<ag::Variable>& in) {
        return nn::GraphClLoss(in[0], in[1], in[2], in[3], t);
      },
      inputs, 1e-2f, 4e-2f);
  EXPECT_TRUE(result.passed) << "batch=" << batch << " T=" << temperature
                             << " max_rel=" << result.max_rel_error;
}

INSTANTIATE_TEST_SUITE_P(BatchTemp, GraphClProperty,
                         ::testing::Combine(::testing::Values(2, 3, 5),
                                            ::testing::Values(0.3f, 0.5f, 1.0f)));

// ---------------------------------------------------------------------------
// Softmax invariants across axes.
class SoftmaxProperty : public ::testing::TestWithParam<int64_t> {};

TEST_P(SoftmaxProperty, SumsToOneAndShiftInvariant) {
  const int64_t axis = GetParam();
  Rng rng(12);
  Tensor x = Tensor::RandomNormal(Shape{3, 4, 5}, rng, 0.0f, 2.0f);
  const Tensor s = top::Softmax(x, axis);
  const Tensor sums = top::Sum(s, {axis});
  EXPECT_TRUE(top::AllClose(sums, Tensor::Ones(sums.shape()), 1e-5f));
  // Shift invariance.
  const Tensor shifted = top::Softmax(top::AddScalar(x, 5.0f), axis);
  EXPECT_TRUE(top::AllClose(s, shifted, 1e-5f));
}

INSTANTIATE_TEST_SUITE_P(Axes, SoftmaxProperty, ::testing::Values(0, 1, 2, -1));

}  // namespace
}  // namespace urcl
