#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/flags.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"

namespace urcl {
namespace {

TEST(RngTest, UniformBounds) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const float v = rng.Uniform(-1.0f, 2.0f);
    EXPECT_GE(v, -1.0f);
    EXPECT_LT(v, 2.0f);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(2);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(0, 3));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(RngTest, BetaInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const float v = rng.Beta(0.5f, 0.5f);
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(RngTest, BetaSymmetricMean) {
  Rng rng(4);
  double sum = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) sum += rng.Beta(2.0f, 2.0f);
  EXPECT_NEAR(sum / n, 0.5, 0.03);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(5);
  const std::vector<int64_t> sample = rng.SampleWithoutReplacement(10, 7);
  std::set<int64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 7u);
  for (const int64_t v : sample) EXPECT_TRUE(v >= 0 && v < 10);
}

TEST(RngTest, SampleTooManyDies) {
  Rng rng(6);
  EXPECT_DEATH(rng.SampleWithoutReplacement(3, 4), "cannot sample");
}

TEST(RngTest, PermutationCoversAll) {
  Rng rng(7);
  std::vector<int64_t> perm = rng.Permutation(20);
  std::sort(perm.begin(), perm.end());
  for (int64_t i = 0; i < 20; ++i) EXPECT_EQ(perm[static_cast<size_t>(i)], i);
}

TEST(RngTest, Determinism) {
  Rng a(42), b(42);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
}

TEST(FlagsTest, ParsesBothForms) {
  const char* argv[] = {"prog", "--nodes", "24", "--days=7", "--verbose", "--rate", "0.5"};
  Flags flags(7, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("nodes", 0), 24);
  EXPECT_EQ(flags.GetInt("days", 0), 7);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate", 0.0), 0.5);
  EXPECT_EQ(flags.GetInt("missing", -1), -1);
  EXPECT_EQ(flags.GetString("missing", "x"), "x");
  EXPECT_TRUE(flags.Has("nodes"));
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"A", "LongHeader"});
  table.AddRow({"hello", "1"});
  table.AddRow({"x"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| A     | LongHeader |"), std::string::npos);
  EXPECT_NE(out.find("| hello | 1          |"), std::string::npos);
  EXPECT_NE(out.find("| x     |            |"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatting) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(2.0, 0), "2");
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  const double lap = timer.Restart();
  EXPECT_GE(lap, 0.0);
  EXPECT_LE(timer.ElapsedSeconds(), lap + 1.0);
}

}  // namespace
}  // namespace urcl
