// Edge cases and geometry properties not covered elsewhere: encoder dilation
// selection across window sizes, augmentation determinism, tensor-op corner
// cases, and stream-splitter configuration variants.
#include <gtest/gtest.h>

#include <tuple>

#include "augment/augmentation.h"
#include "core/stencoder.h"
#include "data/stream.h"
#include "graph/generator.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace {

namespace top = ::urcl::ops;
using autograd::Variable;

// ---------------------------------------------------------------------------
// GraphWaveNet encoder geometry: for every (input_steps, num_layers) combo
// the constructor must pick dilations that fit and leave latent_time >= 1.
class EncoderGeometry
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(EncoderGeometry, DilationsFitWindow) {
  const auto [input_steps, num_layers] = GetParam();
  Rng rng(1);
  core::BackboneConfig config;
  config.num_nodes = 5;
  config.in_channels = 2;
  config.input_steps = input_steps;
  config.hidden_channels = 4;
  config.latent_channels = 8;
  config.num_layers = num_layers;
  config.adaptive_embedding_dim = 3;
  core::GraphWaveNetEncoder encoder(config, rng);

  int64_t consumed = 0;
  for (const int64_t d : encoder.dilations()) {
    EXPECT_GE(d, 1);
    consumed += d;
  }
  EXPECT_EQ(encoder.latent_time(), input_steps - consumed);
  EXPECT_GE(encoder.latent_time(), 1);

  // And the forward pass agrees.
  Rng graph_rng(2);
  graph::SensorNetwork g = graph::RandomGeometricGraph(5, 0.5f, graph_rng);
  Variable x(Tensor::RandomUniform(Shape{1, input_steps, 5, 2}, rng), false);
  Variable latent = encoder.Encode(x, g.AdjacencyMatrix());
  EXPECT_EQ(latent.shape().dim(3), encoder.latent_time());
}

INSTANTIATE_TEST_SUITE_P(Windows, EncoderGeometry,
                         ::testing::Values(std::make_tuple(6, 2),
                                           std::make_tuple(8, 3),
                                           std::make_tuple(12, 5),
                                           std::make_tuple(16, 5),
                                           std::make_tuple(24, 6),
                                           std::make_tuple(12, 8)));

TEST(EncoderGeometryTest, WindowTooSmallDies) {
  Rng rng(3);
  core::BackboneConfig config;
  config.num_nodes = 4;
  config.in_channels = 1;
  config.input_steps = 3;
  config.num_layers = 3;  // needs at least 4 steps
  config.hidden_channels = 2;
  config.latent_channels = 4;
  EXPECT_DEATH(core::GraphWaveNetEncoder(config, rng), "must exceed");
}

// ---------------------------------------------------------------------------
// Augmentations are deterministic given the RNG state.
TEST(AugmentationDeterminismTest, SameSeedSameView) {
  Rng graph_rng(4);
  graph::SensorNetwork g = graph::RandomGeometricGraph(8, 0.4f, graph_rng);
  Rng data_rng(5);
  Tensor obs = Tensor::RandomUniform(Shape{2, 8, 8, 2}, data_rng, 0.0f, 1.0f);
  for (const auto& augmentation : augment::MakeDefaultAugmentations()) {
    Rng rng_a(42), rng_b(42);
    const augment::AugmentedView a = augmentation->Apply(obs, g, rng_a);
    const augment::AugmentedView b = augmentation->Apply(obs, g, rng_b);
    EXPECT_TRUE(top::AllClose(a.observations, b.observations, 0.0f, 0.0f))
        << augmentation->name();
    EXPECT_TRUE(top::AllClose(a.adjacency, b.adjacency, 0.0f, 0.0f))
        << augmentation->name();
  }
}

// ---------------------------------------------------------------------------
// Tensor-op corner cases.
TEST(OpsEdgeTest, ConcatSingleTensorIsCopy) {
  Rng rng(6);
  Tensor a = Tensor::RandomNormal(Shape{2, 3}, rng);
  EXPECT_TRUE(top::AllClose(top::Concat({a}, 0), a, 0.0f, 0.0f));
}

TEST(OpsEdgeTest, StackNegativeAxis) {
  Tensor a = Tensor::FromVector(Shape{2}, {1, 2});
  Tensor b = Tensor::FromVector(Shape{2}, {3, 4});
  const Tensor s = top::Stack({a, b}, -1);
  EXPECT_EQ(s.shape(), Shape({2, 2}));
  EXPECT_FLOAT_EQ(s.At({0, 1}), 3.0f);  // axis -1 interleaves
}

TEST(OpsEdgeTest, PadWithValue) {
  Tensor a = Tensor::Ones(Shape{2});
  const Tensor p = top::Pad(a, 0, 1, 1, -5.0f);
  EXPECT_FLOAT_EQ(p.FlatAt(0), -5.0f);
  EXPECT_FLOAT_EQ(p.FlatAt(1), 1.0f);
  EXPECT_FLOAT_EQ(p.FlatAt(3), -5.0f);
}

TEST(OpsEdgeTest, MeanAllKeepdimsKeepsRank) {
  Tensor a = Tensor::FromVector(Shape{2, 2}, {1, 2, 3, 4});
  const Tensor m = top::Mean(a, {}, /*keepdims=*/true);
  EXPECT_EQ(m.shape(), Shape({1, 1}));
  EXPECT_FLOAT_EQ(m.FlatAt(0), 2.5f);
}

TEST(OpsEdgeTest, SliceZeroSize) {
  Tensor a = Tensor::Ones(Shape{3, 4});
  const Tensor s = top::Slice(a, {1, 0}, {0, 4});
  EXPECT_EQ(s.shape(), Shape({0, 4}));
  EXPECT_EQ(s.NumElements(), 0);
}

TEST(OpsEdgeTest, ScalarBroadcastThroughEverything) {
  Tensor scalar = Tensor::Scalar(2.0f);
  Tensor a = Tensor::Full(Shape{2, 3, 4}, 3.0f);
  EXPECT_TRUE(top::AllClose(top::Mul(a, scalar), Tensor::Full(Shape{2, 3, 4}, 6.0f)));
  EXPECT_TRUE(top::AllClose(top::Mul(scalar, a), Tensor::Full(Shape{2, 3, 4}, 6.0f)));
}

TEST(OpsEdgeTest, TransposeIdentityPermutation) {
  Rng rng(7);
  Tensor a = Tensor::RandomNormal(Shape{2, 3, 4}, rng);
  EXPECT_TRUE(top::AllClose(top::Transpose(a, {0, 1, 2}), a, 0.0f, 0.0f));
}

// ---------------------------------------------------------------------------
// Stream splitting with non-default configurations.
TEST(StreamConfigTest, TwoIncrementalSets) {
  Tensor series(Shape{300, 2, 1});
  for (int64_t t = 0; t < 300; ++t) {
    series.Set({t, 0, 0}, static_cast<float>(t));
    series.Set({t, 1, 0}, static_cast<float>(t));
  }
  data::StDataset dataset(series, data::WindowConfig{4, 1, 0});
  data::StreamConfig config;
  config.base_fraction = 0.5f;
  config.num_incremental = 2;
  data::StreamSplitter stream(dataset, config);
  ASSERT_EQ(stream.NumStages(), 3);
  EXPECT_EQ(stream.Stage(0).train.num_steps() + stream.Stage(0).val.num_steps() +
                stream.Stage(0).test.num_steps(),
            150);
}

TEST(StreamConfigTest, ZeroIncrementalIsBaseOnly) {
  Tensor series = Tensor::Ones(Shape{200, 2, 1});
  data::StDataset dataset(series, data::WindowConfig{4, 1, 0});
  data::StreamConfig config;
  config.base_fraction = 0.9f;
  config.num_incremental = 0;
  data::StreamSplitter stream(dataset, config);
  EXPECT_EQ(stream.NumStages(), 1);
  EXPECT_EQ(stream.Stage(0).name, "B_set");
}

}  // namespace
}  // namespace urcl
