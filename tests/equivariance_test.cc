// Structural property tests: graph-convolution permutation equivariance
// (relabeling sensors permutes outputs identically), temporal-convolution
// shift behaviour against a naive reference, and the FC-LSTM baseline.
#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "baselines/fclstm.h"
#include "baselines/zoo.h"
#include "core/stencoder.h"
#include "data/synthetic.h"
#include "graph/generator.h"
#include "graph/transition.h"
#include "nn/gcn.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace {

namespace ag = ::urcl::autograd;
namespace top = ::urcl::ops;
using autograd::Variable;

// Applies a node permutation to a [B, C, N, T] tensor.
Tensor PermuteNodes(const Tensor& x, const std::vector<int64_t>& perm) {
  Tensor out(x.shape());
  for (int64_t b = 0; b < x.dim(0); ++b) {
    for (int64_t c = 0; c < x.dim(1); ++c) {
      for (int64_t n = 0; n < x.dim(2); ++n) {
        for (int64_t t = 0; t < x.dim(3); ++t) {
          out.Set({b, c, perm[static_cast<size_t>(n)], t}, x.At({b, c, n, t}));
        }
      }
    }
  }
  return out;
}

// Applies a node permutation to an [N, N] adjacency.
Tensor PermuteAdjacency(const Tensor& a, const std::vector<int64_t>& perm) {
  Tensor out(a.shape());
  for (int64_t i = 0; i < a.dim(0); ++i) {
    for (int64_t j = 0; j < a.dim(1); ++j) {
      out.Set({perm[static_cast<size_t>(i)], perm[static_cast<size_t>(j)]}, a.At({i, j}));
    }
  }
  return out;
}

class EquivarianceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EquivarianceTest, DiffusionGcnIsPermutationEquivariant) {
  Rng rng(GetParam());
  const int64_t n = 8;
  graph::SensorNetwork g = graph::RandomGeometricGraph(n, 0.4f, rng);
  // A GCN with only static supports (adaptive embeddings are node-identity
  // bound and intentionally break equivariance).
  nn::DiffusionGcn gcn(3, 3, 1, /*use_adaptive=*/false, 2, rng);
  const Tensor adjacency = g.AdjacencyMatrix();
  Tensor x = Tensor::RandomNormal(Shape{2, 3, n, 4}, rng);
  const std::vector<int64_t> perm = rng.Permutation(n);

  const Tensor support = graph::BuildSupportsDense(adjacency, false)[0];
  const Tensor support_perm =
      graph::BuildSupportsDense(PermuteAdjacency(adjacency, perm), false)[0];

  const Tensor y = gcn.Forward(Variable(x, false), {support}, Variable()).value();
  const Tensor y_perm =
      gcn.Forward(Variable(PermuteNodes(x, perm), false), {support_perm}, Variable())
          .value();
  EXPECT_TRUE(top::AllClose(PermuteNodes(y, perm), y_perm, 1e-4f, 1e-4f));
}

TEST_P(EquivarianceTest, GatedTcnIsNodeIndependent) {
  // The temporal convolution must treat nodes independently: permuting node
  // order commutes with the layer even without touching any graph.
  Rng rng(GetParam() + 50);
  nn::GatedTcn tcn(2, 3, 2, 2, rng);
  const int64_t n = 6;
  Tensor x = Tensor::RandomNormal(Shape{2, 2, n, 9}, rng);
  const std::vector<int64_t> perm = rng.Permutation(n);
  const Tensor y = tcn.Forward(Variable(x, false)).value();
  const Tensor y_perm = tcn.Forward(Variable(PermuteNodes(x, perm), false)).value();
  EXPECT_TRUE(top::AllClose(PermuteNodes(y, perm), y_perm, 1e-5f));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivarianceTest, ::testing::Range<uint64_t>(0, 4));

TEST(TemporalConvReferenceTest, MatchesNaiveLoop) {
  Rng rng(9);
  const Tensor in = Tensor::RandomNormal(Shape{2, 3, 2, 10}, rng);
  const Tensor w = Tensor::RandomNormal(Shape{4, 3, 1, 2}, rng);
  const int64_t dilation = 3;
  const Tensor fast =
      ag::TemporalConv2d(Variable(in, false), Variable(w, false), dilation).value();
  // Naive reference.
  const int64_t t_out = 10 - dilation * (2 - 1);
  Tensor slow(Shape{2, 4, 2, t_out});
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t co = 0; co < 4; ++co) {
      for (int64_t node = 0; node < 2; ++node) {
        for (int64_t t = 0; t < t_out; ++t) {
          float acc = 0.0f;
          for (int64_t ci = 0; ci < 3; ++ci) {
            for (int64_t k = 0; k < 2; ++k) {
              acc += in.At({b, ci, node, t + dilation * k}) * w.At({co, ci, 0, k});
            }
          }
          slow.Set({b, co, node, t}, acc);
        }
      }
    }
  }
  EXPECT_TRUE(top::AllClose(fast, slow, 1e-4f, 1e-4f));
}

TEST(FcLstmTest, ShapesAndGradients) {
  Rng rng(11);
  core::BackboneConfig config;
  config.num_nodes = 5;
  config.in_channels = 2;
  config.input_steps = 12;
  config.hidden_channels = 4;
  config.latent_channels = 8;
  baselines::FcLstmEncoder encoder(config, rng);
  Variable x(Tensor::RandomUniform(Shape{3, 12, 5, 2}, rng), false);
  Variable latent = encoder.Encode(x, Tensor::Zeros(Shape{5, 5}));
  EXPECT_EQ(latent.shape(), Shape({3, 8, 5, 1}));
  ag::Mean(ag::Square(latent)).Backward();
  for (const Variable& p : encoder.Parameters()) {
    EXPECT_EQ(p.grad().shape(), p.value().shape());
  }
}

TEST(FcLstmTest, GraphBlind) {
  // Different adjacency matrices must not change the output.
  Rng rng(12);
  core::BackboneConfig config;
  config.num_nodes = 4;
  config.in_channels = 1;
  config.input_steps = 8;
  config.hidden_channels = 3;
  config.latent_channels = 6;
  baselines::FcLstmEncoder encoder(config, rng);
  Variable x(Tensor::RandomUniform(Shape{1, 8, 4, 1}, rng), false);
  const Tensor a = encoder.Encode(x, Tensor::Zeros(Shape{4, 4})).value();
  const Tensor b = encoder.Encode(x, Tensor::Ones(Shape{4, 4})).value();
  EXPECT_TRUE(top::AllClose(a, b));
}

TEST(FcLstmTest, InZooAndTrains) {
  data::TrafficConfig traffic;
  traffic.num_nodes = 5;
  traffic.num_days = 2;
  traffic.steps_per_day = 48;
  data::SyntheticTraffic generator(traffic);
  Tensor series = generator.GenerateSeries();
  const data::MinMaxNormalizer norm = data::MinMaxNormalizer::Fit(series);
  data::StDataset dataset(norm.Transform(series), data::WindowConfig{12, 1, 0});

  baselines::ZooOptions options;
  options.encoder.num_nodes = 5;
  options.encoder.in_channels = 2;
  options.encoder.input_steps = 12;
  options.encoder.hidden_channels = 4;
  options.encoder.latent_channels = 8;
  options.deep.decoder_hidden = 16;
  options.deep.max_batches_per_epoch = 4;
  auto model = baselines::MakeBaseline("FC-LSTM", options, generator.network());
  const std::vector<float> losses = model->TrainStage(dataset, 2);
  EXPECT_TRUE(std::isfinite(losses.back()));
  const auto [x, y] = dataset.MakeBatch({0, 1});
  EXPECT_EQ(model->Predict(x).shape(), y.shape());
}

}  // namespace
}  // namespace urcl
