// Serving failure-model tests (ctest labels `serving` + `robustness`,
// DESIGN.md §11): corrupt snapshot containers are quarantined with distinct
// diagnostics and zero effect on the live version; non-finite weights and
// explosive canaries never go live; an error spike on a freshly swapped
// version rolls the service back to last-good; degraded mode answers from the
// fallback baseline instead of failing closed; deadline-aware admission sheds
// unmeetable queries with a typed status.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "checkpoint/container.h"
#include "obs/flight_recorder.h"
#include "core/urcl.h"
#include "data/synthetic.h"
#include "graph/generator.h"
#include "serve/admission.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "tensor/serialize.h"

namespace urcl {
namespace serve {
namespace {

core::UrclConfig TinyConfig(int64_t nodes, int64_t input_steps = 12) {
  core::UrclConfig config;
  config.encoder.num_nodes = nodes;
  config.encoder.in_channels = 2;
  config.encoder.input_steps = input_steps;
  config.encoder.hidden_channels = 4;
  config.encoder.latent_channels = 8;
  config.encoder.num_layers = 2;
  config.encoder.adaptive_embedding_dim = 3;
  config.decoder_hidden = 16;
  config.proj_hidden = 8;
  config.batch_size = 2;
  config.max_batches_per_epoch = 4;
  config.replay_sample_count = 2;
  config.rmir_scan_size = 4;
  config.rmir_candidate_pool = 4;
  config.buffer_capacity = 16;
  return config;
}

// Re-serializes `state` in the trainer's publish layout (uint64 count + one
// SaveTensor block per parameter) so tests can build containers with
// deliberately poisoned weights.
std::string SerializeState(const std::vector<Tensor>& state) {
  std::ostringstream out;
  io::WritePod<uint64_t>(out, static_cast<uint64_t>(state.size()));
  for (const Tensor& tensor : state) SaveTensor(tensor, out);
  return out.str();
}

// A copy of `container` whose "model" section holds the same architecture
// with every parameter element overwritten by `value`.
checkpoint::Container PoisonWeights(const checkpoint::Container& container,
                                    const core::UrclConfig& config, float value) {
  std::shared_ptr<const ModelSnapshot> snapshot;
  const Status status = ParseModelSnapshot(container, config, &snapshot);
  EXPECT_TRUE(status.ok()) << status.ToString();
  std::vector<Tensor> state = snapshot->model->StateDict();
  for (Tensor& tensor : state) {
    float* data = tensor.mutable_data();
    for (int64_t i = 0; i < tensor.NumElements(); ++i) data[i] = value;
  }
  checkpoint::Container poisoned;
  poisoned.Add("model", SerializeState(state));
  poisoned.Add("serve_meta", *container.Find("serve_meta"));
  return poisoned;
}

class ServeRobustnessTest : public ::testing::Test {
 protected:
  static constexpr int64_t kNodes = 5;

  void SetUp() override {
    data::TrafficConfig traffic;
    traffic.num_nodes = kNodes;
    traffic.num_days = 2;
    traffic.steps_per_day = 60;
    traffic.channels = 2;
    generator_ = std::make_unique<data::SyntheticTraffic>(traffic);
    Tensor series = generator_->GenerateSeries();
    normalizer_ = data::MinMaxNormalizer::Fit(series);
    dataset_ = std::make_unique<data::StDataset>(normalizer_.Transform(series),
                                                 data::WindowConfig{12, 1, 0});
  }

  // Trains one stage and returns the trainer's publications (>= 1).
  std::vector<checkpoint::Container> TrainAndCollect(const core::UrclConfig& config,
                                                     int64_t stages = 1) {
    core::UrclTrainer trainer(config, generator_->network());
    std::vector<checkpoint::Container> published;
    trainer.SetSnapshotSink([&](const checkpoint::Container& c) { published.push_back(c); });
    for (int64_t s = 0; s < stages; ++s) {
      trainer.BeginStage(s);
      trainer.TrainStage(*dataset_, 1);
    }
    EXPECT_GE(published.size(), static_cast<size_t>(stages));
    return published;
  }

  core::PredictRequest MakeRequest(uint64_t seed = 5) {
    core::PredictRequest request;
    Rng rng(seed);
    request.inputs = Tensor::RandomUniform(Shape{1, 12, kNodes, 2}, rng, 0.0f, 1.0f);
    return request;
  }

  std::unique_ptr<data::SyntheticTraffic> generator_;
  data::MinMaxNormalizer normalizer_;
  std::unique_ptr<data::StDataset> dataset_;
};

TEST_F(ServeRobustnessTest, CorruptContainerBytesRejectedWithDistinctDiagnostics) {
  const core::UrclConfig config = TinyConfig(kNodes);
  const std::vector<checkpoint::Container> published = TrainAndCollect(config);
  const std::string bytes = published.back().SerializeToString();
  const Tensor probe = Tensor::Zeros(Shape{1, 12, kNodes, 2});
  const Tensor adjacency = generator_->network().AdjacencyMatrix();
  const AdmissionConfig admission;
  std::shared_ptr<const ModelSnapshot> out;

  // Truncated file: cut right after the magic, before the body is complete.
  const Status truncated = AdmitSnapshotBytes(bytes.substr(0, 10), config,
                                              admission, probe, adjacency, &out);
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.code(), StatusCode::kDataLoss);
  EXPECT_NE(truncated.message().find("truncated"), std::string::npos) << truncated.ToString();

  // Bit-flipped payload: CRC catches a single flipped bit mid-body.
  std::string flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x10;
  const Status crc = AdmitSnapshotBytes(flipped, config, admission, probe, adjacency, &out);
  ASSERT_FALSE(crc.ok());
  EXPECT_EQ(crc.code(), StatusCode::kDataLoss);
  EXPECT_NE(crc.message().find("CRC mismatch"), std::string::npos) << crc.ToString();

  // Wrong section count: a container missing serve_meta parses (its own CRCs
  // are fine) but fails the snapshot schema gate.
  checkpoint::Container missing_meta;
  missing_meta.Add("model", *published.back().Find("model"));
  const Status missing = AdmitSnapshotBytes(missing_meta.SerializeToString(), config,
                                            admission, probe, adjacency, &out);
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.message().find("missing the serve_meta section"), std::string::npos)
      << missing.ToString();

  // Version mismatch: an unknown serve_meta schema version is typed
  // kInvalidArgument (the bytes are intact; the producer is incompatible).
  std::string meta = *published.back().Find("serve_meta");
  meta[0] = 99;  // schema is a little-endian uint32 at offset 0
  checkpoint::Container wrong_schema;
  wrong_schema.Add("model", *published.back().Find("model"));
  wrong_schema.Add("serve_meta", meta);
  const Status schema = AdmitSnapshotBytes(wrong_schema.SerializeToString(), config,
                                           admission, probe, adjacency, &out);
  ASSERT_FALSE(schema.ok());
  EXPECT_EQ(schema.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(schema.message().find("unsupported serve_meta schema version"), std::string::npos)
      << schema.ToString();

  // Architecture mismatch: same bytes, different model config.
  core::UrclConfig other = config;
  other.encoder.num_layers = 3;
  const Status arch = AdmitSnapshotBytes(bytes, other, admission, probe, adjacency, &out);
  ASSERT_FALSE(arch.ok());
  EXPECT_EQ(arch.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(arch.message().find("architecture mismatch"), std::string::npos)
      << arch.ToString();

  // Four distinct diagnostics plus the truncation: no two alike.
  const std::vector<std::string> messages = {truncated.message(), crc.message(),
                                             missing.message(), schema.message(),
                                             arch.message()};
  for (size_t i = 0; i < messages.size(); ++i) {
    for (size_t j = i + 1; j < messages.size(); ++j) {
      EXPECT_NE(messages[i], messages[j]) << "diagnostics " << i << " and " << j << " collide";
    }
  }
  EXPECT_EQ(out, nullptr);
}

TEST_F(ServeRobustnessTest, QuarantineLeavesLiveVersionUntouched) {
  ServiceConfig config;
  config.model = TinyConfig(kNodes);
  ForecastService service(config, generator_->network(), normalizer_);
  const std::vector<checkpoint::Container> published = TrainAndCollect(config.model);

  auto sink = service.SnapshotSink();
  sink(published.back());
  ASSERT_NE(service.hub().Current(), nullptr);
  const int64_t live = service.hub().Current()->version;
  EXPECT_EQ(service.quarantined_snapshots(), 0);

  // A parade of bad publishes: schema damage, missing sections, NaN weights,
  // explosive-but-finite weights (caught by the canary). None may swap.
  checkpoint::Container no_meta;
  no_meta.Add("model", *published.back().Find("model"));
  sink(no_meta);
  sink(checkpoint::Container());  // empty: no sections at all
  sink(PoisonWeights(published.back(), config.model,
                     std::numeric_limits<float>::quiet_NaN()));
  sink(PoisonWeights(published.back(), config.model, 1e30f));

  EXPECT_EQ(service.quarantined_snapshots(), 4);
  ASSERT_NE(service.hub().Current(), nullptr);
  EXPECT_EQ(service.hub().Current()->version, live);
  EXPECT_EQ(service.hub().rollback_count(), 0);

  // The incumbent still answers.
  core::PredictRequest request = MakeRequest();
  core::PredictResponse response;
  ASSERT_TRUE(service.Predict(request, &response).ok());
  EXPECT_EQ(response.model_version, live);
  EXPECT_FALSE(response.degraded);
}

TEST_F(ServeRobustnessTest, ErrorSpikeRollsBackToLastGoodVersion) {
  ServiceConfig config;
  config.model = TinyConfig(kNodes);
  config.admission.run_canary = false;  // let the explosive version go live
  config.health.error_window = 16;
  config.health.rollback_errors = 2;
  ForecastService service(config, generator_->network(), normalizer_);
  // Two stages so the good and the poisoned publication carry distinct
  // version stamps (the rollback must demonstrably change versions).
  const std::vector<checkpoint::Container> published = TrainAndCollect(config.model, 2);

  auto sink = service.SnapshotSink();
  sink(published.front());
  ASSERT_NE(service.hub().Current(), nullptr);
  const int64_t good = service.hub().Current()->version;

  // Finite-but-explosive weights pass the weight scan; with the canary off
  // they swap in and clients see non-finite forecasts.
  sink(PoisonWeights(published.back(), config.model, 1e30f));
  ASSERT_NE(service.hub().Current(), nullptr);
  ASSERT_NE(service.hub().Current()->version, good);
  EXPECT_EQ(service.quarantined_snapshots(), 0);

  core::PredictRequest request = MakeRequest();
  core::PredictResponse response;
  int64_t data_loss = 0;
  for (int i = 0; i < 8 && service.rollback_count() == 0; ++i) {
    const Status status = service.Predict(request, &response);
    if (!status.ok()) {
      EXPECT_EQ(status.code(), StatusCode::kDataLoss) << status.ToString();
      // The invariant: the quarantined (non-finite) forecast never reaches
      // the client — whatever is left in the response is finite.
      EXPECT_TRUE(response.predictions.AllFinite());
      ++data_loss;
    }
  }
  EXPECT_GE(data_loss, config.health.rollback_errors);
  EXPECT_EQ(service.rollback_count(), 1);
  EXPECT_GE(service.nonfinite_outputs(), config.health.rollback_errors);

  // Rolled back to last-good; the service recovers HEALTHY and serves.
  ASSERT_NE(service.hub().Current(), nullptr);
  EXPECT_EQ(service.hub().Current()->version, good);
  EXPECT_EQ(service.health_state(), HealthState::kHealthy);
  ASSERT_TRUE(service.Predict(request, &response).ok());
  EXPECT_EQ(response.model_version, good);
  EXPECT_FALSE(response.degraded);
  EXPECT_TRUE(response.predictions.AllFinite());
}

// DESIGN.md §13 acceptance: a rollback auto-dumps the flight recorder as
// JSONL, and the dump reconstructs the incident — poisoned version swapped
// in, its forecasts quarantined (tagged with the caller's trace ID), service
// rolled back — in seq order, readable by `urcl_blackbox`.
TEST_F(ServeRobustnessTest, RollbackAutoDumpsFlightRecorderJsonl) {
  auto& recorder = obs::FlightRecorder::Get();
  recorder.Clear();
  const std::string dir =
      (std::filesystem::temp_directory_path() / "urcl_blackbox_rollback_test").string();
  std::filesystem::create_directories(dir);
  const std::string dump_path = dir + "/urcl_blackbox.rollback.jsonl";
  std::filesystem::remove(dump_path);
  recorder.SetDumpDir(dir);

  ServiceConfig config;
  config.model = TinyConfig(kNodes);
  config.admission.run_canary = false;
  config.health.error_window = 16;
  config.health.rollback_errors = 2;
  ForecastService service(config, generator_->network(), normalizer_);
  const std::vector<checkpoint::Container> published = TrainAndCollect(config.model, 2);

  auto sink = service.SnapshotSink();
  sink(published.front());
  sink(PoisonWeights(published.back(), config.model, 1e30f));

  core::PredictRequest request = MakeRequest();
  request.trace_id = 0x5eedf00dull;  // caller-supplied; must appear in the dump
  core::PredictResponse response;
  for (int i = 0; i < 8 && service.rollback_count() == 0; ++i) {
    const Status status = service.Predict(request, &response);
    (void)status;  // kDataLoss while the poisoned version serves; see above
  }
  ASSERT_EQ(service.rollback_count(), 1);

  ASSERT_TRUE(std::filesystem::exists(dump_path)) << dump_path;
  std::ifstream in(dump_path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  recorder.Clear();

  const size_t swap = text.find("\"type\":\"hot_swap\"");
  const size_t quarantine = text.find("\"type\":\"nonfinite_quarantine\"");
  const size_t rollback = text.find("\"type\":\"rollback\"");
  ASSERT_NE(swap, std::string::npos) << text;
  ASSERT_NE(quarantine, std::string::npos) << text;
  ASSERT_NE(rollback, std::string::npos) << text;
  // Causal order survives the lock-striped ring: the poisoned swap precedes
  // the first quarantine, which precedes the rollback.
  EXPECT_LT(swap, quarantine);
  EXPECT_LT(quarantine, rollback);
  // The quarantine events were recorded inside the request's trace flow.
  EXPECT_NE(text.find("\"trace_id\":\"0x5eedf00d\""), std::string::npos) << text;
}

TEST_F(ServeRobustnessTest, ErrorSpikeWithNoHistoryDegradesToFallback) {
  ServiceConfig config;
  config.model = TinyConfig(kNodes);
  config.admission.run_canary = false;
  config.history_depth = 0;  // rollback disabled
  config.health.error_window = 16;
  config.health.rollback_errors = 2;
  ForecastService service(config, generator_->network(), normalizer_);
  const std::vector<checkpoint::Container> published = TrainAndCollect(config.model);

  auto sink = service.SnapshotSink();
  sink(PoisonWeights(published.back(), config.model, 1e30f));  // only version, bad
  ASSERT_NE(service.hub().Current(), nullptr);

  core::PredictRequest request = MakeRequest();
  core::PredictResponse response;
  for (int i = 0; i < 8 && service.health_state() == HealthState::kHealthy; ++i) {
    const Status status = service.Predict(request, &response);
    if (!status.ok()) EXPECT_EQ(status.code(), StatusCode::kDataLoss) << status.ToString();
  }
  EXPECT_EQ(service.rollback_count(), 0);
  EXPECT_EQ(service.health_state(), HealthState::kDegraded);

  // Degraded mode answers from the fallback baseline instead of failing.
  ASSERT_TRUE(service.Predict(request, &response).ok());
  EXPECT_TRUE(response.degraded);
  EXPECT_EQ(response.model_version, 0);
  EXPECT_TRUE(response.predictions.AllFinite());
  EXPECT_GT(service.degraded_queries(), 0);

  // A good publish heals the service: model path resumes.
  sink(published.back());
  EXPECT_EQ(service.health_state(), HealthState::kHealthy);
  ASSERT_TRUE(service.Predict(request, &response).ok());
  EXPECT_FALSE(response.degraded);
}

TEST_F(ServeRobustnessTest, StalenessWatchdogDegradesAndRecovers) {
  ServiceConfig config;
  config.model = TinyConfig(kNodes);
  config.health.staleness_ns = 2 * 1000 * 1000;  // 2ms
  ForecastService service(config, generator_->network(), normalizer_);
  const std::vector<checkpoint::Container> published = TrainAndCollect(config.model);
  service.SnapshotSink()(published.back());

  Rng rng(11);
  for (int64_t t = 0; t < 12; ++t) {
    service.IngestTick(Tensor::RandomUniform(Shape{kNodes, 2}, rng, 0.0f, 50.0f));
  }
  core::PredictResponse response;
  ASSERT_TRUE(service.Forecast(0, &response).ok());
  EXPECT_FALSE(response.degraded);
  EXPECT_FALSE(response.stale);

  // Stall the stream past the watchdog: the service degrades, answers come
  // from the fallback and are flagged stale.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(service.health_state(), HealthState::kDegraded);
  ASSERT_TRUE(service.Forecast(0, &response).ok());
  EXPECT_TRUE(response.degraded);
  EXPECT_TRUE(response.stale);

  // One fresh tick heals it.
  service.IngestTick(Tensor::RandomUniform(Shape{kNodes, 2}, rng, 0.0f, 50.0f));
  EXPECT_EQ(service.health_state(), HealthState::kHealthy);
  ASSERT_TRUE(service.Forecast(0, &response).ok());
  EXPECT_FALSE(response.degraded);
  EXPECT_FALSE(response.stale);
}

TEST_F(ServeRobustnessTest, DeadlineAdmissionShedsUnmeetableQueries) {
  ServiceConfig config;
  config.model = TinyConfig(kNodes);
  ForecastService service(config, generator_->network(), normalizer_);
  const std::vector<checkpoint::Container> published = TrainAndCollect(config.model);
  service.SnapshotSink()(published.back());

  // Prime the latency estimate with a few served queries.
  core::PredictRequest request = MakeRequest();
  core::PredictResponse response;
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(service.Predict(request, &response).ok());

  // A 1ns budget is unmeetable: shed up front with the typed status.
  core::PredictRequest rushed = MakeRequest();
  rushed.deadline_ns = 1;
  const Status shed = service.Predict(rushed, &response);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.deadline_shed(), 1);

  // A generous budget is admitted; 0 means no deadline at all.
  core::PredictRequest relaxed = MakeRequest();
  relaxed.deadline_ns = 30LL * 1000 * 1000 * 1000;
  EXPECT_TRUE(service.Predict(relaxed, &response).ok());
  EXPECT_TRUE(service.Predict(request, &response).ok());
  EXPECT_EQ(service.deadline_shed(), 1);
}

TEST_F(ServeRobustnessTest, TypedStatusesForBadInputAndLameDuck) {
  ServiceConfig config;
  config.model = TinyConfig(kNodes);
  ForecastService service(config, generator_->network(), normalizer_);
  const std::vector<checkpoint::Container> published = TrainAndCollect(config.model);

  core::PredictRequest request = MakeRequest();
  core::PredictResponse response;

  // Cold start fails closed with a precondition error, not degraded output.
  const Status cold = service.Predict(request, &response);
  ASSERT_FALSE(cold.ok());
  EXPECT_EQ(cold.code(), StatusCode::kFailedPrecondition);

  service.SnapshotSink()(published.back());

  // Client-side NaN is the client's fault: kInvalidArgument, and it does not
  // count against the live version's error window.
  core::PredictRequest poisoned = MakeRequest();
  poisoned.inputs.FlatSet(3, std::numeric_limits<float>::quiet_NaN());
  const Status bad_input = service.Predict(poisoned, &response);
  ASSERT_FALSE(bad_input.ok());
  EXPECT_EQ(bad_input.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service.health().window_errors(), 0);
  EXPECT_EQ(service.nonfinite_outputs(), 0);

  // Draining: every query is shed with kUnavailable, terminally.
  service.EnterLameDuck();
  EXPECT_EQ(service.health_state(), HealthState::kLameDuck);
  const Status drained = service.Predict(request, &response);
  ASSERT_FALSE(drained.ok());
  EXPECT_EQ(drained.code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace serve
}  // namespace urcl
