// Tests for the Page-Hinkley drift detector and the OnlineLearner streaming
// wrapper (extension subsystem, see DESIGN.md).
#include "core/drift.h"

#include <gtest/gtest.h>

#include "data/presets.h"
#include "data/synthetic.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace core {
namespace {

TEST(PageHinkleyTest, NoAlarmOnStationaryStream) {
  PageHinkleyDetector detector(PageHinkleyConfig{0.005f, 0.5f, 20});
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    EXPECT_FALSE(detector.Update(0.1f + rng.Normal(0.0f, 0.01f))) << "sample " << i;
  }
}

TEST(PageHinkleyTest, AlarmsOnMeanShift) {
  PageHinkleyDetector detector(PageHinkleyConfig{0.005f, 0.5f, 20});
  Rng rng(2);
  for (int i = 0; i < 100; ++i) detector.Update(0.1f + rng.Normal(0.0f, 0.01f));
  bool fired = false;
  for (int i = 0; i < 100 && !fired; ++i) {
    fired = detector.Update(0.4f + rng.Normal(0.0f, 0.01f));  // error jumps
  }
  EXPECT_TRUE(fired);
}

TEST(PageHinkleyTest, ResetsAfterFiring) {
  PageHinkleyDetector detector(PageHinkleyConfig{0.0f, 0.2f, 5});
  for (int i = 0; i < 10; ++i) detector.Update(0.0f);
  bool fired = false;
  for (int i = 0; i < 50 && !fired; ++i) fired = detector.Update(1.0f);
  ASSERT_TRUE(fired);
  EXPECT_EQ(detector.samples_seen(), 0);  // reset
}

TEST(PageHinkleyTest, WarmupSuppressesEarlyAlarms) {
  PageHinkleyDetector detector(PageHinkleyConfig{0.0f, 0.1f, 50});
  // A huge shift inside the warmup window must not fire.
  for (int i = 0; i < 49; ++i) EXPECT_FALSE(detector.Update(i < 5 ? 0.0f : 5.0f));
}

TEST(PageHinkleyTest, DecreaseDoesNotFire) {
  // One-sided test: error *improving* is not drift.
  PageHinkleyDetector detector(PageHinkleyConfig{0.005f, 0.3f, 10});
  for (int i = 0; i < 50; ++i) detector.Update(0.5f);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(detector.Update(0.05f)) << "sample " << i;
  }
}

TEST(PageHinkleyTest, NonFiniteValueDies) {
  PageHinkleyDetector detector(PageHinkleyConfig{});
  EXPECT_DEATH(detector.Update(std::nanf("")), "non-finite");
}

class OnlineLearnerTest : public ::testing::Test {
 protected:
  OnlineLearnerTest() {
    data::TrafficConfig config;
    config.num_nodes = 6;
    config.num_days = 6;
    config.steps_per_day = 48;
    // Strong mid-stream drift so the detector has something to find.
    config.abrupt_drift_days = {3};
    config.abrupt_refresh_fraction = 1.0f;
    config.abrupt_phase_jump_steps = 10.0f;
    config.seed = 5;
    generator_ = std::make_unique<data::SyntheticTraffic>(config);
    Tensor raw = generator_->GenerateSeries();
    normalizer_ = data::MinMaxNormalizer::Fit(raw);
    series_ = normalizer_.Transform(raw);
  }

  OnlineLearnerConfig MakeConfig() const {
    OnlineLearnerConfig config;
    config.model.encoder.num_nodes = 6;
    config.model.encoder.in_channels = 2;
    config.model.encoder.input_steps = 12;
    config.model.encoder.hidden_channels = 4;
    config.model.encoder.latent_channels = 8;
    config.model.encoder.num_layers = 3;
    config.model.encoder.adaptive_embedding_dim = 3;
    config.model.decoder_hidden = 16;
    config.model.proj_hidden = 8;
    config.model.batch_size = 4;
    config.model.max_batches_per_epoch = 4;
    config.model.replay_sample_count = 2;
    config.model.rmir_scan_size = 4;
    config.model.rmir_candidate_pool = 3;
    config.model.ssl_weight = 0.05f;
    config.window = data::WindowConfig{12, 1, 0};
    config.retrain_window_steps = 96;
    config.retrain_epochs = 1;
    config.max_history_steps = 256;
    config.min_steps_before_first_train = 48;
    return config;
  }

  Tensor Row(int64_t t) const {
    return ops::Slice(series_, {t, 0, 0}, {1, 6, series_.dim(2)})
        .Reshape(Shape{6, series_.dim(2)});
  }

  std::unique_ptr<data::SyntheticTraffic> generator_;
  data::MinMaxNormalizer normalizer_;
  Tensor series_;
};

TEST_F(OnlineLearnerTest, TrainsOnceWarmupReached) {
  OnlineLearner learner(MakeConfig(), generator_->network());
  EXPECT_FALSE(learner.CanPredict());
  int64_t first_retrain_step = -1;
  for (int64_t t = 0; t < 60; ++t) {
    if (learner.Ingest(Row(t)) && first_retrain_step < 0) first_retrain_step = t;
  }
  EXPECT_EQ(first_retrain_step, 47);  // min_steps_before_first_train = 48
  EXPECT_TRUE(learner.CanPredict());
  EXPECT_EQ(learner.retrain_count(), 1);
}

TEST_F(OnlineLearnerTest, ServesPredictionsAndTracksError) {
  OnlineLearner learner(MakeConfig(), generator_->network());
  for (int64_t t = 0; t < 120; ++t) {
    if (learner.CanPredict()) {
      const Tensor prediction = learner.PredictNext();
      EXPECT_EQ(prediction.shape(), Shape({1, 6, 1}));
      EXPECT_TRUE(ops::AllFinite(prediction));
    }
    learner.Ingest(Row(t));
  }
  EXPECT_GT(learner.live_mae(), 0.0);
  EXPECT_LT(learner.live_mae(), 0.5);  // normalized units
}

TEST_F(OnlineLearnerTest, DriftTriggersRetraining) {
  OnlineLearnerConfig config = MakeConfig();
  // Sensitive detector so the day-3 regime change fires at this tiny scale.
  config.drift.delta = 0.0f;
  config.drift.threshold = 0.05f;
  config.drift.warmup = 20;
  OnlineLearner learner(config, generator_->network());
  for (int64_t t = 0; t < series_.dim(0); ++t) {
    if (learner.CanPredict()) learner.PredictNext();
    learner.Ingest(Row(t));
  }
  EXPECT_GE(learner.drift_alarms(), 1);
  EXPECT_GT(learner.retrain_count(), 1);  // first train + >=1 drift retrain
}

TEST_F(OnlineLearnerTest, PeriodicRetrainWorksWithoutDrift) {
  OnlineLearnerConfig config = MakeConfig();
  config.drift.threshold = 1e6f;  // effectively disable the detector
  config.periodic_retrain_every = 64;
  OnlineLearner learner(config, generator_->network());
  for (int64_t t = 0; t < 200; ++t) {
    if (learner.CanPredict()) learner.PredictNext();
    learner.Ingest(Row(t));
  }
  EXPECT_EQ(learner.drift_alarms(), 0);
  EXPECT_GE(learner.retrain_count(), 3);
}

TEST_F(OnlineLearnerTest, RejectsBadObservationShape) {
  OnlineLearner learner(MakeConfig(), generator_->network());
  EXPECT_DEATH(learner.Ingest(Tensor::Zeros(Shape{6})), "must be \\[N, C\\]");
}

}  // namespace
}  // namespace core
}  // namespace urcl
