#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "replay/replay_buffer.h"
#include "replay/samplers.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace replay {
namespace {

ReplayItem MakeItem(float value, int64_t slot = 0) {
  ReplayItem item;
  item.inputs = Tensor::Full(Shape{4, 3, 2}, value);
  item.targets = Tensor::Full(Shape{1, 3, 1}, value);
  item.time_slot = slot;
  return item;
}

TEST(ReplayBufferTest, FifoEviction) {
  ReplayBuffer buffer(3, BufferPolicy::kFifo);
  for (int i = 0; i < 5; ++i) buffer.Add(MakeItem(static_cast<float>(i), i));
  EXPECT_EQ(buffer.size(), 3);
  EXPECT_EQ(buffer.evictions(), 2);
  // Oldest remaining is item 2.
  EXPECT_FLOAT_EQ(buffer.Get(0).inputs.FlatAt(0), 2.0f);
  EXPECT_FLOAT_EQ(buffer.Get(2).inputs.FlatAt(0), 4.0f);
}

TEST(ReplayBufferTest, DefaultCapacityMatchesPaper) {
  ReplayBuffer buffer;
  EXPECT_EQ(buffer.capacity(), 256);
  EXPECT_EQ(buffer.policy(), BufferPolicy::kReservoir);
}

TEST(ReplayBufferTest, ReservoirKeepsHistoricalSamples) {
  // With reservoir sampling, early items survive long streams; with FIFO
  // they cannot. Insert 0..999 into a 32-slot buffer and check the retained
  // set spans the early half of the stream.
  ReplayBuffer buffer(32, BufferPolicy::kReservoir, /*seed=*/1);
  for (int i = 0; i < 1000; ++i) buffer.Add(MakeItem(static_cast<float>(i), i));
  EXPECT_EQ(buffer.size(), 32);
  EXPECT_EQ(buffer.inserted(), 1000);
  int64_t early = 0;
  for (int64_t i = 0; i < buffer.size(); ++i) {
    if (buffer.Get(i).inputs.FlatAt(0) < 500.0f) ++early;
  }
  EXPECT_GT(early, 4);   // roughly half in expectation
  EXPECT_LT(early, 28);
}

TEST(ReplayBufferTest, ReservoirIsUniformish) {
  // Mean retained index should be near the stream midpoint.
  ReplayBuffer buffer(64, BufferPolicy::kReservoir, /*seed=*/2);
  for (int i = 0; i < 2000; ++i) buffer.Add(MakeItem(static_cast<float>(i), i));
  double mean = 0.0;
  for (int64_t i = 0; i < buffer.size(); ++i) mean += buffer.Get(i).inputs.FlatAt(0);
  mean /= buffer.size();
  EXPECT_GT(mean, 600.0);
  EXPECT_LT(mean, 1400.0);
}

TEST(ReplayBufferTest, ShapeConsistencyEnforced) {
  ReplayBuffer buffer(4);
  buffer.Add(MakeItem(1.0f));
  ReplayItem wrong;
  wrong.inputs = Tensor::Zeros(Shape{5, 3, 2});
  wrong.targets = Tensor::Zeros(Shape{1, 3, 1});
  EXPECT_DEATH(buffer.Add(std::move(wrong)), "share one shape");
}

TEST(ReplayBufferTest, MakeBatchStacks) {
  ReplayBuffer buffer(4);
  for (int i = 0; i < 4; ++i) buffer.Add(MakeItem(static_cast<float>(i)));
  const auto [x, y] = buffer.MakeBatch({0, 3});
  EXPECT_EQ(x.shape(), Shape({2, 4, 3, 2}));
  EXPECT_EQ(y.shape(), Shape({2, 1, 3, 1}));
  EXPECT_FLOAT_EQ(x.At({1, 0, 0, 0}), 3.0f);
}

TEST(ReplayBufferTest, ClearResets) {
  ReplayBuffer buffer(2);
  buffer.Add(MakeItem(1.0f));
  buffer.Clear();
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.evictions(), 0);
}

TEST(ReplayBufferTest, OutOfRangeDies) {
  ReplayBuffer buffer(2);
  buffer.Add(MakeItem(1.0f));
  EXPECT_DEATH(buffer.Get(1), "out of range");
}

TEST(RandomSamplerTest, DistinctAndBounded) {
  ReplayBuffer buffer(16);
  for (int i = 0; i < 10; ++i) buffer.Add(MakeItem(static_cast<float>(i)));
  Rng rng(1);
  RandomSampler sampler;
  const auto indices = sampler.Sample(buffer, 6, rng);
  EXPECT_EQ(indices.size(), 6u);
  std::set<int64_t> unique(indices.begin(), indices.end());
  EXPECT_EQ(unique.size(), 6u);
  for (const int64_t i : indices) EXPECT_LT(i, 10);
}

TEST(RandomSamplerTest, RequestLargerThanBufferClamps) {
  ReplayBuffer buffer(16);
  for (int i = 0; i < 3; ++i) buffer.Add(MakeItem(1.0f));
  Rng rng(2);
  RandomSampler sampler;
  EXPECT_EQ(sampler.Sample(buffer, 10, rng).size(), 3u);
}

TEST(PearsonTest, PerfectCorrelation) {
  Tensor a = Tensor::FromVector(Shape{4}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector(Shape{4}, {10, 20, 30, 40});
  EXPECT_NEAR(RmirSampler::PearsonCorrelation(a, b), 1.0f, 1e-5);
}

TEST(PearsonTest, PerfectAntiCorrelation) {
  Tensor a = Tensor::FromVector(Shape{4}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector(Shape{4}, {4, 3, 2, 1});
  EXPECT_NEAR(RmirSampler::PearsonCorrelation(a, b), -1.0f, 1e-5);
}

TEST(PearsonTest, ConstantInputGivesZero) {
  Tensor a = Tensor::Full(Shape{4}, 2.0f);
  Tensor b = Tensor::FromVector(Shape{4}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(RmirSampler::PearsonCorrelation(a, b), 0.0f);
}

class RmirSelectTest : public ::testing::Test {
 protected:
  RmirSelectTest() : buffer_(16) {
    // Items 0..7 with increasing values; current batch resembles item 6.
    for (int i = 0; i < 8; ++i) {
      ReplayItem item;
      item.inputs = Tensor::FromVector(
          Shape{2, 2, 1}, {static_cast<float>(i), static_cast<float>(i + 1),
                           static_cast<float>(2 * i), static_cast<float>(3 * i)});
      item.targets = Tensor::Full(Shape{1, 2, 1}, static_cast<float>(i));
      buffer_.Add(std::move(item));
    }
    current_ = Tensor::FromVector(Shape{1, 2, 2, 1}, {6, 7, 12, 18});  // == item 6 pattern
  }
  ReplayBuffer buffer_;
  Tensor current_;
};

TEST_F(RmirSelectTest, PrefersHighInterference) {
  RmirSampler sampler(RmirConfig{/*candidate_pool=*/3, /*virtual_lr=*/0.1f});
  // Interference peaks at items 1, 2, 3.
  std::vector<float> interference = {0, 10, 9, 8, 0, 0, 0, 0};
  const auto selected = sampler.Select(buffer_, current_, interference, 3);
  std::set<int64_t> got(selected.begin(), selected.end());
  EXPECT_EQ(got, (std::set<int64_t>{1, 2, 3}));
}

TEST_F(RmirSelectTest, ReRanksBySimilarityWithinPool) {
  RmirSampler sampler(RmirConfig{/*candidate_pool=*/8, /*virtual_lr=*/0.1f});
  // All equal interference: similarity should decide; every item here is a
  // perfect linear pattern so all have correlation 1 except degenerate item 0.
  std::vector<float> interference(8, 1.0f);
  const auto selected = sampler.Select(buffer_, current_, interference, 2);
  EXPECT_EQ(selected.size(), 2u);
  // Item 0 is constant -> correlation 0 -> never selected.
  EXPECT_EQ(std::count(selected.begin(), selected.end(), 0), 0);
}

TEST_F(RmirSelectTest, EmptySampleCountGivesEmpty) {
  RmirSampler sampler(RmirConfig{4, 0.1f});
  std::vector<float> interference(8, 1.0f);
  EXPECT_TRUE(sampler.Select(buffer_, current_, interference, 0).empty());
}

TEST_F(RmirSelectTest, ScoreSizeMismatchDies) {
  RmirSampler sampler(RmirConfig{4, 0.1f});
  std::vector<float> wrong(3, 1.0f);
  EXPECT_DEATH(sampler.Select(buffer_, current_, wrong, 2), "one interference score");
}

TEST(RmirConfigTest, InvalidConfigDies) {
  EXPECT_DEATH(RmirSampler(RmirConfig{0, 0.1f}), "Check failed");
  EXPECT_DEATH(RmirSampler(RmirConfig{4, 0.0f}), "Check failed");
}

}  // namespace
}  // namespace replay
}  // namespace urcl
