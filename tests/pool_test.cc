// BufferPool behaviour: reuse, stats accounting, cap-with-trim, the
// URCL_POOL=off escape hatch, steady-state training hitting the free lists
// instead of the allocator, and concurrent acquire/release (run this binary
// under -DURCL_SANITIZE=thread to check the locking).
//
// The pool is process-global and shared with every tensor gtest allocates,
// so each test starts from Trim() + ResetCounters() and asserts on counter
// deltas over a window it controls, never on absolute values.
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/urcl.h"
#include "data/synthetic.h"
#include "obs/metrics.h"
#include "tensor/pool.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace {

using pool::BufferPool;
using pool::PoolStats;

class PoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BufferPool& pool = BufferPool::Get();
    saved_capacity_ = pool.capacity_bytes();
    saved_enabled_ = pool.enabled();
    pool.set_enabled(true);
    pool.Trim();
    pool.ResetCounters();
  }

  void TearDown() override {
    BufferPool& pool = BufferPool::Get();
    pool.set_capacity_bytes(saved_capacity_);
    pool.set_enabled(saved_enabled_);
    pool.Trim();
  }

  uint64_t saved_capacity_ = 0;
  bool saved_enabled_ = true;
};

TEST_F(PoolTest, ReusesReleasedBuffer) {
  BufferPool& pool = BufferPool::Get();
  { Tensor t(Shape{100}); }  // acquire (miss) then release back to the pool
  PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.returns, 1u);
  EXPECT_GT(stats.pooled_bytes, 0u);
  { Tensor t(Shape{100}); }  // same size class: must be a hit
  stats = pool.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST_F(PoolTest, SizeClassesShareBuffers) {
  BufferPool& pool = BufferPool::Get();
  // 100 and 128 floats both land in the 128-float class; 129 does not.
  { Tensor t(Shape{100}); }
  { Tensor t(Shape{128}); }
  EXPECT_EQ(pool.Stats().hits, 1u);
  { Tensor t(Shape{129}); }
  EXPECT_EQ(pool.Stats().hits, 1u);
  EXPECT_EQ(pool.Stats().misses, 2u);
}

TEST_F(PoolTest, LiveAndPooledBytesTrackLifetime) {
  BufferPool& pool = BufferPool::Get();
  const PoolStats before = pool.Stats();
  {
    Tensor t(Shape{1000});  // class 1024 floats = 4096 bytes
    const PoolStats held = pool.Stats();
    EXPECT_EQ(held.live_bytes - before.live_bytes, 4096u);
  }
  const PoolStats after = pool.Stats();
  EXPECT_EQ(after.live_bytes, before.live_bytes);
  EXPECT_EQ(after.pooled_bytes - before.pooled_bytes, 4096u);
}

TEST_F(PoolTest, TrimFreesEverythingCached) {
  BufferPool& pool = BufferPool::Get();
  { Tensor a(Shape{64}), b(Shape{512}); }
  EXPECT_GT(pool.Stats().pooled_bytes, 0u);
  const int64_t freed = pool.Trim();
  EXPECT_GT(freed, 0);
  EXPECT_EQ(pool.Stats().pooled_bytes, 0u);
}

TEST_F(PoolTest, CapacityCapTrimsInsteadOfCaching) {
  BufferPool& pool = BufferPool::Get();
  pool.set_capacity_bytes(4096);
  // 2048 floats = 8192 bytes exceeds the cap: released buffer must be freed.
  { Tensor t(Shape{2048}); }
  const PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.returns, 0u);
  EXPECT_GE(stats.trims, 1u);
  EXPECT_EQ(stats.pooled_bytes, 0u);
}

TEST_F(PoolTest, DisabledPoolAlwaysMissesAndCachesNothing) {
  BufferPool& pool = BufferPool::Get();
  pool.set_enabled(false);
  { Tensor t(Shape{100}); }
  { Tensor t(Shape{100}); }
  const PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.pooled_bytes, 0u);
}

TEST_F(PoolTest, ParseEnabledMatchesDocumentedValues) {
  EXPECT_FALSE(BufferPool::ParseEnabled("off"));
  EXPECT_FALSE(BufferPool::ParseEnabled("OFF"));
  EXPECT_FALSE(BufferPool::ParseEnabled("0"));
  EXPECT_FALSE(BufferPool::ParseEnabled("false"));
  EXPECT_TRUE(BufferPool::ParseEnabled("on"));
  EXPECT_TRUE(BufferPool::ParseEnabled("1"));
  EXPECT_TRUE(BufferPool::ParseEnabled(nullptr));
}

TEST_F(PoolTest, RecycledZerosTensorIsZeroed) {
  {
    Tensor dirty = Tensor::Full(Shape{64}, 42.0f);
  }
  Tensor t(Shape{64});  // recycles the dirty buffer; constructor must zero it
  EXPECT_EQ(BufferPool::Get().Stats().hits, 1u);
  for (int64_t i = 0; i < t.NumElements(); ++i) EXPECT_EQ(t.data()[i], 0.0f);
}

TEST_F(PoolTest, SteadyStateOpsMakeZeroAllocatorCalls) {
  BufferPool& pool = BufferPool::Get();
  Rng rng(7);
  const Tensor a = Tensor::RandomNormal(Shape{8, 64}, rng);
  const Tensor b = Tensor::RandomNormal(Shape{8, 64}, rng);
  auto run_once = [&] {
    Tensor c = ops::Add(a, b);
    Tensor d = ops::Mul(c, a);
    Tensor e = ops::MatMul(d, ops::TransposeLast2(b));
    Tensor f = ops::Sum(e, {1});
    return f.NumElements();
  };
  run_once();  // warmup populates the free lists
  pool.ResetCounters();
  for (int i = 0; i < 10; ++i) run_once();
  const PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.misses, 0u) << "fixed-shape op chain should be fully pool-served";
  EXPECT_GT(stats.hits, 0u);
}

TEST_F(PoolTest, SteadyStateTrainingStopsAllocating) {
  // End-to-end: with augmentation off every batch has identical shapes, so
  // after a warmup epoch the training loop should run entirely out of the
  // pool (a small allowance covers containers the model grows lazily, e.g.
  // the replay buffer filling up).
  data::TrafficConfig traffic;
  traffic.num_nodes = 6;
  traffic.num_days = 2;
  traffic.steps_per_day = 60;
  traffic.channels = 2;
  data::SyntheticTraffic generator(traffic);
  Tensor series = generator.GenerateSeries();
  data::MinMaxNormalizer normalizer = data::MinMaxNormalizer::Fit(series);
  data::StDataset dataset(normalizer.Transform(series), data::WindowConfig{12, 1, 0});

  core::UrclConfig config;
  config.encoder.num_nodes = traffic.num_nodes;
  config.encoder.in_channels = 2;
  config.encoder.input_steps = 12;
  config.encoder.hidden_channels = 4;
  config.encoder.latent_channels = 8;
  config.encoder.num_layers = 3;
  config.encoder.adaptive_embedding_dim = 3;
  config.batch_size = 4;
  config.max_batches_per_epoch = 4;
  config.replay_sample_count = 2;
  config.rmir_scan_size = 6;
  config.rmir_candidate_pool = 4;
  config.buffer_capacity = 32;
  config.proj_hidden = 8;
  config.decoder_hidden = 16;
  config.enable_augmentation = false;  // fixed shapes batch to batch

  core::UrclTrainer trainer(config, generator.network());
  BufferPool& pool = BufferPool::Get();
  trainer.TrainStage(dataset, 2);  // warmup
  pool.ResetCounters();
  trainer.TrainStage(dataset, 2);
  const PoolStats stats = pool.Stats();
  EXPECT_GT(stats.hits, 1000u);
  EXPECT_LE(stats.misses, 16u) << "steady-state training should be ~fully pool-served";
}

TEST_F(PoolTest, ConcurrentAcquireReleaseIsSafe) {
  // Hammer the pool from several threads; correctness here is "no data race
  // and conserved accounting", which TSan checks when built with
  // -DURCL_SANITIZE=thread.
  BufferPool& pool = BufferPool::Get();
  const uint64_t live_before = pool.Stats().live_bytes;
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([tid] {
      for (int i = 0; i < kIters; ++i) {
        Tensor t(Shape{int64_t{1} << (tid % 4 + 4)});
        t.Fill(static_cast<float>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.hits + stats.misses, static_cast<uint64_t>(kThreads) * kIters);
  // Every buffer the workers acquired was released again.
  EXPECT_EQ(stats.live_bytes, live_before);
}

TEST_F(PoolTest, StatsAreResidentInMetricsRegistry) {
  // The pool's counters live in the obs registry (urcl.pool.*); Stats() is a
  // thin wrapper reading the same handles, so the two views always agree —
  // with metrics export disabled too, since the pool is an always-on
  // resident.
  BufferPool& pool = BufferPool::Get();
  auto& registry = obs::MetricsRegistry::Get();
  { Tensor t(Shape{100}); }  // miss + return
  { Tensor t(Shape{100}); }  // hit + return
  const PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(registry.GetCounter("urcl.pool.hits").Value(), stats.hits);
  EXPECT_EQ(registry.GetCounter("urcl.pool.misses").Value(), stats.misses);
  EXPECT_EQ(registry.GetCounter("urcl.pool.returns").Value(), stats.returns);
  EXPECT_EQ(registry.GetCounter("urcl.pool.trims").Value(), stats.trims);
  EXPECT_EQ(static_cast<uint64_t>(registry.GetGauge("urcl.pool.live_bytes").Value()),
            stats.live_bytes);
  EXPECT_EQ(static_cast<uint64_t>(registry.GetGauge("urcl.pool.pooled_bytes").Value()),
            stats.pooled_bytes);
}

TEST_F(PoolTest, PoolCountersAppearInRegistryExports) {
  { Tensor t(Shape{100}); }
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Get().Snapshot();
  ASSERT_TRUE(snap.counters.count("urcl.pool.misses"));
  EXPECT_EQ(snap.counters.at("urcl.pool.misses"), 1u);
  const std::string prom = obs::MetricsRegistry::Get().ToPrometheus();
  EXPECT_NE(prom.find("urcl_pool_misses"), std::string::npos);
  EXPECT_NE(prom.find("urcl_pool_pooled_bytes"), std::string::npos);
}

}  // namespace
}  // namespace urcl
