#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "data/dataset.h"
#include "data/metrics.h"
#include "data/normalizer.h"
#include "data/presets.h"
#include "data/stream.h"
#include "data/synthetic.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace data {
namespace {

// Small ramp series: value(t, n, c) = 100*t + 10*n + c.
Tensor RampSeries(int64_t steps, int64_t nodes, int64_t channels) {
  Tensor series(Shape{steps, nodes, channels});
  for (int64_t t = 0; t < steps; ++t) {
    for (int64_t n = 0; n < nodes; ++n) {
      for (int64_t c = 0; c < channels; ++c) {
        series.Set({t, n, c}, static_cast<float>(100 * t + 10 * n + c));
      }
    }
  }
  return series;
}

TEST(DatasetTest, WindowCountAndContents) {
  StDataset dataset(RampSeries(10, 2, 2), WindowConfig{3, 1, 0});
  EXPECT_EQ(dataset.NumSamples(), 7);  // 10 - 3 - 1 + 1
  const StSample s = dataset.GetSample(0);
  EXPECT_EQ(s.inputs.shape(), Shape({3, 2, 2}));
  EXPECT_EQ(s.targets.shape(), Shape({1, 2, 1}));
  EXPECT_FLOAT_EQ(s.inputs.At({0, 0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(s.inputs.At({2, 1, 1}), 211.0f);
  EXPECT_FLOAT_EQ(s.targets.At({0, 0, 0}), 300.0f);  // t=3, channel 0
  EXPECT_EQ(s.time_slot, 2);
}

TEST(DatasetTest, TargetChannelSelection) {
  StDataset dataset(RampSeries(6, 2, 3), WindowConfig{2, 1, 2});
  const StSample s = dataset.GetSample(1);
  EXPECT_FLOAT_EQ(s.targets.At({0, 1, 0}), 100.0f * 3 + 10.0f + 2.0f);
}

TEST(DatasetTest, MultiStepTargets) {
  StDataset dataset(RampSeries(10, 1, 1), WindowConfig{3, 2, 0});
  EXPECT_EQ(dataset.NumSamples(), 6);
  const StSample s = dataset.GetSample(0);
  EXPECT_EQ(s.targets.shape(), Shape({2, 1, 1}));
  EXPECT_FLOAT_EQ(s.targets.At({1, 0, 0}), 400.0f);
}

TEST(DatasetTest, MakeBatchStacks) {
  StDataset dataset(RampSeries(10, 2, 2), WindowConfig{3, 1, 0});
  const auto [x, y] = dataset.MakeBatch({0, 2, 4});
  EXPECT_EQ(x.shape(), Shape({3, 3, 2, 2}));
  EXPECT_EQ(y.shape(), Shape({3, 1, 2, 1}));
  EXPECT_FLOAT_EQ(x.At({1, 0, 0, 0}), 200.0f);
}

TEST(DatasetTest, SliceOffsetsWindows) {
  StDataset dataset(RampSeries(20, 1, 1), WindowConfig{2, 1, 0});
  StDataset sub = dataset.Slice(5, 10);
  EXPECT_EQ(sub.num_steps(), 10);
  EXPECT_FLOAT_EQ(sub.GetSample(0).inputs.At({0, 0, 0}), 500.0f);
}

TEST(DatasetTest, TooFewStepsYieldsZeroSamples) {
  StDataset dataset(RampSeries(3, 1, 1), WindowConfig{3, 1, 0});
  EXPECT_EQ(dataset.NumSamples(), 0);
}

TEST(StreamSplitterTest, StageNamesAndCoverage) {
  StDataset dataset(RampSeries(400, 2, 1), WindowConfig{4, 1, 0});
  StreamSplitter stream(dataset, StreamConfig{});
  ASSERT_EQ(stream.NumStages(), 5);
  EXPECT_EQ(stream.Stage(0).name, "B_set");
  EXPECT_EQ(stream.Stage(4).name, "I_set4");
  // Base = 30% of 400 = 120 steps; increments ~70 each.
  EXPECT_EQ(stream.Stage(0).train.num_steps() + stream.Stage(0).val.num_steps() +
                stream.Stage(0).test.num_steps(),
            120);
  // Stages are contiguous and ordered.
  EXPECT_EQ(stream.Stage(1).series_offset, 120);
  EXPECT_GT(stream.Stage(2).series_offset, stream.Stage(1).series_offset);
}

TEST(StreamSplitterTest, SplitsAreTemporallyOrdered) {
  StDataset dataset(RampSeries(500, 1, 1), WindowConfig{4, 1, 0});
  StreamSplitter stream(dataset, StreamConfig{});
  for (int64_t i = 0; i < stream.NumStages(); ++i) {
    const StreamStage& stage = stream.Stage(i);
    // Train values precede test values within a stage (ramp is increasing).
    const float last_train = stage.train.series().At({stage.train.num_steps() - 1, 0, 0});
    const float first_test = stage.test.series().At({0, 0, 0});
    EXPECT_LT(last_train, first_test);
  }
}

TEST(StreamSplitterTest, TooShortDies) {
  StDataset dataset(RampSeries(30, 1, 1), WindowConfig{4, 1, 0});
  EXPECT_DEATH(StreamSplitter(dataset, StreamConfig{}), "too short");
}

TEST(MinMaxNormalizerTest, TransformsToUnitInterval) {
  Rng rng(1);
  Tensor series = Tensor::RandomUniform(Shape{50, 3, 2}, rng, -10.0f, 90.0f);
  const MinMaxNormalizer norm = MinMaxNormalizer::Fit(series);
  const Tensor scaled = norm.Transform(series);
  EXPECT_GE(ops::Min(scaled).Item(), 0.0f);
  EXPECT_LE(ops::Max(scaled).Item(), 1.0f);
}

TEST(MinMaxNormalizerTest, RoundTrip) {
  Rng rng(2);
  Tensor series = Tensor::RandomUniform(Shape{20, 2, 3}, rng, 5.0f, 25.0f);
  const MinMaxNormalizer norm = MinMaxNormalizer::Fit(series);
  EXPECT_TRUE(ops::AllClose(norm.InverseTransform(norm.Transform(series)), series, 1e-3f));
}

TEST(MinMaxNormalizerTest, ChannelwiseIndependence) {
  Tensor series(Shape{2, 1, 2});
  series.Set({0, 0, 0}, 0.0f);
  series.Set({1, 0, 0}, 10.0f);
  series.Set({0, 0, 1}, 100.0f);
  series.Set({1, 0, 1}, 200.0f);
  const MinMaxNormalizer norm = MinMaxNormalizer::Fit(series);
  EXPECT_FLOAT_EQ(norm.min(0), 0.0f);
  EXPECT_FLOAT_EQ(norm.max(1), 200.0f);
  const Tensor t = norm.Transform(series);
  EXPECT_FLOAT_EQ(t.At({1, 0, 0}), 1.0f);
  EXPECT_FLOAT_EQ(t.At({0, 0, 1}), 0.0f);
}

TEST(MinMaxNormalizerTest, InverseChannelOnPredictions) {
  Tensor series(Shape{2, 1, 2});
  series.Set({0, 0, 0}, 0.0f);
  series.Set({1, 0, 0}, 50.0f);
  series.Set({0, 0, 1}, 0.0f);
  series.Set({1, 0, 1}, 1.0f);
  const MinMaxNormalizer norm = MinMaxNormalizer::Fit(series);
  Tensor predictions = Tensor::Full(Shape{3, 1, 1}, 0.5f);
  const Tensor restored = norm.InverseTransformChannel(predictions, 0);
  EXPECT_FLOAT_EQ(restored.FlatAt(0), 25.0f);
}

TEST(MinMaxNormalizerTest, ConstantChannelIsSafe) {
  Tensor series = Tensor::Full(Shape{10, 1, 1}, 7.0f);
  const MinMaxNormalizer norm = MinMaxNormalizer::Fit(series);
  const Tensor t = norm.Transform(series);
  EXPECT_TRUE(ops::AllFinite(t));
}

TEST(ZScoreNormalizerTest, ZeroMeanUnitStd) {
  Rng rng(3);
  Tensor series = Tensor::RandomNormal(Shape{400, 2, 1}, rng, 5.0f, 3.0f);
  const ZScoreNormalizer norm = ZScoreNormalizer::Fit(series);
  const Tensor z = norm.Transform(series);
  EXPECT_NEAR(ops::Mean(z).Item(), 0.0f, 0.05f);
  EXPECT_NEAR(norm.mean(0), 5.0f, 0.3f);
  EXPECT_NEAR(norm.stddev(0), 3.0f, 0.3f);
}

TEST(MetricsTest, KnownValues) {
  Tensor pred = Tensor::FromVector(Shape{4}, {1, 2, 3, 4});
  Tensor target = Tensor::FromVector(Shape{4}, {2, 2, 5, 4});
  const EvalMetrics m = ComputeMetrics(pred, target);
  EXPECT_DOUBLE_EQ(m.mae, 0.75);
  EXPECT_NEAR(m.rmse, std::sqrt((1.0 + 0.0 + 4.0 + 0.0) / 4.0), 1e-9);
  EXPECT_EQ(m.count, 4);
}

TEST(MetricsTest, AccumulatorMatchesSinglePass) {
  Rng rng(4);
  Tensor p1 = Tensor::RandomNormal(Shape{10}, rng);
  Tensor t1 = Tensor::RandomNormal(Shape{10}, rng);
  Tensor p2 = Tensor::RandomNormal(Shape{6}, rng);
  Tensor t2 = Tensor::RandomNormal(Shape{6}, rng);
  MetricsAccumulator acc;
  acc.Add(p1, t1);
  acc.Add(p2, t2);
  const EvalMetrics split = acc.Result();
  const EvalMetrics joint =
      ComputeMetrics(ops::Concat({p1, p2}, 0), ops::Concat({t1, t2}, 0));
  EXPECT_NEAR(split.mae, joint.mae, 1e-9);
  EXPECT_NEAR(split.rmse, joint.rmse, 1e-9);
}

TEST(MetricsTest, EmptyAccumulatorDies) {
  MetricsAccumulator acc;
  EXPECT_DEATH(acc.Result(), "no finite samples");
}

TEST(MetricsTest, NonFinitePairsAreSkippedAndCounted) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  // Elements 1 (nan pred), 2 (inf target), 3 (both) must be excluded; the
  // finite elements 0 and 4 carry the metric.
  Tensor pred = Tensor::FromVector(Shape{5}, {1.0f, nan, 3.0f, nan, 4.0f});
  Tensor target = Tensor::FromVector(Shape{5}, {2.0f, 2.0f, inf, inf, 4.0f});
  const EvalMetrics m = ComputeMetrics(pred, target);
  EXPECT_EQ(m.count, 2);
  EXPECT_EQ(m.non_finite, 3);
  EXPECT_DOUBLE_EQ(m.mae, 0.5);
  EXPECT_NEAR(m.rmse, std::sqrt(0.5), 1e-9);
}

TEST(MetricsTest, AllNonFiniteDiesWithDiagnostic) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  MetricsAccumulator acc;
  acc.Add(Tensor::FromVector(Shape{2}, {nan, nan}), Tensor::Full(Shape{2}, 1.0f));
  EXPECT_DEATH(acc.Result(), "2 non-finite element pair\\(s\\)");
}

TEST(SyntheticTest, SeriesShapeAndFiniteness) {
  TrafficConfig config;
  config.num_nodes = 8;
  config.num_days = 3;
  config.steps_per_day = 48;
  config.channels = 3;
  SyntheticTraffic generator(config);
  const Tensor series = generator.GenerateSeries();
  EXPECT_EQ(series.shape(), Shape({144, 8, 3}));
  EXPECT_TRUE(ops::AllFinite(series));
  // Speeds positive, occupancy within [0, 100].
  for (int64_t t = 0; t < series.dim(0); ++t) {
    for (int64_t n = 0; n < 8; ++n) {
      EXPECT_GT(series.At({t, n, 0}), 0.0f);
      EXPECT_GE(series.At({t, n, 2}), 0.0f);
      EXPECT_LE(series.At({t, n, 2}), 100.0f);
    }
  }
}

TEST(SyntheticTest, DeterministicPerSeed) {
  TrafficConfig config;
  config.num_nodes = 6;
  config.num_days = 2;
  config.steps_per_day = 24;
  SyntheticTraffic g1(config), g2(config);
  EXPECT_TRUE(ops::AllClose(g1.GenerateSeries(), g2.GenerateSeries(), 0.0f, 0.0f));
  config.seed = 99;
  SyntheticTraffic g3(config);
  EXPECT_FALSE(ops::AllClose(g1.GenerateSeries(), g3.GenerateSeries()));
}

TEST(SyntheticTest, RushHourCongestionPeaks) {
  TrafficConfig config;
  config.num_nodes = 6;
  config.num_days = 1;
  config.steps_per_day = 96;
  config.incident_rate = 0.0f;
  SyntheticTraffic generator(config);
  // Rush hour (8:30 -> step 34) should be more congested than 3am (step 12).
  double rush = 0.0, night = 0.0;
  for (int64_t n = 0; n < 6; ++n) {
    rush += generator.CongestionAt(0, 34, n);
    night += generator.CongestionAt(0, 12, n);
  }
  EXPECT_GT(rush, night * 1.5);
}

TEST(SyntheticTest, WeekendsAreLighter) {
  TrafficConfig config;
  config.num_nodes = 4;
  config.num_days = 7;
  config.steps_per_day = 96;
  config.incident_rate = 0.0f;
  SyntheticTraffic generator(config);
  // Day 0 = weekday, day 5 = weekend; compare morning rush congestion.
  double weekday = 0.0, weekend = 0.0;
  for (int64_t n = 0; n < 4; ++n) {
    weekday += generator.CongestionAt(0, 34, n);
    weekend += generator.CongestionAt(5, 34, n);
  }
  EXPECT_GT(weekday, weekend);
}

TEST(SyntheticTest, AbruptDriftChangesPattern) {
  TrafficConfig config;
  config.num_nodes = 10;
  config.num_days = 4;
  config.steps_per_day = 96;
  config.incident_rate = 0.0f;
  config.abrupt_drift_days = {2};
  config.abrupt_refresh_fraction = 1.0f;
  config.abrupt_phase_jump_steps = 8.0f;
  SyntheticTraffic generator(config);
  // Compare the same weekday step across the drift boundary: distribution of
  // congestion across nodes should change materially.
  double diff = 0.0;
  for (int64_t n = 0; n < 10; ++n) {
    diff += std::fabs(generator.CongestionAt(1, 34, n) - generator.CongestionAt(3, 34, n));
  }
  EXPECT_GT(diff / 10.0, 0.03);
}

TEST(SyntheticTest, NoDriftKeepsWeekdaysAligned) {
  TrafficConfig config;
  config.num_nodes = 6;
  config.num_days = 9;
  config.steps_per_day = 96;
  config.incident_rate = 0.0f;
  config.noise_std = 0.0f;
  SyntheticTraffic generator(config);
  // Day 1 and day 8 are both non-drifted weekdays: congestion matches.
  for (int64_t n = 0; n < 6; ++n) {
    EXPECT_NEAR(generator.CongestionAt(1, 40, n), generator.CongestionAt(8, 40, n), 1e-3);
  }
}

TEST(PresetTest, TableOneStatistics) {
  const auto presets = AllPresets();
  ASSERT_EQ(presets.size(), 4u);
  EXPECT_EQ(presets[0].name, "METR-LA");
  EXPECT_EQ(presets[0].paper_num_nodes, 207);
  EXPECT_EQ(presets[1].paper_num_nodes, 325);
  EXPECT_EQ(presets[2].sampling_interval_min, 5);
  EXPECT_EQ(presets[3].channels, 3);
  EXPECT_TRUE(presets[0].speed_target);
  EXPECT_FALSE(presets[3].speed_target);
  for (const auto& p : presets) {
    EXPECT_EQ(p.input_steps, 12);
    EXPECT_EQ(p.output_steps, 1);
  }
}

TEST(PresetTest, TrafficConfigHasDriftAtBoundaries) {
  const DatasetPreset preset = MetrLaPreset();
  const TrafficConfig config = preset.MakeTrafficConfig(16, 20, 1);
  EXPECT_EQ(config.steps_per_day, 96);
  ASSERT_EQ(config.abrupt_drift_days.size(), 4u);
  EXPECT_EQ(config.abrupt_drift_days[0], 6);   // 30% of 20
  EXPECT_EQ(config.abrupt_drift_days[3], 17);  // 82.5% of 20 -> 16.5 -> 17
}

TEST(PresetTest, WindowTargetsFlowForPems) {
  EXPECT_EQ(Pems08Preset().MakeWindowConfig().target_channel, 1);
  EXPECT_EQ(MetrLaPreset().MakeWindowConfig().target_channel, 0);
}

}  // namespace
}  // namespace data
}  // namespace urcl
