// Bitwise-equality tests for the vectorized kernels: every SIMD-accelerated
// op must produce results bit-identical to a handwritten scalar reference
// that replicates the kernel's documented accumulation order. Sizes sweep
// 1..17 so the 8-lane main loop, the scalar tail, and the empty-vector-loop
// cases (n < 8) are all exercised; inputs include NaN, +/-Inf and -0 so the
// exactness claims of tensor/simd.h (Max/Min operand order, sign-bit Neg,
// Relu of NaN) are pinned down, not just the happy path.
#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/rng.h"
#include "nn/optimizer.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

// Bit-exact tensor comparison (memcmp, so NaN == NaN and -0 != +0).
::testing::AssertionResult BitEq(const Tensor& a, const Tensor& b) {
  if (!(a.shape() == b.shape())) {
    return ::testing::AssertionFailure()
           << "shape mismatch: " << a.shape().ToString() << " vs " << b.shape().ToString();
  }
  if (std::memcmp(a.data(), b.data(), static_cast<size_t>(a.NumElements()) * sizeof(float)) !=
      0) {
    for (int64_t i = 0; i < a.NumElements(); ++i) {
      uint32_t ba, bb;
      std::memcpy(&ba, a.data() + i, 4);
      std::memcpy(&bb, b.data() + i, 4);
      if (ba != bb) {
        return ::testing::AssertionFailure()
               << "first bit mismatch at flat index " << i << ": " << a.data()[i] << " ("
               << ba << ") vs " << b.data()[i] << " (" << bb << ")";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

// Pseudo-random values with IEEE specials sprinkled in every 7th slot.
Tensor MakeInput(const Shape& shape, uint64_t seed, bool with_specials = true) {
  Rng rng(seed);
  Tensor t = Tensor::RandomNormal(shape, rng);
  if (with_specials) {
    static const float kSpecials[] = {kNaN, kInf, -kInf, -0.0f, 0.0f};
    float* p = t.mutable_data();
    for (int64_t i = 3; i < t.NumElements(); i += 7) {
      p[i] = kSpecials[(i / 7) % 5];
    }
  }
  return t;
}

TEST(SimdBinaryTest, SameShapeBitwiseMatchesScalar) {
  for (int64_t n = 1; n <= 17; ++n) {
    const Tensor a = MakeInput(Shape{n}, 1000 + static_cast<uint64_t>(n));
    const Tensor b = MakeInput(Shape{n}, 2000 + static_cast<uint64_t>(n));
    Tensor add_ref(a.shape()), sub_ref(a.shape()), mul_ref(a.shape()), div_ref(a.shape()),
        max_ref(a.shape()), min_ref(a.shape());
    for (int64_t i = 0; i < n; ++i) {
      const float x = a.data()[i], y = b.data()[i];
      add_ref.mutable_data()[i] = x + y;
      sub_ref.mutable_data()[i] = x - y;
      mul_ref.mutable_data()[i] = x * y;
      div_ref.mutable_data()[i] = x / y;
      max_ref.mutable_data()[i] = x > y ? x : y;
      min_ref.mutable_data()[i] = x < y ? x : y;
    }
    EXPECT_TRUE(BitEq(ops::Add(a, b), add_ref)) << "n=" << n;
    EXPECT_TRUE(BitEq(ops::Sub(a, b), sub_ref)) << "n=" << n;
    EXPECT_TRUE(BitEq(ops::Mul(a, b), mul_ref)) << "n=" << n;
    EXPECT_TRUE(BitEq(ops::Div(a, b), div_ref)) << "n=" << n;
    EXPECT_TRUE(BitEq(ops::Maximum(a, b), max_ref)) << "n=" << n;
    EXPECT_TRUE(BitEq(ops::Minimum(a, b), min_ref)) << "n=" << n;
  }
}

TEST(SimdBinaryTest, BroadcastRowsBitwiseMatchesScalar) {
  // Inner extents sweep the tail cases; rows/columns exercise all three
  // vectorizable (stride_a, stride_b) combinations of the row kernel.
  for (int64_t inner = 1; inner <= 17; ++inner) {
    const int64_t rows = 5;
    const Tensor a = MakeInput(Shape{rows, inner}, 10 + static_cast<uint64_t>(inner));
    const Tensor row = MakeInput(Shape{inner}, 20 + static_cast<uint64_t>(inner));
    const Tensor col = MakeInput(Shape{rows, 1}, 30 + static_cast<uint64_t>(inner));

    Tensor row_ref(a.shape());
    Tensor col_ref(a.shape());
    Tensor col_first_ref(a.shape());
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t c = 0; c < inner; ++c) {
        row_ref.Set({r, c}, a.At({r, c}) + row.data()[c]);       // (1, 1) dense row operand
        col_ref.Set({r, c}, a.At({r, c}) - col.data()[r]);       // (1, 0) scalar right operand
        col_first_ref.Set({r, c}, col.data()[r] * a.At({r, c})); // (0, 1) scalar left operand
      }
    }
    EXPECT_TRUE(BitEq(ops::Add(a, row), row_ref)) << "inner=" << inner;
    EXPECT_TRUE(BitEq(ops::Sub(a, col), col_ref)) << "inner=" << inner;
    EXPECT_TRUE(BitEq(ops::Mul(col, a), col_first_ref)) << "inner=" << inner;
  }
}

TEST(SimdUnaryTest, BitwiseMatchesScalar) {
  for (int64_t n = 1; n <= 17; ++n) {
    const Tensor a = MakeInput(Shape{n}, 500 + static_cast<uint64_t>(n));
    Tensor neg_ref(a.shape()), abs_ref(a.shape()), sqrt_ref(a.shape()), relu_ref(a.shape()),
        sq_ref(a.shape()), adds_ref(a.shape()), muls_ref(a.shape()), clamp_ref(a.shape());
    for (int64_t i = 0; i < n; ++i) {
      const float x = a.data()[i];
      neg_ref.mutable_data()[i] = -x;
      abs_ref.mutable_data()[i] = std::fabs(x);
      sqrt_ref.mutable_data()[i] = std::sqrt(x);
      relu_ref.mutable_data()[i] = x > 0.0f ? x : 0.0f;
      sq_ref.mutable_data()[i] = x * x;
      adds_ref.mutable_data()[i] = x + 2.5f;
      muls_ref.mutable_data()[i] = x * -1.5f;
      clamp_ref.mutable_data()[i] = std::min(std::max(x, -0.75f), 0.75f);
    }
    EXPECT_TRUE(BitEq(ops::Neg(a), neg_ref)) << "n=" << n;
    EXPECT_TRUE(BitEq(ops::Abs(a), abs_ref)) << "n=" << n;
    EXPECT_TRUE(BitEq(ops::Sqrt(a), sqrt_ref)) << "n=" << n;
    EXPECT_TRUE(BitEq(ops::Relu(a), relu_ref)) << "n=" << n;
    EXPECT_TRUE(BitEq(ops::Square(a), sq_ref)) << "n=" << n;
    EXPECT_TRUE(BitEq(ops::AddScalar(a, 2.5f), adds_ref)) << "n=" << n;
    EXPECT_TRUE(BitEq(ops::MulScalar(a, -1.5f), muls_ref)) << "n=" << n;
    EXPECT_TRUE(BitEq(ops::Clamp(a, -0.75f, 0.75f), clamp_ref)) << "n=" << n;
  }
}

TEST(SimdUnaryTest, SignedZeroAndNanEdgeCases) {
  const Tensor a = Tensor::FromVector(Shape{4}, {-0.0f, 0.0f, kNaN, -1.0f});
  // Neg is a sign-bit flip: -(-0) must be +0 and -(+0) must be -0.
  const Tensor neg = ops::Neg(a);
  EXPECT_FALSE(std::signbit(neg.data()[0]));
  EXPECT_TRUE(std::signbit(neg.data()[1]));
  // Relu(x) = x > 0 ? x : 0 maps NaN and -0 both to +0.
  const Tensor relu = ops::Relu(a);
  EXPECT_EQ(relu.data()[2], 0.0f);
  EXPECT_FALSE(std::signbit(relu.data()[0]));
  // Clamp keeps NaN (std::max/std::min return the first argument on
  // unordered comparisons given the kernel's operand order).
  const Tensor clamped = ops::Clamp(a, -0.5f, 0.5f);
  EXPECT_TRUE(std::isnan(clamped.data()[2]));
}

// Input-major reference reduction: walks the input once in flat order and
// combines into the owning output slot — per-slot accumulation order is
// increasing input offset, exactly what ops::Sum/Max/Min/Mean guarantee.
template <typename Fn>
Tensor ReferenceReduce(const Tensor& a, const std::vector<int64_t>& axes, float init, Fn fn,
                       float post_scale = 1.0f) {
  std::vector<bool> reduced(static_cast<size_t>(a.rank()), false);
  for (int64_t axis : axes) reduced[static_cast<size_t>(axis)] = true;
  std::vector<int64_t> kept_dims;
  for (int64_t i = 0; i < a.rank(); ++i) {
    kept_dims.push_back(reduced[static_cast<size_t>(i)] ? 1 : a.dim(i));
  }
  Tensor out = Tensor::Full(Shape(kept_dims), init);
  std::vector<int64_t> idx(static_cast<size_t>(a.rank()), 0);
  for (int64_t flat = 0; flat < a.NumElements(); ++flat) {
    int64_t rem = flat;
    for (int64_t i = a.rank() - 1; i >= 0; --i) {
      idx[static_cast<size_t>(i)] = rem % a.dim(i);
      rem /= a.dim(i);
    }
    int64_t slot = 0;
    for (int64_t i = 0; i < a.rank(); ++i) {
      const int64_t id = reduced[static_cast<size_t>(i)] ? 0 : idx[static_cast<size_t>(i)];
      slot = slot * kept_dims[static_cast<size_t>(i)] + id;
    }
    out.mutable_data()[slot] = fn(out.mutable_data()[slot], a.data()[flat]);
  }
  if (post_scale != 1.0f) {
    for (int64_t i = 0; i < out.NumElements(); ++i) out.mutable_data()[i] *= post_scale;
  }
  return out;
}

TEST(SimdReduceTest, SumBitwiseMatchesSerialOrder) {
  // Axis-0 reductions of 2-D inputs keep the stride-1 axis -> vector path;
  // axis-1 reductions keep a strided axis -> scalar path. Both must agree
  // with the input-major serial reference. No specials: reductions mix every
  // element, and NaN-poisoned accumulators compare equal trivially.
  for (int64_t inner = 1; inner <= 17; ++inner) {
    const Tensor a =
        MakeInput(Shape{7, inner}, 40 + static_cast<uint64_t>(inner), /*with_specials=*/false);
    EXPECT_TRUE(BitEq(ops::Sum(a, {0}, true),
                      ReferenceReduce(a, {0}, 0.0f, [](float acc, float x) { return acc + x; })))
        << "axis 0, inner=" << inner;
    EXPECT_TRUE(BitEq(ops::Sum(a, {1}, true),
                      ReferenceReduce(a, {1}, 0.0f, [](float acc, float x) { return acc + x; })))
        << "axis 1, inner=" << inner;
  }
  // 3-D with a middle-axis reduction: kept axes {0, 2}, innermost kept axis
  // is stride-1 and runs of length 9 force both vector groups and tails.
  const Tensor b = MakeInput(Shape{3, 4, 9}, 77, /*with_specials=*/false);
  EXPECT_TRUE(BitEq(ops::Sum(b, {1}, true),
                    ReferenceReduce(b, {1}, 0.0f, [](float acc, float x) { return acc + x; })));
  const float full_ref =
      ReferenceReduce(b, {0, 1, 2}, 0.0f, [](float acc, float x) { return acc + x; }).Item();
  EXPECT_EQ(ops::Sum(b).Item(), full_ref);
}

TEST(SimdReduceTest, MeanMaxMinBitwiseMatchSerialOrder) {
  const Tensor a = MakeInput(Shape{6, 13}, 55, /*with_specials=*/false);
  EXPECT_TRUE(BitEq(
      ops::Mean(a, {0}, true),
      ReferenceReduce(a, {0}, 0.0f, [](float acc, float x) { return acc + x; }, 1.0f / 6.0f)));
  EXPECT_TRUE(BitEq(ops::Max(a, {0}, true),
                    ReferenceReduce(a, {0}, -kInf,
                                    [](float acc, float x) { return acc > x ? acc : x; })));
  EXPECT_TRUE(BitEq(ops::Min(a, {0}, true),
                    ReferenceReduce(a, {0}, kInf,
                                    [](float acc, float x) { return acc < x ? acc : x; })));
}

TEST(SimdMatMulTest, BitwiseMatchesIkjReference) {
  // Odd n exercises the j-loop tail; zeros in `a` exercise the skip branch.
  for (const auto& [m, k, n] : std::vector<std::array<int64_t, 3>>{
           {1, 1, 1}, {3, 5, 9}, {4, 7, 17}, {2, 3, 8}}) {
    Tensor a = MakeInput(Shape{m, k}, 60 + static_cast<uint64_t>(n), /*with_specials=*/false);
    const Tensor b = MakeInput(Shape{k, n}, 61 + static_cast<uint64_t>(n), /*with_specials=*/false);
    if (a.NumElements() > 2) a.mutable_data()[2] = 0.0f;
    Tensor ref(Shape{m, n});
    for (int64_t i = 0; i < m; ++i) {
      float* row_out = ref.mutable_data() + i * n;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float scale = a.data()[i * k + kk];
        if (scale == 0.0f) continue;
        const float* row_b = b.data() + kk * n;
        for (int64_t j = 0; j < n; ++j) row_out[j] += scale * row_b[j];
      }
    }
    EXPECT_TRUE(BitEq(ops::MatMul(a, b), ref)) << m << "x" << k << "x" << n;
  }
}

TEST(SimdTemporalConvTest, ForwardAndBackwardBitwiseMatchReference) {
  const int64_t batch = 2, c_in = 3, c_out = 2, nodes = 4, time = 13, kernel = 2, dilation = 2;
  const int64_t t_out = time - dilation * (kernel - 1);
  Tensor in_t = MakeInput(Shape{batch, c_in, nodes, time}, 70, /*with_specials=*/false);
  Tensor w_t = MakeInput(Shape{c_out, c_in, 1, kernel}, 71, /*with_specials=*/false);
  w_t.mutable_data()[1] = 0.0f;  // exercise the w == 0 skip
  const Tensor g = MakeInput(Shape{batch, c_out, nodes, t_out}, 72, /*with_specials=*/false);

  autograd::Variable input(in_t, /*requires_grad=*/true);
  autograd::Variable weight(w_t, /*requires_grad=*/true);
  autograd::Variable out = autograd::TemporalConv2d(input, weight, dilation);
  out.BackwardWithSeed(g);

  // References replicate the kernel's documented per-row accumulation orders.
  Tensor fwd_ref(Shape{batch, c_out, nodes, t_out});
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t co = 0; co < c_out; ++co) {
      for (int64_t n = 0; n < nodes; ++n) {
        float* out_row =
            fwd_ref.mutable_data() + ((b * c_out + co) * nodes + n) * t_out;
        for (int64_t ci = 0; ci < c_in; ++ci) {
          const float* w_row = w_t.data() + (co * c_in + ci) * kernel;
          const float* in_row = in_t.data() + ((b * c_in + ci) * nodes + n) * time;
          for (int64_t k = 0; k < kernel; ++k) {
            const float w = w_row[k];
            if (w == 0.0f) continue;
            for (int64_t t = 0; t < t_out; ++t) out_row[t] += w * in_row[t + dilation * k];
          }
        }
      }
    }
  }
  EXPECT_TRUE(BitEq(out.value(), fwd_ref));

  Tensor din_ref(in_t.shape());
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t ci = 0; ci < c_in; ++ci) {
      for (int64_t n = 0; n < nodes; ++n) {
        float* di_row = din_ref.mutable_data() + ((b * c_in + ci) * nodes + n) * time;
        for (int64_t co = 0; co < c_out; ++co) {
          const float* w_row = w_t.data() + (co * c_in + ci) * kernel;
          const float* g_row = g.data() + ((b * c_out + co) * nodes + n) * t_out;
          for (int64_t k = 0; k < kernel; ++k) {
            const float wk = w_row[k];
            for (int64_t t = 0; t < t_out; ++t) di_row[t + dilation * k] += g_row[t] * wk;
          }
        }
      }
    }
  }
  EXPECT_TRUE(BitEq(input.grad(), din_ref));

  Tensor dw_ref(w_t.shape());
  for (int64_t co = 0; co < c_out; ++co) {
    for (int64_t ci = 0; ci < c_in; ++ci) {
      float* dw_row = dw_ref.mutable_data() + (co * c_in + ci) * kernel;
      for (int64_t b = 0; b < batch; ++b) {
        for (int64_t n = 0; n < nodes; ++n) {
          const float* g_row = g.data() + ((b * c_out + co) * nodes + n) * t_out;
          const float* in_row = in_t.data() + ((b * c_in + ci) * nodes + n) * time;
          for (int64_t k = 0; k < kernel; ++k) {
            float dw_acc = 0.0f;
            for (int64_t t = 0; t < t_out; ++t) dw_acc += g_row[t] * in_row[t + dilation * k];
            dw_row[k] += dw_acc;
          }
        }
      }
    }
  }
  EXPECT_TRUE(BitEq(weight.grad(), dw_ref));
}

TEST(SimdAdamTest, StepBitwiseMatchesScalarReference) {
  nn::AdamConfig config;
  config.lr = 0.01f;
  config.weight_decay = 0.02f;
  // One parameter per size 1..17 so each hits a different main-loop/tail mix.
  std::vector<autograd::Variable> params;
  std::vector<Tensor> ref_values, ref_m, ref_v, grads;
  for (int64_t n = 1; n <= 17; ++n) {
    const Tensor value = MakeInput(Shape{n}, 80 + static_cast<uint64_t>(n),
                                   /*with_specials=*/false);
    params.emplace_back(value.Clone(), /*requires_grad=*/true);
    ref_values.push_back(value.Clone());
    ref_m.push_back(Tensor::Zeros(value.shape()));
    ref_v.push_back(Tensor::Zeros(value.shape()));
    grads.push_back(
        MakeInput(Shape{n}, 90 + static_cast<uint64_t>(n), /*with_specials=*/false));
  }
  nn::Adam adam(params, config);
  for (int step = 1; step <= 3; ++step) {
    adam.ZeroGrad();
    for (size_t i = 0; i < params.size(); ++i) params[i].AccumulateGrad(grads[i]);
    adam.Step();
    const float bc1 = 1.0f - std::pow(config.beta1, static_cast<float>(step));
    const float bc2 = 1.0f - std::pow(config.beta2, static_cast<float>(step));
    for (size_t i = 0; i < params.size(); ++i) {
      float* pv = ref_values[i].mutable_data();
      float* pm = ref_m[i].mutable_data();
      float* pvv = ref_v[i].mutable_data();
      const float* pg = grads[i].data();
      for (int64_t j = 0; j < ref_values[i].NumElements(); ++j) {
        const float grad = pg[j] + config.weight_decay * pv[j];
        pm[j] = config.beta1 * pm[j] + (1.0f - config.beta1) * grad;
        pvv[j] = config.beta2 * pvv[j] + (1.0f - config.beta2) * grad * grad;
        const float m_hat = pm[j] / bc1;
        const float v_hat = pvv[j] / bc2;
        pv[j] -= config.lr * m_hat / (std::sqrt(v_hat) + config.epsilon);
      }
      EXPECT_TRUE(BitEq(params[i].value(), ref_values[i]))
          << "param " << i << " after step " << step;
    }
  }
}

TEST(SimdTensorTest, AllFiniteCatchesSpecialsAtEveryPosition) {
  for (int64_t n = 1; n <= 17; ++n) {
    Rng rng(600 + static_cast<uint64_t>(n));
    Tensor t = Tensor::RandomNormal(Shape{n}, rng);
    EXPECT_TRUE(t.AllFinite()) << "n=" << n;
    for (int64_t pos = 0; pos < n; ++pos) {
      for (const float bad : {kNaN, kInf, -kInf}) {
        const float saved = t.data()[pos];
        t.mutable_data()[pos] = bad;
        EXPECT_FALSE(t.AllFinite()) << "n=" << n << " pos=" << pos << " bad=" << bad;
        t.mutable_data()[pos] = saved;
      }
    }
  }
}

TEST(SimdTensorTest, InPlaceOpsBitwiseMatchScalar) {
  for (int64_t n = 1; n <= 17; ++n) {
    const Tensor a = MakeInput(Shape{n}, 700 + static_cast<uint64_t>(n));
    const Tensor b = MakeInput(Shape{n}, 800 + static_cast<uint64_t>(n));
    Tensor add_got = a.Clone();
    add_got.AddInPlace(b);
    Tensor mul_got = a.Clone();
    mul_got.MulInPlace(0.3f);
    Tensor add_ref(a.shape()), mul_ref(a.shape());
    for (int64_t i = 0; i < n; ++i) {
      add_ref.mutable_data()[i] = a.data()[i] + b.data()[i];
      mul_ref.mutable_data()[i] = a.data()[i] * 0.3f;
    }
    EXPECT_TRUE(BitEq(add_got, add_ref)) << "n=" << n;
    EXPECT_TRUE(BitEq(mul_got, mul_ref)) << "n=" << n;
  }
}

}  // namespace
}  // namespace urcl
