// CLI for the repo lint (tools/lint/repo_lint.h). Registered as the
// `repo_lint` ctest (label `analysis`); exits 1 when any finding survives.
//
//   urcl_lint --root <repo-root> [--format-only]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "tools/lint/repo_lint.h"

int main(int argc, char** argv) {
  std::string root = ".";
  bool format_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--format-only") == 0) {
      format_only = true;
    } else {
      std::fprintf(stderr, "usage: urcl_lint --root <repo-root> [--format-only]\n");
      return 2;
    }
  }
  std::vector<urcl::lint::Finding> findings = urcl::lint::LintTree(root);
  if (format_only) {
    std::vector<urcl::lint::Finding> kept;
    for (urcl::lint::Finding& finding : findings) {
      if (finding.rule.rfind("format/", 0) == 0) kept.push_back(std::move(finding));
    }
    findings = std::move(kept);
  }
  if (findings.empty()) {
    std::fprintf(stderr, "repo_lint: clean\n");
    return 0;
  }
  std::fprintf(stderr, "%s", urcl::lint::FormatFindings(findings).c_str());
  std::fprintf(stderr, "repo_lint: %zu finding(s)\n", findings.size());
  return 1;
}
