#include "tools/lint/layering.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>

namespace urcl {
namespace lint {
namespace {

struct LayerEntry {
  const char* module;
  int rank;
};

// The declared layer DAG. Ranks order the modules bottom-up; equal ranks mean
// "peers that must not know about each other" (graph/autograd are alternate
// IRs over tensor; augment/data/replay/checkpoint are sibling services that
// core composes). A module may include strictly lower ranks only. Adding a
// module means adding a row here — the unknown-module rule makes that
// impossible to forget — and documenting it in DESIGN.md §14.
constexpr LayerEntry kLayers[] = {
    {"common", 0},   {"obs", 1},     {"runtime", 2},    {"tensor", 3},
    {"graph", 4},    {"autograd", 4}, {"nn", 5},        {"augment", 6},
    {"data", 6},     {"replay", 6},  {"checkpoint", 6}, {"exec", 7},
    {"core", 8},     {"baselines", 9}, {"serve", 10},
};

// First path component after the "src/" prefix, or "" when there is none.
std::string ModuleOf(const std::string& repo_path) {
  std::string path = repo_path;
  if (path.rfind("src/", 0) == 0) path = path.substr(4);
  const size_t slash = path.find('/');
  return slash == std::string::npos ? "" : path.substr(0, slash);
}

struct Include {
  int line = 0;         // 1-based
  std::string target;   // the quoted path, e.g. "tensor/pool.h"
};

// Every `#include "..."` in the file. The stripped code line identifies the
// directive (a commented-out include never matches); the quoted path is
// re-read from the raw line because literal contents are blanked in `code`.
std::vector<Include> QuotedIncludes(const SourceFile& file) {
  std::vector<Include> includes;
  for (size_t i = 0; i < file.lines.size(); ++i) {
    const SourceLine& line = file.lines[i];
    if (line.code.find("#include") == std::string::npos) continue;
    const size_t open = line.raw.find('"');
    if (open == std::string::npos) continue;  // <system> include
    const size_t close = line.raw.find('"', open + 1);
    if (close == std::string::npos) continue;
    includes.push_back(
        Include{static_cast<int>(i) + 1, line.raw.substr(open + 1, close - open - 1)});
  }
  return includes;
}

void Add(std::vector<Finding>* findings, const std::string& path, int line, std::string rule,
         std::string detail) {
  findings->push_back(Finding{path, line, std::move(rule), std::move(detail)});
}

// Depth-first search for include cycles. Nodes are repo-relative src/ paths;
// edges only exist where the include target resolves to a file in the set, so
// third-party and generated includes cannot produce false cycles.
struct CycleFinder {
  const std::map<std::string, const SourceFile*>* by_path = nullptr;
  std::map<std::string, std::vector<std::pair<std::string, int>>> edges;
  std::map<std::string, int> color;  // 0 white, 1 on stack, 2 done
  std::vector<std::string> stack;
  std::vector<Finding>* findings = nullptr;

  void Visit(const std::string& node) {
    color[node] = 1;
    stack.push_back(node);
    for (const auto& [target, line] : edges[node]) {
      const int target_color = color[target];
      if (target_color == 2) continue;
      if (target_color == 1) {
        // Back edge: the cycle is the stack suffix from `target` to `node`.
        std::string chain;
        const auto begin = std::find(stack.begin(), stack.end(), target);
        for (auto it = begin; it != stack.end(); ++it) chain += *it + " -> ";
        chain += target;
        const SourceFile& owner = *by_path->at(node);
        if (!LineSuppressed(owner, line, "layering/include-cycle")) {
          Add(findings, node, line, "layering/include-cycle", "include cycle: " + chain);
        }
        continue;
      }
      Visit(target);
    }
    stack.pop_back();
    color[node] = 2;
  }
};

}  // namespace

int LayerRank(const std::string& module) {
  for (const LayerEntry& entry : kLayers) {
    if (module == entry.module) return entry.rank;
  }
  return -1;
}

std::vector<Finding> CheckLayering(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& file : files) by_path[file.path] = &file;

  CycleFinder cycles;
  cycles.by_path = &by_path;
  cycles.findings = &findings;

  for (const auto& [path, file_ptr] : by_path) {
    const SourceFile& file = *file_ptr;
    const std::string module = ModuleOf(path);
    const int rank = LayerRank(module);
    if (rank < 0) {
      Add(&findings, path, 0, "layering/unknown-module",
          "module '" + (module.empty() ? "<top-level>" : module) +
              "' is not in the declared layer DAG (tools/lint/layering.cc); add it with "
              "a rank before landing code");
      continue;
    }

    const std::vector<Include> includes = QuotedIncludes(file);

    // self-include-first: a .cc's first quoted include is its own header.
    const bool is_cc = path.size() > 3 && path.compare(path.size() - 3, 3, ".cc") == 0;
    if (is_cc) {
      const std::string own_header =
          path.substr(4, path.size() - 4 - 3) + ".h";  // drop "src/", swap ".cc"
      if (by_path.count("src/" + own_header) != 0) {
        if (includes.empty()) {
          Add(&findings, path, 1, "layering/self-include-first",
              "first include must be the file's own header \"" + own_header + "\"");
        } else if (includes.front().target != own_header &&
                   !LineSuppressed(file, includes.front().line,
                                   "layering/self-include-first")) {
          Add(&findings, path, includes.front().line, "layering/self-include-first",
              "first include is \"" + includes.front().target +
                  "\"; the file's own header \"" + own_header + "\" must come first");
        }
      }
    }

    for (const Include& include : includes) {
      const size_t slash = include.target.find('/');
      const std::string target_module =
          slash == std::string::npos ? "" : include.target.substr(0, slash);
      const int target_rank = LayerRank(target_module);
      if (target_rank < 0) continue;  // not a src/ module path (tools/, generated)

      if (target_module != module && target_rank >= rank &&
          !LineSuppressed(file, include.line, "layering/upward-include")) {
        Add(&findings, path, include.line, "layering/upward-include",
            module + " (rank " + std::to_string(rank) + ") includes \"" + include.target +
                "\" from " + target_module + " (rank " + std::to_string(target_rank) +
                "); dependencies must point strictly downward");
      }
      if (module == "serve" && target_module == "obs" && include.target != "obs/facade.h" &&
          !LineSuppressed(file, include.line, "layering/obs-facade")) {
        Add(&findings, path, include.line, "layering/obs-facade",
            "serve/ includes \"" + include.target +
                "\" directly; route all observability through obs/facade.h");
      }

      const std::string resolved = "src/" + include.target;
      if (by_path.count(resolved) != 0) {
        cycles.edges[path].push_back({resolved, include.line});
      }
    }
  }

  for (const auto& [path, file_ptr] : by_path) {
    (void)file_ptr;
    if (cycles.color[path] == 0) cycles.Visit(path);
  }

  std::stable_sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return a.file != b.file ? a.file < b.file : a.line < b.line;
  });
  return findings;
}

}  // namespace lint
}  // namespace urcl
