// Repo lint (`urcl::check`, DESIGN.md §9, §14): mechanical source checks run
// as a ctest (`repo_lint`, label `analysis`) so style and banned-construct
// drift fails the build instead of accumulating. The engine is a multi-pass
// pipeline: tools/lint/source.h tokenizes each file once (comment/string
// stripping, CRLF handling, unified suppressions), tools/lint/rules.h runs
// the per-file rule passes registered there, and tools/lint/layering.h checks
// the cross-file include-graph contracts. Rule groups:
//
//   library rules (src/ only)
//     banned-call/rand           rand()/srand() — the determinism contract
//                                requires seeded std::mt19937 engines;
//     banned-call/new-array      raw new[] — buffers come from the pool or
//                                std containers;
//     banned-call/printf         bare printf to stdout in library code —
//                                diagnostics go to stderr or the obs layer;
//     banned-call/clock          direct std::chrono clock reads outside
//                                common/stopwatch.h — timing goes through
//                                Stopwatch so tests can reason about it.
//                                Unlike the other banned calls this rule also
//                                covers tests/ and bench/ (a stray clock read
//                                there breaks timing determinism just as
//                                badly); the serving load generator
//                                bench/bench_serving.cc is the one named
//                                exemption (closed-loop pacing needs a real
//                                deadline clock);
//     include-guard              header guards must spell the repo-relative
//                                path (URCL_<PATH>_H_);
//     exec-pool-acquire          direct BufferPool acquisitions inside
//                                src/exec/ — compiled-plan execution is
//                                arena-only (the PlanArena's own base-buffer
//                                acquisition carries lint:allow markers; this
//                                rule honors them on the same OR the
//                                preceding line, matching arena.cc);
//     serve-metrics-registry     direct MetricsRegistry mentions inside
//                                src/serve/ — serving code publishes through
//                                the obs/facade.h handles (which cache the
//                                lookup and gate on MetricsEnabled) so the
//                                hot path never pays a registry mutex.
//
//   lock discipline (src/ only, except common/thread_annotations.h)
//     lock/unannotated-mutex     raw std synchronization vocabulary
//                                (std::mutex, std::lock_guard, ...) — only the
//                                capability-annotated wrappers in
//                                common/thread_annotations.h are visible to
//                                Clang -Wthread-safety, so raw primitives are
//                                unanalyzable holes;
//     lock/bare-lock             manual .Lock()/.Unlock()/.native() calls —
//                                locks are held through RAII guards (TryLock
//                                pairs with the kAdoptLock constructor), so no
//                                early return can leak a held mutex.
//
//   layering rules (src/ only, cross-file — tools/lint/layering.h)
//     layering/unknown-module, layering/upward-include,
//     layering/include-cycle, layering/obs-facade,
//     layering/self-include-first
//                                the include-graph architecture contracts: a
//                                declared layer DAG with strictly-downward
//                                dependencies; see layering.h for the rules
//                                and layering.cc for the ranks.
//
//   format rules (src/, tests/, bench/, examples/, tools/)
//     format/line-length         lines over 100 columns;
//     format/tab, format/crlf, format/trailing-whitespace,
//     format/final-newline       mechanical whitespace hygiene (the subset of
//                                .clang-format enforceable without the binary).
//
// A `lint:allow(<rule>)` comment on the finding's line or the line directly
// above suppresses that rule there (one shared mechanism for every rule).
// First-party src/ code is expected to carry no suppressions for the lock and
// layering groups. Directories named `testdata` are skipped.
#ifndef URCL_TOOLS_LINT_REPO_LINT_H_
#define URCL_TOOLS_LINT_REPO_LINT_H_

#include <string>
#include <vector>

namespace urcl {
namespace lint {

struct Finding {
  std::string file;  // path as given (repo-relative when walking a tree)
  int line = 0;      // 1-based; 0 = whole-file finding
  std::string rule;
  std::string detail;
};

struct Options {
  // Banned calls + include-guard naming (library code only).
  bool library_rules = true;
  // Whitespace / line-length hygiene.
  bool format_rules = true;
  // Expected include-guard macro; empty disables the guard check. Derived
  // from the repo-relative path by LintTree.
  std::string expected_guard;
  // banned-call/clock applies beyond library code (src/, tools/, tests/,
  // bench/ — everything but examples/).
  bool clock_rules = true;
  // status-discard: statement-position calls of known Status-returning
  // functions whose result is dropped (or `(void)`-laundered). src/ only in
  // LintTree — tests discard on purpose.
  bool status_rules = true;
  // Exempts common/stopwatch.h and bench/bench_serving.cc (the serving load
  // generator) from banned-call/clock.
  bool allow_clock_reads = false;
  // exec-pool-acquire: bans direct BufferPool acquisitions (the arena is the
  // only allocator in compiled-plan code). Set for files under src/exec/.
  bool exec_arena_rules = false;
  // serve-metrics-registry: bans direct obs::MetricsRegistry access (the
  // obs/facade.h handles are the sanctioned route). Set for files under
  // src/serve/.
  bool serve_metrics_rules = false;
  // lock/unannotated-mutex + lock/bare-lock: bans raw std synchronization
  // primitives and manual lock transitions in favor of the annotated wrappers
  // in common/thread_annotations.h. Set for src/ except that header itself.
  bool lock_rules = false;
};

// Lints one file's contents. `path` is used only for diagnostics.
std::vector<Finding> LintFileContent(const std::string& path, const std::string& content,
                                     const Options& options);

// Walks `root`'s source trees (src, tests, bench, examples, tools) applying
// the rule groups described above. `root` is the repository root.
std::vector<Finding> LintTree(const std::string& root);

// One "path:line: [rule] detail" line per finding.
std::string FormatFindings(const std::vector<Finding>& findings);

// Include-guard macro expected for a header at `relative_path` (e.g.
// "tensor/pool.h" -> "URCL_TENSOR_POOL_H_"). Paths are taken relative to the
// directory that is on the include path: src/ itself, or the repo root for
// tools/ and tests/ headers.
std::string ExpectedGuard(const std::string& relative_path);

}  // namespace lint
}  // namespace urcl

#endif  // URCL_TOOLS_LINT_REPO_LINT_H_
