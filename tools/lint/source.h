// Shared source model for the lint engine (tools/lint/repo_lint.h). A file
// is tokenized once — split into lines, comments and string/char literal
// contents blanked — and every rule pass plus the layering analyzer works
// from this one view, so no pass re-implements comment stripping and all
// passes agree on what counts as code.
#ifndef URCL_TOOLS_LINT_SOURCE_H_
#define URCL_TOOLS_LINT_SOURCE_H_

#include <string>
#include <vector>

namespace urcl {
namespace lint {

// One physical line, prepared for rule passes.
struct SourceLine {
  std::string raw;   // as read, minus any trailing CR (recorded in `crlf`)
  std::string code;  // comments and string/char literal contents blanked
  bool crlf = false;
};

// A whole file after the shared tokenize/strip pass.
struct SourceFile {
  std::string path;  // as given; repo-relative when walking a tree
  std::vector<SourceLine> lines;
  bool ends_with_newline = true;
};

// Tokenizes `content` (block-comment state carries across lines).
SourceFile AnalyzeSource(std::string path, const std::string& content);

// Unified suppression semantics for every rule: `lint:allow(<rule>)` on the
// finding's line or on the line directly above it silences `rule` there.
// `line_number` is 1-based; line 0 (whole-file findings) is never
// suppressible.
bool LineSuppressed(const SourceFile& file, int line_number, const std::string& rule);

// Token helpers shared by the passes.
bool IsWordChar(char c);

// True when `code` contains a call of `name` as a whole identifier: the
// previous character is not part of a longer identifier and the next
// non-space character is '('.
bool HasCall(const std::string& code, const std::string& name);

// True when `code` calls `name` as a member (`.name(` or `->name(`), the
// receiver operator immediately preceding the identifier.
bool HasMemberCall(const std::string& code, const std::string& name);

}  // namespace lint
}  // namespace urcl

#endif  // URCL_TOOLS_LINT_SOURCE_H_
