#include "tools/lint/source.h"

#include <cctype>
#include <sstream>
#include <utility>

namespace urcl {
namespace lint {
namespace {

// Replaces string/char literal contents and comments with spaces so rule
// scans only see code. `in_block_comment` carries /* */ state across lines.
std::string StripCommentsAndStrings(const std::string& line, bool* in_block_comment) {
  std::string out = line;
  size_t i = 0;
  while (i < out.size()) {
    if (*in_block_comment) {
      if (out.compare(i, 2, "*/") == 0) {
        out[i] = ' ';
        out[i + 1] = ' ';
        *in_block_comment = false;
        i += 2;
      } else {
        out[i++] = ' ';
      }
      continue;
    }
    const char c = out[i];
    if (c == '/' && i + 1 < out.size() && out[i + 1] == '/') {
      for (size_t j = i; j < out.size(); ++j) out[j] = ' ';
      break;
    }
    if (c == '/' && i + 1 < out.size() && out[i + 1] == '*') {
      out[i] = ' ';
      out[i + 1] = ' ';
      *in_block_comment = true;
      i += 2;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      out[i++] = ' ';
      while (i < out.size()) {
        if (out[i] == '\\' && i + 1 < out.size()) {
          out[i] = ' ';
          out[i + 1] = ' ';
          i += 2;
          continue;
        }
        const bool closing = out[i] == quote;
        out[i++] = ' ';
        if (closing) break;
      }
      continue;
    }
    ++i;
  }
  return out;
}

bool HasAllowMarker(const std::string& raw_line, const std::string& rule) {
  return raw_line.find("lint:allow(" + rule + ")") != std::string::npos;
}

}  // namespace

SourceFile AnalyzeSource(std::string path, const std::string& content) {
  SourceFile file;
  file.path = std::move(path);
  file.ends_with_newline = content.empty() || content.back() == '\n';
  std::istringstream in(content);
  std::string line;
  bool in_block_comment = false;
  while (std::getline(in, line)) {
    SourceLine out;
    if (!line.empty() && line.back() == '\r') {
      out.crlf = true;
      line.pop_back();
    }
    out.code = StripCommentsAndStrings(line, &in_block_comment);
    out.raw = std::move(line);
    file.lines.push_back(std::move(out));
  }
  return file;
}

bool LineSuppressed(const SourceFile& file, int line_number, const std::string& rule) {
  if (line_number < 1 || static_cast<size_t>(line_number) > file.lines.size()) return false;
  if (HasAllowMarker(file.lines[static_cast<size_t>(line_number) - 1].raw, rule)) return true;
  return line_number >= 2 &&
         HasAllowMarker(file.lines[static_cast<size_t>(line_number) - 2].raw, rule);
}

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool HasCall(const std::string& code, const std::string& name) {
  size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string::npos) {
    const bool starts_word = pos == 0 || !IsWordChar(code[pos - 1]);
    size_t after = pos + name.size();
    while (after < code.size() && code[after] == ' ') ++after;
    if (starts_word && after < code.size() && code[after] == '(') return true;
    pos += name.size();
  }
  return false;
}

bool HasMemberCall(const std::string& code, const std::string& name) {
  size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string::npos) {
    const size_t start = pos;
    pos += name.size();
    if (start == 0) continue;
    const char before = code[start - 1];
    if (before != '.' && before != '>') continue;  // `.name` or `->name`
    size_t after = start + name.size();
    while (after < code.size() && code[after] == ' ') ++after;
    if (after < code.size() && code[after] == '(' &&
        (start + name.size() >= code.size() || !IsWordChar(code[start + name.size()]))) {
      return true;
    }
  }
  return false;
}

}  // namespace lint
}  // namespace urcl
