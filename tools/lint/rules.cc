#include "tools/lint/rules.h"

#include <sstream>
#include <string>
#include <utility>

namespace urcl {
namespace lint {
namespace {

constexpr int kMaxLineLength = 100;

void Add(std::vector<Finding>* findings, const std::string& path, int line, std::string rule,
         std::string detail) {
  findings->push_back(Finding{path, line, std::move(rule), std::move(detail)});
}

bool IsHeader(const std::string& path) {
  return path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

// --- format/* ---------------------------------------------------------------

void FormatPass(const SourceFile& file, const Options& options,
                std::vector<Finding>* findings) {
  if (!options.format_rules) return;
  if (!file.ends_with_newline) {
    Add(findings, file.path, 0, "format/final-newline", "file does not end with a newline");
  }
  for (size_t i = 0; i < file.lines.size(); ++i) {
    const SourceLine& line = file.lines[i];
    const int n = static_cast<int>(i) + 1;
    if (line.crlf && !LineSuppressed(file, n, "format/crlf")) {
      Add(findings, file.path, n, "format/crlf", "CRLF line ending");
    }
    if (line.raw.find('\t') != std::string::npos && !LineSuppressed(file, n, "format/tab")) {
      Add(findings, file.path, n, "format/tab", "tab character (indent with spaces)");
    }
    if (!line.raw.empty() && (line.raw.back() == ' ' || line.raw.back() == '\t') &&
        !LineSuppressed(file, n, "format/trailing-whitespace")) {
      Add(findings, file.path, n, "format/trailing-whitespace", "trailing whitespace");
    }
    if (line.raw.size() > static_cast<size_t>(kMaxLineLength) &&
        !LineSuppressed(file, n, "format/line-length")) {
      std::ostringstream detail;
      detail << "line is " << line.raw.size() << " columns (limit " << kMaxLineLength << ")";
      Add(findings, file.path, n, "format/line-length", detail.str());
    }
  }
}

// --- include-guard ----------------------------------------------------------

void IncludeGuardPass(const SourceFile& file, const Options& options,
                      std::vector<Finding>* findings) {
  if (!options.library_rules || options.expected_guard.empty() || !IsHeader(file.path)) {
    return;
  }
  for (const SourceLine& line : file.lines) {
    const size_t pos = line.raw.find("#ifndef");
    if (pos == std::string::npos) continue;
    std::istringstream fields(line.raw.substr(pos));
    std::string directive, guard;
    fields >> directive >> guard;
    if (guard != options.expected_guard) {
      Add(findings, file.path, 0, "include-guard",
          "guard '" + guard + "' does not match path (expected '" + options.expected_guard +
              "')");
    }
    return;
  }
  Add(findings, file.path, 0, "include-guard",
      "header has no include guard (expected '" + options.expected_guard + "')");
}

// --- banned-call/* ----------------------------------------------------------

// True for `new T[...]`-style raw array allocations.
bool HasNewArray(const std::string& code) {
  size_t pos = 0;
  while ((pos = code.find("new", pos)) != std::string::npos) {
    const bool starts_word = pos == 0 || !IsWordChar(code[pos - 1]);
    const size_t after = pos + 3;
    if (!starts_word || after >= code.size() || IsWordChar(code[after])) {
      pos = after;
      continue;
    }
    // Scan the type name that follows; an opening '[' before any terminator
    // means an array allocation.
    for (size_t i = after; i < code.size(); ++i) {
      const char c = code[i];
      if (c == '[') return true;
      if (c == ';' || c == ',' || c == ')' || c == '(' || c == '{') break;
    }
    pos = after;
  }
  return false;
}

void BannedCallPass(const SourceFile& file, const Options& options,
                    std::vector<Finding>* findings) {
  for (size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& code = file.lines[i].code;
    const int n = static_cast<int>(i) + 1;
    // The clock rule outlives the library_rules gate: tests and benches are
    // timing-sensitive too (see the repo_lint.h header comment).
    if (options.clock_rules && !options.allow_clock_reads &&
        (code.find("steady_clock::now") != std::string::npos ||
         code.find("system_clock::now") != std::string::npos ||
         code.find("high_resolution_clock::now") != std::string::npos) &&
        !LineSuppressed(file, n, "banned-call/clock")) {
      Add(findings, file.path, n, "banned-call/clock",
          "direct std::chrono clock read; go through common/stopwatch.h");
    }
    if (!options.library_rules) continue;
    if ((HasCall(code, "rand") || HasCall(code, "srand")) &&
        !LineSuppressed(file, n, "banned-call/rand")) {
      Add(findings, file.path, n, "banned-call/rand",
          "rand()/srand() break the determinism contract; use a seeded std::mt19937");
    }
    if (HasNewArray(code) && !LineSuppressed(file, n, "banned-call/new-array")) {
      Add(findings, file.path, n, "banned-call/new-array",
          "raw new[]; use the buffer pool or a std container");
    }
    if (HasCall(code, "printf") && !LineSuppressed(file, n, "banned-call/printf")) {
      Add(findings, file.path, n, "banned-call/printf",
          "bare printf in library code; write to stderr or use the obs layer");
    }
  }
}

// --- status-discard ---------------------------------------------------------

// Status-returning functions in this repo (curated, not discovered — the
// linter is a single-file scanner with no type information). The discard rule
// flags statement-position calls of these names, where the returned Status is
// dropped on the floor, plus `(void)` laundering of the same calls.
// Expression-position uses (assignment, return, condition, argument) pass.
const char* const kStatusReturningNames[] = {
    "AdmitSnapshot", "AdmitSnapshotBytes",     "Deserialize", "FinishPrediction",
    "Forecast",      "LoadNewestValid",        "LoadState",   "Parse",
    "ParseModelSnapshot", "Predict",           "ReadFile",    "RestoreFromCheckpointDir",
    "Save",          "SaveFullCheckpoint",     "TryImportSeriesCsv",
    "WriteChromeTrace",   "WriteFile"};

// True when `prefix` (the code before the called name on its line) can only
// be a receiver expression: identifier chars, member/scope accessors and
// whitespace. Anything else (operators, '(', '=', a `return` keyword) means
// the call's value is consumed.
bool IsReceiverOnly(const std::string& prefix) {
  bool pending_space = false;  // whitespace seen since the last word char
  bool any_word = false;
  for (const char c : prefix) {
    if (c == ' ' || c == '\t') {
      pending_space = any_word;
      continue;
    }
    if (IsWordChar(c)) {
      // Two identifiers separated by whitespace is a declaration
      // ("static Status Parse(...)"), not a receiver expression.
      if (pending_space) return false;
      any_word = true;
      continue;
    }
    if (c == '.' || c == ':' || c == '-' || c == '>') {
      pending_space = false;
      continue;
    }
    return false;
  }
  return prefix.find("return") == std::string::npos;
}

// Flags statement-position calls of kStatusReturningNames whose result is
// discarded. Heuristic on one stripped line: a receiver-only prefix, the
// call's parentheses balanced on the line, and nothing after them but `;`.
// Multi-line calls escape the net (the [[nodiscard]] compiler check is the
// backstop; this rule exists so discards are caught even where the result is
// laundered through `(void)`).
void CheckStatusDiscardLine(const SourceFile& file, int line_number, const std::string& code,
                            std::vector<Finding>* findings) {
  if (LineSuppressed(file, line_number, "status-discard")) return;
  for (const char* name_cstr : kStatusReturningNames) {
    const std::string name(name_cstr);
    size_t pos = 0;
    while ((pos = code.find(name, pos)) != std::string::npos) {
      const size_t name_start = pos;
      pos += name.size();
      const bool starts_word = name_start == 0 || !IsWordChar(code[name_start - 1]);
      size_t open = pos;
      while (open < code.size() && code[open] == ' ') ++open;
      if (!starts_word || open >= code.size() || code[open] != '(') continue;

      std::string prefix = code.substr(0, name_start);
      const size_t first = prefix.find_first_not_of(" \t");
      prefix = first == std::string::npos ? "" : prefix.substr(first);
      bool laundered = false;
      if (prefix.compare(0, 6, "(void)") == 0) {
        laundered = true;
        prefix = prefix.substr(6);
      }
      // A receiver expression abuts the name (`hub.`, `ns::`); an identifier
      // prefix ending in whitespace is a declaration ("Status Save(...)").
      if (!prefix.empty() && (prefix.back() == ' ' || prefix.back() == '\t')) continue;
      if (!IsReceiverOnly(prefix)) continue;

      int depth = 0;
      size_t i = open;
      for (; i < code.size(); ++i) {
        if (code[i] == '(') ++depth;
        if (code[i] == ')' && --depth == 0) break;
      }
      if (depth != 0) continue;  // call continues on the next line: give up
      ++i;
      while (i < code.size() && code[i] == ' ') ++i;
      if (i >= code.size() || code[i] != ';') continue;
      if (code.find_first_not_of(" \t", i + 1) != std::string::npos) continue;

      Add(findings, file.path, line_number, "status-discard",
          laundered ? "Status returned by " + name + "() is (void)-laundered; handle or "
                          "propagate it (Status is [[nodiscard]] for a reason)"
                    : "Status returned by " + name + "() is silently discarded; check "
                          "ok() or propagate it");
      return;  // one finding per line is enough
    }
  }
}

void StatusDiscardPass(const SourceFile& file, const Options& options,
                       std::vector<Finding>* findings) {
  if (!options.status_rules) return;
  char prev_code_tail = ';';  // last code char of the previous non-blank line
  for (size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& code = file.lines[i].code;
    // A line can only open a new statement after `;`, `{` or `}` — anything
    // else means this line continues an expression (`status =` on the line
    // above) and its leading call is not a discard.
    if (prev_code_tail == ';' || prev_code_tail == '{' || prev_code_tail == '}') {
      CheckStatusDiscardLine(file, static_cast<int>(i) + 1, code, findings);
    }
    const size_t tail = code.find_last_not_of(" \t");
    if (tail != std::string::npos) prev_code_tail = code[tail];
  }
}

// --- exec-pool-acquire ------------------------------------------------------

// True when `code` performs a direct pool acquisition: `BufferPool::Get()`
// immediately followed by `.Acquire...` (catches Acquire and
// AcquireWithVersion but not `.poison_enabled()` etc.), or a call of the
// `AcquireStorage` funnel. Type mentions (`BufferPool::Acquisition`) and
// methods named Acquire on other classes (`PlanArena::Acquire`) do not match.
bool HasDirectPoolAcquire(const std::string& code) {
  static const std::string kGet = "BufferPool::Get()";
  size_t pos = 0;
  while ((pos = code.find(kGet, pos)) != std::string::npos) {
    if (code.compare(pos + kGet.size(), 8, ".Acquire") == 0) return true;
    pos += kGet.size();
  }
  return HasCall(code, "AcquireStorage");
}

void ExecArenaPass(const SourceFile& file, const Options& options,
                   std::vector<Finding>* findings) {
  if (!options.exec_arena_rules) return;
  for (size_t i = 0; i < file.lines.size(); ++i) {
    const int n = static_cast<int>(i) + 1;
    if (HasDirectPoolAcquire(file.lines[i].code) &&
        !LineSuppressed(file, n, "exec-pool-acquire")) {
      Add(findings, file.path, n, "exec-pool-acquire",
          "direct BufferPool acquisition in src/exec/; compiled plans allocate "
          "through the PlanArena only");
    }
  }
}

// --- serve-metrics-registry -------------------------------------------------

void ServeMetricsPass(const SourceFile& file, const Options& options,
                      std::vector<Finding>* findings) {
  if (!options.serve_metrics_rules) return;
  for (size_t i = 0; i < file.lines.size(); ++i) {
    const int n = static_cast<int>(i) + 1;
    // Any mention of the registry type (lookups, cached references, aliases)
    // is flagged, not just `.Get()` calls — the point is that serve/ holds no
    // registry handles at all.
    if (file.lines[i].code.find("MetricsRegistry") != std::string::npos &&
        !LineSuppressed(file, n, "serve-metrics-registry")) {
      Add(findings, file.path, n, "serve-metrics-registry",
          "direct MetricsRegistry use in src/serve/; publish through the "
          "obs/facade.h counter/gauge/histogram handles");
    }
  }
}

// --- lock/* -----------------------------------------------------------------

// Raw standard-library synchronization vocabulary. Inside src/ these may
// appear only in common/thread_annotations.h, which wraps them in
// capability-annotated types (urcl::Mutex, urcl::MutexLock, urcl::CondVar...)
// so Clang -Wthread-safety can check the locking discipline. Order within the
// table does not matter: the scan requires a non-word character after the
// token, so `std::condition_variable` does not fire inside
// `std::condition_variable_any`.
const char* const kRawSyncTokens[] = {
    "std::mutex",        "std::shared_mutex",  "std::recursive_mutex",
    "std::timed_mutex",  "std::condition_variable", "std::condition_variable_any",
    "std::lock_guard",   "std::unique_lock",   "std::shared_lock",
    "std::scoped_lock"};

bool HasToken(const std::string& code, const std::string& token) {
  size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    const bool starts = pos == 0 || (!IsWordChar(code[pos - 1]) && code[pos - 1] != ':');
    const size_t after = pos + token.size();
    const bool ends = after >= code.size() || !IsWordChar(code[after]);
    if (starts && ends) return true;
    pos = after;
  }
  return false;
}

// Manual capability transitions on the annotated wrappers. RAII guards
// (MutexLock and friends) and TryLock-then-adopt are the sanctioned forms;
// a bare Unlock() on an early-return path is exactly the leak TSA exists to
// catch, so it may not appear outside thread_annotations.h either.
// Lowercase `.lock()` is deliberately NOT in this table: std::weak_ptr::lock()
// is common and unrelated. Raw std lockables are already banned wholesale by
// lock/unannotated-mutex, which covers their .lock()/.try_lock() too.
const char* const kManualLockCalls[] = {"Lock",   "Unlock",        "LockShared",
                                        "UnlockShared", "unlock",  "unlock_shared",
                                        "native"};

void LockDisciplinePass(const SourceFile& file, const Options& options,
                        std::vector<Finding>* findings) {
  if (!options.lock_rules) return;
  for (size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& code = file.lines[i].code;
    const int n = static_cast<int>(i) + 1;
    for (const char* token : kRawSyncTokens) {
      if (HasToken(code, token) && !LineSuppressed(file, n, "lock/unannotated-mutex")) {
        Add(findings, file.path, n, "lock/unannotated-mutex",
            std::string(token) + " is invisible to thread-safety analysis; use the "
                "annotated urcl::Mutex/MutexLock/CondVar wrappers from "
                "common/thread_annotations.h and mark data URCL_GUARDED_BY");
        break;  // one finding per line is enough
      }
    }
    for (const char* call : kManualLockCalls) {
      if (HasMemberCall(code, call) && !LineSuppressed(file, n, "lock/bare-lock")) {
        Add(findings, file.path, n, "lock/bare-lock",
            std::string("manual .") + call + "() call; hold locks through RAII "
                "(MutexLock/WriterMutexLock/ReaderMutexLock; pair TryLock with the "
                "kAdoptLock constructor)");
        break;
      }
    }
  }
}

}  // namespace

const std::vector<RulePass>& RulePasses() {
  static const std::vector<RulePass> kPasses = {
      FormatPass,    IncludeGuardPass, BannedCallPass,      StatusDiscardPass,
      ExecArenaPass, ServeMetricsPass, LockDisciplinePass};
  return kPasses;
}

}  // namespace lint
}  // namespace urcl
