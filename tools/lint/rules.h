// Rule-pass registry for the lint engine. Each pass is a free function over
// one tokenized SourceFile (tools/lint/source.h); it reads its own gates from
// Options and appends Findings. LintFileContent runs every registered pass —
// adding a rule means writing one pass and one registry entry, not threading
// state through a monolithic per-line loop.
#ifndef URCL_TOOLS_LINT_RULES_H_
#define URCL_TOOLS_LINT_RULES_H_

#include <vector>

#include "tools/lint/repo_lint.h"
#include "tools/lint/source.h"

namespace urcl {
namespace lint {

using RulePass = void (*)(const SourceFile& file, const Options& options,
                          std::vector<Finding>* findings);

// All registered passes, in the order they run. Findings are sorted by line
// afterwards, so registration order does not affect output.
const std::vector<RulePass>& RulePasses();

}  // namespace lint
}  // namespace urcl

#endif  // URCL_TOOLS_LINT_RULES_H_
