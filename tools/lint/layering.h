// Include-graph architecture linter (DESIGN.md §14). The src/ tree is a
// ranked layer DAG — a module may include only strictly lower-ranked modules
// (plus itself) — and this analyzer parses every `#include "..."` edge and
// fails repo_lint when the graph drifts:
//
//   layering/unknown-module    a src/ file outside the declared module list —
//                              new modules must be added to the DAG (with a
//                              rank) before code lands there;
//   layering/upward-include    an include whose target module ranks at or
//                              above the including module (same-rank
//                              cross-module edges are banned too: merge the
//                              modules or split an interface downward);
//   layering/include-cycle     a cycle among src/ headers (DFS back edge) —
//                              cycles make ranks meaningless and break
//                              incremental builds;
//   layering/obs-facade        serve/ reaching obs/ through anything but
//                              obs/facade.h — the facade is serving's whole
//                              observability surface, so the hot path can be
//                              audited in one place;
//   layering/self-include-first a .cc whose first include is not its own
//                              header — the convention that proves every
//                              header is self-contained.
//
// The declared ranks live in layering.cc; `lint:allow(<rule>)` suppressions
// work as everywhere else but first-party src/ code is expected to carry none.
#ifndef URCL_TOOLS_LINT_LAYERING_H_
#define URCL_TOOLS_LINT_LAYERING_H_

#include <vector>

#include "tools/lint/repo_lint.h"
#include "tools/lint/source.h"

namespace urcl {
namespace lint {

// Checks the layer contracts over `files`, the src/ tree as repo-relative
// SourceFiles ("src/<module>/<file>"). Order of findings is deterministic
// (path, then line).
std::vector<Finding> CheckLayering(const std::vector<SourceFile>& files);

// Rank of `module` in the declared DAG, or -1 when the module is unknown.
// Exposed so tests and docs tooling can assert the table itself.
int LayerRank(const std::string& module);

}  // namespace lint
}  // namespace urcl

#endif  // URCL_TOOLS_LINT_LAYERING_H_
