#include "tools/lint/repo_lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace urcl {
namespace lint {
namespace {

constexpr int kMaxLineLength = 100;

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Replaces string/char literal contents and comments with spaces so the
// banned-call scans only see code. `in_block_comment` carries /* */ state
// across lines.
std::string StripCommentsAndStrings(const std::string& line, bool* in_block_comment) {
  std::string out = line;
  size_t i = 0;
  while (i < out.size()) {
    if (*in_block_comment) {
      if (out.compare(i, 2, "*/") == 0) {
        out[i] = ' ';
        out[i + 1] = ' ';
        *in_block_comment = false;
        i += 2;
      } else {
        out[i++] = ' ';
      }
      continue;
    }
    const char c = out[i];
    if (c == '/' && i + 1 < out.size() && out[i + 1] == '/') {
      for (size_t j = i; j < out.size(); ++j) out[j] = ' ';
      break;
    }
    if (c == '/' && i + 1 < out.size() && out[i + 1] == '*') {
      out[i] = ' ';
      out[i + 1] = ' ';
      *in_block_comment = true;
      i += 2;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      out[i++] = ' ';
      while (i < out.size()) {
        if (out[i] == '\\' && i + 1 < out.size()) {
          out[i] = ' ';
          out[i + 1] = ' ';
          i += 2;
          continue;
        }
        const bool closing = out[i] == quote;
        out[i++] = ' ';
        if (closing) break;
      }
      continue;
    }
    ++i;
  }
  return out;
}

// True when `code` contains a call of `name` as a whole identifier: the
// previous character is not part of a longer identifier and the next
// non-space character is '('.
bool HasCall(const std::string& code, const std::string& name) {
  size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string::npos) {
    const bool starts_word = pos == 0 || !IsWordChar(code[pos - 1]);
    size_t after = pos + name.size();
    while (after < code.size() && code[after] == ' ') ++after;
    if (starts_word && after < code.size() && code[after] == '(') return true;
    pos += name.size();
  }
  return false;
}

// True for `new T[...]` / `new T(...)[]`-style raw array allocations.
bool HasNewArray(const std::string& code) {
  size_t pos = 0;
  while ((pos = code.find("new", pos)) != std::string::npos) {
    const bool starts_word = pos == 0 || !IsWordChar(code[pos - 1]);
    const size_t after = pos + 3;
    if (!starts_word || after >= code.size() || IsWordChar(code[after])) {
      pos = after;
      continue;
    }
    // Scan the type name that follows; an opening '[' before any terminator
    // means an array allocation.
    for (size_t i = after; i < code.size(); ++i) {
      const char c = code[i];
      if (c == '[') return true;
      if (c == ';' || c == ',' || c == ')' || c == '(' || c == '{') break;
    }
    pos = after;
  }
  return false;
}

bool Suppressed(const std::string& raw_line, const std::string& rule) {
  return raw_line.find("lint:allow(" + rule + ")") != std::string::npos;
}

// True when `code` performs a direct pool acquisition: `BufferPool::Get()`
// immediately followed by `.Acquire...` (catches Acquire and
// AcquireWithVersion but not `.poison_enabled()` etc.), or a call of the
// `AcquireStorage` funnel. Type mentions (`BufferPool::Acquisition`) and
// methods named Acquire on other classes (`PlanArena::Acquire`) do not match.
bool HasDirectPoolAcquire(const std::string& code) {
  static const std::string kGet = "BufferPool::Get()";
  size_t pos = 0;
  while ((pos = code.find(kGet, pos)) != std::string::npos) {
    if (code.compare(pos + kGet.size(), 8, ".Acquire") == 0) return true;
    pos += kGet.size();
  }
  return HasCall(code, "AcquireStorage");
}

void Add(std::vector<Finding>* findings, const std::string& path, int line, std::string rule,
         std::string detail);

// Status-returning functions in this repo (curated, not discovered — the
// linter is a single-file scanner with no type information). The discard rule
// flags statement-position calls of these names, where the returned Status is
// dropped on the floor, plus `(void)` laundering of the same calls.
// Expression-position uses (assignment, return, condition, argument) pass.
const char* const kStatusReturningNames[] = {
    "AdmitSnapshot", "AdmitSnapshotBytes",     "Deserialize", "FinishPrediction",
    "Forecast",      "LoadNewestValid",        "LoadState",   "Parse",
    "ParseModelSnapshot", "Predict",           "ReadFile",    "RestoreFromCheckpointDir",
    "Save",          "SaveFullCheckpoint",     "TryImportSeriesCsv",
    "WriteChromeTrace",   "WriteFile"};

// True when `prefix` (the code before the called name on its line) can only
// be a receiver expression: identifier chars, member/scope accessors and
// whitespace. Anything else (operators, '(', '=', a `return` keyword) means
// the call's value is consumed.
bool IsReceiverOnly(const std::string& prefix) {
  bool pending_space = false;  // whitespace seen since the last word char
  bool any_word = false;
  for (const char c : prefix) {
    if (c == ' ' || c == '\t') {
      pending_space = any_word;
      continue;
    }
    if (IsWordChar(c)) {
      // Two identifiers separated by whitespace is a declaration
      // ("static Status Parse(...)"), not a receiver expression.
      if (pending_space) return false;
      any_word = true;
      continue;
    }
    if (c == '.' || c == ':' || c == '-' || c == '>') {
      pending_space = false;
      continue;
    }
    return false;
  }
  return prefix.find("return") == std::string::npos;
}

// Flags statement-position calls of kStatusReturningNames whose result is
// discarded. Heuristic on one stripped line: a receiver-only prefix, the
// call's parentheses balanced on the line, and nothing after them but `;`.
// Multi-line calls escape the net (the [[nodiscard]] compiler check is the
// backstop; this rule exists so discards are caught even where the result is
// laundered through `(void)`).
void CheckStatusDiscards(const std::string& path, int line_number, const std::string& code,
                         const std::string& raw_line, std::vector<Finding>* findings) {
  if (Suppressed(raw_line, "status-discard")) return;
  for (const char* name_cstr : kStatusReturningNames) {
    const std::string name(name_cstr);
    size_t pos = 0;
    while ((pos = code.find(name, pos)) != std::string::npos) {
      const size_t name_start = pos;
      pos += name.size();
      const bool starts_word = name_start == 0 || !IsWordChar(code[name_start - 1]);
      size_t open = pos;
      while (open < code.size() && code[open] == ' ') ++open;
      if (!starts_word || open >= code.size() || code[open] != '(') continue;

      std::string prefix = code.substr(0, name_start);
      const size_t first = prefix.find_first_not_of(" \t");
      prefix = first == std::string::npos ? "" : prefix.substr(first);
      bool laundered = false;
      if (prefix.compare(0, 6, "(void)") == 0) {
        laundered = true;
        prefix = prefix.substr(6);
      }
      // A receiver expression abuts the name (`hub.`, `ns::`); an identifier
      // prefix ending in whitespace is a declaration ("Status Save(...)").
      if (!prefix.empty() && (prefix.back() == ' ' || prefix.back() == '\t')) continue;
      if (!IsReceiverOnly(prefix)) continue;

      int depth = 0;
      size_t i = open;
      for (; i < code.size(); ++i) {
        if (code[i] == '(') ++depth;
        if (code[i] == ')' && --depth == 0) break;
      }
      if (depth != 0) continue;  // call continues on the next line: give up
      ++i;
      while (i < code.size() && code[i] == ' ') ++i;
      if (i >= code.size() || code[i] != ';') continue;
      if (code.find_first_not_of(" \t", i + 1) != std::string::npos) continue;

      Add(findings, path, line_number, "status-discard",
          laundered ? "Status returned by " + name + "() is (void)-laundered; handle or "
                          "propagate it (Status is [[nodiscard]] for a reason)"
                    : "Status returned by " + name + "() is silently discarded; check "
                          "ok() or propagate it");
      return;  // one finding per line is enough
    }
  }
}

void Add(std::vector<Finding>* findings, const std::string& path, int line, std::string rule,
         std::string detail) {
  findings->push_back(Finding{path, line, std::move(rule), std::move(detail)});
}

bool IsHeader(const std::string& path) {
  return path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

void CheckIncludeGuard(const std::string& path, const std::string& content,
                       const std::string& expected, std::vector<Finding>* findings) {
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) {
    const size_t pos = line.find("#ifndef");
    if (pos == std::string::npos) continue;
    std::istringstream fields(line.substr(pos));
    std::string directive, guard;
    fields >> directive >> guard;
    if (guard != expected) {
      Add(findings, path, 0, "include-guard",
          "guard '" + guard + "' does not match path (expected '" + expected + "')");
    }
    return;
  }
  Add(findings, path, 0, "include-guard", "header has no include guard (expected '" +
                                              expected + "')");
}

}  // namespace

std::string ExpectedGuard(const std::string& relative_path) {
  std::string guard = "URCL_";
  for (const char c : relative_path) {
    if (c == '/' || c == '.' || c == '-') {
      guard += '_';
    } else {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
  }
  guard += '_';
  return guard;
}

std::vector<Finding> LintFileContent(const std::string& path, const std::string& content,
                                     const Options& options) {
  std::vector<Finding> findings;

  if (options.format_rules && !content.empty() && content.back() != '\n') {
    Add(&findings, path, 0, "format/final-newline", "file does not end with a newline");
  }
  if (options.library_rules && !options.expected_guard.empty() && IsHeader(path)) {
    CheckIncludeGuard(path, content, options.expected_guard, &findings);
  }

  std::istringstream in(content);
  std::string line;
  bool in_block_comment = false;
  int line_number = 0;
  char prev_code_tail = ';';  // last code char of the previous non-blank line
  std::string prev_raw_line;  // for preceding-line lint:allow comments
  while (std::getline(in, line)) {
    ++line_number;
    if (options.format_rules) {
      if (!line.empty() && line.back() == '\r') {
        if (!Suppressed(line, "format/crlf")) {
          Add(&findings, path, line_number, "format/crlf", "CRLF line ending");
        }
        line.pop_back();
      }
      if (line.find('\t') != std::string::npos && !Suppressed(line, "format/tab")) {
        Add(&findings, path, line_number, "format/tab", "tab character (indent with spaces)");
      }
      if (!line.empty() && (line.back() == ' ' || line.back() == '\t') &&
          !Suppressed(line, "format/trailing-whitespace")) {
        Add(&findings, path, line_number, "format/trailing-whitespace", "trailing whitespace");
      }
      if (line.size() > static_cast<size_t>(kMaxLineLength) &&
          !Suppressed(line, "format/line-length")) {
        std::ostringstream detail;
        detail << "line is " << line.size() << " columns (limit " << kMaxLineLength << ")";
        Add(&findings, path, line_number, "format/line-length", detail.str());
      }
    }
    const std::string code = StripCommentsAndStrings(line, &in_block_comment);
    // A line can only open a new statement after `;`, `{` or `}` — anything
    // else means this line continues an expression (`status =` on the line
    // above) and its leading call is not a discard.
    if (options.status_rules && (prev_code_tail == ';' || prev_code_tail == '{' ||
                                 prev_code_tail == '}')) {
      CheckStatusDiscards(path, line_number, code, line, &findings);
    }
    const size_t tail = code.find_last_not_of(" \t");
    if (tail != std::string::npos) prev_code_tail = code[tail];
    // The clock rule outlives the library_rules gate: tests and benches are
    // timing-sensitive too (see the header comment).
    if (options.clock_rules && !options.allow_clock_reads &&
        (code.find("steady_clock::now") != std::string::npos ||
         code.find("system_clock::now") != std::string::npos ||
         code.find("high_resolution_clock::now") != std::string::npos) &&
        !Suppressed(line, "banned-call/clock")) {
      Add(&findings, path, line_number, "banned-call/clock",
          "direct std::chrono clock read; go through common/stopwatch.h");
    }
    // Arena-only allocation in compiled-plan code. The allow marker may sit on
    // the acquisition line itself or alone on the line above it (long
    // acquisition expressions wrap, pushing trailing comments past the column
    // limit).
    if (options.exec_arena_rules && HasDirectPoolAcquire(code) &&
        !Suppressed(line, "exec-pool-acquire") &&
        !Suppressed(prev_raw_line, "exec-pool-acquire")) {
      Add(&findings, path, line_number, "exec-pool-acquire",
          "direct BufferPool acquisition in src/exec/; compiled plans allocate "
          "through the PlanArena only");
    }
    // Facade-only metrics in serving code: any mention of the registry type
    // (lookups, cached references, aliases) is flagged, not just `.Get()`
    // calls — the point is that serve/ holds no registry handles at all.
    if (options.serve_metrics_rules && code.find("MetricsRegistry") != std::string::npos &&
        !Suppressed(line, "serve-metrics-registry") &&
        !Suppressed(prev_raw_line, "serve-metrics-registry")) {
      Add(&findings, path, line_number, "serve-metrics-registry",
          "direct MetricsRegistry use in src/serve/; publish through the "
          "obs/facade.h counter/gauge/histogram handles");
    }
    prev_raw_line = line;
    if (!options.library_rules) continue;
    if ((HasCall(code, "rand") || HasCall(code, "srand")) &&
        !Suppressed(line, "banned-call/rand")) {
      Add(&findings, path, line_number, "banned-call/rand",
          "rand()/srand() break the determinism contract; use a seeded std::mt19937");
    }
    if (HasNewArray(code) && !Suppressed(line, "banned-call/new-array")) {
      Add(&findings, path, line_number, "banned-call/new-array",
          "raw new[]; use the buffer pool or a std container");
    }
    if (HasCall(code, "printf") && !Suppressed(line, "banned-call/printf")) {
      Add(&findings, path, line_number, "banned-call/printf",
          "bare printf in library code; write to stderr or use the obs layer");
    }
  }
  return findings;
}

std::vector<Finding> LintTree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<Finding> findings;
  const std::vector<std::string> trees = {"src", "tests", "bench", "examples", "tools"};
  for (const std::string& tree : trees) {
    const fs::path tree_root = fs::path(root) / tree;
    if (!fs::exists(tree_root)) continue;
    std::vector<fs::path> files;
    for (auto it = fs::recursive_directory_iterator(tree_root);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory() && it->path().filename() == "testdata") {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext == ".h" || ext == ".cc") files.push_back(it->path());
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& file : files) {
      const std::string repo_relative =
          fs::relative(file, fs::path(root)).generic_string();
      Options options;
      // Banned calls and guard naming are library rules: src/ in full, plus
      // guard naming for tool headers (rooted at the repo top so
      // tools/lint/repo_lint.h includes as "tools/lint/repo_lint.h").
      options.library_rules = tree == "src" || tree == "tools";
      if (IsHeader(repo_relative) && options.library_rules) {
        const std::string include_relative =
            tree == "src" ? fs::relative(file, tree_root).generic_string() : repo_relative;
        options.expected_guard = ExpectedGuard(include_relative);
      }
      options.clock_rules = tree != "examples";
      // The discard rule is library-only: tests exercise discard behavior on
      // purpose (and gtest assertions consume the Status anyway).
      options.status_rules = tree == "src";
      options.allow_clock_reads = repo_relative == "src/common/stopwatch.h" ||
                                  repo_relative == "bench/bench_serving.cc";
      options.exec_arena_rules = repo_relative.rfind("src/exec/", 0) == 0;
      options.serve_metrics_rules = repo_relative.rfind("src/serve/", 0) == 0;
      std::ifstream in(file, std::ios::binary);
      std::ostringstream buffer;
      buffer << in.rdbuf();
      std::vector<Finding> file_findings =
          LintFileContent(repo_relative, buffer.str(), options);
      findings.insert(findings.end(), file_findings.begin(), file_findings.end());
    }
  }
  return findings;
}

std::string FormatFindings(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& finding : findings) {
    out << finding.file << ":";
    if (finding.line > 0) out << finding.line << ":";
    out << " [" << finding.rule << "] " << finding.detail << "\n";
  }
  return out.str();
}

}  // namespace lint
}  // namespace urcl
