#include "tools/lint/repo_lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "tools/lint/layering.h"
#include "tools/lint/rules.h"
#include "tools/lint/source.h"

namespace urcl {
namespace lint {
namespace {

// Runs every registered rule pass over one tokenized file, then orders the
// findings by line so output is stable regardless of pass registration order.
std::vector<Finding> RunRulePasses(const SourceFile& file, const Options& options) {
  std::vector<Finding> findings;
  for (const RulePass pass : RulePasses()) pass(file, options, &findings);
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) { return a.line < b.line; });
  return findings;
}

bool IsHeader(const std::string& path) {
  return path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

}  // namespace

std::string ExpectedGuard(const std::string& relative_path) {
  std::string guard = "URCL_";
  for (const char c : relative_path) {
    if (c == '/' || c == '.' || c == '-') {
      guard += '_';
    } else {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
  }
  guard += '_';
  return guard;
}

std::vector<Finding> LintFileContent(const std::string& path, const std::string& content,
                                     const Options& options) {
  return RunRulePasses(AnalyzeSource(path, content), options);
}

std::vector<Finding> LintTree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<Finding> findings;
  std::vector<SourceFile> src_files;  // collected for the layering analyzer
  const std::vector<std::string> trees = {"src", "tests", "bench", "examples", "tools"};
  for (const std::string& tree : trees) {
    const fs::path tree_root = fs::path(root) / tree;
    if (!fs::exists(tree_root)) continue;
    std::vector<fs::path> files;
    for (auto it = fs::recursive_directory_iterator(tree_root);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory() && it->path().filename() == "testdata") {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext == ".h" || ext == ".cc") files.push_back(it->path());
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& file : files) {
      const std::string repo_relative =
          fs::relative(file, fs::path(root)).generic_string();
      Options options;
      // Banned calls and guard naming are library rules: src/ in full, plus
      // guard naming for tool headers (rooted at the repo top so
      // tools/lint/repo_lint.h includes as "tools/lint/repo_lint.h").
      options.library_rules = tree == "src" || tree == "tools";
      if (IsHeader(repo_relative) && options.library_rules) {
        const std::string include_relative =
            tree == "src" ? fs::relative(file, tree_root).generic_string() : repo_relative;
        options.expected_guard = ExpectedGuard(include_relative);
      }
      options.clock_rules = tree != "examples";
      // The discard rule is library-only: tests exercise discard behavior on
      // purpose (and gtest assertions consume the Status anyway).
      options.status_rules = tree == "src";
      options.allow_clock_reads = repo_relative == "src/common/stopwatch.h" ||
                                  repo_relative == "bench/bench_serving.cc";
      options.exec_arena_rules = repo_relative.rfind("src/exec/", 0) == 0;
      options.serve_metrics_rules = repo_relative.rfind("src/serve/", 0) == 0;
      // Lock discipline holds across src/; the annotations header is the one
      // place allowed to touch the raw std primitives it wraps.
      options.lock_rules =
          tree == "src" && repo_relative != "src/common/thread_annotations.h";
      std::ifstream in(file, std::ios::binary);
      std::ostringstream buffer;
      buffer << in.rdbuf();
      const SourceFile source = AnalyzeSource(repo_relative, buffer.str());
      std::vector<Finding> file_findings = RunRulePasses(source, options);
      findings.insert(findings.end(), file_findings.begin(), file_findings.end());
      if (tree == "src") src_files.push_back(source);
    }
  }
  std::vector<Finding> layering = CheckLayering(src_files);
  findings.insert(findings.end(), layering.begin(), layering.end());
  return findings;
}

std::string FormatFindings(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& finding : findings) {
    out << finding.file << ":";
    if (finding.line > 0) out << finding.line << ":";
    out << " [" << finding.rule << "] " << finding.detail << "\n";
  }
  return out.str();
}

}  // namespace lint
}  // namespace urcl
