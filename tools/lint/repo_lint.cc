#include "tools/lint/repo_lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace urcl {
namespace lint {
namespace {

constexpr int kMaxLineLength = 100;

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Replaces string/char literal contents and comments with spaces so the
// banned-call scans only see code. `in_block_comment` carries /* */ state
// across lines.
std::string StripCommentsAndStrings(const std::string& line, bool* in_block_comment) {
  std::string out = line;
  size_t i = 0;
  while (i < out.size()) {
    if (*in_block_comment) {
      if (out.compare(i, 2, "*/") == 0) {
        out[i] = ' ';
        out[i + 1] = ' ';
        *in_block_comment = false;
        i += 2;
      } else {
        out[i++] = ' ';
      }
      continue;
    }
    const char c = out[i];
    if (c == '/' && i + 1 < out.size() && out[i + 1] == '/') {
      for (size_t j = i; j < out.size(); ++j) out[j] = ' ';
      break;
    }
    if (c == '/' && i + 1 < out.size() && out[i + 1] == '*') {
      out[i] = ' ';
      out[i + 1] = ' ';
      *in_block_comment = true;
      i += 2;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      out[i++] = ' ';
      while (i < out.size()) {
        if (out[i] == '\\' && i + 1 < out.size()) {
          out[i] = ' ';
          out[i + 1] = ' ';
          i += 2;
          continue;
        }
        const bool closing = out[i] == quote;
        out[i++] = ' ';
        if (closing) break;
      }
      continue;
    }
    ++i;
  }
  return out;
}

// True when `code` contains a call of `name` as a whole identifier: the
// previous character is not part of a longer identifier and the next
// non-space character is '('.
bool HasCall(const std::string& code, const std::string& name) {
  size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string::npos) {
    const bool starts_word = pos == 0 || !IsWordChar(code[pos - 1]);
    size_t after = pos + name.size();
    while (after < code.size() && code[after] == ' ') ++after;
    if (starts_word && after < code.size() && code[after] == '(') return true;
    pos += name.size();
  }
  return false;
}

// True for `new T[...]` / `new T(...)[]`-style raw array allocations.
bool HasNewArray(const std::string& code) {
  size_t pos = 0;
  while ((pos = code.find("new", pos)) != std::string::npos) {
    const bool starts_word = pos == 0 || !IsWordChar(code[pos - 1]);
    const size_t after = pos + 3;
    if (!starts_word || after >= code.size() || IsWordChar(code[after])) {
      pos = after;
      continue;
    }
    // Scan the type name that follows; an opening '[' before any terminator
    // means an array allocation.
    for (size_t i = after; i < code.size(); ++i) {
      const char c = code[i];
      if (c == '[') return true;
      if (c == ';' || c == ',' || c == ')' || c == '(' || c == '{') break;
    }
    pos = after;
  }
  return false;
}

bool Suppressed(const std::string& raw_line, const std::string& rule) {
  return raw_line.find("lint:allow(" + rule + ")") != std::string::npos;
}

void Add(std::vector<Finding>* findings, const std::string& path, int line, std::string rule,
         std::string detail) {
  findings->push_back(Finding{path, line, std::move(rule), std::move(detail)});
}

bool IsHeader(const std::string& path) {
  return path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

void CheckIncludeGuard(const std::string& path, const std::string& content,
                       const std::string& expected, std::vector<Finding>* findings) {
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) {
    const size_t pos = line.find("#ifndef");
    if (pos == std::string::npos) continue;
    std::istringstream fields(line.substr(pos));
    std::string directive, guard;
    fields >> directive >> guard;
    if (guard != expected) {
      Add(findings, path, 0, "include-guard",
          "guard '" + guard + "' does not match path (expected '" + expected + "')");
    }
    return;
  }
  Add(findings, path, 0, "include-guard", "header has no include guard (expected '" +
                                              expected + "')");
}

}  // namespace

std::string ExpectedGuard(const std::string& relative_path) {
  std::string guard = "URCL_";
  for (const char c : relative_path) {
    if (c == '/' || c == '.' || c == '-') {
      guard += '_';
    } else {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
  }
  guard += '_';
  return guard;
}

std::vector<Finding> LintFileContent(const std::string& path, const std::string& content,
                                     const Options& options) {
  std::vector<Finding> findings;

  if (options.format_rules && !content.empty() && content.back() != '\n') {
    Add(&findings, path, 0, "format/final-newline", "file does not end with a newline");
  }
  if (options.library_rules && !options.expected_guard.empty() && IsHeader(path)) {
    CheckIncludeGuard(path, content, options.expected_guard, &findings);
  }

  std::istringstream in(content);
  std::string line;
  bool in_block_comment = false;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (options.format_rules) {
      if (!line.empty() && line.back() == '\r') {
        if (!Suppressed(line, "format/crlf")) {
          Add(&findings, path, line_number, "format/crlf", "CRLF line ending");
        }
        line.pop_back();
      }
      if (line.find('\t') != std::string::npos && !Suppressed(line, "format/tab")) {
        Add(&findings, path, line_number, "format/tab", "tab character (indent with spaces)");
      }
      if (!line.empty() && (line.back() == ' ' || line.back() == '\t') &&
          !Suppressed(line, "format/trailing-whitespace")) {
        Add(&findings, path, line_number, "format/trailing-whitespace", "trailing whitespace");
      }
      if (line.size() > static_cast<size_t>(kMaxLineLength) &&
          !Suppressed(line, "format/line-length")) {
        std::ostringstream detail;
        detail << "line is " << line.size() << " columns (limit " << kMaxLineLength << ")";
        Add(&findings, path, line_number, "format/line-length", detail.str());
      }
    }
    const std::string code = StripCommentsAndStrings(line, &in_block_comment);
    // The clock rule outlives the library_rules gate: tests and benches are
    // timing-sensitive too (see the header comment).
    if (options.clock_rules && !options.allow_clock_reads &&
        (code.find("steady_clock::now") != std::string::npos ||
         code.find("system_clock::now") != std::string::npos ||
         code.find("high_resolution_clock::now") != std::string::npos) &&
        !Suppressed(line, "banned-call/clock")) {
      Add(&findings, path, line_number, "banned-call/clock",
          "direct std::chrono clock read; go through common/stopwatch.h");
    }
    if (!options.library_rules) continue;
    if ((HasCall(code, "rand") || HasCall(code, "srand")) &&
        !Suppressed(line, "banned-call/rand")) {
      Add(&findings, path, line_number, "banned-call/rand",
          "rand()/srand() break the determinism contract; use a seeded std::mt19937");
    }
    if (HasNewArray(code) && !Suppressed(line, "banned-call/new-array")) {
      Add(&findings, path, line_number, "banned-call/new-array",
          "raw new[]; use the buffer pool or a std container");
    }
    if (HasCall(code, "printf") && !Suppressed(line, "banned-call/printf")) {
      Add(&findings, path, line_number, "banned-call/printf",
          "bare printf in library code; write to stderr or use the obs layer");
    }
  }
  return findings;
}

std::vector<Finding> LintTree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<Finding> findings;
  const std::vector<std::string> trees = {"src", "tests", "bench", "examples", "tools"};
  for (const std::string& tree : trees) {
    const fs::path tree_root = fs::path(root) / tree;
    if (!fs::exists(tree_root)) continue;
    std::vector<fs::path> files;
    for (auto it = fs::recursive_directory_iterator(tree_root);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory() && it->path().filename() == "testdata") {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext == ".h" || ext == ".cc") files.push_back(it->path());
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& file : files) {
      const std::string repo_relative =
          fs::relative(file, fs::path(root)).generic_string();
      Options options;
      // Banned calls and guard naming are library rules: src/ in full, plus
      // guard naming for tool headers (rooted at the repo top so
      // tools/lint/repo_lint.h includes as "tools/lint/repo_lint.h").
      options.library_rules = tree == "src" || tree == "tools";
      if (IsHeader(repo_relative) && options.library_rules) {
        const std::string include_relative =
            tree == "src" ? fs::relative(file, tree_root).generic_string() : repo_relative;
        options.expected_guard = ExpectedGuard(include_relative);
      }
      options.clock_rules = tree != "examples";
      options.allow_clock_reads = repo_relative == "src/common/stopwatch.h" ||
                                  repo_relative == "bench/bench_serving.cc";
      std::ifstream in(file, std::ios::binary);
      std::ostringstream buffer;
      buffer << in.rdbuf();
      std::vector<Finding> file_findings =
          LintFileContent(repo_relative, buffer.str(), options);
      findings.insert(findings.end(), file_findings.begin(), file_findings.end());
    }
  }
  return findings;
}

std::string FormatFindings(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& finding : findings) {
    out << finding.file << ":";
    if (finding.line > 0) out << finding.line << ":";
    out << " [" << finding.rule << "] " << finding.detail << "\n";
  }
  return out.str();
}

}  // namespace lint
}  // namespace urcl
