// Offline analysis of flight-recorder dumps (src/obs/flight_recorder.h).
// The recorder writes one JSON object per line; this library parses those
// lines back into events and renders filtered reports for the urcl_blackbox
// CLI — the incident-forensics entry point (README "Incident forensics").
//
// Library form (rather than logic in main.cc) so the parser and report
// renderer are unit-testable without spawning the binary.
#ifndef URCL_TOOLS_OBS_BLACKBOX_REPORT_H_
#define URCL_TOOLS_OBS_BLACKBOX_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace urcl {
namespace tools {

// One parsed flight-recorder event (mirrors obs::FlightEvent, but carries the
// type as the dumped string so the tool keeps working when the enum grows).
struct BlackboxEvent {
  uint64_t seq = 0;
  int64_t ts_ns = 0;
  std::string type;
  uint64_t trace_id = 0;  // 0 = event carried no trace ID
  int64_t a = 0;
  int64_t b = 0;
  std::string detail;
};

// Parses JSONL text produced by FlightRecorder::ToJsonl. Lines that are empty
// or fail to parse are skipped and counted into `*malformed` (pass nullptr to
// ignore); the recorder only ever emits well-formed lines, so a non-zero
// count means the dump was truncated or hand-edited.
std::vector<BlackboxEvent> ParseBlackboxJsonl(const std::string& text, int64_t* malformed);

struct BlackboxReportOptions {
  uint64_t trace_id = 0;   // keep only events with this trace ID (0 = all)
  std::string type;        // keep only events of this type name (empty = all)
  int64_t tail = 0;        // keep only the last N events after filtering (0 = all)
  bool summary = false;    // append per-type counts and incident highlights
};

// Renders the filtered event list as an aligned human-readable table,
// optionally followed by the summary block.
std::string RenderBlackboxReport(const std::vector<BlackboxEvent>& events,
                                 const BlackboxReportOptions& options);

}  // namespace tools
}  // namespace urcl

#endif  // URCL_TOOLS_OBS_BLACKBOX_REPORT_H_
