// urcl_blackbox: the incident-forensics CLI over flight-recorder dumps.
//
//   urcl_blackbox <dump.jsonl> [--trace 0x<id>] [--type <name>]
//                 [--tail N] [--summary]
//
// Reads a JSONL dump written by the serving/training process (automatically
// on rollback / LAME_DUCK / fatal abort, or on demand via
// obs::FlightRecorder::DumpToFile) and prints the event timeline, optionally
// narrowed to one request's trace ID or one event type.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "tools/obs/blackbox_report.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <dump.jsonl> [--trace 0x<id>] [--type <name>] [--tail N] "
               "[--summary]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  urcl::tools::BlackboxReportOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--summary") {
      options.summary = true;
    } else if (arg == "--trace" && i + 1 < argc) {
      options.trace_id = std::strtoull(argv[++i], nullptr, 16);
      if (options.trace_id == 0) {
        std::fprintf(stderr, "error: --trace expects a hex trace ID\n");
        return 2;
      }
    } else if (arg == "--type" && i + 1 < argc) {
      options.type = argv[++i];
    } else if (arg == "--tail" && i + 1 < argc) {
      options.tail = std::strtoll(argv[++i], nullptr, 10);
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage(argv[0]);
    } else if (path.empty()) {
      path = arg;
    } else {
      return Usage(argv[0]);
    }
  }
  if (path.empty()) return Usage(argv[0]);

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();

  int64_t malformed = 0;
  const auto events = urcl::tools::ParseBlackboxJsonl(text.str(), &malformed);
  std::fputs(urcl::tools::RenderBlackboxReport(events, options).c_str(), stdout);
  if (malformed > 0) {
    std::fprintf(stderr, "warning: %lld malformed line(s) skipped (truncated dump?)\n",
                 static_cast<long long>(malformed));
  }
  return 0;
}
