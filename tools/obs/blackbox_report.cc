#include "tools/obs/blackbox_report.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

namespace urcl {
namespace tools {
namespace {

// Extracts the value of "key":<integer> from `line`; false when absent.
bool FindInt(const std::string& line, const std::string& key, int64_t* out) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const char* start = line.c_str() + at + needle.size();
  char* end = nullptr;
  const long long value = std::strtoll(start, &end, 10);
  if (end == start) return false;
  *out = static_cast<int64_t>(value);
  return true;
}

// Extracts the value of "key":"<string>" from `line`, undoing the escapes
// obs::JsonEscape applies; false when absent or unterminated.
bool FindString(const std::string& line, const std::string& key, std::string* out) {
  const std::string needle = "\"" + key + "\":\"";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::string value;
  for (size_t i = at + needle.size(); i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"') {
      *out = std::move(value);
      return true;
    }
    if (c == '\\' && i + 1 < line.size()) {
      const char next = line[++i];
      switch (next) {
        case 'n': value += '\n'; break;
        case 'r': value += '\r'; break;
        case 't': value += '\t'; break;
        case 'u':
          // \u00XX escapes only encode control bytes here; keep a marker.
          i += std::min<size_t>(4, line.size() - i - 1);
          value += '?';
          break;
        default: value += next;
      }
      continue;
    }
    value += c;
  }
  return false;  // unterminated string: truncated dump line
}

}  // namespace

std::vector<BlackboxEvent> ParseBlackboxJsonl(const std::string& text, int64_t* malformed) {
  std::vector<BlackboxEvent> events;
  int64_t bad = 0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    BlackboxEvent event;
    int64_t seq = 0;
    if (!FindInt(line, "seq", &seq) || !FindInt(line, "ts_ns", &event.ts_ns) ||
        !FindString(line, "type", &event.type)) {
      ++bad;
      continue;
    }
    event.seq = static_cast<uint64_t>(seq);
    FindInt(line, "a", &event.a);
    FindInt(line, "b", &event.b);
    std::string trace_hex;
    if (FindString(line, "trace_id", &trace_hex)) {
      event.trace_id = std::strtoull(trace_hex.c_str(), nullptr, 16);
    }
    FindString(line, "detail", &event.detail);
    events.push_back(std::move(event));
  }
  std::sort(events.begin(), events.end(),
            [](const BlackboxEvent& x, const BlackboxEvent& y) { return x.seq < y.seq; });
  if (malformed != nullptr) *malformed = bad;
  return events;
}

std::string RenderBlackboxReport(const std::vector<BlackboxEvent>& events,
                                 const BlackboxReportOptions& options) {
  std::vector<BlackboxEvent> kept;
  for (const BlackboxEvent& event : events) {
    if (options.trace_id != 0 && event.trace_id != options.trace_id) continue;
    if (!options.type.empty() && event.type != options.type) continue;
    kept.push_back(event);
  }
  const size_t total_matched = kept.size();
  if (options.tail > 0 && kept.size() > static_cast<size_t>(options.tail)) {
    kept.erase(kept.begin(), kept.end() - options.tail);
  }

  std::ostringstream out;
  char buf[160];
  for (const BlackboxEvent& event : kept) {
    // Timestamps are monotonic-clock offsets; render as seconds for scale.
    std::snprintf(buf, sizeof(buf), "%6" PRIu64 "  %12.6fs  %-22s", event.seq,
                  static_cast<double>(event.ts_ns) / 1e9, event.type.c_str());
    out << buf;
    if (event.trace_id != 0) {
      std::snprintf(buf, sizeof(buf), "  trace=0x%" PRIx64, event.trace_id);
      out << buf;
    }
    std::snprintf(buf, sizeof(buf), "  a=%lld b=%lld", static_cast<long long>(event.a),
                  static_cast<long long>(event.b));
    out << buf;
    if (!event.detail.empty()) out << "  " << event.detail;
    out << "\n";
  }

  if (options.summary) {
    std::map<std::string, int64_t> by_type;
    std::map<uint64_t, int64_t> by_trace;
    for (const BlackboxEvent& event : kept) {
      ++by_type[event.type];
      if (event.trace_id != 0) ++by_trace[event.trace_id];
    }
    out << "---\n"
        << "events: " << kept.size() << " shown / " << total_matched << " matched / "
        << events.size() << " in dump\n";
    for (const auto& [type, count] : by_type) {
      out << "  " << type << ": " << count << "\n";
    }
    if (!by_trace.empty()) {
      out << "traced requests: " << by_trace.size() << "\n";
    }
    // Incident highlight: the event types that warrant paging someone.
    for (const char* incident : {"rollback", "lame_duck", "fatal_abort"}) {
      const auto it = by_type.find(incident);
      if (it != by_type.end()) {
        out << "INCIDENT: " << it->first << " x" << it->second << "\n";
      }
    }
  }
  return out.str();
}

}  // namespace tools
}  // namespace urcl
