#include "core/ewc.h"

#include <algorithm>

#include "autograd/ops.h"
#include "common/check.h"
#include "nn/loss.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace core {

namespace ag = ::urcl::autograd;

EwcTrainer::EwcTrainer(const EwcConfig& config, const graph::SensorNetwork& network)
    : config_(config), rng_(config.seed), adjacency_(network.AdjacencyMatrix()) {
  URCL_CHECK_EQ(config.encoder.num_nodes, network.num_nodes());
  encoder_ = MakeBackbone(config.backbone, config.encoder, rng_);
  decoder_ = std::make_unique<StDecoder>(encoder_->latent_channels(), encoder_->latent_time(),
                                         config.decoder_hidden, config.output_steps, rng_);
  params_ = encoder_->Parameters();
  const std::vector<autograd::Variable> decoder_params = decoder_->Parameters();
  params_.insert(params_.end(), decoder_params.begin(), decoder_params.end());
  optimizer_ = std::make_unique<nn::Adam>(params_, config.learning_rate);
}

autograd::Variable EwcTrainer::Penalty() const {
  URCL_CHECK(consolidated());
  autograd::Variable total(Tensor::Scalar(0.0f), /*requires_grad=*/false);
  for (size_t i = 0; i < params_.size(); ++i) {
    autograd::Variable anchor(anchors_[i], /*requires_grad=*/false);
    autograd::Variable fisher(fisher_[i], /*requires_grad=*/false);
    autograd::Variable diff = ag::Sub(params_[i], anchor);
    total = ag::Add(total, ag::Sum(ag::Mul(fisher, ag::Square(diff))));
  }
  return ag::MulScalar(total, 0.5f * config_.ewc_lambda);
}

float EwcTrainer::PenaltyValue() const {
  if (!consolidated()) return 0.0f;
  return Penalty().value().Item();
}

void EwcTrainer::Consolidate(const data::StDataset& train) {
  std::vector<Tensor> fisher;
  fisher.reserve(params_.size());
  for (const autograd::Variable& p : params_) fisher.push_back(Tensor::Zeros(p.shape()));

  const int64_t num_samples = train.NumSamples();
  const int64_t batches = std::min(config_.fisher_batches,
                                   std::max<int64_t>(1, num_samples / config_.batch_size));
  for (int64_t b = 0; b < batches; ++b) {
    std::vector<int64_t> indices;
    for (int64_t i = 0; i < config_.batch_size; ++i) {
      indices.push_back(rng_.UniformInt(0, num_samples - 1));
    }
    const auto [inputs, targets] = train.MakeBatch(indices);
    for (const autograd::Variable& p : params_) p.ZeroGrad();
    autograd::Variable x(inputs, false);
    autograd::Variable y(targets, false);
    autograd::Variable loss =
        nn::MaeLoss(decoder_->Forward(encoder_->Encode(x, adjacency_)), y);
    loss.Backward();
    for (size_t i = 0; i < params_.size(); ++i) {
      const Tensor g = params_[i].grad();
      Tensor g2 = ops::Square(g);
      g2.MulInPlace(1.0f / static_cast<float>(batches));
      fisher[i].AddInPlace(g2);
    }
  }
  for (const autograd::Variable& p : params_) p.ZeroGrad();

  if (fisher_.empty()) {
    fisher_ = std::move(fisher);
  } else {
    // Accumulate Fisher across stages (standard multi-task EWC).
    for (size_t i = 0; i < fisher_.size(); ++i) fisher_[i].AddInPlace(fisher[i]);
  }
  anchors_.clear();
  for (const autograd::Variable& p : params_) anchors_.push_back(p.value().Clone());
}

std::vector<float> EwcTrainer::TrainStage(const data::StDataset& train, int64_t epochs) {
  URCL_CHECK_GT(epochs, 0);
  const int64_t num_samples = train.NumSamples();
  URCL_CHECK_GT(num_samples, 0);
  encoder_->SetTraining(true);
  decoder_->SetTraining(true);

  const int64_t batch = config_.batch_size;
  int64_t budget = num_samples;
  if (config_.max_batches_per_epoch > 0) {
    budget = std::min(budget, config_.max_batches_per_epoch * batch);
  }
  std::vector<int64_t> base;
  for (int64_t i = 0; i < budget; ++i) base.push_back(i * num_samples / budget);
  const int64_t num_batches = (budget + batch - 1) / batch;
  std::vector<int64_t> schedule;
  for (int64_t k = 0; k < num_batches; ++k) {
    for (int64_t j = 0; j < batch; ++j) {
      const int64_t index = j * num_batches + k;
      if (index < budget) schedule.push_back(base[static_cast<size_t>(index)]);
    }
  }

  std::vector<float> epoch_losses;
  for (int64_t epoch = 0; epoch < epochs; ++epoch) {
    double loss_sum = 0.0;
    int64_t steps = 0;
    for (int64_t start = 0; start < static_cast<int64_t>(schedule.size()); start += batch) {
      const int64_t count =
          std::min<int64_t>(batch, static_cast<int64_t>(schedule.size()) - start);
      std::vector<int64_t> indices(schedule.begin() + start, schedule.begin() + start + count);
      const auto [inputs, targets] = train.MakeBatch(indices);
      autograd::Variable x(inputs, false);
      autograd::Variable y(targets, false);
      autograd::Variable loss =
          nn::MaeLoss(decoder_->Forward(encoder_->Encode(x, adjacency_)), y);
      if (consolidated()) loss = ag::Add(loss, Penalty());
      optimizer_->ZeroGrad();
      loss.Backward();
      if (config_.grad_clip > 0.0f) optimizer_->ClipGradNorm(config_.grad_clip);
      optimizer_->Step();
      loss_sum += loss.value().Item();
      ++steps;
    }
    epoch_losses.push_back(steps > 0 ? static_cast<float>(loss_sum / steps) : 0.0f);
  }

  Consolidate(train);
  return epoch_losses;
}

Status EwcTrainer::Predict(const PredictRequest& request, PredictResponse* response) const {
  return FinishPrediction(
      request, decoder_->InferForward(encoder_->EncodeInference(request.inputs, adjacency_)),
      response);
}

}  // namespace core
}  // namespace urcl
