#include "core/stdecoder.h"

#include "autograd/ops.h"
#include "common/check.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace core {

namespace ag = ::urcl::autograd;
namespace top = ::urcl::ops;

StDecoder::StDecoder(int64_t latent_channels, int64_t latent_time, int64_t decoder_hidden,
                     int64_t output_steps, Rng& rng)
    : latent_channels_(latent_channels),
      latent_time_(latent_time),
      output_steps_(output_steps) {
  URCL_CHECK_GT(latent_channels, 0);
  URCL_CHECK_GT(latent_time, 0);
  URCL_CHECK_GT(decoder_hidden, 0);
  URCL_CHECK_GT(output_steps, 0);
  mlp_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{latent_channels * latent_time, decoder_hidden, output_steps}, rng,
      nn::Activation::kRelu);
  RegisterChild("mlp", mlp_.get());
}

Variable StDecoder::Forward(const Variable& latent) const {
  URCL_CHECK_EQ(latent.shape().rank(), 4) << "expected latent [B, H, N, T']";
  URCL_CHECK_EQ(latent.shape().dim(1), latent_channels_);
  URCL_CHECK_EQ(latent.shape().dim(3), latent_time_);
  const int64_t batch = latent.shape().dim(0);
  const int64_t nodes = latent.shape().dim(2);

  // [B, H, N, T'] -> [B, N, H, T'] -> [B, N, H*T'] -> MLP -> [B, N, out]
  Variable h = ag::Transpose(latent, {0, 2, 1, 3});
  h = ag::Reshape(h, Shape{batch, nodes, latent_channels_ * latent_time_});
  h = mlp_->Forward(h);
  // [B, N, out] -> [B, out, N] -> [B, out, N, 1]
  h = ag::Transpose(h, {0, 2, 1});
  return ag::Reshape(h, Shape{batch, output_steps_, nodes, 1});
}

Tensor StDecoder::InferForward(const Tensor& latent) const {
  URCL_CHECK_EQ(latent.shape().rank(), 4) << "expected latent [B, H, N, T']";
  URCL_CHECK_EQ(latent.shape().dim(1), latent_channels_);
  URCL_CHECK_EQ(latent.shape().dim(3), latent_time_);
  const int64_t batch = latent.shape().dim(0);
  const int64_t nodes = latent.shape().dim(2);

  // [B, H, N, T'] -> [B, N, H, T'] -> [B, N, H*T'] -> MLP -> [B, N, out]
  Tensor h = top::Transpose(latent, {0, 2, 1, 3});
  h = h.Reshape(Shape{batch, nodes, latent_channels_ * latent_time_});
  h = mlp_->InferForward(h);
  // [B, N, out] -> [B, out, N] -> [B, out, N, 1]
  h = top::Transpose(h, {0, 2, 1});
  return h.Reshape(Shape{batch, output_steps_, nodes, 1});
}

}  // namespace core
}  // namespace urcl
