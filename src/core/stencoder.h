// The GraphWaveNet-style STEncoder (Fig. 3): an input MLP followed by
// stacked spatio-temporal layers, each a Gated TCN (Eq. 26) feeding a
// diffusion GCN (Eq. 24) with a residual connection, and a final projection
// to the latent width.
#ifndef URCL_CORE_STENCODER_H_
#define URCL_CORE_STENCODER_H_

#include <memory>
#include <vector>

#include "core/backbone.h"
#include "nn/gcn.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/tcn.h"

namespace urcl {
namespace core {

class GraphWaveNetEncoder : public StBackbone {
 public:
  GraphWaveNetEncoder(const BackboneConfig& config, Rng& rng);

  Variable Encode(const Variable& observations, const Tensor& adjacency) const override;
  Tensor EncodeInference(const Tensor& observations, const Tensor& adjacency) const override;

  int64_t latent_channels() const override { return config_.latent_channels; }
  int64_t latent_time() const override { return latent_time_; }
  std::string name() const override { return "GraphWaveNet"; }

  const std::vector<int64_t>& dilations() const { return dilations_; }

 private:
  BackboneConfig config_;
  std::vector<int64_t> dilations_;
  int64_t latent_time_ = 0;
  std::unique_ptr<nn::ChannelLinear> input_projection_;
  std::vector<std::unique_ptr<nn::GatedTcn>> tcn_layers_;
  std::vector<std::unique_ptr<nn::DiffusionGcn>> gcn_layers_;
  std::vector<std::unique_ptr<nn::LayerNorm>> norm_layers_;  // empty unless enabled
  std::unique_ptr<nn::AdaptiveAdjacency> adaptive_;
  std::unique_ptr<nn::ChannelLinear> output_projection_;
};

}  // namespace core
}  // namespace urcl

#endif  // URCL_CORE_STENCODER_H_
