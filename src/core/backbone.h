// The pluggable spatio-temporal encoder interface. The paper's framework is
// backbone-agnostic (Sec. V-B4): any model exposing an encoder that maps
// observations to a latent tensor can be dropped in. Three backbones are
// provided: GraphWaveNet (CNN-based, the default STEncoder), DCRNN-style
// (RNN-based) and GeoMAN-style (attention-based).
#ifndef URCL_CORE_BACKBONE_H_
#define URCL_CORE_BACKBONE_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/module.h"

namespace urcl {
namespace core {

using autograd::Variable;

struct BackboneConfig {
  int64_t num_nodes = 0;
  int64_t in_channels = 2;       // C of the observations
  int64_t input_steps = 12;      // M
  int64_t hidden_channels = 16;  // per-layer width (paper: 32)
  int64_t latent_channels = 64;  // final latent width (paper: 256)
  int64_t num_layers = 5;        // spatio-temporal layers (paper: 5)
  int64_t diffusion_steps = 2;   // K in Eq. 21
  int64_t adaptive_embedding_dim = 8;
  bool use_adaptive_adjacency = true;  // Eq. 23
  // When false, the GraphWaveNet encoder ignores the provided adjacency and
  // relies on the adaptive one only (MTGNN-style fully-learned graph).
  bool use_static_supports = true;
  bool directed_graph = false;
  // Layer normalization after each spatio-temporal layer (GraphWaveNet-style).
  bool use_layer_norm = false;

  // Returns a human-readable message per invalid field (empty when the config
  // is usable). Checked at MakeBackbone; call directly for early feedback.
  std::vector<std::string> Validate() const;
};

// Joins validation messages into one multi-line report for URCL_CHECK output.
std::string FormatConfigErrors(const std::vector<std::string>& errors);

// Abstract STEncoder: [B, M, N, C] + adjacency [N, N] -> latent [B, H, N, T'].
class StBackbone : public nn::Module {
 public:
  virtual Variable Encode(const Variable& observations, const Tensor& adjacency) const = 0;

  // Tape-free encode for the serving executor: same kernel sequence as
  // Encode but on plain Tensors (no Variable graph, no grad buffers), so the
  // output is bitwise-equal to Encode(...).value() on identical inputs.
  // The base implementation falls back to the tape forward with gradients
  // disabled (trivially bitwise-equal, just not allocation-free); the three
  // core backbones override it with true tape-free mirrors.
  virtual Tensor EncodeInference(const Tensor& observations, const Tensor& adjacency) const;

  // Latent geometry (for sizing the STDecoder / projector).
  virtual int64_t latent_channels() const = 0;
  virtual int64_t latent_time() const = 0;

  virtual std::string name() const = 0;

  // Pools the latent [B, H, N, T'] to one embedding per sample [B, H]
  // (mean over nodes and time); input to the STSimSiam projector.
  static Variable PoolLatent(const Variable& latent);
};

enum class BackboneType { kGraphWaveNet, kDcrnn, kGeoman };

std::string BackboneTypeName(BackboneType type);

std::unique_ptr<StBackbone> MakeBackbone(BackboneType type, const BackboneConfig& config,
                                         Rng& rng);

}  // namespace core
}  // namespace urcl

#endif  // URCL_CORE_BACKBONE_H_
