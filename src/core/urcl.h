// URCL: the Unified Replay-based Continuous Learning framework (Sec. IV).
// UrclModel wires the shared STEncoder, STDecoder and STSimSiam; UrclTrainer
// implements Algorithm 1 — per-batch RMIR retrieval from the replay buffer,
// STMixup fusion, spatio-temporal augmentation, the combined
// L_all = L_task + L_ssl objective (Eq. 29), and buffer maintenance.
#ifndef URCL_CORE_URCL_H_
#define URCL_CORE_URCL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "augment/augmentation.h"
#include "checkpoint/manager.h"
#include "common/status.h"
#include "core/backbone.h"
#include "exec/plan.h"
#include "core/predictor.h"
#include "core/stdecoder.h"
#include "core/stsimsiam.h"
#include "graph/sensor_network.h"
#include "nn/optimizer.h"
#include "replay/replay_buffer.h"
#include "replay/samplers.h"

namespace urcl {
namespace core {

struct UrclConfig {
  BackboneType backbone = BackboneType::kGraphWaveNet;
  BackboneConfig encoder;  // num_nodes / in_channels / input_steps set by caller

  // STDecoder (paper: two layers, 512 hidden).
  int64_t decoder_hidden = 128;
  int64_t output_steps = 1;

  // STSimSiam projector.
  int64_t proj_hidden = 32;
  int64_t proj_dim = 16;
  float ssl_temperature = 0.5f;
  // Weight of L_ssl in L_all (Eq. 29 uses 1.0 with 100 epochs/set; shorter
  // training budgets need a smaller weight so the contrastive gradient does
  // not swamp the task gradient on the shared encoder).
  float ssl_weight = 1.0f;

  // Optimization.
  int64_t batch_size = 8;
  float learning_rate = 2e-3f;
  float grad_clip = 5.0f;
  // Caps the batches per epoch (indices evenly spaced over the stage,
  // preserving temporal order); 0 = use every window.
  int64_t max_batches_per_epoch = 40;

  // Replay (Sec. IV-B). replay_sample_count is |S|; rmir_candidate_pool is
  // |N|; rmir_scan_size items are scored per refresh (the MIR-style
  // subsample that keeps interference scoring affordable).
  int64_t buffer_capacity = 256;
  replay::BufferPolicy buffer_policy = replay::BufferPolicy::kReservoir;
  int64_t replay_sample_count = 4;
  int64_t rmir_scan_size = 16;
  int64_t rmir_candidate_pool = 8;
  float rmir_virtual_lr = 0.05f;
  int64_t rmir_refresh_every = 2;
  float mixup_alpha = 0.5f;

  // Ablation toggles (Sec. V-B3).
  bool enable_mixup = true;         // w/o_STU: concatenate instead of mixup
  bool enable_rmir = true;          // w/o_RMIR: uniform random sampling
  bool enable_augmentation = true;  // w/o_STA: identity views
  bool enable_ssl = true;           // w/o_GCL: task loss only
  bool enable_replay = true;        // plain finetuning when false

  // Executor for steady-state graphs (DESIGN.md §12): kPlan compiles the
  // training step, the RMIR virtual step and the per-item scoring forward
  // into replayed arena programs; kTape runs everything on the autograd
  // tape. Defaults from the URCL_EXEC environment variable. The training
  // step itself is only plannable when its graph is step-invariant, i.e.
  // when SSL or augmentation is off (augmented views draw fresh RNG and
  // perturb the adjacency every step); otherwise it stays on the tape while
  // the RMIR families still run compiled.
  exec::ExecutorMode executor = exec::DefaultExecutorMode();

  uint64_t seed = 1;

  // Returns a human-readable message per invalid field, including the nested
  // encoder config (prefixed "encoder: "). Empty when the config is usable.
  // Checked at UrclModel construction; call directly for early feedback.
  std::vector<std::string> Validate() const;
};

// The model: shared encoder + decoder + SimSiam head.
class UrclModel : public nn::Module {
 public:
  UrclModel(const UrclConfig& config, Rng& rng);

  // Prediction path (Eq. 17): decoder(encoder(x)).
  Variable Forward(const Variable& observations, const Tensor& adjacency) const;

  // Tape-free prediction path for the serving executor: no Variable graph,
  // no grad buffers — the same ops:: kernel sequence as Forward, so the
  // result is bitwise-equal to Forward(...).value() on identical inputs.
  Tensor ForwardInference(const Tensor& observations, const Tensor& adjacency) const;

  StBackbone& encoder() { return *encoder_; }
  const StBackbone& encoder() const { return *encoder_; }
  StSimSiam& simsiam() { return *simsiam_; }
  const StSimSiam& simsiam() const { return *simsiam_; }

 private:
  std::unique_ptr<StBackbone> encoder_;
  std::unique_ptr<StDecoder> decoder_;
  std::unique_ptr<StSimSiam> simsiam_;
};

// Crash-safety options for UrclTrainer (see DESIGN.md "Fault-tolerance
// model"). A checkpoint snapshots everything the training loop needs to
// continue bit-for-bit: model parameters, Adam moments + step counter, the
// replay buffer (items, counters, reservoir RNG), the trainer RNG stream, the
// RMIR selection cache and the stage/epoch/batch progress cursor.
struct CheckpointConfig {
  std::string dir;
  // Checkpoint every N optimization steps (at batch boundaries); 0 = only at
  // stage boundaries.
  int64_t every_steps = 0;
  // Rotation depth kept on disk (newest N survive pruning).
  int64_t retention = 3;
};

// Trainer implementing Algorithm 1 over a stream of stages.
class UrclTrainer : public StPredictor {
 public:
  UrclTrainer(const UrclConfig& config, const graph::SensorNetwork& network);

  std::string name() const override { return "URCL"; }

  // One while-loop of Algorithm 1 (lines 4-12) run for `epochs` epochs.
  std::vector<float> TrainStage(const data::StDataset& train, int64_t epochs) override;

  // Early-stopping variant: stops once validation MAE has not improved for
  // `patience` epochs and restores the best parameters.
  std::vector<float> TrainStageWithValidation(const data::StDataset& train,
                                              const data::StDataset& val, int64_t max_epochs,
                                              int64_t patience) override;

  Status Predict(const PredictRequest& request, PredictResponse* response) const override;
  using StPredictor::Predict;  // re-expose the deprecated Tensor shim

  // Saves/restores the model parameters (binary tensor file). Legacy
  // model-only snapshot; the crash-safe path is EnableCheckpointing below.
  void SaveCheckpoint(const std::string& path) const;
  void LoadCheckpoint(const std::string& path);

  // --- Crash-safe checkpoint/resume ---------------------------------------

  // Turns on rotated full-state checkpointing into `config.dir`. Call before
  // training; RestoreFromCheckpointDir requires it.
  void EnableCheckpointing(const CheckpointConfig& config);

  // Snapshots the complete training state as the next checkpoint in the
  // rotation (atomic write + retention pruning).
  Status SaveFullCheckpoint();

  // Restores the newest valid checkpoint from the configured directory.
  // Rejected (corrupt/truncated/mismatched) files each append a line to
  // *diagnostics (may be nullptr) and the next-newest is tried. On success
  // the trainer resumes exactly where the saved run stopped: the protocol
  // runner skips fully trained stages (ResumeStageIndex) and TrainStage
  // continues mid-stage from the saved epoch/batch cursor, reproducing the
  // uninterrupted run bit-for-bit. Returns an error (and leaves the trainer
  // untouched) when no checkpoint is valid.
  Status RestoreFromCheckpointDir(std::string* diagnostics = nullptr);

  // --- Weight-snapshot publication (serving hot-swap) ----------------------

  // Receives each published weight snapshot as a checkpoint-format Container
  // with two sections: "model" (the StateDict tensors, same layout as the
  // full checkpoint's model section) and "serve_meta" (schema version,
  // monotonically increasing snapshot version, training stage, step count).
  // The serving layer parses these into immutable in-memory model versions.
  using SnapshotSink = std::function<void(const checkpoint::Container&)>;

  // Publishes at every stage end, plus every `publish_every_steps`
  // optimization steps when > 0. The sink is invoked synchronously on the
  // training thread; it must copy what it keeps.
  void SetSnapshotSink(SnapshotSink sink, int64_t publish_every_steps = 0);

  // Number of snapshots published so far; the version stamp of the newest.
  int64_t snapshots_published() const { return snapshots_published_; }

  // StPredictor crash-safety hooks.
  void BeginStage(int64_t stage_index) override { current_stage_ = stage_index; }
  int64_t ResumeStageIndex() const override { return resume_pending_ ? cursor_.stage : 0; }
  bool TrainingInterrupted() const override { return interrupted_; }

  // Batches skipped because inputs, loss or gradients went non-finite.
  int64_t quarantined_batches() const { return quarantined_batches_; }

  UrclModel& model() { return *model_; }
  // Read-only optimizer view, so tests can compare Adam state (step counter
  // and moments) byte for byte across executor modes.
  const nn::Adam& optimizer() const { return *optimizer_; }

  // Number of compiled plans live across the train/virtual/per-item caches.
  // Zero in tape mode; tests assert it is non-zero after a plan-mode stage so
  // a capture regression cannot silently fall back to the tape everywhere.
  size_t compiled_plan_count() const {
    return train_plans_.num_compiled() + virtual_plans_.num_compiled() +
           per_item_plans_.num_compiled();
  }
  const replay::ReplayBuffer& buffer() const { return buffer_; }
  const UrclConfig& config() const { return config_; }

  // Full training-loss history across all stages (Fig. 8), one entry per
  // optimization step.
  const std::vector<float>& loss_history() const { return loss_history_; }

 private:
  struct ReplayDraw {
    Tensor inputs;
    Tensor targets;
    bool valid = false;
  };

  // Progress cursor serialized into every checkpoint: the next batch to run
  // plus the partial-epoch accumulators needed to reproduce the epoch-mean
  // losses of an uninterrupted run.
  struct StageCursor {
    int64_t stage = 0;   // stage index being trained (next to train if fresh)
    int64_t epoch = 0;   // epoch within the current TrainStage call
    int64_t offset = 0;  // schedule position of the next batch
    double epoch_loss_sum = 0.0;
    int64_t epoch_steps = 0;
    std::vector<float> epoch_losses;  // completed epochs of this stage
  };

  // Executes one training step on a batch; returns L_all, or nullopt when
  // the batch was quarantined (non-finite inputs, loss or gradients).
  std::optional<float> TrainStep(const Tensor& inputs, const Tensor& targets);

  // Builds the L_all tape graph for one (already mixed) batch — the forward
  // captured by the compiled executor and replayed on the tape fallback.
  Variable BuildTrainLoss(const Tensor& inputs, const Tensor& targets);

  // True when the training-step graph is step-invariant and may be compiled
  // (see UrclConfig::executor).
  bool TrainStepPlannable() const {
    return config_.executor == exec::ExecutorMode::kPlan &&
           (!config_.enable_ssl || !config_.enable_augmentation);
  }

  // RMIR / random retrieval from the buffer (Sec. IV-B1).
  ReplayDraw DrawReplaySamples(const Tensor& current_inputs, const Tensor& current_targets);

  // Per-item MAE losses of buffer items `indices` under current parameters.
  std::vector<float> PerItemLosses(const std::vector<int64_t>& indices);

  // Serializes the current weights + serve_meta and hands the container to
  // the snapshot sink (no-op when no sink is set).
  void PublishSnapshot();

  UrclConfig config_;
  Rng rng_;
  Tensor adjacency_;  // clean adjacency of the sensor network
  const graph::SensorNetwork& network_;
  std::unique_ptr<UrclModel> model_;
  std::unique_ptr<nn::Adam> optimizer_;
  replay::ReplayBuffer buffer_;
  replay::RandomSampler random_sampler_;
  replay::RmirSampler rmir_sampler_;
  std::vector<std::unique_ptr<augment::Augmentation>> augmentations_;
  std::vector<float> loss_history_;
  int64_t step_count_ = 0;
  std::vector<int64_t> cached_selection_;

  // Compiled-executor plan caches, one per graph family, keyed by input
  // shapes (DESIGN.md §12). A null cache entry is a permanent tape fallback
  // for that shape.
  exec::PlanCache train_plans_;
  exec::PlanCache virtual_plans_;
  exec::PlanCache per_item_plans_;

  // Snapshot publication state.
  SnapshotSink snapshot_sink_;
  int64_t publish_every_steps_ = 0;
  int64_t snapshots_published_ = 0;

  // Crash-safety state.
  CheckpointConfig checkpoint_config_;
  std::unique_ptr<checkpoint::CheckpointManager> checkpoint_manager_;
  StageCursor cursor_;
  int64_t current_stage_ = 0;
  bool resume_pending_ = false;   // cursor_ was restored and not yet consumed
  bool interrupted_ = false;      // cooperative kill-point stop
  int64_t quarantined_batches_ = 0;
};

}  // namespace core
}  // namespace urcl

#endif  // URCL_CORE_URCL_H_
