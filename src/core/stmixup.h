// STMixup (Sec. IV-B2): vicinal-risk interpolation between the current
// observations X_M and replay samples X_B with lambda ~ Beta(alpha, alpha)
// (Eq. 4-5), to preserve historical knowledge and regularize training.
#ifndef URCL_CORE_STMIXUP_H_
#define URCL_CORE_STMIXUP_H_

#include "common/rng.h"
#include "tensor/tensor.h"

namespace urcl {
namespace core {

struct MixupResult {
  Tensor inputs;   // [B, M, N, C]
  Tensor targets;  // [B, N_out, N, 1]
  float lambda = 1.0f;
};

// Interpolates a current batch with a replay batch. The replay batch may be
// smaller than the current batch; its rows are cycled. One lambda is drawn
// per call (per minibatch), matching Eq. 5.
MixupResult StMixup(const Tensor& current_inputs, const Tensor& current_targets,
                    const Tensor& replay_inputs, const Tensor& replay_targets, float alpha,
                    Rng& rng);

// The w/o_STU ablation: concatenates the two batches instead of mixing.
MixupResult ConcatBatches(const Tensor& current_inputs, const Tensor& current_targets,
                          const Tensor& replay_inputs, const Tensor& replay_targets);

}  // namespace core
}  // namespace urcl

#endif  // URCL_CORE_STMIXUP_H_
