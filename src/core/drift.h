// Concept-drift detection for streaming deployment. The paper's framework
// retrains on every incremental set unconditionally; in a live system one
// wants to *detect* when the incoming distribution has drifted and retrain
// then. PageHinkleyDetector implements the classic Page-Hinkley test on the
// stream of prediction errors; OnlineLearner combines it with UrclTrainer
// into an ingest -> predict -> (drift? retrain) loop.
#ifndef URCL_CORE_DRIFT_H_
#define URCL_CORE_DRIFT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/urcl.h"
#include "data/normalizer.h"

namespace urcl {
namespace core {

struct PageHinkleyConfig {
  // Minimum magnitude of change to care about (delta) and the alarm
  // threshold (lambda), both in units of the monitored statistic.
  float delta = 0.005f;
  float threshold = 0.25f;
  // Samples to observe before the detector may fire.
  int64_t warmup = 30;
};

// One-sided Page-Hinkley test for an *increase* in the mean of a stream
// (here: prediction error going up = drift).
class PageHinkleyDetector {
 public:
  explicit PageHinkleyDetector(const PageHinkleyConfig& config);

  // Feeds one observation; returns true when drift is detected. The detector
  // resets itself after firing.
  bool Update(float value);

  void Reset();

  int64_t samples_seen() const { return count_; }
  float cumulative() const { return cumulative_; }

 private:
  PageHinkleyConfig config_;
  int64_t count_ = 0;
  double mean_ = 0.0;
  double cumulative_ = 0.0;
  double minimum_ = 0.0;
};

struct OnlineLearnerConfig {
  UrclConfig model;
  PageHinkleyConfig drift;
  data::WindowConfig window;
  // Training chunk: most recent steps used when retraining fires.
  int64_t retrain_window_steps = 384;
  int64_t retrain_epochs = 2;
  // Hard cap on the rolling history kept in memory.
  int64_t max_history_steps = 2048;
  // Steps between periodic (non-drift) retrains; 0 disables periodic.
  int64_t periodic_retrain_every = 0;
  int64_t min_steps_before_first_train = 64;
};

// A deployable streaming learner: ingest observations one step at a time,
// serve one-step-ahead predictions, track live error, and retrain the URCL
// model when the Page-Hinkley detector fires on the error stream (or
// periodically, if configured).
class OnlineLearner {
 public:
  OnlineLearner(const OnlineLearnerConfig& config, const graph::SensorNetwork& network);

  // Feeds one observation row [N, C] (normalized). If a prediction was
  // outstanding, its error feeds the drift detector first.
  // Returns true when this step triggered a retrain.
  bool Ingest(const Tensor& observation);

  bool CanPredict() const;

  // One-step-ahead prediction of the target channel: [1, N, 1] (normalized).
  Tensor PredictNext();

  int64_t retrain_count() const { return retrain_count_; }
  int64_t drift_alarms() const { return drift_alarms_; }
  int64_t steps_seen() const { return steps_seen_; }
  // Mean absolute error of the live predictions so far (normalized units).
  double live_mae() const;
  UrclTrainer& trainer() { return *trainer_; }

 private:
  void Retrain();
  Tensor HistoryWindow(int64_t steps) const;

  OnlineLearnerConfig config_;
  std::unique_ptr<UrclTrainer> trainer_;
  PageHinkleyDetector detector_;
  std::deque<Tensor> history_;  // rows [N, C]
  Tensor pending_prediction_;   // [1, N, 1] awaiting ground truth
  bool has_pending_ = false;
  bool trained_ = false;
  int64_t steps_seen_ = 0;
  int64_t retrain_count_ = 0;
  int64_t drift_alarms_ = 0;
  double abs_error_sum_ = 0.0;
  int64_t error_count_ = 0;
};

}  // namespace core
}  // namespace urcl

#endif  // URCL_CORE_DRIFT_H_
