#include "core/urcl.h"

#include "tensor/serialize.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "autograd/lint.h"
#include "autograd/ops.h"
#include "common/check.h"
#include "common/fault_injector.h"
#include "common/stopwatch.h"
#include "core/stmixup.h"
#include "nn/loss.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace core {

namespace ag = ::urcl::autograd;

namespace {

// Registry handles for the trainer's metrics, resolved once and gated on
// obs::MetricsEnabled() at every use site.
struct TrainerMetrics {
  obs::Counter& steps;
  obs::Counter& quarantined_input;
  obs::Counter& quarantined_loss;
  obs::Counter& quarantined_grad;
  obs::Gauge& last_loss;
  obs::Histogram& step_ns;
  obs::Counter& rmir_refreshes;
  obs::Histogram& rmir_interference;
  obs::Counter& checkpoint_writes;
  obs::Histogram& checkpoint_write_seconds;
};

TrainerMetrics& Metrics() {
  auto& registry = obs::MetricsRegistry::Get();
  static TrainerMetrics* metrics = new TrainerMetrics{
      registry.GetCounter("urcl.trainer.steps"),
      registry.GetCounter("urcl.trainer.quarantined_input"),
      registry.GetCounter("urcl.trainer.quarantined_loss"),
      registry.GetCounter("urcl.trainer.quarantined_grad"),
      registry.GetGauge("urcl.trainer.last_loss"),
      registry.GetHistogram("urcl.trainer.step_ns",
                            obs::ExponentialBuckets(65536, 4, 12)),
      registry.GetCounter("urcl.rmir.refreshes"),
      registry.GetHistogram("urcl.rmir.interference",
                            {-1.0, -0.1, -0.01, 0.0, 0.01, 0.1, 1.0, 10.0}),
      registry.GetCounter("urcl.checkpoint.writes"),
      registry.GetHistogram("urcl.checkpoint.write_seconds",
                            obs::ExponentialBuckets(1e-4, 4, 10)),
  };
  return *metrics;
}

}  // namespace

std::vector<std::string> UrclConfig::Validate() const {
  std::vector<std::string> errors;
  for (const std::string& e : encoder.Validate()) errors.push_back("encoder: " + e);
  if (decoder_hidden <= 0) errors.push_back("decoder_hidden must be > 0");
  if (output_steps <= 0) errors.push_back("output_steps must be > 0");
  if (proj_hidden <= 0) errors.push_back("proj_hidden must be > 0");
  if (proj_dim <= 0) errors.push_back("proj_dim must be > 0");
  if (ssl_temperature <= 0.0f) errors.push_back("ssl_temperature must be > 0");
  if (ssl_weight < 0.0f) errors.push_back("ssl_weight must be >= 0");
  if (batch_size <= 0) errors.push_back("batch_size must be > 0");
  if (learning_rate <= 0.0f) errors.push_back("learning_rate must be > 0");
  if (grad_clip < 0.0f) errors.push_back("grad_clip must be >= 0 (0 disables clipping)");
  if (max_batches_per_epoch < 0) {
    errors.push_back("max_batches_per_epoch must be >= 0 (0 uses every window)");
  }
  if (buffer_capacity <= 0) errors.push_back("buffer_capacity must be > 0");
  if (replay_sample_count <= 0) {
    errors.push_back("replay_sample_count must be > 0");
  } else if (replay_sample_count > buffer_capacity) {
    errors.push_back("replay_sample_count must not exceed buffer_capacity");
  }
  if (rmir_scan_size <= 0) errors.push_back("rmir_scan_size must be > 0");
  if (rmir_candidate_pool <= 0) errors.push_back("rmir_candidate_pool must be > 0");
  if (enable_mixup && mixup_alpha <= 0.0f) {
    errors.push_back("mixup_alpha must be > 0 when enable_mixup is set");
  }
  return errors;
}

UrclModel::UrclModel(const UrclConfig& config, Rng& rng) {
  const std::vector<std::string> errors = config.Validate();
  URCL_CHECK(errors.empty()) << "invalid UrclConfig: " << FormatConfigErrors(errors);
  encoder_ = MakeBackbone(config.backbone, config.encoder, rng);
  RegisterChild("encoder", encoder_.get());
  decoder_ = std::make_unique<StDecoder>(encoder_->latent_channels(), encoder_->latent_time(),
                                         config.decoder_hidden, config.output_steps, rng);
  RegisterChild("decoder", decoder_.get());
  simsiam_ = std::make_unique<StSimSiam>(encoder_.get(), config.proj_hidden, config.proj_dim,
                                         config.ssl_temperature, rng);
  RegisterChild("simsiam", simsiam_.get());
}

Variable UrclModel::Forward(const Variable& observations, const Tensor& adjacency) const {
  return decoder_->Forward(encoder_->Encode(observations, adjacency));
}

Tensor UrclModel::ForwardInference(const Tensor& observations, const Tensor& adjacency) const {
  return decoder_->InferForward(encoder_->EncodeInference(observations, adjacency));
}

UrclTrainer::UrclTrainer(const UrclConfig& config, const graph::SensorNetwork& network)
    : config_(config),
      rng_(config.seed),
      adjacency_(network.AdjacencyMatrix()),
      network_(network),
      buffer_(config.buffer_capacity, config.buffer_policy, config.seed + 17),
      rmir_sampler_(replay::RmirConfig{config.rmir_candidate_pool, config.rmir_virtual_lr}) {
  URCL_CHECK_EQ(config.encoder.num_nodes, network.num_nodes())
      << "encoder config does not match the sensor network";
  model_ = std::make_unique<UrclModel>(config_, rng_);
  nn::AdamConfig adam;
  adam.lr = config_.learning_rate;
  // Always scan for non-finite gradients/parameters: a poisoned batch that
  // slips past the input and loss guards skips the update instead of
  // corrupting the moments (the batch is quarantined by TrainStep).
  adam.check_finite = true;
  optimizer_ = std::make_unique<nn::Adam>(model_->Parameters(), adam);
  augmentations_ = augment::MakeDefaultAugmentations();
}

std::vector<float> UrclTrainer::PerItemLosses(const std::vector<int64_t>& indices) {
  const auto [inputs, targets] = buffer_.MakeBatch(indices);
  // RMIR scores the whole scan set twice per refresh, so this forward is the
  // hottest inference path in training — compiled when the executor allows.
  Tensor predictions;
  bool have_predictions = false;
  if (config_.executor == exec::ExecutorMode::kPlan) {
    const std::string key = exec::PlanCache::ShapeKey({&inputs});
    exec::CompiledPlan* plan = per_item_plans_.Lookup(key);
    if (plan == nullptr && per_item_plans_.ShouldCapture(key)) {
      const std::vector<Tensor> plan_inputs{inputs};
      exec::CompiledPlan::CaptureResult captured = exec::CompiledPlan::Capture(
          plan_inputs,
          [&inputs, this] {
            return model_->Forward(Variable(inputs, /*requires_grad=*/false), adjacency_);
          },
          /*with_backward=*/false);
      if (captured.plan == nullptr && ::getenv("URCL_PLAN_DEBUG"))
        std::fprintf(stderr, "[plan-debug] per_item capture failed: %s\n", captured.error.c_str());
      per_item_plans_.Insert(key, std::move(captured.plan));
      // The capturing call completes on the tape build's result.
      predictions = captured.root->value();
      have_predictions = true;
    } else if (plan != nullptr) {
      plan->BindInputs({inputs});
      predictions = plan->RunForward();  // plan-owned; fully consumed below
      have_predictions = true;
    }
  }
  if (!have_predictions) {
    Variable x(inputs, /*requires_grad=*/false);
    predictions = model_->Forward(x, adjacency_).value();
  }
  // Per-item MAE: mean |pred - y| over all but the batch axis.
  const Tensor abs_err = ops::Abs(ops::Sub(predictions, targets));
  const Tensor per_item = ops::Mean(abs_err, {1, 2, 3});
  std::vector<float> losses(static_cast<size_t>(per_item.NumElements()));
  for (int64_t i = 0; i < per_item.NumElements(); ++i)
    losses[static_cast<size_t>(i)] = per_item.FlatAt(i);
  return losses;
}

UrclTrainer::ReplayDraw UrclTrainer::DrawReplaySamples(const Tensor& current_inputs,
                                                       const Tensor& current_targets) {
  ReplayDraw draw;
  if (!config_.enable_replay || buffer_.size() < config_.replay_sample_count) return draw;
  URCL_TRACE_SCOPE("rmir_draw");

  std::vector<int64_t> selected;
  if (!config_.enable_rmir) {
    selected = random_sampler_.Sample(buffer_, config_.replay_sample_count, rng_);
  } else if (step_count_ % std::max<int64_t>(1, config_.rmir_refresh_every) == 0 ||
             cached_selection_.empty()) {
    // 1. Score a random scan subset for interference: loss increase after a
    //    virtual gradient step on the incoming batch (Eq. 3).
    const std::vector<int64_t> scan = random_sampler_.Sample(
        buffer_, std::min(config_.rmir_scan_size, buffer_.size()), rng_);
    const std::vector<float> before = PerItemLosses(scan);

    // Virtual step: gradients from the incoming batch, SGD update, rollback.
    const std::vector<Variable> params = model_->Parameters();
    std::vector<Tensor> snapshot;
    snapshot.reserve(params.size());
    for (const Variable& p : params) snapshot.push_back(p.value().Clone());

    for (const Variable& p : params) p.ZeroGrad();
    bool virtual_done = false;
    if (config_.executor == exec::ExecutorMode::kPlan) {
      const std::string key = exec::PlanCache::ShapeKey({&current_inputs, &current_targets});
      exec::CompiledPlan* plan = virtual_plans_.Lookup(key);
      if (plan == nullptr && virtual_plans_.ShouldCapture(key)) {
        const std::vector<Tensor> plan_inputs{current_inputs, current_targets};
        exec::CompiledPlan::CaptureResult captured = exec::CompiledPlan::Capture(
            plan_inputs,
            [&] {
              Variable x(current_inputs, /*requires_grad=*/false);
              Variable y(current_targets, /*requires_grad=*/false);
              return nn::MaeLoss(model_->Forward(x, adjacency_), y);
            },
            /*with_backward=*/true);
        if (captured.plan == nullptr && ::getenv("URCL_PLAN_DEBUG"))
          std::fprintf(stderr, "[plan-debug] virtual capture failed: %s\n", captured.error.c_str());
        virtual_plans_.Insert(key, std::move(captured.plan));
        // The measure run accumulated real gradients; restart from zero and
        // complete this refresh on the tape build.
        for (const Variable& p : params) p.ZeroGrad();
        captured.root->Backward();
        virtual_done = true;
      } else if (plan != nullptr) {
        plan->BindInputs({current_inputs, current_targets});
        plan->RunForward();
        plan->RunBackward();
        virtual_done = true;
      }
    }
    if (!virtual_done) {
      Variable x(current_inputs, /*requires_grad=*/false);
      Variable y(current_targets, /*requires_grad=*/false);
      Variable loss = nn::MaeLoss(model_->Forward(x, adjacency_), y);
      loss.Backward();
    }
    for (const Variable& p : params) {
      Tensor updated = p.value().Clone();
      Tensor grad = p.grad();
      grad.MulInPlace(-config_.rmir_virtual_lr);
      updated.AddInPlace(grad);
      p.SetValue(updated);
    }
    const std::vector<float> after = PerItemLosses(scan);
    for (size_t i = 0; i < params.size(); ++i) params[i].SetValue(snapshot[i]);
    for (const Variable& p : params) p.ZeroGrad();

    if (obs::MetricsEnabled()) {
      TrainerMetrics& m = Metrics();
      m.rmir_refreshes.Add(1);
      for (size_t i = 0; i < scan.size(); ++i) {
        m.rmir_interference.Observe(static_cast<double>(after[i] - before[i]));
      }
    }

    // 2+3. Rank by interference, re-rank by Pearson similarity (Sec. IV-B1).
    std::vector<float> interference(static_cast<size_t>(buffer_.size()),
                                    -std::numeric_limits<float>::infinity());
    for (size_t i = 0; i < scan.size(); ++i) {
      interference[static_cast<size_t>(scan[i])] = after[i] - before[i];
    }
    selected = rmir_sampler_.Select(buffer_, current_inputs, interference,
                                    config_.replay_sample_count);
    cached_selection_ = selected;
  } else {
    selected = cached_selection_;
    // Cached indices may have been evicted since; clamp into range.
    for (int64_t& index : selected) index = std::min(index, buffer_.size() - 1);
  }

  if (selected.empty()) return draw;
  auto [inputs, targets] = buffer_.MakeBatch(selected);
  draw.inputs = std::move(inputs);
  draw.targets = std::move(targets);
  draw.valid = true;
  return draw;
}

Variable UrclTrainer::BuildTrainLoss(const Tensor& inputs, const Tensor& targets) {
  Variable x(inputs, /*requires_grad=*/false);
  Variable y(targets, /*requires_grad=*/false);
  Variable task_loss = nn::MaeLoss(model_->Forward(x, adjacency_), y);

  // STCRL branch (Sec. IV-C): two augmented views through STSimSiam.
  Variable total_loss = task_loss;
  if (config_.enable_ssl) {
    augment::AugmentedView view1{inputs, adjacency_};
    augment::AugmentedView view2{inputs, adjacency_};
    if (config_.enable_augmentation) {
      const auto [aug1, aug2] = augment::PickTwoDistinct(augmentations_, rng_);
      view1 = aug1->Apply(inputs, network_, rng_);
      view2 = aug2->Apply(inputs, network_, rng_);
    }
    Variable ssl_loss = model_->simsiam().Loss(view1, view2);
    total_loss = ag::Add(task_loss, ag::MulScalar(ssl_loss, config_.ssl_weight));  // Eq. 29
  }
  return total_loss;
}

std::optional<float> UrclTrainer::TrainStep(const Tensor& inputs, const Tensor& targets) {
  URCL_TRACE_SCOPE("train_step");
  const bool metrics = obs::MetricsEnabled();
  const int64_t step_start_ns = metrics ? MonotonicNowNs() : 0;
  model_->SetTraining(true);

  // Quarantine gate 1: corrupted sensor readings (NaN/Inf cells, dropped
  // sensors) never reach the model or the replay buffer.
  if (!inputs.AllFinite() || !targets.AllFinite()) {
    ++quarantined_batches_;
    if (metrics) Metrics().quarantined_input.Add(1);
    obs::RecordFlightEvent(obs::FlightEventType::kNonFiniteQuarantine, current_stage_,
                           step_count_, "trainer: input");
    std::fprintf(stderr,
                 "[urcl] quarantined batch at stage %lld step %lld: non-finite input readings\n",
                 static_cast<long long>(current_stage_), static_cast<long long>(step_count_));
    return std::nullopt;
  }

  // Data integration (Eq. 2): RMIR retrieval + STMixup.
  const ReplayDraw draw = DrawReplaySamples(inputs, targets);
  MixupResult mixed;
  if (draw.valid && config_.enable_mixup) {
    mixed = StMixup(inputs, targets, draw.inputs, draw.targets, config_.mixup_alpha, rng_);
  } else if (draw.valid) {
    mixed = ConcatBatches(inputs, targets, draw.inputs, draw.targets);  // w/o_STU
  } else {
    mixed.inputs = inputs;
    mixed.targets = targets;
  }

  // Gradients from the previous step are cleared before the forward so a
  // compiled plan's backward accumulates into fresh storage each run (the
  // arena replay must repeat the measure run's acquisition sequence; see
  // exec/arena.h).
  optimizer_->ZeroGrad();

  // Prediction branch (Eq. 17, 28), compiled or on the tape.
  exec::CompiledPlan* plan = nullptr;
  std::string plan_key;
  if (TrainStepPlannable()) {
    plan_key = exec::PlanCache::ShapeKey({&mixed.inputs, &mixed.targets});
    plan = train_plans_.Lookup(plan_key);
  }
  float loss_value = 0.0f;
  if (plan != nullptr) {
    {
      URCL_TRACE_SCOPE("forward");
      plan->BindInputs({mixed.inputs, mixed.targets});
      loss_value = plan->RunForward().Item();
    }
    // Quarantine gate 2: a diverged/overflowed loss is not backpropagated.
    if (!std::isfinite(loss_value)) {
      plan->Abort();
      ++quarantined_batches_;
      if (metrics) Metrics().quarantined_loss.Add(1);
      obs::RecordFlightEvent(obs::FlightEventType::kNonFiniteQuarantine, current_stage_,
                             step_count_, "trainer: loss (plan)");
      std::fprintf(stderr,
                   "[urcl] quarantined batch at stage %lld step %lld: non-finite loss\n",
                   static_cast<long long>(current_stage_), static_cast<long long>(step_count_));
      return std::nullopt;
    }
    {
      URCL_TRACE_SCOPE("backward");
      plan->RunBackward();
    }
  } else {
    Variable total_loss;
    {
      URCL_TRACE_SCOPE("forward");
      if (TrainStepPlannable() && train_plans_.ShouldCapture(plan_key)) {
        const std::vector<Tensor> plan_inputs{mixed.inputs, mixed.targets};
        exec::CompiledPlan::CaptureResult captured = exec::CompiledPlan::Capture(
            plan_inputs, [&] { return BuildTrainLoss(mixed.inputs, mixed.targets); },
            /*with_backward=*/true);
        if (captured.plan == nullptr && ::getenv("URCL_PLAN_DEBUG"))
          std::fprintf(stderr, "[plan-debug] train capture failed: %s\n", captured.error.c_str());
        train_plans_.Insert(plan_key, std::move(captured.plan));
        // The measure run accumulated real gradients; discard them and
        // complete this step on the tape build (the plan serves the next
        // same-shape batch).
        optimizer_->ZeroGrad();
        total_loss = *captured.root;
      } else {
        total_loss = BuildTrainLoss(mixed.inputs, mixed.targets);
      }
    }

    // Quarantine gate 2: a diverged/overflowed loss is not backpropagated.
    if (!nn::LossIsFinite(total_loss)) {
      ++quarantined_batches_;
      if (metrics) Metrics().quarantined_loss.Add(1);
      obs::RecordFlightEvent(obs::FlightEventType::kNonFiniteQuarantine, current_stage_,
                             step_count_, "trainer: loss");
      std::fprintf(stderr,
                   "[urcl] quarantined batch at stage %lld step %lld: non-finite loss\n",
                   static_cast<long long>(current_stage_), static_cast<long long>(step_count_));
      return std::nullopt;
    }

    if (check::GraphChecksEnabled()) {
      // URCL_CHECK env gate: full static lint of the recorded loss graph
      // before differentiating through it (autograd/lint.h). Zero cost when
      // disabled. Tape-only: a compiled plan was linted by its own AOT shape
      // inference at capture time.
      URCL_TRACE_SCOPE("graph_lint");
      autograd::CheckGraph(total_loss);
    }
    {
      URCL_TRACE_SCOPE("backward");
      total_loss.Backward();
    }
    loss_value = total_loss.value().Item();
  }
  {
    URCL_TRACE_SCOPE("optimizer_step");
    if (config_.grad_clip > 0.0f) optimizer_->ClipGradNorm(config_.grad_clip);
    optimizer_->Step();
  }

  // Quarantine gate 3: the optimizer's check_finite guard skipped the update
  // because a gradient overflowed (or flags a parameter that went non-finite
  // after the update). Name the offending parameter in the diagnostic.
  if (const std::optional<nn::NonFiniteReport>& report = optimizer_->last_step_report();
      report.has_value()) {
    ++quarantined_batches_;
    if (metrics) Metrics().quarantined_grad.Add(1);
    obs::RecordFlightEvent(obs::FlightEventType::kNonFiniteQuarantine, current_stage_,
                           step_count_, "trainer: grad");
    const std::vector<std::pair<std::string, Variable>> named = model_->NamedParameters();
    const bool in_range = report->param_index >= 0 &&
                          report->param_index < static_cast<int64_t>(named.size());
    std::fprintf(stderr,
                 "[urcl] quarantined batch at stage %lld step %lld: non-finite %s in "
                 "parameter '%s'\n",
                 static_cast<long long>(current_stage_), static_cast<long long>(step_count_),
                 report->kind == nn::NonFiniteReport::Kind::kGradient ? "gradient" : "value",
                 in_range ? named[static_cast<size_t>(report->param_index)].first.c_str() : "?");
    return std::nullopt;
  }

  // Store the raw (pre-mixup) observations in the replay buffer.
  if (config_.enable_replay) {
    const int64_t batch = inputs.dim(0);
    for (int64_t b = 0; b < batch; ++b) {
      replay::ReplayItem item;
      item.inputs = ops::Slice(inputs, {b, 0, 0, 0},
                               {1, inputs.dim(1), inputs.dim(2), inputs.dim(3)})
                        .Reshape(Shape{inputs.dim(1), inputs.dim(2), inputs.dim(3)});
      item.targets = ops::Slice(targets, {b, 0, 0, 0},
                                {1, targets.dim(1), targets.dim(2), targets.dim(3)})
                         .Reshape(Shape{targets.dim(1), targets.dim(2), targets.dim(3)});
      item.stage = current_stage_;
      buffer_.Add(std::move(item));
    }
  }

  ++step_count_;
  if (metrics) {
    TrainerMetrics& m = Metrics();
    m.steps.Add(1);
    m.last_loss.Set(loss_value);
    m.step_ns.Observe(static_cast<double>(MonotonicNowNs() - step_start_ns));
  }
  return loss_value;
}

std::vector<float> UrclTrainer::TrainStage(const data::StDataset& train, int64_t epochs) {
  URCL_CHECK_GT(epochs, 0);
  URCL_TRACE_SCOPE("train_stage", current_stage_);
  interrupted_ = false;
  fault::FaultInjector& injector = fault::FaultInjector::Instance();
  if (injector.AtKillPoint("stage_begin")) {
    interrupted_ = true;
    return {};
  }
  const int64_t num_samples = train.NumSamples();
  URCL_CHECK_GT(num_samples, 0) << "train split has no complete windows";

  // Sequentially select batches (Algorithm 1 line 5). When the stage has
  // more windows than the per-epoch budget, pick evenly spaced windows in
  // temporal order so each epoch still covers the whole stage.
  const int64_t batch = config_.batch_size;
  int64_t budget = num_samples;
  if (config_.max_batches_per_epoch > 0) {
    budget = std::min(budget, config_.max_batches_per_epoch * batch);
  }
  // Evenly spaced windows across the stage, interleaved so every minibatch
  // spans the whole stage: batch k = {base[k], base[num_batches + k], ...}.
  // In-batch diversity matters for the GraphCL negatives (consecutive
  // overlapping windows would be indistinguishable) and stabilizes SGD.
  std::vector<int64_t> base;
  base.reserve(static_cast<size_t>(budget));
  for (int64_t i = 0; i < budget; ++i) base.push_back(i * num_samples / budget);
  const int64_t num_batches = (budget + batch - 1) / batch;
  std::vector<int64_t> schedule;
  schedule.reserve(static_cast<size_t>(budget));
  for (int64_t k = 0; k < num_batches; ++k) {
    for (int64_t j = 0; j < batch; ++j) {
      const int64_t index = j * num_batches + k;
      if (index < budget) schedule.push_back(base[static_cast<size_t>(index)]);
    }
  }

  // Mid-stage resume: when the restored cursor points at this stage, pick up
  // at the saved epoch/batch position with the saved partial-epoch sums so
  // the epoch-mean losses reproduce the uninterrupted run exactly.
  int64_t start_epoch = 0;
  int64_t start_offset = 0;
  double resume_loss_sum = 0.0;
  int64_t resume_steps = 0;
  std::vector<float> epoch_losses;
  bool resuming = false;
  if (resume_pending_ && cursor_.stage == current_stage_) {
    start_epoch = cursor_.epoch;
    start_offset = cursor_.offset;
    resume_loss_sum = cursor_.epoch_loss_sum;
    resume_steps = cursor_.epoch_steps;
    epoch_losses = cursor_.epoch_losses;
    resuming = true;
    resume_pending_ = false;
  }
  cursor_.stage = current_stage_;

  const int64_t schedule_size = static_cast<int64_t>(schedule.size());
  for (int64_t epoch = start_epoch; epoch < epochs; ++epoch) {
    URCL_TRACE_SCOPE("epoch", epoch);
    const bool resumed_epoch = resuming && epoch == start_epoch;
    double loss_sum = resumed_epoch ? resume_loss_sum : 0.0;
    int64_t steps = resumed_epoch ? resume_steps : 0;
    for (int64_t start = resumed_epoch ? start_offset : 0; start < schedule_size;
         start += batch) {
      const int64_t count = std::min<int64_t>(batch, schedule_size - start);
      if (count < 2) break;  // GraphCL needs >= 2 samples; skip the remainder
      std::vector<int64_t> indices(schedule.begin() + start, schedule.begin() + start + count);
      const auto [inputs, targets] = train.MakeBatch(indices);
      // Input-fault family: a duplicated batch is fed through twice.
      const int64_t repeats = injector.NextBatchDuplicated() ? 2 : 1;
      for (int64_t rep = 0; rep < repeats; ++rep) {
        const std::optional<float> loss = TrainStep(inputs, targets);
        if (loss.has_value()) {
          loss_history_.push_back(*loss);
          loss_sum += *loss;
          ++steps;
        }
      }
      // Advance the cursor past this batch so a checkpoint taken here resumes
      // with the next one.
      cursor_.epoch = epoch;
      cursor_.offset = start + count;
      cursor_.epoch_loss_sum = loss_sum;
      cursor_.epoch_steps = steps;
      cursor_.epoch_losses = epoch_losses;
      if (snapshot_sink_ && publish_every_steps_ > 0 && step_count_ > 0 &&
          step_count_ % publish_every_steps_ == 0) {
        PublishSnapshot();
      }
      if (checkpoint_manager_ != nullptr && checkpoint_config_.every_steps > 0 &&
          step_count_ > 0 && step_count_ % checkpoint_config_.every_steps == 0) {
        const Status saved = SaveFullCheckpoint();
        if (!saved.ok()) {
          std::fprintf(stderr, "[urcl] periodic checkpoint failed: %s\n",
                       saved.message().c_str());
        } else if (injector.AtKillPoint("checkpoint_written")) {
          interrupted_ = true;
          return epoch_losses;
        }
      }
      if (injector.AtKillPoint("batch_done")) {
        interrupted_ = true;
        return epoch_losses;
      }
    }
    epoch_losses.push_back(steps > 0 ? static_cast<float>(loss_sum / steps) : 0.0f);
    cursor_.epoch = epoch + 1;
    cursor_.offset = 0;
    cursor_.epoch_loss_sum = 0.0;
    cursor_.epoch_steps = 0;
    cursor_.epoch_losses = epoch_losses;
  }

  // Stage complete: point the cursor at the next stage and checkpoint, so a
  // crash between stages costs nothing. Serving sinks get the stage's final
  // weights before the kill-point so a completed stage is always published.
  if (config_.enable_replay) buffer_.ExportComposition(current_stage_);
  PublishSnapshot();
  cursor_ = StageCursor{current_stage_ + 1, 0, 0, 0.0, 0, {}};
  if (checkpoint_manager_ != nullptr) {
    const Status saved = SaveFullCheckpoint();
    if (!saved.ok()) {
      std::fprintf(stderr, "[urcl] stage-end checkpoint failed: %s\n", saved.message().c_str());
    }
  }
  if (injector.AtKillPoint("stage_end")) interrupted_ = true;
  return epoch_losses;
}

std::vector<float> UrclTrainer::TrainStageWithValidation(const data::StDataset& train,
                                                         const data::StDataset& val,
                                                         int64_t max_epochs,
                                                         int64_t patience) {
  URCL_CHECK_GT(patience, 0);
  if (resume_pending_ && cursor_.stage == current_stage_) {
    // Early stopping carries search state (best parameters, patience counter)
    // that is not checkpointed, so a restored run restarts this stage's epoch
    // loop from the recovered model instead of resuming mid-epoch.
    resume_pending_ = false;
    cursor_ = StageCursor{current_stage_, 0, 0, 0.0, 0, {}};
  }
  std::vector<float> losses;
  double best_val = std::numeric_limits<double>::infinity();
  std::vector<Tensor> best_state;
  int64_t stale_epochs = 0;
  for (int64_t epoch = 0; epoch < max_epochs; ++epoch) {
    const std::vector<float> epoch_losses = TrainStage(train, 1);
    if (!epoch_losses.empty()) losses.push_back(epoch_losses.front());
    if (interrupted_) return losses;  // fault stop: leave state for resume, skip best-restore
    const double val_mae = ValidationMae(*this, val);
    if (val_mae < best_val) {
      best_val = val_mae;
      best_state = model_->StateDict();
      stale_epochs = 0;
    } else if (++stale_epochs >= patience) {
      break;
    }
  }
  if (!best_state.empty()) model_->LoadStateDict(best_state);
  return losses;
}

void UrclTrainer::SaveCheckpoint(const std::string& path) const {
  SaveTensors(model_->StateDict(), path);
}

void UrclTrainer::LoadCheckpoint(const std::string& path) {
  model_->LoadStateDict(LoadTensors(path));
}

namespace {

// Version of the trainer's section schema inside the checkpoint container
// (the container itself carries its own format version).
constexpr uint32_t kTrainerStateVersion = 1;

// Version of the "serve_meta" section handed to snapshot sinks (parsed by
// serve::ParseModelSnapshot; bump together).
constexpr uint32_t kServeMetaVersion = 1;

// The "model" section body shared by full checkpoints and serving snapshots:
// tensor count then each tensor, in StateDict() order.
std::string SerializeStateDict(const std::vector<Tensor>& state) {
  std::ostringstream model;
  io::WritePod(model, static_cast<uint64_t>(state.size()));
  for (const Tensor& t : state) SaveTensor(t, model);
  return model.str();
}

void WriteFloatVector(std::ostream& out, const std::vector<float>& values) {
  io::WritePod(out, static_cast<uint64_t>(values.size()));
  for (const float v : values) io::WritePod(out, v);
}

Status ReadFloatVector(std::istream& in, uint64_t max_count, const char* what,
                       std::vector<float>* out) {
  const uint64_t count = io::ReadPod<uint64_t>(in);
  if (count > max_count) {
    return Status::Error(std::string(what) + " count " + std::to_string(count) +
                         " is implausible");
  }
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) out->push_back(io::ReadPod<float>(in));
  return Status::Ok();
}

}  // namespace

void UrclTrainer::SetSnapshotSink(SnapshotSink sink, int64_t publish_every_steps) {
  URCL_CHECK_GE(publish_every_steps, 0);
  snapshot_sink_ = std::move(sink);
  publish_every_steps_ = publish_every_steps;
}

void UrclTrainer::PublishSnapshot() {
  if (!snapshot_sink_) return;
  // Chaos fault point `drop_publish`: a stalled publisher — the snapshot is
  // silently swallowed, so the serving side sees its live version aging until
  // the staleness/age watchdogs fire. The version counter is not consumed.
  if (fault::FaultInjector::Instance().NextPublishDropped()) return;
  URCL_TRACE_SCOPE("publish_snapshot");
  checkpoint::Container container;
  container.Add("model", SerializeStateDict(model_->StateDict()));
  std::ostringstream meta;
  io::WritePod(meta, kServeMetaVersion);
  io::WritePod(meta, ++snapshots_published_);
  io::WritePod(meta, current_stage_);
  io::WritePod(meta, step_count_);
  container.Add("serve_meta", meta.str());
  obs::RecordFlightEvent(obs::FlightEventType::kSnapshotPublish, snapshots_published_,
                         current_stage_);
  snapshot_sink_(container);
}

void UrclTrainer::EnableCheckpointing(const CheckpointConfig& config) {
  URCL_CHECK(!config.dir.empty()) << "CheckpointConfig.dir must be set";
  URCL_CHECK_GE(config.every_steps, 0);
  URCL_CHECK_GT(config.retention, 0);
  checkpoint_config_ = config;
  checkpoint::ManagerOptions options;
  options.dir = config.dir;
  options.retention = config.retention;
  checkpoint_manager_ = std::make_unique<checkpoint::CheckpointManager>(options);
}

Status UrclTrainer::SaveFullCheckpoint() {
  if (checkpoint_manager_ == nullptr) {
    return Status::Error("checkpointing not enabled (call EnableCheckpointing first)");
  }
  URCL_TRACE_SCOPE("checkpoint");
  const Stopwatch checkpoint_timer;
  checkpoint::Container container;

  // "meta": schema version, config fingerprint, counters, progress cursor.
  {
    std::ostringstream meta;
    io::WritePod(meta, kTrainerStateVersion);
    io::WritePod(meta, config_.seed);
    io::WritePod(meta, step_count_);
    io::WritePod(meta, quarantined_batches_);
    io::WritePod(meta, cursor_.stage);
    io::WritePod(meta, cursor_.epoch);
    io::WritePod(meta, cursor_.offset);
    io::WritePod(meta, static_cast<double>(cursor_.epoch_loss_sum));
    io::WritePod(meta, cursor_.epoch_steps);
    WriteFloatVector(meta, cursor_.epoch_losses);
    WriteFloatVector(meta, loss_history_);
    io::WritePod(meta, static_cast<uint64_t>(cached_selection_.size()));
    for (const int64_t index : cached_selection_) io::WritePod(meta, index);
    container.Add("meta", meta.str());
  }

  // "model": parameter tensors in Parameters() order.
  container.Add("model", SerializeStateDict(model_->StateDict()));

  // "optimizer": Adam step counter + first/second moments.
  {
    std::ostringstream opt;
    optimizer_->SaveState(opt);
    container.Add("optimizer", opt.str());
  }

  // "rng": the trainer's stream (mixup, augmentation picks, samplers).
  container.Add("rng", rng_.SaveState());

  // "buffer": replay memory items + counters + reservoir RNG.
  {
    std::ostringstream buf;
    buffer_.Serialize(buf);
    container.Add("buffer", buf.str());
  }

  const Status saved = checkpoint_manager_->Save(container);
  if (saved.ok()) {
    obs::RecordFlightEvent(obs::FlightEventType::kCheckpointWrite, cursor_.stage, step_count_);
    if (obs::MetricsEnabled()) {
      TrainerMetrics& m = Metrics();
      m.checkpoint_writes.Add(1);
      m.checkpoint_write_seconds.Observe(checkpoint_timer.ElapsedSeconds());
    }
  }
  return saved;
}

Status UrclTrainer::RestoreFromCheckpointDir(std::string* diagnostics) {
  if (checkpoint_manager_ == nullptr) {
    return Status::Error("checkpointing not enabled (call EnableCheckpointing first)");
  }
  checkpoint::Container container;
  const Status loaded = checkpoint_manager_->LoadNewestValid(&container, diagnostics);
  if (!loaded.ok()) return loaded;

  const std::string* meta_bytes = container.Find("meta");
  const std::string* model_bytes = container.Find("model");
  const std::string* opt_bytes = container.Find("optimizer");
  const std::string* rng_bytes = container.Find("rng");
  const std::string* buffer_bytes = container.Find("buffer");
  if (meta_bytes == nullptr || model_bytes == nullptr || opt_bytes == nullptr ||
      rng_bytes == nullptr || buffer_bytes == nullptr) {
    return Status::Error("checkpoint is missing a required section "
                         "(need meta/model/optimizer/rng/buffer)");
  }

  // Parse everything into temporaries first; the live trainer is only touched
  // once every section validates.
  std::istringstream meta(*meta_bytes);
  const uint32_t version = io::ReadPod<uint32_t>(meta);
  if (version != kTrainerStateVersion) {
    return Status::Error("trainer state version " + std::to_string(version) +
                         " unsupported (expected " + std::to_string(kTrainerStateVersion) + ")");
  }
  const uint64_t seed = io::ReadPod<uint64_t>(meta);
  if (seed != config_.seed) {
    return Status::Error("checkpoint was written with seed " + std::to_string(seed) +
                         " but this trainer is configured with seed " +
                         std::to_string(config_.seed));
  }
  const int64_t step_count = io::ReadPod<int64_t>(meta);
  const int64_t quarantined = io::ReadPod<int64_t>(meta);
  StageCursor cursor;
  cursor.stage = io::ReadPod<int64_t>(meta);
  cursor.epoch = io::ReadPod<int64_t>(meta);
  cursor.offset = io::ReadPod<int64_t>(meta);
  cursor.epoch_loss_sum = io::ReadPod<double>(meta);
  cursor.epoch_steps = io::ReadPod<int64_t>(meta);
  if (step_count < 0 || quarantined < 0 || cursor.stage < 0 || cursor.epoch < 0 ||
      cursor.offset < 0 || cursor.epoch_steps < 0) {
    return Status::Error("checkpoint meta section has negative counters");
  }
  Status st = ReadFloatVector(meta, 1u << 20, "epoch loss", &cursor.epoch_losses);
  if (!st.ok()) return st;
  std::vector<float> loss_history;
  st = ReadFloatVector(meta, 1u << 28, "loss history", &loss_history);
  if (!st.ok()) return st;
  const uint64_t selection_count = io::ReadPod<uint64_t>(meta);
  if (selection_count > static_cast<uint64_t>(config_.buffer_capacity)) {
    return Status::Error("checkpoint RMIR selection cache is larger than the buffer");
  }
  std::vector<int64_t> cached_selection;
  cached_selection.reserve(selection_count);
  for (uint64_t i = 0; i < selection_count; ++i) {
    cached_selection.push_back(io::ReadPod<int64_t>(meta));
  }

  std::istringstream model_in(*model_bytes);
  const uint64_t param_count = io::ReadPod<uint64_t>(model_in);
  const std::vector<Tensor> current = model_->StateDict();
  if (param_count != current.size()) {
    return Status::Error("checkpoint model section holds " + std::to_string(param_count) +
                         " tensors but the model has " + std::to_string(current.size()) +
                         " parameters (different architecture?)");
  }
  std::vector<Tensor> state;
  state.reserve(param_count);
  for (uint64_t i = 0; i < param_count; ++i) {
    state.push_back(LoadTensor(model_in));
    if (!(state.back().shape() == current[i].shape())) {
      return Status::Error("checkpoint parameter " + std::to_string(i) + " has shape " +
                           state.back().shape().ToString() + " but the model expects " +
                           current[i].shape().ToString());
    }
  }

  Rng rng(config_.seed);
  if (!rng.LoadState(*rng_bytes)) {
    return Status::Error("checkpoint rng section failed to parse");
  }

  // Optimizer and buffer restore directly (both validate before committing).
  std::istringstream opt_in(*opt_bytes);
  st = optimizer_->LoadState(opt_in);
  if (!st.ok()) return st;
  std::istringstream buffer_in(*buffer_bytes);
  st = buffer_.Deserialize(buffer_in);
  if (!st.ok()) return st;

  model_->LoadStateDict(state);
  rng_ = rng;
  step_count_ = step_count;
  quarantined_batches_ = quarantined;
  loss_history_ = std::move(loss_history);
  cached_selection_ = std::move(cached_selection);
  cursor_ = std::move(cursor);
  resume_pending_ = true;
  interrupted_ = false;
  return Status::Ok();
}

Status UrclTrainer::Predict(const PredictRequest& request, PredictResponse* response) const {
  // The tape-free path: bitwise-equal to the Variable forward (same ops::
  // kernel sequence) without allocating graph nodes or grad buffers.
  Status status =
      FinishPrediction(request, model_->ForwardInference(request.inputs, adjacency_), response);
  if (!status.ok()) return status;
  response->stage = current_stage_;
  response->model_version = snapshots_published_;
  return Status::Ok();
}

}  // namespace core
}  // namespace urcl
