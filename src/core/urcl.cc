#include "core/urcl.h"

#include "tensor/serialize.h"

#include <algorithm>
#include <limits>

#include "autograd/ops.h"
#include "common/check.h"
#include "core/stmixup.h"
#include "nn/loss.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace core {

namespace ag = ::urcl::autograd;

std::vector<std::string> UrclConfig::Validate() const {
  std::vector<std::string> errors;
  for (const std::string& e : encoder.Validate()) errors.push_back("encoder: " + e);
  if (decoder_hidden <= 0) errors.push_back("decoder_hidden must be > 0");
  if (output_steps <= 0) errors.push_back("output_steps must be > 0");
  if (proj_hidden <= 0) errors.push_back("proj_hidden must be > 0");
  if (proj_dim <= 0) errors.push_back("proj_dim must be > 0");
  if (ssl_temperature <= 0.0f) errors.push_back("ssl_temperature must be > 0");
  if (ssl_weight < 0.0f) errors.push_back("ssl_weight must be >= 0");
  if (batch_size <= 0) errors.push_back("batch_size must be > 0");
  if (learning_rate <= 0.0f) errors.push_back("learning_rate must be > 0");
  if (grad_clip < 0.0f) errors.push_back("grad_clip must be >= 0 (0 disables clipping)");
  if (max_batches_per_epoch < 0) {
    errors.push_back("max_batches_per_epoch must be >= 0 (0 uses every window)");
  }
  if (buffer_capacity <= 0) errors.push_back("buffer_capacity must be > 0");
  if (replay_sample_count <= 0) {
    errors.push_back("replay_sample_count must be > 0");
  } else if (replay_sample_count > buffer_capacity) {
    errors.push_back("replay_sample_count must not exceed buffer_capacity");
  }
  if (rmir_scan_size <= 0) errors.push_back("rmir_scan_size must be > 0");
  if (rmir_candidate_pool <= 0) errors.push_back("rmir_candidate_pool must be > 0");
  if (enable_mixup && mixup_alpha <= 0.0f) {
    errors.push_back("mixup_alpha must be > 0 when enable_mixup is set");
  }
  return errors;
}

UrclModel::UrclModel(const UrclConfig& config, Rng& rng) {
  const std::vector<std::string> errors = config.Validate();
  URCL_CHECK(errors.empty()) << "invalid UrclConfig: " << FormatConfigErrors(errors);
  encoder_ = MakeBackbone(config.backbone, config.encoder, rng);
  RegisterChild("encoder", encoder_.get());
  decoder_ = std::make_unique<StDecoder>(encoder_->latent_channels(), encoder_->latent_time(),
                                         config.decoder_hidden, config.output_steps, rng);
  RegisterChild("decoder", decoder_.get());
  simsiam_ = std::make_unique<StSimSiam>(encoder_.get(), config.proj_hidden, config.proj_dim,
                                         config.ssl_temperature, rng);
  RegisterChild("simsiam", simsiam_.get());
}

Variable UrclModel::Forward(const Variable& observations, const Tensor& adjacency) const {
  return decoder_->Forward(encoder_->Encode(observations, adjacency));
}

UrclTrainer::UrclTrainer(const UrclConfig& config, const graph::SensorNetwork& network)
    : config_(config),
      rng_(config.seed),
      adjacency_(network.AdjacencyMatrix()),
      network_(network),
      buffer_(config.buffer_capacity, config.buffer_policy, config.seed + 17),
      rmir_sampler_(replay::RmirConfig{config.rmir_candidate_pool, config.rmir_virtual_lr}) {
  URCL_CHECK_EQ(config.encoder.num_nodes, network.num_nodes())
      << "encoder config does not match the sensor network";
  model_ = std::make_unique<UrclModel>(config_, rng_);
  optimizer_ = std::make_unique<nn::Adam>(model_->Parameters(), config_.learning_rate);
  augmentations_ = augment::MakeDefaultAugmentations();
}

std::vector<float> UrclTrainer::PerItemLosses(const std::vector<int64_t>& indices) {
  const auto [inputs, targets] = buffer_.MakeBatch(indices);
  Variable x(inputs, /*requires_grad=*/false);
  const Tensor predictions = model_->Forward(x, adjacency_).value();
  // Per-item MAE: mean |pred - y| over all but the batch axis.
  const Tensor abs_err = ops::Abs(ops::Sub(predictions, targets));
  const Tensor per_item = ops::Mean(abs_err, {1, 2, 3});
  std::vector<float> losses(static_cast<size_t>(per_item.NumElements()));
  for (int64_t i = 0; i < per_item.NumElements(); ++i)
    losses[static_cast<size_t>(i)] = per_item.FlatAt(i);
  return losses;
}

UrclTrainer::ReplayDraw UrclTrainer::DrawReplaySamples(const Tensor& current_inputs,
                                                       const Tensor& current_targets) {
  ReplayDraw draw;
  if (!config_.enable_replay || buffer_.size() < config_.replay_sample_count) return draw;

  std::vector<int64_t> selected;
  if (!config_.enable_rmir) {
    selected = random_sampler_.Sample(buffer_, config_.replay_sample_count, rng_);
  } else if (step_count_ % std::max<int64_t>(1, config_.rmir_refresh_every) == 0 ||
             cached_selection_.empty()) {
    // 1. Score a random scan subset for interference: loss increase after a
    //    virtual gradient step on the incoming batch (Eq. 3).
    const std::vector<int64_t> scan = random_sampler_.Sample(
        buffer_, std::min(config_.rmir_scan_size, buffer_.size()), rng_);
    const std::vector<float> before = PerItemLosses(scan);

    // Virtual step: gradients from the incoming batch, SGD update, rollback.
    const std::vector<Variable> params = model_->Parameters();
    std::vector<Tensor> snapshot;
    snapshot.reserve(params.size());
    for (const Variable& p : params) snapshot.push_back(p.value().Clone());

    for (const Variable& p : params) p.ZeroGrad();
    Variable x(current_inputs, /*requires_grad=*/false);
    Variable y(current_targets, /*requires_grad=*/false);
    Variable loss = nn::MaeLoss(model_->Forward(x, adjacency_), y);
    loss.Backward();
    for (const Variable& p : params) {
      Tensor updated = p.value().Clone();
      Tensor grad = p.grad();
      grad.MulInPlace(-config_.rmir_virtual_lr);
      updated.AddInPlace(grad);
      p.SetValue(updated);
    }
    const std::vector<float> after = PerItemLosses(scan);
    for (size_t i = 0; i < params.size(); ++i) params[i].SetValue(snapshot[i]);
    for (const Variable& p : params) p.ZeroGrad();

    // 2+3. Rank by interference, re-rank by Pearson similarity (Sec. IV-B1).
    std::vector<float> interference(static_cast<size_t>(buffer_.size()),
                                    -std::numeric_limits<float>::infinity());
    for (size_t i = 0; i < scan.size(); ++i) {
      interference[static_cast<size_t>(scan[i])] = after[i] - before[i];
    }
    selected = rmir_sampler_.Select(buffer_, current_inputs, interference,
                                    config_.replay_sample_count);
    cached_selection_ = selected;
  } else {
    selected = cached_selection_;
    // Cached indices may have been evicted since; clamp into range.
    for (int64_t& index : selected) index = std::min(index, buffer_.size() - 1);
  }

  if (selected.empty()) return draw;
  auto [inputs, targets] = buffer_.MakeBatch(selected);
  draw.inputs = std::move(inputs);
  draw.targets = std::move(targets);
  draw.valid = true;
  return draw;
}

float UrclTrainer::TrainStep(const Tensor& inputs, const Tensor& targets) {
  model_->SetTraining(true);

  // Data integration (Eq. 2): RMIR retrieval + STMixup.
  const ReplayDraw draw = DrawReplaySamples(inputs, targets);
  MixupResult mixed;
  if (draw.valid && config_.enable_mixup) {
    mixed = StMixup(inputs, targets, draw.inputs, draw.targets, config_.mixup_alpha, rng_);
  } else if (draw.valid) {
    mixed = ConcatBatches(inputs, targets, draw.inputs, draw.targets);  // w/o_STU
  } else {
    mixed.inputs = inputs;
    mixed.targets = targets;
  }

  // Prediction branch (Eq. 17, 28).
  Variable x(mixed.inputs, /*requires_grad=*/false);
  Variable y(mixed.targets, /*requires_grad=*/false);
  Variable task_loss = nn::MaeLoss(model_->Forward(x, adjacency_), y);

  // STCRL branch (Sec. IV-C): two augmented views through STSimSiam.
  Variable total_loss = task_loss;
  if (config_.enable_ssl) {
    augment::AugmentedView view1{mixed.inputs, adjacency_};
    augment::AugmentedView view2{mixed.inputs, adjacency_};
    if (config_.enable_augmentation) {
      const auto [aug1, aug2] = augment::PickTwoDistinct(augmentations_, rng_);
      view1 = aug1->Apply(mixed.inputs, network_, rng_);
      view2 = aug2->Apply(mixed.inputs, network_, rng_);
    }
    Variable ssl_loss = model_->simsiam().Loss(view1, view2);
    total_loss = ag::Add(task_loss, ag::MulScalar(ssl_loss, config_.ssl_weight));  // Eq. 29
  }

  optimizer_->ZeroGrad();
  total_loss.Backward();
  if (config_.grad_clip > 0.0f) optimizer_->ClipGradNorm(config_.grad_clip);
  optimizer_->Step();

  // Store the raw (pre-mixup) observations in the replay buffer.
  if (config_.enable_replay) {
    const int64_t batch = inputs.dim(0);
    for (int64_t b = 0; b < batch; ++b) {
      replay::ReplayItem item;
      item.inputs = ops::Slice(inputs, {b, 0, 0, 0},
                               {1, inputs.dim(1), inputs.dim(2), inputs.dim(3)})
                        .Reshape(Shape{inputs.dim(1), inputs.dim(2), inputs.dim(3)});
      item.targets = ops::Slice(targets, {b, 0, 0, 0},
                                {1, targets.dim(1), targets.dim(2), targets.dim(3)})
                         .Reshape(Shape{targets.dim(1), targets.dim(2), targets.dim(3)});
      buffer_.Add(std::move(item));
    }
  }

  ++step_count_;
  return total_loss.value().Item();
}

std::vector<float> UrclTrainer::TrainStage(const data::StDataset& train, int64_t epochs) {
  URCL_CHECK_GT(epochs, 0);
  const int64_t num_samples = train.NumSamples();
  URCL_CHECK_GT(num_samples, 0) << "train split has no complete windows";

  // Sequentially select batches (Algorithm 1 line 5). When the stage has
  // more windows than the per-epoch budget, pick evenly spaced windows in
  // temporal order so each epoch still covers the whole stage.
  const int64_t batch = config_.batch_size;
  int64_t budget = num_samples;
  if (config_.max_batches_per_epoch > 0) {
    budget = std::min(budget, config_.max_batches_per_epoch * batch);
  }
  // Evenly spaced windows across the stage, interleaved so every minibatch
  // spans the whole stage: batch k = {base[k], base[num_batches + k], ...}.
  // In-batch diversity matters for the GraphCL negatives (consecutive
  // overlapping windows would be indistinguishable) and stabilizes SGD.
  std::vector<int64_t> base;
  base.reserve(static_cast<size_t>(budget));
  for (int64_t i = 0; i < budget; ++i) base.push_back(i * num_samples / budget);
  const int64_t num_batches = (budget + batch - 1) / batch;
  std::vector<int64_t> schedule;
  schedule.reserve(static_cast<size_t>(budget));
  for (int64_t k = 0; k < num_batches; ++k) {
    for (int64_t j = 0; j < batch; ++j) {
      const int64_t index = j * num_batches + k;
      if (index < budget) schedule.push_back(base[static_cast<size_t>(index)]);
    }
  }

  std::vector<float> epoch_losses;
  for (int64_t epoch = 0; epoch < epochs; ++epoch) {
    double loss_sum = 0.0;
    int64_t steps = 0;
    for (int64_t start = 0; start < static_cast<int64_t>(schedule.size()); start += batch) {
      const int64_t count =
          std::min<int64_t>(batch, static_cast<int64_t>(schedule.size()) - start);
      if (count < 2) break;  // GraphCL needs >= 2 samples; skip the remainder
      std::vector<int64_t> indices(schedule.begin() + start, schedule.begin() + start + count);
      const auto [inputs, targets] = train.MakeBatch(indices);
      const float loss = TrainStep(inputs, targets);
      loss_history_.push_back(loss);
      loss_sum += loss;
      ++steps;
    }
    epoch_losses.push_back(steps > 0 ? static_cast<float>(loss_sum / steps) : 0.0f);
  }
  return epoch_losses;
}

std::vector<float> UrclTrainer::TrainStageWithValidation(const data::StDataset& train,
                                                         const data::StDataset& val,
                                                         int64_t max_epochs,
                                                         int64_t patience) {
  URCL_CHECK_GT(patience, 0);
  std::vector<float> losses;
  double best_val = std::numeric_limits<double>::infinity();
  std::vector<Tensor> best_state;
  int64_t stale_epochs = 0;
  for (int64_t epoch = 0; epoch < max_epochs; ++epoch) {
    const std::vector<float> epoch_losses = TrainStage(train, 1);
    losses.push_back(epoch_losses.front());
    const double val_mae = ValidationMae(*this, val);
    if (val_mae < best_val) {
      best_val = val_mae;
      best_state = model_->StateDict();
      stale_epochs = 0;
    } else if (++stale_epochs >= patience) {
      break;
    }
  }
  if (!best_state.empty()) model_->LoadStateDict(best_state);
  return losses;
}

void UrclTrainer::SaveCheckpoint(const std::string& path) const {
  SaveTensors(model_->StateDict(), path);
}

void UrclTrainer::LoadCheckpoint(const std::string& path) {
  model_->LoadStateDict(LoadTensors(path));
}

Tensor UrclTrainer::Predict(const Tensor& inputs) {
  model_->SetTraining(false);
  Variable x(inputs, /*requires_grad=*/false);
  return model_->Forward(x, adjacency_).value();
}

}  // namespace core
}  // namespace urcl
