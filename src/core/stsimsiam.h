// The STSimSiam network (Sec. IV-C2): two weight-shared STEncoders (one
// physical encoder, two forward passes) and a projection MLP head, trained
// by maximizing mutual information between augmented views with the
// symmetric GraphCL loss and a stop-gradient on the target branch.
#ifndef URCL_CORE_STSIMSIAM_H_
#define URCL_CORE_STSIMSIAM_H_

#include <memory>

#include "augment/augmentation.h"
#include "core/backbone.h"
#include "nn/linear.h"

namespace urcl {
namespace core {

class StSimSiam : public nn::Module {
 public:
  // `encoder` is shared with the prediction network and is NOT registered as
  // a child here (the owner registers it once); only the projector's
  // parameters belong to this module.
  StSimSiam(StBackbone* encoder, int64_t proj_hidden, int64_t proj_dim, float temperature,
            Rng& rng);

  // L_ssl for two augmented views of the same minibatch (Eq. 15-16).
  Variable Loss(const augment::AugmentedView& view1, const augment::AugmentedView& view2) const;

  // Embedding z = pool(f(x)) and projection p = h(z) for one view.
  Variable Embed(const augment::AugmentedView& view) const;
  Variable Project(const Variable& embedding) const;

  float temperature() const { return temperature_; }

 private:
  StBackbone* encoder_;  // shared, not owned
  float temperature_;
  std::unique_ptr<nn::Mlp> projector_;
};

}  // namespace core
}  // namespace urcl

#endif  // URCL_CORE_STSIMSIAM_H_
