#include "core/backbone.h"

#include "autograd/ops.h"
#include "common/check.h"
#include "core/dcrnn_backbone.h"
#include "core/geoman_backbone.h"
#include "core/stencoder.h"

namespace urcl {
namespace core {

namespace ag = ::urcl::autograd;

Variable StBackbone::PoolLatent(const Variable& latent) {
  URCL_CHECK_EQ(latent.shape().rank(), 4) << "latent must be [B, H, N, T']";
  return ag::Mean(latent, {2, 3});  // -> [B, H]
}

Tensor StBackbone::EncodeInference(const Tensor& observations, const Tensor& adjacency) const {
  // Fallback: run the tape forward with gradients disabled and extract the
  // value. Exactly the tape result, just without the memory savings of the
  // specialized mirrors in the core backbones.
  return Encode(Variable(observations, /*requires_grad=*/false), adjacency).value();
}

std::string BackboneTypeName(BackboneType type) {
  switch (type) {
    case BackboneType::kGraphWaveNet:
      return "GraphWaveNet";
    case BackboneType::kDcrnn:
      return "DCRNN";
    case BackboneType::kGeoman:
      return "GeoMAN";
  }
  URCL_CHECK(false) << "unknown backbone type";
  return "";
}

std::vector<std::string> BackboneConfig::Validate() const {
  std::vector<std::string> errors;
  if (num_nodes <= 0) errors.push_back("num_nodes must be > 0 (set it from the dataset)");
  if (in_channels <= 0) errors.push_back("in_channels must be > 0");
  if (input_steps <= 0) errors.push_back("input_steps must be > 0");
  if (hidden_channels <= 0) errors.push_back("hidden_channels must be > 0");
  if (latent_channels <= 0) errors.push_back("latent_channels must be > 0");
  if (num_layers <= 0) errors.push_back("num_layers must be > 0");
  if (diffusion_steps < 1) errors.push_back("diffusion_steps must be >= 1");
  if (use_adaptive_adjacency && adaptive_embedding_dim <= 0) {
    errors.push_back("adaptive_embedding_dim must be > 0 when use_adaptive_adjacency is set");
  }
  if (!use_adaptive_adjacency && !use_static_supports) {
    errors.push_back(
        "at least one adjacency source is required: enable use_adaptive_adjacency or "
        "use_static_supports");
  }
  return errors;
}

std::string FormatConfigErrors(const std::vector<std::string>& errors) {
  std::string joined;
  for (const std::string& e : errors) {
    if (!joined.empty()) joined += "; ";
    joined += e;
  }
  return joined;
}

std::unique_ptr<StBackbone> MakeBackbone(BackboneType type, const BackboneConfig& config,
                                         Rng& rng) {
  const std::vector<std::string> errors = config.Validate();
  URCL_CHECK(errors.empty()) << "invalid BackboneConfig: " << FormatConfigErrors(errors);
  switch (type) {
    case BackboneType::kGraphWaveNet:
      return std::make_unique<GraphWaveNetEncoder>(config, rng);
    case BackboneType::kDcrnn:
      return std::make_unique<DcrnnEncoder>(config, rng);
    case BackboneType::kGeoman:
      return std::make_unique<GeomanEncoder>(config, rng);
  }
  URCL_CHECK(false) << "unknown backbone type";
  return nullptr;
}

}  // namespace core
}  // namespace urcl
