#include "core/backbone.h"

#include "autograd/ops.h"
#include "common/check.h"
#include "core/dcrnn_backbone.h"
#include "core/geoman_backbone.h"
#include "core/stencoder.h"

namespace urcl {
namespace core {

namespace ag = ::urcl::autograd;

Variable StBackbone::PoolLatent(const Variable& latent) {
  URCL_CHECK_EQ(latent.shape().rank(), 4) << "latent must be [B, H, N, T']";
  return ag::Mean(latent, {2, 3});  // -> [B, H]
}

std::string BackboneTypeName(BackboneType type) {
  switch (type) {
    case BackboneType::kGraphWaveNet:
      return "GraphWaveNet";
    case BackboneType::kDcrnn:
      return "DCRNN";
    case BackboneType::kGeoman:
      return "GeoMAN";
  }
  URCL_CHECK(false) << "unknown backbone type";
  return "";
}

std::unique_ptr<StBackbone> MakeBackbone(BackboneType type, const BackboneConfig& config,
                                         Rng& rng) {
  switch (type) {
    case BackboneType::kGraphWaveNet:
      return std::make_unique<GraphWaveNetEncoder>(config, rng);
    case BackboneType::kDcrnn:
      return std::make_unique<DcrnnEncoder>(config, rng);
    case BackboneType::kGeoman:
      return std::make_unique<GeomanEncoder>(config, rng);
  }
  URCL_CHECK(false) << "unknown backbone type";
  return nullptr;
}

}  // namespace core
}  // namespace urcl
