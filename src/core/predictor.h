// The uniform training/prediction interface shared by URCL and every
// baseline, so the continual-learning protocols (Fig. 5) and evaluation
// harness treat all models identically.
#ifndef URCL_CORE_PREDICTOR_H_
#define URCL_CORE_PREDICTOR_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/metrics.h"
#include "data/normalizer.h"

namespace urcl {
namespace core {

class StPredictor {
 public:
  virtual ~StPredictor() = default;

  virtual std::string name() const = 0;

  // Trains on one stage's train split for `epochs`; returns the per-epoch
  // mean training loss (the convergence curve of Fig. 8).
  virtual std::vector<float> TrainStage(const data::StDataset& train, int64_t epochs) = 0;

  // Trains with validation-based early stopping (Algorithm 1 trains "while
  // not converge"): stops after `patience` epochs without a new best
  // validation MAE and restores the best parameters. The default ignores the
  // validation split and trains for `max_epochs` (right for closed-form
  // models like ARIMA).
  virtual std::vector<float> TrainStageWithValidation(const data::StDataset& train,
                                                      const data::StDataset& val,
                                                      int64_t max_epochs, int64_t patience) {
    (void)val;
    (void)patience;
    return TrainStage(train, max_epochs);
  }

  // Predicts [B, M, N, C] -> [B, N_out, N, 1] in normalized space.
  virtual Tensor Predict(const Tensor& inputs) = 0;

  // --- Crash-safety hooks (no-ops for models without checkpoint support) ---

  // Called by the protocol runner before each stage with the stage's index,
  // so checkpoint-aware models can tag their progress cursor.
  virtual void BeginStage(int64_t stage_index) { (void)stage_index; }

  // First stage index that still needs training. A model restored from a
  // checkpoint returns the stage its cursor points at; the protocol runner
  // skips training for earlier stages (their effect is already baked into
  // the restored parameters and replay buffer).
  virtual int64_t ResumeStageIndex() const { return 0; }

  // True when the last TrainStage was interrupted (cooperative fault-injection
  // stop). The protocol runner stops the stage loop instead of evaluating a
  // half-trained stage.
  virtual bool TrainingInterrupted() const { return false; }
};

// Mean absolute error of `model` on `dataset` in normalized space (no
// denormalization; used for early stopping).
double ValidationMae(StPredictor& model, const data::StDataset& dataset,
                     int64_t batch_size = 16);

// Evaluates `model` over every window of `test`, denormalizing predictions
// and targets with `normalizer` (the paper reports MAE/RMSE in data units).
data::EvalMetrics EvaluatePredictor(StPredictor& model, const data::StDataset& test,
                                    const data::MinMaxNormalizer& normalizer,
                                    int64_t target_channel, int64_t batch_size = 16);

// Same, but accumulates into `accumulator` so several test sets can be
// pooled (the seen-so-far continual evaluation protocol).
void EvaluatePredictorInto(StPredictor& model, const data::StDataset& test,
                           const data::MinMaxNormalizer& normalizer, int64_t target_channel,
                           int64_t batch_size, data::MetricsAccumulator* accumulator);

}  // namespace core
}  // namespace urcl

#endif  // URCL_CORE_PREDICTOR_H_
