// The uniform training/prediction interface shared by URCL and every
// baseline, so the continual-learning protocols (Fig. 5) and evaluation
// harness treat all models identically.
#ifndef URCL_CORE_PREDICTOR_H_
#define URCL_CORE_PREDICTOR_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/metrics.h"
#include "data/normalizer.h"

namespace urcl {
namespace core {

class StPredictor {
 public:
  virtual ~StPredictor() = default;

  virtual std::string name() const = 0;

  // Trains on one stage's train split for `epochs`; returns the per-epoch
  // mean training loss (the convergence curve of Fig. 8).
  virtual std::vector<float> TrainStage(const data::StDataset& train, int64_t epochs) = 0;

  // Trains with validation-based early stopping (Algorithm 1 trains "while
  // not converge"): stops after `patience` epochs without a new best
  // validation MAE and restores the best parameters. The default ignores the
  // validation split and trains for `max_epochs` (right for closed-form
  // models like ARIMA).
  virtual std::vector<float> TrainStageWithValidation(const data::StDataset& train,
                                                      const data::StDataset& val,
                                                      int64_t max_epochs, int64_t patience) {
    (void)val;
    (void)patience;
    return TrainStage(train, max_epochs);
  }

  // Predicts [B, M, N, C] -> [B, N_out, N, 1] in normalized space.
  virtual Tensor Predict(const Tensor& inputs) = 0;
};

// Mean absolute error of `model` on `dataset` in normalized space (no
// denormalization; used for early stopping).
double ValidationMae(StPredictor& model, const data::StDataset& dataset,
                     int64_t batch_size = 16);

// Evaluates `model` over every window of `test`, denormalizing predictions
// and targets with `normalizer` (the paper reports MAE/RMSE in data units).
data::EvalMetrics EvaluatePredictor(StPredictor& model, const data::StDataset& test,
                                    const data::MinMaxNormalizer& normalizer,
                                    int64_t target_channel, int64_t batch_size = 16);

// Same, but accumulates into `accumulator` so several test sets can be
// pooled (the seen-so-far continual evaluation protocol).
void EvaluatePredictorInto(StPredictor& model, const data::StDataset& test,
                           const data::MinMaxNormalizer& normalizer, int64_t target_channel,
                           int64_t batch_size, data::MetricsAccumulator* accumulator);

}  // namespace core
}  // namespace urcl

#endif  // URCL_CORE_PREDICTOR_H_
