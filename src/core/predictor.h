// The uniform training/prediction interface shared by URCL and every
// baseline, so the continual-learning protocols (Fig. 5) and evaluation
// harness treat all models identically.
#ifndef URCL_CORE_PREDICTOR_H_
#define URCL_CORE_PREDICTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "data/metrics.h"
#include "data/normalizer.h"

namespace urcl {
namespace core {

// A batched forecast query. `inputs` is the normalized observation window
// [B, M, N, C]; `horizon` selects how many lead steps of the model's output
// window to return (0 = the model's full output window). Requests asking for
// more steps than the model produces are rejected with an error Status.
struct PredictRequest {
  Tensor inputs;
  int64_t horizon = 0;
  // Latency budget in nanoseconds; 0 = no deadline (the serving layer may
  // substitute its configured default). A query the service estimates it
  // cannot answer within the budget is shed up front with a
  // StatusCode::kDeadlineExceeded Status instead of being answered late.
  int64_t deadline_ns = 0;
  // Request-scoped causal trace ID (obs/trace.h). 0 = the serving layer
  // mints one; callers propagating a distributed trace pass their own. The
  // ID is stamped into the response and onto every span and flight-recorder
  // event the query touches.
  uint64_t trace_id = 0;
};

// Which execution engine produced a response's predictions.
enum class AnswerExecutor : int8_t {
  kUnknown = 0,   // predictor does not distinguish engines
  kTape = 1,      // UrclModel::ForwardInference (tape-free reference path)
  kPlan = 2,      // compiled arena plan (DESIGN.md §12)
  kFallback = 3,  // HistoricalAverage degraded-mode answer
};

inline const char* AnswerExecutorName(AnswerExecutor executor) {
  switch (executor) {
    case AnswerExecutor::kUnknown: return "unknown";
    case AnswerExecutor::kTape: return "tape";
    case AnswerExecutor::kPlan: return "plan";
    case AnswerExecutor::kFallback: return "fallback";
  }
  return "unknown";
}

// The answer to a PredictRequest. `predictions` is [B, H, N, 1] in
// normalized space where H is the effective horizon. The version fields
// identify the weights that served the query: `model_version` counts
// published weight snapshots (0 = live/unversioned weights) and `stage` is
// the training stage those weights came from (-1 = unknown / stage-less
// model). The serving layer surfaces both so clients can detect hot-swaps.
struct PredictResponse {
  Tensor predictions;
  int64_t model_version = 0;
  int64_t stage = -1;
  // True when the answer came from the serving layer's fallback baseline
  // (HistoricalAverage) because the service is DEGRADED — the prediction is
  // usable but not from the trained model.
  bool degraded = false;
  // True when the serving layer's rolling window had not received a tick for
  // longer than the configured staleness threshold when this query ran.
  bool stale = false;
  // The request's causal trace ID (caller-supplied or minted by the serving
  // layer; 0 = the answering predictor does not participate in tracing).
  uint64_t trace_id = 0;
  // serve::HealthState the service was in when it admitted this query
  // (kHealthy=0 / kDegraded=1 / kLameDuck=2); -1 = not answered through a
  // ForecastService. An int so core/ does not depend on serve/ headers.
  int32_t health_state = -1;
  // Engine that produced `predictions` (plan vs tape vs degraded fallback).
  AnswerExecutor executor = AnswerExecutor::kUnknown;
};

class StPredictor {
 public:
  virtual ~StPredictor() = default;

  virtual std::string name() const = 0;

  // Trains on one stage's train split for `epochs`; returns the per-epoch
  // mean training loss (the convergence curve of Fig. 8).
  virtual std::vector<float> TrainStage(const data::StDataset& train, int64_t epochs) = 0;

  // Trains with validation-based early stopping (Algorithm 1 trains "while
  // not converge"): stops after `patience` epochs without a new best
  // validation MAE and restores the best parameters. The default ignores the
  // validation split and trains for `max_epochs` (right for closed-form
  // models like ARIMA).
  virtual std::vector<float> TrainStageWithValidation(const data::StDataset& train,
                                                      const data::StDataset& val,
                                                      int64_t max_epochs, int64_t patience) {
    (void)val;
    (void)patience;
    return TrainStage(train, max_epochs);
  }

  // Answers a batched forecast query: [B, M, N, C] -> [B, H, N, 1] in
  // normalized space, stamping the model version/stage into the response.
  // Const so a predictor (or an immutable weight snapshot wrapping one) can
  // serve many reader threads concurrently; recoverable problems (bad
  // horizon, malformed batch) come back as an error Status instead of
  // aborting the server.
  virtual Status Predict(const PredictRequest& request, PredictResponse* response) const = 0;

  // Deprecated shim for the pre-serving API: full-horizon prediction
  // [B, M, N, C] -> [B, N_out, N, 1], aborting on error. Prefer the
  // Status-returning overload; subclasses re-expose this with
  // `using core::StPredictor::Predict;` (C++ name hiding).
  Tensor Predict(const Tensor& inputs) const;

  // --- Crash-safety hooks (no-ops for models without checkpoint support) ---

  // Called by the protocol runner before each stage with the stage's index,
  // so checkpoint-aware models can tag their progress cursor.
  virtual void BeginStage(int64_t stage_index) { (void)stage_index; }

  // First stage index that still needs training. A model restored from a
  // checkpoint returns the stage its cursor points at; the protocol runner
  // skips training for earlier stages (their effect is already baked into
  // the restored parameters and replay buffer).
  virtual int64_t ResumeStageIndex() const { return 0; }

  // True when the last TrainStage was interrupted (cooperative fault-injection
  // stop). The protocol runner stops the stage loop instead of evaluating a
  // half-trained stage.
  virtual bool TrainingInterrupted() const { return false; }
};

// Shared tail of every Predict implementation: validates the requested
// horizon against the model's full output window `full` ([B, N_out, N, 1]),
// slices the leading `horizon` steps when a partial window was asked for and
// moves the result into `response->predictions`. Version/stage stamping
// remains the implementation's responsibility.
Status FinishPrediction(const PredictRequest& request, Tensor full, PredictResponse* response);

// Mean absolute error of `model` on `dataset` in normalized space (no
// denormalization; used for early stopping).
double ValidationMae(const StPredictor& model, const data::StDataset& dataset,
                     int64_t batch_size = 16);

// Evaluates `model` over every window of `test`, denormalizing predictions
// and targets with `normalizer` (the paper reports MAE/RMSE in data units).
data::EvalMetrics EvaluatePredictor(const StPredictor& model, const data::StDataset& test,
                                    const data::MinMaxNormalizer& normalizer,
                                    int64_t target_channel, int64_t batch_size = 16);

// Same, but accumulates into `accumulator` so several test sets can be
// pooled (the seen-so-far continual evaluation protocol).
void EvaluatePredictorInto(const StPredictor& model, const data::StDataset& test,
                           const data::MinMaxNormalizer& normalizer, int64_t target_channel,
                           int64_t batch_size, data::MetricsAccumulator* accumulator);

}  // namespace core
}  // namespace urcl

#endif  // URCL_CORE_PREDICTOR_H_
