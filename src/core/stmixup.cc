#include "core/stmixup.h"

#include <vector>

#include "common/check.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace core {
namespace {

// Repeats/cycles rows of `batch` ([K, ...]) until it has `target_rows` rows.
Tensor CycleRows(const Tensor& batch, int64_t target_rows) {
  const int64_t rows = batch.dim(0);
  if (rows == target_rows) return batch;
  std::vector<Tensor> slices;
  slices.reserve(static_cast<size_t>(target_rows));
  std::vector<int64_t> sizes = batch.shape().dims();
  sizes[0] = 1;
  for (int64_t i = 0; i < target_rows; ++i) {
    std::vector<int64_t> starts(static_cast<size_t>(batch.rank()), 0);
    starts[0] = i % rows;
    slices.push_back(ops::Slice(batch, starts, sizes));
  }
  return ops::Concat(slices, 0);
}

}  // namespace

MixupResult StMixup(const Tensor& current_inputs, const Tensor& current_targets,
                    const Tensor& replay_inputs, const Tensor& replay_targets, float alpha,
                    Rng& rng) {
  URCL_CHECK_GT(alpha, 0.0f) << "mixup alpha must be positive";
  URCL_CHECK_EQ(current_inputs.dim(0), current_targets.dim(0));
  URCL_CHECK_EQ(replay_inputs.dim(0), replay_targets.dim(0));
  URCL_CHECK_GT(replay_inputs.dim(0), 0) << "StMixup requires a non-empty replay batch";

  const int64_t batch = current_inputs.dim(0);
  const Tensor rx = CycleRows(replay_inputs, batch);
  const Tensor ry = CycleRows(replay_targets, batch);
  URCL_CHECK(rx.shape() == current_inputs.shape())
      << "replay inputs " << rx.shape().ToString() << " incompatible with current "
      << current_inputs.shape().ToString();
  URCL_CHECK(ry.shape() == current_targets.shape());

  // One lambda per observation-groundtruth pair (Eq. 4).
  Tensor lambda_x(Shape{batch, 1, 1, 1});
  float lambda_sum = 0.0f;
  for (int64_t b = 0; b < batch; ++b) {
    const float lambda = rng.Beta(alpha, alpha);
    lambda_x.FlatSet(b, lambda);
    lambda_sum += lambda;
  }
  const Tensor one_minus = ops::AddScalar(ops::Neg(lambda_x), 1.0f);
  MixupResult result;
  result.lambda = lambda_sum / static_cast<float>(batch);
  result.inputs = ops::Add(ops::Mul(current_inputs, lambda_x), ops::Mul(rx, one_minus));
  result.targets = ops::Add(ops::Mul(current_targets, lambda_x), ops::Mul(ry, one_minus));
  return result;
}

MixupResult ConcatBatches(const Tensor& current_inputs, const Tensor& current_targets,
                          const Tensor& replay_inputs, const Tensor& replay_targets) {
  URCL_CHECK_EQ(current_inputs.dim(0), current_targets.dim(0));
  URCL_CHECK_EQ(replay_inputs.dim(0), replay_targets.dim(0));
  MixupResult result;
  result.lambda = 1.0f;
  if (replay_inputs.dim(0) == 0) {
    result.inputs = current_inputs;
    result.targets = current_targets;
    return result;
  }
  result.inputs = ops::Concat({current_inputs, replay_inputs}, 0);
  result.targets = ops::Concat({current_targets, replay_targets}, 0);
  return result;
}

}  // namespace core
}  // namespace urcl
