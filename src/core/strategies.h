// Continual training protocols (Fig. 5 and Sec. V-B1): OneFitAll trains on
// the base set only; FinetuneST / replay-based training revisit the model on
// every incremental set. The replay behaviour itself lives inside the model
// (UrclTrainer with enable_replay); the protocol runner is shared.
#ifndef URCL_CORE_STRATEGIES_H_
#define URCL_CORE_STRATEGIES_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/predictor.h"
#include "data/stream.h"
#include "obs/learning.h"

namespace urcl {
namespace core {

enum class TrainingStrategy {
  kOneFitAll,   // train on B_set once, predict everything
  kContinual,   // (re)train on every stage (FinetuneST or URCL-replay)
};

enum class EvalMode {
  // After finishing stage k, evaluate on the pooled test splits of stages
  // 0..k — the continual-learning "accuracy over everything seen so far"
  // protocol, which is what makes forgetting visible (FinetuneST's scores
  // in Table II degrade on incremental sets even though it just trained on
  // them, because the earlier sets are forgotten).
  kSeenSoFar,
  // Evaluate on the current stage's test split only (plasticity view).
  kCurrentStage,
};

struct StageResult {
  std::string stage_name;
  data::EvalMetrics metrics;            // on the stage's test split
  double train_seconds = 0.0;           // wall clock spent training this stage
  double train_seconds_per_epoch = 0.0;
  double infer_seconds_per_observation = 0.0;
  std::vector<float> epoch_losses;      // convergence curve (Fig. 8)
};

struct ProtocolOptions {
  TrainingStrategy strategy = TrainingStrategy::kContinual;
  EvalMode eval_mode = EvalMode::kSeenSoFar;
  int64_t epochs_per_stage = 10;
  // When > 0, stages train with validation-based early stopping on the
  // stage's val split (max epochs_per_stage epochs, this patience).
  int64_t early_stopping_patience = 0;
  int64_t eval_batch_size = 16;
  // Structured-log hook: invoked once per trained epoch after the stage's
  // evaluation completes, with the epoch's mean training loss and the
  // finished StageResult (whose metrics/timings are the stage-end snapshot).
  // The examples wire this to a JSONL writer behind --log-jsonl.
  std::function<void(int64_t stage_index, int64_t epoch, float epoch_loss,
                     const StageResult& stage)>
      epoch_log;
  // Optional learning-quality recorder. Under kSeenSoFar evaluation the
  // runner fills its R[t][s] matrix (each earlier stage's holdout is scored
  // separately, then pooled — same total work) and re-exports the forgetting
  // / backward-transfer gauges after every stage. Owned by the caller.
  obs::LearningTelemetry* learning = nullptr;
  // When set (with `learning`), the telemetry JSON document is rewritten to
  // this path after every stage, so even an interrupted run leaves the
  // forgetting matrix of the stages it finished.
  std::string learning_json_path;
};

// Runs the protocol over every stage of `stream`; returns one result per
// stage, evaluated on that stage's test split in denormalized units.
std::vector<StageResult> RunContinualProtocol(StPredictor& model,
                                              const data::StreamSplitter& stream,
                                              const data::MinMaxNormalizer& normalizer,
                                              int64_t target_channel,
                                              const ProtocolOptions& options);

}  // namespace core
}  // namespace urcl

#endif  // URCL_CORE_STRATEGIES_H_
