// Attention-based backbone in the style of GeoMAN: spatial self-attention
// across sensors per time step followed by temporal attention pooling.
#ifndef URCL_CORE_GEOMAN_BACKBONE_H_
#define URCL_CORE_GEOMAN_BACKBONE_H_

#include <memory>

#include "core/backbone.h"
#include "nn/linear.h"

namespace urcl {
namespace core {

class GeomanEncoder : public StBackbone {
 public:
  GeomanEncoder(const BackboneConfig& config, Rng& rng);

  Variable Encode(const Variable& observations, const Tensor& adjacency) const override;
  Tensor EncodeInference(const Tensor& observations, const Tensor& adjacency) const override;

  int64_t latent_channels() const override { return config_.latent_channels; }
  int64_t latent_time() const override { return 1; }
  std::string name() const override { return "GeoMAN"; }

 private:
  BackboneConfig config_;
  std::unique_ptr<nn::Linear> input_projection_;
  std::unique_ptr<nn::Linear> query_;
  std::unique_ptr<nn::Linear> key_;
  std::unique_ptr<nn::Linear> value_;
  std::unique_ptr<nn::Linear> temporal_score_hidden_;
  std::unique_ptr<nn::Linear> temporal_score_out_;
  // Maps [attention context ; last-step features] to the latent width (the
  // recency anchor GeoMAN's decoder gets from the last hidden state).
  std::unique_ptr<nn::Linear> output_projection_;
};

}  // namespace core
}  // namespace urcl

#endif  // URCL_CORE_GEOMAN_BACKBONE_H_
