// Elastic Weight Consolidation (Kirkpatrick et al., the regularization-based
// continual-learning family discussed in the paper's related work, Sec. II-B).
// Provided as an extension so the replay-based URCL can be compared against a
// regularization-based alternative under the same protocol: after each stage,
// the diagonal Fisher information is estimated and subsequent stages pay a
// quadratic penalty lambda/2 * sum_i F_i (theta_i - theta*_i)^2 for moving
// parameters that mattered to earlier stages.
#ifndef URCL_CORE_EWC_H_
#define URCL_CORE_EWC_H_

#include <memory>
#include <string>
#include <vector>

#include "core/backbone.h"
#include "core/predictor.h"
#include "core/stdecoder.h"
#include "graph/sensor_network.h"
#include "nn/optimizer.h"

namespace urcl {
namespace core {

struct EwcConfig {
  BackboneType backbone = BackboneType::kGraphWaveNet;
  BackboneConfig encoder;
  int64_t decoder_hidden = 128;
  int64_t output_steps = 1;

  int64_t batch_size = 8;
  float learning_rate = 2e-3f;
  float grad_clip = 5.0f;
  int64_t max_batches_per_epoch = 40;

  // EWC strength and Fisher estimation budget.
  float ewc_lambda = 500.0f;
  int64_t fisher_batches = 8;

  uint64_t seed = 1;
};

class EwcTrainer : public StPredictor {
 public:
  EwcTrainer(const EwcConfig& config, const graph::SensorNetwork& network);

  std::string name() const override { return "EWC"; }

  // Trains with the task loss plus the EWC penalty (if any stage was
  // consolidated before), then consolidates this stage's Fisher information.
  std::vector<float> TrainStage(const data::StDataset& train, int64_t epochs) override;

  Status Predict(const PredictRequest& request, PredictResponse* response) const override;
  using StPredictor::Predict;  // re-expose the deprecated Tensor shim

  bool consolidated() const { return !fisher_.empty(); }

  // Current penalty value (diagnostics / tests).
  float PenaltyValue() const;

 private:
  // lambda/2 * sum_i F_i (theta_i - theta*_i)^2 as an autograd expression.
  autograd::Variable Penalty() const;

  // Accumulates squared task-loss gradients over `fisher_batches` batches.
  void Consolidate(const data::StDataset& train);

  EwcConfig config_;
  Rng rng_;
  Tensor adjacency_;
  std::unique_ptr<StBackbone> encoder_;
  std::unique_ptr<StDecoder> decoder_;
  std::vector<autograd::Variable> params_;
  std::unique_ptr<nn::Adam> optimizer_;
  std::vector<Tensor> fisher_;   // diagonal Fisher, per parameter
  std::vector<Tensor> anchors_;  // theta* from the last consolidation
};

}  // namespace core
}  // namespace urcl

#endif  // URCL_CORE_EWC_H_
