#include "core/strategies.h"

#include <cstdio>

#include "common/check.h"
#include "common/stopwatch.h"

namespace urcl {
namespace core {

std::vector<StageResult> RunContinualProtocol(StPredictor& model,
                                              const data::StreamSplitter& stream,
                                              const data::MinMaxNormalizer& normalizer,
                                              int64_t target_channel,
                                              const ProtocolOptions& options) {
  URCL_CHECK_GT(options.epochs_per_stage, 0);
  std::vector<StageResult> results;
  // A model restored from a checkpoint reports the first stage that still
  // needs training; earlier stages are already reflected in its state.
  const int64_t resume_from = model.ResumeStageIndex();
  for (int64_t i = 0; i < stream.NumStages(); ++i) {
    const data::StreamStage& stage = stream.Stage(i);
    StageResult result;
    result.stage_name = stage.name;
    model.BeginStage(i);

    const bool should_train =
        (options.strategy == TrainingStrategy::kContinual || i == 0) && i >= resume_from;
    if (should_train) {
      Stopwatch train_timer;
      if (options.early_stopping_patience > 0) {
        result.epoch_losses = model.TrainStageWithValidation(
            stage.train, stage.val, options.epochs_per_stage,
            options.early_stopping_patience);
      } else {
        result.epoch_losses = model.TrainStage(stage.train, options.epochs_per_stage);
      }
      result.train_seconds = train_timer.ElapsedSeconds();
      const size_t epochs_run =
          result.epoch_losses.empty() ? 1 : result.epoch_losses.size();
      result.train_seconds_per_epoch =
          result.train_seconds / static_cast<double>(epochs_run);
      if (model.TrainingInterrupted()) {
        // Cooperative fault-injection stop: surface the partial result and
        // bail out; the caller resumes from the last checkpoint.
        results.push_back(std::move(result));
        break;
      }
    }

    Stopwatch eval_timer;
    int64_t observations = 0;
    if (options.eval_mode == EvalMode::kSeenSoFar) {
      // Pool the test splits of every stage seen so far (0..i): this is the
      // evaluation that exposes catastrophic forgetting. Each stage is scored
      // into its own accumulator and merged, so per-stage MAE feeds the
      // forgetting matrix without a second evaluation pass.
      data::MetricsAccumulator accumulator;
      for (int64_t j = 0; j <= i; ++j) {
        data::MetricsAccumulator stage_accumulator;
        EvaluatePredictorInto(model, stream.Stage(j).test, normalizer, target_channel,
                              options.eval_batch_size, &stage_accumulator);
        observations += stream.Stage(j).test.NumSamples();
        if (options.learning != nullptr) {
          options.learning->Record(i, j, stage_accumulator.Result().mae);
        }
        accumulator.Merge(stage_accumulator);
      }
      result.metrics = accumulator.Result();
      if (options.learning != nullptr) {
        options.learning->ExportGauges();
        if (!options.learning_json_path.empty()) {
          const Status written = options.learning->WriteJson(options.learning_json_path);
          if (!written.ok()) {
            std::fprintf(stderr, "[urcl] learning telemetry write failed: %s\n",
                         written.message().c_str());
          }
        }
      }
    } else {
      result.metrics = EvaluatePredictor(model, stage.test, normalizer, target_channel,
                                         options.eval_batch_size);
      observations = stage.test.NumSamples();
      if (options.learning != nullptr) {
        options.learning->Record(i, i, result.metrics.mae);
      }
    }
    result.infer_seconds_per_observation =
        observations > 0 ? eval_timer.ElapsedSeconds() / static_cast<double>(observations) : 0.0;
    if (options.epoch_log) {
      for (size_t e = 0; e < result.epoch_losses.size(); ++e) {
        options.epoch_log(i, static_cast<int64_t>(e), result.epoch_losses[e], result);
      }
    }
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace core
}  // namespace urcl
