// RNN-based backbone in the style of DCRNN: a GRU whose gates are diffusion
// graph convolutions, unrolled over the M input steps.
#ifndef URCL_CORE_DCRNN_BACKBONE_H_
#define URCL_CORE_DCRNN_BACKBONE_H_

#include <memory>
#include <vector>

#include "core/backbone.h"
#include "nn/linear.h"

namespace urcl {
namespace core {

// Diffusion graph convolution for [B, N, F] node-feature tensors.
class NodeDiffusionConv : public nn::Module {
 public:
  NodeDiffusionConv(int64_t in_features, int64_t out_features, int64_t num_supports,
                    int64_t diffusion_steps, Rng& rng);

  // x: [B, N, F]; supports: [N, N] transition matrices.
  Variable Forward(const Variable& x, const std::vector<Tensor>& supports) const;
  // Tape-free forward (serving executor); bitwise-equal to Forward.
  Tensor InferForward(const Tensor& x, const std::vector<Tensor>& supports) const;

 private:
  int64_t in_features_;
  int64_t diffusion_steps_;
  int64_t num_supports_;
  std::unique_ptr<nn::Linear> projection_;
};

class DcrnnEncoder : public StBackbone {
 public:
  DcrnnEncoder(const BackboneConfig& config, Rng& rng);

  Variable Encode(const Variable& observations, const Tensor& adjacency) const override;
  Tensor EncodeInference(const Tensor& observations, const Tensor& adjacency) const override;

  int64_t latent_channels() const override { return config_.latent_channels; }
  int64_t latent_time() const override { return 1; }
  std::string name() const override { return "DCRNN"; }

 private:
  BackboneConfig config_;
  std::unique_ptr<NodeDiffusionConv> update_gate_;
  std::unique_ptr<NodeDiffusionConv> reset_gate_;
  std::unique_ptr<NodeDiffusionConv> candidate_;
  std::unique_ptr<nn::Linear> output_projection_;
};

}  // namespace core
}  // namespace urcl

#endif  // URCL_CORE_DCRNN_BACKBONE_H_
