#include "core/geoman_backbone.h"

#include <cmath>

#include "autograd/ops.h"
#include "common/check.h"

namespace urcl {
namespace core {

namespace ag = ::urcl::autograd;

GeomanEncoder::GeomanEncoder(const BackboneConfig& config, Rng& rng) : config_(config) {
  const int64_t h = config.hidden_channels;
  input_projection_ = std::make_unique<nn::Linear>(config.in_channels, h, rng);
  RegisterChild("input_projection", input_projection_.get());
  query_ = std::make_unique<nn::Linear>(h, h, rng, /*bias=*/false);
  RegisterChild("query", query_.get());
  key_ = std::make_unique<nn::Linear>(h, h, rng, /*bias=*/false);
  RegisterChild("key", key_.get());
  value_ = std::make_unique<nn::Linear>(h, h, rng, /*bias=*/false);
  RegisterChild("value", value_.get());
  temporal_score_hidden_ = std::make_unique<nn::Linear>(h, h, rng);
  RegisterChild("temporal_score_hidden", temporal_score_hidden_.get());
  temporal_score_out_ = std::make_unique<nn::Linear>(h, 1, rng);
  RegisterChild("temporal_score_out", temporal_score_out_.get());
  output_projection_ = std::make_unique<nn::Linear>(2 * h, config.latent_channels, rng);
  RegisterChild("output_projection", output_projection_.get());
}

Variable GeomanEncoder::Encode(const Variable& observations, const Tensor& adjacency) const {
  URCL_CHECK_EQ(observations.shape().rank(), 4) << "expected [B, M, N, C]";
  (void)adjacency;  // attention learns spatial structure directly
  const int64_t batch = observations.shape().dim(0);
  const int64_t steps = observations.shape().dim(1);
  const int64_t nodes = observations.shape().dim(2);
  URCL_CHECK_EQ(nodes, config_.num_nodes);
  const int64_t h = config_.hidden_channels;

  // Project features: [B, M, N, C] -> [B, M, N, H].
  Variable x = input_projection_->Forward(observations);

  // Spatial self-attention over the node axis, per (batch, step).
  Variable q = query_->Forward(x);
  Variable k = key_->Forward(x);
  Variable v = value_->Forward(x);
  const float scale = 1.0f / std::sqrt(static_cast<float>(h));
  // scores: [B, M, N, N]
  Variable scores = ag::MulScalar(ag::MatMul(q, ag::Transpose(k, {0, 1, 3, 2})), scale);
  Variable attn = ag::Softmax(scores, -1);
  Variable spatial = ag::MatMul(attn, v);  // [B, M, N, H]
  // Residual connection keeps per-node identity information.
  Variable mixed = ag::Add(x, spatial);

  // Temporal attention pooling: per node, weight the M steps.
  // [B, M, N, H] -> [B, N, M, H]
  Variable per_node = ag::Transpose(mixed, {0, 2, 1, 3});
  Variable score_hidden = ag::Tanh(temporal_score_hidden_->Forward(per_node));
  Variable logits = temporal_score_out_->Forward(score_hidden);  // [B, N, M, 1]
  Variable weights = ag::Softmax(ag::Reshape(logits, Shape{batch, nodes, steps}), -1);
  weights = ag::Reshape(weights, Shape{batch, nodes, steps, 1});
  Variable pooled = ag::Sum(ag::Mul(per_node, weights), {2});  // [B, N, H]

  // Recency anchor: concatenate the last time step's features so the
  // decoder always sees the most recent observation directly.
  Variable last = ag::Reshape(
      ag::Slice(mixed, {0, steps - 1, 0, 0}, {batch, 1, nodes, h}),
      Shape{batch, nodes, h});
  Variable context = ag::Concat({pooled, last}, -1);  // [B, N, 2H]

  // [B, N, 2H] -> [B, N, L] -> [B, L, N, 1]
  Variable latent = output_projection_->Forward(context);
  latent = ag::Transpose(latent, {0, 2, 1});
  return ag::Reshape(latent, Shape{batch, config_.latent_channels, nodes, 1});
}

}  // namespace core
}  // namespace urcl
