#include "core/geoman_backbone.h"

#include <cmath>

#include "autograd/ops.h"
#include "common/check.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace core {

namespace ag = ::urcl::autograd;
namespace top = ::urcl::ops;

GeomanEncoder::GeomanEncoder(const BackboneConfig& config, Rng& rng) : config_(config) {
  const int64_t h = config.hidden_channels;
  input_projection_ = std::make_unique<nn::Linear>(config.in_channels, h, rng);
  RegisterChild("input_projection", input_projection_.get());
  query_ = std::make_unique<nn::Linear>(h, h, rng, /*bias=*/false);
  RegisterChild("query", query_.get());
  key_ = std::make_unique<nn::Linear>(h, h, rng, /*bias=*/false);
  RegisterChild("key", key_.get());
  value_ = std::make_unique<nn::Linear>(h, h, rng, /*bias=*/false);
  RegisterChild("value", value_.get());
  temporal_score_hidden_ = std::make_unique<nn::Linear>(h, h, rng);
  RegisterChild("temporal_score_hidden", temporal_score_hidden_.get());
  temporal_score_out_ = std::make_unique<nn::Linear>(h, 1, rng);
  RegisterChild("temporal_score_out", temporal_score_out_.get());
  output_projection_ = std::make_unique<nn::Linear>(2 * h, config.latent_channels, rng);
  RegisterChild("output_projection", output_projection_.get());
}

Variable GeomanEncoder::Encode(const Variable& observations, const Tensor& adjacency) const {
  URCL_CHECK_EQ(observations.shape().rank(), 4) << "expected [B, M, N, C]";
  (void)adjacency;  // attention learns spatial structure directly
  const int64_t batch = observations.shape().dim(0);
  const int64_t steps = observations.shape().dim(1);
  const int64_t nodes = observations.shape().dim(2);
  URCL_CHECK_EQ(nodes, config_.num_nodes);
  const int64_t h = config_.hidden_channels;

  // Project features: [B, M, N, C] -> [B, M, N, H].
  Variable x = input_projection_->Forward(observations);

  // Spatial self-attention over the node axis, per (batch, step).
  Variable q = query_->Forward(x);
  Variable k = key_->Forward(x);
  Variable v = value_->Forward(x);
  const float scale = 1.0f / std::sqrt(static_cast<float>(h));
  // scores: [B, M, N, N]
  Variable scores = ag::MulScalar(ag::MatMul(q, ag::Transpose(k, {0, 1, 3, 2})), scale);
  Variable attn = ag::Softmax(scores, -1);
  Variable spatial = ag::MatMul(attn, v);  // [B, M, N, H]
  // Residual connection keeps per-node identity information.
  Variable mixed = ag::Add(x, spatial);

  // Temporal attention pooling: per node, weight the M steps.
  // [B, M, N, H] -> [B, N, M, H]
  Variable per_node = ag::Transpose(mixed, {0, 2, 1, 3});
  Variable score_hidden = ag::Tanh(temporal_score_hidden_->Forward(per_node));
  Variable logits = temporal_score_out_->Forward(score_hidden);  // [B, N, M, 1]
  Variable weights = ag::Softmax(ag::Reshape(logits, Shape{batch, nodes, steps}), -1);
  weights = ag::Reshape(weights, Shape{batch, nodes, steps, 1});
  Variable pooled = ag::Sum(ag::Mul(per_node, weights), {2});  // [B, N, H]

  // Recency anchor: concatenate the last time step's features so the
  // decoder always sees the most recent observation directly.
  Variable last = ag::Reshape(
      ag::Slice(mixed, {0, steps - 1, 0, 0}, {batch, 1, nodes, h}),
      Shape{batch, nodes, h});
  Variable context = ag::Concat({pooled, last}, -1);  // [B, N, 2H]

  // [B, N, 2H] -> [B, N, L] -> [B, L, N, 1]
  Variable latent = output_projection_->Forward(context);
  latent = ag::Transpose(latent, {0, 2, 1});
  return ag::Reshape(latent, Shape{batch, config_.latent_channels, nodes, 1});
}

Tensor GeomanEncoder::EncodeInference(const Tensor& observations,
                                      const Tensor& adjacency) const {
  URCL_CHECK_EQ(observations.shape().rank(), 4) << "expected [B, M, N, C]";
  (void)adjacency;  // attention learns spatial structure directly
  const int64_t batch = observations.shape().dim(0);
  const int64_t steps = observations.shape().dim(1);
  const int64_t nodes = observations.shape().dim(2);
  URCL_CHECK_EQ(nodes, config_.num_nodes);
  const int64_t h = config_.hidden_channels;

  // Project features: [B, M, N, C] -> [B, M, N, H].
  const Tensor x = input_projection_->InferForward(observations);

  // Spatial self-attention over the node axis, per (batch, step).
  const Tensor q = query_->InferForward(x);
  const Tensor k = key_->InferForward(x);
  const Tensor v = value_->InferForward(x);
  const float scale = 1.0f / std::sqrt(static_cast<float>(h));
  const Tensor scores = top::MulScalar(top::MatMul(q, top::Transpose(k, {0, 1, 3, 2})), scale);
  const Tensor attn = top::Softmax(scores, -1);
  const Tensor spatial = top::MatMul(attn, v);  // [B, M, N, H]
  const Tensor mixed = top::Add(x, spatial);

  // Temporal attention pooling: per node, weight the M steps.
  const Tensor per_node = top::Transpose(mixed, {0, 2, 1, 3});
  const Tensor score_hidden = top::Tanh(temporal_score_hidden_->InferForward(per_node));
  const Tensor logits = temporal_score_out_->InferForward(score_hidden);  // [B, N, M, 1]
  Tensor weights = top::Softmax(logits.Reshape(Shape{batch, nodes, steps}), -1);
  weights = weights.Reshape(Shape{batch, nodes, steps, 1});
  const Tensor pooled = top::Sum(top::Mul(per_node, weights), {2});  // [B, N, H]

  const Tensor last = top::Slice(mixed, {0, steps - 1, 0, 0}, {batch, 1, nodes, h})
                          .Reshape(Shape{batch, nodes, h});
  const Tensor context = top::Concat({pooled, last}, -1);  // [B, N, 2H]

  // [B, N, 2H] -> [B, N, L] -> [B, L, N, 1]
  Tensor latent = output_projection_->InferForward(context);
  latent = top::Transpose(latent, {0, 2, 1});
  return latent.Reshape(Shape{batch, config_.latent_channels, nodes, 1});
}

}  // namespace core
}  // namespace urcl
