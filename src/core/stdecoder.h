// The STDecoder (Fig. 4): stacked feed-forward layers with ReLU that map the
// encoder latent to the prediction (Eq. 27).
#ifndef URCL_CORE_STDECODER_H_
#define URCL_CORE_STDECODER_H_

#include <memory>

#include "nn/linear.h"
#include "nn/module.h"

namespace urcl {
namespace core {

using autograd::Variable;

class StDecoder : public nn::Module {
 public:
  // Decodes latent [B, H, N, T'] to predictions [B, output_steps, N, 1].
  StDecoder(int64_t latent_channels, int64_t latent_time, int64_t decoder_hidden,
            int64_t output_steps, Rng& rng);

  Variable Forward(const Variable& latent) const;
  // Tape-free forward (serving executor); bitwise-equal to Forward.
  Tensor InferForward(const Tensor& latent) const;

  int64_t output_steps() const { return output_steps_; }

 private:
  int64_t latent_channels_;
  int64_t latent_time_;
  int64_t output_steps_;
  std::unique_ptr<nn::Mlp> mlp_;
};

}  // namespace core
}  // namespace urcl

#endif  // URCL_CORE_STDECODER_H_
