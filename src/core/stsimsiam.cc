#include "core/stsimsiam.h"

#include "autograd/variable.h"
#include "common/check.h"
#include "nn/loss.h"

namespace urcl {
namespace core {

StSimSiam::StSimSiam(StBackbone* encoder, int64_t proj_hidden, int64_t proj_dim,
                     float temperature, Rng& rng)
    : encoder_(encoder), temperature_(temperature) {
  URCL_CHECK(encoder != nullptr);
  URCL_CHECK_GT(temperature, 0.0f);
  // The projection head maps back to the embedding width (as in SimSiam's
  // predictor) so that C(p, z) similarities are well-defined; proj_dim is
  // accepted for API compatibility but the output width is the latent width.
  (void)proj_dim;
  projector_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{encoder->latent_channels(), proj_hidden,
                           encoder->latent_channels()},
      rng, nn::Activation::kRelu);
  RegisterChild("projector", projector_.get());
}

Variable StSimSiam::Embed(const augment::AugmentedView& view) const {
  Variable observations(view.observations, /*requires_grad=*/false);
  return StBackbone::PoolLatent(encoder_->Encode(observations, view.adjacency));
}

Variable StSimSiam::Project(const Variable& embedding) const {
  return projector_->Forward(embedding);
}

Variable StSimSiam::Loss(const augment::AugmentedView& view1,
                         const augment::AugmentedView& view2) const {
  const Variable z1 = Embed(view1);
  const Variable z2 = Embed(view2);
  const Variable p1 = Project(z1);
  const Variable p2 = Project(z2);
  return nn::GraphClLoss(p1, p2, z1, z2, temperature_);
}

}  // namespace core
}  // namespace urcl
