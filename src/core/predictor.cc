#include "core/predictor.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace core {

Tensor StPredictor::Predict(const Tensor& inputs) const {
  PredictRequest request;
  request.inputs = inputs;
  PredictResponse response;
  const Status status = Predict(request, &response);
  URCL_CHECK(status.ok()) << name() << ": Predict failed: " << status.message();
  return response.predictions;
}

Status FinishPrediction(const PredictRequest& request, Tensor full, PredictResponse* response) {
  if (response == nullptr) return Status::InvalidArgument("PredictResponse must not be null");
  URCL_CHECK_EQ(full.shape().rank(), 4) << "predictions must be [B, N_out, N, 1]";
  const int64_t output_steps = full.shape().dim(1);
  if (request.horizon < 0 || request.horizon > output_steps) {
    return Status::InvalidArgument(
        "requested horizon " + std::to_string(request.horizon) +
                         " outside the model's output window [0, " +
                         std::to_string(output_steps) + "]");
  }
  if (request.horizon == 0 || request.horizon == output_steps) {
    response->predictions = std::move(full);
    return Status::Ok();
  }
  response->predictions =
      ops::Slice(full, {0, 0, 0, 0},
                 {full.shape().dim(0), request.horizon, full.shape().dim(2), full.shape().dim(3)});
  return Status::Ok();
}

void EvaluatePredictorInto(const StPredictor& model, const data::StDataset& test,
                           const data::MinMaxNormalizer& normalizer, int64_t target_channel,
                           int64_t batch_size, data::MetricsAccumulator* accumulator) {
  URCL_CHECK_GT(batch_size, 0);
  URCL_CHECK(accumulator != nullptr);
  const int64_t num_samples = test.NumSamples();
  URCL_CHECK_GT(num_samples, 0) << "test split has no complete windows";
  for (int64_t start = 0; start < num_samples; start += batch_size) {
    const int64_t count = std::min(batch_size, num_samples - start);
    std::vector<int64_t> indices(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) indices[static_cast<size_t>(i)] = start + i;
    const auto [inputs, targets] = test.MakeBatch(indices);
    const Tensor predictions = model.Predict(inputs);
    URCL_CHECK(predictions.shape() == targets.shape())
        << model.name() << " produced " << predictions.shape().ToString() << ", expected "
        << targets.shape().ToString();
    accumulator->Add(normalizer.InverseTransformChannel(predictions, target_channel),
                     normalizer.InverseTransformChannel(targets, target_channel));
  }
}

double ValidationMae(const StPredictor& model, const data::StDataset& dataset,
                     int64_t batch_size) {
  URCL_CHECK_GT(batch_size, 0);
  const int64_t num_samples = dataset.NumSamples();
  URCL_CHECK_GT(num_samples, 0) << "validation split has no complete windows";
  data::MetricsAccumulator accumulator;
  for (int64_t start = 0; start < num_samples; start += batch_size) {
    const int64_t count = std::min(batch_size, num_samples - start);
    std::vector<int64_t> indices(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) indices[static_cast<size_t>(i)] = start + i;
    const auto [inputs, targets] = dataset.MakeBatch(indices);
    accumulator.Add(model.Predict(inputs), targets);
  }
  return accumulator.Result().mae;
}

data::EvalMetrics EvaluatePredictor(const StPredictor& model, const data::StDataset& test,
                                    const data::MinMaxNormalizer& normalizer,
                                    int64_t target_channel, int64_t batch_size) {
  data::MetricsAccumulator accumulator;
  EvaluatePredictorInto(model, test, normalizer, target_channel, batch_size, &accumulator);
  return accumulator.Result();
}

}  // namespace core
}  // namespace urcl
