#include "core/predictor.h"

#include <algorithm>

#include "common/check.h"

namespace urcl {
namespace core {

void EvaluatePredictorInto(StPredictor& model, const data::StDataset& test,
                           const data::MinMaxNormalizer& normalizer, int64_t target_channel,
                           int64_t batch_size, data::MetricsAccumulator* accumulator) {
  URCL_CHECK_GT(batch_size, 0);
  URCL_CHECK(accumulator != nullptr);
  const int64_t num_samples = test.NumSamples();
  URCL_CHECK_GT(num_samples, 0) << "test split has no complete windows";
  for (int64_t start = 0; start < num_samples; start += batch_size) {
    const int64_t count = std::min(batch_size, num_samples - start);
    std::vector<int64_t> indices(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) indices[static_cast<size_t>(i)] = start + i;
    const auto [inputs, targets] = test.MakeBatch(indices);
    const Tensor predictions = model.Predict(inputs);
    URCL_CHECK(predictions.shape() == targets.shape())
        << model.name() << " produced " << predictions.shape().ToString() << ", expected "
        << targets.shape().ToString();
    accumulator->Add(normalizer.InverseTransformChannel(predictions, target_channel),
                     normalizer.InverseTransformChannel(targets, target_channel));
  }
}

double ValidationMae(StPredictor& model, const data::StDataset& dataset, int64_t batch_size) {
  URCL_CHECK_GT(batch_size, 0);
  const int64_t num_samples = dataset.NumSamples();
  URCL_CHECK_GT(num_samples, 0) << "validation split has no complete windows";
  data::MetricsAccumulator accumulator;
  for (int64_t start = 0; start < num_samples; start += batch_size) {
    const int64_t count = std::min(batch_size, num_samples - start);
    std::vector<int64_t> indices(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) indices[static_cast<size_t>(i)] = start + i;
    const auto [inputs, targets] = dataset.MakeBatch(indices);
    accumulator.Add(model.Predict(inputs), targets);
  }
  return accumulator.Result().mae;
}

data::EvalMetrics EvaluatePredictor(StPredictor& model, const data::StDataset& test,
                                    const data::MinMaxNormalizer& normalizer,
                                    int64_t target_channel, int64_t batch_size) {
  data::MetricsAccumulator accumulator;
  EvaluatePredictorInto(model, test, normalizer, target_channel, batch_size, &accumulator);
  return accumulator.Result();
}

}  // namespace core
}  // namespace urcl
