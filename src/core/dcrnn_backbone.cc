#include "core/dcrnn_backbone.h"

#include "autograd/ops.h"
#include "common/check.h"
#include "graph/transition.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace core {

namespace ag = ::urcl::autograd;
namespace top = ::urcl::ops;

NodeDiffusionConv::NodeDiffusionConv(int64_t in_features, int64_t out_features,
                                     int64_t num_supports, int64_t diffusion_steps, Rng& rng)
    : in_features_(in_features),
      diffusion_steps_(diffusion_steps),
      num_supports_(num_supports) {
  URCL_CHECK_GE(diffusion_steps, 1);
  URCL_CHECK_GE(num_supports, 1);
  const int64_t num_terms = 1 + num_supports * diffusion_steps;
  projection_ = std::make_unique<nn::Linear>(in_features * num_terms, out_features, rng);
  RegisterChild("projection", projection_.get());
}

Variable NodeDiffusionConv::Forward(const Variable& x,
                                    const std::vector<Tensor>& supports) const {
  URCL_CHECK_EQ(x.shape().rank(), 3) << "NodeDiffusionConv expects [B, N, F]";
  URCL_CHECK_EQ(x.shape().dim(2), in_features_);
  URCL_CHECK_EQ(static_cast<int64_t>(supports.size()), num_supports_);
  std::vector<Variable> terms;
  terms.push_back(x);
  for (const Tensor& support : supports) {
    Variable hop = x;
    Variable p(support, /*requires_grad=*/false);
    for (int64_t k = 0; k < diffusion_steps_; ++k) {
      hop = ag::MatMul(p, hop);  // [N, N] x [B, N, F] -> [B, N, F]
      terms.push_back(hop);
    }
  }
  return projection_->Forward(ag::Concat(terms, /*axis=*/-1));
}

Tensor NodeDiffusionConv::InferForward(const Tensor& x,
                                       const std::vector<Tensor>& supports) const {
  URCL_CHECK_EQ(x.shape().rank(), 3) << "NodeDiffusionConv expects [B, N, F]";
  URCL_CHECK_EQ(x.shape().dim(2), in_features_);
  URCL_CHECK_EQ(static_cast<int64_t>(supports.size()), num_supports_);
  std::vector<Tensor> terms;
  terms.push_back(x);
  for (const Tensor& support : supports) {
    Tensor hop = x;
    for (int64_t k = 0; k < diffusion_steps_; ++k) {
      hop = top::MatMul(support, hop);  // [N, N] x [B, N, F] -> [B, N, F]
      terms.push_back(hop);
    }
  }
  return projection_->InferForward(top::Concat(terms, /*axis=*/-1));
}

DcrnnEncoder::DcrnnEncoder(const BackboneConfig& config, Rng& rng) : config_(config) {
  const int64_t num_supports = config.directed_graph ? 2 : 1;
  const int64_t gate_in = config.in_channels + config.hidden_channels;
  update_gate_ = std::make_unique<NodeDiffusionConv>(gate_in, config.hidden_channels,
                                                     num_supports, config.diffusion_steps, rng);
  RegisterChild("update_gate", update_gate_.get());
  reset_gate_ = std::make_unique<NodeDiffusionConv>(gate_in, config.hidden_channels,
                                                    num_supports, config.diffusion_steps, rng);
  RegisterChild("reset_gate", reset_gate_.get());
  candidate_ = std::make_unique<NodeDiffusionConv>(gate_in, config.hidden_channels,
                                                   num_supports, config.diffusion_steps, rng);
  RegisterChild("candidate", candidate_.get());
  output_projection_ =
      std::make_unique<nn::Linear>(config.hidden_channels, config.latent_channels, rng);
  RegisterChild("output_projection", output_projection_.get());
}

Variable DcrnnEncoder::Encode(const Variable& observations, const Tensor& adjacency) const {
  URCL_CHECK_EQ(observations.shape().rank(), 4) << "expected [B, M, N, C]";
  const int64_t batch = observations.shape().dim(0);
  const int64_t steps = observations.shape().dim(1);
  const int64_t nodes = observations.shape().dim(2);
  const int64_t channels = observations.shape().dim(3);
  URCL_CHECK_EQ(nodes, config_.num_nodes);
  URCL_CHECK_EQ(channels, config_.in_channels);

  const std::vector<Tensor> supports =
      graph::BuildSupportsDense(adjacency, config_.directed_graph);

  Variable h(Tensor::Zeros(Shape{batch, nodes, config_.hidden_channels}),
             /*requires_grad=*/false);
  for (int64_t t = 0; t < steps; ++t) {
    Variable x_t = ag::Reshape(
        ag::Slice(observations, {0, t, 0, 0}, {batch, 1, nodes, channels}),
        Shape{batch, nodes, channels});
    Variable xh = ag::Concat({x_t, h}, -1);
    Variable u = ag::Sigmoid(update_gate_->Forward(xh, supports));
    Variable r = ag::Sigmoid(reset_gate_->Forward(xh, supports));
    Variable x_rh = ag::Concat({x_t, ag::Mul(r, h)}, -1);
    Variable c = ag::Tanh(candidate_->Forward(x_rh, supports));
    // h = u * h + (1 - u) * c
    Variable one_minus_u = ag::AddScalar(ag::Neg(u), 1.0f);
    h = ag::Add(ag::Mul(u, h), ag::Mul(one_minus_u, c));
  }

  // [B, N, H] -> project -> [B, N, L] -> [B, L, N, 1]
  Variable latent = output_projection_->Forward(h);
  latent = ag::Transpose(latent, {0, 2, 1});
  return ag::Reshape(latent,
                     Shape{batch, config_.latent_channels, nodes, 1});
}

Tensor DcrnnEncoder::EncodeInference(const Tensor& observations,
                                     const Tensor& adjacency) const {
  URCL_CHECK_EQ(observations.shape().rank(), 4) << "expected [B, M, N, C]";
  const int64_t batch = observations.shape().dim(0);
  const int64_t steps = observations.shape().dim(1);
  const int64_t nodes = observations.shape().dim(2);
  const int64_t channels = observations.shape().dim(3);
  URCL_CHECK_EQ(nodes, config_.num_nodes);
  URCL_CHECK_EQ(channels, config_.in_channels);

  const std::vector<Tensor> supports =
      graph::BuildSupportsDense(adjacency, config_.directed_graph);

  Tensor h = Tensor::Zeros(Shape{batch, nodes, config_.hidden_channels});
  for (int64_t t = 0; t < steps; ++t) {
    const Tensor x_t =
        top::Slice(observations, {0, t, 0, 0}, {batch, 1, nodes, channels})
            .Reshape(Shape{batch, nodes, channels});
    const Tensor xh = top::Concat({x_t, h}, -1);
    const Tensor u = top::Sigmoid(update_gate_->InferForward(xh, supports));
    const Tensor r = top::Sigmoid(reset_gate_->InferForward(xh, supports));
    const Tensor x_rh = top::Concat({x_t, top::Mul(r, h)}, -1);
    const Tensor c = top::Tanh(candidate_->InferForward(x_rh, supports));
    // h = u * h + (1 - u) * c
    const Tensor one_minus_u = top::AddScalar(top::Neg(u), 1.0f);
    h = top::Add(top::Mul(u, h), top::Mul(one_minus_u, c));
  }

  // [B, N, H] -> project -> [B, N, L] -> [B, L, N, 1]
  Tensor latent = output_projection_->InferForward(h);
  latent = top::Transpose(latent, {0, 2, 1});
  return latent.Reshape(Shape{batch, config_.latent_channels, nodes, 1});
}

}  // namespace core
}  // namespace urcl
