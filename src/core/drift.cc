#include "core/drift.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace core {

PageHinkleyDetector::PageHinkleyDetector(const PageHinkleyConfig& config) : config_(config) {
  URCL_CHECK_GE(config.delta, 0.0f);
  URCL_CHECK_GT(config.threshold, 0.0f);
  URCL_CHECK_GE(config.warmup, 1);
}

void PageHinkleyDetector::Reset() {
  count_ = 0;
  mean_ = 0.0;
  cumulative_ = 0.0;
  minimum_ = 0.0;
}

bool PageHinkleyDetector::Update(float value) {
  URCL_CHECK(std::isfinite(value)) << "drift detector fed a non-finite value";
  ++count_;
  // Running mean of the statistic.
  mean_ += (value - mean_) / static_cast<double>(count_);
  // Cumulative deviation above the mean (minus the tolerated delta).
  cumulative_ += value - mean_ - config_.delta;
  minimum_ = std::min(minimum_, cumulative_);
  const bool metrics = obs::MetricsEnabled();
  const double score = cumulative_ - minimum_;
  if (metrics) {
    auto& registry = obs::MetricsRegistry::Get();
    registry.GetCounter("urcl.drift.samples").Add(1);
    registry.GetGauge("urcl.drift.cumulative").Set(score);
    // Score and threshold exported side by side so a dashboard can plot
    // head-room (how close the stream is to an alarm), not just alarms.
    registry.GetGauge("urcl.drift.threshold").Set(static_cast<double>(config_.threshold));
  }
  if (count_ < config_.warmup) return false;
  if (score > config_.threshold) {
    const int64_t samples_at_alarm = count_;
    Reset();
    if (metrics) obs::MetricsRegistry::Get().GetCounter("urcl.drift.alarms").Add(1);
    obs::RecordFlightEvent(obs::FlightEventType::kDriftTrigger, samples_at_alarm,
                           static_cast<int64_t>(score * 1e6), "page-hinkley alarm");
    return true;
  }
  return false;
}

OnlineLearner::OnlineLearner(const OnlineLearnerConfig& config,
                             const graph::SensorNetwork& network)
    : config_(config),
      trainer_(std::make_unique<UrclTrainer>(config.model, network)),
      detector_(config.drift) {
  URCL_CHECK_GE(config.retrain_window_steps,
                config.window.input_steps + config.window.output_steps + 4)
      << "retrain window too short to form training samples";
  URCL_CHECK_GE(config.max_history_steps, config.retrain_window_steps);
}

Tensor OnlineLearner::HistoryWindow(int64_t steps) const {
  URCL_CHECK_LE(steps, static_cast<int64_t>(history_.size()));
  std::vector<Tensor> rows(history_.end() - steps, history_.end());
  return ops::Stack(rows, 0);  // [steps, N, C]
}

bool OnlineLearner::CanPredict() const {
  return trained_ && static_cast<int64_t>(history_.size()) >= config_.window.input_steps;
}

Tensor OnlineLearner::PredictNext() {
  URCL_CHECK(CanPredict()) << "OnlineLearner cannot predict yet";
  Tensor window = HistoryWindow(config_.window.input_steps);
  Tensor batch = window.Reshape(Shape{1, window.dim(0), window.dim(1), window.dim(2)});
  core::PredictRequest request;
  request.inputs = batch;
  request.horizon = 1;  // only the next step feeds the drift detector
  core::PredictResponse response;
  const Status status = trainer_->Predict(request, &response);
  URCL_CHECK(status.ok()) << "OnlineLearner prediction failed: " << status.message();
  const Tensor& prediction = response.predictions;  // [1, 1, N, 1]
  pending_prediction_ = prediction.Reshape(Shape{1, prediction.dim(2), 1});
  has_pending_ = true;
  return pending_prediction_;
}

void OnlineLearner::Retrain() {
  const int64_t steps = std::min<int64_t>(config_.retrain_window_steps,
                                          static_cast<int64_t>(history_.size()));
  data::StDataset chunk(HistoryWindow(steps), config_.window);
  if (chunk.NumSamples() < 2) return;
  trainer_->TrainStage(chunk, config_.retrain_epochs);
  trained_ = true;
  ++retrain_count_;
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Get().GetCounter("urcl.drift.retrains").Add(1);
  }
}

bool OnlineLearner::Ingest(const Tensor& observation) {
  URCL_CHECK_EQ(observation.rank(), 2) << "observation must be [N, C]";

  bool drift = false;
  if (has_pending_) {
    // Score the outstanding prediction against this ground truth.
    Tensor truth = ops::Slice(observation, {0, config_.window.target_channel},
                              {observation.dim(0), 1})
                       .Reshape(pending_prediction_.shape());
    const float error = ops::Mean(ops::Abs(ops::Sub(pending_prediction_, truth))).Item();
    abs_error_sum_ += error;
    ++error_count_;
    drift = detector_.Update(error);
    if (drift) ++drift_alarms_;
    has_pending_ = false;
  }

  history_.push_back(observation.Clone());
  while (static_cast<int64_t>(history_.size()) > config_.max_history_steps) {
    history_.pop_front();
  }
  ++steps_seen_;

  bool retrained = false;
  const bool first_train =
      !trained_ && steps_seen_ >= config_.min_steps_before_first_train;
  const bool periodic = config_.periodic_retrain_every > 0 && trained_ &&
                        steps_seen_ % config_.periodic_retrain_every == 0;
  if (first_train || periodic || (drift && trained_)) {
    Retrain();
    retrained = true;
  }
  return retrained;
}

double OnlineLearner::live_mae() const {
  return error_count_ > 0 ? abs_error_sum_ / static_cast<double>(error_count_) : 0.0;
}

}  // namespace core
}  // namespace urcl
