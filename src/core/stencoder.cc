#include "core/stencoder.h"

#include "autograd/ops.h"
#include "common/check.h"
#include "graph/transition.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace core {

namespace ag = ::urcl::autograd;
namespace top = ::urcl::ops;

GraphWaveNetEncoder::GraphWaveNetEncoder(const BackboneConfig& config, Rng& rng)
    : config_(config) {
  URCL_CHECK_GT(config.num_nodes, 0);
  URCL_CHECK_GT(config.num_layers, 0);
  URCL_CHECK_GT(config.input_steps, config.num_layers)
      << "input window must exceed the number of ST layers";

  input_projection_ =
      std::make_unique<nn::ChannelLinear>(config.in_channels, config.hidden_channels, rng);
  RegisterChild("input_projection", input_projection_.get());

  // Dilations cycle through {1, 2, 4} while the remaining time budget allows;
  // each layer consumes dilation * (kernel-1) = dilation steps (kernel 2).
  int64_t remaining = config.input_steps - 1;  // keep at least one output step
  const int64_t cycle[3] = {1, 2, 4};
  const int64_t num_static_supports =
      config.use_static_supports ? (config.directed_graph ? 2 : 1) : 0;
  URCL_CHECK(config.use_static_supports || config.use_adaptive_adjacency)
      << "encoder needs at least one of static supports / adaptive adjacency";
  for (int64_t layer = 0; layer < config.num_layers; ++layer) {
    int64_t dilation = cycle[layer % 3];
    const int64_t layers_left = config.num_layers - layer - 1;
    // Every later layer needs at least 1 step of budget.
    while (dilation > remaining - layers_left && dilation > 1) dilation /= 2;
    URCL_CHECK_GE(remaining - layers_left, 1)
        << "input_steps too small for " << config.num_layers << " layers";
    dilations_.push_back(dilation);
    remaining -= dilation;

    tcn_layers_.push_back(std::make_unique<nn::GatedTcn>(
        config.hidden_channels, config.hidden_channels, /*kernel_size=*/2, dilation, rng));
    RegisterChild("tcn" + std::to_string(layer), tcn_layers_.back().get());
    gcn_layers_.push_back(std::make_unique<nn::DiffusionGcn>(
        config.hidden_channels, config.hidden_channels, num_static_supports,
        config.use_adaptive_adjacency, config.diffusion_steps, rng));
    RegisterChild("gcn" + std::to_string(layer), gcn_layers_.back().get());
    if (config.use_layer_norm) {
      norm_layers_.push_back(std::make_unique<nn::LayerNorm>(config.hidden_channels, rng));
      RegisterChild("norm" + std::to_string(layer), norm_layers_.back().get());
    }
  }
  latent_time_ = remaining + 1;

  if (config.use_adaptive_adjacency) {
    adaptive_ = std::make_unique<nn::AdaptiveAdjacency>(config.num_nodes,
                                                        config.adaptive_embedding_dim, rng);
    RegisterChild("adaptive", adaptive_.get());
  }

  output_projection_ =
      std::make_unique<nn::ChannelLinear>(config.hidden_channels, config.latent_channels, rng);
  RegisterChild("output_projection", output_projection_.get());
}

Variable GraphWaveNetEncoder::Encode(const Variable& observations,
                                     const Tensor& adjacency) const {
  URCL_CHECK_EQ(observations.shape().rank(), 4) << "expected [B, M, N, C]";
  URCL_CHECK_EQ(observations.shape().dim(1), config_.input_steps);
  URCL_CHECK_EQ(observations.shape().dim(2), config_.num_nodes);
  URCL_CHECK_EQ(observations.shape().dim(3), config_.in_channels);

  std::vector<Tensor> supports;
  if (config_.use_static_supports) {
    supports = graph::BuildSupportsDense(adjacency, config_.directed_graph);
  }
  Variable adaptive;  // invalid unless enabled
  if (config_.use_adaptive_adjacency) adaptive = adaptive_->Forward();

  // [B, M, N, C] -> [B, C, N, M]
  Variable h = ag::Transpose(observations, {0, 3, 2, 1});
  h = input_projection_->Forward(h);

  for (size_t layer = 0; layer < tcn_layers_.size(); ++layer) {
    Variable temporal = tcn_layers_[layer]->Forward(h);
    Variable spatial = gcn_layers_[layer]->Forward(temporal, supports, adaptive);
    // Residual: align the input in time by slicing off the consumed prefix.
    const int64_t t_out = spatial.shape().dim(3);
    const int64_t t_in = h.shape().dim(3);
    Variable residual = ag::Slice(
        h, {0, 0, 0, t_in - t_out},
        {h.shape().dim(0), h.shape().dim(1), h.shape().dim(2), t_out});
    h = ag::Add(spatial, residual);
    if (!norm_layers_.empty()) h = norm_layers_[layer]->Forward(h);
  }

  return output_projection_->Forward(ag::Relu(h));
}

Tensor GraphWaveNetEncoder::EncodeInference(const Tensor& observations,
                                            const Tensor& adjacency) const {
  URCL_CHECK_EQ(observations.shape().rank(), 4) << "expected [B, M, N, C]";
  URCL_CHECK_EQ(observations.shape().dim(1), config_.input_steps);
  URCL_CHECK_EQ(observations.shape().dim(2), config_.num_nodes);
  URCL_CHECK_EQ(observations.shape().dim(3), config_.in_channels);

  std::vector<Tensor> supports;
  if (config_.use_static_supports) {
    supports = graph::BuildSupportsDense(adjacency, config_.directed_graph);
  }
  Tensor adaptive;
  if (config_.use_adaptive_adjacency) adaptive = adaptive_->InferForward();
  const Tensor* adaptive_ptr = config_.use_adaptive_adjacency ? &adaptive : nullptr;

  // [B, M, N, C] -> [B, C, N, M]
  Tensor h = top::Transpose(observations, {0, 3, 2, 1});
  h = input_projection_->InferForward(h);

  for (size_t layer = 0; layer < tcn_layers_.size(); ++layer) {
    const Tensor temporal = tcn_layers_[layer]->InferForward(h);
    const Tensor spatial = gcn_layers_[layer]->InferForward(temporal, supports, adaptive_ptr);
    const int64_t t_out = spatial.shape().dim(3);
    const int64_t t_in = h.shape().dim(3);
    const Tensor residual = top::Slice(
        h, {0, 0, 0, t_in - t_out},
        {h.shape().dim(0), h.shape().dim(1), h.shape().dim(2), t_out});
    h = top::Add(spatial, residual);
    if (!norm_layers_.empty()) h = norm_layers_[layer]->InferForward(h);
  }

  return output_projection_->InferForward(top::Relu(h));
}

}  // namespace core
}  // namespace urcl
