#include "nn/layer_norm.h"

#include "autograd/ops.h"
#include "common/check.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace nn {

namespace ag = ::urcl::autograd;
namespace top = ::urcl::ops;

LayerNorm::LayerNorm(int64_t num_channels, Rng& rng, float epsilon)
    : num_channels_(num_channels), epsilon_(epsilon) {
  URCL_CHECK_GT(num_channels, 0);
  (void)rng;  // affine parameters have deterministic init
  gamma_ = RegisterParameter("gamma", Tensor::Ones(Shape{1, num_channels, 1, 1}));
  beta_ = RegisterParameter("beta", Tensor::Zeros(Shape{1, num_channels, 1, 1}));
}

Variable LayerNorm::Forward(const Variable& x) const {
  URCL_CHECK_EQ(x.shape().rank(), 4) << "LayerNorm expects [B, C, N, T]";
  URCL_CHECK_EQ(x.shape().dim(1), num_channels_);
  // Mean/variance over the channel axis, keeping dims for broadcasting.
  Variable mean = ag::Mean(x, {1}, /*keepdims=*/true);
  Variable centered = ag::Sub(x, mean);
  Variable variance = ag::Mean(ag::Square(centered), {1}, /*keepdims=*/true);
  Variable normalized = ag::Div(centered, ag::Sqrt(ag::AddScalar(variance, epsilon_)));
  return ag::Add(ag::Mul(normalized, gamma_), beta_);
}

Tensor LayerNorm::InferForward(const Tensor& x) const {
  URCL_CHECK_EQ(x.shape().rank(), 4) << "LayerNorm expects [B, C, N, T]";
  URCL_CHECK_EQ(x.shape().dim(1), num_channels_);
  const Tensor mean = top::Mean(x, {1}, /*keepdims=*/true);
  const Tensor centered = top::Sub(x, mean);
  const Tensor variance = top::Mean(top::Square(centered), {1}, /*keepdims=*/true);
  const Tensor normalized = top::Div(centered, top::Sqrt(top::AddScalar(variance, epsilon_)));
  return top::Add(top::Mul(normalized, gamma_.value()), beta_.value());
}

}  // namespace nn
}  // namespace urcl
