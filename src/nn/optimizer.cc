#include "nn/optimizer.h"

#include <cmath>
#include <istream>
#include <ostream>

#include "common/check.h"
#include "obs/metrics.h"
#include "tensor/serialize.h"
#include "tensor/simd.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace nn {
namespace {

// Validates that `tensors` read back from a state stream are congruent with
// the optimizer's parameter list.
Status CheckCongruent(const std::vector<Variable>& params, uint64_t count, const char* what) {
  if (count != params.size()) {
    return Status::Error(std::string(what) + " state holds " + std::to_string(count) +
                         " tensors but the optimizer has " + std::to_string(params.size()) +
                         " parameters");
  }
  return Status::Ok();
}

}  // namespace

Optimizer::Optimizer(std::vector<Variable> params) : params_(std::move(params)) {
  for (const Variable& p : params_) {
    URCL_CHECK(p.IsValid() && p.requires_grad()) << "optimizer got a non-trainable parameter";
  }
}

void Optimizer::ZeroGrad() {
  for (Variable& p : params_) p.ZeroGrad();
}

float Optimizer::ClipGradNorm(float max_norm) {
  URCL_CHECK_GT(max_norm, 0.0f);
  double total_sq = 0.0;
  for (const Variable& p : params_) {
    const Tensor g = p.grad();
    const float* pg = g.data();
    for (int64_t i = 0; i < g.NumElements(); ++i) total_sq += double(pg[i]) * double(pg[i]);
  }
  const float norm = static_cast<float>(std::sqrt(total_sq));
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Get().GetGauge("urcl.optimizer.grad_norm").Set(norm);
  }
  if (!std::isfinite(norm)) return norm;
  if (norm > max_norm && norm > 0.0f) {
    if (obs::MetricsEnabled()) {
      obs::MetricsRegistry::Get().GetCounter("urcl.optimizer.clip_events").Add(1);
    }
    const float scale = max_norm / norm;
    for (Variable& p : params_) {
      Tensor g = p.grad();
      g.MulInPlace(scale);
      // Re-register the scaled gradient.
      p.ZeroGrad();
      p.AccumulateGrad(g);
    }
  }
  return norm;
}

int64_t Optimizer::FirstNonFiniteGrad() const {
  for (size_t i = 0; i < params_.size(); ++i) {
    if (!params_[i].grad().AllFinite()) return static_cast<int64_t>(i);
  }
  return -1;
}

int64_t Optimizer::FirstNonFiniteParam() const {
  for (size_t i = 0; i < params_.size(); ++i) {
    if (!params_[i].value().AllFinite()) return static_cast<int64_t>(i);
  }
  return -1;
}

void Optimizer::SaveState(std::ostream& out) const { (void)out; }

Status Optimizer::LoadState(std::istream& in) {
  (void)in;
  return Status::Ok();
}

Sgd::Sgd(std::vector<Variable> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ != 0.0f) {
    velocity_.reserve(params_.size());
    for (const Variable& p : params_) velocity_.push_back(Tensor::Zeros(p.value().shape()));
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable& p = params_[i];
    const Tensor g = p.grad();
    Tensor update = g.Clone();
    if (momentum_ != 0.0f) {
      velocity_[i].MulInPlace(momentum_);
      velocity_[i].AddInPlace(g);
      update = velocity_[i].Clone();
    }
    Tensor value = p.value().Clone();
    update.MulInPlace(-lr_);
    value.AddInPlace(update);
    p.SetValue(value);
  }
}

void Sgd::SaveState(std::ostream& out) const {
  io::WritePod(out, static_cast<uint64_t>(velocity_.size()));
  for (const Tensor& v : velocity_) SaveTensor(v, out);
}

Status Sgd::LoadState(std::istream& in) {
  const uint64_t count = io::ReadPod<uint64_t>(in);
  if (count != velocity_.size()) {
    return Status::Error("SGD state holds " + std::to_string(count) +
                         " velocity tensors, expected " + std::to_string(velocity_.size()));
  }
  for (Tensor& v : velocity_) {
    Tensor loaded = LoadTensor(in);
    if (!(loaded.shape() == v.shape())) {
      return Status::Error("SGD velocity shape mismatch: " + loaded.shape().ToString() +
                           " vs " + v.shape().ToString());
    }
    v = std::move(loaded);
  }
  return Status::Ok();
}

Adam::Adam(std::vector<Variable> params, const AdamConfig& config)
    : Optimizer(std::move(params)), config_(config) {
  URCL_CHECK_GT(config_.lr, 0.0f);
  URCL_CHECK_GE(config_.clip_norm, 0.0f);
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Variable& p : params_) {
    m_.push_back(Tensor::Zeros(p.value().shape()));
    v_.push_back(Tensor::Zeros(p.value().shape()));
  }
}

Adam::Adam(std::vector<Variable> params, float lr, float beta1, float beta2, float epsilon,
           float weight_decay)
    : Adam(std::move(params),
           AdamConfig{lr, beta1, beta2, epsilon, weight_decay, 0.0f, false}) {}

void Adam::Step() {
  last_report_.reset();
  if (config_.check_finite) {
    const int64_t bad = FirstNonFiniteGrad();
    if (bad >= 0) {
      // Skip the whole update: a partial apply would leave the moments and
      // parameters inconsistent across params.
      last_report_ = NonFiniteReport{bad, NonFiniteReport::Kind::kGradient};
      if (obs::MetricsEnabled()) {
        obs::MetricsRegistry::Get().GetCounter("urcl.optimizer.nonfinite_grad").Add(1);
      }
      return;
    }
  }
  if (config_.clip_norm > 0.0f) ClipGradNorm(config_.clip_norm);
  ++step_count_;
  const float bc1 = 1.0f - std::pow(config_.beta1, static_cast<float>(step_count_));
  const float bc2 = 1.0f - std::pow(config_.beta2, static_cast<float>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable& p = params_[i];
    const Tensor g = p.grad();
    Tensor value = p.value().Clone();
    float* pv = value.mutable_data();
    float* pm = m_[i].mutable_data();
    float* pvv = v_[i].mutable_data();
    const float* pg = g.data();
    const int64_t n = value.NumElements();
    // Lane-parallel over independent parameters; each lane evaluates the
    // same expression tree as the scalar tail (no reassociation, no FMA), so
    // the update is bitwise identical with or without SIMD.
    const simd::F32x8 vwd = simd::Broadcast(config_.weight_decay);
    const simd::F32x8 vb1 = simd::Broadcast(config_.beta1);
    const simd::F32x8 v1mb1 = simd::Broadcast(1.0f - config_.beta1);
    const simd::F32x8 vb2 = simd::Broadcast(config_.beta2);
    const simd::F32x8 v1mb2 = simd::Broadcast(1.0f - config_.beta2);
    const simd::F32x8 vbc1 = simd::Broadcast(bc1);
    const simd::F32x8 vbc2 = simd::Broadcast(bc2);
    const simd::F32x8 vlr = simd::Broadcast(config_.lr);
    const simd::F32x8 veps = simd::Broadcast(config_.epsilon);
    int64_t j = 0;
    for (; j + simd::kLanes <= n; j += simd::kLanes) {
      const simd::F32x8 grad = simd::Add(simd::LoadU(pg + j), simd::Mul(vwd, simd::LoadU(pv + j)));
      const simd::F32x8 m = simd::Add(simd::Mul(vb1, simd::LoadU(pm + j)), simd::Mul(v1mb1, grad));
      simd::StoreU(pm + j, m);
      const simd::F32x8 v2 = simd::Add(simd::Mul(vb2, simd::LoadU(pvv + j)),
                                       simd::Mul(simd::Mul(v1mb2, grad), grad));
      simd::StoreU(pvv + j, v2);
      const simd::F32x8 m_hat = simd::Div(m, vbc1);
      const simd::F32x8 v_hat = simd::Div(v2, vbc2);
      const simd::F32x8 update =
          simd::Div(simd::Mul(vlr, m_hat), simd::Add(simd::Sqrt(v_hat), veps));
      simd::StoreU(pv + j, simd::Sub(simd::LoadU(pv + j), update));
    }
    for (; j < n; ++j) {
      const float grad = pg[j] + config_.weight_decay * pv[j];
      pm[j] = config_.beta1 * pm[j] + (1.0f - config_.beta1) * grad;
      pvv[j] = config_.beta2 * pvv[j] + (1.0f - config_.beta2) * grad * grad;
      const float m_hat = pm[j] / bc1;
      const float v_hat = pvv[j] / bc2;
      pv[j] -= config_.lr * m_hat / (std::sqrt(v_hat) + config_.epsilon);
    }
    p.SetValue(value);
  }
  if (config_.check_finite) {
    const int64_t bad = FirstNonFiniteParam();
    if (bad >= 0) {
      last_report_ = NonFiniteReport{bad, NonFiniteReport::Kind::kParameter};
      if (obs::MetricsEnabled()) {
        obs::MetricsRegistry::Get().GetCounter("urcl.optimizer.nonfinite_param").Add(1);
      }
    }
  }
}

void Adam::SaveState(std::ostream& out) const {
  io::WritePod(out, step_count_);
  io::WritePod(out, static_cast<uint64_t>(m_.size()));
  for (const Tensor& m : m_) SaveTensor(m, out);
  for (const Tensor& v : v_) SaveTensor(v, out);
}

Status Adam::LoadState(std::istream& in) {
  const int64_t step_count = io::ReadPod<int64_t>(in);
  if (step_count < 0) {
    return Status::Error("Adam state has negative step count " + std::to_string(step_count));
  }
  const uint64_t count = io::ReadPod<uint64_t>(in);
  const Status congruent = CheckCongruent(params_, count, "Adam");
  if (!congruent.ok()) return congruent;
  std::vector<Tensor> m, v;
  m.reserve(count);
  v.reserve(count);
  for (uint64_t i = 0; i < count; ++i) m.push_back(LoadTensor(in));
  for (uint64_t i = 0; i < count; ++i) v.push_back(LoadTensor(in));
  for (uint64_t i = 0; i < count; ++i) {
    if (!(m[i].shape() == params_[i].value().shape()) ||
        !(v[i].shape() == params_[i].value().shape())) {
      return Status::Error("Adam moment shape mismatch at param " + std::to_string(i) + ": " +
                           m[i].shape().ToString() + " vs " +
                           params_[i].value().shape().ToString());
    }
  }
  step_count_ = step_count;
  m_ = std::move(m);
  v_ = std::move(v);
  return Status::Ok();
}

}  // namespace nn
}  // namespace urcl
