#include "nn/optimizer.h"

#include <cmath>

#include "common/check.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace nn {

Optimizer::Optimizer(std::vector<Variable> params) : params_(std::move(params)) {
  for (const Variable& p : params_) {
    URCL_CHECK(p.IsValid() && p.requires_grad()) << "optimizer got a non-trainable parameter";
  }
}

void Optimizer::ZeroGrad() {
  for (Variable& p : params_) p.ZeroGrad();
}

float Optimizer::ClipGradNorm(float max_norm) {
  URCL_CHECK_GT(max_norm, 0.0f);
  double total_sq = 0.0;
  for (const Variable& p : params_) {
    const Tensor g = p.grad();
    const float* pg = g.data();
    for (int64_t i = 0; i < g.NumElements(); ++i) total_sq += double(pg[i]) * double(pg[i]);
  }
  const float norm = static_cast<float>(std::sqrt(total_sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (Variable& p : params_) {
      Tensor g = p.grad();
      g.MulInPlace(scale);
      // Re-register the scaled gradient.
      p.ZeroGrad();
      p.AccumulateGrad(g);
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Variable> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ != 0.0f) {
    velocity_.reserve(params_.size());
    for (const Variable& p : params_) velocity_.push_back(Tensor::Zeros(p.value().shape()));
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable& p = params_[i];
    const Tensor g = p.grad();
    Tensor update = g.Clone();
    if (momentum_ != 0.0f) {
      velocity_[i].MulInPlace(momentum_);
      velocity_[i].AddInPlace(g);
      update = velocity_[i].Clone();
    }
    Tensor value = p.value().Clone();
    update.MulInPlace(-lr_);
    value.AddInPlace(update);
    p.SetValue(value);
  }
}

Adam::Adam(std::vector<Variable> params, float lr, float beta1, float beta2, float epsilon,
           float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Variable& p : params_) {
    m_.push_back(Tensor::Zeros(p.value().shape()));
    v_.push_back(Tensor::Zeros(p.value().shape()));
  }
}

void Adam::Step() {
  ++step_count_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable& p = params_[i];
    const Tensor g = p.grad();
    Tensor value = p.value().Clone();
    float* pv = value.mutable_data();
    float* pm = m_[i].mutable_data();
    float* pvv = v_[i].mutable_data();
    const float* pg = g.data();
    const int64_t n = value.NumElements();
    for (int64_t j = 0; j < n; ++j) {
      const float grad = pg[j] + weight_decay_ * pv[j];
      pm[j] = beta1_ * pm[j] + (1.0f - beta1_) * grad;
      pvv[j] = beta2_ * pvv[j] + (1.0f - beta2_) * grad * grad;
      const float m_hat = pm[j] / bc1;
      const float v_hat = pvv[j] / bc2;
      pv[j] -= lr_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
    p.SetValue(value);
  }
}

}  // namespace nn
}  // namespace urcl
