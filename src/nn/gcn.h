// Graph convolution layers: the diffusion GCN of DCRNN/GraphWaveNet
// (Eq. 21/22/24 of the paper) and the self-adaptive adjacency (Eq. 23).
#ifndef URCL_NN_GCN_H_
#define URCL_NN_GCN_H_

#include <memory>
#include <vector>

#include "nn/linear.h"
#include "nn/module.h"

namespace urcl {
namespace nn {

// Learns A_adp = Softmax(ReLU(E1 E2^T)) from two node embeddings (Eq. 23).
class AdaptiveAdjacency : public Module {
 public:
  AdaptiveAdjacency(int64_t num_nodes, int64_t embedding_dim, Rng& rng);

  // Returns the [N, N] row-stochastic adaptive adjacency.
  Variable Forward() const;
  // Tape-free forward (serving executor); bitwise-equal to Forward.
  Tensor InferForward() const;

  int64_t num_nodes() const { return num_nodes_; }

 private:
  int64_t num_nodes_;
  Variable e1_;  // [N, d]
  Variable e2_;  // [d, N]
};

// Diffusion graph convolution over [B, C, N, T] inputs (Eq. 24):
//   f_G(X) = Linear_channel( [X, P1 X, P1^2 X, ..., Pm X, ..., Aadp X, ...] )
// where the Pi are fixed transition matrices (forward/backward random walks)
// and Aadp is an optional learned adjacency supplied per call.
class DiffusionGcn : public Module {
 public:
  // `num_static_supports` fixed supports and optionally one adaptive support
  // are each expanded to `max_diffusion_step` powers.
  DiffusionGcn(int64_t in_channels, int64_t out_channels, int64_t num_static_supports,
               bool use_adaptive, int64_t max_diffusion_step, Rng& rng);

  // x: [B, C_in, N, T]; supports: fixed [N, N] transition matrices (count
  // must equal num_static_supports); adaptive: [N, N] Variable or invalid.
  Variable Forward(const Variable& x, const std::vector<Tensor>& supports,
                   const Variable& adaptive) const;
  // Tape-free forward (serving executor); `adaptive` is nullptr when the
  // layer is configured without an adaptive support. Bitwise-equal to Forward.
  Tensor InferForward(const Tensor& x, const std::vector<Tensor>& supports,
                      const Tensor* adaptive) const;

  int64_t out_channels() const { return out_channels_; }

 private:
  int64_t in_channels_;
  int64_t out_channels_;
  int64_t num_static_supports_;
  bool use_adaptive_;
  int64_t max_diffusion_step_;
  std::unique_ptr<ChannelLinear> projection_;
};

// Multiplies a graph operator over the node axis: y = A · x where
// x is [B, C, N, T] and A is [N, N] (constant overload precomputes nothing
// differentiable; Variable overload lets gradients reach A).
Variable GraphMatMul(const Tensor& adjacency, const Variable& x);
Variable GraphMatMul(const Variable& adjacency, const Variable& x);
// Tape-free overload (serving executor); bitwise-equal to the Variable path.
Tensor GraphMatMul(const Tensor& adjacency, const Tensor& x);

}  // namespace nn
}  // namespace urcl

#endif  // URCL_NN_GCN_H_
