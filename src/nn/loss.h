// Loss functions: the MAE task loss (Eq. 28), MSE, cosine similarity with
// stop-gradient (Eq. 13), and the symmetric GraphCL/InfoNCE loss (Eq. 14-16).
#ifndef URCL_NN_LOSS_H_
#define URCL_NN_LOSS_H_

#include "autograd/variable.h"

namespace urcl {
namespace nn {

using autograd::Variable;

// Mean absolute error (paper Eq. 28). Shapes must match.
Variable MaeLoss(const Variable& prediction, const Variable& target);

// Mean squared error.
Variable MseLoss(const Variable& prediction, const Variable& target);

// L2-normalizes the last axis: v / sqrt(||v||_2^2 + eps^2). The eps sits
// inside the sqrt so the backward stays finite for all-zero rows.
Variable L2Normalize(const Variable& v, float eps = 1e-8f);

// Row-wise cosine similarity between [S, D] matrices -> [S].
Variable CosineSimilarityRows(const Variable& a, const Variable& b, float eps = 1e-8f);

// Symmetric GraphCL loss over a minibatch of S augmented pairs (Eq. 15-16).
//   projections p1, p2: projector outputs for view 1 / view 2 (grad flows)
//   embeddings  z1, z2: encoder outputs (stop-gradient applied internally,
//                       per the SimSiam SG(.) operator of Eq. 13)
// All inputs are [S, D]. When S == 1 the InfoNCE denominator is empty; the
// loss degenerates to the negative symmetric cosine similarity (SimSiam).
Variable GraphClLoss(const Variable& p1, const Variable& p2, const Variable& z1,
                     const Variable& z2, float temperature);

// Cheap post-forward guard: true when every element of the computed loss is
// finite. Training loops call this before Backward()/Step() so a diverged or
// corrupted batch is quarantined (skipped + counted) instead of silently
// training on NaNs.
bool LossIsFinite(const Variable& loss);

}  // namespace nn
}  // namespace urcl

#endif  // URCL_NN_LOSS_H_
