#include "nn/init.h"

#include <cmath>

#include "common/check.h"

namespace urcl {
namespace nn {

Tensor GlorotUniform(const Shape& shape, Rng& rng, int64_t fan_in, int64_t fan_out) {
  URCL_CHECK_GT(fan_in + fan_out, 0);
  const float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::RandomUniform(shape, rng, -limit, limit);
}

Tensor KaimingUniform(const Shape& shape, Rng& rng, int64_t fan_in) {
  URCL_CHECK_GT(fan_in, 0);
  const float limit = std::sqrt(3.0f / static_cast<float>(fan_in)) * std::sqrt(2.0f);
  return Tensor::RandomUniform(shape, rng, -limit, limit);
}

}  // namespace nn
}  // namespace urcl
