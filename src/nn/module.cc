#include "nn/module.h"

#include "common/check.h"

namespace urcl {
namespace nn {

std::vector<Variable> Module::Parameters() const {
  std::vector<Variable> out;
  for (const auto& [name, variable] : NamedParameters()) out.push_back(variable);
  return out;
}

std::vector<std::pair<std::string, Variable>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, Variable>> out;
  CollectNamed("", &out);
  return out;
}

void Module::CollectNamed(const std::string& prefix,
                          std::vector<std::pair<std::string, Variable>>* out) const {
  for (const auto& [name, variable] : params_) {
    out->emplace_back(prefix.empty() ? name : prefix + "." + name, variable);
  }
  for (const auto& [name, child] : children_) {
    child->CollectNamed(prefix.empty() ? name : prefix + "." + name, out);
  }
}

int64_t Module::NumParameters() const {
  int64_t total = 0;
  for (const Variable& p : Parameters()) total += p.value().NumElements();
  return total;
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->SetTraining(training);
}

void Module::CopyParametersFrom(const Module& other) {
  const std::vector<Variable> mine = Parameters();
  const std::vector<Variable> theirs = other.Parameters();
  URCL_CHECK_EQ(mine.size(), theirs.size()) << "parameter lists are not congruent";
  for (size_t i = 0; i < mine.size(); ++i) mine[i].SetValue(theirs[i].value());
}

std::vector<Tensor> Module::StateDict() const {
  std::vector<Tensor> state;
  for (const Variable& p : Parameters()) state.push_back(p.value().Clone());
  return state;
}

void Module::LoadStateDict(const std::vector<Tensor>& state) {
  const std::vector<Variable> params = Parameters();
  URCL_CHECK_EQ(params.size(), state.size()) << "state dict size mismatch";
  for (size_t i = 0; i < params.size(); ++i) params[i].SetValue(state[i]);
}

Variable Module::RegisterParameter(std::string name, Tensor init) {
  Variable parameter(std::move(init), /*requires_grad=*/true);
  params_.emplace_back(std::move(name), parameter);
  return parameter;
}

void Module::RegisterChild(std::string name, Module* child) {
  URCL_CHECK(child != nullptr);
  children_.emplace_back(std::move(name), child);
}

}  // namespace nn
}  // namespace urcl
