#include "nn/loss.h"

#include "autograd/ops.h"
#include "common/check.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace nn {

namespace ag = ::urcl::autograd;

Variable MaeLoss(const Variable& prediction, const Variable& target) {
  URCL_CHECK(prediction.shape() == target.shape())
      << "MaeLoss shape mismatch: " << prediction.shape().ToString() << " vs "
      << target.shape().ToString();
  return ag::Mean(ag::Abs(ag::Sub(prediction, target)));
}

Variable MseLoss(const Variable& prediction, const Variable& target) {
  URCL_CHECK(prediction.shape() == target.shape())
      << "MseLoss shape mismatch: " << prediction.shape().ToString() << " vs "
      << target.shape().ToString();
  return ag::Mean(ag::Square(ag::Sub(prediction, target)));
}

Variable L2Normalize(const Variable& v, float eps) {
  // The eps lives INSIDE the sqrt: d/dx sqrt(x) is infinite at x = 0, and an
  // all-zero row (a dead-ReLU projector output) hits exactly that, turning a
  // finite loss into NaN gradients on everything upstream. sqrt(||v||^2 +
  // eps^2) keeps the backward finite and is ~||v|| + eps for tiny norms.
  Variable norm =
      ag::Sqrt(ag::AddScalar(ag::Sum(ag::Square(v), {-1}, /*keepdims=*/true), eps * eps));
  return ag::Div(v, norm);
}

Variable CosineSimilarityRows(const Variable& a, const Variable& b, float eps) {
  URCL_CHECK(a.shape() == b.shape());
  URCL_CHECK_EQ(a.shape().rank(), 2);
  Variable na = L2Normalize(a, eps);
  Variable nb = L2Normalize(b, eps);
  return ag::Sum(ag::Mul(na, nb), {-1});
}

Variable GraphClLoss(const Variable& p1, const Variable& p2, const Variable& z1,
                     const Variable& z2, float temperature) {
  URCL_CHECK_EQ(p1.shape().rank(), 2) << "GraphClLoss expects [S, D] inputs";
  URCL_CHECK(p1.shape() == p2.shape() && z1.shape() == z2.shape() && p1.shape() == z1.shape());
  URCL_CHECK_GT(temperature, 0.0f);
  const int64_t batch = p1.shape().dim(0);

  // Stop-gradient on the target (encoder) branch, per SimSiam Eq. 13.
  Variable sz1 = ag::StopGradient(z1);
  Variable sz2 = ag::StopGradient(z2);

  Variable np1 = L2Normalize(p1);
  Variable np2 = L2Normalize(p2);
  Variable nz1 = L2Normalize(sz1);
  Variable nz2 = L2Normalize(sz2);

  if (batch < 2) {
    // Degenerate minibatch: the InfoNCE denominator (s' != s) is empty.
    // Fall back to the SimSiam negative symmetric cosine similarity.
    Variable sim = ag::Add(CosineSimilarityRows(np1, nz2), CosineSimilarityRows(np2, nz1));
    return ag::Mean(ag::MulScalar(sim, -0.5f));
  }

  // Pairwise symmetric similarities (Eq. 15): sym[s, s'] =
  //   1/2 C(p_{s,1}, z_{s',2}) + 1/2 C(p_{s,2}, z_{s',1}).
  Variable s12 = ag::MatMul(np1, ag::Transpose(nz2, {1, 0}));
  Variable s21 = ag::MatMul(np2, ag::Transpose(nz1, {1, 0}));
  Variable sym = ag::MulScalar(ag::Add(s12, s21), 0.5f / temperature);

  // Diagonal = positive pairs; off-diagonal = negatives.
  const Tensor eye = Tensor::Eye(batch);
  Variable eye_mask(eye, /*requires_grad=*/false);
  Variable off_mask(ops::AddScalar(ops::Neg(eye), 1.0f), /*requires_grad=*/false);

  Variable positives = ag::Sum(ag::Mul(sym, eye_mask), {-1});  // [S]
  Variable negative_mass =
      ag::Log(ag::Sum(ag::Mul(ag::Exp(sym), off_mask), {-1}));  // [S]
  return ag::Mean(ag::Sub(negative_mass, positives));
}

bool LossIsFinite(const Variable& loss) { return loss.value().AllFinite(); }

}  // namespace nn
}  // namespace urcl
