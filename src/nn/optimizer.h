// First-order optimizers operating on lists of trainable Variables.
#ifndef URCL_NN_OPTIMIZER_H_
#define URCL_NN_OPTIMIZER_H_

#include <iosfwd>
#include <optional>
#include <vector>

#include "autograd/variable.h"
#include "common/status.h"

namespace urcl {
namespace nn {

using autograd::Variable;

// Structured report of a non-finite value met during Step() when
// check_finite is enabled. The caller (which knows parameter names and the
// current training stage) turns this into an actionable message instead of
// silently training on NaNs.
struct NonFiniteReport {
  enum class Kind { kGradient, kParameter };
  int64_t param_index = -1;
  Kind kind = Kind::kGradient;
};

class Optimizer {
 public:
  explicit Optimizer(std::vector<Variable> params);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  // Applies one update using the gradients currently stored on the params.
  virtual void Step() = 0;

  // Clears all parameter gradients.
  void ZeroGrad();

  // Scales gradients so their global L2 norm is at most `max_norm`.
  // Returns the pre-clip norm. A non-finite norm leaves the gradients
  // untouched (scaling by max_norm/inf would zero or NaN them); the
  // check_finite guard is the mechanism that catches that case.
  float ClipGradNorm(float max_norm);

  // Set when the last Step() with check_finite enabled met a non-finite
  // gradient (the whole update is skipped) or produced a non-finite
  // parameter; empty after a clean step.
  const std::optional<NonFiniteReport>& last_step_report() const { return last_report_; }

  // Serializes the optimizer's internal state (moments, step counter) so a
  // restored run continues bit-for-bit. Hyperparameters are not written;
  // they come from the caller's config. Base implementation is stateless.
  virtual void SaveState(std::ostream& out) const;
  // Restores state written by SaveState of the same optimizer type over the
  // same parameter list; returns an error on any mismatch.
  virtual Status LoadState(std::istream& in);

  const std::vector<Variable>& params() const { return params_; }

 protected:
  // Index of the first param with a non-finite gradient/value, or -1.
  int64_t FirstNonFiniteGrad() const;
  int64_t FirstNonFiniteParam() const;

  std::vector<Variable> params_;
  std::optional<NonFiniteReport> last_report_;
};

// SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Variable> params, float lr, float momentum = 0.0f);

  void Step() override;

  void SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  float weight_decay = 0.0f;  // decoupled (AdamW-style)
  // Opt-in robustness guards:
  // When > 0, gradients are clipped to this global L2 norm inside Step().
  float clip_norm = 0.0f;
  // When set, Step() scans gradients first (a non-finite gradient skips the
  // whole update and records a NonFiniteReport) and parameters after the
  // update; see last_step_report().
  bool check_finite = false;
};

// Adam (Kingma & Ba) with optional decoupled weight decay.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Variable> params, const AdamConfig& config);
  Adam(std::vector<Variable> params, float lr, float beta1 = 0.9f, float beta2 = 0.999f,
       float epsilon = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

  // State = step counter + first/second moments, in params() order.
  void SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

  float lr() const { return config_.lr; }
  void set_lr(float lr) { config_.lr = lr; }
  const AdamConfig& config() const { return config_; }
  int64_t step_count() const { return step_count_; }

 private:
  AdamConfig config_;
  int64_t step_count_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace nn
}  // namespace urcl

#endif  // URCL_NN_OPTIMIZER_H_
