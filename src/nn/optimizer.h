// First-order optimizers operating on lists of trainable Variables.
#ifndef URCL_NN_OPTIMIZER_H_
#define URCL_NN_OPTIMIZER_H_

#include <vector>

#include "autograd/variable.h"

namespace urcl {
namespace nn {

using autograd::Variable;

class Optimizer {
 public:
  explicit Optimizer(std::vector<Variable> params);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  // Applies one update using the gradients currently stored on the params.
  virtual void Step() = 0;

  // Clears all parameter gradients.
  void ZeroGrad();

  // Scales gradients so their global L2 norm is at most `max_norm`.
  // Returns the pre-clip norm.
  float ClipGradNorm(float max_norm);

  const std::vector<Variable>& params() const { return params_; }

 protected:
  std::vector<Variable> params_;
};

// SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Variable> params, float lr, float momentum = 0.0f);

  void Step() override;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

// Adam (Kingma & Ba) with optional decoupled weight decay.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Variable> params, float lr, float beta1 = 0.9f, float beta2 = 0.999f,
       float epsilon = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float epsilon_;
  float weight_decay_;
  int64_t step_count_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace nn
}  // namespace urcl

#endif  // URCL_NN_OPTIMIZER_H_
