// Layer normalization over the channel axis of [B, C, N, T] feature maps
// (the normalization GraphWaveNet applies after each spatio-temporal layer;
// layer- rather than batch-normalization because streaming minibatches are
// small and non-i.i.d.).
#ifndef URCL_NN_LAYER_NORM_H_
#define URCL_NN_LAYER_NORM_H_

#include "nn/module.h"

namespace urcl {
namespace nn {

class LayerNorm : public Module {
 public:
  LayerNorm(int64_t num_channels, Rng& rng, float epsilon = 1e-5f);

  // Normalizes each (b, n, t) position's channel vector to zero mean / unit
  // variance, then applies the learned per-channel affine transform.
  Variable Forward(const Variable& x) const;
  // Tape-free forward (serving executor); bitwise-equal to Forward.
  Tensor InferForward(const Tensor& x) const;

  int64_t num_channels() const { return num_channels_; }

 private:
  int64_t num_channels_;
  float epsilon_;
  Variable gamma_;  // [1, C, 1, 1]
  Variable beta_;   // [1, C, 1, 1]
};

}  // namespace nn
}  // namespace urcl

#endif  // URCL_NN_LAYER_NORM_H_
