#include "nn/linear.h"

#include "autograd/ops.h"
#include "common/check.h"
#include "nn/init.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace nn {

namespace ag = ::urcl::autograd;
namespace top = ::urcl::ops;

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  URCL_CHECK_GT(in_features, 0);
  URCL_CHECK_GT(out_features, 0);
  weight_ = RegisterParameter(
      "weight", GlorotUniform(Shape{in_features, out_features}, rng, in_features, out_features));
  if (bias) bias_ = RegisterParameter("bias", Tensor::Zeros(Shape{out_features}));
}

Variable Linear::Forward(const Variable& x) const {
  URCL_CHECK_GE(x.shape().rank(), 2) << "Linear expects rank >= 2";
  URCL_CHECK_EQ(x.shape().dim(-1), in_features_)
      << "Linear: input " << x.shape().ToString() << " does not end in " << in_features_;
  Variable y = ag::MatMul(x, weight_);
  if (bias_.IsValid()) y = ag::Add(y, bias_);
  return y;
}

Tensor Linear::InferForward(const Tensor& x) const {
  URCL_CHECK_GE(x.shape().rank(), 2) << "Linear expects rank >= 2";
  URCL_CHECK_EQ(x.shape().dim(-1), in_features_)
      << "Linear: input " << x.shape().ToString() << " does not end in " << in_features_;
  Tensor y = top::MatMul(x, weight_.value());
  if (bias_.IsValid()) y = top::Add(y, bias_.value());
  return y;
}

ChannelLinear::ChannelLinear(int64_t in_channels, int64_t out_channels, Rng& rng, bool bias)
    : in_channels_(in_channels), out_channels_(out_channels) {
  weight_ = RegisterParameter(
      "weight", GlorotUniform(Shape{out_channels, in_channels, 1, 1}, rng, in_channels,
                              out_channels));
  if (bias) {
    bias_ = RegisterParameter("bias", Tensor::Zeros(Shape{1, out_channels, 1, 1}));
  }
}

Variable ChannelLinear::Forward(const Variable& x) const {
  URCL_CHECK_EQ(x.shape().rank(), 4) << "ChannelLinear expects [B, C, N, T]";
  URCL_CHECK_EQ(x.shape().dim(1), in_channels_)
      << "ChannelLinear: input " << x.shape().ToString() << " has wrong channel count";
  Variable y = ag::TemporalConv2d(x, weight_, /*dilation=*/1);
  if (bias_.IsValid()) y = ag::Add(y, bias_);
  return y;
}

Tensor ChannelLinear::InferForward(const Tensor& x) const {
  URCL_CHECK_EQ(x.shape().rank(), 4) << "ChannelLinear expects [B, C, N, T]";
  URCL_CHECK_EQ(x.shape().dim(1), in_channels_)
      << "ChannelLinear: input " << x.shape().ToString() << " has wrong channel count";
  Tensor y = top::TemporalConv2d(x, weight_.value(), /*dilation=*/1);
  if (bias_.IsValid()) y = top::Add(y, bias_.value());
  return y;
}

Variable Activate(const Variable& x, Activation activation) {
  switch (activation) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return ag::Relu(x);
    case Activation::kTanh:
      return ag::Tanh(x);
    case Activation::kSigmoid:
      return ag::Sigmoid(x);
  }
  URCL_CHECK(false) << "unknown activation";
  return x;
}

Tensor Activate(const Tensor& x, Activation activation) {
  switch (activation) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return top::Relu(x);
    case Activation::kTanh:
      return top::Tanh(x);
    case Activation::kSigmoid:
      return top::Sigmoid(x);
  }
  URCL_CHECK(false) << "unknown activation";
  return x;
}

Mlp::Mlp(const std::vector<int64_t>& sizes, Rng& rng, Activation activation,
         bool activate_last)
    : activation_(activation), activate_last_(activate_last) {
  URCL_CHECK_GE(sizes.size(), 2u) << "Mlp needs at least {in, out}";
  for (size_t i = 0; i + 1 < sizes.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(sizes[i], sizes[i + 1], rng));
    RegisterChild("layer" + std::to_string(i), layers_.back().get());
  }
}

Variable Mlp::Forward(const Variable& x) const {
  Variable h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    const bool last = i + 1 == layers_.size();
    if (!last || activate_last_) h = Activate(h, activation_);
  }
  return h;
}

Tensor Mlp::InferForward(const Tensor& x) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->InferForward(h);
    const bool last = i + 1 == layers_.size();
    if (!last || activate_last_) h = Activate(h, activation_);
  }
  return h;
}

}  // namespace nn
}  // namespace urcl
