// Base class for neural-network modules: parameter registration, recursive
// parameter collection, train/eval mode, and checkpointing.
#ifndef URCL_NN_MODULE_H_
#define URCL_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"

namespace urcl {
namespace nn {

using autograd::Variable;

class Module {
 public:
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // All trainable parameters of this module and its registered children,
  // depth-first, in registration order.
  std::vector<Variable> Parameters() const;

  // Named view of Parameters() (names are dotted paths).
  std::vector<std::pair<std::string, Variable>> NamedParameters() const;

  int64_t NumParameters() const;

  // Training mode gates dropout and other train-only behaviour, recursively.
  void SetTraining(bool training);
  bool training() const { return training_; }

  // Copies parameter values (not gradients) from `other`; parameter lists
  // must be congruent. Used by FinetuneST / model snapshots.
  void CopyParametersFrom(const Module& other);

  // Checkpointing: value-only snapshots in Parameters() order.
  std::vector<Tensor> StateDict() const;
  void LoadStateDict(const std::vector<Tensor>& state);

 protected:
  Module() = default;

  // Creates a trainable leaf Variable and registers it.
  Variable RegisterParameter(std::string name, Tensor init);

  // Registers a child whose parameters are folded into this module's.
  // `child` must outlive this module (typically a data member).
  void RegisterChild(std::string name, Module* child);

 private:
  void CollectNamed(const std::string& prefix,
                    std::vector<std::pair<std::string, Variable>>* out) const;

  std::vector<std::pair<std::string, Variable>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

}  // namespace nn
}  // namespace urcl

#endif  // URCL_NN_MODULE_H_
