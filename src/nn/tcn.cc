#include "nn/tcn.h"

#include "autograd/ops.h"
#include "common/check.h"
#include "nn/init.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace nn {

namespace ag = ::urcl::autograd;
namespace top = ::urcl::ops;

GatedTcn::GatedTcn(int64_t in_channels, int64_t out_channels, int64_t kernel_size,
                   int64_t dilation, Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_size_(kernel_size),
      dilation_(dilation) {
  URCL_CHECK_GE(kernel_size, 1);
  URCL_CHECK_GE(dilation, 1);
  const Shape weight_shape{out_channels, in_channels, 1, kernel_size};
  const int64_t fan_in = in_channels * kernel_size;
  filter_weight_ = RegisterParameter("filter_weight",
                                     GlorotUniform(weight_shape, rng, fan_in, out_channels));
  filter_bias_ = RegisterParameter("filter_bias", Tensor::Zeros(Shape{1, out_channels, 1, 1}));
  gate_weight_ = RegisterParameter("gate_weight",
                                   GlorotUniform(weight_shape, rng, fan_in, out_channels));
  gate_bias_ = RegisterParameter("gate_bias", Tensor::Zeros(Shape{1, out_channels, 1, 1}));
}

Variable GatedTcn::Forward(const Variable& x) const {
  URCL_CHECK_EQ(x.shape().rank(), 4) << "GatedTcn expects [B, C, N, T]";
  URCL_CHECK_EQ(x.shape().dim(1), in_channels_);
  Variable filtered =
      ag::Add(ag::TemporalConv2d(x, filter_weight_, dilation_), filter_bias_);
  Variable gated = ag::Add(ag::TemporalConv2d(x, gate_weight_, dilation_), gate_bias_);
  return ag::Mul(ag::Tanh(filtered), ag::Sigmoid(gated));
}

Tensor GatedTcn::InferForward(const Tensor& x) const {
  URCL_CHECK_EQ(x.shape().rank(), 4) << "GatedTcn expects [B, C, N, T]";
  URCL_CHECK_EQ(x.shape().dim(1), in_channels_);
  const Tensor filtered =
      top::Add(top::TemporalConv2d(x, filter_weight_.value(), dilation_), filter_bias_.value());
  const Tensor gated =
      top::Add(top::TemporalConv2d(x, gate_weight_.value(), dilation_), gate_bias_.value());
  return top::Mul(top::Tanh(filtered), top::Sigmoid(gated));
}

}  // namespace nn
}  // namespace urcl
