#include "nn/gcn.h"

#include "autograd/ops.h"
#include "common/check.h"
#include "nn/init.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace nn {

namespace ag = ::urcl::autograd;
namespace top = ::urcl::ops;

AdaptiveAdjacency::AdaptiveAdjacency(int64_t num_nodes, int64_t embedding_dim, Rng& rng)
    : num_nodes_(num_nodes) {
  URCL_CHECK_GT(num_nodes, 0);
  URCL_CHECK_GT(embedding_dim, 0);
  e1_ = RegisterParameter("e1",
                          Tensor::RandomNormal(Shape{num_nodes, embedding_dim}, rng, 0.0f, 0.1f));
  e2_ = RegisterParameter("e2",
                          Tensor::RandomNormal(Shape{embedding_dim, num_nodes}, rng, 0.0f, 0.1f));
}

Variable AdaptiveAdjacency::Forward() const {
  return ag::Softmax(ag::Relu(ag::MatMul(e1_, e2_)), /*axis=*/-1);
}

Tensor AdaptiveAdjacency::InferForward() const {
  return top::Softmax(top::Relu(top::MatMul(e1_.value(), e2_.value())), /*axis=*/-1);
}

Variable GraphMatMul(const Tensor& adjacency, const Variable& x) {
  // Wrap the constant adjacency as a non-trainable Variable; gradient flow to
  // it is pruned automatically.
  return GraphMatMul(Variable(adjacency, /*requires_grad=*/false), x);
}

Variable GraphMatMul(const Variable& adjacency, const Variable& x) {
  URCL_CHECK_EQ(x.shape().rank(), 4) << "GraphMatMul expects [B, C, N, T]";
  URCL_CHECK_EQ(adjacency.shape().rank(), 2);
  URCL_CHECK_EQ(adjacency.shape().dim(0), x.shape().dim(2))
      << "adjacency " << adjacency.shape().ToString() << " does not match node count of "
      << x.shape().ToString();
  // [B, C, N, T] -> [B, C, T, N]; y' = x' A^T so y'[.., n] = sum_m A[n, m] x'[.., m].
  Variable xt = ag::Transpose(x, {0, 1, 3, 2});
  Variable yt = ag::MatMul(xt, ag::Transpose(adjacency, {1, 0}));
  return ag::Transpose(yt, {0, 1, 3, 2});
}

Tensor GraphMatMul(const Tensor& adjacency, const Tensor& x) {
  URCL_CHECK_EQ(x.shape().rank(), 4) << "GraphMatMul expects [B, C, N, T]";
  URCL_CHECK_EQ(adjacency.shape().rank(), 2);
  URCL_CHECK_EQ(adjacency.shape().dim(0), x.shape().dim(2))
      << "adjacency " << adjacency.shape().ToString() << " does not match node count of "
      << x.shape().ToString();
  const Tensor xt = top::Transpose(x, {0, 1, 3, 2});
  const Tensor yt = top::MatMul(xt, top::Transpose(adjacency, {1, 0}));
  return top::Transpose(yt, {0, 1, 3, 2});
}

DiffusionGcn::DiffusionGcn(int64_t in_channels, int64_t out_channels,
                           int64_t num_static_supports, bool use_adaptive,
                           int64_t max_diffusion_step, Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      num_static_supports_(num_static_supports),
      use_adaptive_(use_adaptive),
      max_diffusion_step_(max_diffusion_step) {
  URCL_CHECK_GE(num_static_supports, 0);
  URCL_CHECK_GE(max_diffusion_step, 1);
  const int64_t num_supports = num_static_supports + (use_adaptive ? 1 : 0);
  URCL_CHECK_GT(num_supports, 0) << "DiffusionGcn needs at least one support";
  const int64_t num_terms = 1 + num_supports * max_diffusion_step;
  projection_ = std::make_unique<ChannelLinear>(in_channels * num_terms, out_channels, rng);
  RegisterChild("projection", projection_.get());
}

Variable DiffusionGcn::Forward(const Variable& x, const std::vector<Tensor>& supports,
                               const Variable& adaptive) const {
  URCL_CHECK_EQ(static_cast<int64_t>(supports.size()), num_static_supports_)
      << "DiffusionGcn configured for " << num_static_supports_ << " supports";
  URCL_CHECK_EQ(adaptive.IsValid(), use_adaptive_)
      << "DiffusionGcn adaptive-support usage does not match configuration";
  URCL_CHECK_EQ(x.shape().dim(1), in_channels_);

  std::vector<Variable> terms;
  terms.push_back(x);  // k = 0 identity term
  for (const Tensor& support : supports) {
    Variable hop = x;
    for (int64_t k = 0; k < max_diffusion_step_; ++k) {
      hop = GraphMatMul(support, hop);
      terms.push_back(hop);
    }
  }
  if (use_adaptive_) {
    Variable hop = x;
    for (int64_t k = 0; k < max_diffusion_step_; ++k) {
      hop = GraphMatMul(adaptive, hop);
      terms.push_back(hop);
    }
  }
  // Concatenate diffusion terms on the channel axis, then 1x1-project.
  Variable stacked = ag::Concat(terms, /*axis=*/1);
  return projection_->Forward(stacked);
}

Tensor DiffusionGcn::InferForward(const Tensor& x, const std::vector<Tensor>& supports,
                                  const Tensor* adaptive) const {
  URCL_CHECK_EQ(static_cast<int64_t>(supports.size()), num_static_supports_)
      << "DiffusionGcn configured for " << num_static_supports_ << " supports";
  URCL_CHECK_EQ(adaptive != nullptr, use_adaptive_)
      << "DiffusionGcn adaptive-support usage does not match configuration";
  URCL_CHECK_EQ(x.shape().dim(1), in_channels_);

  std::vector<Tensor> terms;
  terms.push_back(x);  // k = 0 identity term
  for (const Tensor& support : supports) {
    Tensor hop = x;
    for (int64_t k = 0; k < max_diffusion_step_; ++k) {
      hop = GraphMatMul(support, hop);
      terms.push_back(hop);
    }
  }
  if (use_adaptive_) {
    Tensor hop = x;
    for (int64_t k = 0; k < max_diffusion_step_; ++k) {
      hop = GraphMatMul(*adaptive, hop);
      terms.push_back(hop);
    }
  }
  const Tensor stacked = top::Concat(terms, /*axis=*/1);
  return projection_->InferForward(stacked);
}

}  // namespace nn
}  // namespace urcl
