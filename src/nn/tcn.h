// Gated temporal convolution (Eq. 26): h = tanh(W1 * X) ⊙ sigmoid(W2 * X)
// built from dilated causal convolutions (Eq. 25).
#ifndef URCL_NN_TCN_H_
#define URCL_NN_TCN_H_

#include "nn/module.h"

namespace urcl {
namespace nn {

class GatedTcn : public Module {
 public:
  GatedTcn(int64_t in_channels, int64_t out_channels, int64_t kernel_size, int64_t dilation,
           Rng& rng);

  // [B, C_in, N, T] -> [B, C_out, N, T - dilation*(kernel-1)]
  Variable Forward(const Variable& x) const;
  // Tape-free forward (serving executor); bitwise-equal to Forward.
  Tensor InferForward(const Tensor& x) const;

  // Time steps consumed by the receptive field.
  int64_t TimeShrink() const { return dilation_ * (kernel_size_ - 1); }

  int64_t out_channels() const { return out_channels_; }

 private:
  int64_t in_channels_;
  int64_t out_channels_;
  int64_t kernel_size_;
  int64_t dilation_;
  Variable filter_weight_;  // [C_out, C_in, 1, K]
  Variable filter_bias_;    // [1, C_out, 1, 1]
  Variable gate_weight_;
  Variable gate_bias_;
};

}  // namespace nn
}  // namespace urcl

#endif  // URCL_NN_TCN_H_
