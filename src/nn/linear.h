// Fully connected layers: Linear on the trailing axis, ChannelLinear (1x1
// convolution) on the channel axis of [B, C, N, T] tensors, and an Mlp stack.
#ifndef URCL_NN_LINEAR_H_
#define URCL_NN_LINEAR_H_

#include <memory>
#include <vector>

#include "nn/module.h"

namespace urcl {
namespace nn {

// y = x W + b over the last axis: [..., in] -> [..., out].
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias = true);

  Variable Forward(const Variable& x) const;
  // Tape-free forward for the serving executor: identical kernel sequence as
  // Forward, so outputs are bitwise-equal to the tape path on equal inputs.
  Tensor InferForward(const Tensor& x) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Variable weight_;  // [in, out]
  Variable bias_;    // [out] or empty
};

// 1x1 "convolution": linear map over the channel axis of [B, C, N, T].
// This is how GraphWaveNet implements its start/skip/end projections.
class ChannelLinear : public Module {
 public:
  ChannelLinear(int64_t in_channels, int64_t out_channels, Rng& rng, bool bias = true);

  // [B, C_in, N, T] -> [B, C_out, N, T]
  Variable Forward(const Variable& x) const;
  Tensor InferForward(const Tensor& x) const;

 private:
  int64_t in_channels_;
  int64_t out_channels_;
  Variable weight_;  // [C_out, C_in, 1, 1]
  Variable bias_;    // [1, C_out, 1, 1] or empty
};

enum class Activation { kNone, kRelu, kTanh, kSigmoid };

// Stacked Linear layers with an activation between (and optionally after).
class Mlp : public Module {
 public:
  // `sizes` = {in, hidden..., out}. Activation applied after each layer
  // except the last unless `activate_last`.
  Mlp(const std::vector<int64_t>& sizes, Rng& rng,
      Activation activation = Activation::kRelu, bool activate_last = false);

  Variable Forward(const Variable& x) const;
  Tensor InferForward(const Tensor& x) const;

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  Activation activation_;
  bool activate_last_;
};

// Applies the given activation (kNone passes through).
Variable Activate(const Variable& x, Activation activation);
Tensor Activate(const Tensor& x, Activation activation);

}  // namespace nn
}  // namespace urcl

#endif  // URCL_NN_LINEAR_H_
