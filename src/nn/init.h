// Weight-initialization schemes.
#ifndef URCL_NN_INIT_H_
#define URCL_NN_INIT_H_

#include "common/rng.h"
#include "tensor/tensor.h"

namespace urcl {
namespace nn {

// Glorot/Xavier uniform for a [fan_in, fan_out]-style weight.
Tensor GlorotUniform(const Shape& shape, Rng& rng, int64_t fan_in, int64_t fan_out);

// Kaiming/He uniform for ReLU-family layers.
Tensor KaimingUniform(const Shape& shape, Rng& rng, int64_t fan_in);

}  // namespace nn
}  // namespace urcl

#endif  // URCL_NN_INIT_H_
