#include "augment/augmentation.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "graph/algorithms.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace augment {
namespace {

void CheckObservations(const Tensor& observations, const graph::SensorNetwork& graph) {
  URCL_CHECK_EQ(observations.rank(), 4) << "observations must be [B, M, N, C]";
  URCL_CHECK_EQ(observations.dim(2), graph.num_nodes())
      << "observation node axis does not match the sensor network";
}

// Zeros the feature entries of `nodes` in a [B, M, N, C] tensor.
void MaskNodesInObservations(Tensor* observations, const std::vector<bool>& dropped) {
  const int64_t batch = observations->dim(0), steps = observations->dim(1),
                nodes = observations->dim(2), channels = observations->dim(3);
  float* p = observations->mutable_data();
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t m = 0; m < steps; ++m) {
      for (int64_t n = 0; n < nodes; ++n) {
        if (!dropped[static_cast<size_t>(n)]) continue;
        float* cell = p + ((b * steps + m) * nodes + n) * channels;
        std::fill(cell, cell + channels, 0.0f);
      }
    }
  }
}

// Zeros adjacency rows and columns of `nodes`.
void MaskNodesInAdjacency(Tensor* adjacency, const std::vector<bool>& dropped) {
  const int64_t n = adjacency->dim(0);
  float* p = adjacency->mutable_data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      if (dropped[static_cast<size_t>(i)] || dropped[static_cast<size_t>(j)]) {
        p[i * n + j] = 0.0f;
      }
    }
  }
}

}  // namespace

DropNodes::DropNodes(float drop_ratio) : drop_ratio_(drop_ratio) {
  URCL_CHECK(drop_ratio >= 0.0f && drop_ratio < 1.0f);
}

AugmentedView DropNodes::Apply(const Tensor& observations, const graph::SensorNetwork& graph,
                               Rng& rng) const {
  CheckObservations(observations, graph);
  const int64_t n = graph.num_nodes();
  const int64_t drop = static_cast<int64_t>(std::floor(drop_ratio_ * n));
  std::vector<bool> dropped(static_cast<size_t>(n), false);
  for (const int64_t node : rng.SampleWithoutReplacement(n, drop)) {
    dropped[static_cast<size_t>(node)] = true;
  }
  AugmentedView view{observations.Clone(), graph.AdjacencyMatrix()};
  MaskNodesInObservations(&view.observations, dropped);
  MaskNodesInAdjacency(&view.adjacency, dropped);
  return view;
}

DropEdge::DropEdge(float sample_ratio, float threshold_quantile)
    : sample_ratio_(sample_ratio), threshold_quantile_(threshold_quantile) {
  URCL_CHECK(sample_ratio >= 0.0f && sample_ratio <= 1.0f);
  URCL_CHECK(threshold_quantile >= 0.0f && threshold_quantile <= 1.0f);
}

AugmentedView DropEdge::Apply(const Tensor& observations, const graph::SensorNetwork& graph,
                              Rng& rng) const {
  CheckObservations(observations, graph);
  AugmentedView view{observations.Clone(), graph.AdjacencyMatrix()};
  const auto& edges = graph.edges();
  if (edges.empty()) return view;

  // Sample candidate edges, derive theta_DE from their weight distribution.
  std::vector<int64_t> candidates;
  for (int64_t e = 0; e < static_cast<int64_t>(edges.size()); ++e) {
    if (rng.Bernoulli(sample_ratio_)) candidates.push_back(e);
  }
  if (candidates.empty()) return view;
  std::vector<float> weights;
  weights.reserve(candidates.size());
  for (const int64_t e : candidates) weights.push_back(edges[static_cast<size_t>(e)].weight);
  std::sort(weights.begin(), weights.end());
  const size_t idx = std::min(weights.size() - 1,
                              static_cast<size_t>(threshold_quantile_ * weights.size()));
  const float threshold = weights[idx];

  const int64_t n = graph.num_nodes();
  float* p = view.adjacency.mutable_data();
  for (const int64_t e : candidates) {
    const graph::Edge& edge = edges[static_cast<size_t>(e)];
    if (edge.weight < threshold) p[edge.src * n + edge.dst] = 0.0f;
  }
  return view;
}

SubGraph::SubGraph(float walk_length_factor) : walk_length_factor_(walk_length_factor) {
  URCL_CHECK_GT(walk_length_factor, 0.0f);
}

AugmentedView SubGraph::Apply(const Tensor& observations, const graph::SensorNetwork& graph,
                              Rng& rng) const {
  CheckObservations(observations, graph);
  const int64_t n = graph.num_nodes();
  const int64_t start = rng.UniformInt(0, n - 1);
  const int64_t walk_length =
      static_cast<int64_t>(std::ceil(walk_length_factor_ * static_cast<float>(n)));
  const std::vector<int64_t> kept = graph::RandomWalkNodes(graph, start, walk_length, rng);
  std::vector<bool> dropped(static_cast<size_t>(n), true);
  for (const int64_t node : kept) dropped[static_cast<size_t>(node)] = false;
  AugmentedView view{observations.Clone(), graph.AdjacencyMatrix()};
  MaskNodesInObservations(&view.observations, dropped);
  MaskNodesInAdjacency(&view.adjacency, dropped);
  return view;
}

AddEdge::AddEdge(float add_ratio, int64_t min_hops) : add_ratio_(add_ratio), min_hops_(min_hops) {
  URCL_CHECK(add_ratio >= 0.0f && add_ratio <= 1.0f);
  URCL_CHECK_GE(min_hops, 1);
}

AugmentedView AddEdge::Apply(const Tensor& observations, const graph::SensorNetwork& graph,
                             Rng& rng) const {
  CheckObservations(observations, graph);
  AugmentedView view{observations.Clone(), graph.AdjacencyMatrix()};
  const auto pairs = graph::DistantNodePairs(graph, min_hops_);
  if (pairs.empty()) return view;
  const int64_t add = std::max<int64_t>(
      1, static_cast<int64_t>(add_ratio_ * static_cast<float>(pairs.size())));
  const std::vector<int64_t> chosen =
      rng.SampleWithoutReplacement(static_cast<int64_t>(pairs.size()),
                                   std::min<int64_t>(add, static_cast<int64_t>(pairs.size())));

  // Node feature vectors: mean over batch and time -> [N, C] (Eq. 8).
  const Tensor features = ops::Mean(observations, {0, 1});
  const int64_t n = graph.num_nodes();
  const int64_t c = features.dim(1);
  float* p = view.adjacency.mutable_data();
  for (const int64_t k : chosen) {
    const auto [i, j] = pairs[static_cast<size_t>(k)];
    float dot = 0.0f;
    for (int64_t ch = 0; ch < c; ++ch) {
      dot += features.At({i, ch}) * features.At({j, ch});
    }
    p[i * n + j] = dot;
    p[j * n + i] = dot;
  }
  return view;
}

TimeShifting::TimeShifting(float min_slice_fraction) : min_slice_fraction_(min_slice_fraction) {
  URCL_CHECK(min_slice_fraction > 0.0f && min_slice_fraction <= 1.0f);
}

Tensor TimeShifting::SliceAndWarp(const Tensor& observations, int64_t slice_start,
                                  int64_t slice_length) {
  URCL_CHECK_EQ(observations.rank(), 4);
  const int64_t steps = observations.dim(1);
  URCL_CHECK(slice_start >= 0 && slice_length >= 2 && slice_start + slice_length <= steps);
  const Tensor sliced =
      ops::Slice(observations, {0, slice_start, 0, 0},
                 {observations.dim(0), slice_length, observations.dim(2), observations.dim(3)});
  // Linear interpolation back up to `steps` samples (time warping, Eq. 10).
  Tensor warped(observations.shape());
  const int64_t batch = observations.dim(0), nodes = observations.dim(2),
                channels = observations.dim(3);
  for (int64_t t = 0; t < steps; ++t) {
    const float source =
        steps > 1
            ? static_cast<float>(t) * static_cast<float>(slice_length - 1) /
                  static_cast<float>(steps - 1)
            : 0.0f;
    const int64_t lo = static_cast<int64_t>(std::floor(source));
    const int64_t hi = std::min(lo + 1, slice_length - 1);
    const float frac = source - static_cast<float>(lo);
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t n = 0; n < nodes; ++n) {
        for (int64_t ch = 0; ch < channels; ++ch) {
          const float v = (1.0f - frac) * sliced.At({b, lo, n, ch}) +
                          frac * sliced.At({b, hi, n, ch});
          warped.Set({b, t, n, ch}, v);
        }
      }
    }
  }
  return warped;
}

AugmentedView TimeShifting::Apply(const Tensor& observations,
                                  const graph::SensorNetwork& graph, Rng& rng) const {
  CheckObservations(observations, graph);
  const int64_t steps = observations.dim(1);
  AugmentedView view{observations.Clone(), graph.AdjacencyMatrix()};

  const int64_t mode = rng.UniformInt(0, 2);  // 0: slice+warp, 1: flip, 2: both
  Tensor result = view.observations;
  if (mode == 0 || mode == 2) {
    const int64_t min_len = std::max<int64_t>(
        2, static_cast<int64_t>(std::ceil(min_slice_fraction_ * static_cast<float>(steps))));
    const int64_t slice_length = rng.UniformInt(min_len, steps);
    const int64_t slice_start = rng.UniformInt(0, steps - slice_length);
    result = SliceAndWarp(result, slice_start, slice_length);
  }
  if (mode == 1 || mode == 2) {
    result = ops::Flip(result, /*axis=*/1);  // time flipping (Eq. 11)
  }
  view.observations = result;
  return view;
}

std::vector<std::unique_ptr<Augmentation>> MakeDefaultAugmentations() {
  std::vector<std::unique_ptr<Augmentation>> augmentations;
  augmentations.push_back(std::make_unique<DropNodes>());
  augmentations.push_back(std::make_unique<DropEdge>());
  augmentations.push_back(std::make_unique<SubGraph>());
  augmentations.push_back(std::make_unique<AddEdge>());
  augmentations.push_back(std::make_unique<TimeShifting>());
  return augmentations;
}

std::pair<const Augmentation*, const Augmentation*> PickTwoDistinct(
    const std::vector<std::unique_ptr<Augmentation>>& augmentations, Rng& rng) {
  URCL_CHECK_GE(augmentations.size(), 2u) << "need at least two augmentations";
  const std::vector<int64_t> picks =
      rng.SampleWithoutReplacement(static_cast<int64_t>(augmentations.size()), 2);
  return {augmentations[static_cast<size_t>(picks[0])].get(),
          augmentations[static_cast<size_t>(picks[1])].get()};
}

}  // namespace augment
}  // namespace urcl
