// The five spatio-temporal data augmentations of Sec. IV-C1: DropNodes (DN),
// DropEdge (DE), SubGraph (SG), AddEdge (AE) and TimeShifting (TS).
//
// All augmentations are shape-preserving: a sample G = [X; G] keeps its
// [B, M, N, C] observation tensor and [N, N] adjacency, with dropped nodes /
// edges masked to zero. This keeps the shared STEncoder (whose adaptive
// adjacency embeddings are sized to N) applicable to both views.
#ifndef URCL_AUGMENT_AUGMENTATION_H_
#define URCL_AUGMENT_AUGMENTATION_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "graph/sensor_network.h"
#include "tensor/tensor.h"

namespace urcl {
namespace augment {

// A perturbed view G' = [X'; G'].
struct AugmentedView {
  Tensor observations;  // [B, M, N, C]
  Tensor adjacency;     // [N, N]
};

class Augmentation {
 public:
  virtual ~Augmentation() = default;
  virtual std::string name() const = 0;

  // Produces a perturbed view of (observations, graph). `observations` is
  // [B, M, N, C]; the graph supplies the adjacency being perturbed.
  virtual AugmentedView Apply(const Tensor& observations, const graph::SensorNetwork& graph,
                              Rng& rng) const = 0;
};

// DN: discards a fraction of nodes; their adjacency rows/columns and feature
// entries are masked to zero (Eq. 6).
class DropNodes : public Augmentation {
 public:
  explicit DropNodes(float drop_ratio = 0.1f);
  std::string name() const override { return "DN"; }
  AugmentedView Apply(const Tensor& observations, const graph::SensorNetwork& graph,
                      Rng& rng) const override;

 private:
  float drop_ratio_;
};

// DE: samples a fraction of edges and deletes those with weight below the
// threshold (Eq. 7). threshold_quantile picks theta_DE as that quantile of
// the sampled edges' weights, so "important connectives" are retained.
class DropEdge : public Augmentation {
 public:
  explicit DropEdge(float sample_ratio = 0.3f, float threshold_quantile = 0.5f);
  std::string name() const override { return "DE"; }
  AugmentedView Apply(const Tensor& observations, const graph::SensorNetwork& graph,
                      Rng& rng) const override;

 private:
  float sample_ratio_;
  float threshold_quantile_;
};

// SG: keeps the nodes visited by a random walk, masking the rest.
class SubGraph : public Augmentation {
 public:
  explicit SubGraph(float walk_length_factor = 2.0f);
  std::string name() const override { return "SG"; }
  AugmentedView Apply(const Tensor& observations, const graph::SensorNetwork& graph,
                      Rng& rng) const override;

 private:
  float walk_length_factor_;
};

// AE: connects a fraction of distant node pairs (>= min_hops) with weights
// set to the dot-product similarity of their feature vectors (Eq. 8).
class AddEdge : public Augmentation {
 public:
  explicit AddEdge(float add_ratio = 0.1f, int64_t min_hops = 3);
  std::string name() const override { return "AE"; }
  AugmentedView Apply(const Tensor& observations, const graph::SensorNetwork& graph,
                      Rng& rng) const override;

 private:
  float add_ratio_;
  int64_t min_hops_;
};

// TS: one of time slicing + warping (Eq. 9-10), time flipping (Eq. 11), or
// both, selected at random. Always returns a length-M sequence.
class TimeShifting : public Augmentation {
 public:
  explicit TimeShifting(float min_slice_fraction = 0.5f);
  std::string name() const override { return "TS"; }
  AugmentedView Apply(const Tensor& observations, const graph::SensorNetwork& graph,
                      Rng& rng) const override;

  // Exposed for tests: slice then linearly re-warp to the original length.
  static Tensor SliceAndWarp(const Tensor& observations, int64_t slice_start,
                             int64_t slice_length);

 private:
  float min_slice_fraction_;
};

// The full augmentation set, in paper order {DN, DE, SG, AE, TS}.
std::vector<std::unique_ptr<Augmentation>> MakeDefaultAugmentations();

// Picks two *different* augmentations uniformly at random.
std::pair<const Augmentation*, const Augmentation*> PickTwoDistinct(
    const std::vector<std::unique_ptr<Augmentation>>& augmentations, Rng& rng);

}  // namespace augment
}  // namespace urcl

#endif  // URCL_AUGMENT_AUGMENTATION_H_
