#include "tensor/shape.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace urcl {

int64_t Shape::dim(int64_t axis) const {
  const int64_t canonical = CanonicalAxis(axis);
  return dims_[static_cast<size_t>(canonical)];
}

int64_t Shape::NumElements() const {
  int64_t total = 1;
  for (const int64_t d : dims_) total *= d;
  return total;
}

std::vector<int64_t> Shape::Strides() const {
  std::vector<int64_t> strides(dims_.size(), 1);
  for (int64_t i = rank() - 2; i >= 0; --i) {
    strides[static_cast<size_t>(i)] =
        strides[static_cast<size_t>(i + 1)] * dims_[static_cast<size_t>(i + 1)];
  }
  return strides;
}

int64_t Shape::CanonicalAxis(int64_t axis) const {
  const int64_t r = rank();
  if (axis < 0) axis += r;
  URCL_CHECK(axis >= 0 && axis < r) << "axis out of range for shape " << ToString();
  return axis;
}

std::string Shape::ToString() const {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) out << ", ";
    out << dims_[i];
  }
  out << "]";
  return out.str();
}

Shape BroadcastShapes(const Shape& a, const Shape& b) {
  const int64_t rank = std::max(a.rank(), b.rank());
  std::vector<int64_t> dims(static_cast<size_t>(rank), 1);
  for (int64_t i = 0; i < rank; ++i) {
    const int64_t da = i < a.rank() ? a.dim(a.rank() - 1 - i) : 1;
    const int64_t db = i < b.rank() ? b.dim(b.rank() - 1 - i) : 1;
    URCL_CHECK(da == db || da == 1 || db == 1)
        << "cannot broadcast " << a.ToString() << " with " << b.ToString();
    dims[static_cast<size_t>(rank - 1 - i)] = std::max(da, db);
  }
  return Shape(std::move(dims));
}

bool IsBroadcastableTo(const Shape& from, const Shape& to) {
  if (from.rank() > to.rank()) return false;
  for (int64_t i = 0; i < from.rank(); ++i) {
    const int64_t df = from.dim(from.rank() - 1 - i);
    const int64_t dt = to.dim(to.rank() - 1 - i);
    if (df != dt && df != 1) return false;
  }
  return true;
}

}  // namespace urcl
