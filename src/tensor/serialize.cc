#include "tensor/serialize.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/check.h"

namespace urcl {
namespace {

constexpr uint32_t kTensorMagic = 0x4c435255;  // "URCL"

template <typename T>
void WritePod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T ReadPod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  URCL_CHECK(in.good()) << "tensor stream truncated";
  return value;
}

}  // namespace

void SaveTensor(const Tensor& tensor, std::ostream& out) {
  WritePod(out, kTensorMagic);
  WritePod(out, static_cast<int64_t>(tensor.rank()));
  for (const int64_t d : tensor.shape().dims()) WritePod(out, d);
  out.write(reinterpret_cast<const char*>(tensor.data()),
            static_cast<std::streamsize>(tensor.NumElements() * sizeof(float)));
  URCL_CHECK(out.good()) << "tensor write failed";
}

Tensor LoadTensor(std::istream& in) {
  const uint32_t magic = ReadPod<uint32_t>(in);
  URCL_CHECK_EQ(magic, kTensorMagic) << "bad tensor magic";
  const int64_t rank = ReadPod<int64_t>(in);
  URCL_CHECK(rank >= 0 && rank <= 16) << "implausible tensor rank " << rank;
  std::vector<int64_t> dims(static_cast<size_t>(rank));
  for (auto& d : dims) {
    d = ReadPod<int64_t>(in);
    URCL_CHECK_GE(d, 0);
  }
  Tensor tensor{Shape(dims)};
  in.read(reinterpret_cast<char*>(tensor.mutable_data()),
          static_cast<std::streamsize>(tensor.NumElements() * sizeof(float)));
  URCL_CHECK(in.good()) << "tensor data truncated";
  return tensor;
}

void SaveTensors(const std::vector<Tensor>& tensors, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  URCL_CHECK(out.is_open()) << "cannot open " << path << " for writing";
  WritePod(out, static_cast<int64_t>(tensors.size()));
  for (const Tensor& t : tensors) SaveTensor(t, out);
}

std::vector<Tensor> LoadTensors(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  URCL_CHECK(in.is_open()) << "cannot open " << path << " for reading";
  const int64_t count = ReadPod<int64_t>(in);
  URCL_CHECK(count >= 0) << "bad tensor count";
  std::vector<Tensor> tensors;
  tensors.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) tensors.push_back(LoadTensor(in));
  return tensors;
}

}  // namespace urcl
