#include "tensor/serialize.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/check.h"

namespace urcl {
namespace io {

template <typename T>
void WritePod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
  URCL_CHECK(out.good()) << "stream write failed";
}

template <typename T>
T ReadPod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  URCL_CHECK(in.good()) << "tensor stream truncated";
  return value;
}

// Explicit instantiations for the POD types the checkpoint encoders use.
template void WritePod<uint32_t>(std::ostream&, uint32_t);
template void WritePod<uint64_t>(std::ostream&, uint64_t);
template void WritePod<int64_t>(std::ostream&, int64_t);
template void WritePod<float>(std::ostream&, float);
template void WritePod<double>(std::ostream&, double);
template uint32_t ReadPod<uint32_t>(std::istream&);
template uint64_t ReadPod<uint64_t>(std::istream&);
template int64_t ReadPod<int64_t>(std::istream&);
template float ReadPod<float>(std::istream&);
template double ReadPod<double>(std::istream&);

int64_t StreamRemaining(std::istream& in) {
  const std::streampos pos = in.tellg();
  if (pos < 0) return -1;
  in.seekg(0, std::ios::end);
  const std::streampos end = in.tellg();
  in.seekg(pos);
  if (end < 0 || !in.good()) return -1;
  return static_cast<int64_t>(end - pos);
}

}  // namespace io

namespace {

using io::ReadPod;
using io::WritePod;

constexpr uint32_t kTensorMagic = 0x4c435255;  // "URCL"
// 2^40 elements (4 TiB of float32) — far above any real tensor; guards the
// element-count product against int64 overflow from hostile dim fields.
constexpr int64_t kMaxElements = int64_t{1} << 40;

}  // namespace

void SaveTensor(const Tensor& tensor, std::ostream& out) {
  WritePod(out, kTensorMagic);
  WritePod(out, static_cast<int64_t>(tensor.rank()));
  for (const int64_t d : tensor.shape().dims()) WritePod(out, d);
  out.write(reinterpret_cast<const char*>(tensor.data()),
            static_cast<std::streamsize>(tensor.NumElements() * sizeof(float)));
  URCL_CHECK(out.good()) << "tensor write failed";
}

Tensor LoadTensor(std::istream& in) {
  const uint32_t magic = ReadPod<uint32_t>(in);
  URCL_CHECK_EQ(magic, kTensorMagic) << "bad tensor magic";
  const int64_t rank = ReadPod<int64_t>(in);
  URCL_CHECK(rank >= 0 && rank <= 16) << "implausible tensor rank " << rank;

  // Validate the header against the bytes actually present before allocating:
  // a corrupt dim field must not trigger a huge allocation or a short read.
  const int64_t remaining_header = io::StreamRemaining(in);
  URCL_CHECK(remaining_header < 0 ||
             remaining_header >= rank * static_cast<int64_t>(sizeof(int64_t)))
      << "tensor stream truncated: rank " << rank << " needs "
      << rank * static_cast<int64_t>(sizeof(int64_t)) << " header bytes but only "
      << remaining_header << " remain";

  std::vector<int64_t> dims(static_cast<size_t>(rank));
  int64_t elements = 1;
  for (auto& d : dims) {
    d = ReadPod<int64_t>(in);
    URCL_CHECK_GE(d, 0);
    URCL_CHECK(d == 0 || elements <= kMaxElements / d)
        << "tensor header dims overflow (dim " << d << ")";
    elements *= d;
  }
  const int64_t payload_bytes = elements * static_cast<int64_t>(sizeof(float));
  const int64_t remaining = io::StreamRemaining(in);
  URCL_CHECK(remaining < 0 || payload_bytes <= remaining)
      << "tensor data truncated: header claims " << payload_bytes << " bytes but only "
      << remaining << " remain";

  Tensor tensor{Shape(dims)};
  in.read(reinterpret_cast<char*>(tensor.mutable_data()),
          static_cast<std::streamsize>(payload_bytes));
  URCL_CHECK(in.good() || (payload_bytes == 0 && !in.bad())) << "tensor data truncated";
  return tensor;
}

void SaveTensors(const std::vector<Tensor>& tensors, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  URCL_CHECK(out.is_open()) << "cannot open " << path << " for writing";
  WritePod(out, static_cast<int64_t>(tensors.size()));
  for (const Tensor& t : tensors) SaveTensor(t, out);
}

std::vector<Tensor> LoadTensors(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  URCL_CHECK(in.is_open()) << "cannot open " << path << " for reading";
  const int64_t count = ReadPod<int64_t>(in);
  // Every tensor occupies at least magic + rank = 12 bytes; a corrupt count
  // field cannot pass this bound.
  const int64_t remaining = io::StreamRemaining(in);
  URCL_CHECK(count >= 0 && (remaining < 0 || count <= remaining / 12))
      << "bad tensor count " << count << " for " << remaining << " remaining bytes in "
      << path;
  std::vector<Tensor> tensors;
  tensors.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) tensors.push_back(LoadTensor(in));
  return tensors;
}

}  // namespace urcl
