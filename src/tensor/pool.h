// Pooled tensor storage: a thread-safe size-class free-list behind Tensor's
// shared_ptr storage. Training loops allocate the same handful of shapes
// thousands of times (every op — including each node on the autograd tape —
// produces a fresh output tensor), so steady-state acquisition should be a
// mutex-guarded pop instead of a malloc. Buffers are returned by the
// shared_ptr's custom deleter when the last Tensor referencing them dies.
//
// Policy:
//  - size classes are powers of two (min 32 floats), so recurring shapes hit
//    the same class even when augmentation jitters sizes slightly;
//  - cap-with-trim: cached bytes are bounded (URCL_POOL_CAP_MB, default 256);
//    a buffer whose return would exceed the cap is freed instead of cached;
//  - `URCL_POOL=off` in the environment disables pooling entirely (every
//    acquire mallocs, every release frees) — the escape hatch for debugging
//    with ASan heap tooling or auditing allocator behaviour;
//  - buffers are 64-byte aligned (cache line, and any vector ISA's natural
//    alignment — the SIMD kernels use unaligned loads, so this is a
//    performance nicety, not a correctness requirement).
//
// The pool affects only *where* storage comes from, never its contents, so
// it is invisible to the numerics: results are bitwise identical with the
// pool on or off.
#ifndef URCL_TENSOR_POOL_H_
#define URCL_TENSOR_POOL_H_

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.h"

namespace urcl {
namespace pool {

// Per-process counters, mirrored from the observability registry: the pool's
// stats live permanently as `urcl.pool.*` counters/gauges (they are updated
// under the pool mutex the pool already takes, so residency costs nothing),
// and this struct is the aggregate read-back view. hits/misses/returns/trims
// are monotonic event counts (resettable for benchmarking windows);
// live_bytes/pooled_bytes are gauges.
struct PoolStats {
  uint64_t hits = 0;          // acquires served from a cached buffer
  uint64_t misses = 0;        // acquires that hit the system allocator
  uint64_t returns = 0;       // buffers returned to the free lists
  uint64_t trims = 0;         // buffers freed instead of cached (cap/Trim)
  uint64_t live_bytes = 0;    // bytes currently handed out to tensors
  uint64_t pooled_bytes = 0;  // bytes currently cached in free lists
};

class BufferPool {
 public:
  // Process-wide instance (leaked on purpose: tensors with static storage
  // duration may return buffers after main exits).
  static BufferPool& Get();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Returns storage for `count` floats whose deleter hands the buffer back
  // to the pool. `count` 0 is allowed (smallest class). When `zero_fill`,
  // the first `count` floats are zeroed; otherwise contents are
  // unspecified (recycled buffers carry stale data).
  std::shared_ptr<float> Acquire(int64_t count, bool zero_fill);

  // Thin wrapper reading the `urcl.pool.*` registry metrics back into the
  // legacy aggregate view (kept for existing callers; new consumers should
  // read the registry directly).
  PoolStats Stats() const;
  // Zeroes the event counters (hits/misses/returns/trims); byte gauges are
  // left alone. For stats windows in tests and benchmarks.
  void ResetCounters();

  // Frees every cached buffer; returns the number of bytes released.
  int64_t Trim();

  bool enabled() const;
  // Test/benchmark hook; the URCL_POOL env var sets the initial value.
  void set_enabled(bool enabled);

  void set_capacity_bytes(uint64_t cap);
  uint64_t capacity_bytes() const;

  // Parsing helpers, exposed for tests ("off"/"0"/"false" disable).
  static bool ParseEnabled(const char* value);

 private:
  BufferPool();

  // Releases one buffer of `class_index` back to the pool (or frees it).
  void Release(float* ptr, int size_class);
  static void FreeRaw(float* ptr);

  mutable std::mutex mu_;
  // Free lists indexed by log2 of the class size in floats.
  std::array<std::vector<float*>, 48> free_lists_;
  // Registry-resident stats (stable references; registry outlives the pool).
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& returns_;
  obs::Counter& trims_;
  obs::Gauge& live_bytes_;
  obs::Gauge& pooled_bytes_;
  uint64_t capacity_bytes_;
  bool enabled_;
};

}  // namespace pool
}  // namespace urcl

#endif  // URCL_TENSOR_POOL_H_
