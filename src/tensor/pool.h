// Pooled tensor storage: a thread-safe size-class free-list behind Tensor's
// shared_ptr storage. Training loops allocate the same handful of shapes
// thousands of times (every op — including each node on the autograd tape —
// produces a fresh output tensor), so steady-state acquisition should be a
// mutex-guarded pop instead of a malloc. Buffers are returned by the
// shared_ptr's custom deleter when the last Tensor referencing them dies.
//
// Policy:
//  - size classes are powers of two (min 32 floats), so recurring shapes hit
//    the same class even when augmentation jitters sizes slightly;
//  - cap-with-trim: cached bytes are bounded (URCL_POOL_CAP_MB, default 256);
//    a buffer whose return would exceed the cap is freed instead of cached;
//  - `URCL_POOL=off` in the environment disables pooling entirely (every
//    acquire mallocs, every release frees) — the escape hatch for debugging
//    with ASan heap tooling or auditing allocator behaviour;
//  - buffers are 64-byte aligned (cache line, and any vector ISA's natural
//    alignment — the SIMD kernels use unaligned loads, so this is a
//    performance nicety, not a correctness requirement).
//
// Poisoning (DESIGN.md §9): recycling makes use-after-release and
// read-before-write of `Tensor::Uninitialized` storage invisible to heap
// tooling — the pool owns the memory either way. When poisoning is enabled
// (default in debug builds; URCL_POOL_POISON=1/0 overrides, and tests can
// flip it at runtime), every cached free-list buffer and every
// non-zero-filled acquisition is filled with kPoisonWord, a signaling-NaN bit
// pattern: a kernel that reads a byte it never wrote produces NaNs that trip
// AllFinite/tests instead of silently wrong numbers, and unwritten output
// regions stay recognizable via IsPoisonWord. Under AddressSanitizer
// (URCL_SANITIZE=address) cached buffers are additionally
// __asan_poison_memory_region'd while they sit in the free list, so touching
// a released buffer is a hard ASan crash.
//
// The pool affects only *where* storage comes from, never its contents, so
// it is invisible to the numerics: results are bitwise identical with the
// pool on or off. (Poisoning only ever changes bytes a correct kernel never
// reads; with it disabled the contents are untouched.)
#ifndef URCL_TENSOR_POOL_H_
#define URCL_TENSOR_POOL_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace urcl {
namespace pool {

// Signaling-NaN bit pattern used to poison recycled / uninitialized buffers
// (sign 0, exponent all-ones, quiet bit clear, non-zero mantissa).
inline constexpr uint32_t kPoisonWord = 0x7fa1a1a1u;

// True when `value` holds exactly the poison bit pattern.
bool IsPoisonWord(float value);

// Number of elements in [p, p + count) still holding the poison pattern.
// Audit helper for "did this kernel write every element" tests.
int64_t CountPoisonWords(const float* p, int64_t count);

// Pluggable storage source for Tensor construction. The two Tensor funnels
// (zero-filled construction and Tensor::Uninitialized) route every
// acquisition through AcquireStorage(), which consults the thread-local hook
// before falling back to the process-wide BufferPool. The compiled executor
// (src/exec/) installs its arena as the hook for the duration of a plan
// replay so steady-state steps make zero pool acquisitions; everything else
// never notices the indirection (one predictable thread-local branch).
class StorageHook;  // fwd
StorageHook* ActiveStorageHook();
void SetStorageHook(StorageHook* hook);

// Per-process counters, mirrored from the observability registry: the pool's
// stats live permanently as `urcl.pool.*` counters/gauges (they are updated
// under the pool mutex the pool already takes, so residency costs nothing),
// and this struct is the aggregate read-back view. hits/misses/returns/trims
// are monotonic event counts (resettable for benchmarking windows);
// live_bytes/pooled_bytes are gauges.
struct PoolStats {
  uint64_t hits = 0;          // acquires served from a cached buffer
  uint64_t misses = 0;        // acquires that hit the system allocator
  uint64_t returns = 0;       // buffers returned to the free lists
  uint64_t trims = 0;         // buffers freed instead of cached (cap/Trim)
  uint64_t live_bytes = 0;    // bytes currently handed out to tensors
  uint64_t pooled_bytes = 0;  // bytes currently cached in free lists
};

class BufferPool {
 public:
  // Process-wide instance (leaked on purpose: tensors with static storage
  // duration may return buffers after main exits).
  static BufferPool& Get();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // One storage acquisition: the buffer plus its write-version counter
  // (`urcl::check`, DESIGN.md §9). Both pointers alias a single heap block
  // (make_shared control block carrying the counter), so the counter costs no
  // extra allocation and lives exactly as long as anything pinning either
  // pointer — which is what lets an autograd edge hold the counter to pin the
  // captured storage generation.
  struct Acquisition {
    std::shared_ptr<float> data;
    std::shared_ptr<std::atomic<uint64_t>> version;
  };

  // Returns storage for `count` floats whose deleter hands the buffer back
  // to the pool. `count` 0 is allowed (smallest class). When `zero_fill`,
  // the first `count` floats are zeroed; otherwise contents are
  // unspecified when poisoning is off, kPoisonWord-filled when on.
  Acquisition AcquireWithVersion(int64_t count, bool zero_fill);

  // AcquireWithVersion dropping the version handle (counter stays allocated
  // in the shared block, just unobserved).
  std::shared_ptr<float> Acquire(int64_t count, bool zero_fill);

  // Deleter entry point: hands one buffer of `size_class` back to the free
  // lists (or the allocator). Only meaningful for pointers this pool handed
  // out; Tensor storage calls it via the Acquisition block's destructor.
  void Release(float* ptr, int size_class);

  // Thin wrapper reading the `urcl.pool.*` registry metrics back into the
  // legacy aggregate view (kept for existing callers; new consumers should
  // read the registry directly).
  PoolStats Stats() const;
  // Zeroes the event counters (hits/misses/returns/trims); byte gauges are
  // left alone. For stats windows in tests and benchmarks.
  void ResetCounters();

  // Frees every cached buffer; returns the number of bytes released.
  int64_t Trim();

  bool enabled() const;
  // Test/benchmark hook; the URCL_POOL env var sets the initial value.
  void set_enabled(bool enabled);

  bool poison_enabled() const;
  // Test hook; URCL_POOL_POISON (else NDEBUG) sets the initial value.
  void set_poison_enabled(bool enabled);

  void set_capacity_bytes(uint64_t cap);
  uint64_t capacity_bytes() const;

  // Parsing helpers, exposed for tests ("off"/"0"/"false" disable).
  static bool ParseEnabled(const char* value);

 private:
  BufferPool();

  static void FreeRaw(float* ptr);

  mutable Mutex mu_;
  // Free lists indexed by log2 of the class size in floats.
  std::array<std::vector<float*>, 48> free_lists_ URCL_GUARDED_BY(mu_);
  // Registry-resident stats (stable references; registry outlives the pool).
  // Not guarded: counters/gauges are internally synchronized — updating them
  // under mu_ is a residency convenience, not a requirement.
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& returns_;
  obs::Counter& trims_;
  obs::Gauge& live_bytes_;
  obs::Gauge& pooled_bytes_;
  uint64_t capacity_bytes_ URCL_GUARDED_BY(mu_);
  bool enabled_ URCL_GUARDED_BY(mu_);
  bool poison_enabled_ URCL_GUARDED_BY(mu_);
};

// Interface a storage hook implements. Acquire must satisfy the same
// contract as BufferPool::AcquireWithVersion: `count` floats, zeroed when
// `zero_fill`, with a live write-version counter aliased to the storage
// lifetime.
class StorageHook {
 public:
  virtual ~StorageHook() = default;
  virtual BufferPool::Acquisition Acquire(int64_t count, bool zero_fill) = 0;
};

// The Tensor storage funnel: thread-local hook when installed, else the pool.
inline BufferPool::Acquisition AcquireStorage(int64_t count, bool zero_fill) {
  if (StorageHook* hook = ActiveStorageHook()) return hook->Acquire(count, zero_fill);
  return BufferPool::Get().AcquireWithVersion(count, zero_fill);
}

// RAII installer for a storage hook (restores the previous one).
class StorageHookScope {
 public:
  explicit StorageHookScope(StorageHook* hook) : previous_(ActiveStorageHook()) {
    SetStorageHook(hook);
  }
  ~StorageHookScope() { SetStorageHook(previous_); }
  StorageHookScope(const StorageHookScope&) = delete;
  StorageHookScope& operator=(const StorageHookScope&) = delete;

 private:
  StorageHook* previous_;
};

}  // namespace pool
}  // namespace urcl

#endif  // URCL_TENSOR_POOL_H_
