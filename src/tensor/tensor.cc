#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace urcl {

Tensor::Tensor() : Tensor(Shape{}) {}

Tensor::Tensor(const Shape& shape)
    : shape_(shape),
      data_(std::make_shared<std::vector<float>>(static_cast<size_t>(shape.NumElements()),
                                                 0.0f)) {}

Tensor Tensor::Zeros(const Shape& shape) { return Tensor(shape); }

Tensor Tensor::Ones(const Shape& shape) { return Full(shape, 1.0f); }

Tensor Tensor::Full(const Shape& shape, float value) {
  Tensor t(shape);
  t.Fill(value);
  return t;
}

Tensor Tensor::Scalar(float value) { return Full(Shape{}, value); }

Tensor Tensor::FromVector(const Shape& shape, const std::vector<float>& values) {
  URCL_CHECK_EQ(shape.NumElements(), static_cast<int64_t>(values.size()))
      << "FromVector: shape " << shape.ToString() << " does not match value count";
  Tensor t(shape);
  std::copy(values.begin(), values.end(), t.mutable_data());
  return t;
}

Tensor Tensor::Arange(int64_t n) {
  Tensor t(Shape{n});
  for (int64_t i = 0; i < n; ++i) t.mutable_data()[i] = static_cast<float>(i);
  return t;
}

Tensor Tensor::Eye(int64_t n) {
  Tensor t(Shape{n, n});
  for (int64_t i = 0; i < n; ++i) t.mutable_data()[i * n + i] = 1.0f;
  return t;
}

Tensor Tensor::RandomUniform(const Shape& shape, Rng& rng, float lo, float hi) {
  Tensor t(shape);
  float* out = t.mutable_data();
  for (int64_t i = 0; i < t.NumElements(); ++i) out[i] = rng.Uniform(lo, hi);
  return t;
}

Tensor Tensor::RandomNormal(const Shape& shape, Rng& rng, float mean, float stddev) {
  Tensor t(shape);
  float* out = t.mutable_data();
  for (int64_t i = 0; i < t.NumElements(); ++i) out[i] = rng.Normal(mean, stddev);
  return t;
}

float Tensor::Item() const {
  URCL_CHECK_EQ(NumElements(), 1) << "Item() requires a single-element tensor, got "
                                  << shape_.ToString();
  return (*data_)[0];
}

bool Tensor::AllFinite() const {
  const float* p = data();
  for (int64_t i = 0; i < NumElements(); ++i) {
    if (!std::isfinite(p[i])) return false;
  }
  return true;
}

float Tensor::At(const std::vector<int64_t>& indices) const {
  URCL_CHECK_EQ(static_cast<int64_t>(indices.size()), rank());
  const std::vector<int64_t> strides = shape_.Strides();
  int64_t offset = 0;
  for (size_t i = 0; i < indices.size(); ++i) {
    URCL_CHECK(indices[i] >= 0 && indices[i] < shape_.dims()[i])
        << "index " << indices[i] << " out of bounds for axis " << i << " of "
        << shape_.ToString();
    offset += indices[i] * strides[i];
  }
  return (*data_)[static_cast<size_t>(offset)];
}

void Tensor::Set(const std::vector<int64_t>& indices, float value) {
  URCL_CHECK_EQ(static_cast<int64_t>(indices.size()), rank());
  const std::vector<int64_t> strides = shape_.Strides();
  int64_t offset = 0;
  for (size_t i = 0; i < indices.size(); ++i) {
    URCL_CHECK(indices[i] >= 0 && indices[i] < shape_.dims()[i]);
    offset += indices[i] * strides[i];
  }
  (*data_)[static_cast<size_t>(offset)] = value;
}

float Tensor::FlatAt(int64_t index) const {
  URCL_CHECK(index >= 0 && index < NumElements());
  return (*data_)[static_cast<size_t>(index)];
}

void Tensor::FlatSet(int64_t index, float value) {
  URCL_CHECK(index >= 0 && index < NumElements());
  (*data_)[static_cast<size_t>(index)] = value;
}

void Tensor::Fill(float value) { std::fill(data_->begin(), data_->end(), value); }

void Tensor::AddInPlace(const Tensor& other) {
  URCL_CHECK(shape_ == other.shape())
      << "AddInPlace shape mismatch: " << shape_.ToString() << " vs "
      << other.shape().ToString();
  float* dst = mutable_data();
  const float* src = other.data();
  for (int64_t i = 0; i < NumElements(); ++i) dst[i] += src[i];
}

void Tensor::MulInPlace(float scale) {
  float* dst = mutable_data();
  for (int64_t i = 0; i < NumElements(); ++i) dst[i] *= scale;
}

void Tensor::CopyFrom(const Tensor& other) {
  URCL_CHECK(shape_ == other.shape())
      << "CopyFrom shape mismatch: " << shape_.ToString() << " vs "
      << other.shape().ToString();
  std::copy(other.data(), other.data() + other.NumElements(), mutable_data());
}

Tensor Tensor::Clone() const {
  Tensor copy(shape_);
  std::copy(data(), data() + NumElements(), copy.mutable_data());
  return copy;
}

Tensor Tensor::Reshape(const Shape& new_shape) const {
  URCL_CHECK_EQ(NumElements(), new_shape.NumElements())
      << "Reshape " << shape_.ToString() << " -> " << new_shape.ToString();
  Tensor view = *this;  // shares storage
  view.shape_ = new_shape;
  return view;
}

std::string Tensor::ToString(int64_t max_elements) const {
  std::ostringstream out;
  out << "Tensor" << shape_.ToString() << " {";
  const int64_t n = std::min<int64_t>(NumElements(), max_elements);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) out << ", ";
    out << (*data_)[static_cast<size_t>(i)];
  }
  if (NumElements() > n) out << ", ...";
  out << "}";
  return out.str();
}

}  // namespace urcl
