#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "tensor/pool.h"
#include "tensor/simd.h"

namespace urcl {

Tensor::Tensor() : Tensor(Shape{}) {}

Tensor::Tensor(const Shape& shape)
    : Tensor(shape, pool::AcquireStorage(shape.NumElements(), /*zero_fill=*/true)) {}

Tensor::Tensor(Shape shape, pool::BufferPool::Acquisition storage)
    : shape_(std::move(shape)),
      data_(std::move(storage.data)),
      version_(std::move(storage.version)) {}

Tensor Tensor::Uninitialized(const Shape& shape) {
  return Tensor(shape, pool::AcquireStorage(shape.NumElements(), /*zero_fill=*/false));
}

Tensor Tensor::Zeros(const Shape& shape) { return Tensor(shape); }

Tensor Tensor::Ones(const Shape& shape) { return Full(shape, 1.0f); }

Tensor Tensor::Full(const Shape& shape, float value) {
  Tensor t = Uninitialized(shape);
  t.Fill(value);
  return t;
}

Tensor Tensor::Scalar(float value) { return Full(Shape{}, value); }

Tensor Tensor::FromVector(const Shape& shape, const std::vector<float>& values) {
  URCL_CHECK_EQ(shape.NumElements(), static_cast<int64_t>(values.size()))
      << "FromVector: shape " << shape.ToString() << " does not match value count";
  Tensor t = Uninitialized(shape);
  std::copy(values.begin(), values.end(), t.mutable_data());
  return t;
}

Tensor Tensor::Arange(int64_t n) {
  Tensor t = Uninitialized(Shape{n});
  for (int64_t i = 0; i < n; ++i) t.mutable_data()[i] = static_cast<float>(i);
  return t;
}

Tensor Tensor::Eye(int64_t n) {
  Tensor t(Shape{n, n});
  for (int64_t i = 0; i < n; ++i) t.mutable_data()[i * n + i] = 1.0f;
  return t;
}

Tensor Tensor::RandomUniform(const Shape& shape, Rng& rng, float lo, float hi) {
  Tensor t = Uninitialized(shape);
  float* out = t.mutable_data();
  for (int64_t i = 0; i < t.NumElements(); ++i) out[i] = rng.Uniform(lo, hi);
  return t;
}

Tensor Tensor::RandomNormal(const Shape& shape, Rng& rng, float mean, float stddev) {
  Tensor t = Uninitialized(shape);
  float* out = t.mutable_data();
  for (int64_t i = 0; i < t.NumElements(); ++i) out[i] = rng.Normal(mean, stddev);
  return t;
}

float Tensor::Item() const {
  URCL_CHECK_EQ(NumElements(), 1) << "Item() requires a single-element tensor, got "
                                  << shape_.ToString();
  return data_.get()[0];
}

bool Tensor::AllFinite() const {
  const float* p = data();
  const int64_t n = NumElements();
  int64_t i = 0;
  for (; i + simd::kLanes <= n; i += simd::kLanes) {
    if (!simd::AllLanesFinite(simd::LoadU(p + i))) return false;
  }
  for (; i < n; ++i) {
    if (!std::isfinite(p[i])) return false;
  }
  return true;
}

int64_t Tensor::OffsetOf(const int64_t* indices, int64_t count) const {
  URCL_CHECK_EQ(count, rank());
  // Right-to-left accumulation avoids materializing a strides vector.
  int64_t offset = 0;
  int64_t stride = 1;
  for (int64_t i = count - 1; i >= 0; --i) {
    const int64_t idx = indices[i];
    const int64_t extent = shape_.dims()[static_cast<size_t>(i)];
    URCL_CHECK(idx >= 0 && idx < extent)
        << "index " << idx << " out of bounds for axis " << i << " of " << shape_.ToString();
    offset += idx * stride;
    stride *= extent;
  }
  return offset;
}

float Tensor::At(const std::vector<int64_t>& indices) const {
  return data_.get()[OffsetOf(indices.data(), static_cast<int64_t>(indices.size()))];
}

void Tensor::Set(const std::vector<int64_t>& indices, float value) {
  const int64_t offset = OffsetOf(indices.data(), static_cast<int64_t>(indices.size()));
  mutable_data()[offset] = value;
}

float Tensor::At(std::initializer_list<int64_t> indices) const {
  return data_.get()[OffsetOf(indices.begin(), static_cast<int64_t>(indices.size()))];
}

void Tensor::Set(std::initializer_list<int64_t> indices, float value) {
  const int64_t offset = OffsetOf(indices.begin(), static_cast<int64_t>(indices.size()));
  mutable_data()[offset] = value;
}

float Tensor::FlatAt(int64_t index) const {
  URCL_CHECK(index >= 0 && index < NumElements());
  return data_.get()[index];
}

void Tensor::FlatSet(int64_t index, float value) {
  URCL_CHECK(index >= 0 && index < NumElements());
  mutable_data()[index] = value;
}

void Tensor::Fill(float value) {
  float* dst = mutable_data();
  std::fill(dst, dst + NumElements(), value);
}

void Tensor::AddInPlace(const Tensor& other) {
  URCL_CHECK(shape_ == other.shape())
      << "AddInPlace shape mismatch: " << shape_.ToString() << " vs "
      << other.shape().ToString();
  float* dst = mutable_data();
  const float* src = other.data();
  const int64_t n = NumElements();
  int64_t i = 0;
  for (; i + simd::kLanes <= n; i += simd::kLanes) {
    simd::StoreU(dst + i, simd::Add(simd::LoadU(dst + i), simd::LoadU(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void Tensor::MulInPlace(float scale) {
  float* dst = mutable_data();
  const int64_t n = NumElements();
  const simd::F32x8 vs = simd::Broadcast(scale);
  int64_t i = 0;
  for (; i + simd::kLanes <= n; i += simd::kLanes) {
    simd::StoreU(dst + i, simd::Mul(simd::LoadU(dst + i), vs));
  }
  for (; i < n; ++i) dst[i] *= scale;
}

void Tensor::CopyFrom(const Tensor& other) {
  URCL_CHECK(shape_ == other.shape())
      << "CopyFrom shape mismatch: " << shape_.ToString() << " vs "
      << other.shape().ToString();
  std::copy(other.data(), other.data() + other.NumElements(), mutable_data());
}

Tensor Tensor::Clone() const {
  Tensor copy = Uninitialized(shape_);
  std::copy(data(), data() + NumElements(), copy.mutable_data());
  return copy;
}

Tensor Tensor::Reshape(const Shape& new_shape) const {
  URCL_CHECK_EQ(NumElements(), new_shape.NumElements())
      << "Reshape " << shape_.ToString() << " -> " << new_shape.ToString();
  Tensor view = *this;  // shares storage
  view.shape_ = new_shape;
  return view;
}

std::string Tensor::ToString(int64_t max_elements) const {
  std::ostringstream out;
  out << "Tensor" << shape_.ToString() << " {";
  const int64_t n = std::min<int64_t>(NumElements(), max_elements);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) out << ", ";
    out << data_.get()[i];
  }
  if (NumElements() > n) out << ", ...";
  out << "}";
  return out.str();
}

}  // namespace urcl
