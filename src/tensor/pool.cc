#include "tensor/pool.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/check.h"

// AddressSanitizer manual poisoning: detect both GCC (-fsanitize=address
// defines __SANITIZE_ADDRESS__) and Clang (__has_feature) spellings.
#if defined(__SANITIZE_ADDRESS__)
#define URCL_POOL_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define URCL_POOL_ASAN 1
#endif
#endif
#ifdef URCL_POOL_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace urcl {
namespace pool {
namespace {

constexpr int kMinClassLog2 = 5;  // 32 floats = 128 bytes
constexpr uint64_t kDefaultCapacityBytes = 256ull << 20;
constexpr size_t kAlignment = 64;

// Marks [ptr, ptr + bytes) as unaddressable while a buffer sits in the free
// list (no-op without ASan). The pool mutex orders poison/unpoison between
// releasing and acquiring threads.
void AsanPoison(const float* ptr, uint64_t bytes) {
#ifdef URCL_POOL_ASAN
  __asan_poison_memory_region(ptr, bytes);
#else
  (void)ptr;
  (void)bytes;
#endif
}

void AsanUnpoison(const float* ptr, uint64_t bytes) {
#ifdef URCL_POOL_ASAN
  __asan_unpoison_memory_region(ptr, bytes);
#else
  (void)ptr;
  (void)bytes;
#endif
}

// Fills `count` elements with the signaling-NaN poison pattern. Written via
// 32-bit words (not float stores) so the payload bits survive verbatim —
// copying an sNaN through the FPU may quieten it on some targets.
void PoisonFill(float* ptr, int64_t count) {
  uint32_t* words = reinterpret_cast<uint32_t*>(ptr);
  std::fill_n(words, static_cast<size_t>(count), kPoisonWord);
}

// Smallest class whose capacity holds `count` floats.
int ClassForCount(int64_t count) {
  int cls = kMinClassLog2;
  while ((int64_t{1} << cls) < count) ++cls;
  return cls;
}

uint64_t ClassBytes(int size_class) { return (uint64_t{1} << size_class) * sizeof(float); }

// Owner object behind both shared_ptrs of an Acquisition. A single
// make_shared<StorageBlock> carries the buffer pointer, its size class, and
// the write-version counter; `data` and `version` alias this block, so one
// heap allocation serves the whole acquisition (same allocation count as a
// plain custom-deleter shared_ptr) and the counter outlives every holder of
// either pointer. The destructor is the pool's return path.
struct StorageBlock {
  float* ptr = nullptr;
  int size_class = 0;
  std::atomic<uint64_t> version{0};

  ~StorageBlock() {
    if (ptr != nullptr) BufferPool::Get().Release(ptr, size_class);
  }
};

}  // namespace

namespace {
thread_local StorageHook* t_storage_hook = nullptr;
}  // namespace

StorageHook* ActiveStorageHook() { return t_storage_hook; }

void SetStorageHook(StorageHook* hook) { t_storage_hook = hook; }

bool IsPoisonWord(float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits == kPoisonWord;
}

int64_t CountPoisonWords(const float* p, int64_t count) {
  int64_t poisoned = 0;
  for (int64_t i = 0; i < count; ++i) {
    if (IsPoisonWord(p[i])) ++poisoned;
  }
  return poisoned;
}

BufferPool& BufferPool::Get() {
  // Leaked singleton: never destroyed, so deleters of static-lifetime
  // tensors can still return buffers during process teardown.
  static BufferPool* instance = new BufferPool();
  return *instance;
}

BufferPool::BufferPool()
    : hits_(obs::MetricsRegistry::Get().GetCounter("urcl.pool.hits")),
      misses_(obs::MetricsRegistry::Get().GetCounter("urcl.pool.misses")),
      returns_(obs::MetricsRegistry::Get().GetCounter("urcl.pool.returns")),
      trims_(obs::MetricsRegistry::Get().GetCounter("urcl.pool.trims")),
      live_bytes_(obs::MetricsRegistry::Get().GetGauge("urcl.pool.live_bytes")),
      pooled_bytes_(obs::MetricsRegistry::Get().GetGauge("urcl.pool.pooled_bytes")),
      capacity_bytes_(kDefaultCapacityBytes),
      enabled_(true),
#ifdef NDEBUG
      poison_enabled_(false)
#else
      poison_enabled_(true)
#endif
{
  if (const char* env = std::getenv("URCL_POOL")) enabled_ = ParseEnabled(env);
  if (const char* env = std::getenv("URCL_POOL_POISON")) poison_enabled_ = ParseEnabled(env);
  if (const char* env = std::getenv("URCL_POOL_CAP_MB")) {
    char* end = nullptr;
    const unsigned long long mb = std::strtoull(env, &end, 10);
    if (end != env) capacity_bytes_ = uint64_t{mb} << 20;
  }
}

bool BufferPool::ParseEnabled(const char* value) {
  if (value == nullptr) return true;
  const std::string v(value);
  return !(v == "off" || v == "0" || v == "false" || v == "OFF");
}

void BufferPool::FreeRaw(float* ptr) { std::free(ptr); }

BufferPool::Acquisition BufferPool::AcquireWithVersion(int64_t count, bool zero_fill) {
  URCL_CHECK_GE(count, 0);
  const int cls = ClassForCount(count);
  const uint64_t bytes = ClassBytes(cls);
  float* ptr = nullptr;
  bool pooled = false;
  bool poison = false;
  {
    MutexLock lock(mu_);
    auto& list = free_lists_[static_cast<size_t>(cls)];
    if (enabled_ && !list.empty()) {
      ptr = list.back();
      list.pop_back();
      pooled = true;
      hits_.Add(1);
      pooled_bytes_.Add(-static_cast<double>(bytes));
    } else {
      misses_.Add(1);
    }
    live_bytes_.Add(static_cast<double>(bytes));
    poison = poison_enabled_;
  }
  if (!pooled) {
    // Class bytes are a multiple of the alignment, as aligned_alloc requires.
    ptr = static_cast<float*>(std::aligned_alloc(kAlignment, bytes));
    URCL_CHECK(ptr != nullptr) << "BufferPool: allocation of " << bytes << " bytes failed";
  } else {
    AsanUnpoison(ptr, bytes);
  }
  if (zero_fill && count > 0) {
    std::memset(ptr, 0, static_cast<size_t>(count) * sizeof(float));
  } else if (poison && count > 0) {
    // Unspecified-contents acquisition: hand out poison, not stale data, so
    // any element the kernel reads before writing is a loud signaling NaN.
    PoisonFill(ptr, count);
  }
  auto block = std::make_shared<StorageBlock>();
  block->ptr = ptr;
  block->size_class = cls;
  Acquisition acq;
  acq.data = std::shared_ptr<float>(block, ptr);
  acq.version = std::shared_ptr<std::atomic<uint64_t>>(block, &block->version);
  return acq;
}

std::shared_ptr<float> BufferPool::Acquire(int64_t count, bool zero_fill) {
  return AcquireWithVersion(count, zero_fill).data;
}

void BufferPool::Release(float* ptr, int size_class) {
  const uint64_t bytes = ClassBytes(size_class);
  bool cache = false;
  {
    MutexLock lock(mu_);
    live_bytes_.Add(-static_cast<double>(bytes));
    if (enabled_ &&
        static_cast<uint64_t>(pooled_bytes_.Value()) + bytes <= capacity_bytes_) {
      // Poison before the push makes the buffer visible to other acquirers;
      // the fill runs under the lock only when poisoning is on (debug/test
      // builds), so the release fast path is unchanged.
      if (poison_enabled_) PoisonFill(ptr, static_cast<int64_t>(bytes / sizeof(float)));
      AsanPoison(ptr, bytes);
      free_lists_[static_cast<size_t>(size_class)].push_back(ptr);
      pooled_bytes_.Add(static_cast<double>(bytes));
      returns_.Add(1);
      cache = true;
    } else {
      trims_.Add(1);
    }
  }
  if (!cache) FreeRaw(ptr);
}

PoolStats BufferPool::Stats() const {
  MutexLock lock(mu_);
  PoolStats stats;
  stats.hits = hits_.Value();
  stats.misses = misses_.Value();
  stats.returns = returns_.Value();
  stats.trims = trims_.Value();
  stats.live_bytes = static_cast<uint64_t>(live_bytes_.Value());
  stats.pooled_bytes = static_cast<uint64_t>(pooled_bytes_.Value());
  return stats;
}

void BufferPool::ResetCounters() {
  MutexLock lock(mu_);
  hits_.Reset();
  misses_.Reset();
  returns_.Reset();
  trims_.Reset();
}

int64_t BufferPool::Trim() {
  std::vector<float*> to_free;
  uint64_t freed = 0;
  {
    MutexLock lock(mu_);
    for (size_t cls = 0; cls < free_lists_.size(); ++cls) {
      for (float* ptr : free_lists_[cls]) {
        // Cached buffers are ASan-poisoned; make them addressable again
        // before handing them back to the system allocator.
        AsanUnpoison(ptr, ClassBytes(static_cast<int>(cls)));
        to_free.push_back(ptr);
        freed += ClassBytes(static_cast<int>(cls));
      }
      free_lists_[cls].clear();
    }
    pooled_bytes_.Add(-static_cast<double>(freed));
    trims_.Add(to_free.size());
  }
  for (float* ptr : to_free) FreeRaw(ptr);
  return static_cast<int64_t>(freed);
}

bool BufferPool::enabled() const {
  MutexLock lock(mu_);
  return enabled_;
}

void BufferPool::set_enabled(bool enabled) {
  {
    MutexLock lock(mu_);
    enabled_ = enabled;
  }
  if (!enabled) Trim();
}

bool BufferPool::poison_enabled() const {
  MutexLock lock(mu_);
  return poison_enabled_;
}

void BufferPool::set_poison_enabled(bool enabled) {
  MutexLock lock(mu_);
  poison_enabled_ = enabled;
}

void BufferPool::set_capacity_bytes(uint64_t cap) {
  MutexLock lock(mu_);
  capacity_bytes_ = cap;
}

uint64_t BufferPool::capacity_bytes() const {
  MutexLock lock(mu_);
  return capacity_bytes_;
}

}  // namespace pool
}  // namespace urcl
