#include "tensor/pool.h"

#include <cstdlib>
#include <cstring>
#include <string>

#include "common/check.h"

namespace urcl {
namespace pool {
namespace {

constexpr int kMinClassLog2 = 5;  // 32 floats = 128 bytes
constexpr uint64_t kDefaultCapacityBytes = 256ull << 20;
constexpr size_t kAlignment = 64;

// Smallest class whose capacity holds `count` floats.
int ClassForCount(int64_t count) {
  int cls = kMinClassLog2;
  while ((int64_t{1} << cls) < count) ++cls;
  return cls;
}

uint64_t ClassBytes(int size_class) { return (uint64_t{1} << size_class) * sizeof(float); }

}  // namespace

BufferPool& BufferPool::Get() {
  // Leaked singleton: never destroyed, so deleters of static-lifetime
  // tensors can still return buffers during process teardown.
  static BufferPool* instance = new BufferPool();
  return *instance;
}

BufferPool::BufferPool()
    : hits_(obs::MetricsRegistry::Get().GetCounter("urcl.pool.hits")),
      misses_(obs::MetricsRegistry::Get().GetCounter("urcl.pool.misses")),
      returns_(obs::MetricsRegistry::Get().GetCounter("urcl.pool.returns")),
      trims_(obs::MetricsRegistry::Get().GetCounter("urcl.pool.trims")),
      live_bytes_(obs::MetricsRegistry::Get().GetGauge("urcl.pool.live_bytes")),
      pooled_bytes_(obs::MetricsRegistry::Get().GetGauge("urcl.pool.pooled_bytes")),
      capacity_bytes_(kDefaultCapacityBytes),
      enabled_(true) {
  if (const char* env = std::getenv("URCL_POOL")) enabled_ = ParseEnabled(env);
  if (const char* env = std::getenv("URCL_POOL_CAP_MB")) {
    char* end = nullptr;
    const unsigned long long mb = std::strtoull(env, &end, 10);
    if (end != env) capacity_bytes_ = uint64_t{mb} << 20;
  }
}

bool BufferPool::ParseEnabled(const char* value) {
  if (value == nullptr) return true;
  const std::string v(value);
  return !(v == "off" || v == "0" || v == "false" || v == "OFF");
}

void BufferPool::FreeRaw(float* ptr) { std::free(ptr); }

std::shared_ptr<float> BufferPool::Acquire(int64_t count, bool zero_fill) {
  URCL_CHECK_GE(count, 0);
  const int cls = ClassForCount(count);
  const uint64_t bytes = ClassBytes(cls);
  float* ptr = nullptr;
  bool pooled = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& list = free_lists_[static_cast<size_t>(cls)];
    if (enabled_ && !list.empty()) {
      ptr = list.back();
      list.pop_back();
      pooled = true;
      hits_.Add(1);
      pooled_bytes_.Add(-static_cast<double>(bytes));
    } else {
      misses_.Add(1);
    }
    live_bytes_.Add(static_cast<double>(bytes));
  }
  if (!pooled) {
    // Class bytes are a multiple of the alignment, as aligned_alloc requires.
    ptr = static_cast<float*>(std::aligned_alloc(kAlignment, bytes));
    URCL_CHECK(ptr != nullptr) << "BufferPool: allocation of " << bytes << " bytes failed";
  }
  if (zero_fill && count > 0) {
    std::memset(ptr, 0, static_cast<size_t>(count) * sizeof(float));
  }
  return std::shared_ptr<float>(ptr, [cls](float* p) {
    if (p != nullptr) BufferPool::Get().Release(p, cls);
  });
}

void BufferPool::Release(float* ptr, int size_class) {
  const uint64_t bytes = ClassBytes(size_class);
  bool cache = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    live_bytes_.Add(-static_cast<double>(bytes));
    if (enabled_ &&
        static_cast<uint64_t>(pooled_bytes_.Value()) + bytes <= capacity_bytes_) {
      free_lists_[static_cast<size_t>(size_class)].push_back(ptr);
      pooled_bytes_.Add(static_cast<double>(bytes));
      returns_.Add(1);
      cache = true;
    } else {
      trims_.Add(1);
    }
  }
  if (!cache) FreeRaw(ptr);
}

PoolStats BufferPool::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PoolStats stats;
  stats.hits = hits_.Value();
  stats.misses = misses_.Value();
  stats.returns = returns_.Value();
  stats.trims = trims_.Value();
  stats.live_bytes = static_cast<uint64_t>(live_bytes_.Value());
  stats.pooled_bytes = static_cast<uint64_t>(pooled_bytes_.Value());
  return stats;
}

void BufferPool::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  hits_.Reset();
  misses_.Reset();
  returns_.Reset();
  trims_.Reset();
}

int64_t BufferPool::Trim() {
  std::vector<float*> to_free;
  uint64_t freed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t cls = 0; cls < free_lists_.size(); ++cls) {
      for (float* ptr : free_lists_[cls]) {
        to_free.push_back(ptr);
        freed += ClassBytes(static_cast<int>(cls));
      }
      free_lists_[cls].clear();
    }
    pooled_bytes_.Add(-static_cast<double>(freed));
    trims_.Add(to_free.size());
  }
  for (float* ptr : to_free) FreeRaw(ptr);
  return static_cast<int64_t>(freed);
}

bool BufferPool::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

void BufferPool::set_enabled(bool enabled) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    enabled_ = enabled;
  }
  if (!enabled) Trim();
}

void BufferPool::set_capacity_bytes(uint64_t cap) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_bytes_ = cap;
}

uint64_t BufferPool::capacity_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_bytes_;
}

}  // namespace pool
}  // namespace urcl
