// Portable fixed-width (8-lane) float vector helpers for the hot kernels.
//
// The backend is chosen at compile time: when the build enables URCL_SIMD
// (the default — see the URCL_SIMD CMake option) and the target ISA provides
// AVX2 or NEON, F32x8 wraps the native registers; otherwise it is a plain
// 8-float struct whose operations compile to the equivalent scalar loops.
// Kernels are therefore written once against this header and stay correct on
// every target, with `-DURCL_SIMD=OFF` as the escape hatch back to pure
// scalar code.
//
// Determinism contract (see DESIGN.md "Vectorization contract"): every helper
// is lane-wise IEEE-exact and bitwise identical to the scalar expression it
// replaces — including NaN/signed-zero behaviour of Max/Min/Neg — and none of
// them fuse multiply-add (the build also disables FP contraction globally).
// Kernels may therefore vectorize across *independent outputs* freely, but
// must never use these helpers to reassociate a reduction: a horizontal sum
// over lanes would change float summation order and break the repo's
// bitwise-determinism invariants.
#ifndef URCL_TENSOR_SIMD_H_
#define URCL_TENSOR_SIMD_H_

#include <cmath>
#include <cstdint>

#if defined(URCL_SIMD) && defined(__AVX2__)
#define URCL_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(URCL_SIMD) && defined(__ARM_NEON)
#define URCL_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace urcl {
namespace simd {

// Lane count is fixed at 8 on every backend so tail handling and chunk math
// are target-independent.
inline constexpr int64_t kLanes = 8;

#if defined(URCL_SIMD_AVX2)

inline constexpr const char* kBackendName = "avx2";

struct F32x8 {
  __m256 v;
};

inline F32x8 LoadU(const float* p) { return {_mm256_loadu_ps(p)}; }
inline void StoreU(float* p, F32x8 a) { _mm256_storeu_ps(p, a.v); }
inline F32x8 Broadcast(float x) { return {_mm256_set1_ps(x)}; }
inline F32x8 Zero() { return {_mm256_setzero_ps()}; }
inline F32x8 Add(F32x8 a, F32x8 b) { return {_mm256_add_ps(a.v, b.v)}; }
inline F32x8 Sub(F32x8 a, F32x8 b) { return {_mm256_sub_ps(a.v, b.v)}; }
inline F32x8 Mul(F32x8 a, F32x8 b) { return {_mm256_mul_ps(a.v, b.v)}; }
inline F32x8 Div(F32x8 a, F32x8 b) { return {_mm256_div_ps(a.v, b.v)}; }
// vmaxps/vminps implement exactly `a > b ? a : b` / `a < b ? a : b` (the
// second operand is returned on equality and on unordered comparisons), which
// is the scalar ternary the kernels use.
inline F32x8 Max(F32x8 a, F32x8 b) { return {_mm256_max_ps(a.v, b.v)}; }
inline F32x8 Min(F32x8 a, F32x8 b) { return {_mm256_min_ps(a.v, b.v)}; }
// Sign-bit flip, not 0-x (0 - +0 would yield +0 where scalar negation of +0
// yields -0).
inline F32x8 Neg(F32x8 a) { return {_mm256_xor_ps(a.v, _mm256_set1_ps(-0.0f))}; }
inline F32x8 Abs(F32x8 a) { return {_mm256_andnot_ps(_mm256_set1_ps(-0.0f), a.v)}; }
// vsqrtps is IEEE correctly rounded, matching std::sqrt(float).
inline F32x8 Sqrt(F32x8 a) { return {_mm256_sqrt_ps(a.v)}; }

// True when no lane is NaN or +/-Inf: x - x == 0 (ordered) holds exactly for
// finite x and fails for NaN (NaN != 0) and Inf (Inf - Inf = NaN).
inline bool AllLanesFinite(F32x8 a) {
  const __m256 diff = _mm256_sub_ps(a.v, a.v);
  const __m256 ok = _mm256_cmp_ps(diff, _mm256_setzero_ps(), _CMP_EQ_OQ);
  return _mm256_movemask_ps(ok) == 0xff;
}

#elif defined(URCL_SIMD_NEON)

inline constexpr const char* kBackendName = "neon";

struct F32x8 {
  float32x4_t lo;
  float32x4_t hi;
};

inline F32x8 LoadU(const float* p) { return {vld1q_f32(p), vld1q_f32(p + 4)}; }
inline void StoreU(float* p, F32x8 a) {
  vst1q_f32(p, a.lo);
  vst1q_f32(p + 4, a.hi);
}
inline F32x8 Broadcast(float x) { return {vdupq_n_f32(x), vdupq_n_f32(x)}; }
inline F32x8 Zero() { return Broadcast(0.0f); }
inline F32x8 Add(F32x8 a, F32x8 b) { return {vaddq_f32(a.lo, b.lo), vaddq_f32(a.hi, b.hi)}; }
inline F32x8 Sub(F32x8 a, F32x8 b) { return {vsubq_f32(a.lo, b.lo), vsubq_f32(a.hi, b.hi)}; }
inline F32x8 Mul(F32x8 a, F32x8 b) { return {vmulq_f32(a.lo, b.lo), vmulq_f32(a.hi, b.hi)}; }
inline F32x8 Div(F32x8 a, F32x8 b) { return {vdivq_f32(a.lo, b.lo), vdivq_f32(a.hi, b.hi)}; }
// Select-on-compare rather than vmaxq/vminq: NEON vmax propagates NaN from
// either operand, while the kernels' scalar ternaries return the second
// operand on unordered comparisons.
inline F32x8 Max(F32x8 a, F32x8 b) {
  return {vbslq_f32(vcgtq_f32(a.lo, b.lo), a.lo, b.lo),
          vbslq_f32(vcgtq_f32(a.hi, b.hi), a.hi, b.hi)};
}
inline F32x8 Min(F32x8 a, F32x8 b) {
  return {vbslq_f32(vcltq_f32(a.lo, b.lo), a.lo, b.lo),
          vbslq_f32(vcltq_f32(a.hi, b.hi), a.hi, b.hi)};
}
inline F32x8 Neg(F32x8 a) { return {vnegq_f32(a.lo), vnegq_f32(a.hi)}; }
inline F32x8 Abs(F32x8 a) { return {vabsq_f32(a.lo), vabsq_f32(a.hi)}; }
inline F32x8 Sqrt(F32x8 a) { return {vsqrtq_f32(a.lo), vsqrtq_f32(a.hi)}; }

inline bool AllLanesFinite(F32x8 a) {
  const F32x8 diff = Sub(a, a);
  const uint32x4_t ok_lo = vceqq_f32(diff.lo, vdupq_n_f32(0.0f));
  const uint32x4_t ok_hi = vceqq_f32(diff.hi, vdupq_n_f32(0.0f));
  return vminvq_u32(vandq_u32(ok_lo, ok_hi)) == 0xffffffffu;
}

#else  // scalar fallback

inline constexpr const char* kBackendName = "scalar";

struct F32x8 {
  float v[8];
};

inline F32x8 LoadU(const float* p) {
  F32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = p[i];
  return r;
}
inline void StoreU(float* p, F32x8 a) {
  for (int i = 0; i < 8; ++i) p[i] = a.v[i];
}
inline F32x8 Broadcast(float x) {
  F32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = x;
  return r;
}
inline F32x8 Zero() { return Broadcast(0.0f); }
inline F32x8 Add(F32x8 a, F32x8 b) {
  F32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = a.v[i] + b.v[i];
  return r;
}
inline F32x8 Sub(F32x8 a, F32x8 b) {
  F32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = a.v[i] - b.v[i];
  return r;
}
inline F32x8 Mul(F32x8 a, F32x8 b) {
  F32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = a.v[i] * b.v[i];
  return r;
}
inline F32x8 Div(F32x8 a, F32x8 b) {
  F32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = a.v[i] / b.v[i];
  return r;
}
inline F32x8 Max(F32x8 a, F32x8 b) {
  F32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
  return r;
}
inline F32x8 Min(F32x8 a, F32x8 b) {
  F32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = a.v[i] < b.v[i] ? a.v[i] : b.v[i];
  return r;
}
inline F32x8 Neg(F32x8 a) {
  F32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = -a.v[i];
  return r;
}
inline F32x8 Abs(F32x8 a) {
  F32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = std::fabs(a.v[i]);
  return r;
}
inline F32x8 Sqrt(F32x8 a) {
  F32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = std::sqrt(a.v[i]);
  return r;
}
inline bool AllLanesFinite(F32x8 a) {
  for (int i = 0; i < 8; ++i) {
    if (!std::isfinite(a.v[i])) return false;
  }
  return true;
}

#endif

}  // namespace simd
}  // namespace urcl

#endif  // URCL_TENSOR_SIMD_H_
