// Shared broadcasting machinery and template elementwise kernels. The
// templates here are the inlining fast path used by the hot ops in
// tensor_ops.cc (no std::function dispatch per element); the std::function
// overloads of ops::ZipWith / ops::Map in tensor_ops.h are thin wrappers over
// these for generic callers.
//
// All loops go through runtime::ParallelFor with shape-derived grains, so
// results are bitwise identical at any thread count (each output element is
// written by exactly one chunk).
//
// Vectorization: the named-op functors below provide a simd::F32x8 overload
// alongside the scalar one. When a functor has the vector form (detected via
// kHasVectorForm*), the kernels process 8 independent output elements per
// step with a scalar tail — each element still computes the identical scalar
// expression, so outputs are bitwise unchanged (see DESIGN.md
// "Vectorization contract"). std::function and user lambdas lack the vector
// form and take the scalar path.
#ifndef URCL_TENSOR_ELEMENTWISE_H_
#define URCL_TENSOR_ELEMENTWISE_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "runtime/parallel.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"

namespace urcl {
namespace ops {
namespace detail {

// Chunk sizes in elements. Shape-derived only — never a function of the
// thread count — so chunk boundaries (and therefore results) are identical
// at any pool size.
inline constexpr int64_t kContiguousGrain = 1 << 15;
inline constexpr int64_t kStridedGrain = 1 << 12;

// True when Fn offers the 8-lane form in addition to the scalar one.
template <typename Fn>
inline constexpr bool kHasVectorForm2 =
    std::is_invocable_r_v<simd::F32x8, Fn, simd::F32x8, simd::F32x8>;
template <typename Fn>
inline constexpr bool kHasVectorForm1 = std::is_invocable_r_v<simd::F32x8, Fn, simd::F32x8>;

// --- Named-op functors -------------------------------------------------------
// Each vector overload is lane-wise bitwise identical to the scalar one,
// including NaN and signed-zero cases (see tensor/simd.h for the per-helper
// arguments). Operand order matters for Max/Min/Clamp: simd::Max(a, b)
// returns b on equal/unordered compares, so the scalar expression each op
// mirrors is spelled out next to it.

struct AddOp {
  float operator()(float x, float y) const { return x + y; }
  simd::F32x8 operator()(simd::F32x8 x, simd::F32x8 y) const { return simd::Add(x, y); }
};
struct SubOp {
  float operator()(float x, float y) const { return x - y; }
  simd::F32x8 operator()(simd::F32x8 x, simd::F32x8 y) const { return simd::Sub(x, y); }
};
struct MulOp {
  float operator()(float x, float y) const { return x * y; }
  simd::F32x8 operator()(simd::F32x8 x, simd::F32x8 y) const { return simd::Mul(x, y); }
};
struct DivOp {
  float operator()(float x, float y) const { return x / y; }
  simd::F32x8 operator()(simd::F32x8 x, simd::F32x8 y) const { return simd::Div(x, y); }
};
struct MaximumOp {  // x > y ? x : y == simd::Max(x, y)
  float operator()(float x, float y) const { return x > y ? x : y; }
  simd::F32x8 operator()(simd::F32x8 x, simd::F32x8 y) const { return simd::Max(x, y); }
};
struct MinimumOp {  // x < y ? x : y == simd::Min(x, y)
  float operator()(float x, float y) const { return x < y ? x : y; }
  simd::F32x8 operator()(simd::F32x8 x, simd::F32x8 y) const { return simd::Min(x, y); }
};

struct NegOp {
  float operator()(float x) const { return -x; }
  simd::F32x8 operator()(simd::F32x8 x) const { return simd::Neg(x); }
};
struct AbsOp {
  float operator()(float x) const { return std::fabs(x); }
  simd::F32x8 operator()(simd::F32x8 x) const { return simd::Abs(x); }
};
struct SqrtOp {
  float operator()(float x) const { return std::sqrt(x); }
  simd::F32x8 operator()(simd::F32x8 x) const { return simd::Sqrt(x); }
};
struct ReluOp {  // x > 0 ? x : 0 == simd::Max(x, 0), including NaN -> 0, -0 -> +0
  float operator()(float x) const { return x > 0.0f ? x : 0.0f; }
  simd::F32x8 operator()(simd::F32x8 x) const { return simd::Max(x, simd::Zero()); }
};
struct SquareOp {
  float operator()(float x) const { return x * x; }
  simd::F32x8 operator()(simd::F32x8 x) const { return simd::Mul(x, x); }
};
struct AddScalarOp {
  float s;
  float operator()(float x) const { return x + s; }
  simd::F32x8 operator()(simd::F32x8 x) const { return simd::Add(x, simd::Broadcast(s)); }
};
struct MulScalarOp {
  float s;
  float operator()(float x) const { return x * s; }
  simd::F32x8 operator()(simd::F32x8 x) const { return simd::Mul(x, simd::Broadcast(s)); }
};
struct ClampOp {
  // std::max(x, lo) == (x < lo ? lo : x) == simd::Max(Broadcast(lo), x) and
  // std::min(., hi) == simd::Min(Broadcast(hi), .) — these operand orders are
  // load-bearing for NaN (clamp of NaN stays NaN) and -0/+0 bit patterns.
  float lo;
  float hi;
  float operator()(float x) const { return std::min(std::max(x, lo), hi); }
  simd::F32x8 operator()(simd::F32x8 x) const {
    return simd::Min(simd::Broadcast(hi), simd::Max(simd::Broadcast(lo), x));
  }
};

// Strides for input of shape `in` when broadcast to output shape `out`:
// 0 where the input dim is 1 (or absent), contiguous stride otherwise.
inline std::vector<int64_t> BroadcastStrides(const Shape& in, const Shape& out) {
  const std::vector<int64_t> in_strides = in.Strides();
  std::vector<int64_t> result(static_cast<size_t>(out.rank()), 0);
  const int64_t offset = out.rank() - in.rank();
  for (int64_t i = 0; i < in.rank(); ++i) {
    if (in.dim(i) != 1) {
      result[static_cast<size_t>(i + offset)] = in_strides[static_cast<size_t>(i)];
    }
  }
  return result;
}

// Incrementally walks a multi-index over `dims` while tracking flat offsets
// for several operand stride sets. Avoids per-element div/mod; SeekTo allows
// each ParallelFor chunk to start mid-range.
class MultiCursor {
 public:
  MultiCursor(const std::vector<int64_t>& dims, std::vector<std::vector<int64_t>> strides)
      : dims_(dims), strides_(std::move(strides)), index_(dims.size(), 0),
        offsets_(strides_.size(), 0) {}

  int64_t offset(size_t operand) const { return offsets_[operand]; }

  void Advance() {
    for (int64_t axis = static_cast<int64_t>(dims_.size()) - 1; axis >= 0; --axis) {
      const size_t a = static_cast<size_t>(axis);
      ++index_[a];
      for (size_t op = 0; op < strides_.size(); ++op) offsets_[op] += strides_[op][a];
      if (index_[a] < dims_[a]) return;
      // Carry: reset this axis.
      for (size_t op = 0; op < strides_.size(); ++op) offsets_[op] -= strides_[op][a] * dims_[a];
      index_[a] = 0;
    }
  }

  // Positions the cursor at row-major flat index `flat` over dims.
  void SeekTo(int64_t flat) {
    for (size_t op = 0; op < offsets_.size(); ++op) offsets_[op] = 0;
    for (int64_t axis = static_cast<int64_t>(dims_.size()) - 1; axis >= 0; --axis) {
      const size_t a = static_cast<size_t>(axis);
      index_[a] = flat % dims_[a];
      flat /= dims_[a];
      for (size_t op = 0; op < strides_.size(); ++op) {
        offsets_[op] += index_[a] * strides_[op][a];
      }
    }
  }

 private:
  std::vector<int64_t> dims_;
  std::vector<std::vector<int64_t>> strides_;
  std::vector<int64_t> index_;
  std::vector<int64_t> offsets_;
};

template <typename Fn>
Tensor BinaryElementwise(const Tensor& a, const Tensor& b, Fn fn) {
  if (a.shape() == b.shape()) {  // fast path, no broadcasting
    Tensor out = Tensor::Uninitialized(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.mutable_data();
    runtime::ParallelFor(0, a.NumElements(), kContiguousGrain,
                         [&](int64_t chunk_begin, int64_t chunk_end) {
                           int64_t i = chunk_begin;
                           if constexpr (kHasVectorForm2<Fn>) {
                             for (; i + simd::kLanes <= chunk_end; i += simd::kLanes) {
                               simd::StoreU(po + i, fn(simd::LoadU(pa + i), simd::LoadU(pb + i)));
                             }
                           }
                           for (; i < chunk_end; ++i) po[i] = fn(pa[i], pb[i]);
                         });
    return out;
  }
  const Shape out_shape = BroadcastShapes(a.shape(), b.shape());
  Tensor out = Tensor::Uninitialized(out_shape);
  if (out.NumElements() == 0) return out;
  const std::vector<int64_t> a_strides = BroadcastStrides(a.shape(), out_shape);
  const std::vector<int64_t> b_strides = BroadcastStrides(b.shape(), out_shape);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.mutable_data();
  if constexpr (kHasVectorForm2<Fn>) {
    // Row path: the innermost output axis has operand strides of 0 or 1 by
    // construction (a broadcast stride is 0 where the input dim is 1 and the
    // contiguous stride — 1 on the last axis — otherwise), so each output row
    // is elementwise over two dense-or-broadcast operand rows and vectorizes.
    // Parallelism is over whole rows; per-element values match the scalar
    // expression exactly, so the result is bitwise identical to the flat walk.
    const int64_t inner = out_shape.dims().back();
    const int64_t rows = out.NumElements() / inner;
    const int64_t sa = a_strides.back();
    const int64_t sb = b_strides.back();
    const std::vector<int64_t> outer_dims(out_shape.dims().begin(), out_shape.dims().end() - 1);
    const std::vector<int64_t> a_outer(a_strides.begin(), a_strides.end() - 1);
    const std::vector<int64_t> b_outer(b_strides.begin(), b_strides.end() - 1);
    const int64_t row_grain = std::max<int64_t>(1, kStridedGrain / inner);
    runtime::ParallelFor(0, rows, row_grain, [&](int64_t row_begin, int64_t row_end) {
      MultiCursor cursor(outer_dims, {a_outer, b_outer});
      cursor.SeekTo(row_begin);
      for (int64_t r = row_begin; r < row_end; ++r) {
        const float* ra = pa + cursor.offset(0);
        const float* rb = pb + cursor.offset(1);
        float* ro = po + r * inner;
        int64_t j = 0;
        if (sa == 1 && sb == 1) {
          for (; j + simd::kLanes <= inner; j += simd::kLanes) {
            simd::StoreU(ro + j, fn(simd::LoadU(ra + j), simd::LoadU(rb + j)));
          }
        } else if (sa == 1 && sb == 0) {
          const simd::F32x8 vb = simd::Broadcast(rb[0]);
          for (; j + simd::kLanes <= inner; j += simd::kLanes) {
            simd::StoreU(ro + j, fn(simd::LoadU(ra + j), vb));
          }
        } else if (sa == 0 && sb == 1) {
          const simd::F32x8 va = simd::Broadcast(ra[0]);
          for (; j + simd::kLanes <= inner; j += simd::kLanes) {
            simd::StoreU(ro + j, fn(va, simd::LoadU(rb + j)));
          }
        }  // (0, 0) implies inner == 1; the scalar tail covers it.
        for (; j < inner; ++j) ro[j] = fn(ra[j * sa], rb[j * sb]);
        cursor.Advance();
      }
    });
    return out;
  } else {
    runtime::ParallelFor(0, out.NumElements(), kStridedGrain,
                         [&](int64_t chunk_begin, int64_t chunk_end) {
                           MultiCursor cursor(out_shape.dims(), {a_strides, b_strides});
                           cursor.SeekTo(chunk_begin);
                           for (int64_t i = chunk_begin; i < chunk_end; ++i) {
                             po[i] = fn(pa[cursor.offset(0)], pb[cursor.offset(1)]);
                             cursor.Advance();
                           }
                         });
    return out;
  }
}

template <typename Fn>
Tensor UnaryElementwise(const Tensor& a, Fn fn) {
  Tensor out = Tensor::Uninitialized(a.shape());
  const float* pa = a.data();
  float* po = out.mutable_data();
  runtime::ParallelFor(0, a.NumElements(), kContiguousGrain,
                       [&](int64_t chunk_begin, int64_t chunk_end) {
                         int64_t i = chunk_begin;
                         if constexpr (kHasVectorForm1<Fn>) {
                           for (; i + simd::kLanes <= chunk_end; i += simd::kLanes) {
                             simd::StoreU(po + i, fn(simd::LoadU(pa + i)));
                           }
                         }
                         for (; i < chunk_end; ++i) po[i] = fn(pa[i]);
                       });
  return out;
}

}  // namespace detail
}  // namespace ops
}  // namespace urcl

#endif  // URCL_TENSOR_ELEMENTWISE_H_
