// Shared broadcasting machinery and template elementwise kernels. The
// templates here are the inlining fast path used by the hot ops in
// tensor_ops.cc (no std::function dispatch per element); the std::function
// overloads of ops::ZipWith / ops::Map in tensor_ops.h are thin wrappers over
// these for generic callers.
//
// All loops go through runtime::ParallelFor with shape-derived grains, so
// results are bitwise identical at any thread count (each output element is
// written by exactly one chunk).
#ifndef URCL_TENSOR_ELEMENTWISE_H_
#define URCL_TENSOR_ELEMENTWISE_H_

#include <cstdint>
#include <vector>

#include "runtime/parallel.h"
#include "tensor/tensor.h"

namespace urcl {
namespace ops {
namespace detail {

// Chunk sizes in elements. Shape-derived only — never a function of the
// thread count — so chunk boundaries (and therefore results) are identical
// at any pool size.
inline constexpr int64_t kContiguousGrain = 1 << 14;
inline constexpr int64_t kStridedGrain = 1 << 12;

// Strides for input of shape `in` when broadcast to output shape `out`:
// 0 where the input dim is 1 (or absent), contiguous stride otherwise.
inline std::vector<int64_t> BroadcastStrides(const Shape& in, const Shape& out) {
  const std::vector<int64_t> in_strides = in.Strides();
  std::vector<int64_t> result(static_cast<size_t>(out.rank()), 0);
  const int64_t offset = out.rank() - in.rank();
  for (int64_t i = 0; i < in.rank(); ++i) {
    if (in.dim(i) != 1) result[static_cast<size_t>(i + offset)] = in_strides[static_cast<size_t>(i)];
  }
  return result;
}

// Incrementally walks a multi-index over `dims` while tracking flat offsets
// for several operand stride sets. Avoids per-element div/mod; SeekTo allows
// each ParallelFor chunk to start mid-range.
class MultiCursor {
 public:
  MultiCursor(const std::vector<int64_t>& dims, std::vector<std::vector<int64_t>> strides)
      : dims_(dims), strides_(std::move(strides)), index_(dims.size(), 0),
        offsets_(strides_.size(), 0) {}

  int64_t offset(size_t operand) const { return offsets_[operand]; }

  void Advance() {
    for (int64_t axis = static_cast<int64_t>(dims_.size()) - 1; axis >= 0; --axis) {
      const size_t a = static_cast<size_t>(axis);
      ++index_[a];
      for (size_t op = 0; op < strides_.size(); ++op) offsets_[op] += strides_[op][a];
      if (index_[a] < dims_[a]) return;
      // Carry: reset this axis.
      for (size_t op = 0; op < strides_.size(); ++op) offsets_[op] -= strides_[op][a] * dims_[a];
      index_[a] = 0;
    }
  }

  // Positions the cursor at row-major flat index `flat` over dims.
  void SeekTo(int64_t flat) {
    for (size_t op = 0; op < offsets_.size(); ++op) offsets_[op] = 0;
    for (int64_t axis = static_cast<int64_t>(dims_.size()) - 1; axis >= 0; --axis) {
      const size_t a = static_cast<size_t>(axis);
      index_[a] = flat % dims_[a];
      flat /= dims_[a];
      for (size_t op = 0; op < strides_.size(); ++op) {
        offsets_[op] += index_[a] * strides_[op][a];
      }
    }
  }

 private:
  std::vector<int64_t> dims_;
  std::vector<std::vector<int64_t>> strides_;
  std::vector<int64_t> index_;
  std::vector<int64_t> offsets_;
};

template <typename Fn>
Tensor BinaryElementwise(const Tensor& a, const Tensor& b, Fn fn) {
  if (a.shape() == b.shape()) {  // fast path, no broadcasting
    Tensor out(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.mutable_data();
    runtime::ParallelFor(0, a.NumElements(), kContiguousGrain,
                         [&](int64_t chunk_begin, int64_t chunk_end) {
                           for (int64_t i = chunk_begin; i < chunk_end; ++i) {
                             po[i] = fn(pa[i], pb[i]);
                           }
                         });
    return out;
  }
  const Shape out_shape = BroadcastShapes(a.shape(), b.shape());
  Tensor out(out_shape);
  if (out.NumElements() == 0) return out;
  const std::vector<int64_t> a_strides = BroadcastStrides(a.shape(), out_shape);
  const std::vector<int64_t> b_strides = BroadcastStrides(b.shape(), out_shape);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.mutable_data();
  runtime::ParallelFor(0, out.NumElements(), kStridedGrain,
                       [&](int64_t chunk_begin, int64_t chunk_end) {
                         MultiCursor cursor(out_shape.dims(), {a_strides, b_strides});
                         cursor.SeekTo(chunk_begin);
                         for (int64_t i = chunk_begin; i < chunk_end; ++i) {
                           po[i] = fn(pa[cursor.offset(0)], pb[cursor.offset(1)]);
                           cursor.Advance();
                         }
                       });
  return out;
}

template <typename Fn>
Tensor UnaryElementwise(const Tensor& a, Fn fn) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.mutable_data();
  runtime::ParallelFor(0, a.NumElements(), kContiguousGrain,
                       [&](int64_t chunk_begin, int64_t chunk_end) {
                         for (int64_t i = chunk_begin; i < chunk_end; ++i) po[i] = fn(pa[i]);
                       });
  return out;
}

}  // namespace detail
}  // namespace ops
}  // namespace urcl

#endif  // URCL_TENSOR_ELEMENTWISE_H_
