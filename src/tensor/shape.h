// Tensor shape: an ordered list of dimension extents plus the broadcasting
// rules (NumPy semantics) shared by the whole tensor library.
#ifndef URCL_TENSOR_SHAPE_H_
#define URCL_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace urcl {

// Immutable-by-convention list of dimension sizes. Rank-0 (scalar) is allowed.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

  int64_t rank() const { return static_cast<int64_t>(dims_.size()); }
  int64_t dim(int64_t axis) const;
  const std::vector<int64_t>& dims() const { return dims_; }

  // Product of all dims; 1 for rank-0.
  int64_t NumElements() const;

  // Row-major strides (in elements) for a contiguous layout.
  std::vector<int64_t> Strides() const;

  // Resolves a possibly-negative axis (e.g. -1 = last) and checks bounds.
  int64_t CanonicalAxis(int64_t axis) const;

  std::string ToString() const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

 private:
  std::vector<int64_t> dims_;
};

// NumPy-style broadcast of two shapes; aborts if incompatible.
Shape BroadcastShapes(const Shape& a, const Shape& b);

// True when `from` can broadcast to `to`.
bool IsBroadcastableTo(const Shape& from, const Shape& to);

}  // namespace urcl

#endif  // URCL_TENSOR_SHAPE_H_
