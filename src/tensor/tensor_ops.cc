#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "runtime/parallel.h"
#include "tensor/simd.h"

namespace urcl {
namespace ops {
namespace {

using detail::BroadcastStrides;
using detail::MultiCursor;

// Canonicalizes reduction axes; empty input means "all axes".
std::vector<int64_t> CanonicalAxes(const Shape& shape, const std::vector<int64_t>& axes) {
  std::vector<int64_t> result;
  if (axes.empty()) {
    result.resize(static_cast<size_t>(shape.rank()));
    for (int64_t i = 0; i < shape.rank(); ++i) result[static_cast<size_t>(i)] = i;
    return result;
  }
  for (const int64_t axis : axes) result.push_back(shape.CanonicalAxis(axis));
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

Shape ReducedShape(const Shape& shape, const std::vector<int64_t>& axes, bool keepdims) {
  std::vector<int64_t> dims;
  for (int64_t i = 0; i < shape.rank(); ++i) {
    const bool reduced = std::binary_search(axes.begin(), axes.end(), i);
    if (reduced) {
      if (keepdims) dims.push_back(1);
    } else {
      dims.push_back(shape.dim(i));
    }
  }
  return Shape(std::move(dims));
}

// Generic reduction: combine with `fn`, starting at `init`; optional
// post-scale (for Mean). Output-major so it parallelizes over output slots:
// each slot accumulates its reduced elements in increasing input-offset
// order — the same per-slot order a serial input-major walk produces — so
// results are bitwise identical at any thread count.
//
// When the innermost KEPT axis is the input's stride-1 axis and `fn` has a
// vector form, groups of 8 adjacent output slots accumulate together: each
// SIMD lane runs one slot's serial accumulation, so no reduction is ever
// reassociated and results stay bitwise identical to the scalar walk.
template <typename Fn>
Tensor Reduce(const Tensor& a, const std::vector<int64_t>& axes_in, bool keepdims, float init,
              Fn fn, float post_scale = 1.0f) {
  const std::vector<int64_t> axes = CanonicalAxes(a.shape(), axes_in);
  const Shape kept = ReducedShape(a.shape(), axes, /*keepdims=*/true);
  Tensor accum = Tensor::Full(kept, init);
  if (a.NumElements() > 0) {
    // Split the input axes into kept (outer, one output slot each) and
    // reduced (inner, walked per slot) parts.
    const std::vector<int64_t> in_strides = a.shape().Strides();
    std::vector<int64_t> outer_dims, outer_strides, inner_dims, inner_strides;
    for (int64_t i = 0; i < a.rank(); ++i) {
      const size_t s = static_cast<size_t>(i);
      if (std::binary_search(axes.begin(), axes.end(), i)) {
        inner_dims.push_back(a.dim(i));
        inner_strides.push_back(in_strides[s]);
      } else {
        outer_dims.push_back(a.dim(i));
        outer_strides.push_back(in_strides[s]);
      }
    }
    int64_t inner_count = 1;
    for (const int64_t d : inner_dims) inner_count *= d;
    const int64_t outer_count = accum.NumElements();
    const float* pa = a.data();
    float* po = accum.mutable_data();
    const int64_t grain =
        std::max<int64_t>(1, detail::kStridedGrain / std::max<int64_t>(1, inner_count));
    runtime::ParallelFor(0, outer_count, grain, [&](int64_t chunk_begin, int64_t chunk_end) {
      MultiCursor outer(outer_dims, {outer_strides});
      outer.SeekTo(chunk_begin);
      // The inner cursor wraps back to the origin after a full walk, so it is
      // seeded once per chunk rather than once per slot (or slot group).
      MultiCursor inner(inner_dims, {inner_strides});
      int64_t o = chunk_begin;
      if constexpr (detail::kHasVectorForm2<Fn>) {
        if (!outer_strides.empty() && outer_strides.back() == 1) {
          // Adjacent output slots within a run of the last kept axis read
          // from adjacent input bases, so 8 slots can accumulate lane-wise.
          // Groups never cross a run boundary (bases stop being adjacent
          // there); leftover slots fall through to the per-slot loop below.
          const int64_t last_dim = outer_dims.back();
          while (o < chunk_end) {
            const int64_t group_end = std::min(chunk_end, o + (last_dim - (o % last_dim)));
            const int64_t base = outer.offset(0);
            int64_t s = o;
            for (; s + simd::kLanes <= group_end; s += simd::kLanes) {
              simd::F32x8 acc = simd::LoadU(po + s);
              for (int64_t i = 0; i < inner_count; ++i) {
                acc = fn(acc, simd::LoadU(pa + base + (s - o) + inner.offset(0)));
                inner.Advance();
              }
              simd::StoreU(po + s, acc);
            }
            for (; s < group_end; ++s) {
              float acc = po[s];
              for (int64_t i = 0; i < inner_count; ++i) {
                acc = fn(acc, pa[base + (s - o) + inner.offset(0)]);
                inner.Advance();
              }
              po[s] = acc;
            }
            for (int64_t step = o; step < group_end; ++step) outer.Advance();
            o = group_end;
          }
          return;
        }
      }
      for (; o < chunk_end; ++o) {
        const int64_t base = outer.offset(0);
        float acc = po[o];
        for (int64_t i = 0; i < inner_count; ++i) {
          acc = fn(acc, pa[base + inner.offset(0)]);
          inner.Advance();
        }
        po[o] = acc;
        outer.Advance();
      }
    });
  }
  if (post_scale != 1.0f) accum.MulInPlace(post_scale);
  if (keepdims) return accum;
  return accum.Reshape(ReducedShape(a.shape(), axes, /*keepdims=*/false));
}

}  // namespace

// The named ops pass the dual-form functors from elementwise.h so the
// kernels can take the vectorized paths; semantics are identical to the old
// scalar lambdas.
Tensor Add(const Tensor& a, const Tensor& b) {
  return detail::BinaryElementwise(a, b, detail::AddOp{});
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  return detail::BinaryElementwise(a, b, detail::SubOp{});
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  return detail::BinaryElementwise(a, b, detail::MulOp{});
}
Tensor Div(const Tensor& a, const Tensor& b) {
  return detail::BinaryElementwise(a, b, detail::DivOp{});
}
Tensor Maximum(const Tensor& a, const Tensor& b) {
  return detail::BinaryElementwise(a, b, detail::MaximumOp{});
}
Tensor Minimum(const Tensor& a, const Tensor& b) {
  return detail::BinaryElementwise(a, b, detail::MinimumOp{});
}
Tensor ZipWith(const Tensor& a, const Tensor& b,
               const std::function<float(float, float)>& fn) {
  return detail::BinaryElementwise(a, b, fn);
}

Tensor AddScalar(const Tensor& a, float s) {
  return detail::UnaryElementwise(a, detail::AddScalarOp{s});
}
Tensor MulScalar(const Tensor& a, float s) {
  return detail::UnaryElementwise(a, detail::MulScalarOp{s});
}
Tensor PowScalar(const Tensor& a, float exponent) {
  return detail::UnaryElementwise(a, [exponent](float x) { return std::pow(x, exponent); });
}

Tensor Neg(const Tensor& a) { return detail::UnaryElementwise(a, detail::NegOp{}); }
Tensor Exp(const Tensor& a) {
  return detail::UnaryElementwise(a, [](float x) { return std::exp(x); });
}
Tensor Log(const Tensor& a) {
  return detail::UnaryElementwise(a, [](float x) { return std::log(x); });
}
Tensor Sqrt(const Tensor& a) { return detail::UnaryElementwise(a, detail::SqrtOp{}); }
Tensor Abs(const Tensor& a) { return detail::UnaryElementwise(a, detail::AbsOp{}); }
Tensor Sign(const Tensor& a) {
  return detail::UnaryElementwise(
      a, [](float x) { return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f); });
}
Tensor Tanh(const Tensor& a) {
  return detail::UnaryElementwise(a, [](float x) { return std::tanh(x); });
}
Tensor Sigmoid(const Tensor& a) {
  return detail::UnaryElementwise(a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}
Tensor Relu(const Tensor& a) { return detail::UnaryElementwise(a, detail::ReluOp{}); }
Tensor Square(const Tensor& a) { return detail::UnaryElementwise(a, detail::SquareOp{}); }
Tensor Clamp(const Tensor& a, float lo, float hi) {
  return detail::UnaryElementwise(a, detail::ClampOp{lo, hi});
}
Tensor Map(const Tensor& a, const std::function<float(float)>& fn) {
  return detail::UnaryElementwise(a, fn);
}

Tensor Sum(const Tensor& a, const std::vector<int64_t>& axes, bool keepdims) {
  return Reduce(a, axes, keepdims, 0.0f, detail::AddOp{});
}

Tensor Mean(const Tensor& a, const std::vector<int64_t>& axes, bool keepdims) {
  const std::vector<int64_t> canonical = CanonicalAxes(a.shape(), axes);
  int64_t count = 1;
  for (const int64_t axis : canonical) count *= a.shape().dim(axis);
  URCL_CHECK_GT(count, 0) << "Mean over empty extent";
  return Reduce(a, axes, keepdims, 0.0f, detail::AddOp{}, 1.0f / static_cast<float>(count));
}

Tensor Max(const Tensor& a, const std::vector<int64_t>& axes, bool keepdims) {
  URCL_CHECK_GT(a.NumElements(), 0);
  // MaximumOp(acc, x) == acc > x ? acc : x — the accumulator comes first.
  return Reduce(a, axes, keepdims, -std::numeric_limits<float>::infinity(),
                detail::MaximumOp{});
}

Tensor Min(const Tensor& a, const std::vector<int64_t>& axes, bool keepdims) {
  URCL_CHECK_GT(a.NumElements(), 0);
  return Reduce(a, axes, keepdims, std::numeric_limits<float>::infinity(),
                detail::MinimumOp{});
}

Tensor ReduceTo(const Tensor& a, const Shape& target) {
  if (a.shape() == target) return a;
  URCL_CHECK(IsBroadcastableTo(target, a.shape()))
      << "ReduceTo: " << target.ToString() << " is not a broadcast source of "
      << a.shape().ToString();
  // Reduce the leading extra axes plus any axis where target dim == 1.
  std::vector<int64_t> axes;
  const int64_t extra = a.rank() - target.rank();
  for (int64_t i = 0; i < extra; ++i) axes.push_back(i);
  for (int64_t i = 0; i < target.rank(); ++i) {
    if (target.dim(i) == 1 && a.dim(i + extra) != 1) axes.push_back(i + extra);
  }
  Tensor reduced = Sum(a, axes, /*keepdims=*/true);
  return reduced.Reshape(target);
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  URCL_CHECK_GE(a.rank(), 2);
  URCL_CHECK_GE(b.rank(), 2);
  const int64_t m = a.dim(-2);
  const int64_t k = a.dim(-1);
  const int64_t k2 = b.dim(-2);
  const int64_t n = b.dim(-1);
  URCL_CHECK_EQ(k, k2) << "MatMul inner-dim mismatch: " << a.shape().ToString() << " x "
                       << b.shape().ToString();

  // Broadcast batch dims.
  std::vector<int64_t> a_batch(a.shape().dims().begin(), a.shape().dims().end() - 2);
  std::vector<int64_t> b_batch(b.shape().dims().begin(), b.shape().dims().end() - 2);
  const Shape batch = BroadcastShapes(Shape(a_batch), Shape(b_batch));

  std::vector<int64_t> out_dims = batch.dims();
  out_dims.push_back(m);
  out_dims.push_back(n);
  Tensor out = Tensor::Uninitialized(Shape(out_dims));
  if (out.NumElements() == 0) return out;

  const int64_t batch_count = batch.NumElements();
  const std::vector<int64_t> a_bstrides = BroadcastStrides(Shape(a_batch), batch);
  const std::vector<int64_t> b_bstrides = BroadcastStrides(Shape(b_batch), batch);
  const int64_t a_mat = m * k;
  const int64_t b_mat = k * n;
  const int64_t o_mat = m * n;

  // Per-batch operand offsets (broadcast-aware) in units of whole matrices.
  std::vector<int64_t> a_scaled(a_bstrides), b_scaled(b_bstrides);
  for (auto& s : a_scaled) s *= a_mat;
  for (auto& s : b_scaled) s *= b_mat;

  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.mutable_data();

  // Row-blocked: the parallel index space is every output row across every
  // batch; each row is produced wholly by one chunk, so any scheduling gives
  // identical results. The grain targets ~64k multiply-adds per chunk and
  // depends only on the shapes.
  const int64_t total_rows = batch_count * m;
  const int64_t grain = std::max<int64_t>(1, (1 << 16) / std::max<int64_t>(1, k * n));
  runtime::ParallelFor(0, total_rows, grain, [&](int64_t row_begin, int64_t row_end) {
    int64_t batch_index = row_begin / m;
    MultiCursor cursor(batch.dims(), {a_scaled, b_scaled});
    cursor.SeekTo(batch_index);
    int64_t row = row_begin;
    while (row < row_end) {
      const float* ma = pa + cursor.offset(0);
      const float* mb = pb + cursor.offset(1);
      float* mo = po + batch_index * o_mat;
      const int64_t batch_row_end = std::min(row_end, (batch_index + 1) * m);
      // i-k-j loop order: streams over contiguous rows of b. The j-loop is
      // lane-parallel over independent output columns; per column the k-sum
      // accumulates in the same order as the scalar loop (and FP contraction
      // is disabled build-wide), so results are bitwise unchanged.
      for (; row < batch_row_end; ++row) {
        const int64_t i = row - batch_index * m;
        float* row_out = mo + i * n;
        std::fill(row_out, row_out + n, 0.0f);
        for (int64_t kk = 0; kk < k; ++kk) {
          const float scale = ma[i * k + kk];
          if (scale == 0.0f) continue;
          const float* row_b = mb + kk * n;
          const simd::F32x8 vs = simd::Broadcast(scale);
          int64_t j = 0;
          for (; j + simd::kLanes <= n; j += simd::kLanes) {
            simd::StoreU(row_out + j, simd::Add(simd::LoadU(row_out + j),
                                                simd::Mul(vs, simd::LoadU(row_b + j))));
          }
          for (; j < n; ++j) row_out[j] += scale * row_b[j];
        }
      }
      ++batch_index;
      cursor.Advance();
    }
  });
  return out;
}

Tensor BroadcastTo(const Tensor& a, const Shape& target) {
  if (a.shape() == target) return a;
  URCL_CHECK(IsBroadcastableTo(a.shape(), target))
      << "cannot broadcast " << a.shape().ToString() << " to " << target.ToString();
  Tensor out = Tensor::Uninitialized(target);
  if (out.NumElements() == 0) return out;
  const std::vector<int64_t> gather_strides = BroadcastStrides(a.shape(), target);
  const float* pa = a.data();
  float* po = out.mutable_data();
  runtime::ParallelFor(0, out.NumElements(), detail::kStridedGrain,
                       [&](int64_t chunk_begin, int64_t chunk_end) {
                         MultiCursor cursor(target.dims(), {gather_strides});
                         cursor.SeekTo(chunk_begin);
                         for (int64_t i = chunk_begin; i < chunk_end; ++i) {
                           po[i] = pa[cursor.offset(0)];
                           cursor.Advance();
                         }
                       });
  return out;
}

Tensor Transpose(const Tensor& a, const std::vector<int64_t>& perm) {
  URCL_CHECK_EQ(static_cast<int64_t>(perm.size()), a.rank());
  std::vector<int64_t> out_dims(perm.size());
  const std::vector<int64_t> in_strides = a.shape().Strides();
  std::vector<int64_t> gather_strides(perm.size());
  std::vector<bool> seen(perm.size(), false);
  for (size_t i = 0; i < perm.size(); ++i) {
    const int64_t axis = a.shape().CanonicalAxis(perm[i]);
    URCL_CHECK(!seen[static_cast<size_t>(axis)]) << "duplicate axis in permutation";
    seen[static_cast<size_t>(axis)] = true;
    out_dims[i] = a.dim(axis);
    gather_strides[i] = in_strides[static_cast<size_t>(axis)];
  }
  Tensor out = Tensor::Uninitialized(Shape(out_dims));
  if (out.NumElements() == 0) return out;
  const float* pa = a.data();
  float* po = out.mutable_data();
  runtime::ParallelFor(0, out.NumElements(), detail::kStridedGrain,
                       [&](int64_t chunk_begin, int64_t chunk_end) {
                         MultiCursor cursor(out_dims, {gather_strides});
                         cursor.SeekTo(chunk_begin);
                         for (int64_t i = chunk_begin; i < chunk_end; ++i) {
                           po[i] = pa[cursor.offset(0)];
                           cursor.Advance();
                         }
                       });
  return out;
}

Tensor TransposeLast2(const Tensor& a) {
  URCL_CHECK_GE(a.rank(), 2);
  std::vector<int64_t> perm(static_cast<size_t>(a.rank()));
  for (int64_t i = 0; i < a.rank(); ++i) perm[static_cast<size_t>(i)] = i;
  std::swap(perm[static_cast<size_t>(a.rank() - 1)], perm[static_cast<size_t>(a.rank() - 2)]);
  return Transpose(a, perm);
}

Tensor Slice(const Tensor& a, const std::vector<int64_t>& starts,
             const std::vector<int64_t>& sizes) {
  URCL_CHECK_EQ(static_cast<int64_t>(starts.size()), a.rank());
  URCL_CHECK_EQ(static_cast<int64_t>(sizes.size()), a.rank());
  for (int64_t i = 0; i < a.rank(); ++i) {
    const size_t s = static_cast<size_t>(i);
    URCL_CHECK(starts[s] >= 0 && sizes[s] >= 0 && starts[s] + sizes[s] <= a.dim(i))
        << "slice [" << starts[s] << ", " << starts[s] + sizes[s] << ") out of bounds on axis "
        << i << " of " << a.shape().ToString();
  }
  Tensor out = Tensor::Uninitialized(Shape(sizes));
  if (out.NumElements() == 0) return out;
  const std::vector<int64_t> in_strides = a.shape().Strides();
  int64_t base = 0;
  for (int64_t i = 0; i < a.rank(); ++i) {
    base += starts[static_cast<size_t>(i)] * in_strides[static_cast<size_t>(i)];
  }
  MultiCursor cursor(sizes, {in_strides});
  const float* pa = a.data();
  float* po = out.mutable_data();
  const int64_t n = out.NumElements();
  for (int64_t i = 0; i < n; ++i) {
    po[i] = pa[base + cursor.offset(0)];
    cursor.Advance();
  }
  return out;
}

Tensor UnSlice(const Tensor& src, const Shape& full, const std::vector<int64_t>& starts) {
  URCL_CHECK_EQ(src.rank(), full.rank());
  Tensor out(full);
  if (src.NumElements() == 0) return out;
  const std::vector<int64_t> out_strides = full.Strides();
  int64_t base = 0;
  for (int64_t i = 0; i < full.rank(); ++i) {
    const size_t s = static_cast<size_t>(i);
    URCL_CHECK(starts[s] >= 0 && starts[s] + src.dim(i) <= full.dim(i));
    base += starts[s] * out_strides[s];
  }
  MultiCursor cursor(src.shape().dims(), {out_strides});
  const float* ps = src.data();
  float* po = out.mutable_data();
  const int64_t n = src.NumElements();
  for (int64_t i = 0; i < n; ++i) {
    po[base + cursor.offset(0)] = ps[i];
    cursor.Advance();
  }
  return out;
}

Tensor Concat(const std::vector<Tensor>& tensors, int64_t axis) {
  URCL_CHECK(!tensors.empty());
  const int64_t canonical = tensors[0].shape().CanonicalAxis(axis);
  std::vector<int64_t> out_dims = tensors[0].shape().dims();
  int64_t total = 0;
  for (const Tensor& t : tensors) {
    URCL_CHECK_EQ(t.rank(), tensors[0].rank());
    for (int64_t i = 0; i < t.rank(); ++i) {
      if (i != canonical) {
        URCL_CHECK_EQ(t.dim(i), tensors[0].dim(i))
            << "Concat: mismatched non-concat dims on axis " << i;
      }
    }
    total += t.dim(canonical);
  }
  out_dims[static_cast<size_t>(canonical)] = total;
  // Every element of `out` is written: the per-tensor copies below tile the
  // full concat axis, so uninitialized storage is safe.
  Tensor out = Tensor::Uninitialized(Shape(out_dims));
  std::vector<int64_t> starts(out_dims.size(), 0);
  int64_t offset = 0;
  float* po = out.mutable_data();
  const std::vector<int64_t> out_strides = out.shape().Strides();
  for (const Tensor& t : tensors) {
    starts[static_cast<size_t>(canonical)] = offset;
    // Copy t into out at `starts` (same pattern as UnSlice but into out).
    if (t.NumElements() > 0) {
      int64_t base = 0;
      for (int64_t i = 0; i < t.rank(); ++i)
        base += starts[static_cast<size_t>(i)] * out_strides[static_cast<size_t>(i)];
      MultiCursor cursor(t.shape().dims(), {out_strides});
      const float* ps = t.data();
      const int64_t n = t.NumElements();
      for (int64_t i = 0; i < n; ++i) {
        po[base + cursor.offset(0)] = ps[i];
        cursor.Advance();
      }
    }
    offset += t.dim(canonical);
  }
  return out;
}

Tensor Stack(const std::vector<Tensor>& tensors, int64_t axis) {
  URCL_CHECK(!tensors.empty());
  std::vector<Tensor> expanded;
  expanded.reserve(tensors.size());
  for (const Tensor& t : tensors) {
    std::vector<int64_t> dims = t.shape().dims();
    int64_t a = axis;
    if (a < 0) a += t.rank() + 1;
    URCL_CHECK(a >= 0 && a <= t.rank());
    dims.insert(dims.begin() + a, 1);
    expanded.push_back(t.Reshape(Shape(dims)));
  }
  int64_t a = axis;
  if (a < 0) a += tensors[0].rank() + 1;
  return Concat(expanded, a);
}

Tensor Pad(const Tensor& a, int64_t axis, int64_t before, int64_t after, float value) {
  const int64_t canonical = a.shape().CanonicalAxis(axis);
  URCL_CHECK(before >= 0 && after >= 0);
  std::vector<int64_t> out_dims = a.shape().dims();
  out_dims[static_cast<size_t>(canonical)] += before + after;
  Tensor out = Tensor::Full(Shape(out_dims), value);
  if (a.NumElements() == 0) return out;
  std::vector<int64_t> starts(out_dims.size(), 0);
  starts[static_cast<size_t>(canonical)] = before;
  const std::vector<int64_t> out_strides = out.shape().Strides();
  int64_t base = 0;
  for (int64_t i = 0; i < a.rank(); ++i)
    base += starts[static_cast<size_t>(i)] * out_strides[static_cast<size_t>(i)];
  MultiCursor cursor(a.shape().dims(), {out_strides});
  const float* ps = a.data();
  float* po = out.mutable_data();
  const int64_t n = a.NumElements();
  for (int64_t i = 0; i < n; ++i) {
    po[base + cursor.offset(0)] = ps[i];
    cursor.Advance();
  }
  return out;
}

Tensor Flip(const Tensor& a, int64_t axis) {
  const int64_t canonical = a.shape().CanonicalAxis(axis);
  Tensor out = Tensor::Uninitialized(a.shape());
  if (a.NumElements() == 0) return out;
  const std::vector<int64_t> strides = a.shape().Strides();
  const int64_t extent = a.dim(canonical);
  const int64_t stride = strides[static_cast<size_t>(canonical)];
  // For each element, mirror the index along `canonical`.
  MultiCursor cursor(a.shape().dims(), {strides});
  const float* pa = a.data();
  float* po = out.mutable_data();
  const int64_t n = a.NumElements();
  // offset = base + idx*stride; mirrored = base + (extent-1-idx)*stride
  //        = offset + (extent-1-2*idx)*stride. Track idx along the axis.
  for (int64_t i = 0; i < n; ++i) {
    const int64_t offset = cursor.offset(0);
    const int64_t idx = (offset / stride) % extent;
    const int64_t mirrored = offset + (extent - 1 - 2 * idx) * stride;
    po[mirrored] = pa[offset];
    cursor.Advance();
  }
  return out;
}

Tensor Softmax(const Tensor& a, int64_t axis) {
  const int64_t canonical = a.shape().CanonicalAxis(axis);
  const Tensor max = Max(a, {canonical}, /*keepdims=*/true);
  const Tensor shifted = Sub(a, max);
  const Tensor exps = Exp(shifted);
  const Tensor total = Sum(exps, {canonical}, /*keepdims=*/true);
  return Div(exps, total);
}

bool AllClose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (a.shape() != b.shape()) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.NumElements(); ++i) {
    const float diff = std::fabs(pa[i] - pb[i]);
    if (diff > atol + rtol * std::fabs(pb[i])) return false;
  }
  return true;
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  URCL_CHECK(a.shape() == b.shape());
  float max_diff = 0.0f;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.NumElements(); ++i) {
    max_diff = std::max(max_diff, std::fabs(pa[i] - pb[i]));
  }
  return max_diff;
}

bool AllFinite(const Tensor& a) { return a.AllFinite(); }

Tensor TemporalConv2d(const Tensor& input, const Tensor& weight, int64_t dilation) {
  URCL_CHECK_EQ(input.shape().rank(), 4) << "TemporalConv2d input must be [B, C, N, T]";
  URCL_CHECK_EQ(weight.shape().rank(), 4) << "TemporalConv2d weight must be [Co, Ci, 1, K]";
  URCL_CHECK_GE(dilation, 1);
  const int64_t batch = input.dim(0), c_in = input.dim(1), nodes = input.dim(2),
                time = input.dim(3);
  const int64_t c_out = weight.dim(0), kernel = weight.dim(3);
  URCL_CHECK_EQ(weight.dim(1), c_in) << "TemporalConv2d channel mismatch";
  URCL_CHECK_EQ(weight.dim(2), 1);
  const int64_t t_out = time - dilation * (kernel - 1);
  URCL_CHECK_GT(t_out, 0) << "TemporalConv2d: receptive field " << dilation * (kernel - 1) + 1
                          << " exceeds input length " << time;
  Tensor out(Shape{batch, c_out, nodes, t_out});
  const float* pi = input.data();
  const float* pw = weight.data();
  float* po = out.mutable_data();
  // Each output row [b, co, n, :] is produced wholly by one chunk, with the
  // ci -> k -> t accumulation order fixed, so results are bitwise identical
  // at any thread count.
  const int64_t total_rows = batch * c_out * nodes;
  const int64_t row_cost = c_in * kernel * t_out;
  const int64_t grain = std::max<int64_t>(1, (1 << 15) / std::max<int64_t>(1, row_cost));
  runtime::ParallelFor(0, total_rows, grain, [&](int64_t row_begin, int64_t row_end) {
    for (int64_t r = row_begin; r < row_end; ++r) {
      const int64_t n = r % nodes;
      const int64_t co = (r / nodes) % c_out;
      const int64_t b = r / (nodes * c_out);
      float* out_row = po + r * t_out;
      for (int64_t ci = 0; ci < c_in; ++ci) {
        const float* w_row = pw + (co * c_in + ci) * kernel;
        const float* in_row = pi + ((b * c_in + ci) * nodes + n) * time;
        for (int64_t k = 0; k < kernel; ++k) {
          const float w = w_row[k];
          if (w == 0.0f) continue;
          const int64_t shift = dilation * k;
          // Lane-parallel over independent time steps; the ci -> k sum per
          // step keeps its scalar order, so results are bitwise unchanged.
          const simd::F32x8 vw = simd::Broadcast(w);
          int64_t t = 0;
          for (; t + simd::kLanes <= t_out; t += simd::kLanes) {
            simd::StoreU(out_row + t,
                         simd::Add(simd::LoadU(out_row + t),
                                   simd::Mul(vw, simd::LoadU(in_row + t + shift))));
          }
          for (; t < t_out; ++t) out_row[t] += w * in_row[t + shift];
        }
      }
    }
  });
  return out;
}

void TemporalConv2dBackward(const Tensor& g, const Tensor& input, const Tensor& weight,
                            int64_t dilation, Tensor* d_in, Tensor* d_w) {
  URCL_CHECK(d_in != nullptr && d_w != nullptr);
  URCL_CHECK(d_in->shape() == input.shape());
  URCL_CHECK(d_w->shape() == weight.shape());
  const int64_t batch = input.dim(0), c_in = input.dim(1), nodes = input.dim(2),
                time = input.dim(3);
  const int64_t c_out = weight.dim(0), kernel = weight.dim(3);
  const int64_t t_out = g.dim(3);
  const float* pg = g.data();
  const float* pi = input.data();
  const float* pw = weight.data();
  float* pdi = d_in->mutable_data();
  float* pdw = d_w->mutable_data();
  // Two disjoint passes so each parallel chunk owns its output rows:
  // d_in rows keyed by [b, ci, n] (co -> k -> t accumulation order) and
  // d_w rows keyed by [co, ci] (b -> n -> k order) — the same per-slot
  // orders as a serial b -> co -> ci -> n -> k -> t walk.
  const int64_t di_rows = batch * c_in * nodes;
  const int64_t di_cost = c_out * kernel * t_out;
  const int64_t di_grain = std::max<int64_t>(1, (1 << 15) / std::max<int64_t>(1, di_cost));
  runtime::ParallelFor(0, di_rows, di_grain, [&](int64_t row_begin, int64_t row_end) {
    for (int64_t r = row_begin; r < row_end; ++r) {
      const int64_t n = r % nodes;
      const int64_t ci = (r / nodes) % c_in;
      const int64_t b = r / (nodes * c_in);
      float* di_row = pdi + r * time;
      for (int64_t co = 0; co < c_out; ++co) {
        const float* w_row = pw + (co * c_in + ci) * kernel;
        const float* g_row = pg + ((b * c_out + co) * nodes + n) * t_out;
        for (int64_t k = 0; k < kernel; ++k) {
          const int64_t shift = dilation * k;
          const float wk = w_row[k];
          // Lane-parallel over independent d_in slots (fixed shift per
          // k, so the 8 writes never alias); co -> k order per slot is
          // the scalar one.
          const simd::F32x8 vw = simd::Broadcast(wk);
          int64_t t = 0;
          for (; t + simd::kLanes <= t_out; t += simd::kLanes) {
            simd::StoreU(di_row + t + shift,
                         simd::Add(simd::LoadU(di_row + t + shift),
                                   simd::Mul(simd::LoadU(g_row + t), vw)));
          }
          for (; t < t_out; ++t) di_row[t + shift] += g_row[t] * wk;
        }
      }
    }
  });
  runtime::ParallelFor(0, c_out * c_in, 1, [&](int64_t pair_begin, int64_t pair_end) {
    for (int64_t p = pair_begin; p < pair_end; ++p) {
      const int64_t ci = p % c_in;
      const int64_t co = p / c_in;
      float* dw_row = pdw + p * kernel;
      for (int64_t b = 0; b < batch; ++b) {
        for (int64_t n = 0; n < nodes; ++n) {
          const float* g_row = pg + ((b * c_out + co) * nodes + n) * t_out;
          const float* in_row = pi + ((b * c_in + ci) * nodes + n) * time;
          for (int64_t k = 0; k < kernel; ++k) {
            const int64_t shift = dilation * k;
            // Sequential reduction over t: vectorizing it would need a
            // horizontal sum, which reassociates the accumulation order
            // and breaks bitwise determinism — stays scalar on purpose.
            float dw_acc = 0.0f;
            for (int64_t t = 0; t < t_out; ++t) dw_acc += g_row[t] * in_row[t + shift];
            dw_row[k] += dw_acc;
          }
        }
      }
    }
  });
}

}  // namespace ops
}  // namespace urcl
