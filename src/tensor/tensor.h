// Dense float32 tensor with contiguous row-major storage and value semantics.
// Copies share storage; every operation in tensor_ops.h allocates fresh
// output, so shared storage is never mutated behind a reader's back unless
// the caller opts into the explicitly in-place methods.
//
// Storage comes from the process-wide BufferPool (tensor/pool.h): a
// size-class free-list recycles buffers between tensors of recurring shapes,
// so steady-state training makes ~zero allocator calls. The shared_ptr's
// deleter returns the buffer to the pool when the last copy dies.
#ifndef URCL_TENSOR_TENSOR_H_
#define URCL_TENSOR_TENSOR_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/pool.h"
#include "tensor/shape.h"

namespace urcl {

class Tensor {
 public:
  // Default: empty scalar-shaped tensor holding 0.
  Tensor();
  explicit Tensor(const Shape& shape);

  Tensor(const Tensor& other) = default;
  Tensor& operator=(const Tensor& other) = default;
  Tensor(Tensor&& other) = default;
  Tensor& operator=(Tensor&& other) = default;

  // --- Factories -----------------------------------------------------------
  // Storage with UNSPECIFIED contents (possibly stale data from a recycled
  // pool buffer). Strictly for kernels that provably write every element
  // before any read; everything else wants Zeros/the shape constructor.
  static Tensor Uninitialized(const Shape& shape);
  static Tensor Zeros(const Shape& shape);
  static Tensor Ones(const Shape& shape);
  static Tensor Full(const Shape& shape, float value);
  static Tensor Scalar(float value);
  static Tensor FromVector(const Shape& shape, const std::vector<float>& values);
  static Tensor Arange(int64_t n);
  static Tensor Eye(int64_t n);
  static Tensor RandomUniform(const Shape& shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);
  static Tensor RandomNormal(const Shape& shape, Rng& rng, float mean = 0.0f,
                             float stddev = 1.0f);

  // --- Introspection -------------------------------------------------------
  const Shape& shape() const { return shape_; }
  int64_t rank() const { return shape_.rank(); }
  int64_t dim(int64_t axis) const { return shape_.dim(axis); }
  int64_t NumElements() const { return shape_.NumElements(); }

  const float* data() const { return data_.get(); }
  // Handing out a writable pointer counts as a write: the storage's version
  // stamp is bumped so the autograd integrity checks (DESIGN.md §9) can
  // detect in-place mutation of tensors captured by backward closures.
  float* mutable_data() {
    BumpVersion();
    return data_.get();
  }

  // --- Write-version counter -----------------------------------------------
  // Every storage buffer carries a monotonically increasing write-version
  // stamp shared by all tensors (copies, reshapes) using that storage. Each
  // in-place mutation path bumps it; autograd snapshots it at op-record time
  // and compares at Backward()/lint time. Fresh storage starts at version 0.
  uint64_t version() const { return version_->load(std::memory_order_relaxed); }
  // The counter object doubles as a stable identity for the storage
  // *generation*: replacing a node's value (e.g. Variable::SetValue) swaps in
  // a different counter, which the checks distinguish from in-place writes.
  std::shared_ptr<const std::atomic<uint64_t>> version_counter() const { return version_; }

  // Scalar extraction (requires exactly one element).
  float Item() const;

  // True when no element is NaN or +/-Inf. Cheap (one linear scan); the
  // training loop uses it to quarantine corrupt batches and diverged updates
  // before they poison gradients.
  bool AllFinite() const;

  // Multi-index element access (bounds-checked). The initializer_list
  // overloads make braced call sites (`t.At({i, j, k})`) allocation-free;
  // offsets are computed without materializing a strides vector either way.
  float At(const std::vector<int64_t>& indices) const;
  void Set(const std::vector<int64_t>& indices, float value);
  float At(std::initializer_list<int64_t> indices) const;
  void Set(std::initializer_list<int64_t> indices, float value);

  // Flat element access (bounds-checked).
  float FlatAt(int64_t index) const;
  void FlatSet(int64_t index, float value);

  // --- Explicitly in-place mutators (affect all copies sharing storage) ----
  void Fill(float value);
  void AddInPlace(const Tensor& other);  // shapes must match exactly
  void MulInPlace(float scale);
  void CopyFrom(const Tensor& other);  // shapes must match exactly

  // Deep copy with its own storage.
  Tensor Clone() const;

  // Same storage, new shape (element count must match).
  Tensor Reshape(const Shape& new_shape) const;

  std::string ToString(int64_t max_elements = 32) const;

 private:
  Tensor(Shape shape, pool::BufferPool::Acquisition storage);

  // Bounds-checked row-major flat offset of a multi-index; no allocations.
  int64_t OffsetOf(const int64_t* indices, int64_t count) const;

  // Relaxed load+store rather than fetch_add: the stamp is a single-writer
  // witness (concurrent mutation of one tensor is already a race on the data
  // itself), and x86 lowers even relaxed RMWs to `lock xadd` — measurable in
  // per-element Set/FlatSet loops — while load+store is two plain moves.
  void BumpVersion() {
    version_->store(version_->load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }

  Shape shape_;
  std::shared_ptr<float> data_;  // pool-backed buffer (tensor/pool.h)
  // Write-version stamp for `data_`; shared by every tensor viewing the same
  // storage. Aliases the same pool block as `data_` (one per storage
  // generation, no extra allocation), so counter identity doubles as a
  // storage-generation ID.
  std::shared_ptr<std::atomic<uint64_t>> version_;
};

}  // namespace urcl

#endif  // URCL_TENSOR_TENSOR_H_
