// Binary tensor (de)serialization, used for model checkpoints and to export
// replay buffers / experiment artifacts.
#ifndef URCL_TENSOR_SERIALIZE_H_
#define URCL_TENSOR_SERIALIZE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace urcl {

// Writes `tensor` to `out` in a little-endian [magic, rank, dims..., data]
// layout. Aborts on stream failure.
void SaveTensor(const Tensor& tensor, std::ostream& out);

// Reads one tensor previously written by SaveTensor. Header fields are
// validated against the remaining stream length before any allocation, so a
// corrupt size field aborts with a diagnostic instead of triggering a huge
// allocation or a silent short-read.
Tensor LoadTensor(std::istream& in);

// Saves/loads an ordered list of tensors (e.g. the parameters of a model).
void SaveTensors(const std::vector<Tensor>& tensors, const std::string& path);
std::vector<Tensor> LoadTensors(const std::string& path);

namespace io {

// POD stream helpers shared by the checkpoint section encoders (nn/optimizer,
// replay/replay_buffer, core/urcl). WritePod aborts on stream failure;
// ReadPod aborts on truncation.
template <typename T>
void WritePod(std::ostream& out, T value);

template <typename T>
T ReadPod(std::istream& in);

// Remaining readable bytes of a seekable stream; -1 when not seekable.
int64_t StreamRemaining(std::istream& in);

}  // namespace io
}  // namespace urcl

#endif  // URCL_TENSOR_SERIALIZE_H_
