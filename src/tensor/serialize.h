// Binary tensor (de)serialization, used for model checkpoints and to export
// replay buffers / experiment artifacts.
#ifndef URCL_TENSOR_SERIALIZE_H_
#define URCL_TENSOR_SERIALIZE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace urcl {

// Writes `tensor` to `out` in a little-endian [magic, rank, dims..., data]
// layout. Aborts on stream failure.
void SaveTensor(const Tensor& tensor, std::ostream& out);

// Reads one tensor previously written by SaveTensor.
Tensor LoadTensor(std::istream& in);

// Saves/loads an ordered list of tensors (e.g. the parameters of a model).
void SaveTensors(const std::vector<Tensor>& tensors, const std::string& path);
std::vector<Tensor> LoadTensors(const std::string& path);

}  // namespace urcl

#endif  // URCL_TENSOR_SERIALIZE_H_
