// Pure functions over Tensor. Every op allocates a fresh output tensor;
// inputs are never mutated. Binary elementwise ops follow NumPy broadcasting.
//
// Execution model: the hot kernels (elementwise binaries, reductions, MatMul)
// are data-parallel via runtime::ParallelFor with shape-derived chunking —
// results are bitwise identical at any thread count. Ops never spawn threads
// directly (see runtime/parallel.h).
#ifndef URCL_TENSOR_TENSOR_OPS_H_
#define URCL_TENSOR_TENSOR_OPS_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "tensor/elementwise.h"
#include "tensor/tensor.h"

namespace urcl {
namespace ops {

// --- Elementwise binary (broadcasting) --------------------------------------
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
Tensor Maximum(const Tensor& a, const Tensor& b);
Tensor Minimum(const Tensor& a, const Tensor& b);

// Generic broadcast combine with an arbitrary binary functor. The template
// overload is the inlining fast path (no std::function dispatch per element)
// and is what the named ops above use internally; the std::function overload
// is a thin wrapper kept for generic callers that store or pass functors as
// values.
Tensor ZipWith(const Tensor& a, const Tensor& b, const std::function<float(float, float)>& fn);
template <typename Fn>
Tensor ZipWith(const Tensor& a, const Tensor& b, Fn fn) {
  return detail::BinaryElementwise(a, b, std::move(fn));
}

// --- Elementwise with scalar -------------------------------------------------
Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);
Tensor PowScalar(const Tensor& a, float exponent);

// --- Elementwise unary --------------------------------------------------------
Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Sign(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor Square(const Tensor& a);
Tensor Clamp(const Tensor& a, float lo, float hi);
// Unary counterpart of ZipWith; same template/std::function split.
Tensor Map(const Tensor& a, const std::function<float(float)>& fn);
template <typename Fn>
Tensor Map(const Tensor& a, Fn fn) {
  return detail::UnaryElementwise(a, std::move(fn));
}

// --- Reductions ----------------------------------------------------------------
// Reduce over `axes` (empty = all axes). With keepdims the reduced axes stay
// as size-1 dims, otherwise they are removed.
Tensor Sum(const Tensor& a, const std::vector<int64_t>& axes = {}, bool keepdims = false);
Tensor Mean(const Tensor& a, const std::vector<int64_t>& axes = {}, bool keepdims = false);
Tensor Max(const Tensor& a, const std::vector<int64_t>& axes = {}, bool keepdims = false);
Tensor Min(const Tensor& a, const std::vector<int64_t>& axes = {}, bool keepdims = false);

// Sums `a` down so the result has shape `target` (inverse of broadcasting).
Tensor ReduceTo(const Tensor& a, const Shape& target);

// --- Linear algebra --------------------------------------------------------------
// Batched matrix multiply: [..., M, K] x [..., K, N] -> [..., M, N] with
// broadcasting over the leading batch dims.
Tensor MatMul(const Tensor& a, const Tensor& b);

// 2-D convolution with kernel (1, K) and temporal dilation, as used by the
// GraphWaveNet gated TCN. Input [B, C_in, N, T], weight [C_out, C_in, 1, K];
// output [B, C_out, N, T - dilation*(K-1)] (no padding, stride 1). This is
// the single forward kernel shared by the autograd op and the inference-only
// serving executor, so both paths are bitwise identical by construction.
Tensor TemporalConv2d(const Tensor& input, const Tensor& weight, int64_t dilation);

// Gradient kernel for TemporalConv2d, shared by the autograd tape closure and
// the compiled executor's backward program. Accumulates (+=) into *d_in
// ([B, Ci, N, T]) and *d_w ([Co, Ci, 1, K]), which the caller must have
// zero-initialized; `g` is the upstream gradient [B, Co, N, T_out].
void TemporalConv2dBackward(const Tensor& g, const Tensor& input, const Tensor& weight,
                            int64_t dilation, Tensor* d_in, Tensor* d_w);

// --- Shape manipulation ------------------------------------------------------------
Tensor BroadcastTo(const Tensor& a, const Shape& target);
Tensor Transpose(const Tensor& a, const std::vector<int64_t>& perm);
// Swaps the last two axes (matrix transpose for batched matrices).
Tensor TransposeLast2(const Tensor& a);
Tensor Slice(const Tensor& a, const std::vector<int64_t>& starts,
             const std::vector<int64_t>& sizes);
// Writes `src` into a zero tensor of shape `full` at offset `starts`
// (adjoint of Slice; used by autograd).
Tensor UnSlice(const Tensor& src, const Shape& full, const std::vector<int64_t>& starts);
Tensor Concat(const std::vector<Tensor>& tensors, int64_t axis);
Tensor Stack(const std::vector<Tensor>& tensors, int64_t axis);
// Pads `axis` with `before`/`after` zeros (constant value `value`).
Tensor Pad(const Tensor& a, int64_t axis, int64_t before, int64_t after, float value = 0.0f);
// Reverses the order of entries along `axis` (used by time flipping).
Tensor Flip(const Tensor& a, int64_t axis);

// --- Softmax-family -------------------------------------------------------------------
Tensor Softmax(const Tensor& a, int64_t axis);

// --- Comparisons / diagnostics ----------------------------------------------------------
bool AllClose(const Tensor& a, const Tensor& b, float atol = 1e-5f, float rtol = 1e-4f);
float MaxAbsDiff(const Tensor& a, const Tensor& b);
bool AllFinite(const Tensor& a);

}  // namespace ops
}  // namespace urcl

#endif  // URCL_TENSOR_TENSOR_OPS_H_
