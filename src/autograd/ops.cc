#include "autograd/ops.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/profiler.h"
#include "runtime/parallel.h"
#include "tensor/simd.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace autograd {

namespace top = ::urcl::ops;

Variable Add(const Variable& a, const Variable& b) {
  URCL_PROFILE_OP();
  Tensor value = top::Add(a.value(), b.value());
  return Variable::MakeOp(std::move(value), "add", {a, b}, [a, b](const Tensor& g) {
    a.AccumulateGrad(top::ReduceTo(g, a.shape()));
    b.AccumulateGrad(top::ReduceTo(g, b.shape()));
  });
}

Variable Sub(const Variable& a, const Variable& b) {
  URCL_PROFILE_OP();
  Tensor value = top::Sub(a.value(), b.value());
  return Variable::MakeOp(std::move(value), "sub", {a, b}, [a, b](const Tensor& g) {
    a.AccumulateGrad(top::ReduceTo(g, a.shape()));
    b.AccumulateGrad(top::ReduceTo(top::Neg(g), b.shape()));
  });
}

Variable Mul(const Variable& a, const Variable& b) {
  URCL_PROFILE_OP();
  Tensor value = top::Mul(a.value(), b.value());
  return Variable::MakeOp(std::move(value), "mul", {a, b}, [a, b](const Tensor& g) {
    a.AccumulateGrad(top::ReduceTo(top::Mul(g, b.value()), a.shape()));
    b.AccumulateGrad(top::ReduceTo(top::Mul(g, a.value()), b.shape()));
  });
}

Variable Div(const Variable& a, const Variable& b) {
  URCL_PROFILE_OP();
  Tensor value = top::Div(a.value(), b.value());
  return Variable::MakeOp(std::move(value), "div", {a, b}, [a, b](const Tensor& g) {
    a.AccumulateGrad(top::ReduceTo(top::Div(g, b.value()), a.shape()));
    const Tensor b2 = top::Square(b.value());
    const Tensor db = top::Neg(top::Div(top::Mul(g, a.value()), b2));
    b.AccumulateGrad(top::ReduceTo(db, b.shape()));
  });
}

Variable AddScalar(const Variable& a, float s) {
  URCL_PROFILE_OP();
  return Variable::MakeOp(top::AddScalar(a.value(), s), "add_scalar", {a},
                          [a](const Tensor& g) { a.AccumulateGrad(g); });
}

Variable MulScalar(const Variable& a, float s) {
  URCL_PROFILE_OP();
  return Variable::MakeOp(top::MulScalar(a.value(), s), "mul_scalar", {a},
                          [a, s](const Tensor& g) {
                            a.AccumulateGrad(top::MulScalar(g, s));
                          });
}

Variable Neg(const Variable& a) { return MulScalar(a, -1.0f); }

Variable Exp(const Variable& a) {
  URCL_PROFILE_OP();
  Tensor value = top::Exp(a.value());
  const Tensor saved = value;
  return Variable::MakeOp(std::move(value), "exp", {a}, [a, saved](const Tensor& g) {
    a.AccumulateGrad(top::Mul(g, saved));
  });
}

Variable Log(const Variable& a) {
  URCL_PROFILE_OP();
  Tensor value = top::Log(a.value());
  return Variable::MakeOp(std::move(value), "log", {a}, [a](const Tensor& g) {
    a.AccumulateGrad(top::Div(g, a.value()));
  });
}

Variable Sqrt(const Variable& a) {
  URCL_PROFILE_OP();
  Tensor value = top::Sqrt(a.value());
  const Tensor saved = value;
  return Variable::MakeOp(std::move(value), "sqrt", {a}, [a, saved](const Tensor& g) {
    a.AccumulateGrad(top::Div(g, top::MulScalar(saved, 2.0f)));
  });
}

Variable Abs(const Variable& a) {
  URCL_PROFILE_OP();
  Tensor value = top::Abs(a.value());
  return Variable::MakeOp(std::move(value), "abs", {a}, [a](const Tensor& g) {
    a.AccumulateGrad(top::Mul(g, top::Sign(a.value())));
  });
}

Variable Tanh(const Variable& a) {
  URCL_PROFILE_OP();
  Tensor value = top::Tanh(a.value());
  const Tensor saved = value;
  return Variable::MakeOp(std::move(value), "tanh", {a}, [a, saved](const Tensor& g) {
    // d/dx tanh = 1 - tanh^2
    const Tensor one_minus = top::AddScalar(top::Neg(top::Square(saved)), 1.0f);
    a.AccumulateGrad(top::Mul(g, one_minus));
  });
}

Variable Sigmoid(const Variable& a) {
  URCL_PROFILE_OP();
  Tensor value = top::Sigmoid(a.value());
  const Tensor saved = value;
  return Variable::MakeOp(std::move(value), "sigmoid", {a},
                          [a, saved](const Tensor& g) {
                            // d/dx sigmoid = s * (1 - s)
                            const Tensor ds =
                                top::Mul(saved, top::AddScalar(top::Neg(saved), 1.0f));
                            a.AccumulateGrad(top::Mul(g, ds));
                          });
}

Variable Relu(const Variable& a) {
  URCL_PROFILE_OP();
  Tensor value = top::Relu(a.value());
  return Variable::MakeOp(std::move(value), "relu", {a}, [a](const Tensor& g) {
    const Tensor mask =
        top::Map(a.value(), [](float x) { return x > 0.0f ? 1.0f : 0.0f; });
    a.AccumulateGrad(top::Mul(g, mask));
  });
}

Variable LeakyRelu(const Variable& a, float negative_slope) {
  URCL_PROFILE_OP();
  Tensor value = top::Map(a.value(), [negative_slope](float x) {
    return x > 0.0f ? x : negative_slope * x;
  });
  return Variable::MakeOp(std::move(value), "leaky_relu", {a},
                          [a, negative_slope](const Tensor& g) {
                            const Tensor mask = top::Map(a.value(), [negative_slope](float x) {
                              return x > 0.0f ? 1.0f : negative_slope;
                            });
                            a.AccumulateGrad(top::Mul(g, mask));
                          });
}

Variable Square(const Variable& a) {
  URCL_PROFILE_OP();
  Tensor value = top::Square(a.value());
  return Variable::MakeOp(std::move(value), "square", {a}, [a](const Tensor& g) {
    a.AccumulateGrad(top::Mul(g, top::MulScalar(a.value(), 2.0f)));
  });
}

Variable MatMul(const Variable& a, const Variable& b) {
  URCL_PROFILE_OP();
  Tensor value = top::MatMul(a.value(), b.value());
  return Variable::MakeOp(std::move(value), "matmul", {a, b}, [a, b](const Tensor& g) {
    const Tensor da = top::MatMul(g, top::TransposeLast2(b.value()));
    const Tensor db = top::MatMul(top::TransposeLast2(a.value()), g);
    a.AccumulateGrad(top::ReduceTo(da, a.shape()));
    b.AccumulateGrad(top::ReduceTo(db, b.shape()));
  });
}

namespace {

// Shape of a reduction result with keepdims=true, for re-broadcast in backward.
Shape KeepdimsShape(const Shape& in, const std::vector<int64_t>& axes) {
  std::vector<int64_t> dims = in.dims();
  if (axes.empty()) {
    for (auto& d : dims) d = 1;
  } else {
    for (const int64_t axis : axes) dims[static_cast<size_t>(in.CanonicalAxis(axis))] = 1;
  }
  return Shape(dims);
}

}  // namespace

Variable Sum(const Variable& a, const std::vector<int64_t>& axes, bool keepdims) {
  URCL_PROFILE_OP();
  Tensor value = top::Sum(a.value(), axes, keepdims);
  const Shape kept = KeepdimsShape(a.shape(), axes);
  return Variable::MakeOp(std::move(value), "sum", {a},
                          [a, kept](const Tensor& g) {
                            a.AccumulateGrad(top::BroadcastTo(g.Reshape(kept), a.shape()));
                          });
}

Variable Mean(const Variable& a, const std::vector<int64_t>& axes, bool keepdims) {
  URCL_PROFILE_OP();
  Tensor value = top::Mean(a.value(), axes, keepdims);
  const Shape kept = KeepdimsShape(a.shape(), axes);
  const float scale =
      static_cast<float>(kept.NumElements()) / static_cast<float>(a.shape().NumElements());
  return Variable::MakeOp(std::move(value), "mean", {a},
                          [a, kept, scale](const Tensor& g) {
                            a.AccumulateGrad(top::MulScalar(
                                top::BroadcastTo(g.Reshape(kept), a.shape()), scale));
                          });
}

Variable Reshape(const Variable& a, const Shape& shape) {
  URCL_PROFILE_OP();
  Tensor value = a.value().Reshape(shape);
  const Shape original = a.shape();
  return Variable::MakeOp(std::move(value), "reshape", {a},
                          [a, original](const Tensor& g) {
                            a.AccumulateGrad(g.Reshape(original));
                          });
}

Variable Transpose(const Variable& a, const std::vector<int64_t>& perm) {
  URCL_PROFILE_OP();
  Tensor value = top::Transpose(a.value(), perm);
  // Inverse permutation for backward.
  std::vector<int64_t> inverse(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    inverse[static_cast<size_t>(a.shape().CanonicalAxis(perm[i]))] = static_cast<int64_t>(i);
  }
  return Variable::MakeOp(std::move(value), "transpose", {a},
                          [a, inverse](const Tensor& g) {
                            a.AccumulateGrad(top::Transpose(g, inverse));
                          });
}

Variable Slice(const Variable& a, const std::vector<int64_t>& starts,
               const std::vector<int64_t>& sizes) {
  URCL_PROFILE_OP();
  Tensor value = top::Slice(a.value(), starts, sizes);
  const Shape full = a.shape();
  return Variable::MakeOp(std::move(value), "slice", {a},
                          [a, full, starts](const Tensor& g) {
                            a.AccumulateGrad(top::UnSlice(g, full, starts));
                          });
}

Variable Concat(const std::vector<Variable>& parts, int64_t axis) {
  URCL_PROFILE_OP();
  URCL_CHECK(!parts.empty());
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const Variable& p : parts) values.push_back(p.value());
  Tensor value = top::Concat(values, axis);
  const int64_t canonical = parts[0].shape().CanonicalAxis(axis);
  return Variable::MakeOp(
      std::move(value), "concat", parts, [parts, canonical](const Tensor& g) {
        int64_t offset = 0;
        for (const Variable& p : parts) {
          std::vector<int64_t> starts(static_cast<size_t>(g.rank()), 0);
          starts[static_cast<size_t>(canonical)] = offset;
          p.AccumulateGrad(top::Slice(g, starts, p.shape().dims()));
          offset += p.shape().dim(canonical);
        }
      });
}

Variable Pad(const Variable& a, int64_t axis, int64_t before, int64_t after) {
  URCL_PROFILE_OP();
  Tensor value = top::Pad(a.value(), axis, before, after);
  const int64_t canonical = a.shape().CanonicalAxis(axis);
  return Variable::MakeOp(std::move(value), "pad", {a},
                          [a, canonical, before](const Tensor& g) {
                            std::vector<int64_t> starts(static_cast<size_t>(g.rank()), 0);
                            starts[static_cast<size_t>(canonical)] = before;
                            a.AccumulateGrad(top::Slice(g, starts, a.shape().dims()));
                          });
}

Variable BroadcastTo(const Variable& a, const Shape& target) {
  URCL_PROFILE_OP();
  Tensor value = top::BroadcastTo(a.value(), target);
  return Variable::MakeOp(std::move(value), "broadcast_to", {a},
                          [a](const Tensor& g) {
                            a.AccumulateGrad(top::ReduceTo(g, a.shape()));
                          });
}

Variable Softmax(const Variable& a, int64_t axis) {
  URCL_PROFILE_OP();
  Tensor value = top::Softmax(a.value(), axis);
  const Tensor saved = value;
  const int64_t canonical = a.shape().CanonicalAxis(axis);
  return Variable::MakeOp(
      std::move(value), "softmax", {a}, [a, saved, canonical](const Tensor& g) {
        // dL/dx = (g - sum(g*y, axis)) * y
        const Tensor gy = top::Mul(g, saved);
        const Tensor total = top::Sum(gy, {canonical}, /*keepdims=*/true);
        a.AccumulateGrad(top::Mul(top::Sub(g, total), saved));
      });
}

Variable StopGradient(const Variable& a) {
  // A fresh leaf with no parents: gradient flow ends here.
  return Variable(a.value(), /*requires_grad=*/false);
}

Variable Dropout(const Variable& a, float p, Rng& rng, bool training) {
  URCL_PROFILE_OP();
  if (!training || p <= 0.0f) return a;
  URCL_CHECK_LT(p, 1.0f) << "dropout rate must be < 1";
  Tensor mask(a.shape());
  float* pm = mask.mutable_data();
  const float keep_scale = 1.0f / (1.0f - p);
  for (int64_t i = 0; i < mask.NumElements(); ++i) {
    pm[i] = rng.Bernoulli(p) ? 0.0f : keep_scale;
  }
  Tensor value = top::Mul(a.value(), mask);
  return Variable::MakeOp(std::move(value), "dropout", {a},
                          [a, mask](const Tensor& g) {
                            a.AccumulateGrad(top::Mul(g, mask));
                          });
}

Variable TemporalConv2d(const Variable& input, const Variable& weight, int64_t dilation) {
  URCL_PROFILE_OP();
  // Shape/dilation validation lives in the shared kernel (ops::TemporalConv2d),
  // which the inference-only serving executor also calls directly.
  Tensor value = top::TemporalConv2d(input.value(), weight.value(), dilation);
  return Variable::MakeOp(
      std::move(value), "temporal_conv2d", {input, weight},
      [input, weight, dilation](const Tensor& g) {
        const Tensor& in = input.value();
        const Tensor& w = weight.value();
        const int64_t batch = in.dim(0), c_in = in.dim(1), nodes = in.dim(2), time = in.dim(3);
        const int64_t c_out = w.dim(0), kernel = w.dim(3);
        const int64_t t_out = g.dim(3);
        Tensor d_in(in.shape());
        Tensor d_w(w.shape());
        const float* pg = g.data();
        const float* pi = in.data();
        const float* pw = w.data();
        float* pdi = d_in.mutable_data();
        float* pdw = d_w.mutable_data();
        // Two disjoint passes so each parallel chunk owns its output rows:
        // d_in rows keyed by [b, ci, n] (co -> k -> t accumulation order) and
        // d_w rows keyed by [co, ci] (b -> n -> k order) — the same per-slot
        // orders as a serial b -> co -> ci -> n -> k -> t walk.
        const int64_t di_rows = batch * c_in * nodes;
        const int64_t di_cost = c_out * kernel * t_out;
        const int64_t di_grain = std::max<int64_t>(1, (1 << 15) / std::max<int64_t>(1, di_cost));
        runtime::ParallelFor(0, di_rows, di_grain, [&](int64_t row_begin, int64_t row_end) {
          for (int64_t r = row_begin; r < row_end; ++r) {
            const int64_t n = r % nodes;
            const int64_t ci = (r / nodes) % c_in;
            const int64_t b = r / (nodes * c_in);
            float* di_row = pdi + r * time;
            for (int64_t co = 0; co < c_out; ++co) {
              const float* w_row = pw + (co * c_in + ci) * kernel;
              const float* g_row = pg + ((b * c_out + co) * nodes + n) * t_out;
              for (int64_t k = 0; k < kernel; ++k) {
                const int64_t shift = dilation * k;
                const float wk = w_row[k];
                // Lane-parallel over independent d_in slots (fixed shift per
                // k, so the 8 writes never alias); co -> k order per slot is
                // the scalar one.
                const simd::F32x8 vw = simd::Broadcast(wk);
                int64_t t = 0;
                for (; t + simd::kLanes <= t_out; t += simd::kLanes) {
                  simd::StoreU(di_row + t + shift,
                               simd::Add(simd::LoadU(di_row + t + shift),
                                         simd::Mul(simd::LoadU(g_row + t), vw)));
                }
                for (; t < t_out; ++t) di_row[t + shift] += g_row[t] * wk;
              }
            }
          }
        });
        runtime::ParallelFor(0, c_out * c_in, 1, [&](int64_t pair_begin, int64_t pair_end) {
          for (int64_t p = pair_begin; p < pair_end; ++p) {
            const int64_t ci = p % c_in;
            const int64_t co = p / c_in;
            float* dw_row = pdw + p * kernel;
            for (int64_t b = 0; b < batch; ++b) {
              for (int64_t n = 0; n < nodes; ++n) {
                const float* g_row = pg + ((b * c_out + co) * nodes + n) * t_out;
                const float* in_row = pi + ((b * c_in + ci) * nodes + n) * time;
                for (int64_t k = 0; k < kernel; ++k) {
                  const int64_t shift = dilation * k;
                  // Sequential reduction over t: vectorizing it would need a
                  // horizontal sum, which reassociates the accumulation order
                  // and breaks bitwise determinism — stays scalar on purpose.
                  float dw_acc = 0.0f;
                  for (int64_t t = 0; t < t_out; ++t) dw_acc += g_row[t] * in_row[t + shift];
                  dw_row[k] += dw_acc;
                }
              }
            }
          }
        });
        input.AccumulateGrad(d_in);
        weight.AccumulateGrad(d_w);
      });
}

}  // namespace autograd
}  // namespace urcl
